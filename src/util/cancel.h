// Cooperative cancellation and deadlines.
//
// A CancelToken is an atomic flag plus an optional steady-clock deadline.
// The issuer keeps the token alive for the duration of the query and flips
// it with RequestCancel() (or lets the deadline expire); executing code
// polls Check() at morsel boundaries and — through a stride-based
// CancelTicker — inside serial scan loops. The fast path of Check() is one
// relaxed atomic load plus (when a deadline is set) one clock read per
// call; callers keep it off the per-tuple hot path by ticking every
// kCancelStride tuples.
//
// Tokens can be chained: a child token created with a parent observes the
// parent's cancellation/deadline too. EngineRunner uses this to combine a
// caller-supplied token with a per-query deadline without mutating the
// caller's token.
//
// CancelledException exists to unwind out of tree-scan callbacks
// (ForEachMatch & friends have no early-exit protocol); Plan::Run and the
// worker-pool batch error path convert it back to its Status.

#ifndef QPPT_UTIL_CANCEL_H_
#define QPPT_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <string>
#include <utility>

#include "util/status.h"

namespace qppt {

class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(const CancelToken* parent) : parent_(parent) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Flags the token; every subsequent Check() returns Cancelled. Safe to
  // call from any thread, any number of times.
  void RequestCancel() {
    // relaxed: the flag is the only data being communicated; best-effort
    // delivery is the contract — polls observe it eventually.
    cancelled_.store(true, std::memory_order_relaxed);
  }

  bool cancel_requested() const {
    // relaxed: standalone flag read, no dependent data.
    return cancelled_.load(std::memory_order_relaxed) ||
           (parent_ != nullptr && parent_->cancel_requested());
  }

  // Sets an absolute steady-clock deadline. Passing a time in the past
  // makes the very next Check() fail.
  void SetDeadline(std::chrono::steady_clock::time_point tp) {
    // relaxed: the deadline is a self-contained value; polls comparing
    // it against the clock need no ordering with other memory.
    deadline_ns_.store(tp.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }
  void SetDeadlineAfter(double ms) {
    SetDeadline(std::chrono::steady_clock::now() +
                std::chrono::nanoseconds(
                    static_cast<int64_t>(ms * 1e6)));
  }

  bool has_deadline() const {
    // relaxed: standalone value read, no dependent data.
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline ||
           (parent_ != nullptr && parent_->has_deadline());
  }

  // OK while the query may keep running; Cancelled / DeadlineExceeded once
  // it must stop. Cancellation wins over deadline expiry when both hold.
  Status Check() const {
    // relaxed: cancellation is a best-effort signal of a self-contained
    // value — no other memory is published with it.
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled");
    }
    // relaxed: same — the deadline is compared against the clock only.
    int64_t dl = deadline_ns_.load(std::memory_order_relaxed);
    if (dl != kNoDeadline &&
        std::chrono::steady_clock::now().time_since_epoch().count() >= dl) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    if (parent_ != nullptr) return parent_->Check();
    return Status::OK();
  }

 private:
  static constexpr int64_t kNoDeadline = INT64_MIN;

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
  const CancelToken* parent_ = nullptr;
};

// Base for exceptions that carry a Status through stack unwinding: used
// where error codes cannot flow normally (scan callbacks with no
// early-exit protocol, morsel bodies on the worker pool). Call sites at
// the top of the unwind convert back to the carried Status via
// StatusFromException.
class StatusException : public std::exception {
 public:
  explicit StatusException(Status status) : status_(std::move(status)) {
    message_ = status_.ToString();
  }
  const Status& status() const { return status_; }
  const char* what() const noexcept override { return message_.c_str(); }

 private:
  Status status_;
  std::string message_;
};

// Thrown to unwind out of scan callbacks when the query is cancelled or
// past its deadline.
class CancelledException : public StatusException {
 public:
  using StatusException::StatusException;
};

// Narrows a caught exception back to a Status: StatusException subtypes
// keep their carried code, allocation failure maps to ResourceExhausted,
// anything else to Internal.
inline Status StatusFromException(const std::exception_ptr& ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const StatusException& e) {
    return e.status();
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("allocation failed");
  } catch (const std::exception& e) {
    return Status::Internal(e.what());
  } catch (...) {
    return Status::Internal("unknown exception");
  }
}

// Number of tuples a serial scan loop processes between cancellation
// checks. Large enough that the countdown (one predicted-not-taken branch
// and a register decrement) is invisible next to the per-tuple work.
inline constexpr uint32_t kCancelStride = 8192;

// Stride-based ticker for serial loops: Tick() is nearly free; every
// kCancelStride calls it polls the token and throws CancelledException if
// the query must stop. A null token makes Tick() a pure countdown.
class CancelTicker {
 public:
  explicit CancelTicker(const CancelToken* token) : token_(token) {}

  void Tick() {
    if (--countdown_ == 0) {
      countdown_ = kCancelStride;
      if (token_ != nullptr) {
        Status st = token_->Check();
        if (!st.ok()) throw CancelledException(std::move(st));
      }
    }
  }

 private:
  const CancelToken* token_;
  uint32_t countdown_ = kCancelStride;
};

}  // namespace qppt

#endif  // QPPT_UTIL_CANCEL_H_
