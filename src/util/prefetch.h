// Software prefetch wrapper used by the batch-processing scheme (§2.3).

#ifndef QPPT_UTIL_PREFETCH_H_
#define QPPT_UTIL_PREFETCH_H_

namespace qppt {

// Hints the CPU to fetch the cache line containing `addr` into L1.
// `addr` may be invalid; prefetching never faults.
inline void PrefetchRead(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
  (void)addr;
#endif
}

inline void PrefetchWrite(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/1, /*locality=*/3);
#else
  (void)addr;
#endif
}

}  // namespace qppt

#endif  // QPPT_UTIL_PREFETCH_H_
