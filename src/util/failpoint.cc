#include "util/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <string>
#include <thread>
#include <utility>

#include "dbg/lock_rank.h"
#include "util/env.h"
#include "util/rng.h"

namespace qppt::fail {
namespace {

struct Entry {
  FailConfig config;
  uint64_t hits = 0;
};

// The registry: cold by construction (tests arm a handful of tags; the
// disarmed fast path never gets here). One mutex at the innermost rank —
// failpoints fire inside allocator growth paths that already hold
// kAllocator.
struct Registry {
  std::mutex mu;
  std::map<std::string, Entry> entries;
  Rng rng{static_cast<uint64_t>(
      GetEnvInt64("QPPT_FAILPOINTS_SEED", 0x5eedfa11))};

  static Registry& Get() {
    static Registry r;
    return r;
  }
};

// Looks up `tag` and decides whether it triggers this evaluation
// (probability draw + remaining count). On trigger, copies the config
// out and bumps the hit counter.
bool Trigger(const char* tag, FailConfig* out) {
  Registry& reg = Registry::Get();
  dbg::RankedLockGuard lock(dbg::LockRank::kFailpoint, reg.mu);
  auto it = reg.entries.find(tag);
  if (it == reg.entries.end()) return false;
  Entry& e = it->second;
  if (e.config.count == 0) return false;
  if (e.config.probability < 1.0 &&
      reg.rng.NextDouble() >= e.config.probability) {
    return false;
  }
  if (e.config.count > 0) --e.config.count;
  ++e.hits;
  *out = e.config;
  return true;
}

Status InjectedStatus(const char* tag, const FailConfig& config) {
  std::string msg = config.message.empty()
                        ? ("injected fault at failpoint " + std::string(tag))
                        : config.message;
  return {config.code, std::move(msg)};
}

}  // namespace

namespace internal {

std::atomic<int> g_armed_count{0};

Status Evaluate(const char* tag) {
  FailConfig config;
  if (!Trigger(tag, &config)) return Status::OK();
  switch (config.action) {
    case Action::kStatus:
      return InjectedStatus(tag, config);
    case Action::kThrow:
      throw InjectedFault(InjectedStatus(tag, config));
    case Action::kBadAlloc:
      throw std::bad_alloc();
    case Action::kSleep:
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          config.sleep_ms));
      return Status::OK();
  }
  return Status::OK();
}

void Hit(const char* tag) {
  Status st = Evaluate(tag);
  if (!st.ok()) throw InjectedFault(std::move(st));
}

}  // namespace internal

bool Enabled() {
#if defined(QPPT_FAILPOINTS)
  return true;
#else
  return false;
#endif
}

void Arm(const std::string& tag, FailConfig config) {
  Registry& reg = Registry::Get();
  dbg::RankedLockGuard lock(dbg::LockRank::kFailpoint, reg.mu);
  auto [it, inserted] = reg.entries.insert_or_assign(tag, Entry{config, 0});
  (void)it;
  if (inserted) {
    // relaxed: the count only gates the fast path; the registry mutex
    // orders the actual config data.
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void Disarm(const std::string& tag) {
  Registry& reg = Registry::Get();
  dbg::RankedLockGuard lock(dbg::LockRank::kFailpoint, reg.mu);
  if (reg.entries.erase(tag) != 0) {
    // relaxed: fast-path gate only; config data is mutex-ordered.
    internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& reg = Registry::Get();
  dbg::RankedLockGuard lock(dbg::LockRank::kFailpoint, reg.mu);
  // relaxed: fast-path gate only; config data is mutex-ordered.
  internal::g_armed_count.fetch_sub(static_cast<int>(reg.entries.size()),
                                    std::memory_order_relaxed);
  reg.entries.clear();
}

uint64_t HitCount(const std::string& tag) {
  Registry& reg = Registry::Get();
  dbg::RankedLockGuard lock(dbg::LockRank::kFailpoint, reg.mu);
  auto it = reg.entries.find(tag);
  return it == reg.entries.end() ? 0 : it->second.hits;
}

namespace {

// One `tag=action[(arg)][@prob][:count]` entry.
Status ParseEntry(const std::string& entry) {
  size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("QPPT_FAILPOINTS entry '" + entry +
                                   "': expected tag=action");
  }
  std::string tag = entry.substr(0, eq);
  std::string spec = entry.substr(eq + 1);

  FailConfig config;
  // Suffixes live after the optional "(arg)" — with no parenthesis,
  // rfind(')') is npos (greater than every index), so anchor at 0.
  size_t close = spec.rfind(')');
  if (close == std::string::npos) close = 0;
  // Trailing ":count".
  size_t colon = spec.rfind(':');
  if (colon != std::string::npos && colon > close) {
    config.count = std::atoi(spec.c_str() + colon + 1);
    if (config.count <= 0) {
      return Status::InvalidArgument("QPPT_FAILPOINTS entry '" + entry +
                                     "': count must be a positive integer");
    }
    spec.resize(colon);
  }
  // Trailing "@probability".
  size_t at = spec.rfind('@');
  if (at != std::string::npos && at > close) {
    config.probability = std::atof(spec.c_str() + at + 1);
    if (config.probability <= 0.0 || config.probability > 1.0) {
      return Status::InvalidArgument("QPPT_FAILPOINTS entry '" + entry +
                                     "': probability must be in (0, 1]");
    }
    spec.resize(at);
  }
  // "action" or "action(arg)".
  std::string action = spec;
  std::string arg;
  size_t open = spec.find('(');
  if (open != std::string::npos) {
    if (spec.back() != ')') {
      return Status::InvalidArgument("QPPT_FAILPOINTS entry '" + entry +
                                     "': unbalanced parenthesis");
    }
    action = spec.substr(0, open);
    arg = spec.substr(open + 1, spec.size() - open - 2);
  }

  if (action == "status") {
    config.action = Action::kStatus;
    if (arg.empty() || arg == "internal") {
      config.code = StatusCode::kInternal;
    } else if (arg == "io") {
      config.code = StatusCode::kIOError;
    } else if (arg == "resource_exhausted") {
      config.code = StatusCode::kResourceExhausted;
    } else if (arg == "cancelled") {
      config.code = StatusCode::kCancelled;
    } else {
      return Status::InvalidArgument("QPPT_FAILPOINTS entry '" + entry +
                                     "': unknown status code '" + arg + "'");
    }
  } else if (action == "throw") {
    config.action = Action::kThrow;
  } else if (action == "badalloc") {
    config.action = Action::kBadAlloc;
  } else if (action == "sleep") {
    config.action = Action::kSleep;
    config.sleep_ms = arg.empty() ? 1.0 : std::atof(arg.c_str());
  } else {
    return Status::InvalidArgument("QPPT_FAILPOINTS entry '" + entry +
                                   "': unknown action '" + action + "'");
  }

  Arm(tag, config);
  return Status::OK();
}

}  // namespace

Status ArmFromEnv() {
  std::string spec = GetEnvString("QPPT_FAILPOINTS", "");
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    if (comma > pos) {
      QPPT_RETURN_NOT_OK(ParseEntry(spec.substr(pos, comma - pos)));
    }
    pos = comma + 1;
  }
  return Status::OK();
}

}  // namespace qppt::fail
