// Environment-variable helpers used by benchmarks to override workload
// parameters (e.g. QPPT_SSB_SF) without recompiling.

#ifndef QPPT_UTIL_ENV_H_
#define QPPT_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace qppt {

// Returns the value of env var `name` parsed as int64, or `fallback` if the
// variable is unset or unparsable.
int64_t GetEnvInt64(const char* name, int64_t fallback);

// Returns the value of env var `name` parsed as double, or `fallback`.
double GetEnvDouble(const char* name, double fallback);

// Returns the value of env var `name`, or `fallback` if unset.
std::string GetEnvString(const char* name, const std::string& fallback);

}  // namespace qppt

#endif  // QPPT_UTIL_ENV_H_
