#include "util/rng.h"

// Rng is header-only; this translation unit exists so the build graph has a
// stable object for the util component.
