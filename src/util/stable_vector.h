// Single-writer / multi-reader append-only vector with stable addresses.
//
// The MVCC write path appends row versions while lock-free snapshot
// readers resolve earlier entries concurrently. std::vector cannot serve
// that shape: push_back reallocates, invalidating every concurrent read.
// StableVector stores elements in fixed-size chunks behind a fixed-size
// directory of atomic chunk pointers, so an element's address never
// changes after PushBack publishes it:
//
//   * exactly ONE writer thread may call PushBack/EmplaceBack at a time
//     (the engine's coarse writer lock provides this),
//   * any number of readers may call operator[] / size() concurrently
//     with the writer, for indexes below a size() they observed —
//     publication is release (size_) / acquire (readers), so the
//     element's bytes are visible.
//
// The directory is allocated lazily on first append (an empty vector
// costs two words) and never grows: capacity is kMaxChunks << kChunkLog2
// elements, a compile-time bound chosen by the instantiation.

#ifndef QPPT_UTIL_STABLE_VECTOR_H_
#define QPPT_UTIL_STABLE_VECTOR_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

namespace qppt {

template <typename T, size_t kChunkLog2 = 12, size_t kMaxChunks = (1u << 16)>
class StableVector {
 public:
  static constexpr size_t kChunkSize = size_t{1} << kChunkLog2;
  static constexpr size_t kChunkMask = kChunkSize - 1;

  StableVector() = default;
  ~StableVector() {
    if (dir_ == nullptr) return;
    // relaxed: destructor runs with exclusive access.
    size_t n = size_.load(std::memory_order_relaxed);
    size_t chunks = (n + kChunkSize - 1) >> kChunkLog2;
    for (size_t c = 0; c < chunks; ++c) {
      // relaxed: destructor runs with exclusive access.
      T* chunk = dir_[c].load(std::memory_order_relaxed);
      size_t begin = c << kChunkLog2;
      size_t used = (n - begin) < kChunkSize ? (n - begin) : kChunkSize;
      for (size_t i = 0; i < used; ++i) chunk[i].~T();
      ::operator delete[](chunk, std::align_val_t{alignof(T)});
    }
  }
  StableVector(const StableVector&) = delete;
  StableVector& operator=(const StableVector&) = delete;

  size_t size() const { return size_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }

  T& operator[](size_t i) {
    return dir_[i >> kChunkLog2].load(std::memory_order_acquire)
        [i & kChunkMask];
  }
  const T& operator[](size_t i) const {
    return dir_[i >> kChunkLog2].load(std::memory_order_acquire)
        [i & kChunkMask];
  }

  // Appends and publishes one element. Single writer only.
  template <typename... Args>
  T& EmplaceBack(Args&&... args) {
    // relaxed: single writer reading back its own counter.
    size_t i = size_.load(std::memory_order_relaxed);
    T* chunk = ChunkFor(i);
    T* slot = new (&chunk[i & kChunkMask]) T(std::forward<Args>(args)...);
    // pairs-with: sv-size
    size_.store(i + 1, std::memory_order_release);
    return *slot;
  }
  void PushBack(const T& v) { EmplaceBack(v); }

 private:
  T* ChunkFor(size_t i) {
    if (dir_ == nullptr) {
      dir_ = std::make_unique<std::atomic<T*>[]>(kMaxChunks);
    }
    size_t c = i >> kChunkLog2;
    // relaxed: single writer — reads back its own chunk installs.
    T* chunk = dir_[c].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = static_cast<T*>(::operator new[](
          kChunkSize * sizeof(T), std::align_val_t{alignof(T)}));
      // pairs-with: sv-dir-chunk
      dir_[c].store(chunk, std::memory_order_release);
    }
    return chunk;
  }

  std::unique_ptr<std::atomic<T*>[]> dir_;
  std::atomic<size_t> size_{0};
};

}  // namespace qppt

#endif  // QPPT_UTIL_STABLE_VECTOR_H_
