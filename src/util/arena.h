// Bump-pointer arena allocators.
//
// Arena: general-purpose block allocator. All memory is freed when the arena
// is destroyed (or Reset()); individual deallocation is not supported. This
// matches the lifetime of QPPT intermediate indexes, which live exactly as
// long as the query that produced them.
//
// PageArena: allocator for the duplicate-handling segments of Section 2.4;
// guarantees that no allocation of size <= 4 KiB crosses a 4 KiB page
// boundary, so that hardware prefetching can stream a whole segment.

#ifndef QPPT_UTIL_ARENA_H_
#define QPPT_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

namespace qppt {

class Arena {
 public:
  static constexpr size_t kDefaultBlockSize = 64 * 1024;
  static constexpr size_t kPageSize = 4096;

  explicit Arena(size_t block_size = kDefaultBlockSize)
      : block_size_(block_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  // Allocates `size` bytes aligned to `align` (power of two, <= 4096).
  // Never returns nullptr; aborts on OOM (allocation failure is not a
  // recoverable condition for an in-memory engine).
  void* Allocate(size_t size, size_t align = 8);

  // Allocates and zero-fills.
  void* AllocateZeroed(size_t size, size_t align = 8) {
    void* p = Allocate(size, align);
    std::memset(p, 0, size);
    return p;
  }

  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* p = Allocate(sizeof(T), alignof(T));
    return new (p) T(static_cast<Args&&>(args)...);
  }

  // Copies `size` bytes into the arena and returns the copy.
  void* CopyBytes(const void* src, size_t size, size_t align = 8) {
    void* p = Allocate(size, align);
    std::memcpy(p, src, size);
    return p;
  }

  // Opt-in thread safety for the partitioned parallel merge (engine
  // layer): while on, Allocate() takes an internal mutex so workers
  // filling disjoint index subtrees can share the arena. Returned
  // pointers stay valid and data-race-free either way (blocks are never
  // moved). Off by default — the serial hot path pays only a branch,
  // and the mutex is not even allocated until first enabled.
  void set_concurrent(bool on) {
    if (on && mu_ == nullptr) mu_ = std::make_unique<std::mutex>();
    concurrent_ = on;
  }

  // Total bytes handed out by Allocate().
  size_t bytes_allocated() const { return bytes_allocated_; }
  // Total bytes reserved from the system (>= bytes_allocated()).
  size_t bytes_reserved() const { return bytes_reserved_; }

  // Frees all blocks. Pointers previously returned become invalid.
  void Reset();

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  char* AllocateNewBlock(size_t min_size);
  void* AllocateLocked(size_t size, size_t align);

  size_t block_size_;
  std::vector<Block> blocks_;
  char* ptr_ = nullptr;   // next free byte in current block
  char* end_ = nullptr;   // end of current block
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
  bool concurrent_ = false;
  // unique_ptr keeps the arena movable (std::mutex is not); created
  // lazily by set_concurrent(true).
  std::unique_ptr<std::mutex> mu_;
};

// Arena whose allocations never straddle a 4 KiB page boundary (for sizes
// up to one page). Allocations must be power-of-two sized for the
// no-straddle guarantee to hold, which is true for duplicate segments
// (64 B, 128 B, ..., 4 KiB).
class PageArena {
 public:
  static constexpr size_t kPageSize = 4096;

  PageArena() = default;
  PageArena(const PageArena&) = delete;
  PageArena& operator=(const PageArena&) = delete;
  PageArena(PageArena&&) = default;
  PageArena& operator=(PageArena&&) = default;

  // Allocates `size` bytes (power of two, <= 4096) such that the block does
  // not cross a page boundary.
  void* Allocate(size_t size);

  // Same contract as Arena::set_concurrent().
  void set_concurrent(bool on) {
    if (on && mu_ == nullptr) mu_ = std::make_unique<std::mutex>();
    concurrent_ = on;
  }

  size_t bytes_allocated() const { return bytes_allocated_; }
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  static constexpr size_t kChunkPages = 64;  // 256 KiB chunks

  void* AllocateLocked(size_t size);

  std::vector<std::unique_ptr<char[]>> chunks_;
  char* ptr_ = nullptr;
  char* end_ = nullptr;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
  bool concurrent_ = false;
  std::unique_ptr<std::mutex> mu_;
};

}  // namespace qppt

#endif  // QPPT_UTIL_ARENA_H_
