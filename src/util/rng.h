// Deterministic pseudo-random number generation for data generators,
// benchmarks, and property tests. Reproducibility across runs matters more
// than statistical perfection here, so we use SplitMix64/xoshiro256**.

#ifndef QPPT_UTIL_RNG_H_
#define QPPT_UTIL_RNG_H_

#include <cstdint>

namespace qppt {

// SplitMix64: stateless-ish generator, used for seeding and cheap streams.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna. Deterministic given a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's multiply-shift rejection-free approximation is fine here;
    // bias is < 2^-32 for the bounds we use.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  uint32_t Next32() { return static_cast<uint32_t>(Next() >> 32); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace qppt

#endif  // QPPT_UTIL_RNG_H_
