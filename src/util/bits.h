// Bit-manipulation helpers used by the prefix-tree index structures.

#ifndef QPPT_UTIL_BITS_H_
#define QPPT_UTIL_BITS_H_

#include <bit>
#include <cstddef>
#include <cstdint>

namespace qppt {

// Extracts the `width`-bit fragment starting `bit_offset` bits from the
// most-significant end of the big-endian byte string `key` of `key_bits`
// total bits. This is the fragment used to index a prefix-tree node at the
// corresponding level (Section 2.1 of the paper: keys are split MSB-first
// into fragments of k' bits so that the trie is order-preserving).
//
// Requires width <= 16 and bit_offset + width <= key_len * 8.
inline uint32_t ExtractFragment(const uint8_t* key, size_t key_len,
                                size_t bit_offset, size_t width) {
  size_t byte = bit_offset >> 3;
  size_t bit_in_byte = bit_offset & 7;
  // Gather up to 3 bytes so any fragment of width <= 16 is covered even
  // when it straddles byte boundaries. Bytes past the key end contribute
  // zeros (they are never selected by the shift given the precondition).
  uint32_t window = uint32_t{key[byte]} << 16;
  if (byte + 1 < key_len) window |= uint32_t{key[byte + 1]} << 8;
  if (byte + 2 < key_len) window |= uint32_t{key[byte + 2]};
  window >>= (24 - bit_in_byte - width);
  return window & ((1u << width) - 1);
}

// Fragment extraction for 32-bit integer keys (KISS-Tree fast path).
inline uint32_t ExtractFragment32(uint32_t key, size_t bit_offset,
                                  size_t width) {
  return (key >> (32 - bit_offset - width)) & ((1u << width) - 1);
}

// Rounds `v` up to the next power of two (returns v if already one).
inline uint64_t NextPow2(uint64_t v) {
  if (v <= 1) return 1;
  return uint64_t{1} << (64 - std::countl_zero(v - 1));
}

// 64-bit finalizer from MurmurHash3; used by the hash-table baselines.
inline uint64_t Mix64(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace qppt

#endif  // QPPT_UTIL_BITS_H_
