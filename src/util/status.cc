#include "util/status.h"

#include <string>

namespace qppt {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

}  // namespace qppt
