// Status and Result<T>: error handling without exceptions on hot paths.
//
// Modeled after the Arrow/RocksDB Status idiom: cheap to return on success
// (a single pointer-sized word), carries a code + message on failure. Use
// Result<T> for functions that produce a value or an error.

#ifndef QPPT_UTIL_STATUS_H_
#define QPPT_UTIL_STATUS_H_

#include <cassert>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace qppt {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kResourceExhausted = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIOError = 8,
  kCancelled = 9,
  kDeadlineExceeded = 10,
};

// Returns a human-readable name for `code` ("OK", "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

// [[nodiscard]] on the class makes every by-value Status return checked:
// a discarded error is a silent correctness bug (enforced by -Werror in
// src/ and by the qppt-unchecked-status tidy check everywhere else).
class [[nodiscard]] Status {
 public:
  // Default construction yields OK; this is the fast path.
  Status() = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(code, std::move(message))) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_)
                            : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_ =
          other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;  // nullptr == OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Result<T>: either a value of type T or an error Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  // Requires ok().
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

// Propagates a non-OK Status out of the current function.
#define QPPT_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::qppt::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

// Evaluates a Result expression; assigns its value to `lhs` or propagates
// the error. Usage: QPPT_ASSIGN_OR_RETURN(auto x, Compute());
// NOLINTNEXTLINE(bugprone-macro-parentheses): `lhs` is an assignment
// target (often a declaration) and `tmp` an identifier; neither can be
// parenthesized.
#define QPPT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define QPPT_ASSIGN_OR_RETURN(lhs, expr) \
  QPPT_ASSIGN_OR_RETURN_IMPL(            \
      QPPT_CONCAT_(_result_, __LINE__), lhs, expr)

#define QPPT_CONCAT_INNER_(a, b) a##b
#define QPPT_CONCAT_(a, b) QPPT_CONCAT_INNER_(a, b)

}  // namespace qppt

#endif  // QPPT_UTIL_STATUS_H_
