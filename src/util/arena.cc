#include "util/arena.h"

#include "dbg/lock_rank.h"
#include "util/failpoint.h"

#include <mutex>

namespace qppt {

namespace {

uintptr_t AlignUp(uintptr_t v, size_t align) {
  return (v + align - 1) & ~(uintptr_t{align} - 1);
}

}  // namespace

void* Arena::Allocate(size_t size, size_t align) {
  if (concurrent_) {
    dbg::RankedLockGuard lock(dbg::LockRank::kAllocator, *mu_);
    return AllocateLocked(size, align);
  }
  return AllocateLocked(size, align);
}

void* Arena::AllocateLocked(size_t size, size_t align) {
  uintptr_t current = reinterpret_cast<uintptr_t>(ptr_);
  uintptr_t aligned = AlignUp(current, align);
  size_t needed = (aligned - current) + size;
  if (ptr_ == nullptr || needed > static_cast<size_t>(end_ - ptr_)) {
    // A fresh block from new[] is suitably aligned for any fundamental
    // type; re-align within it for larger alignment requests.
    char* block = AllocateNewBlock(size + align);
    aligned = AlignUp(reinterpret_cast<uintptr_t>(block), align);
    ptr_ = reinterpret_cast<char*>(aligned);
  } else {
    ptr_ = reinterpret_cast<char*>(aligned);
  }
  char* result = ptr_;
  ptr_ += size;
  bytes_allocated_ += size;
  return result;
}

char* Arena::AllocateNewBlock(size_t min_size) {
  // Chaos hook: growth is where a real allocator fails, so the injected
  // bad_alloc exercises the same unwind as genuine memory pressure.
  QPPT_FAILPOINT(arena_grow);
  size_t size = min_size > block_size_ ? min_size : block_size_;
  Block block;
  block.data.reset(new char[size]);
  block.size = size;
  char* data = block.data.get();
  blocks_.push_back(std::move(block));
  ptr_ = data;
  end_ = data + size;
  bytes_reserved_ += size;
  return data;
}

void Arena::Reset() {
  blocks_.clear();
  ptr_ = end_ = nullptr;
  bytes_allocated_ = 0;
  bytes_reserved_ = 0;
}

void* PageArena::Allocate(size_t size) {
  if (concurrent_) {
    dbg::RankedLockGuard lock(dbg::LockRank::kAllocator, *mu_);
    return AllocateLocked(size);
  }
  return AllocateLocked(size);
}

void* PageArena::AllocateLocked(size_t size) {
  if (size == 0) size = 8;
  if (size > kPageSize) {
    QPPT_FAILPOINT(page_arena_grow);
    // Oversized requests get their own page-aligned region.
    size_t pages = (size + kPageSize - 1) / kPageSize;
    size_t raw_bytes = pages * kPageSize + kPageSize;
    char* raw = new char[raw_bytes];
    chunks_.emplace_back(raw);
    char* aligned = reinterpret_cast<char*>(
        AlignUp(reinterpret_cast<uintptr_t>(raw), kPageSize));
    bytes_reserved_ += raw_bytes;
    bytes_allocated_ += size;
    return aligned;
  }
  uintptr_t current = reinterpret_cast<uintptr_t>(ptr_);
  // Power-of-two allocations packed from a page-aligned cursor never
  // straddle a page: align the cursor to the allocation size.
  uintptr_t aligned = AlignUp(current, size);
  if (ptr_ == nullptr ||
      aligned + size > reinterpret_cast<uintptr_t>(end_)) {
    QPPT_FAILPOINT(page_arena_grow);
    size_t chunk_bytes = kChunkPages * kPageSize;
    char* raw = new char[chunk_bytes + kPageSize];
    chunks_.emplace_back(raw);
    char* page_aligned = reinterpret_cast<char*>(
        AlignUp(reinterpret_cast<uintptr_t>(raw), kPageSize));
    ptr_ = page_aligned;
    end_ = page_aligned + chunk_bytes;
    bytes_reserved_ += chunk_bytes + kPageSize;
    aligned = reinterpret_cast<uintptr_t>(ptr_);
  }
  char* result = reinterpret_cast<char*>(aligned);
  ptr_ = result + size;
  bytes_allocated_ += size;
  return result;
}

}  // namespace qppt
