// Deterministic fault injection.
//
// A failpoint is a named hook compiled into a choke point (allocation
// growth, merge planning, commit publish, ...) that does nothing until a
// test arms it. Armed, it can surface a Status, throw, simulate
// allocation failure, or sleep — optionally probabilistically (seeded
// RNG, reproducible across runs) and for a bounded number of triggers.
//
// Usage at a choke point:
//
//   QPPT_FAILPOINT(arena_grow);            // throwing context: may throw
//                                          // InjectedFault / bad_alloc /
//                                          // sleep in place
//   QPPT_FAILPOINT_STATUS(commit_publish); // Status-returning function:
//                                          // `return`s the injected error
//
// Arming, from a test:
//
//   fail::Arm("commit_publish",
//             {fail::Action::kStatus, StatusCode::kIOError, "disk full"});
//   ... exercise ...
//   fail::DisarmAll();
//
// or from the environment (parsed once via fail::ArmFromEnv, which the
// first EngineRunner construction in a process applies automatically):
//
//   QPPT_FAILPOINTS=arena_grow=badalloc:1,merge_plan=status(io)@0.5
//
// Syntax per entry: tag=action[(arg)][@probability][:count] where action
// is status[(code)] | throw | badalloc | sleep(ms); probability defaults
// to 1.0 (seeded by QPPT_FAILPOINTS_SEED) and count to unlimited.
//
// Every tag must be listed in scripts/analyze/failpoints.txt — the lint
// pass rejects unknown and unused tags, so the catalogue is the live
// inventory of injectable faults.
//
// Cost: the macros compile to nothing unless the build enables
// QPPT_FAILPOINTS (Debug and sanitizer builds by default — same policy
// as QPPT_DBG_INVARIANTS; plain Release stays clean). In enabled builds
// the disarmed fast path is one relaxed atomic load and branch.

#ifndef QPPT_UTIL_FAILPOINT_H_
#define QPPT_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/cancel.h"
#include "util/status.h"

namespace qppt::fail {

// Thrown by failpoints armed with Action::kThrow (and by kStatus
// failpoints hit in a throwing context); carries the injected Status.
class InjectedFault : public StatusException {
 public:
  using StatusException::StatusException;
};

enum class Action {
  kStatus,    // surface Status(code, message)
  kThrow,     // throw InjectedFault(Status(code, message))
  kBadAlloc,  // throw std::bad_alloc — simulated allocation failure
  kSleep,     // sleep sleep_ms — simulated stall (deadline tests)
};

struct FailConfig {
  Action action = Action::kStatus;
  StatusCode code = StatusCode::kInternal;
  std::string message;
  // Remaining triggers; -1 = unlimited. Each actual trigger (probability
  // check passed) decrements; at zero the failpoint stops firing but
  // stays registered for HitCount.
  int count = -1;
  // Chance each evaluation triggers, in [0, 1]. Drawn from a process-wide
  // RNG seeded by QPPT_FAILPOINTS_SEED (default fixed), so a given seed
  // reproduces the same trigger sequence.
  double probability = 1.0;
  double sleep_ms = 0;
};

// True when the build compiles failpoints in (QPPT_FAILPOINTS).
bool Enabled();

// Registers/overwrites the failpoint `tag`. Resets its hit count.
void Arm(const std::string& tag, FailConfig config);

// Unregisters one tag / all tags. Safe when not armed.
void Disarm(const std::string& tag);
void DisarmAll();

// Times `tag` actually triggered since last armed.
uint64_t HitCount(const std::string& tag);

// Parses QPPT_FAILPOINTS (see header comment) and arms each entry.
// Returns InvalidArgument on malformed syntax; unset/empty is OK.
Status ArmFromEnv();

namespace internal {

extern std::atomic<int> g_armed_count;

inline bool AnyArmed() {
  // relaxed: the armed count is a pure fast-path gate; a stale read only
  // delays/advances injection by one evaluation, and tests arm failpoints
  // before starting the threads that hit them.
  return g_armed_count.load(std::memory_order_relaxed) != 0;
}

// Slow paths behind AnyArmed(): evaluate `tag`, act. Evaluate() throws
// for kThrow/kBadAlloc, sleeps for kSleep, and returns the injected
// Status for kStatus; Hit() converts that Status to InjectedFault since
// its context cannot return one.
Status Evaluate(const char* tag);
void Hit(const char* tag);

}  // namespace internal

}  // namespace qppt::fail

#if defined(QPPT_FAILPOINTS)

// Throwing/void context: injected Status faults become InjectedFault.
#define QPPT_FAILPOINT(tag)                                \
  do {                                                     \
    if (::qppt::fail::internal::AnyArmed()) {              \
      ::qppt::fail::internal::Hit(#tag);                   \
    }                                                      \
  } while (0)

// Status-returning context: injected Status faults return from the
// enclosing function.
#define QPPT_FAILPOINT_STATUS(tag)                         \
  do {                                                     \
    if (::qppt::fail::internal::AnyArmed()) {              \
      ::qppt::Status _fp_st =                              \
          ::qppt::fail::internal::Evaluate(#tag);          \
      if (!_fp_st.ok()) return _fp_st;                     \
    }                                                      \
  } while (0)

#else

#define QPPT_FAILPOINT(tag) \
  do {                      \
  } while (0)
#define QPPT_FAILPOINT_STATUS(tag) \
  do {                             \
  } while (0)

#endif  // QPPT_FAILPOINTS

#endif  // QPPT_UTIL_FAILPOINT_H_
