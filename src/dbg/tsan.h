// ThreadSanitizer happens-before annotations for the engine's
// release-store publish points.
//
// The trees publish slots with real atomics (__atomic builtins), which
// TSan instruments natively, so in today's code these annotations add
// no edges TSan does not already infer. They exist to make every
// publish point *explicit and greppable* — the qppt_lint.py atomics
// catalogue names these sites — and to keep the happens-before graph
// intact if a publish point is ever rewritten in a form TSan cannot see
// through (fences, inline asm, non-instrumented helpers). Outside TSan
// builds they compile to nothing.
//
// Usage: QPPT_TSAN_RELEASE(addr) immediately before the release store
// that publishes through `addr`; QPPT_TSAN_ACQUIRE(addr) immediately
// after the paired acquire load.

#ifndef QPPT_DBG_TSAN_H_
#define QPPT_DBG_TSAN_H_

#if defined(__SANITIZE_THREAD__)
#define QPPT_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define QPPT_TSAN_ENABLED 1
#endif
#endif

#ifdef QPPT_TSAN_ENABLED
extern "C" {
void __tsan_acquire(void* addr);
void __tsan_release(void* addr);
}
#define QPPT_TSAN_RELEASE(addr) \
  __tsan_release(const_cast<void*>(static_cast<const void*>(addr)))
#define QPPT_TSAN_ACQUIRE(addr) \
  __tsan_acquire(const_cast<void*>(static_cast<const void*>(addr)))
#else
#define QPPT_TSAN_RELEASE(addr) ((void)0)
#define QPPT_TSAN_ACQUIRE(addr) ((void)0)
#endif

#endif  // QPPT_DBG_TSAN_H_
