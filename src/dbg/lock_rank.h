// Lock-rank deadlock detection (debug/sanitizer builds).
//
// The engine's mutexes have a documented acquisition order; until this
// header existed it lived in reviewer memory. The table below makes it
// machine-checked: every instrumented acquisition asserts that its rank
// is strictly greater than every rank the thread already holds
// (rank-monotone acquisition). Any two threads that acquire the same
// two mutexes in opposite orders — the classic deadlock shape — trip
// the assert deterministically, on the first inverted acquisition, with
// no need for the unlucky interleaving that would actually deadlock.
//
// Ranks are ordered outermost-first. The table encodes the engine's
// intended nesting; today no two of these mutexes are ever held
// simultaneously (every path is acquire-release-then-next), so the
// checker's job is to keep it that way unless a nesting follows the
// table.
//
// Enforcement is a runtime flag so one binary serves every build:
//   - compiled with QPPT_DBG_INVARIANTS (Debug / sanitizer CMake
//     builds), enforcement defaults ON;
//   - otherwise it defaults OFF and the per-acquisition cost is one
//     relaxed atomic load and branch;
//   - the environment variable QPPT_DBG_INVARIANTS=0/1 overrides the
//     default either way, and tests can call SetInvariantsEnabled.
//
// Violations abort (std::abort) after printing the held-rank stack —
// the same contract as an assert, usable from gtest death tests.

#ifndef QPPT_DBG_LOCK_RANK_H_
#define QPPT_DBG_LOCK_RANK_H_

#include <mutex>

namespace qppt::dbg {

// Outermost (lowest rank) to innermost (highest rank). Gaps leave room
// for new mutexes without renumbering.
enum class LockRank : int {
  // EngineRunner::admit_mu_ — the admission semaphore. Held only while
  // updating the running-query count; never while executing.
  kAdmission = 100,
  // PreparedQuery::State::mu — the per-handle plan cache. Plan lookup
  // and insertion happen under it; execution does not.
  kPlanCache = 200,
  // Database::write_mutex() — the coarse writer lock. Everything a
  // write transaction applies/commits happens under it, including live
  // index upserts, so it must be outside every storage-level mutex.
  kDatabaseWrite = 300,
  // EngineRunner::pins_mu_ — the pinned-snapshot registry. Writers may
  // consult the reclamation horizon, so it ranks inside the write lock.
  kReadPins = 400,
  // EngineRunner::batchers_mu_ — the per-table read-batcher map.
  kReadBatcherMap = 500,
  // EngineRunner::Batcher::mu — one table's shared-read batch state.
  // Looked up under kReadBatcherMap, then locked after release; the
  // rank order allows (map -> batcher) nesting, never the reverse.
  kReadBatcher = 600,
  // WorkerPool::mu_ — the morsel deques. Morsel bodies run without it,
  // but they may take any storage-level mutex, so it sits outside them.
  kScheduler = 700,
  // WorkerPool::tuners_mu_ — the per-site tuner LRU map.
  kTunerMap = 750,
  // MorselTuner::mu_ — one site's feedback-loop state.
  kMorselTuner = 800,
  // obs::MetricsRegistry::mu_ — metric registration / snapshot. Hot
  // paths touch only atomics; the mutex is for the cold map.
  kMetrics = 900,
  // Arena / PageArena / CompactSlab / KissTree allocation mutexes
  // (concurrent-merge windows). Leaf allocators: nothing is ever
  // acquired under them.
  kAllocator = 1000,
  // fail::Registry::mu — the failpoint table. Failpoints sit inside the
  // deepest choke points (including allocator growth paths), so this is
  // the innermost rank of all.
  kFailpoint = 1100,
};

// Enforcement shares the process-wide dbg flag: see
// dbg::InvariantsEnabled / dbg::SetInvariantsEnabled (dbg/invariants.h)
// for the compile-default + environment-override resolution and the
// test toggle.

// Notes one rank as held by the calling thread, asserting monotone
// acquisition. Balance every Note with exactly one Drop (LIFO); the
// RAII types below do. No-ops (one relaxed load) when enforcement is
// off.
void NoteLockAcquired(LockRank rank);
void NoteLockReleased(LockRank rank);

// RAII rank token: asserts + records the rank for its scope. Pair it
// with a separately-managed lock when the guards below don't fit (e.g.
// std::condition_variable waits keep the token held; the thread is
// blocked, so its held-set cannot be consulted concurrently).
class LockRankToken {
 public:
  explicit LockRankToken(LockRank rank) : rank_(rank) {
    NoteLockAcquired(rank_);
  }
  ~LockRankToken() { NoteLockReleased(rank_); }
  LockRankToken(const LockRankToken&) = delete;
  LockRankToken& operator=(const LockRankToken&) = delete;

 private:
  LockRank rank_;
};

// Drop-in std::lock_guard<std::mutex> replacement that checks the rank
// BEFORE blocking on the mutex — an inverted acquisition aborts instead
// of deadlocking.
class RankedLockGuard {
 public:
  RankedLockGuard(LockRank rank, std::mutex& mu) : token_(rank), lock_(mu) {}

 private:
  LockRankToken token_;  // declared first: rank checked before locking
  std::lock_guard<std::mutex> lock_;
};

// std::unique_lock counterpart for condition-variable waits. The rank
// token spans the full scope, including cv waits (the thread holds no
// other lock while blocked, so the over-approximation is harmless).
class RankedUniqueLock {
 public:
  RankedUniqueLock(LockRank rank, std::mutex& mu) : token_(rank), lock_(mu) {}

  std::unique_lock<std::mutex>& lock() { return lock_; }
  void unlock() { lock_.unlock(); }
  void relock() { lock_.lock(); }

 private:
  LockRankToken token_;
  std::unique_lock<std::mutex> lock_;
};

}  // namespace qppt::dbg

#endif  // QPPT_DBG_LOCK_RANK_H_
