#include "dbg/invariants.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "util/env.h"

namespace qppt::dbg {

namespace {

std::atomic<bool> g_enabled{[] {
#ifdef QPPT_DBG_INVARIANTS
  int64_t def = 1;
#else
  int64_t def = 0;
#endif
  return GetEnvInt64("QPPT_DBG_INVARIANTS", def) != 0;
}()};

void Report(std::string* report, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (report != nullptr) {
    report->append(buf);
    report->push_back('\n');
  } else {
    std::fprintf(stderr, "qppt invariant violation: %s\n", buf);
  }
}

}  // namespace

bool InvariantsEnabled() {
  return g_enabled.load(std::memory_order_relaxed);  // relaxed: flag read,
  // no data is published through it
}

bool SetInvariantsEnabled(bool on) {
  return g_enabled.exchange(on, std::memory_order_relaxed);  // relaxed:
  // test-only toggle, callers synchronize externally
}

size_t AuditVersionChains(const MvccTable& table, std::string* report) {
  size_t violations = 0;
  // Per-chain walk state, reset at every view.newest.
  bool have_prev = false;
  Timestamp prev_begin = 0;  // newer neighbor's stamps (committed only)
  table.ForEachChainVersion([&](const MvccTable::VersionView& v) {
    if (v.newest) have_prev = false;
    bool committed = v.begin_ts != kTsInfinity;
    if (!committed) {
      if (!v.newest) {
        ++violations;
        Report(report,
               "row %llu rid %llu: uncommitted version below the chain head",
               (unsigned long long)v.logical, (unsigned long long)v.rid);
      }
      return;  // uncommitted stamps carry no ordering information yet
    }
    if (v.end_ts < v.begin_ts) {
      ++violations;
      Report(report,
             "row %llu rid %llu: end_ts %llu < begin_ts %llu",
             (unsigned long long)v.logical, (unsigned long long)v.rid,
             (unsigned long long)v.end_ts, (unsigned long long)v.begin_ts);
    }
    if (have_prev) {
      if (v.begin_ts > prev_begin) {
        ++violations;
        Report(report,
               "row %llu rid %llu: begin_ts %llu newer than its newer "
               "neighbor's %llu (chain not time-ordered)",
               (unsigned long long)v.logical, (unsigned long long)v.rid,
               (unsigned long long)v.begin_ts,
               (unsigned long long)prev_begin);
      }
      if (v.end_ts != kTsInfinity && v.end_ts != prev_begin) {
        ++violations;
        Report(report,
               "row %llu rid %llu: end_ts %llu does not seam with its "
               "newer neighbor's begin_ts %llu",
               (unsigned long long)v.logical, (unsigned long long)v.rid,
               (unsigned long long)v.end_ts,
               (unsigned long long)prev_begin);
      }
    }
    have_prev = true;
    prev_begin = v.begin_ts;
  });
  return violations;
}

size_t AuditReclaimHorizon(Timestamp horizon_used, Timestamp oldest_pinned,
                           std::string* report) {
  if (horizon_used <= oldest_pinned) return 0;
  Report(report,
         "reclamation horizon %llu passed the oldest pinned snapshot %llu",
         (unsigned long long)horizon_used, (unsigned long long)oldest_pinned);
  return 1;
}

void CheckVersionChains(const MvccTable& table) {
  if (!InvariantsEnabled()) return;
  if (AuditVersionChains(table, nullptr) > 0) std::abort();
}

void CheckReclaimHorizon(Timestamp horizon_used, Timestamp oldest_pinned) {
  if (!InvariantsEnabled()) return;
  if (AuditReclaimHorizon(horizon_used, oldest_pinned, nullptr) > 0) {
    std::abort();
  }
}

}  // namespace qppt::dbg
