#include "dbg/lock_rank.h"

#include <cstdio>
#include <cstdlib>

#include "dbg/invariants.h"

namespace qppt::dbg {

namespace {

constexpr int kMaxHeld = 16;

// Per-thread stack of held ranks. A fixed array: the engine never nests
// anywhere near kMaxHeld mutexes, and a fixed POD thread_local has no
// destructor-ordering hazards during thread teardown.
struct HeldStack {
  int depth = 0;
  LockRank ranks[kMaxHeld];
};
thread_local HeldStack t_held;

const char* RankName(LockRank rank) {
  switch (rank) {
    case LockRank::kAdmission: return "admission";
    case LockRank::kPlanCache: return "plan-cache";
    case LockRank::kDatabaseWrite: return "database-write";
    case LockRank::kReadPins: return "read-pins";
    case LockRank::kReadBatcherMap: return "read-batcher-map";
    case LockRank::kReadBatcher: return "read-batcher";
    case LockRank::kScheduler: return "scheduler";
    case LockRank::kTunerMap: return "tuner-map";
    case LockRank::kMorselTuner: return "morsel-tuner";
    case LockRank::kMetrics: return "metrics";
    case LockRank::kAllocator: return "allocator";
    case LockRank::kFailpoint: return "failpoint";
  }
  return "?";
}

[[noreturn]] void Die(const HeldStack& held, LockRank rank,
                      const char* what) {
  std::fprintf(stderr,
               "qppt lock-rank violation: %s %s(%d) while holding [",
               what, RankName(rank), static_cast<int>(rank));
  for (int i = 0; i < held.depth; ++i) {
    std::fprintf(stderr, "%s%s(%d)", i > 0 ? " " : "",
                 RankName(held.ranks[i]), static_cast<int>(held.ranks[i]));
  }
  std::fprintf(stderr, "]\n");
  std::abort();
}

}  // namespace

void NoteLockAcquired(LockRank rank) {
  if (!InvariantsEnabled()) return;
  HeldStack& held = t_held;
  if (held.depth > 0 && held.ranks[held.depth - 1] >= rank) {
    Die(held, rank, "acquiring");
  }
  if (held.depth >= kMaxHeld) Die(held, rank, "overflow acquiring");
  held.ranks[held.depth++] = rank;
}

void NoteLockReleased(LockRank rank) {
  if (!InvariantsEnabled()) return;
  HeldStack& held = t_held;
  // Enforcement may have been switched on or off mid-scope (tests):
  // tolerate releasing a rank that was never noted by searching instead
  // of demanding strict LIFO, and ignoring a miss.
  for (int i = held.depth; i-- > 0;) {
    if (held.ranks[i] != rank) continue;
    for (int j = i + 1; j < held.depth; ++j) held.ranks[j - 1] = held.ranks[j];
    --held.depth;
    return;
  }
}

}  // namespace qppt::dbg
