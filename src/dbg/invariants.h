// Runtime invariant audits for debug/sanitizer builds.
//
// QPPT's MVCC correctness rests on properties no single call site can
// assert: version-chain timestamp monotonicity (a chain walked
// newest-first never shows time running forwards again) and the
// reclamation horizon never passing a pinned snapshot. This module
// checks them at the natural chokepoints — the engine calls
// CheckVersionChains / CheckReclaimHorizon from the write-commit and
// reclamation paths when invariants are enabled.
//
// Enablement mirrors dbg/lock_rank.h: compiled-in default ON under the
// QPPT_DBG_INVARIANTS build define (Debug / sanitizer CMake builds),
// OFF otherwise; the QPPT_DBG_INVARIANTS environment variable (0/1)
// overrides, and tests can toggle programmatically. The Audit*
// functions always run when called and report violations instead of
// aborting, so tests can exercise them in any build; the Check*
// wrappers are the abort-on-violation hooks the engine embeds.

#ifndef QPPT_DBG_INVARIANTS_H_
#define QPPT_DBG_INVARIANTS_H_

#include <cstddef>
#include <string>

#include "storage/mvcc.h"

namespace qppt::dbg {

// Process-wide enforcement flag shared by every dbg check (lock ranks
// and invariant audits).
bool InvariantsEnabled();
// Toggles enforcement at runtime (tests). Returns the previous value.
bool SetInvariantsEnabled(bool on);

// Audits every version chain of `table`:
//   - at most one uncommitted version (begin_ts == kTsInfinity) per
//     chain, and only at the head;
//   - committed begin_ts non-increasing walking newest -> older (equal
//     only for versions stamped by the same commit);
//   - end_ts >= begin_ts for every committed version;
//   - adjacent committed versions seam exactly: older.end_ts ==
//     newer.begin_ts (supersession stamps both sides with one ts).
// Returns the number of violations; appends one line per violation to
// *report when given. Writer-serialized (walks the chains reclamation
// unlinks).
size_t AuditVersionChains(const MvccTable& table,
                          std::string* report = nullptr);

// Audits one reclamation decision: the horizon the sweep used must not
// exceed the oldest snapshot still pinned at sweep time (versions a
// pinned reader can reach must survive). Returns 0 or 1 violations.
size_t AuditReclaimHorizon(Timestamp horizon_used, Timestamp oldest_pinned,
                           std::string* report = nullptr);

// Abort-on-violation wrappers, no-ops unless InvariantsEnabled(). The
// engine calls these from WriteSession::Commit and
// EngineRunner::ReclaimVersions.
void CheckVersionChains(const MvccTable& table);
void CheckReclaimHorizon(Timestamp horizon_used, Timestamp oldest_pinned);

}  // namespace qppt::dbg

#endif  // QPPT_DBG_INVARIANTS_H_
