// Intra-operator parallelism (§7, "Future Challenges").
//
// The paper's argument for why QPPT parallelizes well: the prefix tree is
// unbalanced and *deterministic* — a key's position never moves — so the
// tree splits into disjoint subtrees by key range, and subtrees can be
// assigned to threads without the rebalancing hazards of B-trees (a
// balancing operation may move already-processed data into another
// thread's subtree). This header provides that partitioning for both
// index families plus a simple fork-join driver, which is the substrate a
// parallel operator needs; the shipped operators remain single-threaded,
// matching the paper's evaluation setup.

#ifndef QPPT_CORE_PARALLEL_H_
#define QPPT_CORE_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "index/kiss_tree.h"
#include "index/prefix_tree.h"

namespace qppt {

// Key subranges [lo, hi] (inclusive) covering the tree's populated key
// span, aligned to root buckets so no level-2 node is shared between
// shards. Returns at most `shards` non-empty ranges, in ascending order.
inline std::vector<std::pair<uint32_t, uint32_t>> PartitionKissRange(
    const KissTree& tree, size_t shards) {
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  if (tree.empty() || shards == 0) return ranges;
  size_t l2 = tree.level2_bits();
  uint64_t first_bucket = tree.min_key() >> l2;
  uint64_t last_bucket = tree.max_key() >> l2;
  uint64_t buckets = last_bucket - first_bucket + 1;
  if (shards > buckets) shards = static_cast<size_t>(buckets);
  uint64_t per_shard = buckets / shards;
  uint64_t extra = buckets % shards;
  uint64_t bucket = first_bucket;
  for (size_t s = 0; s < shards; ++s) {
    uint64_t take = per_shard + (s < extra ? 1 : 0);
    uint64_t end_bucket = bucket + take - 1;
    uint32_t lo = static_cast<uint32_t>(bucket << l2);
    uint32_t hi = static_cast<uint32_t>(((end_bucket + 1) << l2) - 1);
    if (bucket == first_bucket) lo = tree.min_key();
    if (end_bucket == last_bucket) hi = tree.max_key();
    ranges.emplace_back(lo, hi);
    bucket = end_bucket + 1;
  }
  return ranges;
}

// Scans a KISS-Tree with `threads` worker threads, one disjoint key shard
// set per thread. F: void(size_t shard, uint32_t key,
// const KissTree::ValueRef&). Each shard is scanned in ascending key
// order; shards run concurrently, so F must be safe for concurrent calls
// with distinct `shard` values (e.g. write to per-shard accumulators).
template <typename F>
void ParallelScan(const KissTree& tree, size_t threads, F&& fn) {
  auto ranges = PartitionKissRange(tree, threads);
  if (ranges.empty()) return;
  if (ranges.size() == 1) {
    tree.ScanRange(ranges[0].first, ranges[0].second,
                   [&](uint32_t key, const KissTree::ValueRef& values) {
                     fn(size_t{0}, key, values);
                   });
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(ranges.size());
  for (size_t s = 0; s < ranges.size(); ++s) {
    workers.emplace_back([&, s] {
      tree.ScanRange(ranges[s].first, ranges[s].second,
                     [&](uint32_t key, const KissTree::ValueRef& values) {
                       fn(s, key, values);
                     });
    });
  }
  for (auto& w : workers) w.join();
}

// Scans a prefix tree with `threads` workers by splitting the root node's
// buckets into contiguous spans. F: void(size_t shard,
// const PrefixTree::ContentNode&).
template <typename F>
void ParallelScan(const PrefixTree& tree, size_t threads, F&& fn) {
  if (tree.num_keys() == 0 || threads == 0) return;
  size_t fanout = std::min(tree.fanout(),
                           size_t{1} << std::min<size_t>(
                               tree.config().kprime, tree.key_len() * 8));
  if (threads > fanout) threads = fanout;
  if (threads <= 1) {
    tree.ScanRootSlots(0, fanout, [&](const PrefixTree::ContentNode& c) {
      fn(size_t{0}, c);
    });
    return;
  }
  size_t per = fanout / threads;
  size_t extra = fanout % threads;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  size_t begin = 0;
  for (size_t s = 0; s < threads; ++s) {
    size_t take = per + (s < extra ? 1 : 0);
    size_t end = begin + take;
    workers.emplace_back([&, s, begin, end] {
      tree.ScanRootSlots(begin, end, [&](const PrefixTree::ContentNode& c) {
        fn(s, c);
      });
    });
    begin = end;
  }
  for (auto& w : workers) w.join();
}

// Convenience: parallel duplicate-aware tuple count (sanity/statistics).
inline uint64_t ParallelCountValues(const KissTree& tree, size_t threads) {
  std::vector<uint64_t> counts(threads == 0 ? 1 : threads, 0);
  ParallelScan(tree, threads,
               [&](size_t shard, uint32_t, const KissTree::ValueRef& v) {
                 counts[shard] += v.size();
               });
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  return total;
}

}  // namespace qppt

#endif  // QPPT_CORE_PARALLEL_H_
