// Intra-operator parallelism (§7, "Future Challenges").
//
// The paper's argument for why QPPT parallelizes well: the prefix tree is
// unbalanced and *deterministic* — a key's position never moves — so the
// tree splits into disjoint subtrees by key range, and subtrees can be
// assigned to threads without the rebalancing hazards of B-trees (a
// balancing operation may move already-processed data into another
// thread's subtree). This header provides that partitioning for both
// index families plus a simple fork-join driver. PartitionKissRange /
// PartitionPrefixRange are also the morsel sources of the engine layer
// (engine/scheduler.h), which turns the substrate into concurrent
// operator throughput.

#ifndef QPPT_CORE_PARALLEL_H_
#define QPPT_CORE_PARALLEL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "index/kiss_tree.h"
#include "index/prefix_tree.h"

namespace qppt {

// Fork-join scope: spawned workers are joined on scope exit no matter how
// the scope unwinds, and the first exception a worker throws is captured
// and rethrown from Join() on the forking thread. Without this, a throwing
// shard functor escapes its std::thread and terminates the process.
class ForkJoin {
 public:
  explicit ForkJoin(size_t expected = 0) { workers_.reserve(expected); }
  ~ForkJoin() { JoinAll(); }
  ForkJoin(const ForkJoin&) = delete;
  ForkJoin& operator=(const ForkJoin&) = delete;

  template <typename F>
  void Spawn(F&& fn) {
    workers_.emplace_back([this, fn = std::forward<F>(fn)]() mutable {
      try {
        fn();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
    });
  }

  // Joins all workers, then rethrows the first captured exception (if any).
  void Join() {
    JoinAll();
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  void JoinAll() {
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    workers_.clear();
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::exception_ptr error_;
};

// Key subranges [lo, hi] (inclusive) covering the intersection of
// [span_lo, span_hi] with the tree's populated key span, aligned to root
// buckets so no level-2 node is shared between shards. Returns at most
// `shards` non-empty ranges, in ascending order.
inline std::vector<std::pair<uint32_t, uint32_t>> PartitionKissRange(
    const KissTree& tree, uint32_t span_lo, uint32_t span_hi, size_t shards) {
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  if (tree.empty() || shards == 0) return ranges;
  uint32_t lo = std::max(span_lo, tree.min_key());
  uint32_t hi = std::min(span_hi, tree.max_key());
  if (lo > hi) return ranges;
  size_t l2 = tree.level2_bits();
  uint64_t first_bucket = lo >> l2;
  uint64_t last_bucket = hi >> l2;
  uint64_t buckets = last_bucket - first_bucket + 1;
  if (shards > buckets) shards = static_cast<size_t>(buckets);
  uint64_t per_shard = buckets / shards;
  uint64_t extra = buckets % shards;
  uint64_t bucket = first_bucket;
  for (size_t s = 0; s < shards; ++s) {
    uint64_t take = per_shard + (s < extra ? 1 : 0);
    uint64_t end_bucket = bucket + take - 1;
    uint32_t range_lo = static_cast<uint32_t>(bucket << l2);
    uint32_t range_hi = static_cast<uint32_t>(((end_bucket + 1) << l2) - 1);
    if (bucket == first_bucket) range_lo = lo;
    if (end_bucket == last_bucket) range_hi = hi;
    ranges.emplace_back(range_lo, range_hi);
    bucket = end_bucket + 1;
  }
  return ranges;
}

// Full-span overload: covers the tree's whole populated key range.
inline std::vector<std::pair<uint32_t, uint32_t>> PartitionKissRange(
    const KissTree& tree, size_t shards) {
  return PartitionKissRange(tree, 0, std::numeric_limits<uint32_t>::max(),
                            shards);
}

// Chops [0, n) into at most `shards` contiguous, non-empty [begin, end)
// slices differing in size by at most one — the balanced split shared by
// every morsel and merge-range planner.
inline std::vector<std::pair<size_t, size_t>> SplitEvenly(size_t n,
                                                          size_t shards) {
  std::vector<std::pair<size_t, size_t>> slices;
  if (n == 0 || shards == 0) return slices;
  if (shards > n) shards = n;
  size_t per = n / shards;
  size_t extra = n % shards;
  size_t at = 0;
  for (size_t s = 0; s < shards; ++s) {
    size_t take = per + (s < extra ? 1 : 0);
    slices.emplace_back(at, at + take);
    at += take;
  }
  return slices;
}

// Chops the ascending slot list `used` into at most `shards` contiguous
// spans [begin, end), each holding a balanced share of the listed slots.
inline std::vector<std::pair<size_t, size_t>> SpansOverUsedSlots(
    const std::vector<size_t>& used, size_t shards) {
  std::vector<std::pair<size_t, size_t>> ranges;
  for (const auto& [begin, end] : SplitEvenly(used.size(), shards)) {
    ranges.emplace_back(used[begin], used[end - 1] + 1);
  }
  return ranges;
}

// The effective root fanout of a prefix tree (short keys can make the
// first fragment narrower than 2^kprime).
inline size_t PrefixRootFanout(const PrefixTree& tree) {
  return std::min(tree.fanout(),
                  size_t{1} << std::min<size_t>(tree.config().kprime,
                                                tree.key_len() * 8));
}

// Root-slot spans [begin, end) partitioning a prefix tree into at most
// `shards` disjoint subtree groups. Only *populated* root slots count
// toward the balance, so a skewed tree still yields evenly loaded shards;
// every returned span contains at least one populated slot.
inline std::vector<std::pair<size_t, size_t>> PartitionPrefixRange(
    const PrefixTree& tree, size_t shards) {
  if (tree.num_keys() == 0 || shards == 0) return {};
  size_t fanout = PrefixRootFanout(tree);
  std::vector<size_t> used;
  for (size_t i = 0; i < fanout; ++i) {
    if (PrefixTree::LoadSlot(&tree.root()->slots[i]) != 0) used.push_back(i);
  }
  return SpansOverUsedSlots(used, shards);
}

// (Pair partitioning for the parallel synchronous index scan lives in
// core/sync_scan.h — FindPairScanLevel descends the shared single-slot
// chain to the branching level before splitting, so keys with long
// common encoded prefixes still parallelize.)

// Scans a KISS-Tree with `threads` worker threads, one disjoint key shard
// set per thread. F: void(size_t shard, uint32_t key,
// const KissTree::ValueRef&). Each shard is scanned in ascending key
// order; shards run concurrently, so F must be safe for concurrent calls
// with distinct `shard` values (e.g. write to per-shard accumulators).
template <typename F>
void ParallelScan(const KissTree& tree, size_t threads, F&& fn) {
  auto ranges = PartitionKissRange(tree, threads);
  if (ranges.empty()) return;
  if (ranges.size() == 1) {
    tree.ScanRange(ranges[0].first, ranges[0].second,
                   [&](uint32_t key, const KissTree::ValueRef& values) {
                     fn(size_t{0}, key, values);
                   });
    return;
  }
  ForkJoin fork(ranges.size());
  for (size_t s = 0; s < ranges.size(); ++s) {
    fork.Spawn([&, s] {
      tree.ScanRange(ranges[s].first, ranges[s].second,
                     [&](uint32_t key, const KissTree::ValueRef& values) {
                       fn(s, key, values);
                     });
    });
  }
  fork.Join();
}

// Scans a prefix tree with `threads` workers by splitting the root node's
// populated buckets into contiguous spans. F: void(size_t shard,
// const PrefixTree::ContentNode&).
template <typename F>
void ParallelScan(const PrefixTree& tree, size_t threads, F&& fn) {
  auto ranges = PartitionPrefixRange(tree, threads);
  if (ranges.empty()) return;
  if (ranges.size() == 1) {
    tree.ScanRootSlots(ranges[0].first, ranges[0].second,
                       [&](const PrefixTree::ContentNode& c) {
                         fn(size_t{0}, c);
                       });
    return;
  }
  ForkJoin fork(ranges.size());
  for (size_t s = 0; s < ranges.size(); ++s) {
    fork.Spawn([&, s] {
      tree.ScanRootSlots(ranges[s].first, ranges[s].second,
                         [&](const PrefixTree::ContentNode& c) { fn(s, c); });
    });
  }
  fork.Join();
}

// Convenience: parallel duplicate-aware tuple count (sanity/statistics).
inline uint64_t ParallelCountValues(const KissTree& tree, size_t threads) {
  std::vector<uint64_t> counts(threads == 0 ? 1 : threads, 0);
  ParallelScan(tree, threads,
               [&](size_t shard, uint32_t, const KissTree::ValueRef& v) {
                 counts[shard] += v.size();
               });
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  return total;
}

}  // namespace qppt

#endif  // QPPT_CORE_PARALLEL_H_
