#include "core/sync_scan.h"

#include <cstdint>

#include "util/bits.h"

namespace qppt {
namespace internal {

const PrefixTree::ContentNode* FindInSubtree(const PrefixTree& tree,
                                             const PrefixTree::Node* node,
                                             size_t bit_off,
                                             const uint8_t* key) {
  size_t key_len = tree.key_len();
  size_t key_bits = key_len * 8;
  size_t kprime = tree.config().kprime;
  for (;;) {
    size_t rest = key_bits - bit_off;
    size_t width = rest < kprime ? rest : kprime;
    uint32_t frag = ExtractFragment(key, key_len, bit_off, width);
    PrefixTree::Slot slot = PrefixTree::LoadSlot(&node->slots[frag]);
    if (slot == 0) return nullptr;
    if (PrefixTree::IsContent(slot)) {
      const auto* c = PrefixTree::AsContent(slot);
      return CompareKeys(c->key(), key, key_len) == 0 ? c : nullptr;
    }
    node = PrefixTree::AsNode(slot);
    bit_off += width;
  }
}

}  // namespace internal
}  // namespace qppt
