// The synchronous index scan (§4.2, Figure 6).
//
// QPPT's join algorithm for two unbalanced prefix-tree-based indexes that
// are both keyed on the join attribute: scan the two trees in lock step and
// descend only into buckets that are *in use by both* indexes — subtrees
// present in only one tree are skipped wholesale, which is where the
// algorithm beats probe-based joins when the key overlap is small.
//
// For two KISS-Trees the lock-step scan runs over the root arrays,
// restricted to [max(left.min, right.min), min(left.max, right.max)] so
// dense keys never pay for the full 2^26-entry roots (§4.2). For two
// generalized prefix trees the scan recurses structurally; content nodes
// met above the full key depth (dynamic expansion) are matched against the
// other tree's subtree directly.
//
// The same scan drives the set operators (intersection, §4.1).

#ifndef QPPT_CORE_SYNC_SCAN_H_
#define QPPT_CORE_SYNC_SCAN_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "index/kiss_tree.h"
#include "index/prefix_tree.h"

namespace qppt {

// ---- KISS-Tree x KISS-Tree ---------------------------------------------------
//
// F: void(uint32_t key, const KissTree::ValueRef& left_values,
//         const KissTree::ValueRef& right_values)
//
// The range variant restricts the lock-step scan to keys in
// [span_lo, span_hi] — the engine layer partitions the shared span into
// disjoint morsels and runs one SynchronousScanRange per morsel, so the
// join parallelizes without the two trees ever being mutated.
template <typename F>
void SynchronousScanRange(const KissTree& left, const KissTree& right,
                          uint32_t span_lo, uint32_t span_hi, F&& fn) {
  if (left.empty() || right.empty()) return;
  assert(left.root_size() == right.root_size() &&
         "synchronous scan requires identical root fragment widths");
  uint32_t lo = std::max({span_lo, left.min_key(), right.min_key()});
  uint32_t hi = std::min({span_hi, left.max_key(), right.max_key()});
  if (lo > hi) return;
  size_t l2 = left.level2_bits();
  size_t first_bucket = lo >> l2;
  size_t last_bucket = hi >> l2;
  for (size_t b = first_bucket; b <= last_bucket; ++b) {
    uint32_t lh = left.RootEntry(b);
    if (lh == CompactSlab::kNullHandle) continue;
    uint32_t rh = right.RootEntry(b);
    if (rh == CompactSlab::kNullHandle) continue;  // skipped descent
    // Both level-2 nodes exist: iterate the (smaller representation of
    // the) left node's used slots and probe the right node's slot.
    left.ForEachLevel2Slot(lh, [&](uint32_t slot, uint64_t left_entry) {
      uint64_t right_entry = right.Level2Entry(rh, slot);
      if (right_entry == 0) return;
      uint32_t key = static_cast<uint32_t>((b << l2) | slot);
      if (key < lo || key > hi) return;
      fn(key, left.DecodeEntry(left_entry), right.DecodeEntry(right_entry));
    });
  }
}

template <typename F>
void SynchronousScan(const KissTree& left, const KissTree& right, F&& fn) {
  SynchronousScanRange(left, right, 0, std::numeric_limits<uint32_t>::max(),
                       static_cast<F&&>(fn));
}

// ---- prefix tree x prefix tree ------------------------------------------------

namespace internal {

// Finds `key` within the subtree rooted at `node` (whose first fragment
// starts at `bit_off`). Mirrors PrefixTree::Find but starts mid-tree.
const PrefixTree::ContentNode* FindInSubtree(const PrefixTree& tree,
                                             const PrefixTree::Node* node,
                                             size_t bit_off,
                                             const uint8_t* key);

template <typename F>
void SyncScanRec(const PrefixTree& left, const PrefixTree& right,
                 const PrefixTree::Node* lnode,
                 const PrefixTree::Node* rnode, size_t bit_off, F&& fn);

// Handles one matched slot pair (both sides non-empty) met at depth
// `bit_off` + `width`: content/content compares keys, content/subtree
// probes the subtree, node/node recurses.
template <typename F>
void SyncScanSlotPair(const PrefixTree& left, const PrefixTree& right,
                      PrefixTree::Slot ls, PrefixTree::Slot rs,
                      size_t bit_off, size_t width, F&& fn) {
  bool lc = PrefixTree::IsContent(ls);
  bool rc = PrefixTree::IsContent(rs);
  if (lc && rc) {
    const auto* a = PrefixTree::AsContent(ls);
    const auto* b = PrefixTree::AsContent(rs);
    if (CompareKeys(a->key(), b->key(), left.key_len()) == 0) {
      fn(a->key(), left.ValuesOf(a), right.ValuesOf(b));
    }
  } else if (lc) {
    // Left content vs right subtree: the content key either exists in
    // the right subtree or the pair has no matches here.
    const auto* a = PrefixTree::AsContent(ls);
    const auto* b = internal::FindInSubtree(
        right, PrefixTree::AsNode(rs), bit_off + width, a->key());
    if (b != nullptr) fn(a->key(), left.ValuesOf(a), right.ValuesOf(b));
  } else if (rc) {
    const auto* b = PrefixTree::AsContent(rs);
    const auto* a = internal::FindInSubtree(
        left, PrefixTree::AsNode(ls), bit_off + width, b->key());
    if (a != nullptr) fn(b->key(), left.ValuesOf(a), right.ValuesOf(b));
  } else {
    SyncScanRec(left, right, PrefixTree::AsNode(ls), PrefixTree::AsNode(rs),
                bit_off + width, fn);
  }
}

template <typename F>
void SyncScanRec(const PrefixTree& left, const PrefixTree& right,
                 const PrefixTree::Node* lnode,
                 const PrefixTree::Node* rnode, size_t bit_off, F&& fn) {
  size_t key_bits = left.key_len() * 8;
  size_t width = std::min(left.config().kprime, key_bits - bit_off);
  size_t fanout = size_t{1} << width;
  for (size_t i = 0; i < fanout; ++i) {
    PrefixTree::Slot ls = PrefixTree::LoadSlot(&lnode->slots[i]);
    if (ls == 0) continue;
    PrefixTree::Slot rs = PrefixTree::LoadSlot(&rnode->slots[i]);
    if (rs == 0) continue;  // skipped descent: bucket unused on one side
    SyncScanSlotPair(left, right, ls, rs, bit_off, width, fn);
  }
}

}  // namespace internal

// F: void(const uint8_t* key, const ValueList* left, const ValueList* right)
// Keys are visited in ascending encoded order.
template <typename F>
void SynchronousScan(const PrefixTree& left, const PrefixTree& right,
                     F&& fn) {
  assert(left.key_len() == right.key_len() &&
         left.config().kprime == right.config().kprime &&
         "synchronous scan requires identical key layout");
  if (left.num_keys() == 0 || right.num_keys() == 0) return;
  internal::SyncScanRec(left, right, left.root(), right.root(), 0, fn);
}

// ---- parallel pair scan (branching-level partitioning) -----------------------
//
// Order-preserving encodings give keys long shared prefixes (e.g. the
// sign-flipped leading bytes of small int64 keys), so the top of both
// trees is a chain of single-slot inner nodes holding zero parallelism.
// FindPairScanLevel descends that chain to the *branching level*: the
// shallowest level with more than one jointly populated slot (or a
// content node). Its slot list is the morsel source of the parallel
// prefix-tree star join — each jointly populated slot is an independent
// subtree pair, scanned by SynchronousScanPairSlots.

struct PairScanLevel {
  const PrefixTree::Node* lnode = nullptr;
  const PrefixTree::Node* rnode = nullptr;
  size_t bit_off = 0;          // bit offset of this level's fragment
  size_t width = 0;            // fragment width at this level
  std::vector<size_t> slots;   // jointly populated slots, ascending
};

inline PairScanLevel FindPairScanLevel(const PrefixTree& left,
                                       const PrefixTree& right) {
  assert(left.key_len() == right.key_len() &&
         left.config().kprime == right.config().kprime &&
         "synchronous scan requires identical key layout");
  PairScanLevel level;
  if (left.num_keys() == 0 || right.num_keys() == 0) return level;
  size_t key_bits = left.key_len() * 8;
  const PrefixTree::Node* lnode = left.root();
  const PrefixTree::Node* rnode = right.root();
  size_t bit_off = 0;
  for (;;) {
    size_t width = std::min(left.config().kprime, key_bits - bit_off);
    level.lnode = lnode;
    level.rnode = rnode;
    level.bit_off = bit_off;
    level.width = width;
    level.slots.clear();
    size_t fanout = size_t{1} << width;
    for (size_t i = 0; i < fanout; ++i) {
      if (PrefixTree::LoadSlot(&lnode->slots[i]) != 0 &&
          PrefixTree::LoadSlot(&rnode->slots[i]) != 0) {
        level.slots.push_back(i);
      }
    }
    if (level.slots.size() != 1) return level;  // branched (or empty): stop
    PrefixTree::Slot ls = PrefixTree::LoadSlot(&lnode->slots[level.slots[0]]);
    PrefixTree::Slot rs = PrefixTree::LoadSlot(&rnode->slots[level.slots[0]]);
    if (PrefixTree::IsContent(ls) || PrefixTree::IsContent(rs) ||
        bit_off + width >= key_bits) {
      return level;  // single pair resolves directly — nothing to split
    }
    lnode = PrefixTree::AsNode(ls);
    rnode = PrefixTree::AsNode(rs);
    bit_off += width;
  }
}

// Scans the subtree pairs behind level.slots[begin..end) (indexes into
// the slot list), invoking fn exactly like SynchronousScan. Disjoint
// index subranges touch disjoint subtrees, so concurrent callers need no
// synchronization. Within a subrange, keys ascend in encoded order.
template <typename F>
void SynchronousScanPairSlots(const PrefixTree& left, const PrefixTree& right,
                              const PairScanLevel& level, size_t begin,
                              size_t end, F&& fn) {
  if (level.lnode == nullptr) return;
  if (end > level.slots.size()) end = level.slots.size();
  for (size_t s = begin; s < end; ++s) {
    size_t i = level.slots[s];
    internal::SyncScanSlotPair(
        left, right, PrefixTree::LoadSlot(&level.lnode->slots[i]),
        PrefixTree::LoadSlot(&level.rnode->slots[i]), level.bit_off,
        level.width, fn);
  }
}

}  // namespace qppt

#endif  // QPPT_CORE_SYNC_SCAN_H_
