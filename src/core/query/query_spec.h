// Declarative query descriptions — the planner's input (ISSUE 3).
//
// A QuerySpec describes a star/select query the way DexterDB's front door
// would receive it: one fact side (a base index to enter, an optional
// key-predicate + residual filter, and the fact columns the query reads)
// plus any number of dimensions (each either a filtered selection over a
// dimension base index or a direct probe of one), a group-by, aggregates,
// and an ORDER BY. It says nothing about operator choice: select-join
// fusion, star-join arity, intermediate keys, and the ORDER-BY strategy
// are the planner's job (core/query/planner.h), steered by PlanKnobs.
//
// QueryBuilder is the fluent construction API; ParamBinding/BindParams
// support prepared-query parameter re-binding (predicate constants only —
// rebinding never changes the plan shape).

#ifndef QPPT_CORE_QUERY_QUERY_SPEC_H_
#define QPPT_CORE_QUERY_QUERY_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/agg.h"
#include "core/operators/common.h"
#include "util/status.h"

namespace qppt::query {

// One dimension of the star. Exactly one access path must be set:
//   - select_index: the dimension is filtered first (SelectionOp into a
//     slot keyed on `key_column`), and the join consumes that slot;
//   - probe_index: the join consumes the base index directly (an
//     unfiltered dimension, e.g. SSB's date table in Q2/Q4.1).
struct DimensionSpec {
  std::string name;                 // e.g. "date" — slot defaults to "<name>_sel"
  std::string slot;                 // selection output slot (derived if empty)

  std::string select_index;         // base index the dim selection scans
  KeyPredicate predicate;           // on select_index's key
  std::vector<Residual> residuals;  // conjunctive residual filters
  std::string key_column;           // dim join key (the selection's output key)

  std::string probe_index;          // direct-probe base index (no selection)

  std::string fact_probe_column;    // fact column matched against the dim key
  std::vector<std::string> carry_columns;  // dim columns the query reads

  // Join this dimension in its own later join stage instead of composing
  // it into the star join (the Fig. 5 two-phase shape of SSB Q2).
  bool defer_join = false;

  bool has_selection() const { return !select_index.empty(); }
  // Slot name (selection path) resolved against the default.
  std::string SlotName() const {
    if (!slot.empty()) return slot;
    return name + "_sel";
  }
};

// The fact side: the base index the pipeline enters, an optional filter
// (kAll + no residuals = unfiltered), and the fact columns read anywhere
// in the query (probe columns, measures, group keys).
struct FactSpec {
  std::string table;                // informational
  std::string index;                // base index entered / scanned
  std::string selection_slot = "fact_sel";  // unfused fact selection slot
  KeyPredicate predicate;
  std::vector<Residual> residuals;
  std::vector<std::string> columns;

  bool filtered() const {
    return predicate.kind != KeyPredicate::Kind::kAll || !residuals.empty();
  }
};

struct OrderKey {
  std::string column;
  bool descending = false;
};

struct QuerySpec {
  std::string id;                   // diagnostic label
  FactSpec fact;
  std::vector<DimensionSpec> dimensions;
  // Result key columns; group keys when `aggregates` is non-empty.
  std::vector<std::string> group_by;
  AggSpec aggregates;
  // HAVING filters over the finalized group rows (group keys and
  // aggregate outputs); requires non-empty `aggregates`.
  std::vector<Residual> having;
  std::vector<OrderKey> order_by;
  std::string result_slot = "result";
};

// Fluent construction. Dimension attributes chain off Dim():
//
//   QueryBuilder b("ssb.2.1");
//   b.From("lineorder").FactIndex("lo_partkey")
//       .FactColumns({"lo_suppkey", "lo_orderdate", "lo_revenue"});
//   b.Dim("part").Select("p_category", KeyPredicate::Point(cat))
//       .Key("p_partkey").ProbeFrom("lo_partkey").Carry({"p_brand1"});
//   b.Dim("supp").Select("s_region", KeyPredicate::Point(region))
//       .Key("s_suppkey").ProbeFrom("lo_suppkey");
//   b.Dim("date").Probe("d_datekey").ProbeFrom("lo_orderdate")
//       .Carry({"d_year"}).Defer();
//   b.GroupBy({"d_year", "p_brand1"})
//       .Aggregate(AggFn::kSum, ScalarExpr::Column("lo_revenue"), "revenue")
//       .OrderBy("d_year").OrderBy("p_brand1");
//   QuerySpec spec = std::move(b).Build();
class QueryBuilder {
 public:
  explicit QueryBuilder(std::string id = "") { spec_.id = std::move(id); }

  QueryBuilder& From(std::string fact_table) {
    spec_.fact.table = std::move(fact_table);
    return *this;
  }
  QueryBuilder& FactIndex(std::string index) {
    spec_.fact.index = std::move(index);
    return *this;
  }
  QueryBuilder& FactSlot(std::string slot) {
    spec_.fact.selection_slot = std::move(slot);
    return *this;
  }
  QueryBuilder& FactColumns(std::vector<std::string> columns) {
    spec_.fact.columns = std::move(columns);
    return *this;
  }
  // Fact key predicate (on FactIndex's key attribute).
  QueryBuilder& Where(KeyPredicate predicate) {
    spec_.fact.predicate = predicate;
    return *this;
  }
  QueryBuilder& Filter(Residual residual) {
    spec_.fact.residuals.push_back(std::move(residual));
    return *this;
  }

  class DimBuilder {
   public:
    DimBuilder& Select(std::string index,
                       KeyPredicate predicate = KeyPredicate::All()) {
      dim().select_index = std::move(index);
      dim().predicate = predicate;
      return *this;
    }
    DimBuilder& Filter(Residual residual) {
      dim().residuals.push_back(std::move(residual));
      return *this;
    }
    DimBuilder& Key(std::string dim_key_column) {
      dim().key_column = std::move(dim_key_column);
      return *this;
    }
    DimBuilder& Probe(std::string base_index) {
      dim().probe_index = std::move(base_index);
      return *this;
    }
    DimBuilder& ProbeFrom(std::string fact_column) {
      dim().fact_probe_column = std::move(fact_column);
      return *this;
    }
    DimBuilder& Carry(std::vector<std::string> columns) {
      dim().carry_columns = std::move(columns);
      return *this;
    }
    DimBuilder& Slot(std::string slot) {
      dim().slot = std::move(slot);
      return *this;
    }
    DimBuilder& Defer() {
      dim().defer_join = true;
      return *this;
    }
    QueryBuilder& Done() { return *owner_; }

   private:
    friend class QueryBuilder;
    DimBuilder(QueryBuilder* owner, size_t at) : owner_(owner), at_(at) {}
    DimensionSpec& dim() { return owner_->spec_.dimensions[at_]; }

    QueryBuilder* owner_;
    size_t at_;
  };

  DimBuilder Dim(std::string name) {
    DimensionSpec dim;
    dim.name = std::move(name);
    spec_.dimensions.push_back(std::move(dim));
    return DimBuilder(this, spec_.dimensions.size() - 1);
  }

  QueryBuilder& GroupBy(std::vector<std::string> columns) {
    spec_.group_by = std::move(columns);
    return *this;
  }
  QueryBuilder& Aggregate(AggFn fn, ScalarExpr source, std::string out_name) {
    agg_terms_.push_back({fn, std::move(source), std::move(out_name)});
    return *this;
  }
  // HAVING filter on a group key or aggregate output column.
  QueryBuilder& Having(Residual residual) {
    spec_.having.push_back(std::move(residual));
    return *this;
  }
  QueryBuilder& OrderBy(std::string column) {
    spec_.order_by.push_back({std::move(column), false});
    return *this;
  }
  QueryBuilder& OrderByDesc(std::string column) {
    spec_.order_by.push_back({std::move(column), true});
    return *this;
  }
  QueryBuilder& ResultSlot(std::string slot) {
    spec_.result_slot = std::move(slot);
    return *this;
  }

  QuerySpec Build() && {
    spec_.aggregates = AggSpec(std::move(agg_terms_));
    return std::move(spec_);
  }

 private:
  QuerySpec spec_;
  std::vector<AggTerm> agg_terms_;
};

// ---- prepared-query parameters ---------------------------------------------
//
// A ParamBinding re-binds one predicate constant of a QuerySpec: the
// point value or a range bound, addressed by dimension name (or "fact"
// for the fact predicate). Re-binding never changes a predicate's kind,
// so a plan compiled for the spec keeps its shape for every binding.

struct ParamBinding {
  enum class Field : uint8_t { kPoint, kLo, kHi };

  std::string target;  // dimension name, or "fact"
  Field field = Field::kPoint;
  int64_t value = 0;

  static ParamBinding Point(std::string target, int64_t value) {
    return {std::move(target), Field::kPoint, value};
  }
  static ParamBinding Lo(std::string target, int64_t value) {
    return {std::move(target), Field::kLo, value};
  }
  static ParamBinding Hi(std::string target, int64_t value) {
    return {std::move(target), Field::kHi, value};
  }
};

using QueryParams = std::vector<ParamBinding>;

// Returns a copy of `spec` with every binding applied. Unknown targets,
// kind mismatches (e.g. kPoint against a range predicate), and duplicate
// (target, field) bindings fail.
Result<QuerySpec> BindParams(const QuerySpec& spec, const QueryParams& params);

// Canonical cache-key fragment for a parameter set (order-insensitive).
// Duplicate (target, field) bindings fail — they would alias two
// different binding outcomes to one key.
Result<std::string> ParamsKey(const QueryParams& params);

}  // namespace qppt::query

#endif  // QPPT_CORE_QUERY_QUERY_SPEC_H_
