// Rule-based planner: QuerySpec -> physical Plan (ISSUE 3 tentpole).
//
// PlanQuery owns, once and centrally, the plan-shape decisions the SSB
// drivers used to hand-wire per query:
//
//   - selection ordering: dimension selections first (spec order), then
//     the fact selection when one is needed;
//   - select-join fusion (knobs.use_select_join): a filtered fact side is
//     streamed straight into the first join instead of materializing the
//     selection output (§4.3, Fig. 8);
//   - star-join arity (knobs.max_join_ways): non-deferred dimensions are
//     composed greedily into the first join up to the cap; every
//     remaining dimension (capped-out or defer_join) gets its own 2-way
//     join in a chain of materialized intermediates (§4.2, Fig. 9);
//   - output wiring: every intermediate is keyed on the next join's probe
//     column and carries exactly the columns later stages still need; the
//     final stage groups/aggregates into the result slot;
//   - ORDER-BY strategy: an ORDER BY that is an ascending prefix of the
//     group-by falls out of the output index for free; anything else
//     becomes a post-sort attached to the plan (Plan::set_result_order).
//
// Every emitted operator carries a stage label ("sel:date_sel",
// "join:join1", ...) so ExplainPlan() and executed PlanStats rows line up
// line-for-line.

#ifndef QPPT_CORE_QUERY_PLANNER_H_
#define QPPT_CORE_QUERY_PLANNER_H_

#include <string>

#include "core/base_index.h"
#include "core/plan.h"
#include "core/query/query_spec.h"
#include "util/status.h"

namespace qppt::query {

// Compiles `spec` into an executable Plan against `db`'s catalog.
Result<Plan> PlanQuery(const Database& db, const QuerySpec& spec,
                       const PlanKnobs& knobs);

// Renders the plan PlanQuery would emit, without executing anything:
// one line per stage (label, physical operator, wiring) plus the
// ORDER-BY strategy.
Result<std::string> ExplainPlan(const Database& db, const QuerySpec& spec,
                                const PlanKnobs& knobs);

}  // namespace qppt::query

#endif  // QPPT_CORE_QUERY_PLANNER_H_
