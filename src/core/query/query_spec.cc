#include "core/query/query_spec.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace qppt::query {

namespace {

Status ApplyBinding(const ParamBinding& binding, KeyPredicate* predicate) {
  switch (binding.field) {
    case ParamBinding::Field::kPoint:
      if (predicate->kind != KeyPredicate::Kind::kPoint) {
        return Status::InvalidArgument(
            "param '" + binding.target +
            "': point binding against a non-point predicate");
      }
      predicate->point = binding.value;
      return Status::OK();
    case ParamBinding::Field::kLo:
      if (predicate->kind != KeyPredicate::Kind::kRange) {
        return Status::InvalidArgument(
            "param '" + binding.target +
            "': lo binding against a non-range predicate");
      }
      predicate->lo = binding.value;
      return Status::OK();
    case ParamBinding::Field::kHi:
      if (predicate->kind != KeyPredicate::Kind::kRange) {
        return Status::InvalidArgument(
            "param '" + binding.target +
            "': hi binding against a non-range predicate");
      }
      predicate->hi = binding.value;
      return Status::OK();
  }
  return Status::InvalidArgument("param '" + binding.target +
                                 "': unknown field");
}

}  // namespace

namespace {

Status CheckNoDuplicateBindings(const QueryParams& params) {
  for (size_t i = 0; i < params.size(); ++i) {
    for (size_t j = i + 1; j < params.size(); ++j) {
      if (params[i].target == params[j].target &&
          params[i].field == params[j].field) {
        return Status::InvalidArgument("duplicate param binding for '" +
                                       params[i].target + "'");
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<QuerySpec> BindParams(const QuerySpec& spec, const QueryParams& params) {
  QPPT_RETURN_NOT_OK(CheckNoDuplicateBindings(params));
  QuerySpec bound = spec;
  for (const ParamBinding& binding : params) {
    if (binding.target == "fact") {
      QPPT_RETURN_NOT_OK(ApplyBinding(binding, &bound.fact.predicate));
      continue;
    }
    bool found = false;
    for (DimensionSpec& dim : bound.dimensions) {
      if (dim.name != binding.target) continue;
      if (!dim.has_selection()) {
        return Status::InvalidArgument(
            "param '" + binding.target +
            "': dimension has no selection predicate to re-bind");
      }
      QPPT_RETURN_NOT_OK(ApplyBinding(binding, &dim.predicate));
      found = true;
      break;
    }
    if (!found) {
      return Status::InvalidArgument("param '" + binding.target +
                                     "': no such dimension (or \"fact\")");
    }
  }
  return bound;
}

Result<std::string> ParamsKey(const QueryParams& params) {
  QPPT_RETURN_NOT_OK(CheckNoDuplicateBindings(params));
  std::vector<std::string> parts;
  parts.reserve(params.size());
  for (const ParamBinding& p : params) {
    const char* field = p.field == ParamBinding::Field::kPoint ? "pt"
                        : p.field == ParamBinding::Field::kLo  ? "lo"
                                                               : "hi";
    parts.push_back(p.target + "." + field + "=" + std::to_string(p.value));
  }
  std::sort(parts.begin(), parts.end());
  std::string key;
  for (const std::string& part : parts) {
    if (!key.empty()) key += ",";
    key += part;
  }
  return key;
}

}  // namespace qppt::query
