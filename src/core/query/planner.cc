#include "core/query/planner.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/operators/having.h"
#include "core/operators/select_join.h"
#include "core/operators/selection.h"
#include "core/operators/star_join.h"

namespace qppt::query {

namespace {

bool Contains(const std::vector<std::string>& haystack,
              const std::string& needle) {
  for (const std::string& s : haystack) {
    if (s == needle) return true;
  }
  return false;
}

void AddUnique(std::vector<std::string>* list, const std::string& value) {
  if (!Contains(*list, value)) list->push_back(value);
}

// Columns an AggSpec reads from the assembled tuple.
std::vector<std::string> AggSourceColumns(const AggSpec& agg) {
  std::vector<std::string> cols;
  for (const AggTerm& term : agg.terms()) {
    if (term.fn == AggFn::kCount) continue;  // source ignored
    if (!term.source.lhs.empty()) AddUnique(&cols, term.source.lhs);
    if (term.source.op != ScalarExpr::Op::kColumn &&
        !term.source.rhs.empty()) {
      AddUnique(&cols, term.source.rhs);
    }
  }
  return cols;
}

std::string Describe(const KeyPredicate& p) {
  switch (p.kind) {
    case KeyPredicate::Kind::kAll:
      return "all";
    case KeyPredicate::Kind::kPoint:
      return "point(" + std::to_string(p.point) + ")";
    case KeyPredicate::Kind::kRange:
      return "range(" + std::to_string(p.lo) + ".." + std::to_string(p.hi) +
             ")";
    case KeyPredicate::Kind::kIn: {
      std::string out = "in{";
      for (size_t i = 0; i < p.in_points.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(p.in_points[i]);
      }
      return out + "}";
    }
  }
  return "?";
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ",";
    out += name;
  }
  return out;
}

SideRef DimSide(const DimensionSpec& dim) {
  return dim.has_selection() ? SideRef::Slot(dim.SlotName())
                             : SideRef::Base(dim.probe_index);
}

// One join stage of the chain the arity rule produced.
struct Stage {
  const DimensionSpec* main = nullptr;
  std::vector<const DimensionSpec*> assists;
  std::string out_slot;
  std::vector<std::string> out_keys;
  bool final = false;
};

struct PlannedOp {
  std::string label;
  std::unique_ptr<Operator> op;
  std::string detail;  // explain annotation (wiring summary)
};

// The planner's product, shared by PlanQuery and ExplainPlan.
struct PlanSketch {
  std::vector<PlannedOp> ops;
  std::vector<ResultOrderKey> post_sort;
  std::string order_note;
  std::string result_slot;
};

// The intermediate the final join aggregates into when a HAVING filter
// follows it.
std::string PreHavingSlot(const QuerySpec& spec) {
  return spec.result_slot + "_agg";
}

// True for slot names the planner generates for chain intermediates.
bool IsReservedJoinSlot(const std::string& slot) {
  if (slot.size() < 5 || slot.compare(0, 4, "join") != 0) return false;
  for (size_t i = 4; i < slot.size(); ++i) {
    if (slot[i] < '0' || slot[i] > '9') return false;
  }
  return true;
}

Status ValidateSpec(const Database& db, const QuerySpec& spec) {
  if (spec.fact.index.empty()) {
    return Status::InvalidArgument("query has no fact index");
  }
  QPPT_RETURN_NOT_OK(db.index(spec.fact.index).status());
  if (spec.fact.columns.empty()) {
    return Status::InvalidArgument("query reads no fact columns");
  }
  if (spec.group_by.empty()) {
    return Status::InvalidArgument("query has no group-by/result keys");
  }
  // Slot collisions fail at planning, not on the execute hot path: every
  // ExecContext slot the plan will populate must be distinct.
  std::vector<std::string> slots = {spec.result_slot,
                                    spec.fact.selection_slot};
  if (!spec.having.empty()) slots.push_back(PreHavingSlot(spec));
  std::vector<std::string> names;
  for (const DimensionSpec& dim : spec.dimensions) {
    if (dim.name == "fact") {
      return Status::InvalidArgument(
          "dimension name 'fact' is reserved for parameter bindings");
    }
    if (Contains(names, dim.name)) {
      return Status::InvalidArgument("duplicate dimension name '" +
                                     dim.name + "'");
    }
    names.push_back(dim.name);
    if (dim.has_selection()) {
      std::string slot = dim.SlotName();
      if (Contains(slots, slot) || IsReservedJoinSlot(slot)) {
        return Status::InvalidArgument("slot name '" + slot +
                                       "' collides with another plan slot");
      }
      slots.push_back(slot);
    }
  }
  if (spec.result_slot == spec.fact.selection_slot ||
      IsReservedJoinSlot(spec.result_slot) ||
      IsReservedJoinSlot(spec.fact.selection_slot)) {
    return Status::InvalidArgument("result/fact slot names collide with "
                                   "planner-generated join slots");
  }
  for (const DimensionSpec& dim : spec.dimensions) {
    if (dim.name.empty()) {
      return Status::InvalidArgument("dimension without a name");
    }
    if (dim.fact_probe_column.empty()) {
      return Status::InvalidArgument("dimension '" + dim.name +
                                     "' has no fact probe column");
    }
    if (dim.has_selection() == !dim.probe_index.empty()) {
      return Status::InvalidArgument(
          "dimension '" + dim.name +
          "' must set exactly one of Select(index) or Probe(index)");
    }
    if (dim.has_selection()) {
      QPPT_RETURN_NOT_OK(db.index(dim.select_index).status());
      if (dim.key_column.empty()) {
        return Status::InvalidArgument("dimension '" + dim.name +
                                       "' selection has no Key() column");
      }
    } else {
      QPPT_RETURN_NOT_OK(db.index(dim.probe_index).status());
      if (dim.predicate.kind != KeyPredicate::Kind::kAll ||
          !dim.residuals.empty()) {
        return Status::InvalidArgument(
            "dimension '" + dim.name +
            "' uses Probe() but carries a filter; use Select() instead");
      }
    }
  }
  // Every referenced output column must originate somewhere.
  std::vector<std::string> origins = spec.fact.columns;
  for (const DimensionSpec& dim : spec.dimensions) {
    for (const std::string& col : dim.carry_columns) {
      if (Contains(origins, col)) {
        return Status::InvalidArgument("column '" + col +
                                       "' provided by two query inputs");
      }
      origins.push_back(col);
    }
  }
  std::vector<std::string> final_refs = spec.group_by;
  for (const std::string& col : AggSourceColumns(spec.aggregates)) {
    AddUnique(&final_refs, col);
  }
  for (const std::string& col : final_refs) {
    if (!Contains(origins, col)) {
      return Status::InvalidArgument(
          "column '" + col + "' is not a fact column or a dimension carry");
    }
  }
  std::vector<std::string> result_columns = spec.group_by;
  for (const AggTerm& term : spec.aggregates.terms()) {
    result_columns.push_back(term.out_name);
  }
  for (const OrderKey& key : spec.order_by) {
    if (!Contains(result_columns, key.column)) {
      return Status::InvalidArgument("ORDER BY column '" + key.column +
                                     "' is not in the result");
    }
  }
  if (!spec.having.empty() && spec.aggregates.empty()) {
    return Status::InvalidArgument(
        "HAVING requires aggregates (filter plain rows with a selection "
        "residual instead)");
  }
  for (const Residual& residual : spec.having) {
    if (!Contains(result_columns, residual.column)) {
      return Status::InvalidArgument("HAVING column '" + residual.column +
                                     "' is not in the result");
    }
  }
  return Status::OK();
}

// Appends the HAVING stage: filters the aggregated intermediate's group
// rows into the result slot ("the logical selection and having operators
// are physically the same operator", §4.1).
void AppendHavingStage(const QuerySpec& spec, PlanSketch* sketch) {
  if (spec.having.empty()) return;
  HavingSpec having;
  having.input_slot = PreHavingSlot(spec);
  having.residuals = spec.having;
  having.output_slot = spec.result_slot;
  std::string detail = "-> " + spec.result_slot + " " +
                       std::to_string(spec.having.size()) + " residual(s)";
  sketch->ops.push_back({"having:" + spec.result_slot,
                         std::make_unique<HavingOp>(std::move(having)),
                         std::move(detail)});
}

// ORDER-BY strategy: free when it is an ascending prefix of the result
// keys (the output index already iterates in that order, §3).
void PlanOrderBy(const QuerySpec& spec, PlanSketch* sketch) {
  bool free_order = true;
  for (size_t i = 0; i < spec.order_by.size(); ++i) {
    if (i >= spec.group_by.size() || spec.order_by[i].descending ||
        spec.order_by[i].column != spec.group_by[i]) {
      free_order = false;
      break;
    }
  }
  if (spec.order_by.empty() || free_order) {
    sketch->order_note = "index order (free)";
    return;
  }
  std::string note = "post-sort(";
  for (size_t i = 0; i < spec.order_by.size(); ++i) {
    if (i > 0) note += ", ";
    note += spec.order_by[i].column;
    note += spec.order_by[i].descending ? " desc" : " asc";
    sketch->post_sort.push_back(
        {spec.order_by[i].column, spec.order_by[i].descending});
  }
  sketch->order_note = note + ")";
}

std::string AggNote(const AggSpec& agg) {
  if (agg.empty()) return "";
  std::string note = " agg=[";
  for (size_t i = 0; i < agg.terms().size(); ++i) {
    const AggTerm& t = agg.terms()[i];
    if (i > 0) note += ",";
    note += std::string(AggFnToString(t.fn)) + "(" + t.source.ToString() +
            ")->" + t.out_name;
  }
  return note + "]";
}

Result<PlanSketch> BuildSketch(const Database& db, const QuerySpec& spec,
                               const PlanKnobs& knobs) {
  QPPT_RETURN_NOT_OK(ValidateSpec(db, spec));
  PlanSketch sketch;
  sketch.result_slot = spec.result_slot;
  const FactSpec& fact = spec.fact;

  // Stage 0a: dimension selections, in declaration order.
  for (const DimensionSpec& dim : spec.dimensions) {
    if (!dim.has_selection()) continue;
    SelectionSpec sel;
    sel.input_index = dim.select_index;
    sel.predicate = dim.predicate;
    sel.residuals = dim.residuals;
    sel.carry_columns = {dim.key_column};
    for (const std::string& col : dim.carry_columns) {
      AddUnique(&sel.carry_columns, col);
    }
    sel.output = {dim.SlotName(), {dim.key_column}, {}};
    std::string detail = "-> " + dim.SlotName() + "[" + dim.key_column +
                         "] where=" + Describe(dim.predicate);
    if (!dim.residuals.empty()) {
      detail += "+" + std::to_string(dim.residuals.size()) + " residual(s)";
    }
    if (!dim.carry_columns.empty()) {
      detail += " carry=[" + JoinNames(dim.carry_columns) + "]";
    }
    sketch.ops.push_back({"sel:" + dim.SlotName(),
                          std::make_unique<SelectionOp>(std::move(sel)),
                          std::move(detail)});
  }

  // The slot the final aggregating stage writes: the result itself, or
  // the pre-HAVING intermediate.
  const std::string final_slot =
      spec.having.empty() ? spec.result_slot : PreHavingSlot(spec);

  // No dimensions: the whole query is one (possibly aggregating)
  // selection into the result slot.
  if (spec.dimensions.empty()) {
    SelectionSpec sel;
    sel.input_index = fact.index;
    sel.predicate = fact.predicate;
    sel.residuals = fact.residuals;
    sel.carry_columns = fact.columns;
    sel.output = {final_slot, spec.group_by, spec.aggregates};
    std::string detail = "-> " + final_slot + "[" +
                         JoinNames(spec.group_by) +
                         "] where=" + Describe(fact.predicate) +
                         AggNote(spec.aggregates);
    sketch.ops.push_back({"sel:" + final_slot,
                          std::make_unique<SelectionOp>(std::move(sel)),
                          std::move(detail)});
    AppendHavingStage(spec, &sketch);
    PlanOrderBy(spec, &sketch);
    return sketch;
  }

  // Arity rule: compose non-deferred dimensions greedily into the first
  // join up to knobs.max_join_ways; everything left over (capped-out or
  // defer_join) becomes its own 2-way join in the chain.
  std::vector<const DimensionSpec*> core;
  std::vector<const DimensionSpec*> chain;
  for (const DimensionSpec& dim : spec.dimensions) {
    (dim.defer_join ? chain : core).push_back(&dim);
  }
  if (core.empty()) {  // all deferred: the first still has to lead
    core.push_back(chain.front());
    chain.erase(chain.begin());
  }
  size_t first_assists = core.size() - 1;
  if (knobs.max_join_ways != 0) {
    size_t cap = knobs.max_join_ways < 2
                     ? size_t{2}
                     : static_cast<size_t>(knobs.max_join_ways);
    first_assists = std::min(first_assists, cap - 2);
  }

  std::vector<Stage> stages;
  Stage first;
  first.main = core[0];
  for (size_t i = 1; i <= first_assists; ++i) first.assists.push_back(core[i]);
  stages.push_back(std::move(first));
  for (size_t i = first_assists + 1; i < core.size(); ++i) {
    stages.push_back(Stage{core[i], {}, "", {}, false});
  }
  for (const DimensionSpec* dim : chain) {
    stages.push_back(Stage{dim, {}, "", {}, false});
  }
  const size_t num_stages = stages.size();
  for (size_t i = 0; i < num_stages; ++i) {
    Stage& stage = stages[i];
    stage.final = i + 1 == num_stages;
    if (stage.final) {
      stage.out_slot = final_slot;
      stage.out_keys = spec.group_by;
    } else {
      stage.out_slot = "join" + std::to_string(i + 1);
      stage.out_keys = {stages[i + 1].main->fact_probe_column};
    }
  }

  // Probe columns are read from the assembled fact row for every
  // dimension except the first stage's main (joined through the index
  // key); those must be fact columns.
  for (size_t i = 0; i < num_stages; ++i) {
    for (const DimensionSpec* dim : stages[i].assists) {
      if (!Contains(fact.columns, dim->fact_probe_column)) {
        return Status::InvalidArgument(
            "fact columns must include probe column '" +
            dim->fact_probe_column + "' for dimension '" + dim->name + "'");
      }
    }
    if (i > 0 && !Contains(fact.columns, stages[i].main->fact_probe_column)) {
      return Status::InvalidArgument(
          "fact columns must include probe column '" +
          stages[i].main->fact_probe_column + "' for dimension '" +
          stages[i].main->name + "'");
    }
  }

  // Requirement sets, back to front: R[i] = columns stages >= i still
  // read (assist probes, intermediate keys, final group/agg inputs).
  std::vector<std::string> final_refs = spec.group_by;
  for (const std::string& col : AggSourceColumns(spec.aggregates)) {
    AddUnique(&final_refs, col);
  }
  std::vector<std::vector<std::string>> required(num_stages);
  std::vector<std::string> acc = final_refs;
  for (size_t i = num_stages; i-- > 0;) {
    if (!stages[i].final) AddUnique(&acc, stages[i].out_keys[0]);
    for (const DimensionSpec* dim : stages[i].assists) {
      AddUnique(&acc, dim->fact_probe_column);
    }
    required[i] = acc;
  }

  // Fact entry: fused select-join, materialized fact selection, or a
  // direct base-index main.
  const DimensionSpec& lead = *stages[0].main;
  const bool fuse = knobs.use_select_join && fact.filtered();
  const bool materialize_fact = fact.filtered() && !fuse;
  if (fact.filtered() && !Contains(fact.columns, lead.fact_probe_column)) {
    return Status::InvalidArgument(
        "fact columns must include probe column '" + lead.fact_probe_column +
        "' when the fact side is filtered");
  }
  if (!fact.filtered()) {
    QPPT_ASSIGN_OR_RETURN(const BaseIndex* entry, db.index(fact.index));
    if (entry->num_key_columns() != 1 ||
        entry->key_column_names()[0] != lead.fact_probe_column) {
      return Status::InvalidArgument(
          "fact index '" + fact.index + "' must be keyed on '" +
          lead.fact_probe_column + "' (the first joined dimension's probe)");
    }
  }

  SideRef left = SideRef::Base(fact.index);
  std::vector<std::string> left_contents = fact.columns;
  std::vector<std::string> dim_cols;  // carries of joined dims, join order
  if (materialize_fact) {
    SelectionSpec sel;
    sel.input_index = fact.index;
    sel.predicate = fact.predicate;
    sel.residuals = fact.residuals;
    sel.carry_columns = fact.columns;
    sel.output = {fact.selection_slot, {lead.fact_probe_column}, {}};
    std::string detail = "-> " + fact.selection_slot + "[" +
                         lead.fact_probe_column +
                         "] where=" + Describe(fact.predicate);
    if (!fact.residuals.empty()) {
      detail += "+" + std::to_string(fact.residuals.size()) + " residual(s)";
    }
    sketch.ops.push_back({"sel:" + fact.selection_slot,
                          std::make_unique<SelectionOp>(std::move(sel)),
                          std::move(detail)});
    left = SideRef::Slot(fact.selection_slot);
  }

  for (size_t i = 0; i < num_stages; ++i) {
    const Stage& stage = stages[i];
    const DimensionSpec& main = *stage.main;
    std::vector<AssistSpec> assists;
    std::vector<std::string> assist_names;
    for (const DimensionSpec* dim : stage.assists) {
      assists.push_back(
          {DimSide(*dim), dim->fact_probe_column, dim->carry_columns});
      assist_names.push_back(DimSide(*dim).name);
    }
    OutputSpec output = {stage.out_slot, stage.out_keys,
                         stage.final ? spec.aggregates : AggSpec{}};

    // The columns this stage pulls from its left input: everything the
    // remaining stages still read, dimension carries first, the consumed
    // join key dropped.
    std::vector<std::string> left_columns;
    const bool base_entry = i == 0 && !materialize_fact && !fuse;
    if (i == 0 && (base_entry || fuse)) {
      left_columns = fact.columns;  // base/scan entry reads the fact row
    } else {
      // Note the consumed join key (left_key) drops out here unless the
      // requirement set still reads it as a column downstream.
      for (const std::string& col : dim_cols) {
        if (Contains(left_contents, col) && Contains(required[i], col)) {
          left_columns.push_back(col);
        }
      }
      for (const std::string& col : fact.columns) {
        if (Contains(left_contents, col) && Contains(required[i], col)) {
          left_columns.push_back(col);
        }
      }
    }

    std::string detail = "-> " + stage.out_slot + "[" +
                         JoinNames(stage.out_keys) + "]";
    if (!assist_names.empty()) {
      detail += " assists=[" + JoinNames(assist_names) + "]";
    }
    if (stage.final) detail += AggNote(spec.aggregates);

    if (i == 0 && fuse) {
      SelectJoinSpec sj;
      sj.input_index = fact.index;
      sj.predicate = fact.predicate;
      sj.residuals = fact.residuals;
      sj.left_columns = left_columns;
      sj.probe_column = main.fact_probe_column;
      sj.right = DimSide(main);
      sj.right_columns = main.carry_columns;
      sj.assists = std::move(assists);
      sj.output = output;
      detail += " where=" + Describe(fact.predicate);
      sketch.ops.push_back({"sjoin:" + stage.out_slot,
                            std::make_unique<SelectJoinOp>(std::move(sj)),
                            std::move(detail)});
    } else {
      StarJoinSpec join;
      join.left = left;
      join.left_columns = left_columns;
      join.right = DimSide(main);
      join.right_columns = main.carry_columns;
      join.assists = std::move(assists);
      join.output = output;
      sketch.ops.push_back({"join:" + stage.out_slot,
                            std::make_unique<StarJoinOp>(std::move(join)),
                            std::move(detail)});
    }

    // This stage's output becomes the next stage's left side.
    std::vector<std::string> contents = left_columns;
    for (const std::string& col : main.carry_columns) {
      AddUnique(&contents, col);
    }
    for (const DimensionSpec* dim : stage.assists) {
      for (const std::string& col : dim->carry_columns) {
        AddUnique(&contents, col);
      }
    }
    for (const std::string& col : main.carry_columns) {
      AddUnique(&dim_cols, col);
    }
    for (const DimensionSpec* dim : stage.assists) {
      for (const std::string& col : dim->carry_columns) {
        AddUnique(&dim_cols, col);
      }
    }
    left_contents = std::move(contents);
    left = SideRef::Slot(stage.out_slot);
  }

  AppendHavingStage(spec, &sketch);
  PlanOrderBy(spec, &sketch);
  return sketch;
}

}  // namespace

Result<Plan> PlanQuery(const Database& db, const QuerySpec& spec,
                       const PlanKnobs& knobs) {
  QPPT_ASSIGN_OR_RETURN(PlanSketch sketch, BuildSketch(db, spec, knobs));
  Plan plan;
  for (PlannedOp& planned : sketch.ops) {
    planned.op->set_label(planned.label);
    plan.Add(std::move(planned.op));
  }
  plan.set_result_slot(sketch.result_slot);
  plan.set_result_order(std::move(sketch.post_sort));
  return plan;
}

Result<std::string> ExplainPlan(const Database& db, const QuerySpec& spec,
                                const PlanKnobs& knobs) {
  QPPT_ASSIGN_OR_RETURN(PlanSketch sketch, BuildSketch(db, spec, knobs));
  std::string out = "plan " + (spec.id.empty() ? "(unnamed)" : spec.id) +
                    " [select_join=" +
                    (knobs.use_select_join ? "on" : "off") + " join_ways=" +
                    (knobs.max_join_ways == 0
                         ? std::string("multi")
                         : std::to_string(knobs.max_join_ways)) +
                    "]\n";
  for (const PlannedOp& planned : sketch.ops) {
    std::string line = "  " + planned.label;
    line.resize(std::max(line.size() + 1, size_t{20}), ' ');
    line += planned.op->name();
    line.resize(std::max(line.size() + 1, size_t{62}), ' ');
    out += line + planned.detail + "\n";
  }
  out += "  order-by: " + sketch.order_note + "\n";
  return out;
}

}  // namespace qppt::query
