// Intermediate indexed tables (§1, §3).
//
// The indexed table-at-a-time model exchanges *clustered indexes* between
// operators: a set of tuples stored within an in-memory index, keyed on the
// attribute(s) the *next* operator wants. An IndexedTable owns
//   - the materialized tuples (packed 64-bit slot rows), and
//   - the index over them: a KISS-Tree when the key is a single integer
//     attribute (32-bit join keys — "mostly sufficient", §2.2), else a
//     generalized prefix tree over the order-preserving composite encoding.
//
// Aggregate tables implement aggregation-on-insert: the "tuples" are
// per-group accumulators living in the index payloads; sorting (the index
// is order-preserving) and grouping are side effects of output indexing.
//
// Intermediate tables are query-private: no transactional bookkeeping (§3).

#ifndef QPPT_CORE_INDEXED_TABLE_H_
#define QPPT_CORE_INDEXED_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/agg.h"
#include "index/key_encoder.h"
#include "index/kiss_tree.h"
#include "index/prefix_tree.h"
#include "storage/schema.h"
#include "util/status.h"

namespace qppt {

class IndexedTable {
 public:
  enum class Kind : uint8_t { kKiss, kPrefix };

  struct Options {
    size_t kprime = 4;          // prefix-tree fragment width
    bool prefer_kiss = true;    // use the KISS-Tree when the key allows
    size_t kiss_root_bits = 26;
  };

  // A plain (non-aggregating) indexed table: tuples of `schema`, indexed on
  // `key_columns` (each int64/string/double; a single int64-like column
  // with prefer_kiss selects the KISS-Tree).
  static Result<std::unique_ptr<IndexedTable>> Create(
      Schema schema, std::vector<std::string> key_columns, Options options);
  static Result<std::unique_ptr<IndexedTable>> Create(
      Schema schema, std::vector<std::string> key_columns) {
    return Create(std::move(schema), std::move(key_columns), Options{});
  }

  // An aggregating indexed table: groups keyed on `key_columns` (which
  // must name columns of `key_schema`), with `agg` folded over input
  // tuples of `agg_input` on every insert. The output schema is the key
  // columns followed by one column per aggregate term.
  static Result<std::unique_ptr<IndexedTable>> CreateAggregated(
      std::vector<ColumnDef> key_columns, AggSpec agg,
      const Schema& agg_input, Options options);
  static Result<std::unique_ptr<IndexedTable>> CreateAggregated(
      std::vector<ColumnDef> key_columns, AggSpec agg,
      const Schema& agg_input) {
    return CreateAggregated(std::move(key_columns), std::move(agg),
                            agg_input, Options{});
  }

  Kind kind() const { return kind_; }
  bool aggregated() const { return !agg_.empty(); }
  const Schema& schema() const { return schema_; }
  size_t num_key_columns() const { return key_cols_.size(); }
  // Positions of the key columns within schema().
  const std::vector<size_t>& key_column_positions() const { return key_cols_; }

  // Number of indexed tuples (kValues) / folded input tuples (aggregate).
  size_t num_tuples() const { return num_tuples_; }
  // Number of distinct keys (= groups for aggregate tables).
  size_t num_keys() const {
    return kind_ == Kind::kKiss ? kiss_->num_keys() : prefix_->num_keys();
  }
  size_t MemoryUsage() const;

  const KissTree* kiss() const { return kiss_.get(); }
  const PrefixTree* prefix() const { return prefix_.get(); }

  // --- plain tables --------------------------------------------------------

  // Appends `row` (schema_.num_columns() slots) and indexes it.
  void Insert(const uint64_t* row);

  // Inserts `row` only if its key is not yet present (distinct-union
  // semantics, §4.1). Returns true if inserted.
  bool InsertIfAbsent(const uint64_t* row);

  // Tuple access by the ids stored in the index.
  const uint64_t* Tuple(uint64_t id) const {
    return rows_.data() + id * schema_.num_columns();
  }

  // In-order scan: fn(const uint64_t* row). Keys ascend; duplicate order
  // within a key is unspecified (§2.4 multiset semantics).
  template <typename F>
  void ScanInOrder(F&& fn) const {
    if (kind_ == Kind::kKiss) {
      kiss_->ScanAll([&](uint32_t, const KissTree::ValueRef& vals) {
        vals.ForEach([&](uint64_t id) { fn(Tuple(id)); });
      });
    } else {
      prefix_->ScanAll([&](const PrefixTree::ContentNode& c) {
        prefix_->ValuesOf(&c)->ForEach([&](uint64_t id) { fn(Tuple(id)); });
      });
    }
  }

  // --- aggregate tables ------------------------------------------------------

  // Folds `input_row` (agg_input schema slots) into the group identified by
  // `key_slots` (one slot per key column).
  void InsertAggregated(const uint64_t* key_slots, const uint64_t* input_row);

  // --- parallel partials (engine layer) ---------------------------------------

  // A fresh empty table with identical schema, keys, aggregation, and
  // index configuration — the per-worker partial output of a parallel
  // operator.
  std::unique_ptr<IndexedTable> CloneEmpty() const;

  // Folds `other` (a CloneEmpty sibling) into this table: plain tables
  // re-insert the tuples, aggregate tables merge the per-group
  // accumulators (BoundAggSpec::Merge). Single-threaded.
  void MergeFrom(const IndexedTable& other);

  // --- key-range-partitioned parallel merge (engine layer) --------------------
  //
  // Protocol driven by engine::PartialOutputs: the engine partitions the
  // union key span of all partials into disjoint ranges
  // (root-bucket-aligned for KISS; branching-level fragment-aligned
  // encoded ranges for prefix trees, whose shared-prefix chain
  // PrepareMergeChain pre-builds) and validates that they tile the span
  // before touching the destination.
  //
  // Plain tables: BeginParallelMerge opens the window and reserves row
  // storage; each partial owns the contiguous row-id block
  // [base_p, base_p + num_tuples_p) — base_p is derived from the tuple
  // counts the partial builds already maintain, so the merge needs no
  // separate counting pass — and MergeRangeFrom runs concurrently, one
  // worker per range, copying each source tuple to its pre-assigned id
  // (base_p + source id). EndParallelMerge closes the window and applies
  // the summed key statistics.
  //
  // Aggregated tables: BeginParallelAggMerge opens the window and each
  // range worker folds ALL partials' accumulators of its key range into
  // the destination via MergeAggRangeFrom (BoundAggSpec::MergeRange);
  // EndParallelAggMerge applies the summed group statistics.

  struct MergeKeyRange {
    uint32_t kiss_lo = 0;  // kKiss: inclusive key range, whole root buckets
    uint32_t kiss_hi = 0;
    // kPrefix: inclusive encoded key range, aligned to whole fragments
    // at the branching level passed to PrepareMergeChain.
    uint8_t prefix_lo[KeyBuf::kCapacity] = {};
    uint8_t prefix_hi[KeyBuf::kCapacity] = {};
  };

  // Pre-builds the destination chain for the shared encoded-key prefix
  // (prefix-tree tables only; the table must still be empty).
  void PrepareMergeChain(const uint8_t* key, size_t branch_bit_off);

  struct MergeShardStats {
    size_t tuples = 0;
    size_t new_keys = 0;
    size_t new_inner_nodes = 0;  // prefix trees only
  };

  // Reserves row storage for `total` additional tuples and opens the
  // index's concurrent-insert window. Returns the first new row id.
  uint64_t BeginParallelMerge(size_t total);

  // Copies `other`'s tuples under `range` into this table at the
  // pre-assigned row ids `id_base + source id` — `other`'s own row ids
  // are dense in [0, num_tuples), so `id_base` blocks derived from the
  // partials' tuple counts cover every destination id exactly once when
  // the ranges tile the key span — and inserts them into the index.
  // Safe for concurrent callers on disjoint ranges while the
  // BeginParallelMerge window is open; counts into `stats`.
  void MergeRangeFrom(const IndexedTable& other, const MergeKeyRange& range,
                      uint64_t id_base, MergeShardStats* stats);

  // Closes the window and applies the summed per-shard statistics.
  // [kiss_lo, kiss_hi] is the union key span merged (kKiss only).
  void EndParallelMerge(const MergeShardStats& total, uint32_t kiss_lo,
                        uint32_t kiss_hi);

  // Opens the concurrent-insert window of an aggregated table (no row
  // storage to reserve — the "tuples" live in the index payloads).
  void BeginParallelAggMerge();

  // Folds every partial's accumulators under `range` into this
  // (aggregated) table: per group key, the accumulators of all partials
  // holding the key merge into the destination payload in one
  // BoundAggSpec::MergeRange pass. Safe for concurrent callers on
  // disjoint ranges while the BeginParallelAggMerge window is open;
  // created groups count into `stats->new_keys`.
  void MergeAggRangeFrom(const std::vector<const IndexedTable*>& partials,
                         const MergeKeyRange& range, MergeShardStats* stats);

  // Closes the window and applies the summed group statistics.
  // `folded_tuples` is the total number of input tuples the partials had
  // folded (their num_tuples() sum); [kiss_lo, kiss_hi] as above.
  void EndParallelAggMerge(const MergeShardStats& total, uint32_t kiss_lo,
                           uint32_t kiss_hi, size_t folded_tuples);

  // In-order scan over groups: fn(const uint64_t* out_row) where out_row
  // has schema(): decoded key columns followed by finalized aggregates.
  template <typename F>
  void ScanGroups(F&& fn) const {
    std::vector<uint64_t> out(schema_.num_columns());
    if (kind_ == Kind::kKiss) {
      kiss_->ScanPayloads([&](uint32_t key, const std::byte* payload) {
        out[0] = SlotFromInt64(static_cast<int64_t>(key));
        FinalizeInto(payload, out.data());
        fn(out.data());
      });
    } else {
      prefix_->ScanAll([&](const PrefixTree::ContentNode& c) {
        DecodeKeyInto(c.key(), out.data());
        FinalizeInto(prefix_->PayloadOf(&c), out.data());
        fn(out.data());
      });
    }
  }

  // --- key handling (shared with operators) -----------------------------------

  // The 32-bit KISS key for `slot` (valid for kKiss tables).
  static uint32_t KissKeyOf(uint64_t slot) {
    return static_cast<uint32_t>(Int64FromSlot(slot));
  }

  // Encodes key column slots into `out` for prefix-tree tables.
  void EncodeKey(const uint64_t* key_slots, KeyBuf* out) const;
  size_t encoded_key_len() const { return key_types_.size() * 8; }

  const BoundAggSpec& bound_agg() const { return bound_agg_; }

 private:
  IndexedTable() = default;

  Status Init(Schema schema, std::vector<std::string> key_columns,
              AggSpec agg, const Schema* agg_input, Options options);

  // Decodes a prefix-tree key into the leading key column slots of `out`.
  void DecodeKeyInto(const uint8_t* key, uint64_t* out) const;
  // Writes finalized aggregates into the trailing columns of `out`.
  void FinalizeInto(const std::byte* payload, uint64_t* out) const;

  Kind kind_ = Kind::kPrefix;
  Schema schema_;
  std::vector<size_t> key_cols_;        // positions in schema_ (leading for agg)
  std::vector<ValueType> key_types_;
  AggSpec agg_;
  BoundAggSpec bound_agg_;
  std::unique_ptr<KissTree> kiss_;
  std::unique_ptr<PrefixTree> prefix_;
  std::vector<uint64_t> rows_;  // kValues tuples
  size_t num_tuples_ = 0;
};

}  // namespace qppt

#endif  // QPPT_CORE_INDEXED_TABLE_H_
