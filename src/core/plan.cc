#include "core/plan.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace qppt {

Status ExecContext::Put(const std::string& name,
                        std::unique_ptr<IndexedTable> table) {
  auto [it, inserted] = slots_.emplace(name, std::move(table));
  if (!inserted) {
    return Status::AlreadyExists("intermediate slot '" + name +
                                 "' already populated");
  }
  return Status::OK();
}

Result<const IndexedTable*> ExecContext::Get(const std::string& name) const {
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    return Status::NotFound("no intermediate named '" + name + "'");
  }
  return it->second.get();
}

Status Plan::Run(ExecContext* ctx) const {
  Timer total;
  for (const auto& op : operators_) {
    Timer op_timer;
    QPPT_RETURN_NOT_OK(op->Execute(ctx));
    // The operator appended its stats entry; stamp the wall time.
    if (!ctx->stats()->operators.empty()) {
      OperatorStats& st = ctx->stats()->operators.back();
      if (st.total_ms == 0) st.total_ms = op_timer.ElapsedMs();
    }
  }
  ctx->stats()->total_ms = total.ElapsedMs();
  return Status::OK();
}

Result<QueryResult> Plan::Execute(ExecContext* ctx) const {
  QPPT_RETURN_NOT_OK(Run(ctx));
  if (result_slot_.empty()) {
    return Status::InvalidArgument("plan has no result slot configured");
  }
  QPPT_ASSIGN_OR_RETURN(const IndexedTable* table, ctx->Get(result_slot_));
  return ExtractResult(*table);
}

namespace {

Value SlotToValue(uint64_t slot, const ColumnDef& def) {
  switch (def.type) {
    case ValueType::kDouble:
      return Value::Real(DoubleFromSlot(slot));
    case ValueType::kString:
      if (def.dictionary != nullptr && def.dictionary->sealed()) {
        return Value::Str(def.dictionary->StringOf(Int64FromSlot(slot)));
      }
      return Value::Int(Int64FromSlot(slot));
    case ValueType::kInt64:
      break;
  }
  return Value::Int(Int64FromSlot(slot));
}

}  // namespace

Result<QueryResult> ExtractResult(const IndexedTable& table) {
  QueryResult result;
  result.schema = table.schema();
  size_t width = table.schema().num_columns();
  auto emit = [&](const uint64_t* row) {
    std::vector<Value> out;
    out.reserve(width);
    for (size_t c = 0; c < width; ++c) {
      out.push_back(SlotToValue(row[c], table.schema().column(c)));
    }
    result.rows.push_back(std::move(out));
  };
  if (table.aggregated()) {
    table.ScanGroups(emit);
  } else {
    table.ScanInOrder(emit);
  }
  return result;
}

std::string QueryResult::ToString(size_t limit) const {
  std::string out = schema.ToString();
  out += "\n";
  size_t shown = 0;
  for (const auto& row : rows) {
    if (shown++ >= limit) {
      out += "... (" + std::to_string(rows.size()) + " rows total)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace qppt
