#include "core/plan.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace qppt {

void ExecContext::EnsureTrace(size_t workers) {
  if (!knobs_.trace || trace_ != nullptr) return;
  trace_ = std::make_shared<obs::QueryTrace>(workers == 0 ? 1 : workers);
  stats_.trace = trace_;
}

Status ExecContext::Put(const std::string& name,
                        std::unique_ptr<IndexedTable> table) {
  auto [it, inserted] = slots_.emplace(name, std::move(table));
  if (!inserted) {
    return Status::AlreadyExists("intermediate slot '" + name +
                                 "' already populated");
  }
  return Status::OK();
}

Result<const IndexedTable*> ExecContext::Get(const std::string& name) const {
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    return Status::NotFound("no intermediate named '" + name + "'");
  }
  return it->second.get();
}

Status Plan::Run(ExecContext* ctx) const {
  // Guard against PlanStats reuse without Clear(): the operator list
  // accumulates while total_ms is assigned, so a second Run on the same
  // stats would double-report (see the PlanStats contract, core/stats.h).
  assert(ctx->stats()->total_ms == 0 &&
         "PlanStats reused across Run() without Clear()");
  ctx->EnsureTrace(ctx->knobs().threads);
  obs::QueryTrace* trace = ctx->trace();
  Timer total;
  for (const auto& op : operators_) {
    double t0 = trace != nullptr ? trace->NowUs() : 0.0;
    Timer op_timer;
    size_t before = ctx->stats()->operators.size();
    // Cancellation boundary: once before each operator, and any
    // CancelledException (or injected fault / allocation failure) that
    // unwound out of the operator's scan loops or morsel batch becomes
    // the Status the caller sees — partial outputs in ctx slots are
    // dropped with the context, RAII engine state by our caller.
    Status op_status = ctx->CheckCancel();
    if (op_status.ok()) {
      try {
        op_status = op->Execute(ctx);
      } catch (...) {
        op_status = StatusFromException(std::current_exception());
      }
    }
    QPPT_RETURN_NOT_OK(op_status);
    // The operator appended its stats entry; stamp the wall time and the
    // planner stage label (when one was assigned).
    if (ctx->stats()->operators.size() == before + 1) {
      OperatorStats& st = ctx->stats()->operators.back();
      if (st.total_ms == 0) st.total_ms = op_timer.ElapsedMs();
      st.name = op->display_name();
    }
    if (trace != nullptr) {
      // Whole-operator span on the driver lane: these sum to ~total_ms
      // (morsel spans overlap in time and cannot).
      trace->Record(trace->driver_lane(), op->display_name(),
                    obs::SpanKind::kOperator, t0, trace->NowUs());
    }
  }
  ctx->stats()->total_ms = total.ElapsedMs();
  return Status::OK();
}

Result<QueryResult> Plan::Execute(ExecContext* ctx) const {
  QPPT_RETURN_NOT_OK(Run(ctx));
  // Last boundary before result extraction: a cancelled query should not
  // pay for materializing (possibly large) client rows.
  QPPT_RETURN_NOT_OK(ctx->CheckCancel());
  if (result_slot_.empty()) {
    return Status::InvalidArgument("plan has no result slot configured");
  }
  QPPT_ASSIGN_OR_RETURN(const IndexedTable* table, ctx->Get(result_slot_));
  QPPT_ASSIGN_OR_RETURN(QueryResult result, ExtractResult(*table));
  QPPT_RETURN_NOT_OK(SortResult(result_order_, &result));
  return result;
}

std::vector<std::string> Plan::OperatorNames() const {
  std::vector<std::string> names;
  names.reserve(operators_.size());
  for (const auto& op : operators_) names.push_back(op->name());
  return names;
}

std::vector<std::string> Plan::OperatorLabels() const {
  std::vector<std::string> labels;
  labels.reserve(operators_.size());
  for (const auto& op : operators_) labels.push_back(op->display_name());
  return labels;
}

Status SortResult(const std::vector<ResultOrderKey>& keys,
                  QueryResult* result) {
  if (keys.empty()) return Status::OK();
  struct Bound {
    size_t pos;
    bool descending;
  };
  std::vector<Bound> bound;
  bound.reserve(keys.size());
  for (const auto& key : keys) {
    QPPT_ASSIGN_OR_RETURN(size_t pos, result->schema.ColumnIndex(key.column));
    bound.push_back({pos, key.descending});
  }
  auto less = [](const Value& a, const Value& b) {
    switch (a.type()) {
      case ValueType::kInt64:
        return a.AsInt() < b.AsInt();
      case ValueType::kDouble:
        return a.AsDouble() < b.AsDouble();
      case ValueType::kString:
        return a.AsString() < b.AsString();
    }
    return false;
  };
  std::stable_sort(result->rows.begin(), result->rows.end(),
                   [&](const std::vector<Value>& a,
                       const std::vector<Value>& b) {
                     for (const Bound& k : bound) {
                       const Value& va = a[k.pos];
                       const Value& vb = b[k.pos];
                       if (less(va, vb)) return !k.descending;
                       if (less(vb, va)) return k.descending;
                     }
                     return false;
                   });
  return Status::OK();
}

namespace {

Value SlotToValue(uint64_t slot, const ColumnDef& def) {
  switch (def.type) {
    case ValueType::kDouble:
      return Value::Real(DoubleFromSlot(slot));
    case ValueType::kString:
      if (def.dictionary != nullptr && def.dictionary->sealed()) {
        return Value::Str(def.dictionary->StringOf(Int64FromSlot(slot)));
      }
      return Value::Int(Int64FromSlot(slot));
    case ValueType::kInt64:
      break;
  }
  return Value::Int(Int64FromSlot(slot));
}

}  // namespace

Result<QueryResult> ExtractResult(const IndexedTable& table) {
  QueryResult result;
  result.schema = table.schema();
  size_t width = table.schema().num_columns();
  auto emit = [&](const uint64_t* row) {
    std::vector<Value> out;
    out.reserve(width);
    for (size_t c = 0; c < width; ++c) {
      out.push_back(SlotToValue(row[c], table.schema().column(c)));
    }
    result.rows.push_back(std::move(out));
  };
  if (table.aggregated()) {
    table.ScanGroups(emit);
  } else {
    table.ScanInOrder(emit);
  }
  return result;
}

std::string QueryResult::ToString(size_t limit) const {
  std::string out = schema.ToString();
  out += "\n";
  size_t shown = 0;
  for (const auto& row : rows) {
    if (shown++ >= limit) {
      out += "... (" + std::to_string(rows.size()) + " rows total)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace qppt
