// Execution statistics (demonstrator appendix A).
//
// The QPPT demonstrator visualizes, per plan operator: total time and its
// split between tuple materialization and output indexing, input/output
// index sizes and types, and cardinalities. PlanStats collects the same.

#ifndef QPPT_CORE_STATS_H_
#define QPPT_CORE_STATS_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace qppt {

namespace obs {
class QueryTrace;  // obs/trace.h — per-query span timeline
}  // namespace obs

class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void Restart() { start_ = Clock::now(); }
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

struct OperatorStats {
  std::string name;
  std::string output_desc;       // e.g. "kiss(orderdate) 1.2M tuples"
  double total_ms = 0;
  double materialize_ms = 0;     // gathering/assembling tuples
  double index_ms = 0;           // building the output index
  double merge_ms = 0;           // folding per-worker partial outputs into
                                 // the final table — covers plain tuple
                                 // merges AND aggregated accumulator
                                 // merges (0 = no parallel path)
  uint64_t input_tuples = 0;
  uint64_t output_tuples = 0;
  uint64_t output_keys = 0;      // distinct keys / groups
  uint64_t output_bytes = 0;     // output index memory
  uint64_t morsels = 0;          // engine morsels executed (0 = serial path)
  uint64_t merge_morsels = 0;    // partitioned-merge shards, plain or
                                 // aggregated (0 = serial merge)
};

struct PlanStats {
  std::vector<OperatorStats> operators;
  double total_ms = 0;   // operator execution only (Plan::Run)
  double wall_ms = 0;    // end-to-end query wall time, incl. result
                         // extraction and final ORDER BY (set by the
                         // query driver / engine runner)
  size_t threads = 1;    // morsel workers the query was admitted with
  uint64_t read_ts = 0;  // MVCC snapshot the query ran at (0 = no
                         // versioned tables in scope)
  // Span timeline of the execution that produced these stats, present
  // only when PlanKnobs::trace was set (obs/trace.h; export with
  // obs::TraceToJson). Shared so the handle survives the ExecContext.
  std::shared_ptr<obs::QueryTrace> trace;

  // Contract: PlanStats accumulates — Plan::Run appends operator rows
  // and the drivers *assign* total_ms/wall_ms. A caller that reuses one
  // PlanStats across executions must Clear() in between, or the operator
  // list grows while the totals cover only the last run (double
  // reporting). The engine runner and the SSB drivers Clear() caller
  // stats defensively at entry.
  void Clear() {
    operators.clear();
    total_ms = 0;
    wall_ms = 0;
    threads = 1;
    read_ts = 0;
    trace.reset();
  }

  // Total engine morsels across all operators (0 = fully serial plan).
  uint64_t TotalMorsels() const {
    uint64_t total = 0;
    for (const auto& op : operators) total += op.morsels;
    return total;
  }

  // Total wall time spent merging per-worker partial outputs — the
  // post-fork-join cost the partitioned parallel merge attacks (plain
  // and aggregated). Reported separately so the merge bottleneck stays
  // measurable.
  double TotalMergeMs() const {
    double total = 0;
    for (const auto& op : operators) total += op.merge_ms;
    return total;
  }

  // Total partitioned-merge shards across all operators (0 = every
  // merge ran serially).
  uint64_t TotalMergeMorsels() const {
    uint64_t total = 0;
    for (const auto& op : operators) total += op.merge_morsels;
    return total;
  }

  // Demonstrator-style per-operator breakdown.
  std::string ToString() const;
};

}  // namespace qppt

#endif  // QPPT_CORE_STATS_H_
