// Execution statistics (demonstrator appendix A).
//
// The QPPT demonstrator visualizes, per plan operator: total time and its
// split between tuple materialization and output indexing, input/output
// index sizes and types, and cardinalities. PlanStats collects the same.

#ifndef QPPT_CORE_STATS_H_
#define QPPT_CORE_STATS_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace qppt {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void Restart() { start_ = Clock::now(); }
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

struct OperatorStats {
  std::string name;
  std::string output_desc;       // e.g. "kiss(orderdate) 1.2M tuples"
  double total_ms = 0;
  double materialize_ms = 0;     // gathering/assembling tuples
  double index_ms = 0;           // building the output index
  uint64_t input_tuples = 0;
  uint64_t output_tuples = 0;
  uint64_t output_keys = 0;      // distinct keys / groups
  uint64_t output_bytes = 0;     // output index memory
};

struct PlanStats {
  std::vector<OperatorStats> operators;
  double total_ms = 0;

  void Clear() {
    operators.clear();
    total_ms = 0;
  }

  // Demonstrator-style per-operator breakdown.
  std::string ToString() const;
};

}  // namespace qppt

#endif  // QPPT_CORE_STATS_H_
