#include "core/indexed_table.h"

#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace qppt {

namespace {

// A key column is KISS-eligible if it is a single integer-like attribute
// whose values fit 32 bits (join keys, dictionary codes, dates).
bool KissEligible(const std::vector<ValueType>& key_types) {
  return key_types.size() == 1 && key_types[0] != ValueType::kDouble;
}

ValueType AggOutputType(const AggTerm& term, const Schema& input) {
  switch (term.fn) {
    case AggFn::kCount:
      return ValueType::kInt64;
    case AggFn::kAvg:
      return ValueType::kDouble;
    default:
      break;
  }
  if (term.source.op == ScalarExpr::Op::kColumn) {
    auto idx = input.ColumnIndex(term.source.lhs);
    if (idx.ok() && input.column(*idx).type == ValueType::kDouble) {
      return ValueType::kDouble;
    }
  }
  return ValueType::kInt64;
}

}  // namespace

Result<std::unique_ptr<IndexedTable>> IndexedTable::Create(
    Schema schema, std::vector<std::string> key_columns, Options options) {
  auto table = std::unique_ptr<IndexedTable>(new IndexedTable());
  QPPT_RETURN_NOT_OK(table->Init(std::move(schema), std::move(key_columns),
                                 AggSpec{}, nullptr, options));
  return table;
}

Result<std::unique_ptr<IndexedTable>> IndexedTable::CreateAggregated(
    std::vector<ColumnDef> key_columns, AggSpec agg, const Schema& agg_input,
    Options options) {
  if (agg.empty()) {
    return Status::InvalidArgument(
        "CreateAggregated requires at least one aggregate term");
  }
  // Output schema: key columns, then one column per aggregate.
  std::vector<ColumnDef> cols = key_columns;
  for (const auto& term : agg.terms()) {
    cols.push_back({term.out_name, AggOutputType(term, agg_input), nullptr});
  }
  std::vector<std::string> key_names;
  key_names.reserve(key_columns.size());
  for (const auto& c : key_columns) key_names.push_back(c.name);

  auto table = std::unique_ptr<IndexedTable>(new IndexedTable());
  QPPT_RETURN_NOT_OK(table->Init(Schema(std::move(cols)),
                                 std::move(key_names), std::move(agg),
                                 &agg_input, options));
  return table;
}

Status IndexedTable::Init(Schema schema,
                          std::vector<std::string> key_columns, AggSpec agg,
                          const Schema* agg_input, Options options) {
  schema_ = std::move(schema);
  agg_ = std::move(agg);
  if (key_columns.empty()) {
    return Status::InvalidArgument("indexed table needs at least one key column");
  }
  for (const auto& name : key_columns) {
    QPPT_ASSIGN_OR_RETURN(size_t idx, schema_.ColumnIndex(name));
    key_cols_.push_back(idx);
    key_types_.push_back(schema_.column(idx).type);
  }
  if (!agg_.empty()) {
    QPPT_ASSIGN_OR_RETURN(bound_agg_, BoundAggSpec::Bind(agg_, *agg_input));
    // Aggregate tables require the key columns to lead the schema so that
    // ScanGroups can decode in place.
    for (size_t i = 0; i < key_cols_.size(); ++i) {
      if (key_cols_[i] != i) {
        return Status::InvalidArgument(
            "aggregate table key columns must be the leading columns");
      }
    }
  }
  size_t payload = agg_.empty() ? 0 : bound_agg_.payload_size();
  if (options.prefer_kiss && KissEligible(key_types_)) {
    kind_ = Kind::kKiss;
    KissTree::Config cfg;
    cfg.root_bits = options.kiss_root_bits;
    cfg.mode = agg_.empty() ? KissTree::PayloadMode::kValues
                            : KissTree::PayloadMode::kAggregate;
    cfg.agg_payload_size = payload;
    kiss_ = std::make_unique<KissTree>(cfg);
  } else {
    kind_ = Kind::kPrefix;
    PrefixTree::Config cfg;
    cfg.key_len = encoded_key_len();
    cfg.kprime = options.kprime;
    cfg.mode = agg_.empty() ? PrefixTree::PayloadMode::kValues
                            : PrefixTree::PayloadMode::kAggregate;
    cfg.agg_payload_size = payload;
    prefix_ = std::make_unique<PrefixTree>(cfg);
  }
  return Status::OK();
}

size_t IndexedTable::MemoryUsage() const {
  size_t index_bytes =
      kind_ == Kind::kKiss ? kiss_->MemoryUsage() : prefix_->MemoryUsage();
  return index_bytes + rows_.capacity() * sizeof(uint64_t);
}

void IndexedTable::EncodeKey(const uint64_t* key_slots, KeyBuf* out) const {
  out->clear();
  for (size_t i = 0; i < key_types_.size(); ++i) {
    if (key_types_[i] == ValueType::kDouble) {
      out->AppendDouble(DoubleFromSlot(key_slots[i]));
    } else {
      out->AppendI64(Int64FromSlot(key_slots[i]));
    }
  }
}

void IndexedTable::DecodeKeyInto(const uint8_t* key, uint64_t* out) const {
  for (size_t i = 0; i < key_types_.size(); ++i) {
    const uint8_t* p = key + i * 8;
    if (key_types_[i] == ValueType::kDouble) {
      out[i] = SlotFromDouble(DecodeDouble(p));
    } else {
      out[i] = SlotFromInt64(DecodeI64(p));
    }
  }
}

void IndexedTable::FinalizeInto(const std::byte* payload,
                                uint64_t* out) const {
  size_t base = key_cols_.size();
  for (size_t i = 0; i < bound_agg_.num_terms(); ++i) {
    out[base + i] = bound_agg_.Finalize(payload, i);
  }
}

void IndexedTable::Insert(const uint64_t* row) {
  assert(agg_.empty());
  uint64_t id = num_tuples_++;
  rows_.insert(rows_.end(), row, row + schema_.num_columns());
  if (kind_ == Kind::kKiss) {
    kiss_->Insert(KissKeyOf(row[key_cols_[0]]), id);
  } else {
    KeyBuf key;
    // Gather key slots in key-column order (they may be scattered in the
    // schema for plain tables).
    uint64_t slots[KeyBuf::kCapacity / 8];
    for (size_t i = 0; i < key_cols_.size(); ++i) slots[i] = row[key_cols_[i]];
    EncodeKey(slots, &key);
    prefix_->Insert(key.data(), id);
  }
}

bool IndexedTable::InsertIfAbsent(const uint64_t* row) {
  assert(agg_.empty());
  if (kind_ == Kind::kKiss) {
    if (kiss_->Contains(KissKeyOf(row[key_cols_[0]]))) return false;
  } else {
    KeyBuf key;
    uint64_t slots[KeyBuf::kCapacity / 8];
    for (size_t i = 0; i < key_cols_.size(); ++i) slots[i] = row[key_cols_[i]];
    EncodeKey(slots, &key);
    if (prefix_->Find(key.data()) != nullptr) return false;
  }
  Insert(row);
  return true;
}

std::unique_ptr<IndexedTable> IndexedTable::CloneEmpty() const {
  auto t = std::unique_ptr<IndexedTable>(new IndexedTable());
  t->kind_ = kind_;
  t->schema_ = schema_;
  t->key_cols_ = key_cols_;
  t->key_types_ = key_types_;
  t->agg_ = agg_;
  t->bound_agg_ = bound_agg_;
  if (kind_ == Kind::kKiss) {
    t->kiss_ = std::make_unique<KissTree>(kiss_->config());
  } else {
    t->prefix_ = std::make_unique<PrefixTree>(prefix_->config());
  }
  return t;
}

void IndexedTable::MergeFrom(const IndexedTable& other) {
  assert(kind_ == other.kind_ &&
         schema_.num_columns() == other.schema_.num_columns());
  if (agg_.empty()) {
    other.ScanInOrder([&](const uint64_t* row) { Insert(row); });
    return;
  }
  num_tuples_ += other.num_tuples_;
  if (kind_ == Kind::kKiss) {
    other.kiss_->ScanPayloads([&](uint32_t key, const std::byte* src) {
      bool created = false;
      std::byte* dst = kiss_->FindOrCreatePayload(key, &created);
      if (created) bound_agg_.Init(dst);
      bound_agg_.Merge(dst, src);
    });
  } else {
    other.prefix_->ScanAll([&](const PrefixTree::ContentNode& c) {
      bool created = false;
      std::byte* dst = prefix_->FindOrCreatePayload(c.key(), &created);
      if (created) bound_agg_.Init(dst);
      bound_agg_.Merge(dst, other.prefix_->PayloadOf(&c));
    });
  }
}

void IndexedTable::PrepareMergeChain(const uint8_t* key,
                                     size_t branch_bit_off) {
  assert(kind_ == Kind::kPrefix);
  prefix_->EnsureChainForMerge(key, branch_bit_off);
}

uint64_t IndexedTable::BeginParallelMerge(size_t total) {
  assert(agg_.empty());
  uint64_t first_id = num_tuples_;
  rows_.resize((num_tuples_ + total) * schema_.num_columns());
  if (kind_ == Kind::kKiss) {
    kiss_->BeginConcurrentInserts();
  } else {
    prefix_->BeginConcurrentInserts();
  }
  return first_id;
}

void IndexedTable::MergeRangeFrom(const IndexedTable& other,
                                  const MergeKeyRange& range,
                                  uint64_t id_base, MergeShardStats* stats) {
  assert(kind_ == other.kind_ &&
         schema_.num_columns() == other.schema_.num_columns());
  const size_t width = schema_.num_columns();
  size_t copied = 0;
  if (kind_ == Kind::kKiss) {
    other.kiss_->ScanRange(
        range.kiss_lo, range.kiss_hi,
        [&](uint32_t key, const KissTree::ValueRef& vals) {
          vals.ForEach([&](uint64_t src_id) {
            uint64_t id = id_base + src_id;
            std::memcpy(rows_.data() + id * width, other.Tuple(src_id),
                        width * sizeof(uint64_t));
            if (kiss_->InsertForMerge(key, id)) ++stats->new_keys;
            ++copied;
          });
        });
  } else {
    PrefixTree::MergeStats tree_stats;
    other.prefix_->ScanRange(
        range.prefix_lo, range.prefix_hi,
        [&](const PrefixTree::ContentNode& c) {
          other.prefix_->ValuesOf(&c)->ForEach([&](uint64_t src_id) {
            uint64_t id = id_base + src_id;
            std::memcpy(rows_.data() + id * width, other.Tuple(src_id),
                        width * sizeof(uint64_t));
            prefix_->InsertForMerge(c.key(), id, &tree_stats);
            ++copied;
          });
        });
    stats->new_keys += tree_stats.new_keys;
    stats->new_inner_nodes += tree_stats.new_inner_nodes;
  }
  stats->tuples += copied;
}

void IndexedTable::EndParallelMerge(const MergeShardStats& total,
                                    uint32_t kiss_lo, uint32_t kiss_hi) {
  num_tuples_ += total.tuples;
  if (kind_ == Kind::kKiss) {
    kiss_->EndConcurrentInserts();
    kiss_->AddMergedKeyStats(total.new_keys, kiss_lo, kiss_hi);
  } else {
    prefix_->EndConcurrentInserts();
    prefix_->AddMergedKeyStats({total.new_keys, total.new_inner_nodes});
  }
}

void IndexedTable::BeginParallelAggMerge() {
  assert(!agg_.empty());
  if (kind_ == Kind::kKiss) {
    kiss_->BeginConcurrentInserts();
  } else {
    prefix_->BeginConcurrentInserts();
  }
}

void IndexedTable::MergeAggRangeFrom(
    const std::vector<const IndexedTable*>& partials,
    const MergeKeyRange& range, MergeShardStats* stats) {
  assert(!agg_.empty());
  if (kind_ == Kind::kKiss) {
    // Bucket-level co-iteration: the range is root-bucket-aligned, so
    // every partial's groups for one key sit at the same (bucket, slot)
    // coordinates — gather all their accumulators and fold them into the
    // destination payload with one MergeRange pass per group.
    const size_t l2 = kiss_->level2_bits();
    const size_t fanout = size_t{1} << l2;
    const uint64_t first_bucket = range.kiss_lo >> l2;
    const uint64_t last_bucket = range.kiss_hi >> l2;
    std::vector<uint32_t> handles(partials.size());
    std::vector<const std::byte*> srcs(partials.size());
    for (uint64_t b = first_bucket; b <= last_bucket; ++b) {
      bool any = false;
      for (size_t p = 0; p < partials.size(); ++p) {
        handles[p] = partials[p]->kiss_->RootEntry(b);
        any = any || handles[p] != 0;
      }
      if (!any) continue;
      for (uint32_t slot = 0; slot < fanout; ++slot) {
        size_t n = 0;
        for (size_t p = 0; p < partials.size(); ++p) {
          uint64_t entry = partials[p]->kiss_->Level2Entry(handles[p], slot);
          if (entry != 0) srcs[n++] = KissTree::EntryPayload(entry);
        }
        if (n == 0) continue;
        uint32_t key = static_cast<uint32_t>((b << l2) | slot);
        if (key < range.kiss_lo || key > range.kiss_hi) continue;
        bool created = false;
        std::byte* dst = kiss_->FindOrCreatePayloadForMerge(key, &created);
        if (created) {
          bound_agg_.Init(dst);
          ++stats->new_keys;
        }
        bound_agg_.MergeRange(dst, srcs.data(), n);
      }
    }
  } else {
    // Prefix trees have no shared slot coordinates across partials, so
    // each partial's range is folded in turn (the destination lookup
    // re-finds the group; ranges are subtree-disjoint across workers).
    PrefixTree::MergeStats tree_stats;
    for (const IndexedTable* p : partials) {
      p->prefix_->ScanRange(
          range.prefix_lo, range.prefix_hi,
          [&](const PrefixTree::ContentNode& c) {
            bool created = false;
            std::byte* dst = prefix_->FindOrCreatePayloadForMerge(
                c.key(), &created, &tree_stats);
            if (created) bound_agg_.Init(dst);
            bound_agg_.Merge(dst, p->prefix_->PayloadOf(&c));
          });
    }
    stats->new_keys += tree_stats.new_keys;
    stats->new_inner_nodes += tree_stats.new_inner_nodes;
  }
}

void IndexedTable::EndParallelAggMerge(const MergeShardStats& total,
                                       uint32_t kiss_lo, uint32_t kiss_hi,
                                       size_t folded_tuples) {
  num_tuples_ += folded_tuples;
  if (kind_ == Kind::kKiss) {
    kiss_->EndConcurrentInserts();
    kiss_->AddMergedKeyStats(total.new_keys, kiss_lo, kiss_hi);
  } else {
    prefix_->EndConcurrentInserts();
    prefix_->AddMergedKeyStats({total.new_keys, total.new_inner_nodes});
  }
}

void IndexedTable::InsertAggregated(const uint64_t* key_slots,
                                    const uint64_t* input_row) {
  assert(!agg_.empty());
  ++num_tuples_;
  bool created = false;
  std::byte* payload;
  if (kind_ == Kind::kKiss) {
    payload = kiss_->FindOrCreatePayload(KissKeyOf(key_slots[0]), &created);
  } else {
    KeyBuf key;
    EncodeKey(key_slots, &key);
    payload = prefix_->FindOrCreatePayload(key.data(), &created);
  }
  if (created) bound_agg_.Init(payload);
  bound_agg_.Combine(payload, input_row);
}

}  // namespace qppt
