#include "core/base_index.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace qppt {

namespace {

bool KissEligible(const std::vector<ValueType>& key_types) {
  return key_types.size() == 1 && key_types[0] != ValueType::kDouble;
}

}  // namespace

Result<std::unique_ptr<BaseIndex>> BaseIndex::Build(
    const RowTable* table, std::vector<std::string> key_columns,
    std::vector<std::string> included_columns, Options options) {
  auto index = std::unique_ptr<BaseIndex>(new BaseIndex());
  QPPT_RETURN_NOT_OK(index->Init(table, /*rids=*/nullptr,
                                 std::move(key_columns),
                                 std::move(included_columns), options));
  return index;
}

Result<std::unique_ptr<BaseIndex>> BaseIndex::BuildFromSnapshot(
    const MvccTable* table, Timestamp read_ts,
    std::vector<std::string> key_columns,
    std::vector<std::string> included_columns, Options options) {
  std::vector<Rid> rids = table->SnapshotRids(read_ts);
  auto index = std::unique_ptr<BaseIndex>(new BaseIndex());
  QPPT_RETURN_NOT_OK(index->Init(&table->storage(), &rids,
                                 std::move(key_columns),
                                 std::move(included_columns), options));
  return index;
}

Result<std::unique_ptr<BaseIndex>> BaseIndex::BuildLive(
    const MvccTable* table, std::vector<std::string> key_columns,
    Options options) {
  // Index every version row present, visible or not: scans filter through
  // RidVisibleAt, and rows from aborted transactions simply never become
  // visible. This keeps the build independent of in-flight transactions.
  std::vector<Rid> rids(table->num_versions());
  for (Rid r = 0; r < rids.size(); ++r) rids[r] = r;
  auto index = std::unique_ptr<BaseIndex>(new BaseIndex());
  QPPT_RETURN_NOT_OK(index->Init(&table->storage(), &rids,
                                 std::move(key_columns),
                                 /*included_columns=*/{}, options));
  index->mvcc_ = table;
  return index;
}

void BaseIndex::InsertLive(Rid rid) {
  assert(mvcc_ != nullptr && !clustered());
  if (kind_ == Kind::kKiss) {
    kiss_->Insert(KissKeyOf(table_->GetSlot(rid, key_cols_[0])), rid);
  } else {
    KeyBuf key;
    uint64_t slots[KeyBuf::kCapacity / 8];
    for (size_t i = 0; i < key_cols_.size(); ++i) {
      slots[i] = table_->GetSlot(rid, key_cols_[i]);
    }
    EncodeKey(slots, &key);
    prefix_->Insert(key.data(), rid);
  }
  // relaxed: advisory counter; the tree publish carries the data.
  num_rows_.fetch_add(1, std::memory_order_relaxed);
}

Status BaseIndex::Init(const RowTable* table, const std::vector<Rid>* rids,
                       std::vector<std::string> key_columns,
                       std::vector<std::string> included_columns,
                       Options options) {
  table_ = table;
  key_names_ = std::move(key_columns);
  included_names_ = std::move(included_columns);
  if (key_names_.empty()) {
    return Status::InvalidArgument("base index needs at least one key column");
  }
  const Schema& schema = table->schema();
  for (const auto& name : key_names_) {
    QPPT_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(name));
    key_cols_.push_back(idx);
    key_types_.push_back(schema.column(idx).type);
  }
  for (const auto& name : included_names_) {
    QPPT_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(name));
    included_cols_.push_back(idx);
  }
  if (options.prefer_kiss && KissEligible(key_types_)) {
    kind_ = Kind::kKiss;
    KissTree::Config cfg;
    cfg.root_bits = options.kiss_root_bits;
    cfg.mode = KissTree::PayloadMode::kValues;
    kiss_ = std::make_unique<KissTree>(cfg);
  } else {
    kind_ = Kind::kPrefix;
    PrefixTree::Config cfg;
    cfg.key_len = key_cols_.size() * 8;
    cfg.kprime = options.kprime;
    cfg.mode = PrefixTree::PayloadMode::kValues;
    prefix_ = std::make_unique<PrefixTree>(cfg);
  }
  heap_width_ = clustered() ? 1 + included_cols_.size() : 0;

  size_t indexed = 0;
  auto index_row = [&](Rid rid) {
    uint64_t value;
    if (clustered()) {
      value = heap_.size() / heap_width_;
      heap_.push_back(rid);
      for (size_t col : included_cols_) {
        heap_.push_back(table_->GetSlot(rid, col));
      }
    } else {
      value = rid;
    }
    if (kind_ == Kind::kKiss) {
      kiss_->Insert(KissKeyOf(table_->GetSlot(rid, key_cols_[0])), value);
    } else {
      KeyBuf key;
      uint64_t slots[KeyBuf::kCapacity / 8];
      for (size_t i = 0; i < key_cols_.size(); ++i) {
        slots[i] = table_->GetSlot(rid, key_cols_[i]);
      }
      EncodeKey(slots, &key);
      prefix_->Insert(key.data(), value);
    }
    ++indexed;
  };

  if (rids != nullptr) {
    for (Rid rid : *rids) index_row(rid);
  } else {
    for (Rid rid = 0; rid < table->num_rows(); ++rid) index_row(rid);
  }
  // relaxed: bulk build completes before the index is shared.
  num_rows_.store(indexed, std::memory_order_relaxed);
  return Status::OK();
}

size_t BaseIndex::MemoryUsage() const {
  size_t index_bytes =
      kind_ == Kind::kKiss ? kiss_->MemoryUsage() : prefix_->MemoryUsage();
  return index_bytes + heap_.capacity() * sizeof(uint64_t);
}

Result<BaseIndex::Accessor> BaseIndex::BindColumn(
    const std::string& name) const {
  Accessor acc;
  acc.owner_ = this;
  if (name == "@rid") {
    acc.from_ = Accessor::From::kRid;
    return acc;
  }
  for (size_t i = 0; i < included_names_.size(); ++i) {
    if (included_names_[i] == name) {
      acc.from_ = Accessor::From::kPayload;
      acc.pos_ = 1 + i;  // slot 0 is the rid
      return acc;
    }
  }
  QPPT_ASSIGN_OR_RETURN(size_t idx, table_->schema().ColumnIndex(name));
  acc.from_ = Accessor::From::kTable;
  acc.pos_ = idx;
  return acc;
}

void BaseIndex::EncodeKey(const uint64_t* key_slots, KeyBuf* out) const {
  out->clear();
  for (size_t i = 0; i < key_types_.size(); ++i) {
    if (key_types_[i] == ValueType::kDouble) {
      out->AppendDouble(DoubleFromSlot(key_slots[i]));
    } else {
      out->AppendI64(Int64FromSlot(key_slots[i]));
    }
  }
}

// ---- Database ---------------------------------------------------------------

Status Database::AddTable(std::unique_ptr<RowTable> table) {
  if (table->name().empty()) {
    return Status::InvalidArgument("table must be named");
  }
  auto [it, inserted] = tables_.emplace(table->name(), std::move(table));
  if (!inserted) {
    return Status::AlreadyExists("table '" + it->first + "' already exists");
  }
  return Status::OK();
}

Result<const RowTable*> Database::table(const std::string& name) const {
  auto it = tables_.find(name);
  if (it != tables_.end()) return it->second.get();
  auto vit = versioned_.find(name);
  if (vit != versioned_.end()) return &vit->second->storage();
  return Status::NotFound("no table named '" + name + "'");
}

Status Database::AddVersionedTable(std::unique_ptr<MvccTable> table) {
  if (table->name().empty()) {
    return Status::InvalidArgument("table must be named");
  }
  if (tables_.count(table->name()) > 0) {
    return Status::AlreadyExists("table '" + table->name() +
                                 "' already exists");
  }
  auto [it, inserted] = versioned_.emplace(table->name(), std::move(table));
  if (!inserted) {
    return Status::AlreadyExists("table '" + it->first + "' already exists");
  }
  return Status::OK();
}

Result<MvccTable*> Database::versioned_table(const std::string& name) {
  auto it = versioned_.find(name);
  if (it == versioned_.end()) {
    return Status::NotFound("no versioned table named '" + name + "'");
  }
  return it->second.get();
}

Result<const MvccTable*> Database::versioned_table(
    const std::string& name) const {
  auto it = versioned_.find(name);
  if (it == versioned_.end()) {
    return Status::NotFound("no versioned table named '" + name + "'");
  }
  return it->second.get();
}

Status Database::BuildLiveIndex(const std::string& index_name,
                                const std::string& table_name,
                                std::vector<std::string> key_columns,
                                BaseIndex::Options options) {
  if (indexes_.count(index_name) > 0) {
    return Status::AlreadyExists("index '" + index_name + "' already exists");
  }
  QPPT_ASSIGN_OR_RETURN(const MvccTable* tbl, versioned_table(table_name));
  QPPT_ASSIGN_OR_RETURN(
      auto index, BaseIndex::BuildLive(tbl, std::move(key_columns), options));
  BaseIndex* raw = index.get();
  indexes_.emplace(index_name, std::move(index));
  live_by_table_[table_name].push_back(raw);
  return Status::OK();
}

const std::vector<BaseIndex*>& Database::live_indexes(
    const std::string& table_name) const {
  static const std::vector<BaseIndex*> kNone;
  auto it = live_by_table_.find(table_name);
  return it == live_by_table_.end() ? kNone : it->second;
}

Status Database::BuildIndex(const std::string& index_name,
                            const std::string& table_name,
                            std::vector<std::string> key_columns,
                            std::vector<std::string> included_columns,
                            BaseIndex::Options options) {
  if (indexes_.count(index_name) > 0) {
    return Status::AlreadyExists("index '" + index_name + "' already exists");
  }
  QPPT_ASSIGN_OR_RETURN(const RowTable* tbl, table(table_name));
  QPPT_ASSIGN_OR_RETURN(
      auto index, BaseIndex::Build(tbl, std::move(key_columns),
                                   std::move(included_columns), options));
  indexes_.emplace(index_name, std::move(index));
  return Status::OK();
}

Result<const BaseIndex*> Database::index(const std::string& name) const {
  auto it = indexes_.find(name);
  if (it == indexes_.end()) {
    return Status::NotFound("no index named '" + name + "'");
  }
  return it->second.get();
}

size_t Database::MemoryUsage() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) total += table->MemoryUsage();
  for (const auto& [name, table] : versioned_) {
    total += table->storage().MemoryUsage();
  }
  for (const auto& [name, index] : indexes_) total += index->MemoryUsage();
  return total;
}

std::vector<std::string> Database::table_names() const {
  std::vector<std::string> names;
  for (const auto& [name, table] : tables_) names.push_back(name);
  for (const auto& [name, table] : versioned_) names.push_back(name);
  return names;
}

std::vector<std::string> Database::versioned_table_names() const {
  std::vector<std::string> names;
  for (const auto& [name, table] : versioned_) names.push_back(name);
  return names;
}

std::vector<std::string> Database::index_names() const {
  std::vector<std::string> names;
  for (const auto& [name, index] : indexes_) names.push_back(name);
  return names;
}

}  // namespace qppt
