// Aggregation-on-insert and scalar expressions.
//
// In the indexed table-at-a-time model, grouping and aggregation are not
// separate operators: every operator indexes its output, and when an insert
// finds the (group) key already present it folds the new tuple into the
// existing accumulator (§3). AggSpec describes the accumulator layout and
// the fold; ScalarExpr covers the small expression language the SSB
// aggregates need (a column, a product, or a difference — e.g.
// sum(lo_extendedprice * lo_discount), sum(lo_revenue - lo_supplycost)).

#ifndef QPPT_CORE_AGG_H_
#define QPPT_CORE_AGG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"
#include "util/status.h"

namespace qppt {

// A scalar over an input tuple: column, col*col, or col-col.
struct ScalarExpr {
  enum class Op : uint8_t { kColumn, kMul, kSub };

  Op op = Op::kColumn;
  std::string lhs;  // column name
  std::string rhs;  // column name (kMul / kSub)

  static ScalarExpr Column(std::string name) {
    return {Op::kColumn, std::move(name), {}};
  }
  static ScalarExpr Mul(std::string a, std::string b) {
    return {Op::kMul, std::move(a), std::move(b)};
  }
  static ScalarExpr Sub(std::string a, std::string b) {
    return {Op::kSub, std::move(a), std::move(b)};
  }

  std::string ToString() const;
};

// A bound scalar expression: column positions resolved against a schema.
// Only int64 arithmetic is needed by the SSB workloads; doubles pass
// through kColumn untouched.
struct BoundScalarExpr {
  ScalarExpr::Op op = ScalarExpr::Op::kColumn;
  size_t lhs = 0;
  size_t rhs = 0;

  uint64_t Eval(const uint64_t* row) const {
    switch (op) {
      case ScalarExpr::Op::kColumn:
        return row[lhs];
      case ScalarExpr::Op::kMul:
        return SlotFromInt64(Int64FromSlot(row[lhs]) *
                             Int64FromSlot(row[rhs]));
      case ScalarExpr::Op::kSub:
        return SlotFromInt64(Int64FromSlot(row[lhs]) -
                             Int64FromSlot(row[rhs]));
    }
    return 0;
  }
};

Result<BoundScalarExpr> BindScalarExpr(const ScalarExpr& expr,
                                       const Schema& schema);

enum class AggFn : uint8_t { kSum, kCount, kMin, kMax, kAvg };

std::string_view AggFnToString(AggFn fn);

struct AggTerm {
  AggFn fn = AggFn::kSum;
  ScalarExpr source;      // ignored for kCount
  std::string out_name;   // result column name
};

// Describes the aggregates of one output index. The accumulator is a
// packed array of 8-byte slots: one per term, plus one shared count slot
// when any kAvg term is present.
class AggSpec {
 public:
  AggSpec() = default;
  explicit AggSpec(std::vector<AggTerm> terms) : terms_(std::move(terms)) {}

  bool empty() const { return terms_.empty(); }
  const std::vector<AggTerm>& terms() const { return terms_; }

  // Accumulator bytes: 8 per term (+8 for the avg count if needed).
  size_t payload_size() const {
    return (terms_.size() + (HasAvg() ? 1 : 0)) * sizeof(uint64_t);
  }
  bool HasAvg() const;

  std::string ToString() const;

 private:
  std::vector<AggTerm> terms_;
};

// A bound AggSpec: expressions resolved, ready for the hot loop.
class BoundAggSpec {
 public:
  BoundAggSpec() = default;

  static Result<BoundAggSpec> Bind(const AggSpec& spec, const Schema& input);

  bool empty() const { return terms_.empty(); }
  size_t num_terms() const { return terms_.size(); }
  size_t payload_size() const {
    return (terms_.size() + (has_avg_ ? 1 : 0)) * sizeof(uint64_t);
  }

  // Initializes a fresh zero-filled accumulator (identity elements; MIN and
  // MAX need non-zero identities).
  void Init(std::byte* payload) const;

  // Folds `row` (input-tuple slots) into the accumulator.
  void Combine(std::byte* payload, const uint64_t* row) const;

  // Folds accumulator `src` into `dst` (both initialized with Init). This
  // is the partial-state merge the engine's parallel aggregation uses:
  // each worker folds into a private accumulator, and the partials are
  // merged once at the end (sum/count/avg add, min/max compare).
  void Merge(std::byte* dst, const std::byte* src) const {
    MergeRange(dst, &src, 1);
  }

  // Folds `n` source accumulators into `dst` in one pass over the terms —
  // the inner loop of the key-range-partitioned aggregated merge: a range
  // worker gathers one group's accumulator from every partial that holds
  // the key and folds them all at once, hoisting the per-term dispatch
  // out of the per-partial loop.
  void MergeRange(std::byte* dst, const std::byte* const* srcs,
                  size_t n) const;

  // Reads the finalized value of term `i` (AVG divides by the count slot).
  // `is_double` per-term tells how to interpret the slot.
  uint64_t Finalize(const std::byte* payload, size_t i) const;

  bool term_is_double(size_t i) const { return terms_[i].is_double; }
  AggFn term_fn(size_t i) const { return terms_[i].fn; }

 private:
  struct BoundTerm {
    AggFn fn;
    BoundScalarExpr source;
    bool is_double = false;  // accumulate in double (source col is double)
  };

  std::vector<BoundTerm> terms_;
  bool has_avg_ = false;
};

}  // namespace qppt

#endif  // QPPT_CORE_AGG_H_
