// Join / selection buffers (§4.2, §4.3, demonstrator appendix).
//
// Composed operators face two costs: per-probe function-call overhead and
// the memory latency of point accesses into large indexes. QPPT buffers
// pending index lookups and executes them as §2.3 batch lookups, which
// prefetch-pipelines the tree descents. The demonstrator exposes the
// buffer size as a knob {1 (none), 64, 512, 2048}; size 1 degenerates to
// plain point lookups, which is exactly how the ablation E7 measures the
// benefit.

#ifndef QPPT_CORE_JOIN_BUFFER_H_
#define QPPT_CORE_JOIN_BUFFER_H_

#include <cstdint>
#include <vector>

#include "index/kiss_tree.h"

namespace qppt {

// Buffers (key, context) probe requests against a KISS-Tree. The caller
// owns the flush policy: Add() returns true when the buffer reached
// capacity and must be flushed before the next Add.
template <typename Ctx>
class KissProbeBuffer {
 public:
  explicit KissProbeBuffer(size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {
    jobs_.reserve(capacity_);
    ctxs_.reserve(capacity_);
  }

  size_t capacity() const { return capacity_; }
  size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }

  // Queues a probe. Returns true when the buffer is full.
  bool Add(uint32_t key, Ctx ctx) {
    KissTree::LookupJob job;
    job.key = key;
    jobs_.push_back(job);
    ctxs_.push_back(std::move(ctx));
    return jobs_.size() >= capacity_;
  }

  // Executes all queued probes against `tree` and invokes
  // fn(Ctx&, bool found, const KissTree::ValueRef&) per probe, in
  // insertion order. Leaves the buffer empty.
  template <typename F>
  void Flush(const KissTree& tree, F&& fn) {
    if (jobs_.empty()) return;
    if (capacity_ == 1) {
      // Unbuffered mode: plain point lookups (the demonstrator's "none").
      for (size_t i = 0; i < jobs_.size(); ++i) {
        KissTree::ValueRef values;
        bool found = tree.Lookup(jobs_[i].key, &values);
        fn(ctxs_[i], found, values);
      }
    } else {
      tree.BatchLookup(jobs_);
      for (size_t i = 0; i < jobs_.size(); ++i) {
        fn(ctxs_[i], jobs_[i].found, jobs_[i].values);
      }
    }
    jobs_.clear();
    ctxs_.clear();
  }

 private:
  size_t capacity_;
  std::vector<KissTree::LookupJob> jobs_;
  std::vector<Ctx> ctxs_;
};

}  // namespace qppt

#endif  // QPPT_CORE_JOIN_BUFFER_H_
