// Plan representation and execution (§3, Figure 5).
//
// A QPPT execution plan is an ordered list of operators. Each operator
// consumes base indexes (from the Database) and/or intermediate indexed
// tables (from named ExecContext slots), and produces one new indexed
// table — the indexed table-at-a-time contract: exactly one "next call"
// per operator, data handed over as a single index handle.
//
// PlanKnobs mirrors the demonstrator's optimization panel (appendix A):
// select-join fusion on/off, join-buffer size {1, 64, 512, 2048}, and the
// multi-way join cap {2, 3, 4, multi}.

#ifndef QPPT_CORE_PLAN_H_
#define QPPT_CORE_PLAN_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/base_index.h"
#include "core/indexed_table.h"
#include "core/stats.h"
#include "util/cancel.h"
#include "util/status.h"

namespace qppt {

namespace engine {
class WorkerPool;  // engine/scheduler.h — the morsel worker pool
}  // namespace engine

// Admission class for tiered admission control (engine/session.h). The
// engine reserves slots for kInteractive work and sheds kBatch work first
// under overload; core-layer execution ignores the field.
enum class QueryPriority : int {
  kInteractive = 0,
  kBatch = 1,
};

struct PlanKnobs {
  // Fuse selections into subsequent joins where the plan allows (§4.3).
  bool use_select_join = true;
  // Join/selection buffer capacity; 1 disables batching (§4.2).
  size_t join_buffer_size = 512;
  // Maximum operator arity for multi-way/star joins; 0 = unlimited.
  // (Interpreted by plan builders, not by operators.)
  int max_join_ways = 0;
  // Morsel workers for the hot operators (engine layer, §7). 1 = serial;
  // >1 requires a WorkerPool attached to the ExecContext (the
  // EngineRunner does both).
  size_t threads = 1;
  // MVCC snapshot to read versioned tables at. The default sentinel
  // (kTsInfinity) means "pin the latest committed timestamp when the
  // ExecContext is constructed" — the engine session pins earlier, at
  // query admission, so every operator of one flight sees one snapshot.
  Timestamp read_ts = kTsInfinity;
  // Record a per-query span timeline (every morsel, merge shard, and
  // operator) into PlanStats::trace — obs/trace.h. Off by default: spans
  // are cheap but not free, and most queries only need aggregates.
  bool trace = false;
  // Cooperative cancellation token, or nullptr. The caller owns the token
  // and must keep it alive for the whole execution; drivers poll it at
  // morsel boundaries and (stride-gated) inside serial scan loops, so
  // Plan::Run returns Cancelled/DeadlineExceeded promptly after
  // RequestCancel() or deadline expiry.
  const CancelToken* cancel = nullptr;
  // Per-query deadline in milliseconds; 0 = none. The engine runner
  // resolves this into a deadline token chained to `cancel` at admission,
  // so the clock covers queue wait plus execution.
  double deadline_ms = 0;
  // Admission class (engine layer); see QueryPriority.
  QueryPriority priority = QueryPriority::kInteractive;
  // How long this query may wait for an admission slot before the engine
  // gives up with ResourceExhausted. Negative = use the engine's
  // configured default (EngineConfig::admission_timeout_ms).
  double queue_timeout_ms = -1;
  // Index construction parameters for intermediate tables.
  IndexedTable::Options table_options;
};

class ExecContext {
 public:
  ExecContext(const Database* db, PlanKnobs knobs = PlanKnobs{})
      : db_(db),
        knobs_(knobs),
        read_ts_(knobs.read_ts == kTsInfinity
                     ? db->txn_manager().last_commit_ts()
                     : knobs.read_ts) {
    stats_.threads = knobs_.threads;
    stats_.read_ts = read_ts_;
  }

  const Database& db() const { return *db_; }
  const PlanKnobs& knobs() const { return knobs_; }

  // The MVCC snapshot all operators of this plan read versioned tables
  // at. Resolved once at construction, so a query is snapshot-consistent
  // even while writers commit concurrently.
  Timestamp read_ts() const { return read_ts_; }
  PlanStats* stats() { return &stats_; }
  const PlanStats& stats() const { return stats_; }

  // The engine's morsel worker pool, or nullptr when executing serially.
  // Operators take the parallel path only when a pool is attached AND
  // knobs().threads > 1.
  engine::WorkerPool* worker_pool() const { return pool_; }
  void set_worker_pool(engine::WorkerPool* pool) { pool_ = pool; }

  // The query's cancellation token, or nullptr when the caller did not
  // provide one (nothing to poll; execution runs to completion).
  const CancelToken* cancel() const { return knobs_.cancel; }
  // Polls the token: OK to continue, Cancelled/DeadlineExceeded to stop.
  Status CheckCancel() const {
    return knobs_.cancel == nullptr ? Status::OK() : knobs_.cancel->Check();
  }

  // The query's span timeline, or nullptr when knobs().trace is off.
  // Created by EnsureTrace — the engine runner calls it with the pool's
  // true worker count before execution; Plan::Run falls back to
  // knobs().threads for serial/core callers. Idempotent; the handle is
  // also stored in stats()->trace so it survives this context.
  obs::QueryTrace* trace() const { return trace_.get(); }
  void EnsureTrace(size_t workers);

  // Registers an operator's output under `name`.
  Status Put(const std::string& name, std::unique_ptr<IndexedTable> table);
  // Fetches an intermediate by slot name.
  Result<const IndexedTable*> Get(const std::string& name) const;

 private:
  const Database* db_;
  PlanKnobs knobs_;
  Timestamp read_ts_ = 0;
  engine::WorkerPool* pool_ = nullptr;
  std::map<std::string, std::unique_ptr<IndexedTable>> slots_;
  PlanStats stats_;
  std::shared_ptr<obs::QueryTrace> trace_;
};

class Operator {
 public:
  virtual ~Operator() = default;
  virtual std::string name() const = 0;
  virtual Status Execute(ExecContext* ctx) = 0;

  // Planner-assigned stage label (e.g. "sel:date_sel"). When set, it
  // becomes the operator's row name in PlanStats so ExplainPlan() output
  // and executed statistics line up line-for-line.
  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const { return label_; }
  std::string display_name() const { return label_.empty() ? name() : label_; }

 private:
  std::string label_;
};

// The final, client-visible result rows (the engine iterates the result
// index in order while transferring to the client, §3 — order-by for free).
struct QueryResult {
  Schema schema;
  std::vector<std::vector<Value>> rows;

  std::string ToString(size_t limit = 20) const;
};

// One key of a final result sort (the ORDER-BY component the output index
// cannot provide; the planner attaches these to the plan).
struct ResultOrderKey {
  std::string column;
  bool descending = false;
};

class Plan {
 public:
  Plan() = default;

  Plan& Add(std::unique_ptr<Operator> op) {
    operators_.push_back(std::move(op));
    return *this;
  }
  template <typename Op, typename... Args>
  Plan& Emplace(Args&&... args) {
    return Add(std::make_unique<Op>(static_cast<Args&&>(args)...));
  }

  void set_result_slot(std::string slot) { result_slot_ = std::move(slot); }
  const std::string& result_slot() const { return result_slot_; }
  size_t num_operators() const { return operators_.size(); }

  // Post-sort applied to the extracted result rows by Execute(). Empty =
  // rows stay in output-index order (ORDER BY for free, §3).
  void set_result_order(std::vector<ResultOrderKey> keys) {
    result_order_ = std::move(keys);
  }
  const std::vector<ResultOrderKey>& result_order() const {
    return result_order_;
  }

  // Operator name / stage-label sequences (planner golden tests, tools).
  std::vector<std::string> OperatorNames() const;
  std::vector<std::string> OperatorLabels() const;

  // Executes all operators in order, recording per-operator statistics.
  Status Run(ExecContext* ctx) const;

  // Runs and extracts the final result rows from the result slot.
  Result<QueryResult> Execute(ExecContext* ctx) const;

 private:
  std::vector<std::unique_ptr<Operator>> operators_;
  std::string result_slot_;
  std::vector<ResultOrderKey> result_order_;
};

// Applies an ORDER-BY sort to extracted rows (stable; columns resolved
// by name against the result schema).
Status SortResult(const std::vector<ResultOrderKey>& keys,
                  QueryResult* result);

// Converts an indexed table (typically the aggregated output of the last
// operator) into client rows, decoding dictionary-coded columns.
Result<QueryResult> ExtractResult(const IndexedTable& table);

}  // namespace qppt

#endif  // QPPT_CORE_PLAN_H_
