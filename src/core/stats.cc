#include "core/stats.h"

#include <cstdio>
#include <string>

namespace qppt {

std::string PlanStats::ToString() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-28s %9s %9s %9s %12s %10s %10s\n",
                "operator", "total_ms", "mat_ms", "idx_ms", "out_tuples",
                "out_keys", "out_MiB");
  out += line;
  for (const auto& op : operators) {
    std::snprintf(line, sizeof(line),
                  "%-28s %9.2f %9.2f %9.2f %12llu %10llu %10.2f\n",
                  op.name.c_str(), op.total_ms, op.materialize_ms,
                  op.index_ms,
                  static_cast<unsigned long long>(op.output_tuples),
                  static_cast<unsigned long long>(op.output_keys),
                  static_cast<double>(op.output_bytes) / (1024.0 * 1024.0));
    out += line;
    if (!op.output_desc.empty()) {
      out += "    -> ";
      out += op.output_desc;
      out += "\n";
    }
  }
  std::snprintf(line, sizeof(line), "%-28s %9.2f\n", "TOTAL", total_ms);
  out += line;
  return out;
}

}  // namespace qppt
