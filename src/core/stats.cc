#include "core/stats.h"

#include <cstdio>
#include <string>

namespace qppt {

std::string PlanStats::ToString() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-28s %9s %9s %9s %9s %12s %10s %10s %8s\n", "operator",
                "total_ms", "mat_ms", "idx_ms", "merge_ms", "out_tuples",
                "out_keys", "out_MiB", "morsels");
  out += line;
  for (const auto& op : operators) {
    std::snprintf(line, sizeof(line),
                  "%-28s %9.2f %9.2f %9.2f %9.2f %12llu %10llu %10.2f %8llu\n",
                  op.name.c_str(), op.total_ms, op.materialize_ms,
                  op.index_ms, op.merge_ms,
                  static_cast<unsigned long long>(op.output_tuples),
                  static_cast<unsigned long long>(op.output_keys),
                  static_cast<double>(op.output_bytes) / (1024.0 * 1024.0),
                  static_cast<unsigned long long>(op.morsels));
    out += line;
    if (!op.output_desc.empty()) {
      out += "    -> ";
      out += op.output_desc;
      out += "\n";
    }
  }
  std::snprintf(line, sizeof(line),
                "%-28s %9.2f  (wall %.2f ms, %zu thread%s, %llu morsels, "
                "merge %.2f ms / %llu shards)\n",
                "TOTAL", total_ms, wall_ms, threads, threads == 1 ? "" : "s",
                static_cast<unsigned long long>(TotalMorsels()),
                TotalMergeMs(),
                static_cast<unsigned long long>(TotalMergeMorsels()));
  out += line;
  return out;
}

}  // namespace qppt
