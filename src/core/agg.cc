#include "core/agg.h"

#include <cstdint>
#include <limits>
#include <string>

namespace qppt {

std::string ScalarExpr::ToString() const {
  switch (op) {
    case Op::kColumn:
      return lhs;
    case Op::kMul:
      return lhs + " * " + rhs;
    case Op::kSub:
      return lhs + " - " + rhs;
  }
  return "?";
}

Result<BoundScalarExpr> BindScalarExpr(const ScalarExpr& expr,
                                       const Schema& schema) {
  BoundScalarExpr bound;
  bound.op = expr.op;
  QPPT_ASSIGN_OR_RETURN(bound.lhs, schema.ColumnIndex(expr.lhs));
  if (expr.op != ScalarExpr::Op::kColumn) {
    QPPT_ASSIGN_OR_RETURN(bound.rhs, schema.ColumnIndex(expr.rhs));
  }
  return bound;
}

std::string_view AggFnToString(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
      return "sum";
    case AggFn::kCount:
      return "count";
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
    case AggFn::kAvg:
      return "avg";
  }
  return "?";
}

bool AggSpec::HasAvg() const {
  for (const auto& t : terms_) {
    if (t.fn == AggFn::kAvg) return true;
  }
  return false;
}

std::string AggSpec::ToString() const {
  std::string out;
  for (const auto& t : terms_) {
    if (!out.empty()) out += ", ";
    out += AggFnToString(t.fn);
    out += "(";
    out += t.fn == AggFn::kCount ? "*" : t.source.ToString();
    out += ") as ";
    out += t.out_name;
  }
  return out;
}

Result<BoundAggSpec> BoundAggSpec::Bind(const AggSpec& spec,
                                        const Schema& input) {
  BoundAggSpec bound;
  for (const auto& term : spec.terms()) {
    BoundTerm bt;
    bt.fn = term.fn;
    if (term.fn != AggFn::kCount) {
      QPPT_ASSIGN_OR_RETURN(bt.source, BindScalarExpr(term.source, input));
      if (term.source.op == ScalarExpr::Op::kColumn) {
        bt.is_double =
            input.column(bt.source.lhs).type == ValueType::kDouble;
      }
    }
    bound.has_avg_ = bound.has_avg_ || term.fn == AggFn::kAvg;
    bound.terms_.push_back(bt);
  }
  return bound;
}

void BoundAggSpec::Init(std::byte* payload) const {
  auto* slots = reinterpret_cast<uint64_t*>(payload);
  for (size_t i = 0; i < terms_.size(); ++i) {
    const BoundTerm& t = terms_[i];
    switch (t.fn) {
      case AggFn::kSum:
      case AggFn::kCount:
      case AggFn::kAvg:
        slots[i] = t.is_double ? SlotFromDouble(0.0) : SlotFromInt64(0);
        break;
      case AggFn::kMin:
        slots[i] = t.is_double
                       ? SlotFromDouble(std::numeric_limits<double>::max())
                       : SlotFromInt64(std::numeric_limits<int64_t>::max());
        break;
      case AggFn::kMax:
        slots[i] = t.is_double
                       ? SlotFromDouble(std::numeric_limits<double>::lowest())
                       : SlotFromInt64(std::numeric_limits<int64_t>::min());
        break;
    }
  }
  if (has_avg_) slots[terms_.size()] = 0;  // shared row count
}

void BoundAggSpec::Combine(std::byte* payload, const uint64_t* row) const {
  auto* slots = reinterpret_cast<uint64_t*>(payload);
  for (size_t i = 0; i < terms_.size(); ++i) {
    const BoundTerm& t = terms_[i];
    switch (t.fn) {
      case AggFn::kCount:
        slots[i] = SlotFromInt64(Int64FromSlot(slots[i]) + 1);
        break;
      case AggFn::kSum:
      case AggFn::kAvg: {
        uint64_t v = t.source.Eval(row);
        if (t.is_double) {
          slots[i] = SlotFromDouble(DoubleFromSlot(slots[i]) +
                                    DoubleFromSlot(v));
        } else {
          slots[i] = SlotFromInt64(Int64FromSlot(slots[i]) +
                                   Int64FromSlot(v));
        }
        break;
      }
      case AggFn::kMin: {
        uint64_t v = t.source.Eval(row);
        if (t.is_double) {
          if (DoubleFromSlot(v) < DoubleFromSlot(slots[i])) slots[i] = v;
        } else {
          if (Int64FromSlot(v) < Int64FromSlot(slots[i])) slots[i] = v;
        }
        break;
      }
      case AggFn::kMax: {
        uint64_t v = t.source.Eval(row);
        if (t.is_double) {
          if (DoubleFromSlot(v) > DoubleFromSlot(slots[i])) slots[i] = v;
        } else {
          if (Int64FromSlot(v) > Int64FromSlot(slots[i])) slots[i] = v;
        }
        break;
      }
    }
  }
  if (has_avg_) slots[terms_.size()] += 1;
}

void BoundAggSpec::MergeRange(std::byte* dst, const std::byte* const* srcs,
                              size_t n) const {
  auto* d = reinterpret_cast<uint64_t*>(dst);
  for (size_t i = 0; i < terms_.size(); ++i) {
    const BoundTerm& t = terms_[i];
    switch (t.fn) {
      case AggFn::kCount:
        for (size_t k = 0; k < n; ++k) {
          const auto* s = reinterpret_cast<const uint64_t*>(srcs[k]);
          d[i] = SlotFromInt64(Int64FromSlot(d[i]) + Int64FromSlot(s[i]));
        }
        break;
      case AggFn::kSum:
      case AggFn::kAvg:
        for (size_t k = 0; k < n; ++k) {
          const auto* s = reinterpret_cast<const uint64_t*>(srcs[k]);
          if (t.is_double) {
            d[i] = SlotFromDouble(DoubleFromSlot(d[i]) +
                                  DoubleFromSlot(s[i]));
          } else {
            d[i] = SlotFromInt64(Int64FromSlot(d[i]) + Int64FromSlot(s[i]));
          }
        }
        break;
      case AggFn::kMin:
        for (size_t k = 0; k < n; ++k) {
          const auto* s = reinterpret_cast<const uint64_t*>(srcs[k]);
          if (t.is_double) {
            if (DoubleFromSlot(s[i]) < DoubleFromSlot(d[i])) d[i] = s[i];
          } else {
            if (Int64FromSlot(s[i]) < Int64FromSlot(d[i])) d[i] = s[i];
          }
        }
        break;
      case AggFn::kMax:
        for (size_t k = 0; k < n; ++k) {
          const auto* s = reinterpret_cast<const uint64_t*>(srcs[k]);
          if (t.is_double) {
            if (DoubleFromSlot(s[i]) > DoubleFromSlot(d[i])) d[i] = s[i];
          } else {
            if (Int64FromSlot(s[i]) > Int64FromSlot(d[i])) d[i] = s[i];
          }
        }
        break;
    }
  }
  if (has_avg_) {
    for (size_t k = 0; k < n; ++k) {
      d[terms_.size()] +=
          reinterpret_cast<const uint64_t*>(srcs[k])[terms_.size()];
    }
  }
}

uint64_t BoundAggSpec::Finalize(const std::byte* payload, size_t i) const {
  const auto* slots = reinterpret_cast<const uint64_t*>(payload);
  const BoundTerm& t = terms_[i];
  if (t.fn != AggFn::kAvg) return slots[i];
  uint64_t count = slots[terms_.size()];
  if (count == 0) return t.is_double ? SlotFromDouble(0.0) : 0;
  if (t.is_double) {
    return SlotFromDouble(DoubleFromSlot(slots[i]) /
                          static_cast<double>(count));
  }
  // Integer AVG yields a double (matches common SQL engines).
  return SlotFromDouble(static_cast<double>(Int64FromSlot(slots[i])) /
                        static_cast<double>(count));
}

}  // namespace qppt
