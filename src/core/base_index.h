// Base indexes over row tables (§3).
//
// Leaf operators access base data through prefix-tree-based *base indexes*
// that either already exist or are created once and stay in the data pool.
// Two payload flavors (§3):
//   - secondary index:           payload = record identifier (rid) only;
//     attribute access costs a random read into the row table.
//   - partially clustered index: payload = rid plus a partial record of
//     "included" columns, stored packed next to the index. Operators read
//     join/selection/grouping attributes without touching the base table —
//     the paper's main lever for sequential-speed selections.
//
// Base indexes respect transactional isolation: BuildFromSnapshot indexes
// the rows visible to an MVCC snapshot.

#ifndef QPPT_CORE_BASE_INDEX_H_
#define QPPT_CORE_BASE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "index/key_encoder.h"
#include "index/kiss_tree.h"
#include "index/prefix_tree.h"
#include "storage/mvcc.h"
#include "storage/row_table.h"
#include "util/status.h"

namespace qppt {

class BaseIndex {
 public:
  enum class Kind : uint8_t { kKiss, kPrefix };

  struct Options {
    size_t kprime = 4;
    bool prefer_kiss = true;
    size_t kiss_root_bits = 26;
  };

  // Builds an index over all rows of `table`, keyed on `key_columns`.
  // Non-empty `included_columns` makes it partially clustered.
  static Result<std::unique_ptr<BaseIndex>> Build(
      const RowTable* table, std::vector<std::string> key_columns,
      std::vector<std::string> included_columns, Options options);
  static Result<std::unique_ptr<BaseIndex>> Build(
      const RowTable* table, std::vector<std::string> key_columns,
      std::vector<std::string> included_columns = {}) {
    return Build(table, std::move(key_columns), std::move(included_columns),
                 Options{});
  }

  // Builds over the rows visible at an MVCC snapshot.
  static Result<std::unique_ptr<BaseIndex>> BuildFromSnapshot(
      const MvccTable* table, Timestamp read_ts,
      std::vector<std::string> key_columns,
      std::vector<std::string> included_columns, Options options);
  static Result<std::unique_ptr<BaseIndex>> BuildFromSnapshot(
      const MvccTable* table, Timestamp read_ts,
      std::vector<std::string> key_columns,
      std::vector<std::string> included_columns = {}) {
    return BuildFromSnapshot(table, read_ts, std::move(key_columns),
                             std::move(included_columns), Options{});
  }

  // Builds a *live* index over an MVCC table: every version row currently
  // in the table is indexed (including superseded and not-yet-committed
  // ones — visibility is enforced per scan via MvccTable::RidVisibleAt),
  // and InsertLive feeds version rows created by later transactions into
  // the trees while snapshot readers scan concurrently. Live indexes are
  // secondary-only: the partially clustered payload heap reallocates on
  // growth, which would race readers, so included columns are rejected.
  static Result<std::unique_ptr<BaseIndex>> BuildLive(
      const MvccTable* table, std::vector<std::string> key_columns,
      Options options);
  static Result<std::unique_ptr<BaseIndex>> BuildLive(
      const MvccTable* table, std::vector<std::string> key_columns) {
    return BuildLive(table, std::move(key_columns), Options{});
  }

  // Appends one version row to a live index. Writer-side: the caller
  // serializes all InsertLive calls (Database::write_mutex); concurrent
  // snapshot readers are safe because the trees publish new keys and
  // values with release stores (§7: no rebalancing, so a published node
  // is never restructured under a reader).
  void InsertLive(Rid rid);

  // Non-null iff built with BuildLive.
  const MvccTable* mvcc() const { return mvcc_; }

  Kind kind() const { return kind_; }
  bool clustered() const { return !included_cols_.empty(); }
  const RowTable& table() const { return *table_; }
  const KissTree* kiss() const { return kiss_.get(); }
  const PrefixTree* prefix() const { return prefix_.get(); }
  size_t num_rows() const {
    // relaxed: advisory row count for planning; no data read through it.
    return num_rows_.load(std::memory_order_relaxed);
  }
  size_t num_keys() const {
    return kind_ == Kind::kKiss ? kiss_->num_keys() : prefix_->num_keys();
  }
  size_t MemoryUsage() const;
  const std::vector<std::string>& key_column_names() const {
    return key_names_;
  }

  // --- attribute access ------------------------------------------------------
  //
  // Index *values* are opaque 64-bit handles: the rid for secondary
  // indexes, a partial-record ordinal for clustered ones. An Accessor
  // resolves one column against a value; binding happens once per query.

  class Accessor {
   public:
    Accessor() = default;

    uint64_t Get(uint64_t value) const {
      switch (from_) {
        case From::kRid:
          return owner_->RidOf(value);
        case From::kPayload:
          return owner_->heap_[value * owner_->heap_width_ + pos_];
        case From::kTable:
          return owner_->table_->GetSlot(owner_->RidOf(value), pos_);
      }
      return 0;
    }

    // True if reading this column touches the base table (a random access
    // the partially clustered layout is designed to avoid).
    bool touches_table() const { return from_ == From::kTable; }

   private:
    friend class BaseIndex;
    enum class From : uint8_t { kRid, kPayload, kTable };
    const BaseIndex* owner_ = nullptr;
    From from_ = From::kRid;
    size_t pos_ = 0;
  };

  // Binds column `name`; resolution order: included payload, then base
  // table. The pseudo-column "@rid" yields the record identifier.
  Result<Accessor> BindColumn(const std::string& name) const;

  // --- key handling ------------------------------------------------------------

  void EncodeKey(const uint64_t* key_slots, KeyBuf* out) const;
  static uint32_t KissKeyOf(uint64_t slot) {
    return static_cast<uint32_t>(Int64FromSlot(slot));
  }

  // --- scans ----------------------------------------------------------------------
  //
  // F: void(uint64_t value). Single-key-column convenience paths; operators
  // needing composite keys use the trees directly.

  // Exact match on ALL key components of a multidimensional index
  // (§4.1: conjunctive predicates prefer a multidimensional index as
  // input). `key_slots` holds one slot per key column.
  template <typename F>
  void ForEachMatchComposite(const uint64_t* key_slots, F&& fn) const {
    if (kind_ == Kind::kKiss) {
      ForEachMatch(key_slots[0], fn);
      return;
    }
    KeyBuf key;
    EncodeKey(key_slots, &key);
    const ValueList* vals = prefix_->Lookup(key.data());
    if (vals != nullptr) vals->ForEach(fn);
  }

  // Range scan on the composite encoding: all keys in
  // [lo_slots, hi_slots] (component-wise lexicographic order). With the
  // trailing components spanning their full domain this is a prefix scan.
  template <typename F>
  void ForEachInCompositeRange(const uint64_t* lo_slots,
                               const uint64_t* hi_slots, F&& fn) const {
    if (kind_ == Kind::kKiss) {
      ForEachInRange(lo_slots[0], hi_slots[0], fn);
      return;
    }
    KeyBuf lo, hi;
    EncodeKey(lo_slots, &lo);
    EncodeKey(hi_slots, &hi);
    prefix_->ScanRange(lo.data(), hi.data(),
                       [&](const PrefixTree::ContentNode& c) {
                         prefix_->ValuesOf(&c)->ForEach(fn);
                       });
  }

  size_t num_key_columns() const { return key_cols_.size(); }

  template <typename F>
  void ForEachMatch(uint64_t key_slot, F&& fn) const {
    if (kind_ == Kind::kKiss) {
      KissTree::ValueRef vals;
      if (kiss_->Lookup(KissKeyOf(key_slot), &vals)) vals.ForEach(fn);
    } else {
      KeyBuf key;
      EncodeKey(&key_slot, &key);
      const ValueList* vals = prefix_->Lookup(key.data());
      if (vals != nullptr) vals->ForEach(fn);
    }
  }

  template <typename F>
  void ForEachInRange(uint64_t lo_slot, uint64_t hi_slot, F&& fn) const {
    if (kind_ == Kind::kKiss) {
      kiss_->ScanRange(KissKeyOf(lo_slot), KissKeyOf(hi_slot),
                       [&](uint32_t, const KissTree::ValueRef& vals) {
                         vals.ForEach(fn);
                       });
    } else {
      KeyBuf lo, hi;
      EncodeKey(&lo_slot, &lo);
      EncodeKey(&hi_slot, &hi);
      prefix_->ScanRange(lo.data(), hi.data(),
                         [&](const PrefixTree::ContentNode& c) {
                           prefix_->ValuesOf(&c)->ForEach(fn);
                         });
    }
  }

  template <typename F>
  void ForEachValue(F&& fn) const {
    if (kind_ == Kind::kKiss) {
      kiss_->ScanAll([&](uint32_t, const KissTree::ValueRef& vals) {
        vals.ForEach(fn);
      });
    } else {
      prefix_->ScanAll([&](const PrefixTree::ContentNode& c) {
        prefix_->ValuesOf(&c)->ForEach(fn);
      });
    }
  }

  // Maps an index value back to its record identifier. For secondary
  // (and all live) indexes the value *is* the rid.
  Rid RidOf(uint64_t value) const {
    return clustered() ? heap_[value * heap_width_] : value;
  }

 private:
  BaseIndex() = default;

  Status Init(const RowTable* table, const std::vector<Rid>* rids,
              std::vector<std::string> key_columns,
              std::vector<std::string> included_columns, Options options);

  Kind kind_ = Kind::kPrefix;
  const RowTable* table_ = nullptr;
  std::vector<std::string> key_names_;
  std::vector<size_t> key_cols_;
  std::vector<ValueType> key_types_;
  std::vector<std::string> included_names_;
  std::vector<size_t> included_cols_;
  std::unique_ptr<KissTree> kiss_;
  std::unique_ptr<PrefixTree> prefix_;
  // Partial records: heap_width_ slots per entry = [rid, included...].
  std::vector<uint64_t> heap_;
  size_t heap_width_ = 0;
  // Relaxed atomic: live indexes grow under the database write lock
  // while planners read the count for costing; an approximate value is
  // fine there, and scans never consult it.
  std::atomic<size_t> num_rows_{0};
  // Set for live indexes; scans filter values through RidVisibleAt.
  const MvccTable* mvcc_ = nullptr;
};

// A named collection of tables and base indexes — the "data pool" the QPPT
// execution plans of Fig. 5 start from. Versioned (MVCC) tables register
// alongside plain row tables; their live indexes feed committed writes to
// in-flight queries through the engine write path.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Status AddTable(std::unique_ptr<RowTable> table);
  Result<const RowTable*> table(const std::string& name) const;

  // Registers a versioned table. Its row storage also resolves through
  // table(name), so read-only plan construction works unchanged.
  Status AddVersionedTable(std::unique_ptr<MvccTable> table);
  Result<MvccTable*> versioned_table(const std::string& name);
  Result<const MvccTable*> versioned_table(const std::string& name) const;

  // Builds and registers an index named `index_name` over `table_name`.
  Status BuildIndex(const std::string& index_name,
                    const std::string& table_name,
                    std::vector<std::string> key_columns,
                    std::vector<std::string> included_columns = {},
                    BaseIndex::Options options = BaseIndex::Options{});

  // Builds and registers a *live* secondary index over a versioned
  // table; committed writes reach it via WriteSession. It resolves
  // through index(name) like any other base index.
  Status BuildLiveIndex(const std::string& index_name,
                        const std::string& table_name,
                        std::vector<std::string> key_columns,
                        BaseIndex::Options options = BaseIndex::Options{});

  Result<const BaseIndex*> index(const std::string& name) const;

  // Live indexes registered over `table_name` (empty vector if none).
  const std::vector<BaseIndex*>& live_indexes(
      const std::string& table_name) const;

  // Commit timestamps for all versioned tables come from this manager.
  TransactionManager& txn_manager() { return tm_; }
  const TransactionManager& txn_manager() const { return tm_; }

  // Coarse writer lock: every write transaction applies + commits under
  // this mutex (§7: no rebalancing means lock-free snapshot readers need
  // no finer-grained writer coordination).
  std::mutex& write_mutex() const { return write_mu_; }

  size_t MemoryUsage() const;
  std::vector<std::string> table_names() const;
  std::vector<std::string> versioned_table_names() const;
  std::vector<std::string> index_names() const;

 private:
  std::map<std::string, std::unique_ptr<RowTable>> tables_;
  std::map<std::string, std::unique_ptr<MvccTable>> versioned_;
  std::map<std::string, std::unique_ptr<BaseIndex>> indexes_;
  std::map<std::string, std::vector<BaseIndex*>> live_by_table_;
  TransactionManager tm_;
  mutable std::mutex write_mu_;
};

}  // namespace qppt

#endif  // QPPT_CORE_BASE_INDEX_H_
