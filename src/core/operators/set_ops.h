// Set operators (§4.1).
//
// Multi-predicate selections without a multidimensional base index run one
// selection per predicate, each producing an index keyed on the record
// identifier; intersections (AND) and distinct unions (OR) then combine
// those rid indexes, and the last set operator keys its output on whatever
// the next operator requests. Intersection uses the same synchronous index
// scan as the join operators.

#ifndef QPPT_CORE_OPERATORS_SET_OPS_H_
#define QPPT_CORE_OPERATORS_SET_OPS_H_

#include <string>
#include <vector>

#include "core/operators/common.h"
#include "core/plan.h"

namespace qppt {

struct SetOpSpec {
  SideRef left;
  std::vector<std::string> left_columns;
  SideRef right;
  std::vector<std::string> right_columns;
  OutputSpec output;
};

// Keys present in BOTH inputs; output tuples are the left columns followed
// by the right columns (one representative tuple per side per key).
class IntersectOp : public Operator {
 public:
  explicit IntersectOp(SetOpSpec spec) : spec_(std::move(spec)) {}
  std::string name() const override {
    return "intersect(" + spec_.left.name + " & " + spec_.right.name + ")";
  }
  Status Execute(ExecContext* ctx) override;

 private:
  SetOpSpec spec_;
};

// Keys present in EITHER input, deduplicated. Both column lists must
// assemble the same tuple layout (same arity and types).
class UnionDistinctOp : public Operator {
 public:
  explicit UnionDistinctOp(SetOpSpec spec) : spec_(std::move(spec)) {}
  std::string name() const override {
    return "union_distinct(" + spec_.left.name + " | " + spec_.right.name +
           ")";
  }
  Status Execute(ExecContext* ctx) override;

 private:
  SetOpSpec spec_;
};

}  // namespace qppt

#endif  // QPPT_CORE_OPERATORS_SET_OPS_H_
