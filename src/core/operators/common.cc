#include "core/operators/common.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace qppt {

Result<BoundSide> BoundSide::Bind(const ExecContext& ctx, const SideRef& ref,
                                  const std::vector<std::string>& columns) {
  BoundSide side;
  if (ref.kind == SideRef::Kind::kBaseIndex) {
    QPPT_ASSIGN_OR_RETURN(side.base_, ctx.db().index(ref.name));
    if (side.base_->mvcc() != nullptr) {
      side.mvcc_ = side.base_->mvcc();
      side.read_ts_ = ctx.read_ts();
    }
    const Schema& schema = side.base_->table().schema();
    for (const auto& col : columns) {
      QPPT_ASSIGN_OR_RETURN(auto acc, side.base_->BindColumn(col));
      side.base_accessors_.push_back(acc);
      if (col == "@rid") {
        side.defs_.push_back({"@rid", ValueType::kInt64, nullptr});
      } else {
        QPPT_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(col));
        side.defs_.push_back(schema.column(idx));
      }
    }
  } else {
    QPPT_ASSIGN_OR_RETURN(side.inter_, ctx.Get(ref.name));
    if (side.inter_->aggregated()) {
      return Status::InvalidArgument(
          "operator input '" + ref.name +
          "' is an aggregated table; joins expect plain indexed tables");
    }
    const Schema& schema = side.inter_->schema();
    for (const auto& col : columns) {
      QPPT_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(col));
      side.inter_positions_.push_back(idx);
      side.defs_.push_back(schema.column(idx));
    }
  }
  return side;
}

Result<std::vector<BoundResidual>> BindResiduals(
    const BaseIndex& index, const std::vector<Residual>& residuals) {
  std::vector<BoundResidual> bound;
  bound.reserve(residuals.size());
  for (const auto& r : residuals) {
    QPPT_ASSIGN_OR_RETURN(auto acc, index.BindColumn(r.column));
    bound.push_back({r, acc});
  }
  return bound;
}

Result<std::unique_ptr<IndexedTable>> MakeOutputTable(
    const OutputSpec& spec, const Schema& assembled,
    const IndexedTable::Options& options) {
  if (spec.agg.empty()) {
    return IndexedTable::Create(assembled, spec.key_columns, options);
  }
  std::vector<ColumnDef> key_defs;
  key_defs.reserve(spec.key_columns.size());
  for (const auto& name : spec.key_columns) {
    QPPT_ASSIGN_OR_RETURN(size_t idx, assembled.ColumnIndex(name));
    key_defs.push_back(assembled.column(idx));
  }
  return IndexedTable::CreateAggregated(std::move(key_defs), spec.agg,
                                        assembled, options);
}

Result<std::vector<BoundAssist>> BindAssists(
    const ExecContext& ctx, const std::vector<AssistSpec>& assists,
    std::vector<ColumnDef>* defs) {
  std::vector<BoundAssist> bound_assists;
  for (const auto& aspec : assists) {
    BoundAssist bound;
    QPPT_ASSIGN_OR_RETURN(
        bound.side, BoundSide::Bind(ctx, aspec.index, aspec.carry_columns));
    // The probe column must already be assembled when this assist runs.
    // alloc-exempt: O(columns) schema copy, once per assist bind.
    Schema so_far{std::vector<ColumnDef>(*defs)};
    QPPT_ASSIGN_OR_RETURN(bound.probe_pos,
                          so_far.ColumnIndex(aspec.probe_column));
    bound.carry_offset = defs->size();
    defs->insert(defs->end(), bound.side.column_defs().begin(),
                 bound.side.column_defs().end());
    bound_assists.push_back(std::move(bound));
  }
  return bound_assists;
}

CandidatePipeline::CandidatePipeline(std::vector<BoundAssist> assists,
                                     size_t row_width, IndexedTable* output,
                                     std::vector<size_t> key_positions,
                                     size_t buffer_rows)
    : assists_(std::move(assists)),
      width_(row_width),
      output_(output),
      key_positions_(std::move(key_positions)),
      key_slots_(key_positions_.size()),
      buffer_rows_(buffer_rows < 1 ? 1 : buffer_rows) {
  candidates_.reserve(buffer_rows_ * width_);
}

uint64_t* CandidatePipeline::AddRow() {
  size_t at = candidates_.size();
  candidates_.resize(at + width_, 0);
  return candidates_.data() + at;
}

void CandidatePipeline::Process() {
  if (candidates_.empty()) return;
  Timer phase;
  std::vector<uint64_t>* rows = &candidates_;
  for (auto& assist : assists_) {
    size_t n = rows->size() / width_;
    if (n == 0) break;
    next_stage_.clear();
    const KissTree* kiss = assist.side.kiss();
    auto expand = [&](const uint64_t* row, uint64_t assist_value) {
      if (!assist.side.Visible(assist_value)) return;
      size_t at = next_stage_.size();
      next_stage_.insert(next_stage_.end(), row, row + width_);
      assist.side.Fill(assist_value,
                       next_stage_.data() + at + assist.carry_offset);
    };
    if (kiss != nullptr && buffer_rows_ > 1) {
      // Batched probes with prefetch pipelining (the joinbuffer payoff).
      jobs_.clear();
      jobs_.resize(n);
      for (size_t i = 0; i < n; ++i) {
        jobs_[i].key = IndexedTable::KissKeyOf(
            (*rows)[i * width_ + assist.probe_pos]);
      }
      kiss->BatchLookup(jobs_);
      for (size_t i = 0; i < n; ++i) {
        if (!jobs_[i].found) continue;
        const uint64_t* row = rows->data() + i * width_;
        jobs_[i].values.ForEach(
            [&](uint64_t v) { expand(row, v); });
      }
    } else if (kiss != nullptr) {
      // Unbuffered point probes (joinbuffer size 1, the "none" setting).
      for (size_t i = 0; i < n; ++i) {
        const uint64_t* row = rows->data() + i * width_;
        KissTree::ValueRef values;
        if (!kiss->Lookup(IndexedTable::KissKeyOf(row[assist.probe_pos]),
                          &values)) {
          continue;
        }
        values.ForEach([&](uint64_t v) { expand(row, v); });
      }
    } else if (buffer_rows_ > 1) {
      // Prefix-tree assist, batched: the encoded probes walk the tree
      // level-synchronously with software prefetching (§2.3,
      // Algorithm 1), the same joinbuffer payoff the KISS probes get.
      const PrefixTree* prefix = assist.side.prefix();
      prefix_jobs_.clear();
      prefix_jobs_.resize(n);
      prefix_keys_.resize(n);
      for (size_t i = 0; i < n; ++i) {
        const uint64_t* row = rows->data() + i * width_;
        prefix_keys_[i].clear();
        prefix_keys_[i].AppendI64(Int64FromSlot(row[assist.probe_pos]));
        prefix_jobs_[i].key = prefix_keys_[i].data();
      }
      prefix->BatchLookup(prefix_jobs_);
      for (size_t i = 0; i < n; ++i) {
        if (prefix_jobs_[i].result == nullptr) continue;
        const uint64_t* row = rows->data() + i * width_;
        prefix->ValuesOf(prefix_jobs_[i].result)
            ->ForEach([&](uint64_t v) { expand(row, v); });
      }
    } else {
      // Prefix-tree assist: encoded single-attribute point probes.
      const PrefixTree* prefix = assist.side.prefix();
      KeyBuf key;
      for (size_t i = 0; i < n; ++i) {
        const uint64_t* row = rows->data() + i * width_;
        key.clear();
        key.AppendI64(Int64FromSlot(row[assist.probe_pos]));
        const ValueList* values = prefix->Lookup(key.data());
        if (values == nullptr) continue;
        values->ForEach([&](uint64_t v) { expand(row, v); });
      }
    }
    rows->swap(next_stage_);
  }
  materialize_ms_ += phase.ElapsedMs();

  phase.Restart();
  size_t n = rows->size() / width_;
  const bool aggregating = !key_positions_.empty();
  for (size_t i = 0; i < n; ++i) {
    const uint64_t* row = rows->data() + i * width_;
    if (aggregating) {
      for (size_t k = 0; k < key_positions_.size(); ++k) {
        key_slots_[k] = row[key_positions_[k]];
      }
      output_->InsertAggregated(key_slots_.data(), row);
    } else {
      output_->Insert(row);
    }
  }
  index_ms_ += phase.ElapsedMs();
  candidates_.clear();
}

void FillOutputStats(const IndexedTable& table, OperatorStats* stats) {
  stats->output_tuples = table.num_tuples();
  stats->output_keys = table.num_keys();
  stats->output_bytes = table.MemoryUsage();
  std::string desc =
      table.kind() == IndexedTable::Kind::kKiss ? "kiss(" : "prefix(";
  const Schema& schema = table.schema();
  const auto& key_positions = table.key_column_positions();
  for (size_t i = 0; i < key_positions.size(); ++i) {
    if (i > 0) desc += ",";
    desc += schema.column(key_positions[i]).name;
  }
  desc += table.aggregated() ? ") aggregated" : ")";
  stats->output_desc = desc;
}

}  // namespace qppt
