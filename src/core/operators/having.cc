#include "core/operators/having.h"

#include <cstdint>
#include <string>
#include <vector>

#include "util/cancel.h"

namespace qppt {

Status HavingOp::Execute(ExecContext* ctx) {
  OperatorStats stats;
  stats.name = name();
  Timer total;

  QPPT_ASSIGN_OR_RETURN(const IndexedTable* input,
                        ctx->Get(spec_.input_slot));
  if (!input->aggregated()) {
    return Status::InvalidArgument(
        "having expects an aggregated intermediate; use a selection for "
        "base data (they are physically the same operator)");
  }
  const Schema& schema = input->schema();

  // Bind residuals against the group-row layout. Double-typed aggregate
  // columns compare via their decoded value.
  struct Bound {
    size_t col;
    bool is_double;
    Residual residual;
  };
  std::vector<Bound> bound;
  for (const auto& r : spec_.residuals) {
    QPPT_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(r.column));
    bound.push_back(
        {idx, schema.column(idx).type == ValueType::kDouble, r});
  }

  // Output: a plain indexed table with the same schema, keyed on the
  // input's key columns (keeps the order-preserving property for the
  // client iteration).
  std::vector<std::string> key_names;
  for (size_t pos : input->key_column_positions()) {
    key_names.push_back(schema.column(pos).name);
  }
  QPPT_ASSIGN_OR_RETURN(auto output,
                        IndexedTable::Create(schema, key_names,
                                             ctx->knobs().table_options));

  stats.input_tuples = input->num_keys();
  // Serial group scan: poll the cancel token every kCancelStride groups
  // (the ticker throws CancelledException; Plan::Run converts it).
  CancelTicker cancel(ctx->cancel());
  input->ScanGroups([&](const uint64_t* row) {
    cancel.Tick();
    for (const auto& b : bound) {
      if (b.is_double) {
        // Compare in the double domain against the int64 literal.
        double v = DoubleFromSlot(row[b.col]);
        Residual as_int = b.residual;
        if (!as_int.Eval(static_cast<int64_t>(v))) return;
      } else if (!b.residual.Eval(Int64FromSlot(row[b.col]))) {
        return;
      }
    }
    output->Insert(row);
  });

  FillOutputStats(*output, &stats);
  stats.total_ms = total.ElapsedMs();
  QPPT_RETURN_NOT_OK(ctx->Put(spec_.output_slot, std::move(output)));
  ctx->stats()->operators.push_back(std::move(stats));
  return Status::OK();
}

}  // namespace qppt
