// Having operator (§4.1).
//
// "The logical selection and having operators are physically the same
// operator": both scan an index for qualifying tuples and emit a new
// indexed table. HavingOp is that operator applied to an *aggregated*
// intermediate (group rows with finalized aggregate values) instead of a
// base index — e.g. `having sum(revenue) > X` after a join-group.

#ifndef QPPT_CORE_OPERATORS_HAVING_H_
#define QPPT_CORE_OPERATORS_HAVING_H_

#include <string>
#include <vector>

#include "core/operators/common.h"
#include "core/plan.h"

namespace qppt {

struct HavingSpec {
  std::string input_slot;           // an aggregated intermediate
  std::vector<Residual> residuals;  // on the input's output columns
  std::string output_slot;
};

class HavingOp : public Operator {
 public:
  explicit HavingOp(HavingSpec spec) : spec_(std::move(spec)) {}

  std::string name() const override {
    return "having(" + spec_.input_slot + ")";
  }

  Status Execute(ExecContext* ctx) override;

 private:
  HavingSpec spec_;
};

}  // namespace qppt

#endif  // QPPT_CORE_OPERATORS_HAVING_H_
