// Multi-way/star join operator (§4.2, Figure 6).
//
// A composed (n-ary) join. The two *main* indexes — both keyed on the same
// join attribute — are joined with the synchronous index scan; for every
// key present in both, the cross product of the left and right tuple sets
// is formed (nested-loop over the duplicate lists). Each *assisting* index
// is then probed with a key extracted from the assembled tuple: a miss
// drops the combination, a hit extends it with the assist's carried
// columns (dimension semi-join / lookup). Probes are buffered and executed
// as §2.3 batch lookups (joinbuffer). Finally each surviving combination
// is inserted into the output index — aggregating on insert when the spec
// carries an AggSpec, which makes this the multi-way-select-join-group of
// the introduction.
//
// A traditional 2-way join is the degenerate case with no assists.

#ifndef QPPT_CORE_OPERATORS_STAR_JOIN_H_
#define QPPT_CORE_OPERATORS_STAR_JOIN_H_

#include <string>
#include <vector>

#include "core/operators/common.h"
#include "core/plan.h"

namespace qppt {

struct StarJoinSpec {
  SideRef left;                  // main index A
  std::vector<std::string> left_columns;
  SideRef right;                 // main index B (same key attribute)
  std::vector<std::string> right_columns;
  std::vector<AssistSpec> assists;
  OutputSpec output;
};

class StarJoinOp : public Operator {
 public:
  explicit StarJoinOp(StarJoinSpec spec) : spec_(std::move(spec)) {}

  std::string name() const override {
    return std::to_string(2 + spec_.assists.size()) + "-way-join(" +
           spec_.left.name + " x " + spec_.right.name + ")";
  }

  Status Execute(ExecContext* ctx) override;

 private:
  StarJoinSpec spec_;
};

}  // namespace qppt

#endif  // QPPT_CORE_OPERATORS_STAR_JOIN_H_
