// Select-join operator (§4.3) — Level-3 heterogeneous composition.
//
// When a selection would materialize a huge intermediate index, its
// output-indexing cost dominates the plan (Fig. 8: ~95% of Q1.1 without
// composition). The select-join skips that materialization: qualifying
// tuples stream directly into the join, which point-probes the other main
// index (buffered batch lookups — the synchronous index scan is not
// applicable because the selection output is never indexed on the join
// attribute). Assists and aggregation-on-insert compose as in the
// multi-way/star join, yielding the select-join-group of Fig. 1.

#ifndef QPPT_CORE_OPERATORS_SELECT_JOIN_H_
#define QPPT_CORE_OPERATORS_SELECT_JOIN_H_

#include <string>
#include <vector>

#include "core/operators/common.h"
#include "core/plan.h"

namespace qppt {

struct SelectJoinSpec {
  // Selection part (as in SelectionSpec).
  std::string input_index;
  KeyPredicate predicate;
  std::vector<Residual> residuals;
  std::vector<std::string> left_columns;  // carried from the selection side

  // Join part: probe `right` with the value of `probe_column`.
  std::string probe_column;  // must be one of left_columns
  SideRef right;
  std::vector<std::string> right_columns;
  std::vector<AssistSpec> assists;

  OutputSpec output;
};

class SelectJoinOp : public Operator {
 public:
  explicit SelectJoinOp(SelectJoinSpec spec) : spec_(std::move(spec)) {}

  std::string name() const override {
    return std::to_string(2 + spec_.assists.size()) + "-way-select-join(" +
           spec_.input_index + " x " + spec_.right.name + ")";
  }

  Status Execute(ExecContext* ctx) override;

 private:
  SelectJoinSpec spec_;
};

}  // namespace qppt

#endif  // QPPT_CORE_OPERATORS_SELECT_JOIN_H_
