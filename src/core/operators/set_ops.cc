#include "core/operators/set_ops.h"

#include <cstdint>
#include <vector>

#include "core/sync_scan.h"
#include "util/cancel.h"

namespace qppt {

Status IntersectOp::Execute(ExecContext* ctx) {
  OperatorStats stats;
  stats.name = name();
  Timer total;

  QPPT_ASSIGN_OR_RETURN(auto left,
                        BoundSide::Bind(*ctx, spec_.left, spec_.left_columns));
  QPPT_ASSIGN_OR_RETURN(
      auto right, BoundSide::Bind(*ctx, spec_.right, spec_.right_columns));

  // alloc-exempt: O(columns) schema copy, once per operator bind.
  std::vector<ColumnDef> defs = left.column_defs();
  defs.insert(defs.end(), right.column_defs().begin(),
              right.column_defs().end());
  Schema assembled(std::move(defs));
  QPPT_ASSIGN_OR_RETURN(
      auto output,
      MakeOutputTable(spec_.output, assembled, ctx->knobs().table_options));

  stats.input_tuples = left.num_input_tuples() + right.num_input_tuples();
  std::vector<uint64_t> row(assembled.num_columns());
  size_t left_width = left.num_columns();

  // Serial synchronous scan: poll the cancel token every kCancelStride
  // emitted tuples (the ticker throws CancelledException; Plan::Run
  // converts it).
  CancelTicker cancel(ctx->cancel());
  auto emit = [&](uint64_t lv, uint64_t rv) {
    cancel.Tick();
    left.Fill(lv, row.data());
    right.Fill(rv, row.data() + left_width);
    output->Insert(row.data());
  };

  // One representative tuple per key per side: set semantics, as in the
  // rid-intersection use case of §4.1.
  if (left.is_kiss() && right.is_kiss()) {
    SynchronousScan(*left.kiss(), *right.kiss(),
                    [&](uint32_t, const KissTree::ValueRef& lv,
                        const KissTree::ValueRef& rv) {
                      emit(lv.front(), rv.front());
                    });
  } else if (!left.is_kiss() && !right.is_kiss()) {
    SynchronousScan(*left.prefix(), *right.prefix(),
                    [&](const uint8_t*, const ValueList* lv,
                        const ValueList* rv) {
                      emit(lv->first(), rv->first());
                    });
  } else {
    return Status::InvalidArgument(
        "intersect inputs must use the same index family for the "
        "synchronous index scan");
  }

  FillOutputStats(*output, &stats);
  stats.total_ms = total.ElapsedMs();
  QPPT_RETURN_NOT_OK(ctx->Put(spec_.output.slot, std::move(output)));
  ctx->stats()->operators.push_back(std::move(stats));
  return Status::OK();
}

Status UnionDistinctOp::Execute(ExecContext* ctx) {
  OperatorStats stats;
  stats.name = name();
  Timer total;

  QPPT_ASSIGN_OR_RETURN(auto left,
                        BoundSide::Bind(*ctx, spec_.left, spec_.left_columns));
  QPPT_ASSIGN_OR_RETURN(
      auto right, BoundSide::Bind(*ctx, spec_.right, spec_.right_columns));
  if (left.num_columns() != right.num_columns()) {
    return Status::InvalidArgument(
        "union sides must assemble the same tuple layout");
  }

  Schema assembled{std::vector<ColumnDef>(left.column_defs())};
  QPPT_ASSIGN_OR_RETURN(
      auto output,
      MakeOutputTable(spec_.output, assembled, ctx->knobs().table_options));
  if (output->aggregated()) {
    return Status::InvalidArgument("union output cannot aggregate");
  }

  stats.input_tuples = left.num_input_tuples() + right.num_input_tuples();
  std::vector<uint64_t> row(assembled.num_columns());

  // Serial full scans of both sides: poll the cancel token every
  // kCancelStride emitted tuples.
  CancelTicker cancel(ctx->cancel());
  auto emit_side = [&](const BoundSide& side) {
    auto emit = [&](uint64_t v) {
      cancel.Tick();
      side.Fill(v, row.data());
      output->InsertIfAbsent(row.data());
    };
    if (side.is_kiss()) {
      side.kiss()->ScanAll(
          [&](uint32_t, const KissTree::ValueRef& vals) { emit(vals.front()); });
    } else {
      side.prefix()->ScanAll([&](const PrefixTree::ContentNode& c) {
        emit(side.prefix()->ValuesOf(&c)->first());
      });
    }
  };
  emit_side(left);
  emit_side(right);

  FillOutputStats(*output, &stats);
  stats.total_ms = total.ElapsedMs();
  QPPT_RETURN_NOT_OK(ctx->Put(spec_.output.slot, std::move(output)));
  ctx->stats()->operators.push_back(std::move(stats));
  return Status::OK();
}

}  // namespace qppt
