#include "core/operators/star_join.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/sync_scan.h"
#include "engine/parallel_ops.h"
#include "util/cancel.h"

namespace qppt {

namespace {

// Probe batch for the mixed kiss/prefix main pair: large enough to keep
// the §2.3 prefetch pipeline busy, small enough for stack staging.
constexpr size_t kMixedProbeBatch = 64;

}  // namespace

Status StarJoinOp::Execute(ExecContext* ctx) {
  OperatorStats stats;
  stats.name = name();
  Timer total;

  QPPT_ASSIGN_OR_RETURN(auto left,
                        BoundSide::Bind(*ctx, spec_.left, spec_.left_columns));
  QPPT_ASSIGN_OR_RETURN(
      auto right, BoundSide::Bind(*ctx, spec_.right, spec_.right_columns));

  // Assembled-tuple layout: left ++ right ++ assist carries.
  // alloc-exempt: O(columns) schema copy, once per operator bind.
  std::vector<ColumnDef> defs = left.column_defs();
  defs.insert(defs.end(), right.column_defs().begin(),
              right.column_defs().end());
  QPPT_ASSIGN_OR_RETURN(auto assists,
                        BindAssists(*ctx, spec_.assists, &defs));
  Schema assembled(std::move(defs));
  const size_t width = assembled.num_columns();
  const size_t left_width = left.num_columns();

  QPPT_ASSIGN_OR_RETURN(
      auto output,
      MakeOutputTable(spec_.output, assembled, ctx->knobs().table_options));

  std::vector<size_t> key_positions;
  if (!spec_.output.agg.empty()) {
    for (const auto& k : spec_.output.key_columns) {
      QPPT_ASSIGN_OR_RETURN(size_t idx, assembled.ColumnIndex(k));
      key_positions.push_back(idx);
    }
  }

  stats.input_tuples = left.num_input_tuples() + right.num_input_tuples();

  // Serial scans poll the cancel token every kCancelStride emitted
  // pairs, mirroring the selection/select-join loops: the ticker throws
  // CancelledException and Plan::Run converts it back to a Status. The
  // parallel branches poll per morsel inside the drivers instead (the
  // ticker is not thread-safe), so only run_serial arms the pointer.
  CancelTicker serial_cancel(ctx->cancel());
  CancelTicker* serial_ticker = nullptr;

  // Cross-product emission shared by all scan branches (nested-loop over
  // the duplicate lists of one matched key, §4.2).
  auto emit_pair = [&](CandidatePipeline* pipeline, uint64_t l, uint64_t r) {
    if (serial_ticker != nullptr) serial_ticker->Tick();
    // MVCC snapshot filter: no-op branches for non-versioned sides.
    if (!left.Visible(l) || !right.Visible(r)) return;
    uint64_t* row = pipeline->AddRow();
    left.Fill(l, row);
    right.Fill(r, row + left_width);
    pipeline->MaybeProcess();
  };

  engine::WorkerPool* pool = ctx->worker_pool();
  // Adaptive split feedback is keyed per operator site (the planner
  // stage label), so interleaved queries tune independently. The label
  // and tuner handle must outlive the driver calls below.
  const std::string site_label = display_name();
  std::shared_ptr<engine::MorselTuner> tuner =
      pool != nullptr ? pool->TunerFor(site_label) : nullptr;
  engine::MorselSite site{pool, tuner.get(), ctx->trace(), site_label};
  // Forking pays off when the side driving the scan is big enough; the
  // mixed branch overrides this with the KISS (scanned) side's size.
  auto worth_forking = [&](uint64_t scanned_tuples) {
    return pool != nullptr && ctx->knobs().threads > 1 &&
           scanned_tuples >= engine::kMinParallelInputTuples;
  };
  const bool parallel = worth_forking(left.num_input_tuples());

  // Shared driver of every parallel branch: per-worker pipelines feeding
  // per-worker partial outputs, one morsel batch (`scan` returns the
  // morsel count), then the key-range-partitioned merge — whose wall
  // time is reported separately so the merge bottleneck stays visible.
  auto run_parallel = [&](auto&& scan) {
    size_t workers = pool->num_workers();
    engine::PartialOutputs partials(*output, workers);
    std::vector<std::unique_ptr<CandidatePipeline>> pipelines;
    pipelines.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      pipelines.push_back(std::make_unique<CandidatePipeline>(
          assists, width, partials.worker(w), key_positions,
          ctx->knobs().join_buffer_size));
    }
    stats.morsels = scan(pipelines);
    // Per-phase times overlap across workers; report the slowest worker
    // (the critical path), which stays comparable to total_ms.
    for (size_t w = 0; w < workers; ++w) {
      pipelines[w]->Finish();
      stats.materialize_ms =
          std::max(stats.materialize_ms, pipelines[w]->materialize_ms());
      stats.index_ms = std::max(stats.index_ms, pipelines[w]->index_ms());
    }
    Timer merge;
    stats.merge_morsels = partials.MergeInto(site, output.get());
    stats.merge_ms = merge.ElapsedMs();
  };

  auto run_serial = [&](auto&& scan) {
    serial_ticker = &serial_cancel;
    CandidatePipeline pipeline(assists, width, output.get(), key_positions,
                               ctx->knobs().join_buffer_size);
    scan(&pipeline);
    pipeline.Finish();
    stats.materialize_ms = pipeline.materialize_ms();
    stats.index_ms = pipeline.index_ms();
  };

  if (!left.is_kiss() && !right.is_kiss()) {
    // Prefix-tree mains: structural synchronous scan. The parallel path
    // splits the trees at their branching level into disjoint subtree
    // pair morsels (§7: deterministic key positions, no rebalancing).
    const PrefixTree& lp = *left.prefix();
    const PrefixTree& rp = *right.prefix();
    auto emit_lists = [&](CandidatePipeline* pipeline, const ValueList* lv,
                          const ValueList* rv) {
      lv->ForEach([&](uint64_t l) {
        rv->ForEach([&](uint64_t r) { emit_pair(pipeline, l, r); });
      });
    };
    if (parallel) {
      run_parallel([&](auto& pipelines) {
        return engine::RunPrefixPairMorsels(
            site, lp, rp,
            [&](size_t w, const PairScanLevel& level, size_t begin,
                size_t end) {
              CandidatePipeline* pipeline = pipelines[w].get();
              SynchronousScanPairSlots(
                  lp, rp, level, begin, end,
                  [&](const uint8_t*, const ValueList* lv,
                      const ValueList* rv) {
                    emit_lists(pipeline, lv, rv);
                  });
            });
      });
    } else {
      run_serial([&](CandidatePipeline* pipeline) {
        SynchronousScan(lp, rp,
                        [&](const uint8_t*, const ValueList* lv,
                            const ValueList* rv) {
                          emit_lists(pipeline, lv, rv);
                        });
      });
    }
  } else if (left.is_kiss() && right.is_kiss()) {
    // The synchronous index scan over the two main indexes (Fig. 6): only
    // buckets used by both sides are descended into; each shared key
    // yields the cross product of the two duplicate lists (§4.2).
    const KissTree& lk = *left.kiss();
    const KissTree& rk = *right.kiss();
    if (parallel) {
      // Probe side parallelism: disjoint key-range morsels over the
      // shared span, per-worker pipelines and partial outputs, one merge
      // at the end.
      uint32_t lo = std::max(lk.min_key(), rk.min_key());
      uint32_t hi = std::min(lk.max_key(), rk.max_key());
      run_parallel([&](auto& pipelines) {
        return engine::RunKissRangeMorsels(
            site, lk, lo, hi, [&](size_t w, uint32_t mlo, uint32_t mhi) {
              CandidatePipeline* pipeline = pipelines[w].get();
              SynchronousScanRange(
                  lk, rk, mlo, mhi,
                  [&](uint32_t, const KissTree::ValueRef& lv,
                      const KissTree::ValueRef& rv) {
                    lv.ForEach([&](uint64_t l) {
                      rv.ForEach(
                          [&](uint64_t r) { emit_pair(pipeline, l, r); });
                    });
                  });
            });
      });
    } else {
      run_serial([&](CandidatePipeline* pipeline) {
        SynchronousScan(lk, rk,
                        [&](uint32_t, const KissTree::ValueRef& lv,
                            const KissTree::ValueRef& rv) {
                          lv.ForEach([&](uint64_t l) {
                            rv.ForEach([&](uint64_t r) {
                              emit_pair(pipeline, l, r);
                            });
                          });
                        });
      });
    }
  } else {
    // Mixed main families (one KISS, one prefix — e.g. a KISS-indexed
    // base main joined with a prefix-tree intermediate when prefer_kiss
    // is off): scan the prefix side's keys in order and probe the KISS
    // side with §2.3 batched, software-prefetched lookups
    // (KissTree::BatchLookup). Probing with KissKeyOf's 32-bit
    // truncation reproduces exactly the conflation a KISS x KISS scan
    // applies to every attribute value — no reconstruction heuristics.
    // The parallel path splits the prefix side at its branching level
    // (self-pairing reuses the pair-scan partitioner).
    const bool left_is_kiss = left.is_kiss();
    const KissTree& ktree = left_is_kiss ? *left.kiss() : *right.kiss();
    const PrefixTree& ptree =
        left_is_kiss ? *right.prefix() : *left.prefix();
    if (ptree.key_len() != 8) {
      return Status::InvalidArgument(
          "star join with mixed KISS/prefix mains requires the prefix main "
          "to be keyed on the single shared integer join attribute");
    }
    // Drives one scan of (part of) the prefix side: `enumerate(sink)`
    // calls sink(key, values) per content node; probes are staged and
    // flushed through BatchLookup in kMixedProbeBatch groups.
    auto scan_mixed = [&](CandidatePipeline* pipeline, auto&& enumerate) {
      KissTree::LookupJob jobs[kMixedProbeBatch];
      const ValueList* prefix_vals[kMixedProbeBatch];
      size_t n = 0;
      auto flush = [&] {
        if (n == 0) return;
        ktree.BatchLookup(std::span<KissTree::LookupJob>(jobs, n));
        for (size_t i = 0; i < n; ++i) {
          if (!jobs[i].found) continue;
          const ValueList* pv = prefix_vals[i];
          const KissTree::ValueRef& kv = jobs[i].values;
          if (left_is_kiss) {
            kv.ForEach([&](uint64_t l) {
              pv->ForEach([&](uint64_t r) { emit_pair(pipeline, l, r); });
            });
          } else {
            pv->ForEach([&](uint64_t l) {
              kv.ForEach([&](uint64_t r) { emit_pair(pipeline, l, r); });
            });
          }
        }
        n = 0;
      };
      enumerate([&](const uint8_t* key, const ValueList* vals) {
        jobs[n].key = static_cast<uint32_t>(DecodeI64(key));  // KissKeyOf
        prefix_vals[n] = vals;
        if (++n == kMixedProbeBatch) flush();
      });
      flush();
    };
    // Fork on EITHER side being big: the scan runs over the prefix
    // side's keys, but the bulk of the work is emitting the KISS side's
    // duplicate lists — a huge fact main joined through a tiny dimension
    // intermediate still parallelizes by splitting the dimension's keys
    // (and their emit work) across morsels.
    if (worth_forking(std::max(left.num_input_tuples(),
                               right.num_input_tuples()))) {
      run_parallel([&](auto& pipelines) {
        return engine::RunPrefixPairMorsels(
            site, ptree, ptree,  // self-pair: every populated subtree
            [&](size_t w, const PairScanLevel& level, size_t begin,
                size_t end) {
              scan_mixed(pipelines[w].get(), [&](auto&& sink) {
                SynchronousScanPairSlots(
                    ptree, ptree, level, begin, end,
                    [&](const uint8_t* key, const ValueList* vals,
                        const ValueList*) { sink(key, vals); });
              });
            });
      });
    } else {
      run_serial([&](CandidatePipeline* pipeline) {
        scan_mixed(pipeline, [&](auto&& sink) {
          ptree.ScanAll([&](const PrefixTree::ContentNode& c) {
            sink(c.key(), ptree.ValuesOf(&c));
          });
        });
      });
    }
  }

  FillOutputStats(*output, &stats);
  stats.total_ms = total.ElapsedMs();
  QPPT_RETURN_NOT_OK(ctx->Put(spec_.output.slot, std::move(output)));
  ctx->stats()->operators.push_back(std::move(stats));
  return Status::OK();
}

}  // namespace qppt
