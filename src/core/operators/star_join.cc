#include "core/operators/star_join.h"

#include <cstdint>
#include <vector>

#include "core/sync_scan.h"

namespace qppt {

Status StarJoinOp::Execute(ExecContext* ctx) {
  OperatorStats stats;
  stats.name = name();
  Timer total;

  QPPT_ASSIGN_OR_RETURN(auto left,
                        BoundSide::Bind(*ctx, spec_.left, spec_.left_columns));
  QPPT_ASSIGN_OR_RETURN(
      auto right, BoundSide::Bind(*ctx, spec_.right, spec_.right_columns));

  // Assembled-tuple layout: left ++ right ++ assist carries.
  std::vector<ColumnDef> defs = left.column_defs();
  defs.insert(defs.end(), right.column_defs().begin(),
              right.column_defs().end());
  QPPT_ASSIGN_OR_RETURN(auto assists,
                        BindAssists(*ctx, spec_.assists, &defs));
  Schema assembled(std::move(defs));
  const size_t width = assembled.num_columns();
  const size_t left_width = left.num_columns();

  QPPT_ASSIGN_OR_RETURN(
      auto output,
      MakeOutputTable(spec_.output, assembled, ctx->knobs().table_options));

  std::vector<size_t> key_positions;
  if (!spec_.output.agg.empty()) {
    for (const auto& k : spec_.output.key_columns) {
      QPPT_ASSIGN_OR_RETURN(size_t idx, assembled.ColumnIndex(k));
      key_positions.push_back(idx);
    }
  }

  stats.input_tuples = left.num_input_tuples() + right.num_input_tuples();

  CandidatePipeline pipeline(std::move(assists), width, output.get(),
                             std::move(key_positions),
                             ctx->knobs().join_buffer_size);

  auto emit_pair = [&](uint64_t left_value, uint64_t right_value) {
    uint64_t* row = pipeline.AddRow();
    left.Fill(left_value, row);
    right.Fill(right_value, row + left_width);
    pipeline.MaybeProcess();
  };

  // The synchronous index scan over the two main indexes (Fig. 6): only
  // buckets used by both sides are descended into; each shared key yields
  // the cross product of the two duplicate lists (nested-loop, §4.2).
  if (left.is_kiss() && right.is_kiss()) {
    SynchronousScan(*left.kiss(), *right.kiss(),
                    [&](uint32_t, const KissTree::ValueRef& lv,
                        const KissTree::ValueRef& rv) {
                      lv.ForEach([&](uint64_t l) {
                        rv.ForEach([&](uint64_t r) { emit_pair(l, r); });
                      });
                    });
  } else if (!left.is_kiss() && !right.is_kiss()) {
    SynchronousScan(*left.prefix(), *right.prefix(),
                    [&](const uint8_t*, const ValueList* lv,
                        const ValueList* rv) {
                      lv->ForEach([&](uint64_t l) {
                        rv->ForEach([&](uint64_t r) { emit_pair(l, r); });
                      });
                    });
  } else {
    return Status::InvalidArgument(
        "star join mains must use the same index family (both KISS or both "
        "prefix trees) for the synchronous index scan");
  }
  pipeline.Finish();

  FillOutputStats(*output, &stats);
  stats.materialize_ms = pipeline.materialize_ms();
  stats.index_ms = pipeline.index_ms();
  stats.total_ms = total.ElapsedMs();
  QPPT_RETURN_NOT_OK(ctx->Put(spec_.output.slot, std::move(output)));
  ctx->stats()->operators.push_back(std::move(stats));
  return Status::OK();
}

}  // namespace qppt
