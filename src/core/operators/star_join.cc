#include "core/operators/star_join.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/sync_scan.h"
#include "engine/parallel_ops.h"

namespace qppt {

Status StarJoinOp::Execute(ExecContext* ctx) {
  OperatorStats stats;
  stats.name = name();
  Timer total;

  QPPT_ASSIGN_OR_RETURN(auto left,
                        BoundSide::Bind(*ctx, spec_.left, spec_.left_columns));
  QPPT_ASSIGN_OR_RETURN(
      auto right, BoundSide::Bind(*ctx, spec_.right, spec_.right_columns));

  // Assembled-tuple layout: left ++ right ++ assist carries.
  std::vector<ColumnDef> defs = left.column_defs();
  defs.insert(defs.end(), right.column_defs().begin(),
              right.column_defs().end());
  QPPT_ASSIGN_OR_RETURN(auto assists,
                        BindAssists(*ctx, spec_.assists, &defs));
  Schema assembled(std::move(defs));
  const size_t width = assembled.num_columns();
  const size_t left_width = left.num_columns();

  QPPT_ASSIGN_OR_RETURN(
      auto output,
      MakeOutputTable(spec_.output, assembled, ctx->knobs().table_options));

  std::vector<size_t> key_positions;
  if (!spec_.output.agg.empty()) {
    for (const auto& k : spec_.output.key_columns) {
      QPPT_ASSIGN_OR_RETURN(size_t idx, assembled.ColumnIndex(k));
      key_positions.push_back(idx);
    }
  }

  stats.input_tuples = left.num_input_tuples() + right.num_input_tuples();

  // Cross-product emission shared by all scan branches (nested-loop over
  // the duplicate lists of one matched key, §4.2).
  auto emit_pair = [&](CandidatePipeline* pipeline, uint64_t l, uint64_t r) {
    uint64_t* row = pipeline->AddRow();
    left.Fill(l, row);
    right.Fill(r, row + left_width);
    pipeline->MaybeProcess();
  };

  if (!left.is_kiss() && !right.is_kiss()) {
    // Prefix-tree mains: serial structural synchronous scan.
    CandidatePipeline pipeline(std::move(assists), width, output.get(),
                               std::move(key_positions),
                               ctx->knobs().join_buffer_size);
    SynchronousScan(*left.prefix(), *right.prefix(),
                    [&](const uint8_t*, const ValueList* lv,
                        const ValueList* rv) {
                      lv->ForEach([&](uint64_t l) {
                        rv->ForEach(
                            [&](uint64_t r) { emit_pair(&pipeline, l, r); });
                      });
                    });
    pipeline.Finish();
    stats.materialize_ms = pipeline.materialize_ms();
    stats.index_ms = pipeline.index_ms();
  } else if (left.is_kiss() && right.is_kiss()) {
    // The synchronous index scan over the two main indexes (Fig. 6): only
    // buckets used by both sides are descended into; each shared key
    // yields the cross product of the two duplicate lists (§4.2).
    const KissTree& lk = *left.kiss();
    const KissTree& rk = *right.kiss();
    engine::WorkerPool* pool = ctx->worker_pool();
    const bool parallel = pool != nullptr && ctx->knobs().threads > 1 &&
                          left.num_input_tuples() >=
                              engine::kMinParallelInputTuples;
    if (parallel) {
      // Probe side parallelism: disjoint key-range morsels over the
      // shared span, per-worker pipelines and partial outputs, one merge
      // at the end.
      size_t workers = pool->num_workers();
      engine::PartialOutputs partials(*output, workers);
      std::vector<std::unique_ptr<CandidatePipeline>> pipelines;
      pipelines.reserve(workers);
      for (size_t w = 0; w < workers; ++w) {
        pipelines.push_back(std::make_unique<CandidatePipeline>(
            assists, width, partials.worker(w), key_positions,
            ctx->knobs().join_buffer_size));
      }
      uint32_t lo = std::max(lk.min_key(), rk.min_key());
      uint32_t hi = std::min(lk.max_key(), rk.max_key());
      stats.morsels = engine::RunKissRangeMorsels(
          pool, lk, lo, hi, [&](size_t w, uint32_t mlo, uint32_t mhi) {
            CandidatePipeline* pipeline = pipelines[w].get();
            SynchronousScanRange(
                lk, rk, mlo, mhi,
                [&](uint32_t, const KissTree::ValueRef& lv,
                    const KissTree::ValueRef& rv) {
                  lv.ForEach([&](uint64_t l) {
                    rv.ForEach(
                        [&](uint64_t r) { emit_pair(pipeline, l, r); });
                  });
                });
          });
      // Per-phase times overlap across workers; report the slowest worker
      // (the critical path), which stays comparable to total_ms.
      for (size_t w = 0; w < workers; ++w) {
        pipelines[w]->Finish();
        stats.materialize_ms =
            std::max(stats.materialize_ms, pipelines[w]->materialize_ms());
        stats.index_ms = std::max(stats.index_ms, pipelines[w]->index_ms());
      }
      partials.MergeInto(output.get());
    } else {
      CandidatePipeline pipeline(std::move(assists), width, output.get(),
                                 std::move(key_positions),
                                 ctx->knobs().join_buffer_size);
      SynchronousScan(lk, rk,
                      [&](uint32_t, const KissTree::ValueRef& lv,
                          const KissTree::ValueRef& rv) {
                        lv.ForEach([&](uint64_t l) {
                          rv.ForEach([&](uint64_t r) {
                            emit_pair(&pipeline, l, r);
                          });
                        });
                      });
      pipeline.Finish();
      stats.materialize_ms = pipeline.materialize_ms();
      stats.index_ms = pipeline.index_ms();
    }
  } else {
    return Status::InvalidArgument(
        "star join mains must use the same index family (both KISS or both "
        "prefix trees) for the synchronous index scan");
  }

  FillOutputStats(*output, &stats);
  stats.total_ms = total.ElapsedMs();
  QPPT_RETURN_NOT_OK(ctx->Put(spec_.output.slot, std::move(output)));
  ctx->stats()->operators.push_back(std::move(stats));
  return Status::OK();
}

}  // namespace qppt
