// Selection / having operator (§4.1).
//
// Takes a base index on the selection attribute, scans it for qualifying
// tuples (point or range on the index key, conjunctive residuals on other
// attributes), and inserts the qualifiers into a new intermediate index
// keyed on the attribute(s) the *successive* operator requests — the
// cooperative-operators contract. With an AggSpec in the output the
// operator also folds aggregates on insert (Level-1 composition).

#ifndef QPPT_CORE_OPERATORS_SELECTION_H_
#define QPPT_CORE_OPERATORS_SELECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/operators/common.h"
#include "core/plan.h"

namespace qppt {

struct SelectionSpec {
  std::string input_index;          // base index on the selection attribute
  KeyPredicate predicate;           // on the (single-column) index key
  // Conjunctive predicates over a *multidimensional* base index (§4.1):
  // one (lo, hi) pair per key column, lexicographic range on the
  // composite encoding. Overrides `predicate` when non-empty; size must
  // equal the index's key-column count. A point match is lo == hi.
  std::vector<std::pair<int64_t, int64_t>> composite_range;
  std::vector<Residual> residuals;  // conjunctive, on any table column
  // Columns the output tuples carry (must include the output keys;
  // resolution prefers the index's included payload over the base table).
  std::vector<std::string> carry_columns;
  OutputSpec output;
};

class SelectionOp : public Operator {
 public:
  explicit SelectionOp(SelectionSpec spec) : spec_(std::move(spec)) {}

  std::string name() const override {
    return "selection(" + spec_.input_index + ")";
  }

  Status Execute(ExecContext* ctx) override;

 private:
  SelectionSpec spec_;
};

}  // namespace qppt

#endif  // QPPT_CORE_OPERATORS_SELECTION_H_
