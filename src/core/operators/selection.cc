#include "core/operators/selection.h"

#include <cstdint>
#include <limits>
#include <vector>

#include "engine/parallel_ops.h"
#include "util/cancel.h"

namespace qppt {

Status SelectionOp::Execute(ExecContext* ctx) {
  OperatorStats stats;
  stats.name = name();
  Timer total;

  QPPT_ASSIGN_OR_RETURN(const BaseIndex* index,
                        ctx->db().index(spec_.input_index));
  QPPT_ASSIGN_OR_RETURN(auto side, BoundSide::Bind(*ctx, SideRef::Base(spec_.input_index),
                                                   spec_.carry_columns));
  QPPT_ASSIGN_OR_RETURN(auto residuals,
                        BindResiduals(*index, spec_.residuals));

  Schema assembled(side.column_defs());
  QPPT_ASSIGN_OR_RETURN(
      auto output,
      MakeOutputTable(spec_.output, assembled, ctx->knobs().table_options));

  stats.input_tuples = index->num_rows();
  size_t width = side.num_columns();
  const bool aggregating = !spec_.output.agg.empty();
  std::vector<size_t> key_positions;
  if (aggregating) {
    for (const auto& k : spec_.output.key_columns) {
      QPPT_ASSIGN_OR_RETURN(size_t idx, assembled.ColumnIndex(k));
      key_positions.push_back(idx);
    }
  }

  // Evaluates residuals for one qualifying index value and inserts the
  // assembled tuple into `out`. `row` / `key_slots` are caller-owned
  // scratch (per-worker in the parallel path).
  auto process = [&](uint64_t value, uint64_t* row, uint64_t* key_slots,
                     IndexedTable* out) {
    if (!side.Visible(value)) return;  // MVCC snapshot filter (live index)
    for (const auto& r : residuals) {
      if (!r.Eval(value)) return;
    }
    side.Fill(value, row);
    if (!aggregating) {
      out->Insert(row);
    } else {
      for (size_t i = 0; i < key_positions.size(); ++i) {
        key_slots[i] = row[key_positions[i]];
      }
      out->InsertAggregated(key_slots, row);
    }
  };

  // Parallel path: a KISS-indexed range/all selection large enough to
  // amortize the fork-join. Each worker scans disjoint morsel key ranges
  // into a private partial output; partials merge at the end.
  engine::WorkerPool* pool = ctx->worker_pool();
  const KissTree* kiss = index->kiss();
  const bool parallel =
      pool != nullptr && ctx->knobs().threads > 1 && kiss != nullptr &&
      spec_.composite_range.empty() &&
      (spec_.predicate.kind == KeyPredicate::Kind::kRange ||
       spec_.predicate.kind == KeyPredicate::Kind::kAll) &&
      index->num_rows() >= engine::kMinParallelInputTuples;

  Timer phase;
  if (parallel) {
    uint32_t lo = 0;
    uint32_t hi = std::numeric_limits<uint32_t>::max();
    if (spec_.predicate.kind == KeyPredicate::Kind::kRange) {
      lo = BaseIndex::KissKeyOf(SlotFromInt64(spec_.predicate.lo));
      hi = BaseIndex::KissKeyOf(SlotFromInt64(spec_.predicate.hi));
    }
    size_t workers = pool->num_workers();
    engine::PartialOutputs partials(*output, workers);
    std::vector<std::vector<uint64_t>> rows(workers,
                                            std::vector<uint64_t>(width));
    std::vector<std::vector<uint64_t>> keys(
        workers, std::vector<uint64_t>(key_positions.size() + 1));
    // Adaptive split feedback is keyed per operator site (the planner
    // stage label), so interleaved queries tune independently. The label
    // and tuner handle must outlive the driver calls.
    const std::string label = display_name();
    auto tuner = pool->TunerFor(label);
    engine::MorselSite site{pool, tuner.get(), ctx->trace(), label};
    stats.morsels = engine::RunKissValueMorsels(
        site, *kiss, lo, hi, [&](size_t w, uint64_t value) {
          process(value, rows[w].data(), keys[w].data(),
                  partials.worker(w));
        });
    Timer merge;
    stats.merge_morsels = partials.MergeInto(site, output.get());
    stats.merge_ms = merge.ElapsedMs();
  } else {
    std::vector<uint64_t> row(width);
    std::vector<uint64_t> key_slots(key_positions.size() + 1);
    // Serial scans poll the cancel token every kCancelStride tuples;
    // the ticker throws CancelledException and Plan::Run converts it.
    CancelTicker cancel(ctx->cancel());
    auto emit = [&](uint64_t value) {
      cancel.Tick();
      process(value, row.data(), key_slots.data(), output.get());
    };
    if (!spec_.composite_range.empty()) {
      // Conjunctive predicate over a multidimensional index (§4.1). The
      // composite encoding is scanned over the lexicographic range; the
      // per-component box bounds are verified on each hit (a lexicographic
      // range is a superset of the box for the middle leading-component
      // values).
      size_t dims = spec_.composite_range.size();
      if (dims != index->num_key_columns()) {
        return Status::InvalidArgument(
            "composite_range must give one (lo, hi) pair per index key "
            "column");
      }
      std::vector<BaseIndex::Accessor> key_accessors;
      for (const auto& name : index->key_column_names()) {
        QPPT_ASSIGN_OR_RETURN(auto acc, index->BindColumn(name));
        key_accessors.push_back(acc);
      }
      std::vector<uint64_t> lo(dims), hi(dims);
      for (size_t i = 0; i < dims; ++i) {
        lo[i] = SlotFromInt64(spec_.composite_range[i].first);
        hi[i] = SlotFromInt64(spec_.composite_range[i].second);
      }
      auto emit_boxed = [&](uint64_t value) {
        for (size_t i = 0; i < dims; ++i) {
          int64_t v = Int64FromSlot(key_accessors[i].Get(value));
          if (v < spec_.composite_range[i].first ||
              v > spec_.composite_range[i].second) {
            return;
          }
        }
        emit(value);
      };
      index->ForEachInCompositeRange(lo.data(), hi.data(), emit_boxed);
    } else {
      switch (spec_.predicate.kind) {
        case KeyPredicate::Kind::kPoint:
          index->ForEachMatch(SlotFromInt64(spec_.predicate.point), emit);
          break;
        case KeyPredicate::Kind::kRange:
          index->ForEachInRange(SlotFromInt64(spec_.predicate.lo),
                                SlotFromInt64(spec_.predicate.hi), emit);
          break;
        case KeyPredicate::Kind::kIn:
          for (int64_t point : spec_.predicate.in_points) {
            index->ForEachMatch(SlotFromInt64(point), emit);
          }
          break;
        case KeyPredicate::Kind::kAll:
          index->ForEachValue(emit);
          break;
      }
    }
  }
  double materialize_ms = phase.ElapsedMs();

  FillOutputStats(*output, &stats);
  // The scan interleaves materialization and indexing; attribute the
  // whole phase to materialization and report indexing as the remainder
  // estimated from the output index bytes per tuple (coarse, like the
  // demonstrator's internal statistics).
  stats.materialize_ms = materialize_ms;
  stats.total_ms = total.ElapsedMs();
  stats.index_ms = 0;
  QPPT_RETURN_NOT_OK(ctx->Put(spec_.output.slot, std::move(output)));
  ctx->stats()->operators.push_back(std::move(stats));
  return Status::OK();
}

}  // namespace qppt
