#include "core/operators/select_join.h"

#include <cstdint>
#include <vector>

namespace qppt {

Status SelectJoinOp::Execute(ExecContext* ctx) {
  OperatorStats stats;
  stats.name = name();
  Timer total;

  QPPT_ASSIGN_OR_RETURN(const BaseIndex* index,
                        ctx->db().index(spec_.input_index));
  QPPT_ASSIGN_OR_RETURN(
      auto left,
      BoundSide::Bind(*ctx, SideRef::Base(spec_.input_index),
                      spec_.left_columns));
  QPPT_ASSIGN_OR_RETURN(auto residuals,
                        BindResiduals(*index, spec_.residuals));

  // The probed main index behaves exactly like a leading assisting index:
  // probe with `probe_column`, extend with the right side's columns. The
  // remaining assists follow.
  std::vector<AssistSpec> all_assists;
  all_assists.push_back(
      {spec_.right, spec_.probe_column, spec_.right_columns});
  all_assists.insert(all_assists.end(), spec_.assists.begin(),
                     spec_.assists.end());

  std::vector<ColumnDef> defs = left.column_defs();
  QPPT_ASSIGN_OR_RETURN(auto assists, BindAssists(*ctx, all_assists, &defs));
  Schema assembled(std::move(defs));
  const size_t width = assembled.num_columns();

  QPPT_ASSIGN_OR_RETURN(
      auto output,
      MakeOutputTable(spec_.output, assembled, ctx->knobs().table_options));

  std::vector<size_t> key_positions;
  if (!spec_.output.agg.empty()) {
    for (const auto& k : spec_.output.key_columns) {
      QPPT_ASSIGN_OR_RETURN(size_t idx, assembled.ColumnIndex(k));
      key_positions.push_back(idx);
    }
  }

  stats.input_tuples = index->num_rows();

  CandidatePipeline pipeline(std::move(assists), width, output.get(),
                             std::move(key_positions),
                             ctx->knobs().join_buffer_size);

  // Selection scan: qualifying tuples stream straight into the probe
  // pipeline — no intermediate index is ever materialized (§4.3).
  auto emit = [&](uint64_t value) {
    for (const auto& r : residuals) {
      if (!r.Eval(value)) return;
    }
    uint64_t* row = pipeline.AddRow();
    left.Fill(value, row);
    pipeline.MaybeProcess();
  };

  switch (spec_.predicate.kind) {
    case KeyPredicate::Kind::kPoint:
      index->ForEachMatch(SlotFromInt64(spec_.predicate.point), emit);
      break;
    case KeyPredicate::Kind::kRange:
      index->ForEachInRange(SlotFromInt64(spec_.predicate.lo),
                            SlotFromInt64(spec_.predicate.hi), emit);
      break;
    case KeyPredicate::Kind::kIn:
      for (int64_t point : spec_.predicate.in_points) {
        index->ForEachMatch(SlotFromInt64(point), emit);
      }
      break;
    case KeyPredicate::Kind::kAll:
      index->ForEachValue(emit);
      break;
  }
  pipeline.Finish();

  FillOutputStats(*output, &stats);
  stats.materialize_ms = pipeline.materialize_ms();
  stats.index_ms = pipeline.index_ms();
  stats.total_ms = total.ElapsedMs();
  QPPT_RETURN_NOT_OK(ctx->Put(spec_.output.slot, std::move(output)));
  ctx->stats()->operators.push_back(std::move(stats));
  return Status::OK();
}

}  // namespace qppt
