#include "core/operators/select_join.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "engine/parallel_ops.h"
#include "util/cancel.h"

namespace qppt {

Status SelectJoinOp::Execute(ExecContext* ctx) {
  OperatorStats stats;
  stats.name = name();
  Timer total;

  QPPT_ASSIGN_OR_RETURN(const BaseIndex* index,
                        ctx->db().index(spec_.input_index));
  QPPT_ASSIGN_OR_RETURN(
      auto left,
      BoundSide::Bind(*ctx, SideRef::Base(spec_.input_index),
                      spec_.left_columns));
  QPPT_ASSIGN_OR_RETURN(auto residuals,
                        BindResiduals(*index, spec_.residuals));

  // The probed main index behaves exactly like a leading assisting index:
  // probe with `probe_column`, extend with the right side's columns. The
  // remaining assists follow.
  std::vector<AssistSpec> all_assists;
  all_assists.push_back(
      {spec_.right, spec_.probe_column, spec_.right_columns});
  all_assists.insert(all_assists.end(), spec_.assists.begin(),
                     spec_.assists.end());

  // alloc-exempt: O(columns) schema copy, once per operator bind.
  std::vector<ColumnDef> defs = left.column_defs();
  QPPT_ASSIGN_OR_RETURN(auto assists, BindAssists(*ctx, all_assists, &defs));
  Schema assembled(std::move(defs));
  const size_t width = assembled.num_columns();

  QPPT_ASSIGN_OR_RETURN(
      auto output,
      MakeOutputTable(spec_.output, assembled, ctx->knobs().table_options));

  std::vector<size_t> key_positions;
  if (!spec_.output.agg.empty()) {
    for (const auto& k : spec_.output.key_columns) {
      QPPT_ASSIGN_OR_RETURN(size_t idx, assembled.ColumnIndex(k));
      key_positions.push_back(idx);
    }
  }

  stats.input_tuples = index->num_rows();

  // Parallel path: the selection scan runs over a KISS-indexed range/all
  // predicate, so it partitions into disjoint key-range morsels; each
  // worker streams its qualifiers through a private probe pipeline into a
  // private partial output (§4.3 composition preserved per worker).
  engine::WorkerPool* pool = ctx->worker_pool();
  const KissTree* kiss = index->kiss();
  const bool parallel =
      pool != nullptr && ctx->knobs().threads > 1 && kiss != nullptr &&
      (spec_.predicate.kind == KeyPredicate::Kind::kRange ||
       spec_.predicate.kind == KeyPredicate::Kind::kAll) &&
      index->num_rows() >= engine::kMinParallelInputTuples;

  if (parallel) {
    uint32_t lo = 0;
    uint32_t hi = std::numeric_limits<uint32_t>::max();
    if (spec_.predicate.kind == KeyPredicate::Kind::kRange) {
      lo = BaseIndex::KissKeyOf(SlotFromInt64(spec_.predicate.lo));
      hi = BaseIndex::KissKeyOf(SlotFromInt64(spec_.predicate.hi));
    }
    size_t workers = pool->num_workers();
    engine::PartialOutputs partials(*output, workers);
    std::vector<std::unique_ptr<CandidatePipeline>> pipelines;
    pipelines.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      pipelines.push_back(std::make_unique<CandidatePipeline>(
          assists, width, partials.worker(w), key_positions,
          ctx->knobs().join_buffer_size));
    }
    const std::string label = display_name();
    auto tuner = pool->TunerFor(label);
    engine::MorselSite site{pool, tuner.get(), ctx->trace(), label};
    stats.morsels = engine::RunKissValueMorsels(
        site, *kiss, lo, hi, [&](size_t w, uint64_t value) {
          if (!left.Visible(value)) return;  // MVCC snapshot filter
          for (const auto& r : residuals) {
            if (!r.Eval(value)) return;
          }
          CandidatePipeline* pipeline = pipelines[w].get();
          uint64_t* row = pipeline->AddRow();
          left.Fill(value, row);
          pipeline->MaybeProcess();
        });
    // Per-phase times overlap across workers; report the slowest worker
    // (the critical path), which stays comparable to total_ms.
    for (size_t w = 0; w < workers; ++w) {
      pipelines[w]->Finish();
      stats.materialize_ms =
          std::max(stats.materialize_ms, pipelines[w]->materialize_ms());
      stats.index_ms = std::max(stats.index_ms, pipelines[w]->index_ms());
    }
    Timer merge;
    stats.merge_morsels = partials.MergeInto(site, output.get());
    stats.merge_ms = merge.ElapsedMs();
  } else {
    CandidatePipeline pipeline(std::move(assists), width, output.get(),
                               std::move(key_positions),
                               ctx->knobs().join_buffer_size);

    // Selection scan: qualifying tuples stream straight into the probe
    // pipeline — no intermediate index is ever materialized (§4.3).
    // Serial loops poll the cancel token every kCancelStride tuples.
    CancelTicker cancel(ctx->cancel());
    auto emit = [&](uint64_t value) {
      cancel.Tick();
      if (!left.Visible(value)) return;  // MVCC snapshot filter
      for (const auto& r : residuals) {
        if (!r.Eval(value)) return;
      }
      uint64_t* row = pipeline.AddRow();
      left.Fill(value, row);
      pipeline.MaybeProcess();
    };

    switch (spec_.predicate.kind) {
      case KeyPredicate::Kind::kPoint:
        index->ForEachMatch(SlotFromInt64(spec_.predicate.point), emit);
        break;
      case KeyPredicate::Kind::kRange:
        index->ForEachInRange(SlotFromInt64(spec_.predicate.lo),
                              SlotFromInt64(spec_.predicate.hi), emit);
        break;
      case KeyPredicate::Kind::kIn:
        for (int64_t point : spec_.predicate.in_points) {
          index->ForEachMatch(SlotFromInt64(point), emit);
        }
        break;
      case KeyPredicate::Kind::kAll:
        index->ForEachValue(emit);
        break;
    }
    pipeline.Finish();
    stats.materialize_ms = pipeline.materialize_ms();
    stats.index_ms = pipeline.index_ms();
  }

  FillOutputStats(*output, &stats);
  stats.total_ms = total.ElapsedMs();
  QPPT_RETURN_NOT_OK(ctx->Put(spec_.output.slot, std::move(output)));
  ctx->stats()->operators.push_back(std::move(stats));
  return Status::OK();
}

}  // namespace qppt
