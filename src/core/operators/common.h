// Shared building blocks for QPPT plan operators: input-side references,
// bound column access, and predicate descriptors.

#ifndef QPPT_CORE_OPERATORS_COMMON_H_
#define QPPT_CORE_OPERATORS_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/base_index.h"
#include "core/indexed_table.h"
#include "core/plan.h"
#include "util/status.h"

namespace qppt {

// Refers to one operator input: either a base index in the database or an
// intermediate indexed table in a context slot.
struct SideRef {
  enum class Kind : uint8_t { kBaseIndex, kSlot };
  Kind kind = Kind::kBaseIndex;
  std::string name;

  static SideRef Base(std::string index_name) {
    return {Kind::kBaseIndex, std::move(index_name)};
  }
  static SideRef Slot(std::string slot_name) {
    return {Kind::kSlot, std::move(slot_name)};
  }
};

// A bound input side: index handles plus resolved accessors for the subset
// of columns the operator carries.
class BoundSide {
 public:
  static Result<BoundSide> Bind(const ExecContext& ctx, const SideRef& ref,
                                const std::vector<std::string>& columns);

  bool is_base() const { return base_ != nullptr; }
  const BaseIndex* base() const { return base_; }
  const IndexedTable* intermediate() const { return inter_; }
  const KissTree* kiss() const {
    return is_base() ? base_->kiss() : inter_->kiss();
  }
  const PrefixTree* prefix() const {
    return is_base() ? base_->prefix() : inter_->prefix();
  }
  bool is_kiss() const { return kiss() != nullptr; }

  size_t num_columns() const { return defs_.size(); }
  const std::vector<ColumnDef>& column_defs() const { return defs_; }

  // Copies the bound columns of the tuple behind index value `value` into
  // `dst` (num_columns() slots).
  void Fill(uint64_t value, uint64_t* dst) const {
    if (is_base()) {
      for (size_t i = 0; i < base_accessors_.size(); ++i) {
        dst[i] = base_accessors_[i].Get(value);
      }
    } else {
      const uint64_t* tuple = inter_->Tuple(value);
      for (size_t i = 0; i < inter_positions_.size(); ++i) {
        dst[i] = tuple[inter_positions_[i]];
      }
    }
  }

  uint64_t num_input_tuples() const {
    return is_base() ? base_->num_rows() : inter_->num_tuples();
  }

  // True if the row behind index value `value` is visible at the query
  // snapshot. Always true for non-versioned inputs (plain base indexes
  // and intermediates) — one well-predicted branch on the hot path. Live
  // indexes retain superseded and uncommitted version rows; this is the
  // single filter that turns their scans into snapshot reads.
  bool Visible(uint64_t value) const {
    return mvcc_ == nullptr ||
           mvcc_->RidVisibleAt(base_->RidOf(value), read_ts_);
  }

 private:
  const BaseIndex* base_ = nullptr;
  const IndexedTable* inter_ = nullptr;
  const MvccTable* mvcc_ = nullptr;  // non-null iff bound to a live index
  Timestamp read_ts_ = 0;
  std::vector<BaseIndex::Accessor> base_accessors_;
  std::vector<size_t> inter_positions_;
  std::vector<ColumnDef> defs_;
};

// Predicate on the (single-column) key of a base index.
struct KeyPredicate {
  enum class Kind : uint8_t { kAll, kPoint, kRange, kIn };
  Kind kind = Kind::kAll;
  int64_t point = 0;
  int64_t lo = 0;
  int64_t hi = 0;
  std::vector<int64_t> in_points;  // kIn: one point lookup per entry

  static KeyPredicate All() { return {}; }
  static KeyPredicate Point(int64_t v) {
    return {Kind::kPoint, v, 0, 0, {}};
  }
  static KeyPredicate Range(int64_t lo, int64_t hi) {
    return {Kind::kRange, 0, lo, hi, {}};
  }
  static KeyPredicate In(std::vector<int64_t> points) {
    return {Kind::kIn, 0, 0, 0, std::move(points)};
  }
};

// Residual comparison evaluated per qualifying tuple (conjunctive with the
// key predicate and with each other). Values are int64 slots — dictionary
// codes for string columns.
struct Residual {
  enum class Cmp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe, kBetween };
  std::string column;
  Cmp cmp = Cmp::kEq;
  int64_t a = 0;
  int64_t b = 0;  // kBetween upper bound (inclusive)

  static Residual Eq(std::string col, int64_t v) {
    return {std::move(col), Cmp::kEq, v, 0};
  }
  static Residual Ne(std::string col, int64_t v) {
    return {std::move(col), Cmp::kNe, v, 0};
  }
  static Residual Lt(std::string col, int64_t v) {
    return {std::move(col), Cmp::kLt, v, 0};
  }
  static Residual Le(std::string col, int64_t v) {
    return {std::move(col), Cmp::kLe, v, 0};
  }
  static Residual Ge(std::string col, int64_t v) {
    return {std::move(col), Cmp::kGe, v, 0};
  }
  static Residual Between(std::string col, int64_t lo, int64_t hi) {
    return {std::move(col), Cmp::kBetween, lo, hi};
  }

  bool Eval(int64_t v) const {
    switch (cmp) {
      case Cmp::kEq:
        return v == a;
      case Cmp::kNe:
        return v != a;
      case Cmp::kLt:
        return v < a;
      case Cmp::kLe:
        return v <= a;
      case Cmp::kGt:
        return v > a;
      case Cmp::kGe:
        return v >= a;
      case Cmp::kBetween:
        return v >= a && v <= b;
    }
    return false;
  }
};

// A residual bound to a base-index accessor.
struct BoundResidual {
  Residual residual;
  BaseIndex::Accessor accessor;

  bool Eval(uint64_t value) const {
    return residual.Eval(Int64FromSlot(accessor.Get(value)));
  }
};

Result<std::vector<BoundResidual>> BindResiduals(
    const BaseIndex& index, const std::vector<Residual>& residuals);

// Describes the output of an operator: slot name, key columns, and
// (optionally) aggregation. Without aggregation the output table carries
// all columns the operator assembles; with aggregation it carries the
// group keys plus the aggregate results.
struct OutputSpec {
  std::string slot;
  std::vector<std::string> key_columns;
  AggSpec agg;  // empty -> plain indexed table
};

// Builds the operator's output table for an assembled-tuple schema.
Result<std::unique_ptr<IndexedTable>> MakeOutputTable(
    const OutputSpec& spec, const Schema& assembled,
    const IndexedTable::Options& options);

// Fills an OperatorStats entry from a finished output table.
void FillOutputStats(const IndexedTable& table, OperatorStats* stats);

// ---- assisting indexes & the candidate pipeline (§4.2) -----------------------

// An assisting index of a composed join: probed per candidate combination
// with a key taken from the assembled tuple; a miss drops the combination,
// a hit appends the assist's carried columns (dimension lookup).
struct AssistSpec {
  SideRef index;
  std::string probe_column;
  std::vector<std::string> carry_columns;  // {} = pure semi-join
};

struct BoundAssist {
  BoundSide side;
  size_t probe_pos = 0;     // position of the probe key in the assembled row
  size_t carry_offset = 0;  // where carried columns land in the row
};

// Binds `assists` against the growing assembled-tuple layout `defs`
// (extended in place with each assist's carried columns).
Result<std::vector<BoundAssist>> BindAssists(
    const ExecContext& ctx, const std::vector<AssistSpec>& assists,
    std::vector<ColumnDef>* defs);

// Stages assembled candidate rows, pushes them through the assist probe
// pipeline in joinbuffer-sized batches (§2.3 batch lookups), and inserts
// survivors into the output index (aggregating on insert when the output
// table aggregates).
class CandidatePipeline {
 public:
  CandidatePipeline(std::vector<BoundAssist> assists, size_t row_width,
                    IndexedTable* output, std::vector<size_t> key_positions,
                    size_t buffer_rows);

  // Reserves one zeroed assembled row; the caller fills the main-side
  // columns, then calls MaybeProcess() (which may invalidate the pointer).
  uint64_t* AddRow();
  void MaybeProcess() {
    if (candidates_.size() >= buffer_rows_ * width_) Process();
  }
  // Flushes any staged rows. Call exactly once after the input scan.
  void Finish() { Process(); }

  double materialize_ms() const { return materialize_ms_; }
  double index_ms() const { return index_ms_; }

 private:
  void Process();

  std::vector<BoundAssist> assists_;
  size_t width_;
  IndexedTable* output_;
  std::vector<size_t> key_positions_;  // empty = plain output
  std::vector<uint64_t> key_slots_;
  size_t buffer_rows_;
  std::vector<uint64_t> candidates_;
  std::vector<uint64_t> next_stage_;
  std::vector<KissTree::LookupJob> jobs_;
  std::vector<PrefixTree::LookupJob> prefix_jobs_;
  std::vector<KeyBuf> prefix_keys_;
  double materialize_ms_ = 0;
  double index_ms_ = 0;
};

}  // namespace qppt

#endif  // QPPT_CORE_OPERATORS_COMMON_H_
