// Column-at-a-time baseline engine — the MonetDB proxy of §5.
//
// Every operator consumes and produces *full columns*: predicate
// evaluation materializes a complete selection vector, every join step
// gathers the (full-length) foreign-key column through the current
// selection vector before probing, and every carried attribute becomes
// another materialized column. This faithfully reproduces the processing
// model whose weakness the paper targets: with a growing number of join
// columns, more and more full-length intermediate columns have to be
// materialized and re-gathered — the tuple reconstruction overhead that
// makes the 4.x queries degrade (Fig. 7).

#ifndef QPPT_BASELINE_COLUMN_ENGINE_H_
#define QPPT_BASELINE_COLUMN_ENGINE_H_

#include "core/plan.h"
#include "ssb/star_spec.h"

namespace qppt::baseline {

// Executes `spec` column-at-a-time over the columnar copies in `data`.
// Rows are returned in ascending group-key order (like the QPPT engine
// before its ORDER BY post-sort).
Result<QueryResult> RunColumnAtATime(ssb::SsbData& data,
                                     const ssb::StarQuerySpec& spec);

}  // namespace qppt::baseline

#endif  // QPPT_BASELINE_COLUMN_ENGINE_H_
