// Vector-at-a-time baseline engine — the commercial-DBMS proxy of §5
// (VectorWise-style processing, MonetDB/X100 lineage).
//
// Processing happens in cache-resident vectors of 1024 tuples: each vector
// of the fact table is pushed through predicate evaluation, the dimension
// hash-join probes, and the aggregation in one pass, with per-vector
// selection vectors instead of full-column intermediates. This keeps
// intermediates in cache (the vector model's strength) but still pays the
// tuple-reconstruction cost of gathering one column per touched attribute
// per vector (the columnar weakness the paper exploits on 4.x queries).

#ifndef QPPT_BASELINE_VECTOR_ENGINE_H_
#define QPPT_BASELINE_VECTOR_ENGINE_H_

#include "core/plan.h"
#include "ssb/star_spec.h"

namespace qppt::baseline {

inline constexpr size_t kVectorSize = 1024;

// Executes `spec` vector-at-a-time over the columnar copies in `data`.
Result<QueryResult> RunVectorAtATime(ssb::SsbData& data,
                                     const ssb::StarQuerySpec& spec);

}  // namespace qppt::baseline

#endif  // QPPT_BASELINE_VECTOR_ENGINE_H_
