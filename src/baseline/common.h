// Shared pieces of the baseline engines: dimension hash-table builds and
// group-key packing. Both baselines build per-dimension hash tables
// (key -> carried attributes) — the classic hash-join build side that the
// paper contrasts with QPPT's index-based probes.

#ifndef QPPT_BASELINE_COMMON_H_
#define QPPT_BASELINE_COMMON_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "index/open_hash_table.h"
#include "ssb/star_spec.h"
#include "storage/column_table.h"
#include "util/status.h"

namespace qppt::baseline {

// Build side of one dimension join: an open-addressing hash table from the
// dimension key to an index into the flattened carried-attribute rows.
struct DimHash {
  OpenHashTable table;
  std::vector<int64_t> payload_flat;  // carry_width values per entry
  size_t carry_width = 0;

  // Probe: returns payload index, or -1 on miss.
  int64_t Probe(int64_t key) const {
    auto v = table.Find(static_cast<uint64_t>(key));
    return v.has_value() ? static_cast<int64_t>(*v) : -1;
  }
  const int64_t* Payload(int64_t idx) const {
    return payload_flat.data() + static_cast<size_t>(idx) * carry_width;
  }
};

// Builds the hash table for `dim` by scanning the dimension column-wise:
// one pass per predicate column producing a shrinking selection vector,
// then a gather of the key and carried columns.
Result<DimHash> BuildDimHash(const ColumnTable& table,
                             const ssb::DimJoinSpec& dim);

// Packs up to four group-key codes (each < 2^16) into one uint64 whose
// numeric order equals the lexicographic order of the components.
inline uint64_t PackGroupKey(const int64_t* codes, size_t n) {
  uint64_t packed = 0;
  for (size_t i = 0; i < n; ++i) {
    assert(codes[i] >= 0 && codes[i] < (int64_t{1} << 16));
    packed = (packed << 16) | static_cast<uint64_t>(codes[i]);
  }
  return packed;
}

inline void UnpackGroupKey(uint64_t packed, size_t n, int64_t* codes) {
  for (size_t i = 0; i < n; ++i) {
    codes[n - 1 - i] = static_cast<int64_t>(packed & 0xFFFF);
    packed >>= 16;
  }
}

// Resolves the position of each group-by attribute: (dim index, position
// within that dim's carried attributes).
struct GroupRef {
  size_t dim = 0;
  size_t pos = 0;
};
Result<std::vector<GroupRef>> ResolveGroupRefs(const ssb::StarQuerySpec& spec);

// Builds the result schema: group columns (with their dictionaries, pulled
// from the dimension table schemas) followed by the aggregate column.
Result<Schema> ResultSchema(ssb::SsbData& data,
                            const ssb::StarQuerySpec& spec);

}  // namespace qppt::baseline

#endif  // QPPT_BASELINE_COMMON_H_
