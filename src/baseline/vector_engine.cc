#include "baseline/vector_engine.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "baseline/common.h"

namespace qppt::baseline {

Result<QueryResult> RunVectorAtATime(ssb::SsbData& data,
                                     const ssb::StarQuerySpec& spec) {
  const ColumnTable& fact = data.Columnar("lineorder");
  size_t n = fact.num_rows();

  std::vector<DimHash> dim_hashes;
  for (const auto& dim : spec.dims) {
    QPPT_ASSIGN_OR_RETURN(auto hash,
                          BuildDimHash(data.Columnar(dim.table), dim));
    dim_hashes.push_back(std::move(hash));
  }

  // Resolve all columns touched per vector.
  std::vector<const std::vector<uint64_t>*> pred_cols;
  for (const auto& pred : spec.fact_preds) {
    QPPT_ASSIGN_OR_RETURN(const auto* col, fact.ColumnByName(pred.column));
    pred_cols.push_back(col);
  }
  std::vector<const std::vector<uint64_t>*> fk_cols;
  for (const auto& dim : spec.dims) {
    QPPT_ASSIGN_OR_RETURN(const auto* col, fact.ColumnByName(dim.fact_fk));
    fk_cols.push_back(col);
  }
  QPPT_ASSIGN_OR_RETURN(auto bound_agg,
                        BindScalarExpr(spec.agg_source, fact.schema()));
  QPPT_ASSIGN_OR_RETURN(const auto* agg_lhs_col,
                        fact.ColumnByName(spec.agg_source.lhs));
  const std::vector<uint64_t>* agg_rhs_col = nullptr;
  if (spec.agg_source.op != ScalarExpr::Op::kColumn) {
    QPPT_ASSIGN_OR_RETURN(agg_rhs_col,
                          fact.ColumnByName(spec.agg_source.rhs));
  }
  QPPT_ASSIGN_OR_RETURN(auto group_refs, ResolveGroupRefs(spec));
  size_t g_n = spec.group_by.size();

  std::map<uint64_t, int64_t> groups;

  // Per-vector state: selection vector + per-dimension payload indexes,
  // all of vector (not table) length — the cache-resident intermediates
  // of the vectorized model.
  uint32_t sel[kVectorSize];
  uint32_t next_sel[kVectorSize];
  int64_t payloads[4][kVectorSize];

  for (size_t base = 0; base < n; base += kVectorSize) {
    size_t len = std::min(kVectorSize, n - base);
    // Predicate primitives.
    size_t count = 0;
    if (spec.fact_preds.empty()) {
      for (size_t i = 0; i < len; ++i) sel[count++] = static_cast<uint32_t>(i);
    } else {
      const auto& pred0 = spec.fact_preds[0];
      const auto& col0 = *pred_cols[0];
      for (size_t i = 0; i < len; ++i) {
        if (ssb::EvalKeyPredicate(pred0.pred,
                                  Int64FromSlot(col0[base + i]))) {
          sel[count++] = static_cast<uint32_t>(i);
        }
      }
      for (size_t p = 1; p < spec.fact_preds.size(); ++p) {
        const auto& col = *pred_cols[p];
        size_t kept = 0;
        for (size_t i = 0; i < count; ++i) {
          if (ssb::EvalKeyPredicate(spec.fact_preds[p].pred,
                                    Int64FromSlot(col[base + sel[i]]))) {
            sel[kept++] = sel[i];
          }
        }
        count = kept;
      }
    }
    if (count == 0) continue;

    // Hash-probe primitives, one dimension at a time within the vector.
    for (size_t d = 0; d < spec.dims.size(); ++d) {
      const auto& fk = *fk_cols[d];
      size_t kept = 0;
      for (size_t i = 0; i < count; ++i) {
        int64_t payload =
            dim_hashes[d].Probe(Int64FromSlot(fk[base + sel[i]]));
        if (payload < 0) continue;
        next_sel[kept] = sel[i];
        for (size_t e = 0; e < d; ++e) {
          payloads[e][kept] = payloads[e][i];  // compact alongside
        }
        payloads[d][kept] = payload;
        ++kept;
      }
      // Compaction wrote next_sel; swap into sel.
      for (size_t i = 0; i < kept; ++i) sel[i] = next_sel[i];
      count = kept;
      if (count == 0) break;
    }
    if (count == 0) continue;

    // Aggregation primitive.
    for (size_t i = 0; i < count; ++i) {
      size_t row_idx = base + sel[i];
      uint64_t row[16];
      row[bound_agg.lhs] = (*agg_lhs_col)[row_idx];
      if (agg_rhs_col != nullptr) row[bound_agg.rhs] = (*agg_rhs_col)[row_idx];
      int64_t value = Int64FromSlot(bound_agg.Eval(row));
      int64_t codes[4];
      for (size_t g = 0; g < g_n; ++g) {
        const auto& ref = group_refs[g];
        codes[g] = dim_hashes[ref.dim].Payload(payloads[ref.dim][i])[ref.pos];
      }
      groups[PackGroupKey(codes, g_n)] += value;
    }
  }

  QueryResult result;
  QPPT_ASSIGN_OR_RETURN(result.schema, ResultSchema(data, spec));
  for (const auto& [packed, total] : groups) {
    int64_t codes[4];
    UnpackGroupKey(packed, g_n, codes);
    std::vector<Value> row;
    row.reserve(g_n + 1);
    for (size_t g = 0; g < g_n; ++g) {
      const ColumnDef& def = result.schema.column(g);
      if (def.type == ValueType::kString && def.dictionary != nullptr) {
        row.push_back(Value::Str(def.dictionary->StringOf(codes[g])));
      } else {
        row.push_back(Value::Int(codes[g]));
      }
    }
    row.push_back(Value::Int(total));
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace qppt::baseline
