#include "baseline/column_engine.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "baseline/common.h"

namespace qppt::baseline {

Result<QueryResult> RunColumnAtATime(ssb::SsbData& data,
                                     const ssb::StarQuerySpec& spec) {
  const ColumnTable& fact = data.Columnar("lineorder");
  size_t n = fact.num_rows();

  // Build side: one hash table per dimension.
  std::vector<DimHash> dim_hashes;
  for (const auto& dim : spec.dims) {
    QPPT_ASSIGN_OR_RETURN(auto hash,
                          BuildDimHash(data.Columnar(dim.table), dim));
    dim_hashes.push_back(std::move(hash));
  }

  // Fact predicates, column at a time: first predicate scans the full
  // column into a selection vector, later ones shrink it.
  std::vector<uint32_t> sel;
  bool have_sel = false;
  for (const auto& pred : spec.fact_preds) {
    QPPT_ASSIGN_OR_RETURN(const auto* col, fact.ColumnByName(pred.column));
    std::vector<uint32_t> next;
    if (!have_sel) {
      next.reserve(n / 4);
      for (size_t i = 0; i < n; ++i) {
        if (ssb::EvalKeyPredicate(pred.pred, Int64FromSlot((*col)[i]))) {
          next.push_back(static_cast<uint32_t>(i));
        }
      }
    } else {
      next.reserve(sel.size());
      for (uint32_t i : sel) {
        if (ssb::EvalKeyPredicate(pred.pred, Int64FromSlot((*col)[i]))) {
          next.push_back(i);
        }
      }
    }
    sel = std::move(next);
    have_sel = true;
  }
  if (!have_sel) {
    sel.resize(n);
    for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
  }

  // Join steps: for each dimension, materialize the gathered foreign-key
  // column (full tuple-reconstruction cost), probe the hash table, and
  // materialize the aligned payload-index column for survivors.
  std::vector<std::vector<int64_t>> dim_payload_cols(spec.dims.size());
  for (size_t d = 0; d < spec.dims.size(); ++d) {
    QPPT_ASSIGN_OR_RETURN(const auto* fk_col,
                          fact.ColumnByName(spec.dims[d].fact_fk));
    // Materialize the gathered key column for the current candidates.
    std::vector<int64_t> keys(sel.size());
    for (size_t i = 0; i < sel.size(); ++i) {
      keys[i] = Int64FromSlot((*fk_col)[sel[i]]);
    }
    // Probe; compact the selection vector and all previously materialized
    // payload columns (each join step rewrites them — the re-gathering
    // overhead of column-wise processing).
    std::vector<uint32_t> next_sel;
    next_sel.reserve(sel.size());
    std::vector<std::vector<int64_t>> next_payloads(d + 1);
    for (auto& p : next_payloads) p.reserve(sel.size());
    for (size_t i = 0; i < sel.size(); ++i) {
      int64_t payload = dim_hashes[d].Probe(keys[i]);
      if (payload < 0) continue;
      next_sel.push_back(sel[i]);
      for (size_t e = 0; e < d; ++e) {
        next_payloads[e].push_back(dim_payload_cols[e][i]);
      }
      next_payloads[d].push_back(payload);
    }
    sel = std::move(next_sel);
    for (size_t e = 0; e <= d; ++e) {
      dim_payload_cols[e] = std::move(next_payloads[e]);
    }
  }

  // Aggregate: gather the aggregate source columns, compute the source
  // value column, then hash-aggregate on the packed group key.
  QPPT_ASSIGN_OR_RETURN(auto bound_agg,
                        BindScalarExpr(spec.agg_source, fact.schema()));
  std::vector<const std::vector<uint64_t>*> fact_cols(
      fact.schema().num_columns());
  for (size_t c = 0; c < fact.schema().num_columns(); ++c) {
    fact_cols[c] = &fact.column(c);
  }
  std::vector<int64_t> agg_vals(sel.size());
  for (size_t i = 0; i < sel.size(); ++i) {
    // Assemble the (tiny) row view the expression needs.
    uint64_t row[16];
    row[bound_agg.lhs] = (*fact_cols[bound_agg.lhs])[sel[i]];
    if (spec.agg_source.op != ScalarExpr::Op::kColumn) {
      row[bound_agg.rhs] = (*fact_cols[bound_agg.rhs])[sel[i]];
    }
    agg_vals[i] = Int64FromSlot(bound_agg.Eval(row));
  }

  QPPT_ASSIGN_OR_RETURN(auto group_refs, ResolveGroupRefs(spec));
  std::map<uint64_t, int64_t> groups;  // ordered: ascending packed key
  size_t g_n = spec.group_by.size();
  for (size_t i = 0; i < sel.size(); ++i) {
    int64_t codes[4];
    for (size_t g = 0; g < g_n; ++g) {
      const auto& ref = group_refs[g];
      codes[g] =
          dim_hashes[ref.dim].Payload(dim_payload_cols[ref.dim][i])[ref.pos];
    }
    groups[PackGroupKey(codes, g_n)] += agg_vals[i];
  }

  QueryResult result;
  QPPT_ASSIGN_OR_RETURN(result.schema, ResultSchema(data, spec));
  for (const auto& [packed, total] : groups) {
    int64_t codes[4];
    UnpackGroupKey(packed, g_n, codes);
    std::vector<Value> row;
    row.reserve(g_n + 1);
    for (size_t g = 0; g < g_n; ++g) {
      const ColumnDef& def = result.schema.column(g);
      if (def.type == ValueType::kString && def.dictionary != nullptr) {
        row.push_back(Value::Str(def.dictionary->StringOf(codes[g])));
      } else {
        row.push_back(Value::Int(codes[g]));
      }
    }
    row.push_back(Value::Int(total));
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace qppt::baseline
