#include "baseline/common.h"

#include <cstdint>
#include <vector>

namespace qppt::baseline {

Result<DimHash> BuildDimHash(const ColumnTable& table,
                             const ssb::DimJoinSpec& dim) {
  DimHash out;
  out.carry_width = dim.carry.size();
  size_t n = table.num_rows();

  // Column-at-a-time predicate evaluation: the first predicate scans the
  // full column; later ones gather through the shrinking selection vector.
  std::vector<uint32_t> sel;
  bool have_sel = false;
  for (const auto& pred : dim.preds) {
    QPPT_ASSIGN_OR_RETURN(const auto* col, table.ColumnByName(pred.column));
    std::vector<uint32_t> next;
    if (!have_sel) {
      next.reserve(n / 4);
      for (size_t i = 0; i < n; ++i) {
        if (ssb::EvalKeyPredicate(pred.pred,
                                  Int64FromSlot((*col)[i]))) {
          next.push_back(static_cast<uint32_t>(i));
        }
      }
    } else {
      next.reserve(sel.size());
      for (uint32_t i : sel) {
        if (ssb::EvalKeyPredicate(pred.pred, Int64FromSlot((*col)[i]))) {
          next.push_back(i);
        }
      }
    }
    sel = std::move(next);
    have_sel = true;
  }
  if (!have_sel) {
    sel.resize(n);
    for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
  }

  QPPT_ASSIGN_OR_RETURN(const auto* key_col,
                        table.ColumnByName(dim.key_column));
  std::vector<const std::vector<uint64_t>*> carry_cols;
  for (const auto& c : dim.carry) {
    QPPT_ASSIGN_OR_RETURN(const auto* col, table.ColumnByName(c));
    carry_cols.push_back(col);
  }
  for (uint32_t i : sel) {
    uint64_t payload_idx = out.carry_width == 0
                               ? 0
                               : out.payload_flat.size() / out.carry_width;
    for (const auto* col : carry_cols) {
      out.payload_flat.push_back(Int64FromSlot((*col)[i]));
    }
    out.table.Upsert((*key_col)[i], payload_idx);
  }
  return out;
}

Result<std::vector<GroupRef>> ResolveGroupRefs(
    const ssb::StarQuerySpec& spec) {
  std::vector<GroupRef> refs;
  for (const auto& name : spec.group_by) {
    bool found = false;
    for (size_t d = 0; d < spec.dims.size() && !found; ++d) {
      for (size_t p = 0; p < spec.dims[d].carry.size(); ++p) {
        if (spec.dims[d].carry[p] == name) {
          refs.push_back({d, p});
          found = true;
          break;
        }
      }
    }
    if (!found) {
      return Status::InvalidArgument("group attribute '" + name +
                                     "' is not carried by any dimension");
    }
  }
  return refs;
}

Result<Schema> ResultSchema(ssb::SsbData& data,
                            const ssb::StarQuerySpec& spec) {
  std::vector<ColumnDef> cols;
  QPPT_ASSIGN_OR_RETURN(auto refs, ResolveGroupRefs(spec));
  for (size_t g = 0; g < spec.group_by.size(); ++g) {
    const auto& dim = spec.dims[refs[g].dim];
    const ColumnTable& table = data.Columnar(dim.table);
    QPPT_ASSIGN_OR_RETURN(size_t idx,
                          table.schema().ColumnIndex(spec.group_by[g]));
    cols.push_back(table.schema().column(idx));
  }
  cols.push_back({spec.agg_name, ValueType::kInt64, nullptr});
  return Schema(std::move(cols));
}

}  // namespace qppt::baseline
