#include "index/chained_hash_table.h"

#include <cstdint>
#include <vector>

#include "util/bits.h"

namespace qppt {

ChainedHashTable::ChainedHashTable(size_t initial_capacity)
    : arena_(/*block_size=*/256 * 1024) {
  buckets_.resize(NextPow2(initial_capacity < 16 ? 16 : initial_capacity),
                  nullptr);
}

void ChainedHashTable::Upsert(uint64_t key, uint64_t value) {
  size_t b = BucketOf(key);
  for (Node* n = buckets_[b]; n != nullptr; n = n->next) {
    if (n->key == key) {
      n->value = value;
      return;
    }
  }
  if (size_ + 1 > buckets_.size() * 3 / 4) {
    Grow();
    b = BucketOf(key);
  }
  Node* n = static_cast<Node*>(arena_.Allocate(sizeof(Node)));
  n->key = key;
  n->value = value;
  n->next = buckets_[b];
  buckets_[b] = n;
  ++size_;
}

std::optional<uint64_t> ChainedHashTable::Find(uint64_t key) const {
  for (const Node* n = buckets_[BucketOf(key)]; n != nullptr; n = n->next) {
    if (n->key == key) return n->value;
  }
  return std::nullopt;
}

void ChainedHashTable::Grow() {
  std::vector<Node*> old = std::move(buckets_);
  buckets_.assign(old.size() * 2, nullptr);
  for (Node* head : old) {
    while (head != nullptr) {
      Node* next = head->next;
      size_t b = BucketOf(head->key);
      head->next = buckets_[b];
      buckets_[b] = head;
      head = next;
    }
  }
}

}  // namespace qppt
