// Duplicate handling (§2.4, Figure 4).
//
// Storing duplicates as plain linked lists causes one random memory access
// per value during scans. QPPT instead stores a key's values in memory
// *segments* that double in size from 64 B up to the 4 KiB page size; new
// segments are linked at the front. Hardware prefetchers stream within a
// page, so scanning a segment is sequential-speed; the page-size cap exists
// because prefetchers do not cross page boundaries anyway.
//
// Layout per key:  first value inline in the content entry (no allocation
// for unique keys), plus a front-linked list of segments for the rest.
//
// LinkedDuplicateList is the naive linked-list alternative, kept for the
// ablation benchmark (E8) that quantifies this design choice.

#ifndef QPPT_INDEX_DUPLICATE_CHAIN_H_
#define QPPT_INDEX_DUPLICATE_CHAIN_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/arena.h"
#include "util/prefetch.h"

namespace qppt {

// A value list with an inline first value and growing duplicate segments.
// POD-ish: lives inside prefix-tree content nodes; zero-initialized state
// means "empty".
//
// Thread model: one appender at a time; any number of concurrent readers
// (the engine's live base indexes are read lock-free under a write
// stream). Values are published before the count/used release store, so a
// reader visits only fully written values — possibly including appends
// that landed after the reader started, which MVCC visibility filtering
// makes harmless. ReplaceWith is NOT reader-safe; live index maintenance
// must append only.
class ValueList {
 public:
  static constexpr size_t kFirstSegmentBytes = 64;
  static constexpr size_t kMaxSegmentBytes = PageArena::kPageSize;  // 4 KiB

  ValueList() = default;

  uint32_t size() const { return count_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }

  // Appends `value`. Segments are allocated from `arena` (4 KiB-aligned,
  // never straddling pages).
  void Append(uint64_t value, PageArena* arena);

  // Replaces the whole list with a single value (upsert semantics used by
  // the Fig. 3 insert/update workload). Single-threaded use only.
  void ReplaceWith(uint64_t value) {
    first_ = value;
    head_.store(nullptr, std::memory_order_relaxed);  // relaxed: single-
    // threaded use only (see above); the count release publishes it anyway.
    // pairs-with: dup-count
    count_.store(1, std::memory_order_release);
  }

  uint64_t first() const { return first_; }

  // Visits every value. F: void(uint64_t). Order: insertion order is NOT
  // preserved across segments (newest segment first, as in the paper);
  // duplicates are a multiset.
  template <typename F>
  void ForEach(F&& fn) const {
    if (count_.load(std::memory_order_acquire) == 0) return;
    fn(first_);
    for (const Segment* seg = head_.load(std::memory_order_acquire);
         seg != nullptr; seg = seg->next) {
      // Segments live on different pages; kick off the next segment's
      // header fetch while this segment streams at hardware-prefetch
      // speed (prefetching nullptr is harmless).
      PrefetchRead(seg->next);
      const uint64_t* values = seg->values();
      uint32_t used = seg->used.load(std::memory_order_acquire);
      for (uint32_t i = 0; i < used; ++i) fn(values[i]);
    }
  }

  // Copies all values into `out` (which must have room for size() values).
  // Single-threaded use only: a concurrent append could outgrow `out`.
  void CopyTo(uint64_t* out) const {
    uint64_t* p = out;
    ForEach([&p](uint64_t v) { *p++ = v; });
  }

 private:
  struct Segment {
    Segment* next = nullptr;
    uint32_t capacity = 0;  // in values
    std::atomic<uint32_t> used{0};

    uint64_t* values() {
      return reinterpret_cast<uint64_t*>(this + 1);
    }
    const uint64_t* values() const {
      return reinterpret_cast<const uint64_t*>(this + 1);
    }
  };
  static_assert(sizeof(Segment) == 16, "segment header must stay 16 bytes");

  uint64_t first_ = 0;
  std::atomic<Segment*> head_{nullptr};
  std::atomic<uint32_t> count_{0};
};

// Naive linked-list duplicate storage: one node per value, allocated from a
// general arena. One random access per value when scanning. Ablation
// baseline only.
class LinkedDuplicateList {
 public:
  LinkedDuplicateList() = default;

  uint32_t size() const { return count_; }

  void Append(uint64_t value, Arena* arena) {
    Node* n = static_cast<Node*>(arena->Allocate(sizeof(Node)));
    n->value = value;
    n->next = head_;
    head_ = n;
    ++count_;
  }

  template <typename F>
  void ForEach(F&& fn) const {
    for (const Node* n = head_; n != nullptr; n = n->next) fn(n->value);
  }

 private:
  struct Node {
    uint64_t value;
    Node* next;
  };
  Node* head_ = nullptr;
  uint32_t count_ = 0;
};

}  // namespace qppt

#endif  // QPPT_INDEX_DUPLICATE_CHAIN_H_
