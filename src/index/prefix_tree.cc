#include "index/prefix_tree.h"

#include <cassert>
#include <cstdint>
#include <cstring>
#include <new>

namespace qppt {

PrefixTree::PrefixTree(Config config)
    : config_(config),
      key_bits_(config.key_len * 8),
      fanout_(size_t{1} << config.kprime),
      payload_offset_((config.key_len + 7) & ~size_t{7}),
      payload_size_(config.mode == PayloadMode::kValues
                        ? sizeof(ValueList)
                        : config.agg_payload_size),
      node_arena_(/*block_size=*/256 * 1024) {
  assert(config.key_len >= 1 && config.key_len <= KeyBuf::kCapacity);
  assert(config.kprime >= 1 && config.kprime <= 16);
  MergeStats stats;
  root_ = NewNode(&stats);
  // relaxed: advisory stat; construction is single-threaded anyway.
  num_inner_nodes_.fetch_add(stats.new_inner_nodes,
                             std::memory_order_relaxed);
}

PrefixTree::PrefixTree(PrefixTree&& other) noexcept
    : config_(other.config_),
      key_bits_(other.key_bits_),
      fanout_(other.fanout_),
      payload_offset_(other.payload_offset_),
      payload_size_(other.payload_size_),
      node_arena_(std::move(other.node_arena_)),
      dup_arena_(std::move(other.dup_arena_)),
      root_(other.root_),
      // relaxed: move construction has exclusive access to both objects.
      num_keys_(other.num_keys_.load(std::memory_order_relaxed)),
      num_inner_nodes_(
          other.num_inner_nodes_.load(std::memory_order_relaxed)) {
  other.root_ = nullptr;
  // relaxed: move construction has exclusive access to both objects.
  other.num_keys_.store(0, std::memory_order_relaxed);
  other.num_inner_nodes_.store(0, std::memory_order_relaxed);
}

PrefixTree::Node* PrefixTree::NewNode(MergeStats* stats) {
  void* mem = node_arena_.AllocateZeroed(fanout_ * sizeof(Slot),
                                         /*align=*/alignof(Slot));
  ++stats->new_inner_nodes;
  return reinterpret_cast<Node*>(mem);
}

PrefixTree::ContentNode* PrefixTree::NewContent(const uint8_t* key,
                                                MergeStats* stats) {
  void* mem =
      node_arena_.AllocateZeroed(payload_offset_ + payload_size_, /*align=*/8);
  auto* content = reinterpret_cast<ContentNode*>(mem);
  std::memcpy(content->mutable_key(), key, config_.key_len);
  if (config_.mode == PayloadMode::kValues) {
    new (MutableValuesOf(content)) ValueList();
  }
  ++stats->new_keys;
  return content;
}

PrefixTree::ContentNode* PrefixTree::FindOrCreateContent(const uint8_t* key,
                                                         bool* created,
                                                         MergeStats* stats) {
  Node* node = root_;
  size_t bit_off = 0;
  for (;;) {
    size_t width = FragWidth(bit_off);
    uint32_t frag =
        ExtractFragment(key, config_.key_len, bit_off, width);
    // Writer-side plain read; mutations are externally serialized.
    Slot& slot = node->slots[frag];
    if (slot == 0) {
      ContentNode* c = NewContent(key, stats);
      StoreSlot(&slot, reinterpret_cast<uintptr_t>(c) | 1);
      *created = true;
      return c;
    }
    if (IsContent(slot)) {
      ContentNode* existing = AsContent(slot);
      if (CompareKeys(existing->key(), key, config_.key_len) == 0) {
        *created = false;
        return existing;
      }
      // Dynamic expansion: push the existing content node down until its
      // fragment diverges from the new key's fragment. The chain is built
      // detached and swapped in with a single release store, so a
      // concurrent reader sees either the old content slot or the
      // complete chain — never an inner node that lost `existing`.
      size_t off = bit_off + width;
      Node* top = NewNode(stats);
      Node* inner = top;
      for (;;) {
        size_t w = FragWidth(off);
        uint32_t existing_frag =
            ExtractFragment(existing->key(), config_.key_len, off, w);
        uint32_t new_frag = ExtractFragment(key, config_.key_len, off, w);
        if (existing_frag != new_frag) {
          inner->slots[existing_frag] =
              reinterpret_cast<uintptr_t>(existing) | 1;
          ContentNode* c = NewContent(key, stats);
          inner->slots[new_frag] = reinterpret_cast<uintptr_t>(c) | 1;
          StoreSlot(&slot, reinterpret_cast<uintptr_t>(top));
          *created = true;
          return c;
        }
        Node* next = NewNode(stats);
        inner->slots[existing_frag] = reinterpret_cast<uintptr_t>(next);
        inner = next;
        off += w;
        // Keys are distinct and fixed-width, so fragments must diverge
        // before we run out of bits.
        assert(off < key_bits_ || existing_frag != new_frag);
      }
    }
    node = AsNode(slot);
    bit_off += width;
  }
}

void PrefixTree::Insert(const uint8_t* key, uint64_t value) {
  assert(config_.mode == PayloadMode::kValues);
  bool created = false;
  MergeStats stats;
  ContentNode* c = FindOrCreateContent(key, &created, &stats);
  AddMergedKeyStats(stats);
  MutableValuesOf(c)->Append(value, &dup_arena_);
}

void PrefixTree::Upsert(const uint8_t* key, uint64_t value) {
  assert(config_.mode == PayloadMode::kValues);
  bool created = false;
  MergeStats stats;
  ContentNode* c = FindOrCreateContent(key, &created, &stats);
  AddMergedKeyStats(stats);
  MutableValuesOf(c)->ReplaceWith(value);
}

void PrefixTree::BeginConcurrentInserts() {
  node_arena_.set_concurrent(true);
  dup_arena_.set_concurrent(true);
}

void PrefixTree::EndConcurrentInserts() {
  node_arena_.set_concurrent(false);
  dup_arena_.set_concurrent(false);
}

void PrefixTree::InsertForMerge(const uint8_t* key, uint64_t value,
                                MergeStats* stats) {
  assert(config_.mode == PayloadMode::kValues);
  bool created = false;
  ContentNode* c = FindOrCreateContent(key, &created, stats);
  MutableValuesOf(c)->Append(value, &dup_arena_);
}

std::byte* PrefixTree::FindOrCreatePayload(const uint8_t* key,
                                           bool* created) {
  MergeStats stats;
  std::byte* payload = FindOrCreatePayloadForMerge(key, created, &stats);
  AddMergedKeyStats(stats);
  return payload;
}

std::byte* PrefixTree::FindOrCreatePayloadForMerge(const uint8_t* key,
                                                   bool* created,
                                                   MergeStats* stats) {
  assert(config_.mode == PayloadMode::kAggregate);
  ContentNode* c = FindOrCreateContent(key, created, stats);
  return MutablePayloadOf(c);
}

const PrefixTree::ContentNode* PrefixTree::MinContent() const {
  if (num_keys() == 0) return nullptr;
  const Node* node = root_;
  size_t bit_off = 0;
  for (;;) {
    size_t width = FragWidth(bit_off);
    size_t fanout = size_t{1} << width;
    size_t i = 0;
    Slot s = 0;
    while (i < fanout && (s = LoadSlot(&node->slots[i])) == 0) ++i;
    assert(i < fanout && "non-empty tree must have a populated slot");
    if (IsContent(s)) return AsContent(s);
    node = AsNode(s);
    bit_off += width;
  }
}

const PrefixTree::ContentNode* PrefixTree::MaxContent() const {
  if (num_keys() == 0) return nullptr;
  const Node* node = root_;
  size_t bit_off = 0;
  for (;;) {
    size_t width = FragWidth(bit_off);
    size_t i = size_t{1} << width;
    Slot s = 0;
    while (i > 0 && (s = LoadSlot(&node->slots[i - 1])) == 0) --i;
    assert(i > 0 && "non-empty tree must have a populated slot");
    if (IsContent(s)) return AsContent(s);
    node = AsNode(s);
    bit_off += width;
  }
}

void PrefixTree::EnsureChainForMerge(const uint8_t* key,
                                     size_t branch_bit_off) {
  assert(num_keys() == 0 && "chain pre-build requires an empty tree");
  MergeStats stats;
  Node* node = root_;
  size_t bit_off = 0;
  while (bit_off < branch_bit_off) {
    size_t width = FragWidth(bit_off);
    uint32_t frag = ExtractFragment(key, config_.key_len, bit_off, width);
    Slot& slot = node->slots[frag];
    if (slot == 0) {
      Node* inner = NewNode(&stats);
      StoreSlot(&slot, reinterpret_cast<uintptr_t>(inner));
    }
    assert(!IsContent(slot));
    node = AsNode(slot);
    bit_off += width;
  }
  AddMergedKeyStats(stats);
}

const PrefixTree::ContentNode* PrefixTree::Find(const uint8_t* key) const {
  const Node* node = root_;
  size_t bit_off = 0;
  for (;;) {
    size_t width = FragWidth(bit_off);
    uint32_t frag =
        ExtractFragment(key, config_.key_len, bit_off, width);
    Slot slot = LoadSlot(&node->slots[frag]);
    if (slot == 0) return nullptr;
    if (IsContent(slot)) {
      const ContentNode* c = AsContent(slot);
      if (CompareKeys(c->key(), key, config_.key_len) == 0) return c;
      return nullptr;
    }
    node = AsNode(slot);
    bit_off += width;
  }
}

const ValueList* PrefixTree::Lookup(const uint8_t* key) const {
  const ContentNode* c = Find(key);
  return c == nullptr ? nullptr : ValuesOf(c);
}

const std::byte* PrefixTree::FindPayload(const uint8_t* key) const {
  const ContentNode* c = Find(key);
  return c == nullptr ? nullptr : PayloadOf(c);
}

void PrefixTree::BatchLookup(std::span<LookupJob> jobs) const {
  // Algorithm 1 from the paper: process the batch level by level. Each
  // round computes every unfinished job's child slot and issues a prefetch
  // for it, so that by the time the next round dereferences the child the
  // cache line is (ideally) already in L1.
  for (auto& job : jobs) {
    job.node = root_;
    job.bit_off = 0;
    job.done = false;
    job.result = nullptr;
    PrefetchRead(&root_->slots[Frag(job.key, 0)]);
  }
  bool done = false;
  while (!done) {
    done = true;
    for (auto& job : jobs) {
      if (job.done) continue;
      size_t width = FragWidth(job.bit_off);
      uint32_t frag = ExtractFragment(job.key, config_.key_len, job.bit_off,
                                      width);
      Slot slot = LoadSlot(&job.node->slots[frag]);
      if (slot == 0) {
        job.done = true;
        job.result = nullptr;
        continue;
      }
      if (IsContent(slot)) {
        const ContentNode* c = AsContent(slot);
        job.result = CompareKeys(c->key(), job.key, config_.key_len) == 0
                         ? c
                         : nullptr;
        job.done = true;
        continue;
      }
      job.node = AsNode(slot);
      job.bit_off += static_cast<uint32_t>(width);
      // Prefetch the slot this job will inspect next round.
      size_t next_width = FragWidth(job.bit_off);
      uint32_t next_frag = ExtractFragment(job.key, config_.key_len,
                                           job.bit_off, next_width);
      PrefetchRead(&job.node->slots[next_frag]);
      done = false;
    }
  }
}

void PrefixTree::BatchInsert(std::span<InsertJob> jobs) {
  // Inserts mutate the tree shape, so jobs are applied sequentially; the
  // batching win is the prefetch of each job's root-level slot ahead of
  // time plus the amortized call overhead (§2.3).
  for (const auto& job : jobs) {
    PrefetchRead(&root_->slots[Frag(job.key, 0)]);
  }
  for (const auto& job : jobs) {
    Insert(job.key, job.value);
  }
}

}  // namespace qppt
