// Separate-chaining hash table — the "GLIB" comparator of Figure 3.
//
// GLib's GHashTable is a classic chained table: an array of bucket heads,
// collision resolution via linked nodes, growth on load factor. We
// reproduce that design (nodes are arena-allocated, table doubles at load
// 0.75, MurmurHash3 finalizer as the mixer). The paper uses hash tables as
// the stand-in for what traditional join/group operators build internally;
// the comparison of interest is the *shape* trie-vs-hash, not GLib's exact
// constants.

#ifndef QPPT_INDEX_CHAINED_HASH_TABLE_H_
#define QPPT_INDEX_CHAINED_HASH_TABLE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "util/arena.h"
#include "util/bits.h"

namespace qppt {

class ChainedHashTable {
 public:
  explicit ChainedHashTable(size_t initial_capacity = 64);

  ChainedHashTable(const ChainedHashTable&) = delete;
  ChainedHashTable& operator=(const ChainedHashTable&) = delete;
  ChainedHashTable(ChainedHashTable&&) = default;
  ChainedHashTable& operator=(ChainedHashTable&&) = default;

  size_t size() const { return size_; }

  // Insert-or-update (Fig. 3(a) workload semantics).
  void Upsert(uint64_t key, uint64_t value);

  // Returns the value for `key` if present.
  std::optional<uint64_t> Find(uint64_t key) const;

  size_t MemoryUsage() const {
    return buckets_.capacity() * sizeof(Node*) + arena_.bytes_reserved();
  }

 private:
  struct Node {
    uint64_t key;
    uint64_t value;
    Node* next;
  };

  void Grow();
  size_t BucketOf(uint64_t key) const {
    return Mix64(key) & (buckets_.size() - 1);
  }

  std::vector<Node*> buckets_;
  Arena arena_;
  size_t size_ = 0;
};

}  // namespace qppt

#endif  // QPPT_INDEX_CHAINED_HASH_TABLE_H_
