// KISS-Tree (§2.2; Kissinger et al. [9]).
//
// A prefix-tree-derived index specialized for 32-bit keys with exactly two
// levels: the first key fragment (26 bits by default) directly indexes a
// *virtually allocated* root array of 32-bit compact pointers; the second
// fragment (remaining 6 bits) indexes the level-2 node. A key lookup thus
// needs at most 3 memory accesses (root entry, level-2 node, content),
// versus up to 9 for a k'=4 prefix tree on 32-bit keys.
//
// The root array is 2^26 x 4 B = 256 MiB of *virtual* memory, mapped with
// MAP_NORESERVE so physical 4 KiB pages materialize only when a pointer is
// first written — the paper's on-demand allocation trick. root_bits is
// configurable so tests can run tiny trees.
//
// Level-2 nodes come in two flavors:
//   * uncompressed — a flat array of 2^(32-root_bits) entries, updated in
//     place. QPPT uses this for dense key ranges to avoid copy overhead.
//   * bitmask-compressed — {bitmask, packed entries[popcount]}; adding a
//     slot performs an RCU-style copy of the node and swaps the compact
//     pointer, as in the original KISS-Tree.
//
// Entries hold either a single inline value (low bit tagged) or a pointer
// to a §2.4 duplicate ValueList / aggregation payload. Inline values must
// fit in 63 bits (true for rids and arena offsets).

#ifndef QPPT_INDEX_KISS_TREE_H_
#define QPPT_INDEX_KISS_TREE_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "dbg/tsan.h"
#include "index/duplicate_chain.h"
#include "util/arena.h"
#include "util/prefetch.h"

namespace qppt {

// Slab allocator addressed by 32-bit compact handles (8-byte granularity),
// used for level-2 nodes so root entries stay 4 bytes. Chunks are anonymous
// MAP_NORESERVE mappings, so allocations come back zero-filled and physical
// pages materialize only when a slot is first written — the same on-demand
// allocation trick the paper uses for the root array. This is what keeps
// wide uncompressed level-2 nodes (small root_bits) cheap on sparse keys.
//
// The chunk directory is itself a fixed MAP_NORESERVE mapping (256 KiB
// virtual for the maximal 32 Ki chunks, created on first Allocate so
// empty slabs stay free to construct), so Resolve() never observes a
// reallocating container — the property the partitioned parallel merge
// relies on when workers Allocate() (mutex-guarded, opt-in) while other
// workers Resolve() handles concurrently.
class CompactSlab {
 public:
  static constexpr size_t kChunkBytes = size_t{1} << 20;  // 1 MiB
  static constexpr size_t kGranularity = 8;
  static constexpr uint32_t kNullHandle = 0;

  CompactSlab() = default;
  ~CompactSlab();
  CompactSlab(const CompactSlab&) = delete;
  CompactSlab& operator=(const CompactSlab&) = delete;
  CompactSlab(CompactSlab&& other) noexcept;
  CompactSlab& operator=(CompactSlab&&) = delete;

  // Allocates `bytes` (rounded up to 8) of zero-filled memory and returns
  // a non-zero handle. Handles are never freed (the tree's RCU garbage
  // stays in the slab), so every allocation is virgin zero pages.
  uint32_t Allocate(size_t bytes);

  // Same contract as Arena::set_concurrent(): while on, Allocate() is
  // mutex-guarded so concurrent merge workers can share the slab.
  void set_concurrent(bool on) {
    if (on && mu_ == nullptr) mu_ = std::make_unique<std::mutex>();
    concurrent_ = on;
  }

  void* Resolve(uint32_t handle) {
    uint32_t unit = handle - 1;
    return chunk_dir_[unit >> kUnitsPerChunkLog2] +
           (unit & (kUnitsPerChunk - 1)) * kGranularity;
  }
  const void* Resolve(uint32_t handle) const {
    return const_cast<CompactSlab*>(this)->Resolve(handle);
  }

  size_t bytes_reserved() const { return num_chunks_ * kChunkBytes; }

  // Physical bytes actually materialized by the OS (resident pages, via
  // mincore). With lazy-zero chunks this is what a sparse tree truly
  // costs; bytes_reserved() only counts virtual reservation.
  size_t bytes_resident() const;

 private:
  static constexpr size_t kUnitsPerChunk = kChunkBytes / kGranularity;
  static constexpr size_t kUnitsPerChunkLog2 = 17;
  static_assert((size_t{1} << kUnitsPerChunkLog2) == kUnitsPerChunk);
  // 2^32 addressable units / units per chunk = most chunks a slab can hold.
  static constexpr size_t kMaxChunks =
      (uint64_t{1} << 32) / kUnitsPerChunk;

  uint32_t AllocateLocked(size_t bytes);

  char** chunk_dir_ = nullptr;  // MAP_NORESERVE array of kMaxChunks slots
  size_t num_chunks_ = 0;
  size_t used_in_chunk_ = kChunkBytes;  // forces allocation on first use
  bool concurrent_ = false;
  std::unique_ptr<std::mutex> mu_;  // created lazily by set_concurrent
};

class KissTree {
 public:
  enum class PayloadMode : uint8_t { kValues, kAggregate };

  // Root entries and level-2 entry slots are shared with lock-free
  // readers: the single writer (engine write path, §7's no-rebalancing
  // argument) publishes with release stores, readers load with acquire.
  // On x86 both compile to plain moves.
  static uint32_t LoadRootSlot(const uint32_t* p) {
    uint32_t v = __atomic_load_n(p, __ATOMIC_ACQUIRE);
    QPPT_TSAN_ACQUIRE(p);
    return v;
  }
  // pairs-with: kiss-root-slot (scripts/analyze/atomics_pairs.txt)
  static void StoreRootSlot(uint32_t* p, uint32_t v) {
    QPPT_TSAN_RELEASE(p);
    __atomic_store_n(p, v, __ATOMIC_RELEASE);
  }
  static uint64_t LoadEntry(const uint64_t* p) {
    uint64_t v = __atomic_load_n(p, __ATOMIC_ACQUIRE);
    QPPT_TSAN_ACQUIRE(p);
    return v;
  }
  // pairs-with: kiss-l2-entry (scripts/analyze/atomics_pairs.txt)
  static void StoreEntry(uint64_t* p, uint64_t v) {
    QPPT_TSAN_RELEASE(p);
    __atomic_store_n(p, v, __ATOMIC_RELEASE);
  }

  struct Config {
    size_t root_bits = 26;  // level-1 fragment width (paper: 26)
    PayloadMode mode = PayloadMode::kValues;
    size_t agg_payload_size = 0;
    // Bitmask-compress level-2 nodes (RCU copy on slot addition). QPPT
    // disables this for dense value ranges (§2.2).
    bool compress = false;
  };

  KissTree() : KissTree(Config{}) {}
  explicit KissTree(Config config);
  ~KissTree();

  KissTree(const KissTree&) = delete;
  KissTree& operator=(const KissTree&) = delete;
  KissTree(KissTree&& other) noexcept;
  KissTree& operator=(KissTree&&) = delete;

  const Config& config() const { return config_; }
  size_t num_keys() const {
    // relaxed: advisory statistic; staleness only widens a scan bound.
    return num_keys_.load(std::memory_order_relaxed);
  }
  uint32_t min_key() const {
    // relaxed: advisory scan bound (see num_keys).
    return min_key_.load(std::memory_order_relaxed);
  }
  uint32_t max_key() const {
    // relaxed: advisory scan bound (see num_keys).
    return max_key_.load(std::memory_order_relaxed);
  }
  bool empty() const { return num_keys() == 0; }

  // Bytes of physical memory attributable to the tree (slab + value arena
  // + touched root pages; the untouched remainder of the 256 MiB root is
  // virtual only).
  size_t MemoryUsage() const;

  // --- kValues mode -------------------------------------------------------

  // Appends `value` to the multiset at `key`. value < 2^63.
  void Insert(uint32_t key, uint64_t value);

  // Insert-or-update: sets `key`'s values to exactly {value} (Fig. 3(a)).
  void Upsert(uint32_t key, uint64_t value);

  // Resolved view of a key's values.
  class ValueRef {
   public:
    ValueRef() = default;
    ValueRef(uint64_t inline_value, const ValueList* list)
        : inline_value_(inline_value), list_(list) {}

    uint32_t size() const {
      return list_ != nullptr ? list_->size() : 1;
    }
    template <typename F>
    void ForEach(F&& fn) const {
      if (list_ != nullptr) {
        list_->ForEach(fn);
      } else {
        fn(inline_value_);
      }
    }
    uint64_t front() const {
      return list_ != nullptr ? list_->first() : inline_value_;
    }

   private:
    uint64_t inline_value_ = 0;
    const ValueList* list_ = nullptr;
  };

  // Returns true and fills `*out` if `key` is present.
  bool Lookup(uint32_t key, ValueRef* out) const;
  bool Contains(uint32_t key) const {
    ValueRef ignored;
    return Lookup(key, &ignored);
  }

  // --- kAggregate mode ------------------------------------------------------

  // Returns the payload accumulator for `key`, creating a zero-filled one
  // if absent (*created reports which).
  std::byte* FindOrCreatePayload(uint32_t key, bool* created);
  const std::byte* FindPayload(uint32_t key) const;

  // --- scans ----------------------------------------------------------------

  // In-order traversal. F: void(uint32_t key, const ValueRef&) for kValues
  // trees; use ScanPayloads for kAggregate trees.
  template <typename F>
  void ScanAll(F&& fn) const {
    ScanRangeImpl(0, std::numeric_limits<uint32_t>::max(), fn);
  }
  template <typename F>
  void ScanRange(uint32_t lo, uint32_t hi, F&& fn) const {
    ScanRangeImpl(lo, hi, fn);
  }

  // F: void(uint32_t key, const std::byte* payload), ascending key order.
  template <typename F>
  void ScanPayloads(F&& fn) const;

  // --- batch processing (§2.3) -----------------------------------------------

  struct LookupJob {
    uint32_t key = 0;     // in
    bool found = false;   // out
    ValueRef values;      // out (valid if found)
    // internal
    uint32_t l2_handle = 0;
  };

  // Software-pipelined batch lookup: round 1 prefetches all root entries,
  // round 2 resolves them and prefetches the level-2 slots, round 3 reads
  // the entries. Hides DRAM latency when the tree exceeds the caches.
  void BatchLookup(std::span<LookupJob> jobs) const;

  struct UpsertJob {
    uint32_t key = 0;
    uint64_t value = 0;
  };
  // Batched insert-or-update with the same prefetch pipeline.
  void BatchUpsert(std::span<UpsertJob> jobs);

  // Batched duplicate-append (kValues).
  void BatchInsert(std::span<UpsertJob> jobs);

  // --- partitioned parallel merge support (engine layer) ----------------------
  //
  // Between BeginConcurrentInserts() and EndConcurrentInserts(),
  // InsertForMerge() may be called from multiple threads as long as each
  // caller stays within a disjoint, root-bucket-aligned key range (so no
  // two callers ever touch the same level-2 node; allocators are
  // mutex-guarded while the window is open). Key statistics
  // (num_keys/min/max) are NOT updated by InsertForMerge — callers
  // accumulate the returned created-key counts and apply them once via
  // AddMergedKeyStats() after the fork-join.

  void BeginConcurrentInserts();
  void EndConcurrentInserts();
  // Appends like Insert(); returns true when `key` was new.
  bool InsertForMerge(uint32_t key, uint64_t value);
  // FindOrCreatePayload without the key-statistics update (kAggregate
  // mode) — the aggregated partitioned merge's per-range workers create
  // groups concurrently and fold the created-key counts back in via
  // AddMergedKeyStats() after the fork-join.
  std::byte* FindOrCreatePayloadForMerge(uint32_t key, bool* created);
  // Folds externally accumulated key statistics back in. [lo, hi] is the
  // key span the merged tuples came from (ignored when new_keys == 0).
  void AddMergedKeyStats(size_t new_keys, uint32_t lo, uint32_t hi);

  // --- structural access for the synchronous index scan (§4.2) ---------------

  size_t root_size() const { return root_size_; }
  size_t level2_bits() const { return level2_bits_; }
  // Compact pointer of root bucket i (0 = empty).
  uint32_t RootEntry(size_t i) const { return LoadRootSlot(&root_[i]); }
  const uint32_t* root_data() const { return root_; }

  // Iterates the used slots of the level-2 node behind root entry
  // `handle`. F: void(uint32_t slot, uint64_t entry).
  template <typename F>
  void ForEachLevel2Slot(uint32_t handle, F&& fn) const;

  // Entry at `slot` of the level-2 node behind `handle` (0 = empty).
  uint64_t Level2Entry(uint32_t handle, uint32_t slot) const {
    if (handle == CompactSlab::kNullHandle) return 0;
    if (!config_.compress) {
      return LoadEntry(UncompressedEntries(handle) + slot);
    }
    const uint64_t* node = UncompressedEntries(handle);
    uint64_t mask = LoadEntry(node);
    uint64_t slot_bit = uint64_t{1} << slot;
    if (!(mask & slot_bit)) return 0;
    return LoadEntry(
        node + 1 + static_cast<size_t>(std::popcount(mask & (slot_bit - 1))));
  }

  // Decodes a level-2 entry into a ValueRef (kValues mode).
  ValueRef DecodeEntry(uint64_t entry) const {
    if (entry & 1) return ValueRef(entry >> 1, nullptr);
    return ValueRef(0, reinterpret_cast<const ValueList*>(entry));
  }
  static const std::byte* EntryPayload(uint64_t entry) {
    return reinterpret_cast<const std::byte*>(entry);
  }

 private:
  // Level-2 node layouts. Uncompressed: uint64 entries[l2_fanout].
  // Compressed: uint64 bitmask; uint64 entries[popcount(bitmask)].
  uint64_t* UncompressedEntries(uint32_t handle) {
    return static_cast<uint64_t*>(slab_.Resolve(handle));
  }
  const uint64_t* UncompressedEntries(uint32_t handle) const {
    return static_cast<const uint64_t*>(slab_.Resolve(handle));
  }

  // Returns a pointer to the entry slot for `key`, creating the level-2
  // node (and growing compressed nodes via RCU copy) as needed.
  uint64_t* FindOrCreateEntrySlot(uint32_t key);
  // Returns the entry for `key`, or 0.
  uint64_t FindEntry(uint32_t key) const;

  void AppendToEntry(uint64_t* entry, uint64_t value);
  // Key stats are advisory scan bounds; single writer, relaxed readers.
  void NoteKey(uint32_t key, bool created) {
    if (created) {
      // relaxed (all five): advisory stats, single writer; readers tolerate
      // staleness (a too-wide scan bound, never a wrong result).
      num_keys_.fetch_add(1, std::memory_order_relaxed);
      if (key < min_key_.load(std::memory_order_relaxed)) {
        min_key_.store(key, std::memory_order_relaxed);  // relaxed: ditto
      }
      if (key > max_key_.load(std::memory_order_relaxed)) {  // relaxed: ditto
        max_key_.store(key, std::memory_order_relaxed);  // relaxed: ditto
      }
    }
  }

  template <typename F>
  void ScanRangeImpl(uint32_t lo, uint32_t hi, F&& fn) const;

  Config config_;
  size_t level2_bits_;
  size_t l2_fanout_;
  size_t root_size_;
  uint32_t* root_ = nullptr;  // mmap'd, MAP_NORESERVE
  size_t root_map_bytes_ = 0;
  CompactSlab slab_;
  Arena value_arena_;  // ValueLists and aggregate payload blocks
  PageArena dup_arena_;
  std::atomic<size_t> num_keys_{0};
  std::atomic<uint32_t> min_key_{std::numeric_limits<uint32_t>::max()};
  std::atomic<uint32_t> max_key_{0};
};

// ---- template member definitions -------------------------------------------

template <typename F>
void KissTree::ForEachLevel2Slot(uint32_t handle, F&& fn) const {
  if (handle == CompactSlab::kNullHandle) return;
  if (!config_.compress) {
    const uint64_t* entries = UncompressedEntries(handle);
    for (size_t slot = 0; slot < l2_fanout_; ++slot) {
      uint64_t entry = LoadEntry(entries + slot);
      if (entry != 0) {
        fn(static_cast<uint32_t>(slot), entry);
      }
    }
  } else {
    const uint64_t* node = UncompressedEntries(handle);
    uint64_t mask = LoadEntry(node);
    const uint64_t* packed = node + 1;
    size_t rank = 0;
    while (mask != 0) {
      uint32_t slot = static_cast<uint32_t>(std::countr_zero(mask));
      fn(slot, LoadEntry(packed + rank));
      ++rank;
      mask &= mask - 1;
    }
  }
}

template <typename F>
void KissTree::ScanRangeImpl(uint32_t lo, uint32_t hi, F&& fn) const {
  if (num_keys() == 0) return;
  uint32_t min_k = min_key();
  uint32_t max_k = max_key();
  if (lo < min_k) lo = min_k;
  if (hi > max_k) hi = max_k;
  if (lo > hi) return;
  size_t first_bucket = lo >> level2_bits_;
  size_t last_bucket = hi >> level2_bits_;
  for (size_t b = first_bucket; b <= last_bucket; ++b) {
    uint32_t handle = LoadRootSlot(&root_[b]);
    if (handle == CompactSlab::kNullHandle) continue;
    ForEachLevel2Slot(handle, [&](uint32_t slot, uint64_t entry) {
      uint32_t key = static_cast<uint32_t>((b << level2_bits_) | slot);
      if (key < lo || key > hi) return;
      fn(key, DecodeEntry(entry));
    });
  }
}

template <typename F>
void KissTree::ScanPayloads(F&& fn) const {
  if (num_keys() == 0) return;
  size_t first_bucket = min_key() >> level2_bits_;
  size_t last_bucket = max_key() >> level2_bits_;
  for (size_t b = first_bucket; b <= last_bucket; ++b) {
    uint32_t handle = LoadRootSlot(&root_[b]);
    if (handle == CompactSlab::kNullHandle) continue;
    ForEachLevel2Slot(handle, [&](uint32_t slot, uint64_t entry) {
      uint32_t key = static_cast<uint32_t>((b << level2_bits_) | slot);
      fn(key, EntryPayload(entry));
    });
  }
}

}  // namespace qppt

#endif  // QPPT_INDEX_KISS_TREE_H_
