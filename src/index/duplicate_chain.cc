#include "index/duplicate_chain.h"

#include <cstdint>

namespace qppt {

void ValueList::Append(uint64_t value, PageArena* arena) {
  if (count_ == 0) {
    first_ = value;
    count_ = 1;
    return;
  }
  Segment* seg = head_;
  if (seg == nullptr || seg->used == seg->capacity) {
    // Allocate the next segment: double the previous size, capped at the
    // page size. Total segment bytes (header + values) is a power of two,
    // which PageArena packs without crossing page boundaries.
    size_t prev_bytes =
        seg == nullptr ? kFirstSegmentBytes / 2
                       : sizeof(Segment) + seg->capacity * sizeof(uint64_t);
    size_t bytes = prev_bytes * 2;
    if (bytes > kMaxSegmentBytes) bytes = kMaxSegmentBytes;
    if (bytes < kFirstSegmentBytes) bytes = kFirstSegmentBytes;
    Segment* fresh = static_cast<Segment*>(arena->Allocate(bytes));
    fresh->next = seg;
    fresh->capacity =
        static_cast<uint32_t>((bytes - sizeof(Segment)) / sizeof(uint64_t));
    fresh->used = 0;
    head_ = fresh;
    seg = fresh;
  }
  seg->values()[seg->used++] = value;
  ++count_;
}

}  // namespace qppt
