#include "index/duplicate_chain.h"

#include <cstdint>

namespace qppt {

void ValueList::Append(uint64_t value, PageArena* arena) {
  uint32_t count = count_.load(std::memory_order_relaxed);
  if (count == 0) {
    // Publish the inline value before the count flips to non-zero.
    first_ = value;
    count_.store(1, std::memory_order_release);
    return;
  }
  Segment* seg = head_.load(std::memory_order_relaxed);
  if (seg == nullptr ||
      seg->used.load(std::memory_order_relaxed) == seg->capacity) {
    // Allocate the next segment: double the previous size, capped at the
    // page size. Total segment bytes (header + values) is a power of two,
    // which PageArena packs without crossing page boundaries.
    size_t prev_bytes =
        seg == nullptr ? kFirstSegmentBytes / 2
                       : sizeof(Segment) + seg->capacity * sizeof(uint64_t);
    size_t bytes = prev_bytes * 2;
    if (bytes > kMaxSegmentBytes) bytes = kMaxSegmentBytes;
    if (bytes < kFirstSegmentBytes) bytes = kFirstSegmentBytes;
    Segment* fresh = static_cast<Segment*>(arena->Allocate(bytes));
    fresh->next = seg;
    fresh->capacity =
        static_cast<uint32_t>((bytes - sizeof(Segment)) / sizeof(uint64_t));
    fresh->used.store(0, std::memory_order_relaxed);
    // Fully initialized before readers can reach it.
    head_.store(fresh, std::memory_order_release);
    seg = fresh;
  }
  uint32_t used = seg->used.load(std::memory_order_relaxed);
  seg->values()[used] = value;
  // The slot is published before 'used' and before the total count, so a
  // reader never visits a half-written value.
  seg->used.store(used + 1, std::memory_order_release);
  count_.store(count + 1, std::memory_order_release);
}

}  // namespace qppt
