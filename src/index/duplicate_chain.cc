#include "index/duplicate_chain.h"

#include <cstdint>

namespace qppt {

void ValueList::Append(uint64_t value, PageArena* arena) {
  // relaxed: single writer reading back its own counter.
  uint32_t count = count_.load(std::memory_order_relaxed);
  if (count == 0) {
    // Publish the inline value before the count flips to non-zero.
    first_ = value;
    // pairs-with: dup-count
    count_.store(1, std::memory_order_release);
    return;
  }
  // relaxed (both loads): single writer reading back its own installs.
  Segment* seg = head_.load(std::memory_order_relaxed);
  if (seg == nullptr ||
      seg->used.load(std::memory_order_relaxed) == seg->capacity) {
    // Allocate the next segment: double the previous size, capped at the
    // page size. Total segment bytes (header + values) is a power of two,
    // which PageArena packs without crossing page boundaries.
    size_t prev_bytes =
        seg == nullptr ? kFirstSegmentBytes / 2
                       : sizeof(Segment) + seg->capacity * sizeof(uint64_t);
    size_t bytes = prev_bytes * 2;
    if (bytes > kMaxSegmentBytes) bytes = kMaxSegmentBytes;
    if (bytes < kFirstSegmentBytes) bytes = kFirstSegmentBytes;
    Segment* fresh = static_cast<Segment*>(arena->Allocate(bytes));
    fresh->next = seg;
    fresh->capacity =
        static_cast<uint32_t>((bytes - sizeof(Segment)) / sizeof(uint64_t));
    fresh->used.store(0, std::memory_order_relaxed);  // relaxed: the
    // head release store below publishes the initialized segment.
    // Fully initialized before readers can reach it.
    // pairs-with: dup-head
    head_.store(fresh, std::memory_order_release);
    seg = fresh;
  }
  // relaxed: single writer reading back its own counter.
  uint32_t used = seg->used.load(std::memory_order_relaxed);
  seg->values()[used] = value;
  // The slot is published before 'used' and before the total count, so a
  // reader never visits a half-written value.
  // pairs-with: dup-seg-used
  seg->used.store(used + 1, std::memory_order_release);
  // pairs-with: dup-count
  count_.store(count + 1, std::memory_order_release);
}

}  // namespace qppt
