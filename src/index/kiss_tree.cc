#include "index/kiss_tree.h"

#include "dbg/lock_rank.h"
#include "util/failpoint.h"

#include <bit>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <sys/mman.h>
#include <unistd.h>
#include <vector>

namespace qppt {

size_t CompactSlab::bytes_resident() const {
  const size_t page_size = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  size_t pages = 0;
  std::vector<unsigned char> vec(kChunkBytes / page_size);
  for (size_t i = 0; i < num_chunks_; ++i) {
    if (::mincore(chunk_dir_[i], kChunkBytes, vec.data()) == 0) {
      for (unsigned char v : vec) pages += v & 1;
    }
  }
  return pages * page_size;
}

CompactSlab::~CompactSlab() {
  if (chunk_dir_ == nullptr) return;
  for (size_t i = 0; i < num_chunks_; ++i) {
    ::munmap(chunk_dir_[i], kChunkBytes);
  }
  ::munmap(chunk_dir_, kMaxChunks * sizeof(char*));
}

CompactSlab::CompactSlab(CompactSlab&& other) noexcept
    : chunk_dir_(other.chunk_dir_),
      num_chunks_(other.num_chunks_),
      used_in_chunk_(other.used_in_chunk_),
      concurrent_(other.concurrent_),
      mu_(std::move(other.mu_)) {
  other.chunk_dir_ = nullptr;
  other.num_chunks_ = 0;
  other.used_in_chunk_ = kChunkBytes;
}

uint32_t CompactSlab::Allocate(size_t bytes) {
  if (concurrent_) {
    dbg::RankedLockGuard lock(dbg::LockRank::kAllocator, *mu_);
    return AllocateLocked(bytes);
  }
  return AllocateLocked(bytes);
}

uint32_t CompactSlab::AllocateLocked(size_t bytes) {
  QPPT_FAILPOINT(slab_grow);
  bytes = (bytes + kGranularity - 1) & ~(kGranularity - 1);
  assert(bytes <= kChunkBytes);
  if (chunk_dir_ == nullptr) {
    // First allocation: map the chunk directory. Tiny virtually
    // (256 KiB), MAP_NORESERVE, and fixed — its slots never move, which
    // keeps Resolve() safe against concurrent Allocate(), and empty
    // slabs (every fresh CloneEmpty partial) never pay for it.
    void* dir = ::mmap(nullptr, kMaxChunks * sizeof(char*),
                       PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (dir == MAP_FAILED) {
      std::perror("CompactSlab: mmap of chunk directory failed");
      std::abort();
    }
    chunk_dir_ = static_cast<char**>(dir);
  }
  if (used_in_chunk_ + bytes > kChunkBytes) {
    // Anonymous mappings are zero-filled on demand, so a freshly allocated
    // node needs no memset and costs physical memory only for the pages
    // its written slots land on.
    void* mem = ::mmap(nullptr, kChunkBytes, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (mem == MAP_FAILED) {
      std::perror("CompactSlab: mmap of chunk failed");
      std::abort();
    }
    assert(num_chunks_ < kMaxChunks);
    chunk_dir_[num_chunks_++] = static_cast<char*>(mem);
    used_in_chunk_ = 0;
  }
  size_t chunk = num_chunks_ - 1;
  size_t unit = (chunk << kUnitsPerChunkLog2) |
                (used_in_chunk_ / kGranularity);
  used_in_chunk_ += bytes;
  return static_cast<uint32_t>(unit + 1);
}

KissTree::KissTree(Config config)
    : config_(config),
      level2_bits_(32 - config.root_bits),
      l2_fanout_(size_t{1} << level2_bits_),
      root_size_(size_t{1} << config.root_bits),
      value_arena_(/*block_size=*/256 * 1024) {
  // Level-2 fanout is 2^(32 - root_bits); keep nodes between 64 entries
  // (the paper's 26/6 split) and 64 Ki entries (tiny test trees).
  assert(config.root_bits >= 16 && config.root_bits <= 26);
  // The bitmask compression uses one uint64 mask, so it requires the
  // paper's exact 26/6 split (64 slots per level-2 node).
  assert(!config.compress || level2_bits_ <= 6);
  root_map_bytes_ = root_size_ * sizeof(uint32_t);
  // The paper's trick: reserve the root virtually; the OS materializes
  // zero-filled 4 KiB pages on first write, so a sparse tree never pays
  // for the full 256 MiB root.
  void* mem = ::mmap(nullptr, root_map_bytes_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (mem == MAP_FAILED) {
    std::perror("KissTree: mmap of root array failed");
    std::abort();
  }
  root_ = static_cast<uint32_t*>(mem);
}

KissTree::~KissTree() {
  if (root_ != nullptr) {
    ::munmap(root_, root_map_bytes_);
  }
}

KissTree::KissTree(KissTree&& other) noexcept
    : config_(other.config_),
      level2_bits_(other.level2_bits_),
      l2_fanout_(other.l2_fanout_),
      root_size_(other.root_size_),
      root_(other.root_),
      root_map_bytes_(other.root_map_bytes_),
      slab_(std::move(other.slab_)),
      value_arena_(std::move(other.value_arena_)),
      dup_arena_(std::move(other.dup_arena_)),
      // relaxed: move construction has exclusive access to both objects.
      num_keys_(other.num_keys_.load(std::memory_order_relaxed)),
      min_key_(other.min_key_.load(std::memory_order_relaxed)),
      max_key_(other.max_key_.load(std::memory_order_relaxed)) {
  other.root_ = nullptr;
  other.root_map_bytes_ = 0;
  // relaxed: move construction has exclusive access to both objects.
  other.num_keys_.store(0, std::memory_order_relaxed);
}

size_t KissTree::MemoryUsage() const {
  // The root array is virtual; attribute only an estimate of the touched
  // portion (one 4 KiB page per 1024 used buckets in the worst case is
  // workload-dependent, so we report the span between min and max bucket,
  // capped by the map size).
  size_t root_touched = 0;
  if (num_keys() > 0) {
    size_t first = (min_key() >> level2_bits_) * sizeof(uint32_t) / 4096;
    size_t last = (max_key() >> level2_bits_) * sizeof(uint32_t) / 4096;
    root_touched = (last - first + 1) * 4096;
  }
  return root_touched + slab_.bytes_resident() +
         value_arena_.bytes_reserved() + dup_arena_.bytes_reserved();
}

uint64_t* KissTree::FindOrCreateEntrySlot(uint32_t key) {
  size_t bucket = key >> level2_bits_;
  uint32_t slot = key & static_cast<uint32_t>(l2_fanout_ - 1);
  // Writer-side: mutations are externally serialized, so plain loads of
  // root/entry state are safe; every publication store is release so
  // lock-free readers see initialized nodes.
  uint32_t handle = root_[bucket];
  if (!config_.compress) {
    if (handle == CompactSlab::kNullHandle) {
      // Slab memory is zero on allocation (anonymous mapping), so the new
      // node's empty slots need no explicit clear.
      handle = slab_.Allocate(l2_fanout_ * sizeof(uint64_t));
      StoreRootSlot(&root_[bucket], handle);
    }
    return UncompressedEntries(handle) + slot;
  }
  // Compressed node: {bitmask, packed entries}. Slot additions copy the
  // node (RCU-style) and swap the compact pointer — this is the update
  // overhead QPPT avoids for dense ranges by disabling compression (§2.2).
  uint64_t slot_bit = uint64_t{1} << slot;
  if (handle == CompactSlab::kNullHandle) {
    uint32_t fresh = slab_.Allocate(2 * sizeof(uint64_t));
    uint64_t* node = UncompressedEntries(fresh);
    node[0] = slot_bit;
    node[1] = 0;
    StoreRootSlot(&root_[bucket], fresh);
    return node + 1;
  }
  uint64_t* node = UncompressedEntries(handle);
  uint64_t mask = node[0];
  size_t rank = static_cast<size_t>(std::popcount(mask & (slot_bit - 1)));
  if (mask & slot_bit) {
    return node + 1 + rank;
  }
  size_t old_count = static_cast<size_t>(std::popcount(mask));
  uint32_t fresh = slab_.Allocate((old_count + 2) * sizeof(uint64_t));
  uint64_t* copy = UncompressedEntries(fresh);
  copy[0] = mask | slot_bit;
  // Copy entries below the new slot, leave a hole, copy the rest.
  std::memcpy(copy + 1, node + 1, rank * sizeof(uint64_t));
  copy[1 + rank] = 0;
  std::memcpy(copy + 2 + rank, node + 1 + rank,
              (old_count - rank) * sizeof(uint64_t));
  // Old node becomes RCU garbage in the slab; in-flight readers keep
  // traversing it safely.
  StoreRootSlot(&root_[bucket], fresh);
  return copy + 1 + rank;
}

uint64_t KissTree::FindEntry(uint32_t key) const {
  size_t bucket = key >> level2_bits_;
  uint32_t slot = key & static_cast<uint32_t>(l2_fanout_ - 1);
  uint32_t handle = LoadRootSlot(&root_[bucket]);
  if (handle == CompactSlab::kNullHandle) return 0;
  if (!config_.compress) {
    return LoadEntry(UncompressedEntries(handle) + slot);
  }
  const uint64_t* node = UncompressedEntries(handle);
  uint64_t mask = LoadEntry(node);
  uint64_t slot_bit = uint64_t{1} << slot;
  if (!(mask & slot_bit)) return 0;
  size_t rank = static_cast<size_t>(std::popcount(mask & (slot_bit - 1)));
  return LoadEntry(node + 1 + rank);
}

void KissTree::AppendToEntry(uint64_t* entry, uint64_t value) {
  assert(value < (uint64_t{1} << 63) && "inline-tagged values must fit 63 bits");
  uint64_t cur = *entry;  // writer-owned; readers use LoadEntry
  if (cur == 0) {
    StoreEntry(entry, (value << 1) | 1);
    return;
  }
  if (cur & 1) {
    // Second value for this key: spill the inline value into a list, fully
    // built before the entry swings from tagged-inline to pointer.
    ValueList* list =
        new (value_arena_.Allocate(sizeof(ValueList), alignof(ValueList)))
            ValueList();
    list->Append(cur >> 1, &dup_arena_);
    list->Append(value, &dup_arena_);
    StoreEntry(entry, reinterpret_cast<uint64_t>(list));
    return;
  }
  reinterpret_cast<ValueList*>(cur)->Append(value, &dup_arena_);
}

void KissTree::Insert(uint32_t key, uint64_t value) {
  assert(config_.mode == PayloadMode::kValues);
  uint64_t* entry = FindOrCreateEntrySlot(key);
  NoteKey(key, *entry == 0);
  AppendToEntry(entry, value);
}

void KissTree::BeginConcurrentInserts() {
  slab_.set_concurrent(true);
  value_arena_.set_concurrent(true);
  dup_arena_.set_concurrent(true);
}

void KissTree::EndConcurrentInserts() {
  slab_.set_concurrent(false);
  value_arena_.set_concurrent(false);
  dup_arena_.set_concurrent(false);
}

bool KissTree::InsertForMerge(uint32_t key, uint64_t value) {
  assert(config_.mode == PayloadMode::kValues);
  uint64_t* entry = FindOrCreateEntrySlot(key);
  bool created = *entry == 0;
  AppendToEntry(entry, value);
  return created;
}

void KissTree::AddMergedKeyStats(size_t new_keys, uint32_t lo, uint32_t hi) {
  if (new_keys == 0) return;
  num_keys_ += new_keys;
  if (lo < min_key_) min_key_ = lo;
  if (hi > max_key_) max_key_ = hi;
}

void KissTree::Upsert(uint32_t key, uint64_t value) {
  assert(config_.mode == PayloadMode::kValues);
  assert(value < (uint64_t{1} << 63));
  uint64_t* entry = FindOrCreateEntrySlot(key);
  NoteKey(key, *entry == 0);
  // A superseded list becomes arena garbage. Not snapshot-safe: the live
  // engine write path appends via Insert only.
  StoreEntry(entry, (value << 1) | 1);
}

bool KissTree::Lookup(uint32_t key, ValueRef* out) const {
  uint64_t entry = FindEntry(key);
  if (entry == 0) return false;
  *out = DecodeEntry(entry);
  return true;
}

std::byte* KissTree::FindOrCreatePayload(uint32_t key, bool* created) {
  std::byte* payload = FindOrCreatePayloadForMerge(key, created);
  if (*created) NoteKey(key, true);
  return payload;
}

std::byte* KissTree::FindOrCreatePayloadForMerge(uint32_t key,
                                                 bool* created) {
  assert(config_.mode == PayloadMode::kAggregate);
  uint64_t* entry = FindOrCreateEntrySlot(key);
  if (*entry == 0) {
    void* payload =
        value_arena_.AllocateZeroed(config_.agg_payload_size, /*align=*/8);
    StoreEntry(entry, reinterpret_cast<uint64_t>(payload));
    *created = true;
  } else {
    *created = false;
  }
  return reinterpret_cast<std::byte*>(*entry);
}

const std::byte* KissTree::FindPayload(uint32_t key) const {
  uint64_t entry = FindEntry(key);
  return entry == 0 ? nullptr : EntryPayload(entry);
}

void KissTree::BatchLookup(std::span<LookupJob> jobs) const {
  // Pipeline stage 1: prefetch every job's root bucket.
  for (auto& job : jobs) {
    PrefetchRead(&root_[job.key >> level2_bits_]);
  }
  // Stage 2: read root entries (now cached), prefetch level-2 slots.
  for (auto& job : jobs) {
    job.l2_handle = LoadRootSlot(&root_[job.key >> level2_bits_]);
    job.found = false;
    if (job.l2_handle == CompactSlab::kNullHandle) continue;
    const void* node = slab_.Resolve(job.l2_handle);
    if (!config_.compress) {
      uint32_t slot = job.key & static_cast<uint32_t>(l2_fanout_ - 1);
      PrefetchRead(static_cast<const uint64_t*>(node) + slot);
    } else {
      PrefetchRead(node);  // bitmask word; packed entry follows closely
    }
  }
  // Stage 3: resolve entries (level-2 lines are in cache).
  for (auto& job : jobs) {
    if (job.l2_handle == CompactSlab::kNullHandle) continue;
    uint64_t entry = FindEntry(job.key);
    if (entry != 0) {
      job.found = true;
      job.values = DecodeEntry(entry);
    }
  }
}

void KissTree::BatchUpsert(std::span<UpsertJob> jobs) {
  for (const auto& job : jobs) {
    PrefetchWrite(&root_[job.key >> level2_bits_]);
  }
  // Second pass prefetches existing level-2 slots; creation still happens
  // in the apply pass because it mutates the slab.
  if (!config_.compress) {
    for (const auto& job : jobs) {
      uint32_t handle = root_[job.key >> level2_bits_];
      if (handle != CompactSlab::kNullHandle) {
        uint32_t slot = job.key & static_cast<uint32_t>(l2_fanout_ - 1);
        PrefetchWrite(UncompressedEntries(handle) + slot);
      }
    }
  }
  for (const auto& job : jobs) {
    Upsert(job.key, job.value);
  }
}

void KissTree::BatchInsert(std::span<UpsertJob> jobs) {
  for (const auto& job : jobs) {
    PrefetchWrite(&root_[job.key >> level2_bits_]);
  }
  if (!config_.compress) {
    for (const auto& job : jobs) {
      uint32_t handle = root_[job.key >> level2_bits_];
      if (handle != CompactSlab::kNullHandle) {
        uint32_t slot = job.key & static_cast<uint32_t>(l2_fanout_ - 1);
        PrefetchWrite(UncompressedEntries(handle) + slot);
      }
    }
  }
  for (const auto& job : jobs) {
    Insert(job.key, job.value);
  }
}

}  // namespace qppt
