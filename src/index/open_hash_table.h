// Open-addressing hash table — the "BOOST" comparator of Figure 3.
//
// Boost's unordered flat tables use open addressing over a contiguous
// entry array. We reproduce that design: power-of-two capacity, linear
// probing, growth at load factor 0.5 (probe sequences stay short), with a
// one-byte occupancy sidecar so any 64-bit key is representable.

#ifndef QPPT_INDEX_OPEN_HASH_TABLE_H_
#define QPPT_INDEX_OPEN_HASH_TABLE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bits.h"

namespace qppt {

class OpenHashTable {
 public:
  explicit OpenHashTable(size_t initial_capacity = 64);

  OpenHashTable(const OpenHashTable&) = delete;
  OpenHashTable& operator=(const OpenHashTable&) = delete;
  OpenHashTable(OpenHashTable&&) = default;
  OpenHashTable& operator=(OpenHashTable&&) = default;

  size_t size() const { return size_; }
  size_t capacity() const { return entries_.size(); }

  // Insert-or-update (Fig. 3(a) workload semantics).
  void Upsert(uint64_t key, uint64_t value);

  std::optional<uint64_t> Find(uint64_t key) const;

  size_t MemoryUsage() const {
    return entries_.capacity() * sizeof(Entry) + occupied_.capacity();
  }

 private:
  struct Entry {
    uint64_t key;
    uint64_t value;
  };

  void Grow();
  size_t Mask() const { return entries_.size() - 1; }

  std::vector<Entry> entries_;
  std::vector<uint8_t> occupied_;
  size_t size_ = 0;
};

}  // namespace qppt

#endif  // QPPT_INDEX_OPEN_HASH_TABLE_H_
