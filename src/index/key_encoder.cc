#include "index/key_encoder.h"

#include <cstdint>
#include <cstring>
#include <string>

namespace qppt {

double DecodeDouble(const uint8_t* p) {
  uint64_t bits = DecodeU64(p);
  if (bits & (uint64_t{1} << 63)) {
    bits ^= (uint64_t{1} << 63);
  } else {
    bits = ~bits;
  }
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

std::string KeyToHex(const uint8_t* key, size_t len) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHex[key[i] >> 4]);
    out.push_back(kHex[key[i] & 0xf]);
  }
  return out;
}

}  // namespace qppt
