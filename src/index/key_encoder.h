// Order-preserving binary key encoding.
//
// Prefix trees (§2.1) navigate on the big-endian binary representation of a
// key, MSB-first, so the tree's in-order traversal enumerates keys in
// ascending order — the property QPPT exploits to get sorting and grouping
// "for free" from the output index (§3). This encoder produces byte strings
// whose lexicographic order equals the natural order of the encoded values:
//
//   - unsigned integers: big-endian bytes
//   - signed integers:   offset-binary (sign bit flipped), then big-endian
//   - doubles:           IEEE-754 total-order transform
//   - dictionary codes:  non-negative int64 ranks, encoded as unsigned
//
// Composite keys (e.g. the (year, brand1) group key of SSB Q2.3) are the
// concatenation of fixed-width encoded components.

#ifndef QPPT_INDEX_KEY_ENCODER_H_
#define QPPT_INDEX_KEY_ENCODER_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "storage/value.h"

namespace qppt {

// A small fixed-capacity key buffer. QPPT keys are at most a few composed
// integer attributes; 32 bytes covers four 64-bit components.
class KeyBuf {
 public:
  static constexpr size_t kCapacity = 32;

  KeyBuf() = default;

  const uint8_t* data() const { return bytes_; }
  uint8_t* data() { return bytes_; }
  size_t size() const { return size_; }
  void clear() { size_ = 0; }

  void AppendU32(uint32_t v) {
    bytes_[size_++] = static_cast<uint8_t>(v >> 24);
    bytes_[size_++] = static_cast<uint8_t>(v >> 16);
    bytes_[size_++] = static_cast<uint8_t>(v >> 8);
    bytes_[size_++] = static_cast<uint8_t>(v);
  }

  void AppendU64(uint64_t v) {
    AppendU32(static_cast<uint32_t>(v >> 32));
    AppendU32(static_cast<uint32_t>(v));
  }

  // Signed 64-bit: flip the sign bit so negative values sort first.
  void AppendI64(int64_t v) {
    AppendU64(static_cast<uint64_t>(v) ^ (uint64_t{1} << 63));
  }

  // Signed 32-bit, 4-byte encoding (for KISS-Tree-eligible keys).
  void AppendI32(int32_t v) {
    AppendU32(static_cast<uint32_t>(v) ^ (uint32_t{1} << 31));
  }

  // IEEE-754 total-order transform: if sign bit set, flip all bits; else
  // flip only the sign bit. NaNs sort above +inf; -0 < +0.
  void AppendDouble(double d) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    if (bits & (uint64_t{1} << 63)) {
      bits = ~bits;
    } else {
      bits ^= (uint64_t{1} << 63);
    }
    AppendU64(bits);
  }

 private:
  uint8_t bytes_[kCapacity] = {};
  size_t size_ = 0;
};

// Decoding helpers (tests, result extraction).
inline uint32_t DecodeU32(const uint8_t* p) {
  return (uint32_t{p[0]} << 24) | (uint32_t{p[1]} << 16) |
         (uint32_t{p[2]} << 8) | uint32_t{p[3]};
}
inline uint64_t DecodeU64(const uint8_t* p) {
  return (uint64_t{DecodeU32(p)} << 32) | DecodeU32(p + 4);
}
inline int64_t DecodeI64(const uint8_t* p) {
  return static_cast<int64_t>(DecodeU64(p) ^ (uint64_t{1} << 63));
}
inline int32_t DecodeI32(const uint8_t* p) {
  return static_cast<int32_t>(DecodeU32(p) ^ (uint32_t{1} << 31));
}
double DecodeDouble(const uint8_t* p);

// Lexicographic comparison of equal-length keys.
inline int CompareKeys(const uint8_t* a, const uint8_t* b, size_t len) {
  return std::memcmp(a, b, len);
}

// Renders a key as hex for diagnostics.
std::string KeyToHex(const uint8_t* key, size_t len);

}  // namespace qppt

#endif  // QPPT_INDEX_KEY_ENCODER_H_
