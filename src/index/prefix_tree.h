// Generalized prefix tree (§2.1; Böhm et al. [5]).
//
// An order-preserving, *unbalanced* trie over the big-endian binary
// representation of fixed-width keys. The key is split MSB-first into
// fragments of k' bits; each inner node holds 2^k' tagged child pointers.
// Dynamic expansion: a content node is installed at the shallowest level at
// which its key fragment is unique, so content nodes store the complete key
// for the final comparison (the path alone does not determine the key).
//
// Properties QPPT relies on:
//   * in-order traversal yields keys in ascending order (free sort/group),
//   * a key has a deterministic position (no rebalancing, trivial to
//     partition for parallelism),
//   * balanced read/write performance (high update rates for intermediate
//     index materialization).
//
// Payload modes:
//   * kValues     — each key maps to a multiset of 64-bit values, stored
//                   with the §2.4 duplicate segments (ValueList),
//   * kAggregate  — each key maps to a fixed-size in-place accumulator
//                   (aggregation-on-insert, §3: group-by as a side effect).
//
// The tree is single-writer (intermediate indexes are query-private, §3).
// Live base indexes additionally allow lock-free readers concurrent with
// that one writer: slots are published with release stores and read with
// acquire loads, and the tree never rebalances (§7), so a published slot
// is immutable except for the RCU-style dynamic-expansion swap, which
// builds the replacement chain detached and publishes it with one store.

#ifndef QPPT_INDEX_PREFIX_TREE_H_
#define QPPT_INDEX_PREFIX_TREE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

#include "dbg/tsan.h"
#include "index/duplicate_chain.h"
#include "index/key_encoder.h"
#include "util/arena.h"
#include "util/bits.h"
#include "util/prefetch.h"

namespace qppt {

class PrefixTree {
 public:
  enum class PayloadMode : uint8_t { kValues, kAggregate };

  struct Config {
    size_t key_len = 4;     // key width in bytes (1..KeyBuf::kCapacity)
    size_t kprime = 4;      // fragment width in bits (1..16)
    PayloadMode mode = PayloadMode::kValues;
    size_t agg_payload_size = 0;  // bytes, for kAggregate
  };

  // --- Internal node representation (exposed for the synchronous index
  // scan, §4.2, which co-traverses two trees structurally). -------------

  // Tagged slot: 0 = empty; low bit set = ContentNode*; else Node*.
  using Slot = uintptr_t;

  struct ContentNode {
    // Layout: [key bytes (key_len)] [padding to 8] [payload].
    const uint8_t* key() const {
      return reinterpret_cast<const uint8_t*>(this);
    }
    uint8_t* mutable_key() { return reinterpret_cast<uint8_t*>(this); }
  };

  struct Node {
    Slot slots[1];  // actually fanout() entries, arena-allocated
  };

  static bool IsContent(Slot s) { return (s & 1) != 0; }
  static ContentNode* AsContent(Slot s) {
    return reinterpret_cast<ContentNode*>(s & ~uintptr_t{1});
  }
  static Node* AsNode(Slot s) { return reinterpret_cast<Node*>(s); }

  // Slot accessors shared between the single writer and lock-free
  // readers. On x86 both compile to plain moves.
  static Slot LoadSlot(const Slot* p) {
    Slot v = __atomic_load_n(p, __ATOMIC_ACQUIRE);
    QPPT_TSAN_ACQUIRE(p);
    return v;
  }
  // pairs-with: prefix-slot (scripts/analyze/atomics_pairs.txt)
  static void StoreSlot(Slot* p, Slot v) {
    QPPT_TSAN_RELEASE(p);
    __atomic_store_n(p, v, __ATOMIC_RELEASE);
  }

  // ----------------------------------------------------------------------

  explicit PrefixTree(Config config);

  PrefixTree(const PrefixTree&) = delete;
  PrefixTree& operator=(const PrefixTree&) = delete;
  PrefixTree(PrefixTree&& other) noexcept;
  PrefixTree& operator=(PrefixTree&&) = delete;

  const Config& config() const { return config_; }
  size_t key_len() const { return config_.key_len; }
  size_t fanout() const { return fanout_; }
  size_t num_keys() const {
    // relaxed: advisory statistic; staleness only misguides planning.
    return num_keys_.load(std::memory_order_relaxed);
  }
  size_t num_inner_nodes() const {
    // relaxed: advisory statistic (see num_keys).
    return num_inner_nodes_.load(std::memory_order_relaxed);
  }
  const Node* root() const { return root_; }

  // Total bytes reserved by the tree's arenas.
  size_t MemoryUsage() const {
    return node_arena_.bytes_reserved() + dup_arena_.bytes_reserved();
  }

  // --- kValues mode -----------------------------------------------------

  // Appends `value` to the multiset at `key` (inserting the key if new).
  void Insert(const uint8_t* key, uint64_t value);

  // Insert-or-update: sets `key`'s value list to exactly {value}. This is
  // the Fig. 3(a) workload semantics.
  void Upsert(const uint8_t* key, uint64_t value);

  // Returns the value list for `key`, or nullptr if absent.
  const ValueList* Lookup(const uint8_t* key) const;

  // --- kAggregate mode ----------------------------------------------------

  // Returns the payload accumulator for `key`, creating a zero-filled one
  // if the key is new (*created reports which). The caller folds its
  // aggregate update into the returned bytes — grouping happens here, as a
  // side effect of output indexing (§3).
  std::byte* FindOrCreatePayload(const uint8_t* key, bool* created);

  // Returns the payload for `key`, or nullptr if absent.
  const std::byte* FindPayload(const uint8_t* key) const;

  // --- generic ------------------------------------------------------------

  // Returns the content node for `key`, or nullptr. Payload access via
  // PayloadOf / ValuesOf.
  const ContentNode* Find(const uint8_t* key) const;

  // Content nodes holding the smallest / largest key (nullptr when
  // empty). The walk follows the extreme populated slot per level — the
  // tree is order-preserving, so that slot bounds every deeper subtree.
  const ContentNode* MinContent() const;
  const ContentNode* MaxContent() const;

  const ValueList* ValuesOf(const ContentNode* c) const {
    return reinterpret_cast<const ValueList*>(
        reinterpret_cast<const uint8_t*>(c) + payload_offset_);
  }
  ValueList* MutableValuesOf(ContentNode* c) {
    return reinterpret_cast<ValueList*>(reinterpret_cast<uint8_t*>(c) +
                                        payload_offset_);
  }
  const std::byte* PayloadOf(const ContentNode* c) const {
    return reinterpret_cast<const std::byte*>(c) + payload_offset_;
  }
  std::byte* MutablePayloadOf(ContentNode* c) {
    return reinterpret_cast<std::byte*>(c) + payload_offset_;
  }

  PageArena* dup_arena() { return &dup_arena_; }

  // In-order traversal. F: void(const ContentNode&). Keys are visited in
  // ascending encoded order (the tree is order-preserving).
  template <typename F>
  void ScanAll(F&& fn) const {
    if (root_ != nullptr) ScanRec(root_, 0, fn);
  }

  // In-order traversal of keys in [lo, hi] (inclusive, encoded order).
  template <typename F>
  void ScanRange(const uint8_t* lo, const uint8_t* hi, F&& fn) const {
    if (root_ == nullptr) return;
    if (CompareKeys(lo, hi, config_.key_len) > 0) return;
    ScanRangeRec(root_, 0, lo, hi, true, true, fn);
  }

  // In-order traversal restricted to root buckets [begin_slot, end_slot).
  // Unbalanced trees partition deterministically by root bucket (§7:
  // subtrees can be assigned to different threads without rebalancing
  // moving data between partitions). Thread-safe for concurrent readers.
  template <typename F>
  void ScanRootSlots(size_t begin_slot, size_t end_slot, F&& fn) const {
    size_t width = FragWidth(0);
    size_t limit = size_t{1} << width;
    if (end_slot > limit) end_slot = limit;
    for (size_t i = begin_slot; i < end_slot; ++i) {
      Slot s = LoadSlot(&root_->slots[i]);
      if (s == 0) continue;
      if (IsContent(s)) {
        fn(*AsContent(s));
      } else {
        ScanRec(AsNode(s), width, fn);
      }
    }
  }

  // --- batch processing (§2.3, Algorithm 1) -------------------------------

  struct LookupJob {
    const uint8_t* key = nullptr;       // in: key to look up
    const ContentNode* result = nullptr;  // out: content node or nullptr
    // internal state
    const Node* node = nullptr;
    uint32_t bit_off = 0;
    bool done = false;
  };

  // Level-synchronous batch lookup with software prefetching: all jobs
  // advance one tree level per round; each child is prefetched one round
  // before it is dereferenced, hiding main-memory latency.
  void BatchLookup(std::span<LookupJob> jobs) const;

  // Batched insert (kValues): amortizes call overhead and prefetches the
  // target nodes before mutating them.
  struct InsertJob {
    const uint8_t* key = nullptr;
    uint64_t value = 0;
  };
  void BatchInsert(std::span<InsertJob> jobs);

  // --- partitioned parallel merge support (engine layer) -------------------
  //
  // Between BeginConcurrentInserts() and EndConcurrentInserts(),
  // InsertForMerge() may be called from multiple threads as long as each
  // caller stays within a disjoint span of *root slots* (disjoint
  // subtrees; the arenas are mutex-guarded while the window is open).
  // Tree statistics are NOT updated by InsertForMerge — callers
  // accumulate them in a MergeStats and apply the sum once via
  // AddMergedKeyStats() after the fork-join.

  struct MergeStats {
    size_t new_keys = 0;
    size_t new_inner_nodes = 0;
  };

  void BeginConcurrentInserts();
  void EndConcurrentInserts();
  // Appends like Insert() (kValues mode), counting into `stats`.
  void InsertForMerge(const uint8_t* key, uint64_t value, MergeStats* stats);
  // FindOrCreatePayload (kAggregate mode) with the statistics deferred
  // into `stats` — the aggregated partitioned merge's per-range workers
  // create groups within disjoint branching-level subtrees and apply the
  // summed stats once via AddMergedKeyStats() after the fork-join.
  std::byte* FindOrCreatePayloadForMerge(const uint8_t* key, bool* created,
                                         MergeStats* stats);
  void AddMergedKeyStats(const MergeStats& stats) {
    // relaxed (both): advisory stats; counter totals need no ordering.
    num_keys_.fetch_add(stats.new_keys, std::memory_order_relaxed);
    num_inner_nodes_.fetch_add(stats.new_inner_nodes,
                               std::memory_order_relaxed);
  }

  // Pre-builds the inner-node chain along `key`'s fragments for the
  // levels before `branch_bit_off` (a level boundary). Order-preserving
  // encodings give all keys of a merge a shared prefix; the chain covers
  // it, so concurrent InsertForMerge callers — each owning a disjoint
  // fragment range at the branching level — only ever *read* nodes above
  // the branch and only write within their own subtrees. Requires an
  // empty tree; produces exactly the structure serial inserts of keys
  // branching at `branch_bit_off` would.
  void EnsureChainForMerge(const uint8_t* key, size_t branch_bit_off);

 private:
  Node* NewNode(MergeStats* stats);
  ContentNode* NewContent(const uint8_t* key, MergeStats* stats);
  size_t FragWidth(size_t bit_off) const {
    size_t rest = key_bits_ - bit_off;
    return rest < config_.kprime ? rest : config_.kprime;
  }
  uint32_t Frag(const uint8_t* key, size_t bit_off) const {
    return ExtractFragment(key, config_.key_len, bit_off, FragWidth(bit_off));
  }

  // Core walk shared by all insert paths: returns the content node for
  // `key`, creating (and dynamically expanding) as needed. Creations are
  // counted into `stats` (NOT the tree members) so the concurrent merge
  // path can defer the statistics update; serial callers fold `stats`
  // into the members immediately.
  ContentNode* FindOrCreateContent(const uint8_t* key, bool* created,
                                   MergeStats* stats);

  template <typename F>
  void ScanRec(const Node* node, size_t bit_off, F&& fn) const {
    size_t n = size_t{1} << FragWidth(bit_off);
    for (size_t i = 0; i < n; ++i) {
      Slot s = LoadSlot(&node->slots[i]);
      if (s == 0) continue;
      if (IsContent(s)) {
        fn(*AsContent(s));
      } else {
        ScanRec(AsNode(s), bit_off + FragWidth(bit_off), fn);
      }
    }
  }

  template <typename F>
  void ScanRangeRec(const Node* node, size_t bit_off, const uint8_t* lo,
                    const uint8_t* hi, bool on_lo, bool on_hi,
                    F&& fn) const {
    size_t width = FragWidth(bit_off);
    uint32_t lo_frag = on_lo ? ExtractFragment(lo, config_.key_len, bit_off,
                                               width)
                             : 0;
    uint32_t hi_frag = on_hi ? ExtractFragment(hi, config_.key_len, bit_off,
                                               width)
                             : static_cast<uint32_t>((1u << width) - 1);
    for (uint32_t f = lo_frag; f <= hi_frag; ++f) {
      Slot s = LoadSlot(&node->slots[f]);
      if (s == 0) continue;
      if (IsContent(s)) {
        // Content nodes can sit above the full key depth (dynamic
        // expansion), so the bounds check is on the stored full key.
        const ContentNode* c = AsContent(s);
        if (CompareKeys(c->key(), lo, config_.key_len) >= 0 &&
            CompareKeys(c->key(), hi, config_.key_len) <= 0) {
          fn(*c);
        }
      } else {
        ScanRangeRec(AsNode(s), bit_off + width, lo, hi,
                     on_lo && f == lo_frag, on_hi && f == hi_frag, fn);
      }
    }
  }

  Config config_;
  size_t key_bits_;
  size_t fanout_;
  size_t payload_offset_;  // key bytes rounded up to 8
  size_t payload_size_;    // sizeof(ValueList) or agg_payload_size
  Arena node_arena_;
  PageArena dup_arena_;
  Node* root_ = nullptr;
  std::atomic<size_t> num_keys_{0};
  std::atomic<size_t> num_inner_nodes_{0};
};

}  // namespace qppt

#endif  // QPPT_INDEX_PREFIX_TREE_H_
