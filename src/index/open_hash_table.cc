#include "index/open_hash_table.h"

#include <cstdint>
#include <vector>

namespace qppt {

OpenHashTable::OpenHashTable(size_t initial_capacity) {
  size_t cap = NextPow2(initial_capacity < 16 ? 16 : initial_capacity);
  entries_.resize(cap);
  occupied_.assign(cap, 0);
}

void OpenHashTable::Upsert(uint64_t key, uint64_t value) {
  if ((size_ + 1) * 2 > entries_.size()) Grow();
  size_t i = Mix64(key) & Mask();
  while (occupied_[i]) {
    if (entries_[i].key == key) {
      entries_[i].value = value;
      return;
    }
    i = (i + 1) & Mask();
  }
  entries_[i] = {key, value};
  occupied_[i] = 1;
  ++size_;
}

std::optional<uint64_t> OpenHashTable::Find(uint64_t key) const {
  size_t i = Mix64(key) & Mask();
  while (occupied_[i]) {
    if (entries_[i].key == key) return entries_[i].value;
    i = (i + 1) & Mask();
  }
  return std::nullopt;
}

void OpenHashTable::Grow() {
  std::vector<Entry> old_entries = std::move(entries_);
  std::vector<uint8_t> old_occupied = std::move(occupied_);
  size_t cap = old_entries.size() * 2;
  entries_.assign(cap, Entry{});
  occupied_.assign(cap, 0);
  for (size_t j = 0; j < old_entries.size(); ++j) {
    if (!old_occupied[j]) continue;
    size_t i = Mix64(old_entries[j].key) & Mask();
    while (occupied_[i]) i = (i + 1) & Mask();
    entries_[i] = old_entries[j];
    occupied_[i] = 1;
  }
}

}  // namespace qppt
