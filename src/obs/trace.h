// Per-query execution trace: morsel/merge/operator span timelines
// (ISSUE 7 tentpole, part 3).
//
// When PlanKnobs::trace is set, the engine records one span per executed
// morsel, per partitioned-merge shard, and per plan operator:
// {worker, stage label, t_start, t_end}, all relative to the query's
// trace epoch. TraceToJson() exports the spans in the chrome://tracing /
// Perfetto "traceEvents" format, so an 8-thread execution can finally be
// *seen* — idle gaps, stealing storms, and merge walls included.
//
// Concurrency model: one lane per morsel worker plus one driver lane
// (the client thread running Plan::Run). Each lane is written only by
// its own thread — workers record their morsels/merge shards, the driver
// records operator spans — so recording is wait-free and TSan-clean with
// no synchronization beyond the fork-join barriers the scheduler already
// provides. Span storage is arena-backed (chunked arrays bump-allocated
// from a per-lane Arena), so a million-span trace costs a handful of
// mmap'd blocks and zero per-span heap calls.

#ifndef QPPT_OBS_TRACE_H_
#define QPPT_OBS_TRACE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/arena.h"

namespace qppt::obs {

enum class SpanKind : uint8_t {
  kMorsel,    // one scheduler morsel of an operator's scan
  kMerge,     // one partitioned-merge shard
  kOperator,  // one whole plan operator (driver lane)
};

struct TraceSpan {
  const char* label = nullptr;  // arena-copied stage label, NUL-terminated
  double t_start_us = 0;        // relative to the trace epoch
  double t_end_us = 0;
  uint32_t worker = 0;          // lane (== morsel worker id; driver = lanes-1)
  SpanKind kind = SpanKind::kMorsel;
};

class QueryTrace {
 public:
  // `workers` morsel-worker lanes plus one driver lane. The epoch (t=0)
  // is construction time.
  explicit QueryTrace(size_t workers);
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  size_t num_worker_lanes() const { return lanes_.size() - 1; }
  size_t driver_lane() const { return lanes_.size() - 1; }

  // Microseconds since the trace epoch.
  double NowUs() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - epoch_)
        .count();
  }

  // Records one span into `lane`'s buffer. Wait-free; safe as long as no
  // two threads record into the same lane concurrently (the engine's
  // one-thread-per-worker structure guarantees this). Lanes beyond
  // num_worker_lanes() wrap — a defensive clamp, not an expected path.
  void Record(size_t lane, std::string_view label, SpanKind kind,
              double t_start_us, double t_end_us);

  // Total spans recorded so far (all lanes).
  size_t num_spans() const;

  // Invokes fn(const TraceSpan&) for every span, lane by lane. Call only
  // after execution quiesces (no concurrent Record).
  template <typename F>
  void ForEachSpan(F&& fn) const {
    for (const Lane& lane : lanes_) {
      for (const Chunk* c = lane.head; c != nullptr; c = c->next) {
        for (size_t i = 0; i < c->used; ++i) fn(c->spans[i]);
      }
    }
  }

 private:
  using Clock = std::chrono::steady_clock;

  static constexpr size_t kChunkSpans = 256;
  struct Chunk {
    TraceSpan spans[kChunkSpans];
    size_t used = 0;
    Chunk* next = nullptr;
  };
  // One writer thread per lane; cache-line padded so two workers never
  // share a lane's hot fields.
  struct alignas(64) Lane {
    Arena arena;
    Chunk* head = nullptr;
    Chunk* tail = nullptr;
    size_t count = 0;
  };

  Clock::time_point epoch_;
  std::vector<Lane> lanes_;
};

// Exports the trace as chrome://tracing / Perfetto JSON: one complete
// ("ph":"X") event per span with ts/dur in microseconds, tid = lane,
// cat = morsel|merge|operator, plus thread_name metadata naming the
// worker lanes. Open via chrome://tracing "Load" or ui.perfetto.dev.
std::string TraceToJson(const QueryTrace& trace);

}  // namespace qppt::obs

#endif  // QPPT_OBS_TRACE_H_
