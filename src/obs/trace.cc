#include "obs/trace.h"

#include <cstdio>
#include <cstring>
#include <string>

namespace qppt::obs {

QueryTrace::QueryTrace(size_t workers)
    : epoch_(Clock::now()), lanes_(workers == 0 ? 2 : workers + 1) {}

void QueryTrace::Record(size_t lane, std::string_view label, SpanKind kind,
                        double t_start_us, double t_end_us) {
  Lane& l = lanes_[lane % lanes_.size()];
  if (l.tail == nullptr || l.tail->used == kChunkSpans) {
    Chunk* c = l.arena.New<Chunk>();
    if (l.tail == nullptr) {
      l.head = l.tail = c;
    } else {
      l.tail->next = c;
      l.tail = c;
    }
  }
  // Copy the label into the lane arena: span lifetimes must not depend
  // on the operator objects that produced them.
  char* copy = static_cast<char*>(l.arena.Allocate(label.size() + 1, 1));
  std::memcpy(copy, label.data(), label.size());
  copy[label.size()] = '\0';
  TraceSpan& span = l.tail->spans[l.tail->used++];
  span.label = copy;
  span.t_start_us = t_start_us;
  span.t_end_us = t_end_us;
  span.worker = static_cast<uint32_t>(lane % lanes_.size());
  span.kind = kind;
  ++l.count;
}

size_t QueryTrace::num_spans() const {
  size_t total = 0;
  for (const Lane& lane : lanes_) total += lane.count;
  return total;
}

namespace {

const char* KindCategory(SpanKind kind) {
  switch (kind) {
    case SpanKind::kMorsel:
      return "morsel";
    case SpanKind::kMerge:
      return "merge";
    case SpanKind::kOperator:
      return "operator";
  }
  return "span";
}

// Stage labels are planner-controlled ("sel:date_sel") but spec slot
// names feed into them, so escape defensively.
void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out->push_back(' ');
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

std::string TraceToJson(const QueryTrace& trace) {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  char buf[160];
  // Thread-name metadata so chrome://tracing labels the lanes.
  for (size_t lane = 0; lane <= trace.driver_lane(); ++lane) {
    std::string name = lane == trace.driver_lane()
                           ? std::string("driver")
                           : "worker-" + std::to_string(lane);
    std::snprintf(buf, sizeof(buf),
                  "  {\"ph\": \"M\", \"pid\": 1, \"tid\": %zu, \"name\": "
                  "\"thread_name\", \"args\": {\"name\": \"%s\"}},\n",
                  lane, name.c_str());
    out += buf;
  }
  bool first = true;
  trace.ForEachSpan([&](const TraceSpan& span) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"name\": \"";
    AppendEscaped(&out, span.label);
    std::snprintf(buf, sizeof(buf),
                  "\", \"cat\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, "
                  "\"dur\": %.3f, \"pid\": 1, \"tid\": %u}",
                  KindCategory(span.kind), span.t_start_us,
                  span.t_end_us - span.t_start_us, span.worker);
    out += buf;
  });
  out += "\n]}\n";
  return out;
}

}  // namespace qppt::obs
