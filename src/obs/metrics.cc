#include "obs/metrics.h"

#include "dbg/lock_rank.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <utility>

#include "util/env.h"

namespace qppt::obs {

namespace detail {

size_t ThreadShard() {
  // The address of a thread_local is distinct per live thread and cheap
  // to hash; collisions only cost shared-shard contention, never
  // correctness.
  static thread_local char tag;
  uintptr_t p = reinterpret_cast<uintptr_t>(&tag);
  return static_cast<size_t>((p >> 6) % kMetricShards);
}

}  // namespace detail

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), shards_(kMetricShards) {
  for (auto& shard : shards_) {
    shard.buckets = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::ObserveShard(size_t shard, double value) {
  Shard& s = shards_[shard % kMetricShards];
  size_t b = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  // relaxed (all three): metric increments; totals need no ordering.
  s.buckets[b].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum_micros.fetch_add(static_cast<int64_t>(std::llround(value * 1e6)),
                         std::memory_order_relaxed);  // relaxed: ditto
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    // relaxed: metric snapshot; staleness is fine.
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  int64_t micros = 0;
  for (const auto& s : shards_) {
    // relaxed: metric snapshot; staleness is fine.
    micros += s.sum_micros.load(std::memory_order_relaxed);
  }
  return static_cast<double>(micros) / 1e6;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1, 0);
  for (const auto& s : shards_) {
    for (size_t b = 0; b < counts.size(); ++b) {
      // relaxed: metric snapshot; staleness is fine.
      counts[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  dbg::RankedLockGuard lock(dbg::LockRank::kMetrics, mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.type = MetricType::kCounter;
    e.help = std::string(help);
    e.counter = std::make_unique<Counter>();
    it = entries_.emplace(std::string(name), std::move(e)).first;
  }
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help) {
  dbg::RankedLockGuard lock(dbg::LockRank::kMetrics, mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.type = MetricType::kGauge;
    e.help = std::string(help);
    e.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(std::string(name), std::move(e)).first;
  }
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds,
                                         std::string_view help) {
  dbg::RankedLockGuard lock(dbg::LockRank::kMetrics, mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.type = MetricType::kHistogram;
    e.help = std::string(help);
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
    it = entries_.emplace(std::string(name), std::move(e)).first;
  }
  return it->second.histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  dbg::RankedLockGuard lock(dbg::LockRank::kMetrics, mu_);
  snap.metrics.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {  // std::map: sorted by name
    MetricValue v;
    v.name = name;
    v.help = entry.help;
    v.type = entry.type;
    switch (entry.type) {
      case MetricType::kCounter:
        v.counter = entry.counter->Value();
        break;
      case MetricType::kGauge:
        v.gauge = entry.gauge->Value();
        break;
      case MetricType::kHistogram:
        v.bounds = entry.histogram->bounds();
        v.bucket_counts = entry.histogram->BucketCounts();
        v.count = entry.histogram->Count();
        v.sum = entry.histogram->Sum();
        break;
    }
    snap.metrics.push_back(std::move(v));
  }
  return snap;
}

size_t MetricsRegistry::num_metrics() const {
  dbg::RankedLockGuard lock(dbg::LockRank::kMetrics, mu_);
  return entries_.size();
}

const MetricValue* MetricsSnapshot::Find(std::string_view name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  const MetricValue* m = Find(name);
  return m != nullptr && m->type == MetricType::kCounter ? m->counter : 0;
}

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

void AppendU64(std::string* out, uint64_t v) {
  *out += std::to_string(v);
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  // Metric names are controlled identifiers ([a-z0-9_:]), so no JSON
  // string escaping is needed (same convention as bench_common.h).
  std::string out = "{\n";
  for (size_t i = 0; i < metrics.size(); ++i) {
    const MetricValue& m = metrics[i];
    out += "  \"" + m.name + "\": ";
    switch (m.type) {
      case MetricType::kCounter:
        AppendU64(&out, m.counter);
        break;
      case MetricType::kGauge:
        out += std::to_string(m.gauge);
        break;
      case MetricType::kHistogram: {
        out += "{\"count\": ";
        AppendU64(&out, m.count);
        out += ", \"sum\": ";
        AppendDouble(&out, m.sum);
        out += ", \"buckets\": [";
        for (size_t b = 0; b < m.bucket_counts.size(); ++b) {
          if (b > 0) out += ", ";
          out += "{\"le\": ";
          if (b < m.bounds.size()) {
            AppendDouble(&out, m.bounds[b]);
          } else {
            out += "\"+Inf\"";
          }
          out += ", \"n\": ";
          AppendU64(&out, m.bucket_counts[b]);
          out += "}";
        }
        out += "]}";
        break;
      }
    }
    out += i + 1 < metrics.size() ? ",\n" : "\n";
  }
  out += "}\n";
  return out;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const MetricValue& m : metrics) {
    if (!m.help.empty()) {
      out += "# HELP " + m.name + " " + m.help + "\n";
    }
    out += "# TYPE " + m.name + " ";
    switch (m.type) {
      case MetricType::kCounter:
        out += "counter\n" + m.name + " ";
        AppendU64(&out, m.counter);
        out += "\n";
        break;
      case MetricType::kGauge:
        out += "gauge\n" + m.name + " " + std::to_string(m.gauge) + "\n";
        break;
      case MetricType::kHistogram: {
        out += "histogram\n";
        uint64_t cumulative = 0;
        for (size_t b = 0; b < m.bucket_counts.size(); ++b) {
          cumulative += m.bucket_counts[b];
          out += m.name + "_bucket{le=\"";
          if (b < m.bounds.size()) {
            AppendDouble(&out, m.bounds[b]);
          } else {
            out += "+Inf";
          }
          out += "\"} ";
          AppendU64(&out, cumulative);
          out += "\n";
        }
        out += m.name + "_sum ";
        AppendDouble(&out, m.sum);
        out += "\n" + m.name + "_count ";
        AppendU64(&out, m.count);
        out += "\n";
        break;
      }
    }
  }
  return out;
}

namespace {

// QPPT_METRICS_DUMP exit hook: writes the global registry's Prometheus
// text to the named path ("-" = stderr) when the process exits, so any
// run — bench, test, server — leaves an inspectable metrics trail.
void DumpGlobalMetricsAtExit() {
  std::string path = GetEnvString("QPPT_METRICS_DUMP", "");
  if (path.empty()) return;
  std::string text = MetricsRegistry::Global().Snapshot().ToPrometheusText();
  if (path == "-") {
    std::fputs(text.c_str(), stderr);
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror(("QPPT_METRICS_DUMP: cannot open " + path).c_str());
    return;
  }
  std::fputs(text.c_str(), f);
  std::fclose(f);
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();  // leaked: outlives atexit handlers
    if (!GetEnvString("QPPT_METRICS_DUMP", "").empty()) {
      std::atexit(DumpGlobalMetricsAtExit);
    }
    return r;
  }();
  return *registry;
}

}  // namespace qppt::obs
