// Engine-wide metrics: a lock-cheap registry of counters, gauges, and
// fixed-bucket latency histograms (ISSUE 7 tentpole).
//
// Design goals, in order:
//   1. Hot-path writes must be cheap enough to leave enabled always-on
//      (<= one relaxed atomic RMW on a per-worker shard — no locks, no
//      allocation, no false sharing between workers).
//   2. Reads (Snapshot) fold the shards and may be arbitrarily slow; they
//      run on monitoring cadence, not on query paths.
//   3. The exposition formats (JSON, Prometheus text) are stable: the
//      upcoming socket server's /metrics endpoint serves
//      ToPrometheusText() verbatim, and QPPT_METRICS_DUMP writes the same
//      text at process exit so any run can be inspected post-hoc.
//
// Sharding: every counter/histogram carries kShards cache-line-padded
// atomic cells. Writers pick a shard — engine code passes the morsel
// worker id explicitly (AddShard), everyone else gets a stable
// thread-local shard hash — and Snapshot() folds all shards. Totals are
// exact once writers quiesce; a snapshot racing writers sees each shard
// at some point in time (never torn, never negative).
//
// Registration is mutexed and returns pointers that stay valid for the
// registry's lifetime (metrics are never unregistered). Re-registering
// the same name returns the same metric, so instrumented components can
// look metrics up by name without coordinating ownership.

#ifndef QPPT_OBS_METRICS_H_
#define QPPT_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace qppt::obs {

// Shard count for counters/histograms. Worker ids above this wrap; 16
// covers the pool sizes the engine clamps to on today's hardware while
// keeping idle metrics small (16 * 64 B per counter).
inline constexpr size_t kMetricShards = 16;

namespace detail {
// One cache line per shard so two workers bumping the same counter never
// ping-pong a line.
struct alignas(64) ShardCell {
  std::atomic<uint64_t> value{0};
};

// Stable per-thread shard index for writers without a worker id.
size_t ThreadShard();
}  // namespace detail

// Monotonic counter. Add() from any thread; Value() folds the shards.
class Counter {
 public:
  void Add(uint64_t n = 1) { AddShard(detail::ThreadShard(), n); }
  void AddShard(size_t shard, uint64_t n = 1) {
    // relaxed: metric increment; totals need no ordering.
    shards_[shard % kMetricShards].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : shards_) {
      // relaxed: metric snapshot; per-shard staleness is fine.
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  // Per-shard read-back (the per-worker split of a worker-sharded
  // counter, e.g. engine_worker_busy_ns_total).
  uint64_t ShardValue(size_t shard) const {
    // relaxed: metric snapshot; staleness is fine.
    return shards_[shard % kMetricShards].value.load(
        std::memory_order_relaxed);
  }

 private:
  detail::ShardCell shards_[kMetricShards];
};

// Instantaneous signed value (queue depths, horizon lags). Set/Add from
// any thread; last write wins, which is the right semantics for a gauge.
class Gauge {
 public:
  // relaxed (all three): gauge value; last-write-wins, no ordering.
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram: bucket upper bounds are set at registration
// and never change, so Observe() is a binary search plus one sharded
// increment. Values above the last bound land in the implicit +Inf
// bucket. The sum is accumulated in micro-units (value * 1e6, rounded)
// so it can stay a lock-free integer without losing sub-millisecond
// latencies.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value) { ObserveShard(detail::ThreadShard(), value); }
  void ObserveShard(size_t shard, double value);

  const std::vector<double>& bounds() const { return bounds_; }

  // Folded cumulative state (exact once writers quiesce).
  uint64_t Count() const;
  double Sum() const;
  // Per-bucket (non-cumulative) counts; size() == bounds().size() + 1,
  // the last entry being the +Inf bucket.
  std::vector<uint64_t> BucketCounts() const;

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<uint64_t>> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<int64_t> sum_micros{0};
  };

  std::vector<double> bounds_;
  std::vector<Shard> shards_;
};

// Exponential bucket bounds: start, start*factor, ... (count bounds).
std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count);

enum class MetricType { kCounter, kGauge, kHistogram };

// One metric's folded state at snapshot time.
struct MetricValue {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  uint64_t counter = 0;                  // kCounter
  int64_t gauge = 0;                     // kGauge
  std::vector<double> bounds;            // kHistogram
  std::vector<uint64_t> bucket_counts;   // kHistogram, +Inf last
  uint64_t count = 0;                    // kHistogram
  double sum = 0;                        // kHistogram
};

// A stable snapshot of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  const MetricValue* Find(std::string_view name) const;
  // Convenience: counter value by name (0 when absent).
  uint64_t CounterValue(std::string_view name) const;

  // {"name": {...}, ...} — one object per metric.
  std::string ToJson() const;
  // Prometheus text exposition format v0.0.4 (# HELP/# TYPE + samples;
  // histograms expand to _bucket{le=...}/_sum/_count).
  std::string ToPrometheusText() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Idempotent by name; the returned pointer is valid for the registry's
  // lifetime. `help` is recorded on first registration only.
  Counter* GetCounter(std::string_view name, std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view help = "");
  // `bounds` must be ascending; recorded on first registration only.
  Histogram* GetHistogram(std::string_view name, std::vector<double> bounds,
                          std::string_view help = "");

  MetricsSnapshot Snapshot() const;
  size_t num_metrics() const;

  // The process-wide registry every engine component reports into. The
  // first call also arms the QPPT_METRICS_DUMP exit hook: when that env
  // var names a path, the registry's Prometheus text is written there at
  // process exit ("-" dumps to stderr).
  static MetricsRegistry& Global();

 private:
  struct Entry {
    MetricType type;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace qppt::obs

#endif  // QPPT_OBS_METRICS_H_
