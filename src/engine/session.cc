#include "engine/session.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/query/planner.h"
#include "core/sync_scan.h"
#include "engine/scheduler.h"
#include "dbg/invariants.h"
#include "dbg/lock_rank.h"
#include "engine/write_session.h"
#include "index/key_encoder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/cancel.h"
#include "util/failpoint.h"

namespace qppt::engine {

namespace {

// Session-layer metrics, resolved once (registry pointers are stable).
// Function-local statics rather than runner members: the counters are
// engine-wide totals even when tests spin up several runners.
struct SessionMetrics {
  obs::Counter* queries_total;
  obs::Gauge* queries_running;
  obs::Gauge* queries_waiting;
  obs::Histogram* admission_wait_ms;
  obs::Counter* read_leader_total;
  obs::Counter* read_follower_total;
  obs::Counter* versions_reclaimed_total;
  obs::Gauge* reclaim_horizon_lag;
  obs::Histogram* version_chain_length;
  obs::Counter* admission_timeouts_total;
  obs::Counter* queries_shed_total;
  obs::Counter* queries_cancelled_total;
  obs::Counter* deadline_exceeded_total;

  static SessionMetrics& Get() {
    static SessionMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      SessionMetrics s;
      s.queries_total = reg.GetCounter(
          "engine_queries_total", "Queries admitted and executed.");
      s.queries_running = reg.GetGauge(
          "engine_queries_running", "Queries currently executing.");
      s.queries_waiting = reg.GetGauge(
          "engine_queries_waiting",
          "Execute callers blocked on the admission semaphore.");
      s.admission_wait_ms = reg.GetHistogram(
          "engine_admission_wait_ms",
          obs::ExponentialBuckets(0.01, 4.0, 10),
          "Time queries waited for an admission slot, in ms.");
      s.read_leader_total = reg.GetCounter(
          "engine_read_leader_total",
          "Shared-read batches led (one index pass per leader).");
      s.read_follower_total = reg.GetCounter(
          "engine_read_follower_total",
          "Reads answered by another caller's shared scan.");
      s.versions_reclaimed_total = reg.GetCounter(
          "engine_versions_reclaimed_total",
          "MVCC versions unlinked by reclamation sweeps.");
      s.reclaim_horizon_lag = reg.GetGauge(
          "engine_reclaim_horizon_lag",
          "Commit timestamps between the newest commit and the oldest "
          "pinned snapshot at the last reclamation sweep.");
      s.version_chain_length = reg.GetHistogram(
          "engine_version_chain_length",
          {1, 2, 4, 8, 16, 32, 64, 128},
          "Version-chain lengths observed by reclamation sweeps.");
      s.admission_timeouts_total = reg.GetCounter(
          "engine_admission_timeouts_total",
          "Queries rejected because their admission-queue wait timed "
          "out.");
      s.queries_shed_total = reg.GetCounter(
          "engine_queries_shed_total",
          "Queries rejected immediately by load shedding (batch-priority "
          "shed threshold or admission queue limit).");
      s.queries_cancelled_total = reg.GetCounter(
          "engine_queries_cancelled_total",
          "Queries that returned Cancelled (client RequestCancel).");
      s.deadline_exceeded_total = reg.GetCounter(
          "engine_deadline_exceeded_total",
          "Queries that returned DeadlineExceeded.");
      return s;
    }();
    return m;
  }
};

}  // namespace

// ---- shared-read batching ----------------------------------------------------

struct EngineRunner::Batcher {
  struct Request {
    int64_t lo = 0;
    int64_t hi = 0;
    bool is_point = false;
    bool done = false;
    // The leader's verdict for this request: OK with `out` populated, or
    // the error that aborted the shared scan — every follower of a
    // failed batch gets the leader's Status instead of a silently-empty
    // result.
    Status status;
    std::vector<uint64_t> out;
  };

  explicit Batcher(const IndexedTable* t) : table(t) {}

  const IndexedTable* table;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Request*> pending;
  bool leader_active = false;
};

namespace {

using Request = EngineRunner::Batcher::Request;

// Answers a batch of point requests against a KISS-indexed table with ONE
// synchronous index scan: the requested keys become a probe tree (values
// = request indexes) that is co-traversed with the data tree, skipping
// every subtree only one side uses — §4.2's join machinery serving N
// point queries in a single pass.
void AnswerKissPoints(const IndexedTable& table,
                      const std::vector<Request*>& points,
                      uint64_t* shared_scans) {
  const KissTree& data = *table.kiss();
  if (points.size() == 1) {
    KissTree::ValueRef vals;
    if (data.Lookup(IndexedTable::KissKeyOf(SlotFromInt64(points[0]->lo)),
                    &vals)) {
      vals.ForEach([&](uint64_t id) { points[0]->out.push_back(id); });
    }
    ++*shared_scans;
    return;
  }
  KissTree::Config cfg;
  cfg.root_bits = data.config().root_bits;
  KissTree probe(cfg);
  for (size_t i = 0; i < points.size(); ++i) {
    probe.Insert(IndexedTable::KissKeyOf(SlotFromInt64(points[i]->lo)), i);
  }
  SynchronousScan(probe, data,
                  [&](uint32_t, const KissTree::ValueRef& reqs,
                      const KissTree::ValueRef& ids) {
                    reqs.ForEach([&](uint64_t r) {
                      ids.ForEach([&](uint64_t id) {
                        points[r]->out.push_back(id);
                      });
                    });
                  });
  ++*shared_scans;
}

// Answers a batch of range requests with one pass over the union span;
// each visited key is routed to every request whose range contains it.
void AnswerKissRanges(const IndexedTable& table,
                      const std::vector<Request*>& ranges,
                      uint64_t* shared_scans) {
  const KissTree& data = *table.kiss();
  int64_t lo = ranges[0]->lo;
  int64_t hi = ranges[0]->hi;
  for (const Request* r : ranges) {
    lo = std::min(lo, r->lo);
    hi = std::max(hi, r->hi);
  }
  data.ScanRange(IndexedTable::KissKeyOf(SlotFromInt64(lo)),
                 IndexedTable::KissKeyOf(SlotFromInt64(hi)),
                 [&](uint32_t key, const KissTree::ValueRef& ids) {
                   int64_t k = static_cast<int64_t>(key);
                   for (Request* r : ranges) {
                     if (k < r->lo || k > r->hi) continue;
                     ids.ForEach([&](uint64_t id) { r->out.push_back(id); });
                   }
                 });
  ++*shared_scans;
}

// Prefix-tree fallback: per-request lookups on the encoded single-column
// key. Unsupported key shapes (multi-column composites, double keys —
// neither has int64 read semantics) leave the requests empty, matching
// the contract documented on EngineRunner::PointRead.
void AnswerPrefix(const IndexedTable& table,
                  const std::vector<Request*>& batch,
                  uint64_t* shared_scans) {
  const PrefixTree& data = *table.prefix();
  if (table.num_key_columns() != 1) return;
  size_t key_pos = table.key_column_positions()[0];
  if (table.schema().column(key_pos).type == ValueType::kDouble) return;
  KeyBuf lo, hi;
  for (Request* r : batch) {
    lo.clear();
    lo.AppendI64(r->lo);
    if (r->is_point) {
      const ValueList* vals = data.Lookup(lo.data());
      if (vals != nullptr) {
        vals->ForEach([&](uint64_t id) { r->out.push_back(id); });
      }
    } else {
      hi.clear();
      hi.AppendI64(r->hi);
      data.ScanRange(lo.data(), hi.data(),
                     [&](const PrefixTree::ContentNode& c) {
                       data.ValuesOf(&c)->ForEach(
                           [&](uint64_t id) { r->out.push_back(id); });
                     });
    }
    ++*shared_scans;
  }
}

}  // namespace

EngineRunner::EngineRunner(EngineConfig config) : config_(config) {
  // Arm env-configured failpoints (QPPT_FAILPOINTS, util/failpoint.h)
  // once per process, so any binary that builds an engine honors the
  // documented chaos syntax. A parse error is loud but non-fatal: a bad
  // chaos spec must not take down a production binary.
  static std::once_flag failpoints_armed;
  std::call_once(failpoints_armed, [] {
    Status st = fail::ArmFromEnv();
    if (!st.ok()) {
      std::fprintf(stderr, "qppt engine: %s\n", st.ToString().c_str());
    }
  });
  if (config_.threads == 0) config_.threads = 1;
  // More morsel workers than hardware threads only adds context-switch
  // overhead (the 1-vCPU oversubscription tax): clamp, and say so once
  // per process so a misconfigured deployment is visible.
  size_t hw = std::thread::hardware_concurrency();
  if (config_.clamp_threads_to_hardware && hw > 0 && config_.threads > hw) {
    static std::once_flag logged;
    size_t requested = config_.threads;
    std::call_once(logged, [&] {
      std::fprintf(stderr,
                   "qppt engine: clamping %zu workers to "
                   "hardware_concurrency=%zu\n",
                   requested, hw);
    });
    config_.threads = hw;
  }
  if (config_.threads > 1) {
    pool_ = std::make_unique<WorkerPool>(config_.threads);
  }
}

EngineRunner::~EngineRunner() = default;

std::shared_ptr<EngineRunner::Batcher> EngineRunner::BatcherFor(
    const IndexedTable& table) {
  dbg::RankedLockGuard lock(dbg::LockRank::kReadBatcherMap, batchers_mu_);
  auto& slot = batchers_[&table];
  if (slot == nullptr) slot = std::make_shared<Batcher>(&table);
  return slot;
}

void EngineRunner::ReleaseReads(const IndexedTable& table) {
  std::shared_ptr<Batcher> victim;
  {
    dbg::RankedLockGuard lock(dbg::LockRank::kReadBatcherMap,
                              batchers_mu_);
    auto it = batchers_.find(&table);
    if (it == batchers_.end()) return;
    victim = std::move(it->second);
    batchers_.erase(it);
  }
  // Readers in flight hold their own reference; the batcher dies with the
  // last of them (their leader answers them normally). New reads on the
  // same table get a fresh batcher.
}

Result<std::vector<uint64_t>> EngineRunner::PointRead(
    const IndexedTable& table, int64_t key) {
  return RangeRead(table, key, key);
}

Result<std::vector<uint64_t>> EngineRunner::RangeRead(
    const IndexedTable& table, int64_t lo, int64_t hi) {
  // relaxed: statistics counter; no ordering needed.
  reads_.fetch_add(1, std::memory_order_relaxed);
  if (table.aggregated() || lo > hi) return std::vector<uint64_t>{};
  // Hold a reference for the whole read: a concurrent ReleaseReads(table)
  // must not destroy the batcher under a waiting follower.
  std::shared_ptr<Batcher> b = BatcherFor(table);
  Batcher::Request req;
  req.lo = lo;
  req.hi = hi;
  req.is_point = lo == hi;

  dbg::RankedUniqueLock lock(dbg::LockRank::kReadBatcher, b->mu);
  b->pending.push_back(&req);
  b->cv.notify_all();  // a gathering leader may now be at its batch cap
  if (b->leader_active) {
    // Follower: the leader (or a successor) answers this request.
    SessionMetrics::Get().read_follower_total->Add();
    b->cv.wait(lock.lock(), [&] { return req.done; });
    if (!req.status.ok()) return req.status;
    return std::move(req.out);
  }
  b->leader_active = true;
  SessionMetrics::Get().read_leader_total->Add();
  // Gather co-arriving requests: flush at the batch cap or after the
  // window, whichever comes first.
  b->cv.wait_for(lock.lock(),
                 std::chrono::microseconds(config_.read_batch_window_us),
                 [&] { return b->pending.size() >= config_.read_batch_max; });
  std::vector<Batcher::Request*> batch = std::move(b->pending);
  b->pending.clear();
  b->leader_active = false;
  lock.unlock();

  // relaxed: statistics counter; no ordering needed.
  batched_keys_.fetch_add(batch.size(), std::memory_order_relaxed);
  uint64_t scans = 0;
  Status scan_status;
  try {
    QPPT_FAILPOINT(read_batch_scan);
    if (table.kind() == IndexedTable::Kind::kKiss) {
      std::vector<Batcher::Request*> points;
      std::vector<Batcher::Request*> ranges;
      for (Batcher::Request* r : batch) {
        (r->is_point ? points : ranges).push_back(r);
      }
      if (!points.empty()) AnswerKissPoints(table, points, &scans);
      if (!ranges.empty()) AnswerKissRanges(table, ranges, &scans);
    } else {
      AnswerPrefix(table, batch, &scans);
    }
  } catch (...) {
    // A throwing scan must not leave followers blocked on stack-local
    // requests the leader is unwinding past — every request of the batch
    // gets the error, then everyone is woken.
    scan_status = StatusFromException(std::current_exception());
  }
  // relaxed: statistics counter; no ordering needed.
  shared_scans_.fetch_add(scans, std::memory_order_relaxed);

  lock.relock();
  for (Batcher::Request* r : batch) {
    if (!scan_status.ok()) {
      r->status = scan_status;
      r->out.clear();  // partial gather from the aborted scan
    }
    r->done = true;
  }
  b->cv.notify_all();
  if (!req.status.ok()) return req.status;
  return std::move(req.out);
}

EngineRunner::ReadStats EngineRunner::read_stats() const {
  ReadStats s;
  // relaxed (all three): statistics snapshot; staleness is fine.
  s.reads = reads_.load(std::memory_order_relaxed);
  s.shared_scans = shared_scans_.load(std::memory_order_relaxed);
  s.batched_keys = batched_keys_.load(std::memory_order_relaxed);
  return s;
}

// ---- query admission ---------------------------------------------------------

// Tiered admission slot. Acquire() returns OK once a slot is held, or
// an error when the query is shed, its queue wait times out, or its
// cancel token fires mid-wait. Releases on destruction (any exit path,
// including error returns) — a failed Acquire holds nothing, so the
// destructor is a no-op then.
struct EngineRunner::AdmitSlot {
  AdmitSlot() = default;

  Status Acquire(EngineRunner* runner, const PlanKnobs& knobs) {
    runner_ = runner;
    SessionMetrics& m = SessionMetrics::Get();
    const EngineConfig& cfg = runner_->config_;
    if (cfg.max_concurrent_queries == 0) {
      m.queries_running->Add(1);
      gauge_held_ = true;
      return Status::OK();
    }
    const bool is_batch = knobs.priority == QueryPriority::kBatch;
    // Per-query knob wins over the engine-wide default; negative means
    // wait indefinitely (the seed behaviour).
    const double timeout_ms = knobs.queue_timeout_ms >= 0
                                  ? knobs.queue_timeout_ms
                                  : cfg.admission_timeout_ms;
    Timer wait;
    dbg::RankedUniqueLock lock(dbg::LockRank::kAdmission,
                               runner_->admit_mu_);
    auto can_admit = [&] {
      if (runner_->queries_running_ >= cfg.max_concurrent_queries) {
        return false;
      }
      // Batch queries additionally contend for the (smaller) batch
      // pool, so interactive work always has headroom.
      return !(is_batch && cfg.max_concurrent_batch != 0 &&
               runner_->batch_running_ >= cfg.max_concurrent_batch);
    };
    if (!can_admit()) {
      // Load shedding happens before joining the queue: under overload
      // a fast reject beats a slow timeout.
      // relaxed: the counter is only mutated under admit_mu_ (held
      // here); the atomic exists for lock-free stats readers.
      size_t waiting =
          runner_->queries_waiting_.load(std::memory_order_relaxed);
      if (is_batch && cfg.shed_batch_waiting_threshold != 0 &&
          waiting >= cfg.shed_batch_waiting_threshold) {
        m.queries_shed_total->Add();
        return Status::ResourceExhausted(
            "batch query shed: admission queue over the batch shedding "
            "threshold");
      }
      if (cfg.admission_queue_limit != 0 &&
          waiting >= cfg.admission_queue_limit) {
        m.queries_shed_total->Add();
        return Status::ResourceExhausted(
            "query rejected: admission queue full");
      }
      // relaxed: statistics counter; no ordering needed.
      runner_->queries_waiting_.fetch_add(1, std::memory_order_relaxed);
      m.queries_waiting->Add(1);
      Status st;
      const bool has_timeout = timeout_ms >= 0;
      const auto queue_deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(
                  has_timeout ? timeout_ms : 0));
      while (!can_admit()) {
        if (knobs.cancel != nullptr) {
          st = knobs.cancel->Check();
          if (!st.ok()) break;
        }
        if (has_timeout &&
            std::chrono::steady_clock::now() >= queue_deadline) {
          m.admission_timeouts_total->Add();
          st = Status::ResourceExhausted(
              "query timed out waiting for an admission slot");
          break;
        }
        // Bounded slices: an external RequestCancel (or a deadline set
        // on the token) cannot notify admit_cv_, so the wait polls.
        runner_->admit_cv_.wait_for(lock.lock(),
                                    std::chrono::milliseconds(1));
      }
      m.queries_waiting->Add(-1);
      // relaxed: statistics counter; no ordering needed.
      runner_->queries_waiting_.fetch_sub(1, std::memory_order_relaxed);
      if (!st.ok()) return st;
    }
    ++runner_->queries_running_;
    if (is_batch) {
      ++runner_->batch_running_;
      batch_held_ = true;
    }
    held_ = true;
    m.queries_running->Add(1);
    gauge_held_ = true;
    m.admission_wait_ms->Observe(wait.ElapsedMs());
    return Status::OK();
  }

  ~AdmitSlot() {
    if (gauge_held_) SessionMetrics::Get().queries_running->Add(-1);
    if (!held_) return;
    {
      dbg::RankedLockGuard lock(dbg::LockRank::kAdmission,
                                runner_->admit_mu_);
      --runner_->queries_running_;
      if (batch_held_) --runner_->batch_running_;
    }
    // notify_all, not notify_one: with tiered classes a single wake
    // could land on a batch waiter still blocked by the batch cap while
    // an interactive waiter could have run.
    runner_->admit_cv_.notify_all();
  }
  AdmitSlot(const AdmitSlot&) = delete;
  AdmitSlot& operator=(const AdmitSlot&) = delete;

  EngineRunner* runner_ = nullptr;
  bool held_ = false;        // semaphore slot taken (admission control on)
  bool batch_held_ = false;  // slot also counts against the batch cap
  bool gauge_held_ = false;  // queries_running gauge incremented
};

// Pins one query's MVCC snapshot for its whole flight: resolves the
// read timestamp (explicit knob, or latest-committed at admission) and
// registers it so ReclaimVersions never unlinks versions the query may
// still visit. Unregisters on any exit path.
struct EngineRunner::ReadPin {
  ReadPin(EngineRunner* runner, const Database& db, PlanKnobs* knobs)
      : runner_(runner) {
    ts_ = knobs->read_ts != kTsInfinity ? knobs->read_ts
                                        : db.txn_manager().last_commit_ts();
    knobs->read_ts = ts_;
    dbg::RankedLockGuard lock(dbg::LockRank::kReadPins,
                              runner_->pins_mu_);
    runner_->pinned_read_ts_.insert(ts_);
  }
  ~ReadPin() {
    dbg::RankedLockGuard lock(dbg::LockRank::kReadPins,
                              runner_->pins_mu_);
    runner_->pinned_read_ts_.erase(runner_->pinned_read_ts_.find(ts_));
  }
  ReadPin(const ReadPin&) = delete;
  ReadPin& operator=(const ReadPin&) = delete;

  EngineRunner* runner_;
  Timestamp ts_;
};

Result<QueryResult> EngineRunner::Execute(const Database& db,
                                          const Plan& plan, PlanKnobs knobs,
                                          PlanStats* stats) {
  // Caller stats are overwritten wholesale below; Clear() here makes a
  // reused PlanStats safe even if the execution errors out before the
  // assignment (PlanStats contract, core/stats.h).
  if (stats != nullptr) stats->Clear();
  Timer wall;
  SessionMetrics& m = SessionMetrics::Get();
  auto fail = [&m](Status st) -> Status {
    if (st.IsCancelled()) m.queries_cancelled_total->Add();
    if (st.IsDeadlineExceeded()) m.deadline_exceeded_total->Add();
    return st;
  };
  // A per-query deadline chains a local token to the caller's so queue
  // wait and execution share one clock without mutating the caller's
  // token; an explicit RequestCancel on the parent still propagates.
  CancelToken deadline_token(knobs.cancel);
  if (knobs.deadline_ms > 0) {
    deadline_token.SetDeadlineAfter(knobs.deadline_ms);
    knobs.cancel = &deadline_token;
  }
  AdmitSlot slot;
  Status admit = slot.Acquire(this, knobs);
  if (!admit.ok()) return fail(std::move(admit));
  // relaxed: statistics counter; no ordering needed.
  queries_admitted_.fetch_add(1, std::memory_order_relaxed);
  m.queries_total->Add();
  knobs.threads = config_.threads;
  ReadPin pin(this, db, &knobs);
  ExecContext ctx(&db, knobs);
  if (pool_ != nullptr && config_.threads > 1) {
    ctx.set_worker_pool(pool_.get());
    // Create the trace (knobs.trace) with the pool's true worker count so
    // every worker id maps to its own span lane.
    ctx.EnsureTrace(pool_->num_workers());
  }
  Result<QueryResult> result = plan.Execute(&ctx);
  if (!result.ok()) return fail(result.status());
  if (stats != nullptr) {
    *stats = *ctx.stats();
    stats->wall_ms = wall.ElapsedMs();
  }
  return std::move(result).value();
}

Result<QueryResult> EngineRunner::Execute(const Database& db,
                                          const query::QuerySpec& spec,
                                          PlanKnobs knobs, PlanStats* stats) {
  QPPT_ASSIGN_OR_RETURN(Plan plan, query::PlanQuery(db, spec, knobs));
  return Execute(db, plan, knobs, stats);
}

Result<PreparedQuery> EngineRunner::Prepare(const Database& db,
                                            query::QuerySpec spec) {
  auto state = std::make_shared<PreparedQuery::State>();
  state->db = &db;
  state->spec = std::move(spec);
  PreparedQuery prepared(std::move(state));
  // Validate the spec and warm the default-knob cache entry; a spec the
  // planner rejects fails here, not on the hot path.
  QPPT_RETURN_NOT_OK(prepared.GetPlan(PlanKnobs{}, {}).status());
  return prepared;
}

Result<QueryResult> EngineRunner::Execute(const PreparedQuery& prepared,
                                          const query::QueryParams& params,
                                          PlanKnobs knobs, PlanStats* stats) {
  QPPT_ASSIGN_OR_RETURN(std::shared_ptr<const Plan> plan,
                        prepared.GetPlan(knobs, params));
  return Execute(prepared.db(), *plan, knobs, stats);
}

QuerySession EngineRunner::OpenSession() {
  return QuerySession(
      this, static_cast<size_t>(
                // relaxed: id allocation needs uniqueness only.
                next_session_id_.fetch_add(1, std::memory_order_relaxed)));
}

// ---- the write path ----------------------------------------------------------

WriteSession EngineRunner::OpenWriteSession(Database* db) {
  return WriteSession(this, db);
}

size_t EngineRunner::queries_running() const {
  dbg::RankedLockGuard lock(dbg::LockRank::kAdmission, admit_mu_);
  return queries_running_;
}

size_t EngineRunner::pinned_snapshots() const {
  dbg::RankedLockGuard lock(dbg::LockRank::kReadPins, pins_mu_);
  return pinned_read_ts_.size();
}

Timestamp EngineRunner::OldestActiveReadTs(const Database& db) const {
  dbg::RankedLockGuard lock(dbg::LockRank::kReadPins, pins_mu_);
  if (pinned_read_ts_.empty()) return db.txn_manager().last_commit_ts();
  return *pinned_read_ts_.begin();
}

size_t EngineRunner::ReclaimVersions(Database* db) {
  SessionMetrics& m = SessionMetrics::Get();
  Timestamp horizon = OldestActiveReadTs(*db);
  // How far pinned snapshots hold reclamation behind the newest commit.
  m.reclaim_horizon_lag->Set(static_cast<int64_t>(
      db->txn_manager().last_commit_ts() - horizon));
  dbg::RankedLockGuard lock(dbg::LockRank::kDatabaseWrite,
                            db->write_mutex());
  // kReadPins ranks inside kDatabaseWrite, so re-reading the pin
  // registry here is rank-legal: with the write lock held no new commit
  // can advance the no-pins fallback, and an explicit time-travel pin
  // taken after the horizon was computed is exactly the bug this check
  // is for.
  dbg::CheckReclaimHorizon(horizon, OldestActiveReadTs(*db));
  // Chaos hook: the sweep holds the writer lock, so an injected fault
  // here must unwind without wedging writers or corrupting chains.
  QPPT_FAILPOINT(reclaim_sweep);
  size_t unlinked = 0;
  for (const auto& name : db->versioned_table_names()) {
    MvccTable* table = *db->versioned_table(name);
    // Chain lengths BEFORE the sweep: the distribution reclamation is up
    // against, not the one it just produced.
    table->ForEachChainLength([&](size_t len) {
      m.version_chain_length->Observe(static_cast<double>(len));
    });
    unlinked += table->ReclaimBefore(horizon);
    dbg::CheckVersionChains(*table);
  }
  m.versions_reclaimed_total->Add(unlinked);
  return unlinked;
}

Result<std::string> EngineRunner::ExplainAnalyze(const Database& db,
                                                 const query::QuerySpec& spec,
                                                 PlanKnobs knobs,
                                                 PlanStats* stats) {
  QPPT_ASSIGN_OR_RETURN(std::string explain,
                        query::ExplainPlan(db, spec, knobs));
  PlanStats executed;
  QPPT_RETURN_NOT_OK(Execute(db, spec, knobs, &executed).status());

  // Interleave: ExplainPlan emits one "  <label> <op> <detail>" line per
  // planned stage, in plan order, and every operator appends exactly one
  // PlanStats row — so stage line i pairs with operators[i]. The
  // "  order-by:" trailer and the header are passed through.
  std::string out;
  size_t row = 0;
  size_t pos = 0;
  char buf[192];
  while (pos < explain.size()) {
    size_t eol = explain.find('\n', pos);
    if (eol == std::string::npos) eol = explain.size();
    std::string line = explain.substr(pos, eol - pos);
    pos = eol + 1;
    out += line + "\n";
    bool is_stage = line.size() > 2 && line[0] == ' ' && line[1] == ' ' &&
                    line[2] != ' ' && line.rfind("  order-by:", 0) != 0;
    if (!is_stage || row >= executed.operators.size()) continue;
    const OperatorStats& op = executed.operators[row++];
    std::snprintf(buf, sizeof(buf),
                  "    -> %.3f ms (materialize %.3f, index %.3f, merge "
                  "%.3f) | in %llu out %llu tuples, %llu keys",
                  op.total_ms, op.materialize_ms, op.index_ms, op.merge_ms,
                  static_cast<unsigned long long>(op.input_tuples),
                  static_cast<unsigned long long>(op.output_tuples),
                  static_cast<unsigned long long>(op.output_keys));
    out += buf;
    if (op.morsels > 0) {
      std::snprintf(buf, sizeof(buf), " | morsels %llu (merge %llu)",
                    static_cast<unsigned long long>(op.morsels),
                    static_cast<unsigned long long>(op.merge_morsels));
      out += buf;
    }
    out += "\n";
  }
  std::snprintf(buf, sizeof(buf),
                "executed: total %.3f ms, wall %.3f ms, threads %zu, "
                "read_ts %llu\n",
                executed.total_ms, executed.wall_ms, executed.threads,
                static_cast<unsigned long long>(executed.read_ts));
  out += buf;
  if (stats != nullptr) *stats = std::move(executed);
  return out;
}

Result<QueryResult> QuerySession::Execute(const Database& db,
                                          const Plan& plan, PlanKnobs knobs,
                                          PlanStats* stats) {
  Timer wall;
  auto result = runner_->Execute(db, plan, knobs, stats);
  ++queries_run_;
  total_wall_ms_ += wall.ElapsedMs();
  return result;
}

Result<QueryResult> QuerySession::Execute(const Database& db,
                                          const query::QuerySpec& spec,
                                          PlanKnobs knobs, PlanStats* stats) {
  Timer wall;
  auto result = runner_->Execute(db, spec, knobs, stats);
  ++queries_run_;
  total_wall_ms_ += wall.ElapsedMs();
  return result;
}

Result<QueryResult> QuerySession::Execute(const PreparedQuery& prepared,
                                          const query::QueryParams& params,
                                          PlanKnobs knobs, PlanStats* stats) {
  Timer wall;
  auto result = runner_->Execute(prepared, params, knobs, stats);
  ++queries_run_;
  total_wall_ms_ += wall.ElapsedMs();
  return result;
}

}  // namespace qppt::engine
