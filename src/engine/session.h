// The engine front door: multi-query admission over one worker pool.
//
// EngineRunner owns the WorkerPool and admits queries from many client
// threads at once — each query's parallel operators submit morsel batches
// that interleave over the shared workers, so N clients with W workers
// share the machine instead of oversubscribing it.
//
// It also serves *index reads* (point and range lookups against one
// IndexedTable): concurrent compatible reads are batched group-commit
// style — the first waiter becomes the batch leader, gathers requests
// arriving within a short window, and answers the whole batch with ONE
// shared pass over the index. Point batches build a probe KISS-Tree of
// the requested keys and co-traverse it with the data tree via the
// synchronous index scan (core/sync_scan.h) — the same skip-subtree
// machinery QPPT uses for joins, reused as a multi-query optimization.
//
// QuerySession is the per-client handle: a thin wrapper that tracks
// per-session statistics.

#ifndef QPPT_ENGINE_SESSION_H_
#define QPPT_ENGINE_SESSION_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/base_index.h"
#include "core/indexed_table.h"
#include "core/plan.h"
#include "core/query/query_spec.h"
#include "engine/prepared.h"
#include "util/status.h"

namespace qppt::engine {

class WorkerPool;

struct EngineConfig {
  // Morsel workers. 1 = serial execution (no pool); the default uses
  // every hardware thread. Values above hardware_concurrency() are
  // clamped by the runner (logged once) — oversubscribing a fixed morsel
  // pool only buys context-switch overhead.
  size_t threads = std::thread::hardware_concurrency();
  // Opt-out for the clamp above: tests (and the TSan CI job) deliberately
  // oversubscribe tiny machines to shake out interleavings.
  bool clamp_threads_to_hardware = true;
  // Shared-read batching: a leader flushes once `read_batch_max` requests
  // are pending or `read_batch_window_us` elapsed, whichever is first.
  size_t read_batch_max = 64;
  int64_t read_batch_window_us = 100;
  // Admission control: queries executing at once (0 = unlimited). Excess
  // Execute callers wait for a slot (see the timeout/shedding knobs
  // below); queries_waiting() reports how many are waiting.
  size_t max_concurrent_queries = 0;
  // Tiered admission: of the slots above, how many kBatch-priority
  // queries may run at once (0 = no separate cap). kInteractive work can
  // always use every slot; the batch cap keeps background flights from
  // starving interactive clients.
  size_t max_concurrent_batch = 0;
  // Default time a query may wait for an admission slot before Execute
  // gives up with ResourceExhausted. Negative = wait forever (the
  // pre-tiered behavior). PlanKnobs::queue_timeout_ms overrides
  // per query.
  double admission_timeout_ms = -1;
  // Bound on the admission wait queue (0 = unbounded): a query that
  // would have to wait while `admission_queue_limit` others already are
  // is rejected immediately with ResourceExhausted.
  size_t admission_queue_limit = 0;
  // Load shedding: when more than this many queries are waiting, kBatch
  // work is rejected immediately instead of queueing (0 = off).
  // Interactive queries still queue.
  size_t shed_batch_waiting_threshold = 0;
};

class QuerySession;
class WriteSession;

class EngineRunner {
 public:
  explicit EngineRunner(EngineConfig config = EngineConfig{});
  ~EngineRunner();
  EngineRunner(const EngineRunner&) = delete;
  EngineRunner& operator=(const EngineRunner&) = delete;

  size_t threads() const { return config_.threads; }
  // The shared pool, or nullptr when configured serial (threads <= 1).
  WorkerPool* pool() { return pool_.get(); }

  // Admits and executes one query. Safe to call from many client threads
  // concurrently; each call gets a private ExecContext wired to the
  // shared pool, with knobs.threads forced to the engine's configuration.
  //
  // Admission: with max_concurrent_queries set, excess callers wait here
  // until a slot frees — bounded by the queue timeout
  // (knobs.queue_timeout_ms / EngineConfig::admission_timeout_ms →
  // ResourceExhausted), the queue limit and batch-shedding knobs
  // (immediate ResourceExhausted), and knobs.priority's class cap.
  //
  // Cancellation: knobs.cancel and/or knobs.deadline_ms bound the whole
  // call including the admission wait; a stopped query returns
  // Cancelled/DeadlineExceeded with the admission slot, snapshot pin,
  // and partial outputs released.
  [[nodiscard]] Result<QueryResult> Execute(const Database& db,
                                            const Plan& plan, PlanKnobs knobs,
                                            PlanStats* stats = nullptr);

  // Declarative front door: plans `spec` with the rule-based planner
  // (core/query/planner.h) and executes the result.
  [[nodiscard]] Result<QueryResult> Execute(const Database& db,
                                            const query::QuerySpec& spec,
                                            PlanKnobs knobs,
                                            PlanStats* stats = nullptr);

  // EXPLAIN ANALYZE: plans `spec`, executes it through the normal
  // admission path, and returns the ExplainPlan rendering with each
  // stage line followed by that stage's executed statistics (wall time,
  // cardinalities, morsel/merge counts) plus a trailing execution
  // summary. The planner's stage labels guarantee the explain lines and
  // the PlanStats rows align line-for-line. `stats`, when given,
  // receives the same executed statistics (including the trace handle
  // when knobs.trace is set).
  [[nodiscard]] Result<std::string> ExplainAnalyze(
      const Database& db, const query::QuerySpec& spec,
      PlanKnobs knobs = PlanKnobs{}, PlanStats* stats = nullptr);

  // Compiles `spec` once against `db` and returns a cached-plan handle;
  // fails fast on a spec the planner rejects. `db` must outlive every
  // execution of the prepared query.
  [[nodiscard]] Result<PreparedQuery> Prepare(const Database& db,
                                              query::QuerySpec spec);

  // Executes a prepared query, re-binding `params` into the predicate
  // constants. Replanning is skipped whenever this (knobs, params)
  // combination ran before on the same PreparedQuery.
  [[nodiscard]] Result<QueryResult> Execute(
      const PreparedQuery& prepared, const query::QueryParams& params = {},
      PlanKnobs knobs = PlanKnobs{}, PlanStats* stats = nullptr);

  QuerySession OpenSession();

  // ---- the write path (HTAP) ------------------------------------------------
  //
  // Opens one read-write transaction against `db`'s versioned tables.
  // Concurrent with any number of queries: queries pin their snapshot at
  // admission and never see a half-committed transaction. See
  // engine/write_session.h for the full model.
  WriteSession OpenWriteSession(Database* db);

  // The oldest read timestamp any in-flight query is pinned to (the
  // reclamation horizon). With no query in flight this is the latest
  // committed timestamp — everything superseded is reclaimable.
  Timestamp OldestActiveReadTs(const Database& db) const;

  // Epoch-deferred reclamation sweep: unlinks version-chain tails no
  // active or future snapshot can reach, across all versioned tables.
  // Returns the number of versions unlinked. Safe to call any time (takes
  // the database write lock; readers are never blocked).
  size_t ReclaimVersions(Database* db);

  struct WriteStats {
    uint64_t committed = 0;
    uint64_t aborted = 0;
    // Conflict retries performed by engine::RetryTxn (engine/retry.h).
    uint64_t retries = 0;
  };
  WriteStats write_stats() const {
    // relaxed (all): statistics snapshot; staleness is fine.
    return {txns_committed_.load(std::memory_order_relaxed),
            txns_aborted_.load(std::memory_order_relaxed),
            txn_retries_.load(std::memory_order_relaxed)};
  }
  // Accounting hook for engine/retry.h (one first-updater-wins conflict
  // retried); surfaces in write_stats().retries.
  void NoteTxnRetry() {
    // relaxed: statistics counter; no ordering needed.
    txn_retries_.fetch_add(1, std::memory_order_relaxed);
  }

  // All tuple ids stored under `key` in `table`, in unspecified duplicate
  // order. Concurrent callers against the same table are answered by one
  // shared scan per batch. Supported tables: plain (non-aggregated) with
  // a single int64-like key column; aggregated, composite-keyed, or
  // double-keyed tables yield empty results. `table` must outlive every
  // read; the runner keeps a per-table batcher until ReleaseReads(table)
  // or destruction. If the shared scan fails (e.g. allocation failure),
  // the leader's error Status is propagated to EVERY request of the
  // batch — followers never observe silently-empty results.
  [[nodiscard]] Result<std::vector<uint64_t>> PointRead(
      const IndexedTable& table, int64_t key);
  // All tuple ids with keys in [lo, hi], in ascending key order. Same
  // contract as PointRead.
  [[nodiscard]] Result<std::vector<uint64_t>> RangeRead(
      const IndexedTable& table, int64_t lo, int64_t hi);

  // Evicts the per-table read batcher, allowing `table` to be destroyed
  // (e.g. a short-lived intermediate). Reads already in flight finish
  // against the old batcher; later reads get a fresh one.
  void ReleaseReads(const IndexedTable& table);

  struct ReadStats {
    uint64_t reads = 0;         // PointRead + RangeRead calls
    uint64_t shared_scans = 0;  // index passes actually executed
    uint64_t batched_keys = 0;  // requests answered by those passes
  };
  ReadStats read_stats() const;

  uint64_t queries_admitted() const {
    // relaxed: statistics counter; no ordering needed.
    return queries_admitted_.load(std::memory_order_relaxed);
  }
  // Execute callers currently waiting for an admission slot.
  uint64_t queries_waiting() const {
    // relaxed: statistics counter; no ordering needed.
    return queries_waiting_.load(std::memory_order_relaxed);
  }
  // Queries currently holding an admission slot (0 when admission
  // control is off). Tests assert this drains to zero after
  // cancellations/timeouts — a leak here is a lost slot.
  size_t queries_running() const;
  // Snapshots currently pinned by in-flight queries; drains to zero with
  // them.
  size_t pinned_snapshots() const;

  struct Batcher;  // defined in session.cc (shared-read group commit)

 private:
  friend class QuerySession;
  friend class WriteSession;
  struct AdmitSlot;  // RAII admission-semaphore guard (session.cc)
  struct ReadPin;    // RAII pinned-snapshot registry entry (session.cc)

  std::shared_ptr<Batcher> BatcherFor(const IndexedTable& table);

  void NoteCommit() {
    // relaxed: statistics counter; no ordering needed.
    txns_committed_.fetch_add(1, std::memory_order_relaxed);
  }
  void NoteAbort() {
    // relaxed: statistics counter; no ordering needed.
    txns_aborted_.fetch_add(1, std::memory_order_relaxed);
  }

  EngineConfig config_;
  std::unique_ptr<WorkerPool> pool_;
  std::atomic<uint64_t> queries_admitted_{0};
  std::atomic<uint64_t> next_session_id_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> shared_scans_{0};
  std::atomic<uint64_t> batched_keys_{0};
  std::mutex batchers_mu_;
  std::map<const IndexedTable*, std::shared_ptr<Batcher>> batchers_;
  // Tiered admission state (max_concurrent_queries > 0). Both counts are
  // guarded by admit_mu_; kBatch queries count in both.
  mutable std::mutex admit_mu_;
  std::condition_variable admit_cv_;
  size_t queries_running_ = 0;
  size_t batch_running_ = 0;
  std::atomic<uint64_t> queries_waiting_{0};
  // Pinned query snapshots (multiset: many queries may pin the same ts);
  // the minimum is the version-reclamation horizon.
  mutable std::mutex pins_mu_;
  std::multiset<Timestamp> pinned_read_ts_;
  std::atomic<uint64_t> txns_committed_{0};
  std::atomic<uint64_t> txns_aborted_{0};
  std::atomic<uint64_t> txn_retries_{0};
};

// A client handle onto the runner: same operations, plus per-session
// accounting. Cheap to create; use one per client thread.
class QuerySession {
 public:
  size_t id() const { return id_; }
  uint64_t queries_run() const { return queries_run_; }
  double total_wall_ms() const { return total_wall_ms_; }

  [[nodiscard]] Result<QueryResult> Execute(const Database& db,
                                            const Plan& plan, PlanKnobs knobs,
                                            PlanStats* stats = nullptr);
  [[nodiscard]] Result<QueryResult> Execute(const Database& db,
                                            const query::QuerySpec& spec,
                                            PlanKnobs knobs,
                                            PlanStats* stats = nullptr);
  [[nodiscard]] Result<QueryResult> Execute(
      const PreparedQuery& prepared, const query::QueryParams& params = {},
      PlanKnobs knobs = PlanKnobs{}, PlanStats* stats = nullptr);
  [[nodiscard]] Result<std::vector<uint64_t>> PointRead(
      const IndexedTable& table, int64_t key) {
    return runner_->PointRead(table, key);
  }
  [[nodiscard]] Result<std::vector<uint64_t>> RangeRead(
      const IndexedTable& table, int64_t lo, int64_t hi) {
    return runner_->RangeRead(table, lo, hi);
  }

 private:
  friend class EngineRunner;
  QuerySession(EngineRunner* runner, size_t id) : runner_(runner), id_(id) {}

  EngineRunner* runner_;
  size_t id_;
  uint64_t queries_run_ = 0;
  double total_wall_ms_ = 0;
};

}  // namespace qppt::engine

#endif  // QPPT_ENGINE_SESSION_H_
