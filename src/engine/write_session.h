// The engine write path: transactional writes against a Database's
// versioned (MVCC) tables, wired into the live base indexes.
//
// A WriteSession is one read-write transaction. Writes go to the MVCC
// version chains immediately (visible only to this session); Commit
// publishes them to every live index of the touched tables and stamps the
// commit timestamp, at which point in-flight OLAP queries admitted later
// — and only those — see the new data. Queries pin their read timestamp
// at admission (EngineRunner::Execute), so a query that races a commit is
// still snapshot-consistent: the single RidVisibleAt filter at the
// operator chokepoints hides rows committed after its snapshot.
//
// Concurrency model (§7: no rebalancing, deterministic key positions):
//   - a coarse per-database writer lock (Database::write_mutex) serializes
//     all mutations — version-chain writes, live-index inserts, commit
//     stamping. Multiple WriteSessions may be open at once; their
//     operations interleave at lock granularity and conflicts resolve
//     first-updater-wins inside MvccTable.
//   - readers take NO lock, ever. Trees publish new nodes/values with
//     release stores; MVCC begin/end stamps publish with release stores;
//     a reader either sees a row's version as committed for its snapshot
//     or filters it out.
//
// Commit order matters and is fixed here:
//   1. insert the transaction's new physical rows into the live indexes
//      (rows are still invisible: begin_ts == infinity),
//   2. allocate the commit timestamp (TransactionManager::BeginCommit),
//   3. stamp the version chains (MvccTable::CommitTransaction),
//   4. publish (TransactionManager::FinishCommit) — only now can a new
//      query's snapshot include the timestamp, and by then every index
//      already holds the rows.

#ifndef QPPT_ENGINE_WRITE_SESSION_H_
#define QPPT_ENGINE_WRITE_SESSION_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/base_index.h"
#include "storage/mvcc.h"
#include "util/cancel.h"
#include "util/status.h"

namespace qppt::engine {

class EngineRunner;

// Not thread-safe: one client thread drives one WriteSession. Open many
// sessions for concurrent writers. Destroying an active session aborts it.
class WriteSession {
 public:
  WriteSession(WriteSession&& other) noexcept;
  WriteSession& operator=(WriteSession&&) = delete;
  ~WriteSession();

  uint64_t id() const { return txn_.id; }
  Timestamp read_ts() const { return txn_.read_ts; }
  // True until Commit or Abort.
  bool active() const { return active_; }

  // Attaches a cancellation/deadline token. Commit() checks it before
  // publishing anything and turns a fired token into an Abort — the
  // caller asked for the work not to land. Token must outlive the
  // session (or be detached with nullptr).
  void SetCancelToken(const CancelToken* token) { cancel_ = token; }

  // Inserts a new logical row; visible to this session immediately and to
  // others after Commit. Returns the logical row id.
  [[nodiscard]] Result<MvccTable::LogicalId> Insert(
      const std::string& table, std::span<const uint64_t> row);

  // Installs a new version of logical row `id`. AlreadyExists = lost a
  // write-write conflict (first-updater-wins); NotFound = row deleted in
  // this snapshot or never committed.
  [[nodiscard]] Status Update(const std::string& table,
                              MvccTable::LogicalId id,
                              std::span<const uint64_t> row);

  // Marks `id` deleted. Same failure contract as Update.
  [[nodiscard]] Status Delete(const std::string& table,
                              MvccTable::LogicalId id);

  // Physical rid of the version visible to this session (reads through
  // its own uncommitted writes), or nullopt if invisible/deleted.
  Result<std::optional<Rid>> Read(const std::string& table,
                                  MvccTable::LogicalId id) const;

  // Publishes this transaction: live-index inserts, stamp, publish (see
  // file comment for the order). Returns the commit timestamp.
  [[nodiscard]] Result<Timestamp> Commit();

  // Reverts every pending write. Rows already fed to live indexes by an
  // earlier Commit are unaffected (Abort before Commit never reaches
  // them).
  Status Abort();

 private:
  friend class EngineRunner;
  WriteSession(EngineRunner* runner, Database* db);

  Result<MvccTable*> Table(const std::string& name);

  EngineRunner* runner_ = nullptr;
  Database* db_ = nullptr;
  const CancelToken* cancel_ = nullptr;
  Transaction txn_;
  // Versioned tables with pending writes, in first-touch order.
  std::vector<MvccTable*> touched_;
  bool active_ = false;
};

}  // namespace qppt::engine

#endif  // QPPT_ENGINE_WRITE_SESSION_H_
