#include "engine/scheduler.h"

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace qppt::engine {

void MorselTuner::RecordBatch(std::vector<double>* morsel_ms) {
  // A 1-morsel batch carries no skew signal, and a batch that was capped
  // by the partitioner (fewer morsels than requested) would mis-read as
  // "coarse enough" — both still feed the overhead check below, so only
  // the degenerate sizes are skipped.
  if (morsel_ms->size() < 2) return;
  std::sort(morsel_ms->begin(), morsel_ms->end());
  double median = (*morsel_ms)[morsel_ms->size() / 2];
  double max = morsel_ms->back();
  std::lock_guard<std::mutex> lock(mu_);
  if (max > kSkewFactor * median && max > kMinMorselMs) {
    // One shard dominated the fork-join: split finer so the straggler's
    // key range lands in several steal-able morsels next batch.
    if (per_worker_ < kMaxPerWorker) {
      per_worker_ *= 2;
      ++refines_;
    }
  } else if (median < kMinMorselMs && per_worker_ > kMinPerWorker) {
    // Uniform but tiny morsels: scheduling overhead dominates, coarsen.
    per_worker_ /= 2;
    ++coarsens_;
  }
}

MorselTuner* WorkerPool::TunerFor(std::string_view site) {
  std::lock_guard<std::mutex> lock(tuners_mu_);
  auto it = site_tuners_.find(site);
  if (it == site_tuners_.end()) {
    it = site_tuners_.try_emplace(std::string(site)).first;
  }
  return &it->second;
}

size_t WorkerPool::num_tuner_sites() const {
  std::lock_guard<std::mutex> lock(tuners_mu_);
  return site_tuners_.size();
}

WorkerPool::WorkerPool(size_t threads) {
  if (threads == 0) return;
  deques_.resize(threads);
  workers_.reserve(threads);
  for (size_t w = 0; w < threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool WorkerPool::PopOrStealLocked(size_t worker, Item* item) {
  std::deque<Item>& own = deques_[worker];
  if (!own.empty()) {
    *item = own.back();  // own work LIFO: best cache locality
    own.pop_back();
    return true;
  }
  size_t n = deques_.size();
  for (size_t k = 1; k < n; ++k) {
    std::deque<Item>& victim = deques_[(worker + k) % n];
    if (!victim.empty()) {
      *item = victim.front();  // steal FIFO: take the coldest morsel
      victim.pop_front();
      return true;
    }
  }
  return false;
}

void WorkerPool::WorkerLoop(size_t worker) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Item item;
    if (PopOrStealLocked(worker, &item)) {
      Batch* batch = item.batch;
      bool skip = batch->failed;
      std::exception_ptr error;
      if (!skip) {
        lock.unlock();
        try {
          (*batch->fn)(worker, item.index);
        } catch (...) {
          error = std::current_exception();
        }
        lock.lock();
      }
      if (error) {
        batch->failed = true;
        if (!batch->error) batch->error = error;
      }
      if (--batch->outstanding == 0) done_cv_.notify_all();
      continue;
    }
    if (stop_) return;
    work_cv_.wait(lock);
  }
}

void WorkerPool::Run(size_t num_morsels, const MorselFn& fn) {
  if (num_morsels == 0) return;
  if (deques_.empty()) {
    // No workers: inline serial execution, worker id 0.
    for (size_t m = 0; m < num_morsels; ++m) fn(0, m);
    return;
  }
  Batch batch;
  batch.fn = &fn;
  batch.outstanding = num_morsels;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t m = 0; m < num_morsels; ++m) {
      deques_[next_deque_].push_back(Item{&batch, m});
      next_deque_ = (next_deque_ + 1) % deques_.size();
    }
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return batch.outstanding == 0; });
  if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace qppt::engine
