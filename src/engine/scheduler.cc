#include "engine/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "dbg/invariants.h"
#include "dbg/lock_rank.h"
#include "obs/metrics.h"
#include "util/failpoint.h"

namespace qppt::engine {

namespace {

uint64_t ElapsedNs(std::chrono::steady_clock::time_point t0,
                   std::chrono::steady_clock::time_point t1) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

// True while this thread is executing a morsel body (either on a pool
// worker or on the submitter via the inline no-worker path). Guards the
// documented "Run must not be called from inside a morsel" rule: a
// nested submit would block the worker on done_cv_ while its own batch
// still counts it as outstanding — a silent deadlock. The dbg invariant
// turns that into a deterministic abort.
thread_local bool t_in_morsel = false;

struct InMorselScope {
  InMorselScope() { t_in_morsel = true; }
  ~InMorselScope() { t_in_morsel = false; }
  InMorselScope(const InMorselScope&) = delete;
  InMorselScope& operator=(const InMorselScope&) = delete;
};

}  // namespace

void MorselTuner::RecordBatch(std::vector<double>* morsel_ms) {
  // A 1-morsel batch carries no skew signal, and a batch that was capped
  // by the partitioner (fewer morsels than requested) would mis-read as
  // "coarse enough" — both still feed the overhead check below, so only
  // the degenerate sizes are skipped.
  if (morsel_ms->size() < 2) return;
  // Resolved once: tuner decisions are engine-wide signals regardless of
  // which site's feedback loop fired.
  static obs::Counter* refines_total = obs::MetricsRegistry::Global().GetCounter(
      "engine_tuner_refines_total",
      "Morsel-tuner decisions that doubled a site's split count (skew).");
  static obs::Counter* coarsens_total =
      obs::MetricsRegistry::Global().GetCounter(
          "engine_tuner_coarsens_total",
          "Morsel-tuner decisions that halved a site's split count "
          "(scheduling overhead).");
  std::sort(morsel_ms->begin(), morsel_ms->end());
  double median = (*morsel_ms)[morsel_ms->size() / 2];
  double max = morsel_ms->back();
  dbg::RankedLockGuard lock(dbg::LockRank::kMorselTuner, mu_);
  if (max > kSkewFactor * median && max > kMinMorselMs) {
    // One shard dominated the fork-join: split finer so the straggler's
    // key range lands in several steal-able morsels next batch.
    if (per_worker_ < kMaxPerWorker) {
      per_worker_ *= 2;
      ++refines_;
      refines_total->Add();
    }
  } else if (median < kMinMorselMs && per_worker_ > kMinPerWorker) {
    // Uniform but tiny morsels: scheduling overhead dominates, coarsen.
    per_worker_ /= 2;
    ++coarsens_;
    coarsens_total->Add();
  }
}

std::shared_ptr<MorselTuner> WorkerPool::TunerFor(std::string_view site) {
  dbg::RankedLockGuard lock(dbg::LockRank::kTunerMap, tuners_mu_);
  auto it = site_tuners_.find(site);
  if (it == site_tuners_.end()) {
    if (site_tuners_.size() >= kMaxTunerSites) {
      // Evict the least-recently-used site. O(sites) scan, but the map is
      // capped at kMaxTunerSites and eviction only fires on cold misses.
      auto victim = site_tuners_.begin();
      for (auto cand = site_tuners_.begin(); cand != site_tuners_.end();
           ++cand) {
        if (cand->second.last_used < victim->second.last_used) victim = cand;
      }
      site_tuners_.erase(victim);
      tuner_evictions_->Add();
    }
    it = site_tuners_
             .try_emplace(std::string(site),
                          SiteEntry{std::make_shared<MorselTuner>(), 0})
             .first;
    tuner_sites_->Set(static_cast<int64_t>(site_tuners_.size()));
  }
  it->second.last_used = ++tuner_use_clock_;
  return it->second.tuner;
}

size_t WorkerPool::num_tuner_sites() const {
  dbg::RankedLockGuard lock(dbg::LockRank::kTunerMap, tuners_mu_);
  return site_tuners_.size();
}

WorkerPool::WorkerPool(size_t threads) {
  auto& reg = obs::MetricsRegistry::Global();
  tasks_executed_ = reg.GetCounter(
      "engine_tasks_executed_total",
      "Morsels executed by the worker pool (sharded by worker id).");
  tasks_stolen_ = reg.GetCounter(
      "engine_tasks_stolen_total",
      "Morsels taken from another worker's deque (sharded by thief id).");
  steal_failures_ = reg.GetCounter(
      "engine_steal_failures_total",
      "Times a worker found every deque empty and went to sleep.");
  worker_busy_ns_ = reg.GetCounter(
      "engine_worker_busy_ns_total",
      "Nanoseconds workers spent executing morsels (sharded by worker id).");
  worker_idle_ns_ = reg.GetCounter(
      "engine_worker_idle_ns_total",
      "Nanoseconds workers spent parked waiting for work (sharded by "
      "worker id).");
  queue_depth_ = reg.GetGauge(
      "engine_queue_depth", "Morsels queued in worker deques, not yet begun.");
  tuner_sites_ = reg.GetGauge(
      "engine_tuner_sites", "Per-operator-site morsel tuners resident.");
  tuner_evictions_ = reg.GetCounter(
      "engine_tuner_evictions_total",
      "Cold tuner sites evicted from the bounded per-site tuner map.");
  if (threads == 0) return;
  deques_.resize(threads);
  workers_.reserve(threads);
  for (size_t w = 0; w < threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    dbg::RankedLockGuard lock(dbg::LockRank::kScheduler, mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool WorkerPool::PopOrStealLocked(size_t worker, Item* item, bool* stolen) {
  *stolen = false;
  std::deque<Item>& own = deques_[worker];
  if (!own.empty()) {
    *item = own.back();  // own work LIFO: best cache locality
    own.pop_back();
    return true;
  }
  size_t n = deques_.size();
  for (size_t k = 1; k < n; ++k) {
    std::deque<Item>& victim = deques_[(worker + k) % n];
    if (!victim.empty()) {
      *item = victim.front();  // steal FIFO: take the coldest morsel
      victim.pop_front();
      *stolen = true;
      return true;
    }
  }
  return false;
}

void WorkerPool::WorkerLoop(size_t worker) {
  using SteadyClock = std::chrono::steady_clock;
  dbg::NoteLockAcquired(dbg::LockRank::kScheduler);
  // lock-rank: manual — the unlocked morsel-execution window below must
  // drop and re-note the rank token precisely (RankedUniqueLock's token
  // would claim the rank across the window and veto locks the morsel
  // body legitimately takes at lower ranks).
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Item item;
    bool stolen = false;
    if (PopOrStealLocked(worker, &item, &stolen)) {
      queue_depth_->Add(-1);
      Batch* batch = item.batch;
      bool skip = batch->failed;
      std::exception_ptr error;
      if (!skip) {
        lock.unlock();
        dbg::NoteLockReleased(dbg::LockRank::kScheduler);
        if (stolen) tasks_stolen_->AddShard(worker);
        SteadyClock::time_point t0 = SteadyClock::now();
        try {
          InMorselScope in_morsel;
          (*batch->fn)(worker, item.index);
        } catch (...) {
          error = std::current_exception();
        }
        tasks_executed_->AddShard(worker);
        worker_busy_ns_->AddShard(worker, ElapsedNs(t0, SteadyClock::now()));
        dbg::NoteLockAcquired(dbg::LockRank::kScheduler);
        lock.lock();
      }
      if (error) {
        batch->failed = true;
        if (!batch->error) batch->error = error;
      }
      if (--batch->outstanding == 0) done_cv_.notify_all();
      continue;
    }
    if (stop_) return;
    steal_failures_->AddShard(worker);
    SteadyClock::time_point idle0 = SteadyClock::now();
    work_cv_.wait(lock);
    worker_idle_ns_->AddShard(worker, ElapsedNs(idle0, SteadyClock::now()));
  }
}

void WorkerPool::Run(size_t num_morsels, const MorselFn& fn) {
  if (num_morsels == 0) return;
  if (dbg::InvariantsEnabled() && t_in_morsel) {
    std::fprintf(stderr,
                 "qppt dbg: WorkerPool::Run called from inside a morsel — "
                 "nested batches deadlock (the worker would block on its "
                 "own batch). Restructure the operator to submit one "
                 "batch from the driver thread.\n");
    std::abort();
  }
  QPPT_FAILPOINT(sched_submit);
  if (deques_.empty()) {
    // No workers: inline serial execution, worker id 0. The in-morsel
    // scope covers this path too — the nested-Run rule is about batch
    // semantics, not just the deadlock mechanics of pooled mode.
    InMorselScope in_morsel;
    for (size_t m = 0; m < num_morsels; ++m) fn(0, m);
    tasks_executed_->AddShard(0, num_morsels);
    return;
  }
  Batch batch;
  batch.fn = &fn;
  batch.outstanding = num_morsels;
  {
    dbg::RankedLockGuard lock(dbg::LockRank::kScheduler, mu_);
    // Incremented before the pushes so a racing pop never reads the
    // gauge below zero.
    queue_depth_->Add(static_cast<int64_t>(num_morsels));
    for (size_t m = 0; m < num_morsels; ++m) {
      deques_[next_deque_].push_back(Item{&batch, m});
      next_deque_ = (next_deque_ + 1) % deques_.size();
    }
  }
  work_cv_.notify_all();
  dbg::RankedUniqueLock lock(dbg::LockRank::kScheduler, mu_);
  done_cv_.wait(lock.lock(), [&] { return batch.outstanding == 0; });
  if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace qppt::engine
