// Work-stealing morsel scheduler — the engine's execution substrate.
//
// A fixed pool of worker threads executes *morsels*: small, independent
// units of operator work (typically one disjoint key subrange produced by
// PartitionKissRange / PartitionPrefixRange, core/parallel.h). Each
// worker owns a deque; a submitted batch is spread round-robin across the
// deques, workers pop their own deque LIFO and steal FIFO from others
// when idle. Morsels from *different* concurrent queries interleave
// freely over the same workers, which is what lets one fixed pool serve
// many admitted queries (morsel-driven parallelism à la HyPer, adapted to
// QPPT's deterministic tree partitions).
//
// Kept deliberately simple (KISS): one pool-wide mutex guards the deques
// — morsels are coarse (thousands of tuples), so the lock is cold — and
// the whole scheduler is a few hundred auditable lines, TSan-clean by
// construction.

#ifndef QPPT_ENGINE_SCHEDULER_H_
#define QPPT_ENGINE_SCHEDULER_H_

#include <condition_variable>
#include <cstddef>

#include "dbg/lock_rank.h"
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace qppt::obs {
class Counter;
class Gauge;
}  // namespace qppt::obs

namespace qppt::engine {

// Adaptive morsel sizing: a feedback loop that replaces the engine's
// fixed morsels-per-worker split count. The parallel drivers
// (engine/parallel_ops.h) report each batch's per-morsel wall times;
// when the slowest morsel exceeds ~2x the median (skew — one shard
// dominating the fork-join), the next batch splits finer so work
// stealing can even it out; when morsels are so small that scheduling
// overhead dominates, the next batch splits coarser. The state is
// deliberately coarse: morsel sources are deterministic tree
// partitions, so finer/coarser only changes shard count, never
// correctness. Tuners are keyed per *operator site*
// (WorkerPool::TunerFor) — a pool-global loop would let interleaved
// queries with different per-morsel cost profiles pollute each other's
// split counts.
class MorselTuner {
 public:
  static constexpr size_t kBasePerWorker = 8;
  static constexpr size_t kMinPerWorker = 2;
  static constexpr size_t kMaxPerWorker = 64;
  // Re-split when max > kSkewFactor * median.
  static constexpr double kSkewFactor = 2.0;
  // Coarsen when the median morsel is shorter than this (scheduling
  // overhead territory).
  static constexpr double kMinMorselMs = 0.05;

  // Current split target for a pool with `workers` workers.
  size_t MorselTarget(size_t workers) const {
    dbg::RankedLockGuard lock(dbg::LockRank::kMorselTuner, mu_);
    return workers * per_worker_;
  }

  size_t per_worker() const {
    dbg::RankedLockGuard lock(dbg::LockRank::kMorselTuner, mu_);
    return per_worker_;
  }
  size_t refines() const {
    dbg::RankedLockGuard lock(dbg::LockRank::kMorselTuner, mu_);
    return refines_;
  }
  size_t coarsens() const {
    dbg::RankedLockGuard lock(dbg::LockRank::kMorselTuner, mu_);
    return coarsens_;
  }

  // Feeds one finished batch's per-morsel wall times back into the loop.
  // `morsel_ms` is consumed (sorted in place).
  void RecordBatch(std::vector<double>* morsel_ms);

 private:
  mutable std::mutex mu_;
  size_t per_worker_ = kBasePerWorker;
  size_t refines_ = 0;   // skew-triggered finer splits
  size_t coarsens_ = 0;  // overhead-triggered coarser splits
};

class WorkerPool {
 public:
  // fn(worker, morsel): `worker` is a stable id in [0, num_workers()) —
  // index per-worker partial states with it; `morsel` is the batch-local
  // morsel index.
  using MorselFn = std::function<void(size_t worker, size_t morsel)>;

  // `threads` worker threads; 0 = no workers, Run() executes inline on
  // the calling thread (worker id 0; num_workers() reports 1).
  explicit WorkerPool(size_t threads);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t num_workers() const { return deques_.empty() ? 1 : deques_.size(); }

  // The default tuner's split target for this pool's next morsel batch
  // (used by callers without an operator site, e.g. merge-range
  // planning).
  size_t morsel_target() const { return tuner_.MorselTarget(num_workers()); }
  // The pool's default (site-less) tuner.
  MorselTuner* tuner() { return &tuner_; }

  // The adaptive tuner of one operator site (keyed by the operator's
  // planner stage label / display name). Each site carries its own
  // feedback loop, so two interleaved queries with different per-morsel
  // cost profiles cannot pollute each other's split counts.
  //
  // Sites are held in a bounded LRU map (kMaxTunerSites): a workload that
  // cycles through many distinct plan labels (ad-hoc queries, tests)
  // evicts its coldest site instead of growing the map forever. The
  // shared_ptr keeps an evicted tuner alive for any operator still
  // mid-batch with it; a later request for the same site starts a fresh
  // feedback loop.
  static constexpr size_t kMaxTunerSites = 64;
  std::shared_ptr<MorselTuner> TunerFor(std::string_view site);
  // Distinct operator sites currently resident (excludes the default
  // tuner; never exceeds kMaxTunerSites).
  size_t num_tuner_sites() const;

  // Executes fn for every morsel index in [0, num_morsels) and blocks
  // until all have finished. Thread-safe: batches submitted concurrently
  // from different query threads interleave over the shared workers. If a
  // morsel throws, the batch's remaining morsels are skipped and the
  // first exception is rethrown here, on the submitting thread. Must not
  // be called from inside a morsel (no nested batches).
  void Run(size_t num_morsels, const MorselFn& fn);

 private:
  struct Batch {
    const MorselFn* fn = nullptr;
    size_t outstanding = 0;        // morsels not yet finished (guarded by mu_)
    bool failed = false;           // skip remaining morsels (guarded by mu_)
    std::exception_ptr error;      // first morsel exception (guarded by mu_)
  };
  struct Item {
    Batch* batch = nullptr;
    size_t index = 0;
  };

  void WorkerLoop(size_t worker);
  // Pops from the worker's own deque (back) or steals from another
  // worker's deque (front). Caller holds mu_. Sets *stolen when the item
  // came from a victim's deque.
  bool PopOrStealLocked(size_t worker, Item* item, bool* stolen);

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers: items available / stop
  std::condition_variable done_cv_;   // submitters: batch finished
  std::vector<std::deque<Item>> deques_;
  std::vector<std::thread> workers_;
  size_t next_deque_ = 0;  // round-robin distribution cursor (guarded by mu_)
  bool stop_ = false;
  MorselTuner tuner_;
  // Per-site tuners, LRU-bounded at kMaxTunerSites (see TunerFor).
  struct SiteEntry {
    std::shared_ptr<MorselTuner> tuner;
    uint64_t last_used = 0;
  };
  mutable std::mutex tuners_mu_;
  std::map<std::string, SiteEntry, std::less<>> site_tuners_;
  uint64_t tuner_use_clock_ = 0;  // guarded by tuners_mu_

  // Global-registry metrics, resolved once at construction (pointers are
  // stable for the registry's lifetime).
  obs::Counter* tasks_executed_;   // engine_tasks_executed_total, per worker
  obs::Counter* tasks_stolen_;     // engine_tasks_stolen_total, per worker
  obs::Counter* steal_failures_;   // engine_steal_failures_total
  obs::Counter* worker_busy_ns_;   // engine_worker_busy_ns_total, per worker
  obs::Counter* worker_idle_ns_;   // engine_worker_idle_ns_total, per worker
  obs::Gauge* queue_depth_;        // engine_queue_depth (queued, unstarted)
  obs::Gauge* tuner_sites_;        // engine_tuner_sites (resident sites)
  obs::Counter* tuner_evictions_;  // engine_tuner_evictions_total
};

}  // namespace qppt::engine

#endif  // QPPT_ENGINE_SCHEDULER_H_
