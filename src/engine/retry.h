// Bounded retry of write transactions around MVCC first-updater-wins
// conflicts.
//
// The engine's conflict signal is AlreadyExists (storage/mvcc.h): the
// losing writer must abort its whole transaction and try again. RetryTxn
// packages the loop every client would otherwise hand-roll — fresh
// session per attempt, commit on success, abort + jittered exponential
// backoff on conflict, hard stop after max_attempts — and reports each
// retry to the runner so write_stats().retries tracks contention.

#ifndef QPPT_ENGINE_RETRY_H_
#define QPPT_ENGINE_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "engine/session.h"
#include "engine/write_session.h"
#include "util/rng.h"
#include "util/status.h"

namespace qppt::engine {

// Tuning for RetryTxn. Backoff is "full jitter": each wait is uniform in
// [0, current_backoff), with current_backoff growing geometrically from
// initial_backoff_ms by `multiplier` up to max_backoff_ms.
struct RetryOptions {
  int max_attempts = 5;
  double initial_backoff_ms = 0.1;
  double multiplier = 2.0;
  double max_backoff_ms = 5.0;
  // Seeds the jitter stream (util/rng.h); give each writer thread its
  // own seed so colliding writers decorrelate deterministically.
  uint64_t seed = 0x7e7245eedULL;
};

// Runs `fn` — a callable taking WriteSession& and returning Status — in
// a fresh write transaction and commits on success. AlreadyExists (from
// fn or from Commit) aborts the transaction and retries after a jittered
// backoff; any other error aborts and returns immediately. Returns the
// last conflict error once max_attempts is exhausted. `fn` must re-derive
// any ids it writes on every call: the point of the retry is picking a
// fresh snapshot (and possibly fresh rows) each attempt.
template <typename Fn>
Status RetryTxn(EngineRunner* runner, Database* db, Fn&& fn,
                const RetryOptions& opts = {}) {
  Rng rng(opts.seed);
  double backoff_ms = opts.initial_backoff_ms;
  const int attempts = opts.max_attempts < 1 ? 1 : opts.max_attempts;
  Status last;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      runner->NoteTxnRetry();
      // Full jitter: uniform in [0, backoff) so writers that collided
      // once don't re-collide in lockstep.
      double sleep_ms = backoff_ms * rng.NextDouble();
      if (sleep_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(sleep_ms));
      }
      backoff_ms = std::min(backoff_ms * opts.multiplier,
                            opts.max_backoff_ms);
    }
    WriteSession ws = runner->OpenWriteSession(db);
    Status st = fn(ws);
    if (st.ok()) {
      Result<Timestamp> committed = ws.Commit();
      if (committed.ok()) return Status::OK();
      st = committed.status();
    }
    if (ws.active()) {
      Status aborted = ws.Abort();
      (void)aborted;
    }
    if (st.code() != StatusCode::kAlreadyExists) return st;
    last = std::move(st);
  }
  return last;
}

}  // namespace qppt::engine

#endif  // QPPT_ENGINE_RETRY_H_
