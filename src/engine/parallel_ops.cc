#include "engine/parallel_ops.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "util/bits.h"

namespace qppt::engine {

namespace {

// Test-only mutation of planned merge ranges (injects non-covering
// plans); see PartialOutputs::SetPlanMutatorForTest.
PartialOutputs::PlanMutator g_plan_mutator_for_test;

// Bucket-aligned KISS key ranges tiling the union key span of all
// non-empty partials, with the outermost bounds clamped to the exact
// span (so the first/last range workers skip the empty key regions of
// their boundary buckets, and the span end points can be read back off
// ranges.front()/.back() for the key statistics). Bucket alignment
// guarantees no two merge workers ever touch the same level-2 node of
// the destination tree.
std::vector<IndexedTable::MergeKeyRange> PlanKissMergeRanges(
    const std::vector<std::unique_ptr<IndexedTable>>& partials,
    size_t shards) {
  uint32_t lo = std::numeric_limits<uint32_t>::max();
  uint32_t hi = 0;
  size_t l2 = 0;
  for (const auto& p : partials) {
    const KissTree* tree = p->kiss();
    if (tree->empty()) continue;
    lo = std::min(lo, tree->min_key());
    hi = std::max(hi, tree->max_key());
    l2 = tree->level2_bits();
  }
  std::vector<IndexedTable::MergeKeyRange> ranges;
  if (lo > hi) return ranges;  // all partials empty
  uint64_t first_bucket = lo >> l2;
  uint64_t last_bucket = hi >> l2;
  size_t buckets = static_cast<size_t>(last_bucket - first_bucket + 1);
  for (const auto& [begin, end] : SplitEvenly(buckets, shards)) {
    IndexedTable::MergeKeyRange r;
    r.kiss_lo = static_cast<uint32_t>((first_bucket + begin) << l2);
    r.kiss_hi = static_cast<uint32_t>(
        std::min<uint64_t>(((first_bucket + end) << l2) - 1,
                           std::numeric_limits<uint32_t>::max()));
    ranges.push_back(r);
  }
  ranges.front().kiss_lo = lo;
  ranges.back().kiss_hi = hi;
  return ranges;
}

void SetKeyBit(uint8_t* key, size_t bit, bool value) {
  size_t byte = bit >> 3;
  uint8_t mask = static_cast<uint8_t>(0x80 >> (bit & 7));
  if (value) {
    key[byte] |= mask;
  } else {
    key[byte] &= static_cast<uint8_t>(~mask);
  }
}

// Builds an inclusive range bound: the shared prefix of `prefix_key`
// above `bit_off`, fragment `frag` at [bit_off, bit_off + width), and
// all-zeros (lower bound) or all-ones (upper bound) below.
void BuildBoundKey(uint8_t* out, const uint8_t* prefix_key, size_t key_len,
                   size_t bit_off, size_t width, uint32_t frag,
                   bool fill_ones) {
  std::memcpy(out, prefix_key, key_len);
  for (size_t i = 0; i < width; ++i) {
    SetKeyBit(out, bit_off + i, ((frag >> (width - 1 - i)) & 1) != 0);
  }
  for (size_t bit = bit_off + width; bit < key_len * 8; ++bit) {
    SetKeyBit(out, bit, fill_ones);
  }
}

// Adds one to a big-endian `key` of `key_len` bytes in place. Returns
// false on overflow (the key was all-ones).
bool IncrementKey(uint8_t* key, size_t key_len) {
  for (size_t i = key_len; i-- > 0;) {
    if (++key[i] != 0) return true;
  }
  return false;
}

// Fragment-aligned encoded key ranges chopping the union key span of all
// partials at its *branching level* — the first fragment where the union
// min and max keys differ. Order-preserving encodings share long key
// prefixes (e.g. the sign byte of int64 keys), so partitioning any
// higher would yield a single degenerate range. The shared chain above
// the branch is pre-built in the destination (PrepareMergeChain) so
// concurrent workers only read it.
std::vector<IndexedTable::MergeKeyRange> PlanPrefixMergeRanges(
    const std::vector<std::unique_ptr<IndexedTable>>& partials,
    size_t shards, const uint8_t** chain_key, size_t* branch_bit_off,
    const uint8_t** span_lo, const uint8_t** span_hi) {
  const PrefixTree* any = partials.front()->prefix();
  size_t key_len = any->key_len();
  size_t key_bits = key_len * 8;
  size_t kprime = any->config().kprime;
  const uint8_t* min_key = nullptr;
  const uint8_t* max_key = nullptr;
  for (const auto& p : partials) {
    const PrefixTree::ContentNode* mn = p->prefix()->MinContent();
    if (mn == nullptr) continue;
    const PrefixTree::ContentNode* mx = p->prefix()->MaxContent();
    if (min_key == nullptr || CompareKeys(mn->key(), min_key, key_len) < 0) {
      min_key = mn->key();
    }
    if (max_key == nullptr || CompareKeys(mx->key(), max_key, key_len) > 0) {
      max_key = mx->key();
    }
  }
  if (min_key == nullptr ||
      CompareKeys(min_key, max_key, key_len) == 0) {
    return {};  // empty or single-key union: nothing to partition
  }
  size_t bit_off = 0;
  uint32_t frag_lo = 0;
  uint32_t frag_hi = 0;
  size_t width = 0;
  for (;;) {
    width = std::min(kprime, key_bits - bit_off);
    frag_lo = ExtractFragment(min_key, key_len, bit_off, width);
    frag_hi = ExtractFragment(max_key, key_len, bit_off, width);
    if (frag_lo != frag_hi) break;
    bit_off += width;
  }
  *chain_key = min_key;
  *branch_bit_off = bit_off;
  *span_lo = min_key;
  *span_hi = max_key;
  size_t span = static_cast<size_t>(frag_hi) - frag_lo + 1;
  std::vector<IndexedTable::MergeKeyRange> ranges;
  for (const auto& [begin, end] : SplitEvenly(span, shards)) {
    IndexedTable::MergeKeyRange r;
    BuildBoundKey(r.prefix_lo, min_key, key_len, bit_off, width,
                  static_cast<uint32_t>(frag_lo + begin),
                  /*fill_ones=*/false);
    BuildBoundKey(r.prefix_hi, min_key, key_len, bit_off, width,
                  static_cast<uint32_t>(frag_lo + end - 1),
                  /*fill_ones=*/true);
    ranges.push_back(r);
  }
  return ranges;
}

// One validated range plan shared by the plain and aggregated merge
// paths: plans against the destination's index family, applies the
// test-only mutator, checks the ranges tile the partials' union key
// span (the Release-mode guard against silent row-id / group
// corruption), and pre-builds the prefix destination's shared chain
// when the plan is usable.
struct MergeRangePlan {
  std::vector<IndexedTable::MergeKeyRange> ranges;
  uint32_t kiss_lo = 0;  // exact union key span (kKiss finals only)
  uint32_t kiss_hi = 0;
  bool covering = false;

  bool usable() const { return covering && ranges.size() > 1; }
};

MergeRangePlan PlanValidatedMergeRanges(
    const std::vector<std::unique_ptr<IndexedTable>>& partials,
    IndexedTable* final_table, size_t shards) {
  QPPT_FAILPOINT(merge_plan);
  MergeRangePlan plan;
  if (final_table->kind() == IndexedTable::Kind::kKiss) {
    plan.ranges = PlanKissMergeRanges(partials, shards);
    if (g_plan_mutator_for_test) g_plan_mutator_for_test(&plan.ranges);
    if (plan.ranges.empty()) return plan;
    // The clamped outermost bounds ARE the union key span.
    plan.kiss_lo = plan.ranges.front().kiss_lo;
    plan.kiss_hi = plan.ranges.back().kiss_hi;
    uint32_t lo = std::numeric_limits<uint32_t>::max();
    uint32_t hi = 0;
    for (const auto& p : partials) {
      if (p->kiss()->empty()) continue;
      lo = std::min(lo, p->kiss()->min_key());
      hi = std::max(hi, p->kiss()->max_key());
    }
    plan.covering = merge_detail::KissRangesCoverSpan(plan.ranges, lo, hi);
  } else if (final_table->num_tuples() == 0) {
    // The chain pre-build requires an empty destination; merging into a
    // populated prefix table (not an engine flow today) stays serial.
    const uint8_t* chain_key = nullptr;
    size_t branch_bit_off = 0;
    const uint8_t* span_lo = nullptr;
    const uint8_t* span_hi = nullptr;
    plan.ranges = PlanPrefixMergeRanges(partials, shards, &chain_key,
                                        &branch_bit_off, &span_lo, &span_hi);
    if (g_plan_mutator_for_test) g_plan_mutator_for_test(&plan.ranges);
    if (plan.ranges.empty()) return plan;
    plan.covering = merge_detail::PrefixRangesCoverSpan(
        plan.ranges, final_table->prefix()->key_len(), span_lo, span_hi);
    if (plan.usable()) {
      final_table->PrepareMergeChain(chain_key, branch_bit_off);
    }
  }
  return plan;
}

}  // namespace

namespace merge_detail {

bool KissRangesCoverSpan(
    const std::vector<IndexedTable::MergeKeyRange>& ranges, uint32_t span_lo,
    uint32_t span_hi) {
  if (ranges.empty()) return false;
  if (ranges.front().kiss_lo > span_lo) return false;
  if (ranges.back().kiss_hi < span_hi) return false;
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (ranges[i].kiss_lo > ranges[i].kiss_hi) return false;
    if (i + 1 < ranges.size() &&
        (ranges[i].kiss_hi == std::numeric_limits<uint32_t>::max() ||
         ranges[i].kiss_hi + 1 != ranges[i + 1].kiss_lo)) {
      return false;
    }
  }
  return true;
}

bool PrefixRangesCoverSpan(
    const std::vector<IndexedTable::MergeKeyRange>& ranges, size_t key_len,
    const uint8_t* span_lo, const uint8_t* span_hi) {
  if (ranges.empty()) return false;
  if (CompareKeys(ranges.front().prefix_lo, span_lo, key_len) > 0) {
    return false;
  }
  if (CompareKeys(ranges.back().prefix_hi, span_hi, key_len) < 0) {
    return false;
  }
  uint8_t next[KeyBuf::kCapacity];
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (CompareKeys(ranges[i].prefix_lo, ranges[i].prefix_hi, key_len) > 0) {
      return false;
    }
    if (i + 1 < ranges.size()) {
      std::memcpy(next, ranges[i].prefix_hi, key_len);
      if (!IncrementKey(next, key_len) ||
          CompareKeys(next, ranges[i + 1].prefix_lo, key_len) != 0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace merge_detail

void PartialOutputs::SetPlanMutatorForTest(PlanMutator mutator) {
  g_plan_mutator_for_test = std::move(mutator);
}

size_t PartialOutputs::MergeInto(const MorselSite& site,
                                 IndexedTable* final_table) {
  if (site.pool == nullptr || site.pool->num_workers() <= 1) {
    MergeInto(final_table);
    return 0;
  }
  return final_table->aggregated() ? MergeAggInto(site, final_table)
                                   : MergePlainInto(site, final_table);
}

size_t PartialOutputs::MergePlainInto(const MorselSite& site,
                                      IndexedTable* final_table) {
  WorkerPool* pool = site.pool;
  size_t total = 0;
  for (const auto& p : partials_) total += p->num_tuples();
  if (total < kMinParallelInputTuples) {
    MergeInto(final_table);
    return 0;
  }

  // A plan that does not tile the span would leave pre-assigned row ids
  // unwritten and drop tuples — checked at runtime (Release included),
  // never just asserted; the serial path is always correct.
  MergeRangePlan plan =
      PlanValidatedMergeRanges(partials_, final_table, pool->morsel_target());
  if (!plan.usable()) {
    MergeInto(final_table);
    return 0;
  }
  const std::vector<IndexedTable::MergeKeyRange>& ranges = plan.ranges;

  // Per-partial contiguous row-id blocks: partial p's tuple ids are
  // dense in [0, n_p), so block bases derived from the tuple counts the
  // builds already maintain pre-assign every destination row id without
  // a counting scan — the merge below is the only pass over the data.
  uint64_t first_id = final_table->BeginParallelMerge(total);
  std::vector<uint64_t> base(partials_.size(), 0);
  uint64_t at = first_id;
  for (size_t p = 0; p < partials_.size(); ++p) {
    base[p] = at;
    at += partials_[p]->num_tuples();
  }

  // One parallel pass: each range worker folds ALL partials' tuples of
  // its key range into the final table. Ranges are bucket/root-slot
  // aligned, so index mutations stay within disjoint subtrees; row
  // writes are disjoint because (partial, source id) determines the
  // destination id; shard statistics are summed and applied once.
  std::vector<IndexedTable::MergeShardStats> shard_stats(ranges.size());
  obs::QueryTrace* trace = site.trace;
  const CancelToken* cancel = site.cancel;
  pool->Run(ranges.size(), [&](size_t worker, size_t m) {
    // Shard boundary doubles as a cancellation boundary: a cancelled
    // merge abandons the final table (it is a context-owned intermediate
    // the error path drops) without waiting for the remaining shards.
    if (cancel != nullptr) {
      Status st = cancel->Check();
      if (!st.ok()) throw CancelledException(std::move(st));
    }
    QPPT_FAILPOINT(merge_shard);
    double t0 = trace != nullptr ? trace->NowUs() : 0.0;
    for (size_t p = 0; p < partials_.size(); ++p) {
      final_table->MergeRangeFrom(*partials_[p], ranges[m], base[p],
                                  &shard_stats[m]);
    }
    if (trace != nullptr) {
      trace->Record(worker, site.label, obs::SpanKind::kMerge, t0,
                    trace->NowUs());
    }
  });

  IndexedTable::MergeShardStats summed;
  for (const auto& s : shard_stats) {
    summed.tuples += s.tuples;
    summed.new_keys += s.new_keys;
    summed.new_inner_nodes += s.new_inner_nodes;
  }
  assert(summed.tuples == total && "validated ranges must cover every tuple");
  final_table->EndParallelMerge(summed, plan.kiss_lo, plan.kiss_hi);
  for (auto& partial : partials_) partial.reset();
  return ranges.size();
}

size_t PartialOutputs::MergeAggInto(const MorselSite& site,
                                    IndexedTable* final_table) {
  WorkerPool* pool = site.pool;
  size_t folded_tuples = 0;
  size_t group_entries = 0;
  for (const auto& p : partials_) {
    folded_tuples += p->num_tuples();
    group_entries += p->num_keys();
  }
  if (group_entries < kMinParallelAggGroups) {
    MergeInto(final_table);
    return 0;
  }

  // Same runtime guarantee as the plain path: a non-covering plan would
  // silently drop groups, so it falls back to the serial merge.
  MergeRangePlan plan =
      PlanValidatedMergeRanges(partials_, final_table, pool->morsel_target());
  if (!plan.usable()) {
    MergeInto(final_table);
    return 0;
  }
  const std::vector<IndexedTable::MergeKeyRange>& ranges = plan.ranges;

  std::vector<const IndexedTable*> views;
  views.reserve(partials_.size());
  for (const auto& p : partials_) views.push_back(p.get());

  final_table->BeginParallelAggMerge();
  std::vector<IndexedTable::MergeShardStats> shard_stats(ranges.size());
  obs::QueryTrace* trace = site.trace;
  const CancelToken* cancel = site.cancel;
  pool->Run(ranges.size(), [&](size_t worker, size_t m) {
    if (cancel != nullptr) {
      Status st = cancel->Check();
      if (!st.ok()) throw CancelledException(std::move(st));
    }
    QPPT_FAILPOINT(merge_shard);
    double t0 = trace != nullptr ? trace->NowUs() : 0.0;
    final_table->MergeAggRangeFrom(views, ranges[m], &shard_stats[m]);
    if (trace != nullptr) {
      trace->Record(worker, site.label, obs::SpanKind::kMerge, t0,
                    trace->NowUs());
    }
  });

  IndexedTable::MergeShardStats summed;
  for (const auto& s : shard_stats) {
    summed.new_keys += s.new_keys;
    summed.new_inner_nodes += s.new_inner_nodes;
  }
  final_table->EndParallelAggMerge(summed, plan.kiss_lo, plan.kiss_hi,
                                   folded_tuples);
  for (auto& partial : partials_) partial.reset();
  return ranges.size();
}

}  // namespace qppt::engine
