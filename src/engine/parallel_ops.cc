#include "engine/parallel_ops.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "util/bits.h"

namespace qppt::engine {

size_t RunKissRangeMorsels(
    WorkerPool* pool, const KissTree& tree, uint32_t lo, uint32_t hi,
    const std::function<void(size_t, uint32_t, uint32_t)>& fn) {
  auto ranges = PartitionKissRange(tree, lo, hi, pool->morsel_target());
  if (ranges.empty()) return 0;
  RunTimedMorsels(pool, ranges.size(), [&](size_t worker, size_t m) {
    fn(worker, ranges[m].first, ranges[m].second);
  });
  return ranges.size();
}

size_t RunPrefixPairMorsels(
    WorkerPool* pool, const PrefixTree& left, const PrefixTree& right,
    const std::function<void(size_t, const PairScanLevel&, size_t, size_t)>&
        fn) {
  PairScanLevel level = FindPairScanLevel(left, right);
  if (level.slots.empty()) return 0;
  auto slices = SplitEvenly(level.slots.size(), pool->morsel_target());
  RunTimedMorsels(pool, slices.size(), [&](size_t worker, size_t m) {
    fn(worker, level, slices[m].first, slices[m].second);
  });
  return slices.size();
}

namespace {

// Bucket-aligned KISS key ranges covering the union key span of all
// non-empty partials. Alignment guarantees no two merge workers ever
// touch the same level-2 node of the destination tree.
std::vector<IndexedTable::MergeKeyRange> PlanKissMergeRanges(
    const std::vector<std::unique_ptr<IndexedTable>>& partials,
    size_t shards, uint32_t* span_lo, uint32_t* span_hi) {
  uint32_t lo = std::numeric_limits<uint32_t>::max();
  uint32_t hi = 0;
  size_t l2 = 0;
  for (const auto& p : partials) {
    const KissTree* tree = p->kiss();
    if (tree->empty()) continue;
    lo = std::min(lo, tree->min_key());
    hi = std::max(hi, tree->max_key());
    l2 = tree->level2_bits();
  }
  *span_lo = lo;
  *span_hi = hi;
  std::vector<IndexedTable::MergeKeyRange> ranges;
  if (lo > hi) return ranges;  // all partials empty
  uint64_t first_bucket = lo >> l2;
  uint64_t last_bucket = hi >> l2;
  size_t buckets = static_cast<size_t>(last_bucket - first_bucket + 1);
  for (const auto& [begin, end] : SplitEvenly(buckets, shards)) {
    IndexedTable::MergeKeyRange r;
    r.kiss_lo = static_cast<uint32_t>((first_bucket + begin) << l2);
    r.kiss_hi = static_cast<uint32_t>(
        std::min<uint64_t>(((first_bucket + end) << l2) - 1,
                           std::numeric_limits<uint32_t>::max()));
    ranges.push_back(r);
  }
  return ranges;
}

void SetKeyBit(uint8_t* key, size_t bit, bool value) {
  size_t byte = bit >> 3;
  uint8_t mask = static_cast<uint8_t>(0x80 >> (bit & 7));
  if (value) {
    key[byte] |= mask;
  } else {
    key[byte] &= static_cast<uint8_t>(~mask);
  }
}

// Builds an inclusive range bound: the shared prefix of `prefix_key`
// above `bit_off`, fragment `frag` at [bit_off, bit_off + width), and
// all-zeros (lower bound) or all-ones (upper bound) below.
void BuildBoundKey(uint8_t* out, const uint8_t* prefix_key, size_t key_len,
                   size_t bit_off, size_t width, uint32_t frag,
                   bool fill_ones) {
  std::memcpy(out, prefix_key, key_len);
  for (size_t i = 0; i < width; ++i) {
    SetKeyBit(out, bit_off + i, ((frag >> (width - 1 - i)) & 1) != 0);
  }
  for (size_t bit = bit_off + width; bit < key_len * 8; ++bit) {
    SetKeyBit(out, bit, fill_ones);
  }
}

// Fragment-aligned encoded key ranges chopping the union key span of all
// partials at its *branching level* — the first fragment where the union
// min and max keys differ. Order-preserving encodings share long key
// prefixes (e.g. the sign byte of int64 keys), so partitioning any
// higher would yield a single degenerate range. The shared chain above
// the branch is pre-built in the destination (PrepareMergeChain) so
// concurrent workers only read it.
std::vector<IndexedTable::MergeKeyRange> PlanPrefixMergeRanges(
    const std::vector<std::unique_ptr<IndexedTable>>& partials,
    size_t shards, const uint8_t** chain_key, size_t* branch_bit_off) {
  const PrefixTree* any = partials.front()->prefix();
  size_t key_len = any->key_len();
  size_t key_bits = key_len * 8;
  size_t kprime = any->config().kprime;
  const uint8_t* min_key = nullptr;
  const uint8_t* max_key = nullptr;
  for (const auto& p : partials) {
    const PrefixTree::ContentNode* mn = p->prefix()->MinContent();
    if (mn == nullptr) continue;
    const PrefixTree::ContentNode* mx = p->prefix()->MaxContent();
    if (min_key == nullptr || CompareKeys(mn->key(), min_key, key_len) < 0) {
      min_key = mn->key();
    }
    if (max_key == nullptr || CompareKeys(mx->key(), max_key, key_len) > 0) {
      max_key = mx->key();
    }
  }
  if (min_key == nullptr ||
      CompareKeys(min_key, max_key, key_len) == 0) {
    return {};  // empty or single-key union: nothing to partition
  }
  size_t bit_off = 0;
  uint32_t frag_lo = 0;
  uint32_t frag_hi = 0;
  size_t width = 0;
  for (;;) {
    width = std::min(kprime, key_bits - bit_off);
    frag_lo = ExtractFragment(min_key, key_len, bit_off, width);
    frag_hi = ExtractFragment(max_key, key_len, bit_off, width);
    if (frag_lo != frag_hi) break;
    bit_off += width;
  }
  *chain_key = min_key;
  *branch_bit_off = bit_off;
  size_t span = static_cast<size_t>(frag_hi) - frag_lo + 1;
  std::vector<IndexedTable::MergeKeyRange> ranges;
  for (const auto& [begin, end] : SplitEvenly(span, shards)) {
    IndexedTable::MergeKeyRange r;
    BuildBoundKey(r.prefix_lo, min_key, key_len, bit_off, width,
                  static_cast<uint32_t>(frag_lo + begin),
                  /*fill_ones=*/false);
    BuildBoundKey(r.prefix_hi, min_key, key_len, bit_off, width,
                  static_cast<uint32_t>(frag_lo + end - 1),
                  /*fill_ones=*/true);
    ranges.push_back(r);
  }
  return ranges;
}

}  // namespace

size_t PartialOutputs::MergeInto(WorkerPool* pool,
                                 IndexedTable* final_table) {
  size_t total = 0;
  for (const auto& p : partials_) total += p->num_tuples();
  const bool parallel = pool != nullptr && pool->num_workers() > 1 &&
                        !final_table->aggregated() &&
                        total >= kMinParallelInputTuples;
  if (!parallel) {
    MergeInto(final_table);
    return 0;
  }

  uint32_t span_lo = 0;
  uint32_t span_hi = 0;
  std::vector<IndexedTable::MergeKeyRange> ranges;
  if (final_table->kind() == IndexedTable::Kind::kKiss) {
    ranges = PlanKissMergeRanges(partials_, pool->morsel_target(), &span_lo,
                                 &span_hi);
  } else if (final_table->num_tuples() == 0) {
    // The chain pre-build below requires an empty destination; merging
    // into a populated prefix table (not an engine flow today) stays
    // serial.
    const uint8_t* chain_key = nullptr;
    size_t branch_bit_off = 0;
    ranges = PlanPrefixMergeRanges(partials_, pool->morsel_target(),
                                   &chain_key, &branch_bit_off);
    if (ranges.size() > 1) {
      final_table->PrepareMergeChain(chain_key, branch_bit_off);
    }
  }
  if (ranges.size() <= 1) {
    MergeInto(final_table);
    return 0;
  }

  // Pass 1 (parallel, read-only): per-range tuple counts, so each range
  // worker owns a contiguous, pre-assigned block of final row ids and
  // the workers never contend on row storage.
  std::vector<size_t> counts(ranges.size(), 0);
  pool->Run(ranges.size(), [&](size_t, size_t m) {
    size_t c = 0;
    for (const auto& p : partials_) c += p->CountTuplesInRange(ranges[m]);
    counts[m] = c;
  });

  uint64_t first_id = final_table->BeginParallelMerge(total);
  std::vector<uint64_t> base(ranges.size(), 0);
  uint64_t at = first_id;
  for (size_t m = 0; m < ranges.size(); ++m) {
    base[m] = at;
    at += counts[m];
  }
  assert(at == first_id + total && "merge ranges must cover every tuple");

  // Pass 2 (parallel): each range worker folds ALL partials' tuples of
  // its key range into the final table. Ranges are bucket/root-slot
  // aligned, so index mutations stay within disjoint subtrees; shard
  // statistics are summed and applied once at the end.
  std::vector<IndexedTable::MergeShardStats> shard_stats(ranges.size());
  pool->Run(ranges.size(), [&](size_t, size_t m) {
    uint64_t id = base[m];
    for (const auto& p : partials_) {
      size_t before = shard_stats[m].tuples;
      final_table->MergeRangeFrom(*p, ranges[m], id, &shard_stats[m]);
      id += shard_stats[m].tuples - before;
    }
  });

  IndexedTable::MergeShardStats summed;
  for (const auto& s : shard_stats) {
    summed.tuples += s.tuples;
    summed.new_keys += s.new_keys;
    summed.new_inner_nodes += s.new_inner_nodes;
  }
  final_table->EndParallelMerge(summed, span_lo, span_hi);
  for (auto& partial : partials_) partial.reset();
  return ranges.size();
}

}  // namespace qppt::engine
