#include "engine/parallel_ops.h"

#include <cstddef>
#include <cstdint>
#include <functional>

namespace qppt::engine {

size_t RunKissRangeMorsels(
    WorkerPool* pool, const KissTree& tree, uint32_t lo, uint32_t hi,
    const std::function<void(size_t, uint32_t, uint32_t)>& fn) {
  auto ranges = PartitionKissRange(tree, lo, hi, MorselTarget(*pool));
  if (ranges.empty()) return 0;
  pool->Run(ranges.size(), [&](size_t worker, size_t m) {
    fn(worker, ranges[m].first, ranges[m].second);
  });
  return ranges.size();
}

}  // namespace qppt::engine
