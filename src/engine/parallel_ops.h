// Parallel drivers for the hot operators (engine layer, §7).
//
// The pattern shared by every parallel operator: partition the input
// index into disjoint morsels (core/parallel.h — deterministic tree
// partitions need no rebalancing guard), run the operator's tuple loop
// per morsel on the worker pool with *per-worker* partial output tables,
// and merge the partials into the real output once at the end. Both
// output shapes merge key-range-partitioned across the pool (plain
// tables re-insert tuples at pre-assigned row ids; aggregated tables
// fold accumulators via BoundAggSpec::MergeRange) — see
// PartialOutputs::MergeInto. The input trees are never mutated, so
// concurrent readers need no synchronization.
//
// Split counts are adaptive: each driver reports its batch's per-morsel
// wall times to its operator site's MorselTuner
// (WorkerPool::TunerFor, engine/scheduler.h), which refines the split
// when one straggler morsel dominates and coarsens it when scheduling
// overhead does — per site, so interleaved queries with different
// morsel cost profiles keep independent feedback loops.

#ifndef QPPT_ENGINE_PARALLEL_OPS_H_
#define QPPT_ENGINE_PARALLEL_OPS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "core/indexed_table.h"
#include "core/parallel.h"
#include "core/stats.h"
#include "core/sync_scan.h"
#include "engine/scheduler.h"
#include "obs/trace.h"
#include "util/cancel.h"
#include "util/failpoint.h"

namespace qppt::engine {

// Inputs smaller than this run serially — forking costs more than it
// saves on a few thousand tuples.
inline constexpr size_t kMinParallelInputTuples = 4096;

// Aggregated outputs whose partials hold fewer group entries than this
// (summed across workers) merge serially — the accumulator fold is
// per-group work, so a handful of groups cannot amortize the fork-join.
inline constexpr size_t kMinParallelAggGroups = 64;

// Everything a parallel driver needs to know about its call site: which
// pool to fork on, which operator-site tuner to feed morsel times to
// (nullptr = pool default), and — when the query is traced — where and
// under what stage label to record the spans. The label must outlive the
// driver call (operators hold it as a local; the trace arena-copies it
// per span).
struct MorselSite {
  WorkerPool* pool = nullptr;
  MorselTuner* tuner = nullptr;
  obs::QueryTrace* trace = nullptr;  // nullptr = tracing off
  std::string_view label;            // stage label for trace spans
  // Query cancellation token (nullptr = not cancellable). Polled once
  // per morsel — the morsel boundary is the cancellation granularity of
  // every parallel driver; per-tuple loops stay check-free.
  const CancelToken* cancel = nullptr;
};

// Runs fn(worker, morsel) for every morsel, recording per-morsel wall
// times and feeding them to the site's tuner; when the site carries a
// trace, every morsel also records a kMorsel span on its worker's lane.
// When the site carries a cancel token, it is polled before each morsel
// body: a cancelled/expired query throws CancelledException, which the
// pool converts into skip-remaining-morsels and rethrows to the
// submitter (Plan::Run turns it back into a Status).
template <typename Fn>
void RunTimedMorsels(const MorselSite& site, size_t count, Fn&& fn) {
  std::vector<double> times(count, 0.0);
  obs::QueryTrace* trace = site.trace;
  const CancelToken* cancel = site.cancel;
  site.pool->Run(count, [&](size_t worker, size_t m) {
    if (cancel != nullptr) {
      Status st = cancel->Check();
      if (!st.ok()) throw CancelledException(std::move(st));
    }
    QPPT_FAILPOINT(morsel_exec);
    double t0 = trace != nullptr ? trace->NowUs() : 0.0;
    Timer t;
    fn(worker, m);
    times[m] = t.ElapsedMs();
    if (trace != nullptr) {
      trace->Record(worker, site.label, obs::SpanKind::kMorsel, t0,
                    trace->NowUs());
    }
  });
  (site.tuner != nullptr ? site.tuner : site.pool->tuner())
      ->RecordBatch(&times);
}

// Back-compat shim for callers without a trace (tests, utilities).
template <typename Fn>
void RunTimedMorsels(WorkerPool* pool, MorselTuner* tuner, size_t count,
                     Fn&& fn) {
  RunTimedMorsels(MorselSite{pool, tuner, nullptr, {}}, count,
                  std::forward<Fn>(fn));
}

// Validators for the merge-range plans below (exposed for tests): true
// iff `ranges` tile a superset of the partials' union key span —
// non-empty, ascending, gap-free, and covering [span_lo, span_hi]. A
// plan that fails this check would silently drop tuples (or leave
// pre-assigned row ids unwritten), so PartialOutputs::MergeInto checks
// it at runtime — in Release builds too — and falls back to the serial
// merge instead of corrupting the output.
namespace merge_detail {
bool KissRangesCoverSpan(const std::vector<IndexedTable::MergeKeyRange>& ranges,
                         uint32_t span_lo, uint32_t span_hi);
bool PrefixRangesCoverSpan(
    const std::vector<IndexedTable::MergeKeyRange>& ranges, size_t key_len,
    const uint8_t* span_lo, const uint8_t* span_hi);
}  // namespace merge_detail

// Per-worker partial outputs of one parallel operator, merged into the
// final table after the fork-join.
class PartialOutputs {
 public:
  PartialOutputs(const IndexedTable& final_table, size_t workers) {
    partials_.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      partials_.push_back(final_table.CloneEmpty());
    }
  }

  IndexedTable* worker(size_t w) { return partials_[w].get(); }

  // Serial fallback: re-insert (plain) / accumulator-merge (aggregated)
  // each partial in turn.
  void MergeInto(IndexedTable* final_table) {
    for (auto& partial : partials_) {
      final_table->MergeFrom(*partial);
      partial.reset();  // free per-worker index memory eagerly
    }
  }

  // Key-range-partitioned parallel merge: outputs large enough to
  // amortize the fork-join are merged by range-owning workers — each
  // worker folds ALL partials' tuples (plain) or group accumulators
  // (aggregated) of one disjoint key range into the final table
  // concurrently; small outputs fall back to the serial path above.
  // Plain merges are single-pass: each partial's tuple count (maintained
  // by its build) pre-assigns it a contiguous row-id block, so no
  // separate counting scan runs. A range plan that fails the coverage
  // validation (merge_detail) also falls back to the serial path.
  // When the site carries a trace, every merge shard records a kMerge
  // span under the site's label. Returns the number of merge morsels
  // executed (0 = serial merge).
  size_t MergeInto(const MorselSite& site, IndexedTable* final_table);
  size_t MergeInto(WorkerPool* pool, IndexedTable* final_table) {
    return MergeInto(MorselSite{pool, nullptr, nullptr, {}}, final_table);
  }

  // Test hook: mutates every planned range list before validation, so
  // tests can inject non-covering plans and exercise the runtime
  // fallback. Pass nullptr to clear. Not thread-safe; tests only.
  using PlanMutator = std::function<void(
      std::vector<IndexedTable::MergeKeyRange>*)>;
  static void SetPlanMutatorForTest(PlanMutator mutator);

 private:
  size_t MergePlainInto(const MorselSite& site, IndexedTable* final_table);
  size_t MergeAggInto(const MorselSite& site, IndexedTable* final_table);

  std::vector<std::unique_ptr<IndexedTable>> partials_;
};

// Partitions `tree` ∩ [lo, hi] into morsel key ranges and runs
// fn(worker, morsel_lo, morsel_hi) for each on the site's pool. Returns
// the number of morsels executed (0 = empty intersection). Templated on
// the callback (rather than taking a std::function) so operator call
// sites never type-erase their capture state onto the heap — the morsel
// drivers sit on every parallel query's hot path.
template <typename Fn>
size_t RunKissRangeMorsels(const MorselSite& site, const KissTree& tree,
                           uint32_t lo, uint32_t hi, const Fn& fn) {
  MorselTuner* tuner =
      site.tuner != nullptr ? site.tuner : site.pool->tuner();
  auto ranges = PartitionKissRange(
      tree, lo, hi, tuner->MorselTarget(site.pool->num_workers()));
  if (ranges.empty()) return 0;
  RunTimedMorsels(site, ranges.size(), [&](size_t worker, size_t m) {
    fn(worker, ranges[m].first, ranges[m].second);
  });
  return ranges.size();
}

template <typename Fn>
size_t RunKissRangeMorsels(WorkerPool* pool, MorselTuner* tuner,
                           const KissTree& tree, uint32_t lo, uint32_t hi,
                           const Fn& fn) {
  return RunKissRangeMorsels(MorselSite{pool, tuner, nullptr, {}}, tree, lo,
                             hi, fn);
}

// Pair-partitions two prefix trees at their branching level
// (FindPairScanLevel, core/sync_scan.h) and runs
// fn(worker, level, begin, end) for each slot-list slice on the pool —
// the driver of the parallel prefix-tree star join; the callback scans
// its slice with SynchronousScanPairSlots. Returns the number of
// morsels executed (0 = the trees share no subtree). Templated for the
// same no-type-erasure reason as RunKissRangeMorsels above.
template <typename Fn>
size_t RunPrefixPairMorsels(const MorselSite& site, const PrefixTree& left,
                            const PrefixTree& right, const Fn& fn) {
  MorselTuner* tuner =
      site.tuner != nullptr ? site.tuner : site.pool->tuner();
  PairScanLevel level = FindPairScanLevel(left, right);
  if (level.slots.empty()) return 0;
  auto slices = SplitEvenly(level.slots.size(),
                            tuner->MorselTarget(site.pool->num_workers()));
  RunTimedMorsels(site, slices.size(), [&](size_t worker, size_t m) {
    fn(worker, level, slices[m].first, slices[m].second);
  });
  return slices.size();
}

// Values per slice morsel when the gather fallback below kicks in.
inline constexpr size_t kMinSliceValues = 1024;

// Runs process(worker, value) for every value stored under tree ∩
// [lo, hi]. Prefers disjoint key-range morsels; when the populated span
// has too few root buckets to feed the workers (a low-cardinality
// selection attribute — e.g. eleven discount values, each with a
// million-entry duplicate list), it gathers the qualifying values once
// and morsels over slices of the gathered vector instead. Returns the
// morsel count (0 = nothing qualified).
template <typename ProcessFn>
size_t RunKissValueMorsels(const MorselSite& site, const KissTree& tree,
                           uint32_t lo, uint32_t hi, ProcessFn&& process) {
  WorkerPool* pool = site.pool;
  MorselTuner* tuner =
      site.tuner != nullptr ? site.tuner : pool->tuner();
  const size_t target = tuner->MorselTarget(pool->num_workers());
  auto ranges = PartitionKissRange(tree, lo, hi, target);
  if (ranges.empty()) return 0;
  if (ranges.size() >= pool->num_workers()) {
    RunTimedMorsels(site, ranges.size(),
                    [&](size_t worker, size_t m) {
                      tree.ScanRange(
                          ranges[m].first, ranges[m].second,
                          [&](uint32_t, const KissTree::ValueRef& vals) {
                            vals.ForEach(
                                [&](uint64_t v) { process(worker, v); });
                          });
                    });
    return ranges.size();
  }
  std::vector<uint64_t> values;
  tree.ScanRange(lo, hi, [&](uint32_t, const KissTree::ValueRef& vals) {
    vals.ForEach([&](uint64_t v) { values.push_back(v); });
  });
  if (values.empty()) return 0;
  auto slices = SplitEvenly(
      values.size(),
      std::min(target,
               (values.size() + kMinSliceValues - 1) / kMinSliceValues));
  RunTimedMorsels(site, slices.size(), [&](size_t worker, size_t m) {
    for (size_t i = slices[m].first; i < slices[m].second; ++i) {
      process(worker, values[i]);
    }
  });
  return slices.size();
}

template <typename ProcessFn>
size_t RunKissValueMorsels(WorkerPool* pool, MorselTuner* tuner,
                           const KissTree& tree, uint32_t lo, uint32_t hi,
                           ProcessFn&& process) {
  return RunKissValueMorsels(MorselSite{pool, tuner, nullptr, {}}, tree, lo,
                             hi, std::forward<ProcessFn>(process));
}

}  // namespace qppt::engine

#endif  // QPPT_ENGINE_PARALLEL_OPS_H_
