// Parallel drivers for the hot operators (engine layer, §7).
//
// The pattern shared by every parallel operator: partition the input
// index into disjoint morsels (core/parallel.h — deterministic tree
// partitions need no rebalancing guard), run the operator's tuple loop
// per morsel on the worker pool with *per-worker* partial output tables,
// and merge the partials into the real output once at the end
// (aggregation merges accumulators via BoundAggSpec::Merge; plain tables
// re-insert). The input trees are never mutated, so concurrent readers
// need no synchronization.

#ifndef QPPT_ENGINE_PARALLEL_OPS_H_
#define QPPT_ENGINE_PARALLEL_OPS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/indexed_table.h"
#include "core/parallel.h"
#include "engine/scheduler.h"

namespace qppt::engine {

// Morsels per worker per batch: enough of a surplus that work stealing
// evens out skewed shards, coarse enough that the scheduler lock stays
// cold.
inline constexpr size_t kMorselsPerWorker = 8;

// Inputs smaller than this run serially — forking costs more than it
// saves on a few thousand tuples.
inline constexpr size_t kMinParallelInputTuples = 4096;

inline size_t MorselTarget(const WorkerPool& pool) {
  return pool.num_workers() * kMorselsPerWorker;
}

// Per-worker partial outputs of one parallel operator, merged (serially)
// into the final table after the fork-join.
class PartialOutputs {
 public:
  PartialOutputs(const IndexedTable& final_table, size_t workers) {
    partials_.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      partials_.push_back(final_table.CloneEmpty());
    }
  }

  IndexedTable* worker(size_t w) { return partials_[w].get(); }

  void MergeInto(IndexedTable* final_table) {
    for (auto& partial : partials_) {
      final_table->MergeFrom(*partial);
      partial.reset();  // free per-worker index memory eagerly
    }
  }

 private:
  std::vector<std::unique_ptr<IndexedTable>> partials_;
};

// Partitions `tree` ∩ [lo, hi] into morsel key ranges and runs
// fn(worker, morsel_lo, morsel_hi) for each on the pool. Returns the
// number of morsels executed (0 = empty intersection).
size_t RunKissRangeMorsels(
    WorkerPool* pool, const KissTree& tree, uint32_t lo, uint32_t hi,
    const std::function<void(size_t, uint32_t, uint32_t)>& fn);

// Values per slice morsel when the gather fallback below kicks in.
inline constexpr size_t kMinSliceValues = 1024;

// Runs process(worker, value) for every value stored under tree ∩
// [lo, hi]. Prefers disjoint key-range morsels; when the populated span
// has too few root buckets to feed the workers (a low-cardinality
// selection attribute — e.g. eleven discount values, each with a
// million-entry duplicate list), it gathers the qualifying values once
// and morsels over slices of the gathered vector instead. Returns the
// morsel count (0 = nothing qualified).
template <typename ProcessFn>
size_t RunKissValueMorsels(WorkerPool* pool, const KissTree& tree,
                           uint32_t lo, uint32_t hi, ProcessFn&& process) {
  auto ranges = PartitionKissRange(tree, lo, hi, MorselTarget(*pool));
  if (ranges.empty()) return 0;
  if (ranges.size() >= pool->num_workers()) {
    pool->Run(ranges.size(), [&](size_t worker, size_t m) {
      tree.ScanRange(ranges[m].first, ranges[m].second,
                     [&](uint32_t, const KissTree::ValueRef& vals) {
                       vals.ForEach(
                           [&](uint64_t v) { process(worker, v); });
                     });
    });
    return ranges.size();
  }
  std::vector<uint64_t> values;
  tree.ScanRange(lo, hi, [&](uint32_t, const KissTree::ValueRef& vals) {
    vals.ForEach([&](uint64_t v) { values.push_back(v); });
  });
  if (values.empty()) return 0;
  size_t morsels = std::min(
      MorselTarget(*pool),
      (values.size() + kMinSliceValues - 1) / kMinSliceValues);
  size_t per = values.size() / morsels;
  size_t extra = values.size() % morsels;
  std::vector<std::pair<size_t, size_t>> slices;
  slices.reserve(morsels);
  size_t at = 0;
  for (size_t m = 0; m < morsels; ++m) {
    size_t take = per + (m < extra ? 1 : 0);
    slices.emplace_back(at, at + take);
    at += take;
  }
  pool->Run(morsels, [&](size_t worker, size_t m) {
    for (size_t i = slices[m].first; i < slices[m].second; ++i) {
      process(worker, values[i]);
    }
  });
  return morsels;
}

}  // namespace qppt::engine

#endif  // QPPT_ENGINE_PARALLEL_OPS_H_
