// Prepared queries — the engine front door's compile-once handle.
//
// EngineRunner::Prepare(db, spec) validates a QuerySpec against a
// database once and returns a PreparedQuery. Execution through the
// handle looks up the compiled Plan in a per-prepared cache keyed by the
// plan-shaping knobs (select-join fusion, max_join_ways) and the bound
// parameter values; a hit skips the planner entirely, so the hot
// multi-client path replans at most once per distinct configuration.
// Cached plans are immutable and shared — concurrent sessions execute
// the same Plan object against private ExecContexts.
//
// Parameter re-binding (query::ParamBinding) patches predicate constants
// only; it never changes the plan shape, just selects a cache entry.

#ifndef QPPT_ENGINE_PREPARED_H_
#define QPPT_ENGINE_PREPARED_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/base_index.h"
#include "core/plan.h"
#include "core/query/query_spec.h"
#include "util/status.h"

namespace qppt::engine {

class EngineRunner;

// Copyable handle; copies share the spec and the plan cache. Only
// EngineRunner::Prepare creates these, so state_ is always non-null.
class PreparedQuery {
 public:
  const query::QuerySpec& spec() const { return state_->spec; }
  const Database& db() const { return *state_->db; }

  // Plan-cache observability (for tests and the throughput bench).
  uint64_t plan_cache_hits() const {
    // relaxed: statistics counter; no ordering needed.
    return state_->hits.load(std::memory_order_relaxed);
  }
  uint64_t plan_cache_misses() const {
    // relaxed: statistics counter; no ordering needed.
    return state_->misses.load(std::memory_order_relaxed);
  }
  size_t plans_cached() const;

 private:
  friend class EngineRunner;

  // Bounds the per-prepared cache: plans beyond this are evicted FIFO,
  // so a workload with ever-changing parameter values cannot grow the
  // cache without bound (it degrades to plan-per-execute, which is what
  // the ad-hoc path does anyway).
  static constexpr size_t kMaxCachedPlans = 64;

  struct State {
    const Database* db = nullptr;
    query::QuerySpec spec;
    std::mutex mu;
    std::map<std::string, std::shared_ptr<const Plan>> plans;
    std::vector<std::string> insertion_order;  // FIFO eviction queue
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
  };

  explicit PreparedQuery(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  // Returns the cached plan for (knobs, params), planning on miss.
  Result<std::shared_ptr<const Plan>> GetPlan(
      const PlanKnobs& knobs, const query::QueryParams& params) const;

  std::shared_ptr<State> state_;
};

}  // namespace qppt::engine

#endif  // QPPT_ENGINE_PREPARED_H_
