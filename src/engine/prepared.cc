#include "engine/prepared.h"

#include <memory>
#include <string>
#include <utility>

#include "core/query/planner.h"
#include "dbg/lock_rank.h"
#include "obs/metrics.h"

namespace qppt::engine {

namespace {

// Plan-cache metrics across all PreparedQuery instances.
struct PlanCacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;

  static PlanCacheMetrics& Get() {
    static PlanCacheMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      PlanCacheMetrics p;
      p.hits = reg.GetCounter("engine_plan_cache_hits_total",
                              "Prepared executions served a cached plan.");
      p.misses = reg.GetCounter("engine_plan_cache_misses_total",
                                "Prepared executions that had to replan.");
      p.evictions = reg.GetCounter(
          "engine_plan_cache_evictions_total",
          "Cached plans FIFO-evicted at the per-query cache cap.");
      return p;
    }();
    return m;
  }
};

// Only the plan-shaping knobs key the cache; buffer sizes and thread
// counts are runtime parameters read from the ExecContext at execution.
Result<std::string> CacheKey(const PlanKnobs& knobs,
                             const query::QueryParams& params) {
  QPPT_ASSIGN_OR_RETURN(std::string params_key, query::ParamsKey(params));
  std::string key = knobs.use_select_join ? "sj|w" : "-|w";
  key += std::to_string(knobs.max_join_ways);
  key += '|';
  key += params_key;
  return key;
}

}  // namespace

size_t PreparedQuery::plans_cached() const {
  dbg::RankedLockGuard lock(dbg::LockRank::kPlanCache, state_->mu);
  return state_->plans.size();
}

Result<std::shared_ptr<const Plan>> PreparedQuery::GetPlan(
    const PlanKnobs& knobs, const query::QueryParams& params) const {
  QPPT_ASSIGN_OR_RETURN(const std::string key, CacheKey(knobs, params));
  {
    dbg::RankedLockGuard lock(dbg::LockRank::kPlanCache, state_->mu);
    auto it = state_->plans.find(key);
    if (it != state_->plans.end()) {
      // relaxed: statistics counter; no ordering needed.
      state_->hits.fetch_add(1, std::memory_order_relaxed);
      PlanCacheMetrics::Get().hits->Add();
      return it->second;
    }
  }
  // Plan outside the lock; concurrent first callers may plan twice, the
  // map keeps whichever lands first.
  query::QuerySpec bound;
  const query::QuerySpec* spec = &state_->spec;
  if (!params.empty()) {
    QPPT_ASSIGN_OR_RETURN(bound, query::BindParams(state_->spec, params));
    spec = &bound;
  }
  QPPT_ASSIGN_OR_RETURN(Plan plan,
                        query::PlanQuery(*state_->db, *spec, knobs));
  auto shared = std::make_shared<const Plan>(std::move(plan));
  dbg::RankedLockGuard lock(dbg::LockRank::kPlanCache, state_->mu);
  // relaxed: statistics counter; no ordering needed.
  state_->misses.fetch_add(1, std::memory_order_relaxed);
  PlanCacheMetrics::Get().misses->Add();
  auto [it, inserted] = state_->plans.emplace(key, std::move(shared));
  if (inserted) {
    state_->insertion_order.push_back(key);
    if (state_->insertion_order.size() > kMaxCachedPlans) {
      // FIFO-evict the oldest entry; executions holding its shared_ptr
      // finish unaffected.
      state_->plans.erase(state_->insertion_order.front());
      state_->insertion_order.erase(state_->insertion_order.begin());
      PlanCacheMetrics::Get().evictions->Add();
    }
  }
  return it->second;
}

}  // namespace qppt::engine
