#include "engine/write_session.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "core/stats.h"
#include "dbg/invariants.h"
#include "dbg/lock_rank.h"
#include "engine/session.h"
#include "obs/metrics.h"
#include "util/failpoint.h"

namespace qppt::engine {

namespace {

// Write-path metrics, resolved once. first_updater_conflicts counts the
// AlreadyExists statuses Update/Delete return — the MVCC conflict signal
// clients retry on.
struct WriteMetrics {
  obs::Counter* txns_begun;
  obs::Counter* txns_committed;
  obs::Counter* txns_aborted;
  obs::Counter* first_updater_conflicts;
  obs::Counter* live_index_upserts;
  obs::Histogram* commit_publish_ms;

  static WriteMetrics& Get() {
    static WriteMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      WriteMetrics w;
      w.txns_begun = reg.GetCounter("engine_txns_begun_total",
                                    "Write transactions opened.");
      w.txns_committed = reg.GetCounter("engine_txns_committed_total",
                                        "Write transactions committed.");
      w.txns_aborted = reg.GetCounter("engine_txns_aborted_total",
                                      "Write transactions aborted.");
      w.first_updater_conflicts = reg.GetCounter(
          "engine_first_updater_conflicts_total",
          "Update/Delete calls rejected by first-updater-wins.");
      w.live_index_upserts = reg.GetCounter(
          "engine_live_index_upserts_total",
          "Pending rows published into live base indexes at commit.");
      w.commit_publish_ms = reg.GetHistogram(
          "engine_commit_publish_ms",
          obs::ExponentialBuckets(0.001, 4.0, 10),
          "Commit-timestamp allocate-stamp-publish latency, in ms.");
      return w;
    }();
    return m;
  }
};

}  // namespace

WriteSession::WriteSession(EngineRunner* runner, Database* db)
    : runner_(runner), db_(db), txn_(db->txn_manager().Begin()),
      active_(true) {
  WriteMetrics::Get().txns_begun->Add();
}

WriteSession::WriteSession(WriteSession&& other) noexcept
    : runner_(other.runner_),
      db_(other.db_),
      cancel_(other.cancel_),
      txn_(other.txn_),
      touched_(std::move(other.touched_)),
      active_(other.active_) {
  other.active_ = false;
}

WriteSession::~WriteSession() {
  if (active_) {
    Status ignored = Abort();
    (void)ignored;
  }
}

Result<MvccTable*> WriteSession::Table(const std::string& name) {
  QPPT_ASSIGN_OR_RETURN(MvccTable * table, db_->versioned_table(name));
  if (std::find(touched_.begin(), touched_.end(), table) == touched_.end()) {
    touched_.push_back(table);
  }
  return table;
}

Result<MvccTable::LogicalId> WriteSession::Insert(
    const std::string& table, std::span<const uint64_t> row) {
  if (!active_) return Status::InvalidArgument("write session is finished");
  QPPT_ASSIGN_OR_RETURN(MvccTable * t, Table(table));
  dbg::RankedLockGuard lock(dbg::LockRank::kDatabaseWrite,
                            db_->write_mutex());
  return t->Insert(txn_, row);
}

Status WriteSession::Update(const std::string& table, MvccTable::LogicalId id,
                            std::span<const uint64_t> row) {
  if (!active_) return Status::InvalidArgument("write session is finished");
  QPPT_ASSIGN_OR_RETURN(MvccTable * t, Table(table));
  dbg::RankedLockGuard lock(dbg::LockRank::kDatabaseWrite,
                            db_->write_mutex());
  Status s = t->Update(txn_, id, row);
  if (s.code() == StatusCode::kAlreadyExists) {
    WriteMetrics::Get().first_updater_conflicts->Add();
  }
  return s;
}

Status WriteSession::Delete(const std::string& table,
                            MvccTable::LogicalId id) {
  if (!active_) return Status::InvalidArgument("write session is finished");
  QPPT_ASSIGN_OR_RETURN(MvccTable * t, Table(table));
  dbg::RankedLockGuard lock(dbg::LockRank::kDatabaseWrite,
                            db_->write_mutex());
  Status s = t->Delete(txn_, id);
  if (s.code() == StatusCode::kAlreadyExists) {
    WriteMetrics::Get().first_updater_conflicts->Add();
  }
  return s;
}

Result<std::optional<Rid>> WriteSession::Read(
    const std::string& table, MvccTable::LogicalId id) const {
  QPPT_ASSIGN_OR_RETURN(const MvccTable* t, std::as_const(*db_).versioned_table(table));
  return t->Read(txn_, id);
}

Result<Timestamp> WriteSession::Commit() {
  if (!active_) return Status::InvalidArgument("write session is finished");
  if (cancel_ != nullptr) {
    Status st = cancel_->Check();
    if (!st.ok()) {
      // The commit raced its cancellation/deadline: nothing may land.
      // Abort releases every pending version chain entry.
      Status aborted = Abort();
      (void)aborted;
      return st;
    }
  }
  active_ = false;
  TransactionManager& tm = db_->txn_manager();
  WriteMetrics& m = WriteMetrics::Get();
  dbg::RankedLockGuard lock(dbg::LockRank::kDatabaseWrite,
                            db_->write_mutex());
  // Chaos hook, deliberately BEFORE the live-index feed: an injected
  // commit failure rolls back exactly like Abort and leaves no trace in
  // any index.
  try {
    QPPT_FAILPOINT(commit_publish);
  } catch (...) {
    Status st = StatusFromException(std::current_exception());
    for (MvccTable* table : touched_) table->AbortTransaction(txn_);
    tm.Abort(txn_);
    m.txns_aborted->Add();
    if (runner_ != nullptr) runner_->NoteAbort();
    return st;
  }
  // 1. Feed the transaction's new physical rows to the live indexes.
  // They are not yet visible (begin_ts == infinity), so concurrent
  // snapshot scans filter them out via RidVisibleAt.
  uint64_t upserts = 0;
  for (MvccTable* table : touched_) {
    const auto& live = db_->live_indexes(table->name());
    if (live.empty()) continue;
    table->ForEachPendingWrite(txn_, [&](Rid rid) {
      for (BaseIndex* index : live) index->InsertLive(rid);
      upserts += live.size();
    });
  }
  if (upserts > 0) m.live_index_upserts->Add(upserts);
  // 2–4. Allocate, stamp, publish — in that order. Publication happens
  // in timestamp order (FinishCommit), so a snapshot that includes this
  // timestamp is guaranteed to find the versions fully stamped AND the
  // live indexes already populated (the inserts above happened-before
  // the release store FinishCommit makes).
  Timer publish;
  Timestamp ts = tm.BeginCommit();
  for (MvccTable* table : touched_) table->CommitTransaction(txn_, ts);
  tm.FinishCommit(txn_, ts);
  m.commit_publish_ms->Observe(publish.ElapsedMs());
  // Debug-build MVCC audit: the chains this commit touched must still
  // be timestamp-monotone and seamed (dbg/invariants.h).
  for (MvccTable* table : touched_) dbg::CheckVersionChains(*table);
  m.txns_committed->Add();
  if (runner_ != nullptr) runner_->NoteCommit();
  return ts;
}

Status WriteSession::Abort() {
  if (!active_) return Status::InvalidArgument("write session is finished");
  active_ = false;
  dbg::RankedLockGuard lock(dbg::LockRank::kDatabaseWrite,
                            db_->write_mutex());
  for (MvccTable* table : touched_) table->AbortTransaction(txn_);
  db_->txn_manager().Abort(txn_);
  WriteMetrics::Get().txns_aborted->Add();
  if (runner_ != nullptr) runner_->NoteAbort();
  return Status::OK();
}

}  // namespace qppt::engine
