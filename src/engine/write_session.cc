#include "engine/write_session.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "engine/session.h"

namespace qppt::engine {

WriteSession::WriteSession(EngineRunner* runner, Database* db)
    : runner_(runner), db_(db), txn_(db->txn_manager().Begin()),
      active_(true) {}

WriteSession::WriteSession(WriteSession&& other) noexcept
    : runner_(other.runner_),
      db_(other.db_),
      txn_(other.txn_),
      touched_(std::move(other.touched_)),
      active_(other.active_) {
  other.active_ = false;
}

WriteSession::~WriteSession() {
  if (active_) {
    Status ignored = Abort();
    (void)ignored;
  }
}

Result<MvccTable*> WriteSession::Table(const std::string& name) {
  QPPT_ASSIGN_OR_RETURN(MvccTable * table, db_->versioned_table(name));
  if (std::find(touched_.begin(), touched_.end(), table) == touched_.end()) {
    touched_.push_back(table);
  }
  return table;
}

Result<MvccTable::LogicalId> WriteSession::Insert(
    const std::string& table, std::span<const uint64_t> row) {
  if (!active_) return Status::InvalidArgument("write session is finished");
  QPPT_ASSIGN_OR_RETURN(MvccTable * t, Table(table));
  std::lock_guard<std::mutex> lock(db_->write_mutex());
  return t->Insert(txn_, row);
}

Status WriteSession::Update(const std::string& table, MvccTable::LogicalId id,
                            std::span<const uint64_t> row) {
  if (!active_) return Status::InvalidArgument("write session is finished");
  QPPT_ASSIGN_OR_RETURN(MvccTable * t, Table(table));
  std::lock_guard<std::mutex> lock(db_->write_mutex());
  return t->Update(txn_, id, row);
}

Status WriteSession::Delete(const std::string& table,
                            MvccTable::LogicalId id) {
  if (!active_) return Status::InvalidArgument("write session is finished");
  QPPT_ASSIGN_OR_RETURN(MvccTable * t, Table(table));
  std::lock_guard<std::mutex> lock(db_->write_mutex());
  return t->Delete(txn_, id);
}

Result<std::optional<Rid>> WriteSession::Read(
    const std::string& table, MvccTable::LogicalId id) const {
  QPPT_ASSIGN_OR_RETURN(const MvccTable* t, std::as_const(*db_).versioned_table(table));
  return t->Read(txn_, id);
}

Result<Timestamp> WriteSession::Commit() {
  if (!active_) return Status::InvalidArgument("write session is finished");
  active_ = false;
  TransactionManager& tm = db_->txn_manager();
  std::lock_guard<std::mutex> lock(db_->write_mutex());
  // 1. Feed the transaction's new physical rows to the live indexes.
  // They are not yet visible (begin_ts == infinity), so concurrent
  // snapshot scans filter them out via RidVisibleAt.
  for (MvccTable* table : touched_) {
    const auto& live = db_->live_indexes(table->name());
    if (live.empty()) continue;
    table->ForEachPendingWrite(txn_, [&](Rid rid) {
      for (BaseIndex* index : live) index->InsertLive(rid);
    });
  }
  // 2–4. Allocate, stamp, publish — in that order. Publication happens
  // in timestamp order (FinishCommit), so a snapshot that includes this
  // timestamp is guaranteed to find the versions fully stamped AND the
  // live indexes already populated (the inserts above happened-before
  // the release store FinishCommit makes).
  Timestamp ts = tm.BeginCommit();
  for (MvccTable* table : touched_) table->CommitTransaction(txn_, ts);
  tm.FinishCommit(txn_, ts);
  if (runner_ != nullptr) runner_->NoteCommit();
  return ts;
}

Status WriteSession::Abort() {
  if (!active_) return Status::InvalidArgument("write session is finished");
  active_ = false;
  std::lock_guard<std::mutex> lock(db_->write_mutex());
  for (MvccTable* table : touched_) table->AbortTransaction(txn_);
  db_->txn_manager().Abort(txn_);
  if (runner_ != nullptr) runner_->NoteAbort();
  return Status::OK();
}

}  // namespace qppt::engine
