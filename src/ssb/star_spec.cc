#include "ssb/star_spec.h"

#include <cstdint>
#include <string>
#include <vector>

namespace qppt::ssb {

namespace {

DimJoinSpec DateDim(std::vector<ColumnPred> preds,
                    std::vector<std::string> carry = {"d_year"}) {
  return {"date", "d_datekey", "lo_orderdate", std::move(preds),
          std::move(carry)};
}

StarQuerySpec Q1(const std::string& id, std::vector<ColumnPred> date_preds,
                 KeyPredicate discount, KeyPredicate quantity) {
  StarQuerySpec spec;
  spec.id = id;
  spec.fact_preds = {{"lo_discount", discount}, {"lo_quantity", quantity}};
  spec.dims = {DateDim(std::move(date_preds))};
  spec.group_by = {"d_year"};
  spec.agg_source = ScalarExpr::Mul("lo_extendedprice", "lo_discount");
  spec.agg_name = "revenue";
  return spec;
}

StarQuerySpec Q2(const std::string& id, ColumnPred part_pred,
                 int64_t region_code) {
  StarQuerySpec spec;
  spec.id = id;
  spec.dims = {
      {"part", "p_partkey", "lo_partkey", {part_pred}, {"p_brand1"}},
      {"supplier",
       "s_suppkey",
       "lo_suppkey",
       {{"s_region", KeyPredicate::Point(region_code)}},
       {}},
      DateDim({}, {"d_year"})};
  spec.group_by = {"d_year", "p_brand1"};
  spec.agg_source = ScalarExpr::Column("lo_revenue");
  spec.agg_name = "revenue";
  return spec;
}

StarQuerySpec Q3(const std::string& id, ColumnPred cust_pred,
                 ColumnPred supp_pred, std::vector<ColumnPred> date_preds,
                 const std::string& c_attr, const std::string& s_attr) {
  StarQuerySpec spec;
  spec.id = id;
  spec.dims = {
      {"customer", "c_custkey", "lo_custkey", {cust_pred}, {c_attr}},
      {"supplier", "s_suppkey", "lo_suppkey", {supp_pred}, {s_attr}},
      DateDim(std::move(date_preds))};
  spec.group_by = {c_attr, s_attr, "d_year"};
  spec.agg_source = ScalarExpr::Column("lo_revenue");
  spec.agg_name = "revenue";
  return spec;
}

}  // namespace

Result<StarQuerySpec> SpecForQuery(const SsbData& data,
                                   const std::string& id) {
  if (id == "1.1") {
    return Q1(id, {{"d_year", KeyPredicate::Point(1993)}},
              KeyPredicate::Range(1, 3), KeyPredicate::Range(1, 24));
  }
  if (id == "1.2") {
    return Q1(id, {{"d_yearmonthnum", KeyPredicate::Point(199401)}},
              KeyPredicate::Range(4, 6), KeyPredicate::Range(26, 35));
  }
  if (id == "1.3") {
    return Q1(id,
              {{"d_year", KeyPredicate::Point(1994)},
               {"d_weeknuminyear", KeyPredicate::Point(6)}},
              KeyPredicate::Range(5, 7), KeyPredicate::Range(26, 35));
  }
  if (id == "2.1") {
    return Q2(id,
              {"p_category",
               KeyPredicate::Point(data.CategoryCode("MFGR#12"))},
              data.RegionCode("AMERICA"));
  }
  if (id == "2.2") {
    return Q2(id,
              {"p_brand1", KeyPredicate::Range(data.BrandCode("MFGR#2221"),
                                               data.BrandCode("MFGR#2228"))},
              data.RegionCode("ASIA"));
  }
  if (id == "2.3") {
    return Q2(id,
              {"p_brand1", KeyPredicate::Point(data.BrandCode("MFGR#2221"))},
              data.RegionCode("EUROPE"));
  }
  if (id == "3.1") {
    return Q3(id,
              {"c_region", KeyPredicate::Point(data.RegionCode("ASIA"))},
              {"s_region", KeyPredicate::Point(data.RegionCode("ASIA"))},
              {{"d_year", KeyPredicate::Range(1992, 1997)}}, "c_nation",
              "s_nation");
  }
  if (id == "3.2") {
    int64_t us = data.NationCode("UNITED STATES");
    return Q3(id, {"c_nation", KeyPredicate::Point(us)},
              {"s_nation", KeyPredicate::Point(us)},
              {{"d_year", KeyPredicate::Range(1992, 1997)}}, "c_city",
              "s_city");
  }
  if (id == "3.3" || id == "3.4") {
    std::vector<int64_t> cities = {data.CityCode("UNITED KI1"),
                                   data.CityCode("UNITED KI5")};
    std::vector<ColumnPred> date_preds =
        id == "3.3"
            ? std::vector<ColumnPred>{{"d_year",
                                       KeyPredicate::Range(1992, 1997)}}
            : std::vector<ColumnPred>{
                  {"d_yearmonthnum", KeyPredicate::Point(199712)}};
    return Q3(id, {"c_city", KeyPredicate::In(cities)},
              {"s_city", KeyPredicate::In(cities)}, std::move(date_preds),
              "c_city", "s_city");
  }
  if (id == "4.1" || id == "4.2" || id == "4.3") {
    StarQuerySpec spec;
    spec.id = id;
    spec.agg_source = ScalarExpr::Sub("lo_revenue", "lo_supplycost");
    spec.agg_name = "profit";
    int64_t america = data.RegionCode("AMERICA");
    std::vector<int64_t> mfgr12 = {data.MfgrCode("MFGR#1"),
                                   data.MfgrCode("MFGR#2")};
    if (id == "4.1") {
      spec.dims = {
          {"customer",
           "c_custkey",
           "lo_custkey",
           {{"c_region", KeyPredicate::Point(america)}},
           {"c_nation"}},
          {"supplier",
           "s_suppkey",
           "lo_suppkey",
           {{"s_region", KeyPredicate::Point(america)}},
           {}},
          {"part", "p_partkey", "lo_partkey",
           {{"p_mfgr", KeyPredicate::In(mfgr12)}}, {}},
          DateDim({})};
      spec.group_by = {"d_year", "c_nation"};
    } else if (id == "4.2") {
      spec.dims = {
          {"customer",
           "c_custkey",
           "lo_custkey",
           {{"c_region", KeyPredicate::Point(america)}},
           {}},
          {"supplier",
           "s_suppkey",
           "lo_suppkey",
           {{"s_region", KeyPredicate::Point(america)}},
           {"s_nation"}},
          {"part", "p_partkey", "lo_partkey",
           {{"p_mfgr", KeyPredicate::In(mfgr12)}}, {"p_category"}},
          DateDim({{"d_year", KeyPredicate::Range(1997, 1998)}})};
      spec.group_by = {"d_year", "s_nation", "p_category"};
    } else {
      spec.dims = {
          {"customer",
           "c_custkey",
           "lo_custkey",
           {{"c_region", KeyPredicate::Point(america)}},
           {}},
          {"supplier",
           "s_suppkey",
           "lo_suppkey",
           {{"s_nation",
             KeyPredicate::Point(data.NationCode("UNITED STATES"))}},
           {"s_city"}},
          {"part", "p_partkey", "lo_partkey",
           {{"p_category",
             KeyPredicate::Point(data.CategoryCode("MFGR#14"))}},
           {"p_brand1"}},
          DateDim({{"d_year", KeyPredicate::Range(1997, 1998)}})};
      spec.group_by = {"d_year", "s_city", "p_brand1"};
    }
    return spec;
  }
  return Status::InvalidArgument("unknown SSB query id '" + id + "'");
}

}  // namespace qppt::ssb
