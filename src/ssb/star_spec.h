// Engine-neutral descriptions of the 13 SSB queries.
//
// The baseline engines (column-at-a-time and vector-at-a-time, §5) answer
// the same queries as the QPPT plans. To keep the three implementations
// honest about *semantics* while differing in *processing model*, the
// query itself is described once — predicates, dimension joins, group
// keys, aggregate — and each baseline interprets the description with its
// own execution style. (The QPPT plans are hand-built separately in
// queries_qppt.cc because operator composition is exactly what the paper
// studies.)

#ifndef QPPT_SSB_STAR_SPEC_H_
#define QPPT_SSB_STAR_SPEC_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/agg.h"
#include "core/operators/common.h"
#include "ssb/dbgen.h"

namespace qppt::ssb {

inline bool EvalKeyPredicate(const KeyPredicate& p, int64_t v) {
  switch (p.kind) {
    case KeyPredicate::Kind::kAll:
      return true;
    case KeyPredicate::Kind::kPoint:
      return v == p.point;
    case KeyPredicate::Kind::kRange:
      return v >= p.lo && v <= p.hi;
    case KeyPredicate::Kind::kIn:
      return std::find(p.in_points.begin(), p.in_points.end(), v) !=
             p.in_points.end();
  }
  return false;
}

// A predicate on one column of a table.
struct ColumnPred {
  std::string column;
  KeyPredicate pred;
};

// One dimension join: fact.fact_fk = dim.key_column, with predicates on
// the dimension and optionally carried dimension attributes (group keys).
struct DimJoinSpec {
  std::string table;
  std::string key_column;
  std::string fact_fk;
  std::vector<ColumnPred> preds;
  std::vector<std::string> carry;
};

struct StarQuerySpec {
  std::string id;
  std::vector<ColumnPred> fact_preds;   // on lineorder columns
  std::vector<DimJoinSpec> dims;
  std::vector<std::string> group_by;    // subset of the dims' carried attrs
  ScalarExpr agg_source;                // over lineorder columns
  std::string agg_name;                 // "revenue" / "profit"
};

// Builds the spec for an SSB query id ("1.1" .. "4.3").
Result<StarQuerySpec> SpecForQuery(const SsbData& data,
                                   const std::string& query_id);

}  // namespace qppt::ssb

#endif  // QPPT_SSB_STAR_SPEC_H_
