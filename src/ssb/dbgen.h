// Deterministic Star Schema Benchmark data generator.
//
// Substitutes for the SSB dbgen tool: same schema, same cardinality
// ratios, same attribute domains and correlations (brand determined by
// category determined by manufacturer; city determined by nation
// determined by region), seeded and fully reproducible. The evaluation
// (§5) only depends on these distributional properties, not on dbgen's
// exact byte stream.
//
// Besides the row tables, Generate() builds the base-index pool the QPPT
// plans of Fig. 5 start from (partially clustered indexes on the
// selection/join attributes) and, on demand, columnar copies for the
// baseline engines.

#ifndef QPPT_SSB_DBGEN_H_
#define QPPT_SSB_DBGEN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/base_index.h"
#include "ssb/schema.h"
#include "storage/column_table.h"
#include "util/status.h"

namespace qppt::ssb {

struct SsbConfig {
  double scale_factor = 0.1;
  uint64_t seed = 42;
  size_t kiss_root_bits = 26;  // lower this for tiny test instances
  size_t kprime = 4;
  // Build the base-index pool with generalized prefix trees instead of
  // KISS-Trees where both are eligible — exercises the prefix-tree and
  // mixed-family star-join paths on the full SSB flight (pair it with
  // PlanKnobs::table_options.prefer_kiss = false for all-prefix plans).
  bool prefer_kiss = true;
  // Skip base-index construction (for baseline-only experiments).
  bool build_indexes = true;
  // Store lineorder as a versioned (MVCC) table bulk-loaded in one
  // committed transaction, with *live* secondary fact indexes under the
  // usual names (lo_partkey, lo_custkey, lo_discount) — the HTAP setup:
  // engine write sessions upsert while SSB flights read snapshots. The 13
  // query plans run unmodified.
  bool versioned_lineorder = false;
};

class SsbData {
 public:
  Database db;
  SsbDictionaries dicts;
  SsbConfig config;

  // Dictionary-code helpers for formulating predicates.
  int64_t RegionCode(const std::string& name) const {
    return dicts.region->CodeOf(name).value();
  }
  int64_t NationCode(const std::string& name) const {
    return dicts.nation->CodeOf(name).value();
  }
  int64_t CityCode(const std::string& name) const {
    return dicts.city->CodeOf(name).value();
  }
  int64_t MfgrCode(const std::string& name) const {
    return dicts.mfgr->CodeOf(name).value();
  }
  int64_t CategoryCode(const std::string& name) const {
    return dicts.category->CodeOf(name).value();
  }
  int64_t BrandCode(const std::string& name) const {
    return dicts.brand->CodeOf(name).value();
  }

  // Columnar copies for the baseline engines (built lazily, cached).
  const ColumnTable& Columnar(const std::string& table_name);

 private:
  std::map<std::string, std::unique_ptr<ColumnTable>> columnar_;
};

// Generates tables, dictionaries, and (optionally) base indexes.
Result<std::unique_ptr<SsbData>> Generate(const SsbConfig& config);

}  // namespace qppt::ssb

#endif  // QPPT_SSB_DBGEN_H_
