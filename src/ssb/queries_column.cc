#include "baseline/column_engine.h"

#include <string>
#include "ssb/queries_baseline.h"
#include "ssb/queries_qppt.h"
#include "ssb/star_spec.h"

namespace qppt::ssb {

Result<QueryResult> RunColumn(SsbData& data, const std::string& query_id) {
  QPPT_ASSIGN_OR_RETURN(StarQuerySpec spec, SpecForQuery(data, query_id));
  QPPT_ASSIGN_OR_RETURN(QueryResult result,
                        baseline::RunColumnAtATime(data, spec));
  QPPT_RETURN_NOT_OK(ApplyOrderBy(query_id, &result));
  return result;
}

}  // namespace qppt::ssb
