// The 13 SSB queries on the declarative query API (§3, §5).
//
// Each query is a query::QuerySpec built with the fluent QueryBuilder;
// the rule-based planner (core/query/planner.h) emits the physical plan
// DexterDB's optimizer would, honoring the demonstrator knobs
// (appendix A):
//   - knobs.use_select_join: Q1.x run as a composed select-join-group
//     (lineorder selection streamed into the date join) versus a separate
//     selection + join-group — the Fig. 8 experiment;
//   - knobs.max_join_ways: caps the arity of the composed star joins,
//     expanding the plan into a chain of smaller joins — the Fig. 9
//     experiment (2-way / 3-way / 4-way / multi);
//   - knobs.join_buffer_size: joinbuffer capacity — the E7 ablation.

#ifndef QPPT_SSB_QUERIES_QPPT_H_
#define QPPT_SSB_QUERIES_QPPT_H_

#include <string>
#include <vector>

#include "core/plan.h"
#include "core/query/query_spec.h"
#include "ssb/dbgen.h"

namespace qppt::engine {
class EngineRunner;  // engine/session.h
}  // namespace qppt::engine

namespace qppt::ssb {

// All SSB query ids: "1.1" .. "4.3".
const std::vector<std::string>& AllQueryIds();

// The declarative description of one SSB query — the planner input, and
// what EngineRunner::Prepare consumes for prepared execution.
Result<query::QuerySpec> BuildQuerySpec(const SsbData& data,
                                        const std::string& query_id);

// Builds the QPPT plan for one query (BuildQuerySpec + PlanQuery).
Result<Plan> BuildQpptPlan(const SsbData& data, const std::string& query_id,
                           const PlanKnobs& knobs);

// Builds, runs, and returns rows ordered per the query's ORDER BY clause
// (the planner attaches the Q3.x revenue-desc post-sort to the plan;
// everything else falls out of the output index order). `stats` is
// optional.
Result<QueryResult> RunQppt(const SsbData& data, const std::string& query_id,
                            const PlanKnobs& knobs,
                            PlanStats* stats = nullptr);

// Same query flight admitted through the engine layer: the runner forces
// knobs.threads to its configured worker count and attaches its morsel
// pool, so an EngineRunner{threads: 1} runs the identical serial plans
// and an EngineRunner{threads: N} runs them morsel-parallel.
Result<QueryResult> RunQppt(engine::EngineRunner& engine, const SsbData& data,
                            const std::string& query_id,
                            const PlanKnobs& knobs,
                            PlanStats* stats = nullptr);

// Applies a query's ORDER BY to extracted rows (used by the baseline
// engines so all three systems return comparable row orders; QPPT plans
// carry their ORDER BY in Plan::result_order()). Fails when the result
// is missing an ORDER BY column — a silently unsorted baseline would
// corrupt every differential comparison downstream.
Status ApplyOrderBy(const std::string& query_id, QueryResult* result);

}  // namespace qppt::ssb

#endif  // QPPT_SSB_QUERIES_QPPT_H_
