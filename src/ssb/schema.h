// Star Schema Benchmark schema (O'Neil et al. [13]).
//
// The SSB derives a pure star schema from TPC-H: one fact table
// (lineorder) surrounded by the dimension tables part, supplier, customer
// and date. String attributes (regions, nations, cities, part brands, ...)
// are dictionary-encoded with order-preserving codes so prefix-tree
// indexes and range predicates work on them directly.

#ifndef QPPT_SSB_SCHEMA_H_
#define QPPT_SSB_SCHEMA_H_

#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"

namespace qppt::ssb {

// The five SSB regions, and 25 nations (five per region), matching the
// TPC-H name pool. Cities are the nation name truncated/padded to nine
// characters plus a digit 0-9 (e.g. "UNITED KI1"), as in the SSB spec.
extern const char* const kRegions[5];
extern const char* const kNations[25];

// Region index (0-4) of nation `n` (0-24).
inline int RegionOfNation(int n) { return n / 5; }

// Builds the city string for nation `n`, city digit `d`.
std::string CityName(int nation, int digit);

// Shared dictionaries for all string-typed SSB attributes.
struct SsbDictionaries {
  DictionaryPtr region;
  DictionaryPtr nation;
  DictionaryPtr city;
  DictionaryPtr mfgr;       // MFGR#1 .. MFGR#5
  DictionaryPtr category;   // MFGR#11 .. MFGR#55
  DictionaryPtr brand;      // MFGR#<cat><1..40>
  DictionaryPtr yearmonth;  // "Jan1992" .. "Dec1998"
};

// Creates and seals all dictionaries.
SsbDictionaries MakeDictionaries();

// Table schemas. Column names follow the SSB convention (lo_, p_, s_,
// c_, d_ prefixes).
Schema LineorderSchema();
Schema PartSchema(const SsbDictionaries& dicts);
Schema SupplierSchema(const SsbDictionaries& dicts);
Schema CustomerSchema(const SsbDictionaries& dicts);
Schema DateSchema(const SsbDictionaries& dicts);

// Row counts at a given scale factor. SF=1 matches the SSB sizes
// (lineorder 6,000,000; customer 30,000; supplier 2,000; part 200,000);
// fractional SF scales linearly with sane floors so tiny test instances
// stay well-formed.
size_t LineorderCount(double sf);
size_t CustomerCount(double sf);
size_t SupplierCount(double sf);
size_t PartCount(double sf);

}  // namespace qppt::ssb

#endif  // QPPT_SSB_SCHEMA_H_
