// SSB queries on the baseline engines (the Fig. 7 comparators).

#ifndef QPPT_SSB_QUERIES_BASELINE_H_
#define QPPT_SSB_QUERIES_BASELINE_H_

#include <string>

#include "core/plan.h"
#include "ssb/dbgen.h"

namespace qppt::ssb {

// Runs query `query_id` column-at-a-time (MonetDB proxy). Rows are
// ordered per the query's ORDER BY.
Result<QueryResult> RunColumn(SsbData& data, const std::string& query_id);

// Runs query `query_id` vector-at-a-time (commercial-DBMS proxy).
Result<QueryResult> RunVector(SsbData& data, const std::string& query_id);

}  // namespace qppt::ssb

#endif  // QPPT_SSB_QUERIES_BASELINE_H_
