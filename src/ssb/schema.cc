#include "ssb/schema.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace qppt::ssb {

const char* const kRegions[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                 "MIDDLE EAST"};

// Five nations per region, grouped in region order.
const char* const kNations[25] = {
    // AFRICA
    "ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE",
    // AMERICA
    "ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES",
    // ASIA
    "CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM",
    // EUROPE
    "FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM",
    // MIDDLE EAST
    "EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"};

std::string CityName(int nation, int digit) {
  std::string base = kNations[nation];
  base.resize(9, ' ');  // truncate or pad to nine characters
  base.push_back(static_cast<char>('0' + digit));
  return base;
}

namespace {

const char* const kMonthNames[12] = {"Jan", "Feb", "Mar", "Apr",
                                     "May", "Jun", "Jul", "Aug",
                                     "Sep", "Oct", "Nov", "Dec"};

}  // namespace

SsbDictionaries MakeDictionaries() {
  SsbDictionaries d;
  d.region = std::make_shared<Dictionary>();
  for (const char* r : kRegions) d.region->Add(r);
  d.region->Seal();

  d.nation = std::make_shared<Dictionary>();
  for (const char* n : kNations) d.nation->Add(n);
  d.nation->Seal();

  d.city = std::make_shared<Dictionary>();
  for (int n = 0; n < 25; ++n) {
    for (int digit = 0; digit < 10; ++digit) d.city->Add(CityName(n, digit));
  }
  d.city->Seal();

  d.mfgr = std::make_shared<Dictionary>();
  d.category = std::make_shared<Dictionary>();
  d.brand = std::make_shared<Dictionary>();
  for (int m = 1; m <= 5; ++m) {
    d.mfgr->Add("MFGR#" + std::to_string(m));
    for (int c = 1; c <= 5; ++c) {
      std::string cat = "MFGR#" + std::to_string(m) + std::to_string(c);
      d.category->Add(cat);
      for (int b = 1; b <= 40; ++b) {
        d.brand->Add(cat + std::to_string(b));
      }
    }
  }
  d.mfgr->Seal();
  d.category->Seal();
  d.brand->Seal();

  d.yearmonth = std::make_shared<Dictionary>();
  for (int y = 1992; y <= 1998; ++y) {
    for (int m = 0; m < 12; ++m) {
      d.yearmonth->Add(std::string(kMonthNames[m]) + std::to_string(y));
    }
  }
  d.yearmonth->Seal();
  return d;
}

Schema LineorderSchema() {
  return Schema({{"lo_custkey", ValueType::kInt64, nullptr},
                 {"lo_partkey", ValueType::kInt64, nullptr},
                 {"lo_suppkey", ValueType::kInt64, nullptr},
                 {"lo_orderdate", ValueType::kInt64, nullptr},
                 {"lo_quantity", ValueType::kInt64, nullptr},
                 {"lo_extendedprice", ValueType::kInt64, nullptr},
                 {"lo_discount", ValueType::kInt64, nullptr},
                 {"lo_revenue", ValueType::kInt64, nullptr},
                 {"lo_supplycost", ValueType::kInt64, nullptr}});
}

Schema PartSchema(const SsbDictionaries& dicts) {
  return Schema({{"p_partkey", ValueType::kInt64, nullptr},
                 {"p_mfgr", ValueType::kString, dicts.mfgr},
                 {"p_category", ValueType::kString, dicts.category},
                 {"p_brand1", ValueType::kString, dicts.brand},
                 {"p_size", ValueType::kInt64, nullptr}});
}

Schema SupplierSchema(const SsbDictionaries& dicts) {
  return Schema({{"s_suppkey", ValueType::kInt64, nullptr},
                 {"s_city", ValueType::kString, dicts.city},
                 {"s_nation", ValueType::kString, dicts.nation},
                 {"s_region", ValueType::kString, dicts.region}});
}

Schema CustomerSchema(const SsbDictionaries& dicts) {
  return Schema({{"c_custkey", ValueType::kInt64, nullptr},
                 {"c_city", ValueType::kString, dicts.city},
                 {"c_nation", ValueType::kString, dicts.nation},
                 {"c_region", ValueType::kString, dicts.region}});
}

Schema DateSchema(const SsbDictionaries& dicts) {
  return Schema({{"d_datekey", ValueType::kInt64, nullptr},
                 {"d_year", ValueType::kInt64, nullptr},
                 {"d_yearmonthnum", ValueType::kInt64, nullptr},
                 {"d_yearmonth", ValueType::kString, dicts.yearmonth},
                 {"d_weeknuminyear", ValueType::kInt64, nullptr}});
}

size_t LineorderCount(double sf) {
  return std::max<size_t>(1000, static_cast<size_t>(6'000'000.0 * sf));
}
size_t CustomerCount(double sf) {
  return std::max<size_t>(150, static_cast<size_t>(30'000.0 * sf));
}
size_t SupplierCount(double sf) {
  return std::max<size_t>(50, static_cast<size_t>(2'000.0 * sf));
}
size_t PartCount(double sf) {
  // SSB: 200,000 * (1 + floor(log2(SF))) for SF >= 1; linear below.
  if (sf >= 1.0) {
    return 200'000 *
           (1 + static_cast<size_t>(std::floor(std::log2(sf))));
  }
  return std::max<size_t>(500, static_cast<size_t>(200'000.0 * sf));
}

}  // namespace qppt::ssb
