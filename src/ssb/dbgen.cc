#include "ssb/dbgen.h"

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace qppt::ssb {

namespace {

bool IsLeapYear(int y) {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

int DaysInMonth(int y, int m) {
  static const int kDays[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeapYear(y)) return 29;
  return kDays[m - 1];
}

const char* const kMonthNames[12] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                     "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

Status BuildDate(Database* db, const SsbDictionaries& dicts,
                 std::vector<int64_t>* datekeys) {
  auto table = std::make_unique<RowTable>(DateSchema(dicts), "date");
  for (int y = 1992; y <= 1998; ++y) {
    int day_of_year = 0;
    for (int m = 1; m <= 12; ++m) {
      std::string ym = std::string(kMonthNames[m - 1]) + std::to_string(y);
      int64_t ym_code = dicts.yearmonth->CodeOf(ym).value();
      for (int d = 1; d <= DaysInMonth(y, m); ++d) {
        ++day_of_year;
        int64_t datekey = int64_t{y} * 10000 + m * 100 + d;
        uint64_t row[5] = {SlotFromInt64(datekey), SlotFromInt64(y),
                           SlotFromInt64(int64_t{y} * 100 + m),
                           SlotFromInt64(ym_code),
                           SlotFromInt64((day_of_year - 1) / 7 + 1)};
        table->AppendRow(row);
        datekeys->push_back(datekey);
      }
    }
  }
  return db->AddTable(std::move(table));
}

Status BuildPart(Database* db, const SsbDictionaries& dicts, size_t count,
                 Rng* rng) {
  auto table = std::make_unique<RowTable>(PartSchema(dicts), "part");
  table->Reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // Correlated hierarchy: manufacturer -> category -> brand (§SSB).
    int m = 1 + static_cast<int>(rng->NextBounded(5));
    int c = 1 + static_cast<int>(rng->NextBounded(5));
    int b = 1 + static_cast<int>(rng->NextBounded(40));
    std::string mfgr = "MFGR#" + std::to_string(m);
    std::string category = mfgr + std::to_string(c);
    std::string brand = category + std::to_string(b);
    uint64_t row[5] = {
        SlotFromInt64(static_cast<int64_t>(i)),
        SlotFromInt64(dicts.mfgr->CodeOf(mfgr).value()),
        SlotFromInt64(dicts.category->CodeOf(category).value()),
        SlotFromInt64(dicts.brand->CodeOf(brand).value()),
        SlotFromInt64(1 + static_cast<int64_t>(rng->NextBounded(50)))};
    table->AppendRow(row);
  }
  return db->AddTable(std::move(table));
}

Status BuildSupplierOrCustomer(Database* db, const SsbDictionaries& dicts,
                               const Schema& schema, const std::string& name,
                               size_t count, Rng* rng) {
  auto table = std::make_unique<RowTable>(schema, name);
  table->Reserve(count);
  for (size_t i = 0; i < count; ++i) {
    int nation = static_cast<int>(rng->NextBounded(25));
    int digit = static_cast<int>(rng->NextBounded(10));
    int region = RegionOfNation(nation);
    uint64_t row[4] = {
        SlotFromInt64(static_cast<int64_t>(i)),
        SlotFromInt64(dicts.city->CodeOf(CityName(nation, digit)).value()),
        SlotFromInt64(dicts.nation->CodeOf(kNations[nation]).value()),
        SlotFromInt64(dicts.region->CodeOf(kRegions[region]).value())};
    table->AppendRow(row);
  }
  return db->AddTable(std::move(table));
}

// Generates the lineorder rows; emit(row) receives each 9-slot record.
// Shared by the plain and versioned builds so both modes produce the
// identical byte stream for one seed.
template <typename Emit>
void GenLineorderRows(size_t count, size_t customers, size_t suppliers,
                      size_t parts, const std::vector<int64_t>& datekeys,
                      Rng* rng, Emit&& emit) {
  for (size_t i = 0; i < count; ++i) {
    int64_t quantity = 1 + static_cast<int64_t>(rng->NextBounded(50));
    int64_t discount = static_cast<int64_t>(rng->NextBounded(11));  // 0..10
    int64_t extendedprice =
        90000 + static_cast<int64_t>(rng->NextBounded(1000000));
    int64_t revenue = extendedprice * (100 - discount) / 100;
    int64_t supplycost = extendedprice * 6 / 10 +
                         static_cast<int64_t>(rng->NextBounded(10000));
    uint64_t row[9] = {
        SlotFromInt64(static_cast<int64_t>(rng->NextBounded(customers))),
        SlotFromInt64(static_cast<int64_t>(rng->NextBounded(parts))),
        SlotFromInt64(static_cast<int64_t>(rng->NextBounded(suppliers))),
        SlotFromInt64(datekeys[rng->NextBounded(datekeys.size())]),
        SlotFromInt64(quantity),
        SlotFromInt64(extendedprice),
        SlotFromInt64(discount),
        SlotFromInt64(revenue),
        SlotFromInt64(supplycost)};
    emit(row);
  }
}

Status BuildLineorder(Database* db, bool versioned, size_t count,
                      size_t customers, size_t suppliers, size_t parts,
                      const std::vector<int64_t>& datekeys, Rng* rng) {
  if (!versioned) {
    auto table = std::make_unique<RowTable>(LineorderSchema(), "lineorder");
    table->Reserve(count);
    GenLineorderRows(count, customers, suppliers, parts, datekeys, rng,
                     [&](const uint64_t* row) {
                       table->AppendRow(std::span<const uint64_t>(row, 9));
                     });
    return db->AddTable(std::move(table));
  }
  // Versioned fact table: bulk-load as ONE committed transaction so every
  // row carries commit timestamp 1 and later write sessions / OLAP
  // flights interact with a normal MVCC history.
  auto table = std::make_unique<MvccTable>(LineorderSchema(), "lineorder");
  TransactionManager& tm = db->txn_manager();
  Transaction txn = tm.Begin();
  GenLineorderRows(count, customers, suppliers, parts, datekeys, rng,
                   [&](const uint64_t* row) {
                     table->Insert(txn, std::span<const uint64_t>(row, 9));
                   });
  Timestamp ts = tm.BeginCommit();
  table->CommitTransaction(txn, ts);
  tm.FinishCommit(txn, ts);
  return db->AddVersionedTable(std::move(table));
}

// The base-index pool for the QPPT plans: partially clustered indexes on
// every selection and join attribute the 13 queries touch (§3 — "created
// once and remain in the data pool for future queries").
Status BuildIndexes(Database* db, const SsbConfig& config) {
  BaseIndex::Options opt;
  opt.kiss_root_bits = config.kiss_root_bits;
  opt.kprime = config.kprime;
  opt.prefer_kiss = config.prefer_kiss;

  // Fact-table indexes on the join keys used as the left main of the
  // multi-way/star joins, plus the Q1.x selection index on lo_discount.
  // With a versioned lineorder they become *live* secondary indexes under
  // the same names, so all 13 query plans run unmodified: the clustered
  // payloads are traded for writability (attribute access reads the
  // version storage) and scans filter through the MVCC snapshot.
  if (config.versioned_lineorder) {
    QPPT_RETURN_NOT_OK(
        db->BuildLiveIndex("lo_partkey", "lineorder", {"lo_partkey"}, opt));
    QPPT_RETURN_NOT_OK(
        db->BuildLiveIndex("lo_custkey", "lineorder", {"lo_custkey"}, opt));
    QPPT_RETURN_NOT_OK(
        db->BuildLiveIndex("lo_discount", "lineorder", {"lo_discount"}, opt));
  } else {
    QPPT_RETURN_NOT_OK(db->BuildIndex(
        "lo_partkey", "lineorder", {"lo_partkey"},
        {"lo_suppkey", "lo_orderdate", "lo_revenue"}, opt));
    QPPT_RETURN_NOT_OK(db->BuildIndex(
        "lo_custkey", "lineorder", {"lo_custkey"},
        {"lo_suppkey", "lo_partkey", "lo_orderdate", "lo_revenue",
         "lo_supplycost"},
        opt));
    QPPT_RETURN_NOT_OK(db->BuildIndex(
        "lo_discount", "lineorder", {"lo_discount"},
        {"lo_quantity", "lo_orderdate", "lo_extendedprice", "lo_discount"},
        opt));
  }

  // Dimension indexes on the selection attributes.
  QPPT_RETURN_NOT_OK(db->BuildIndex("p_category", "part", {"p_category"},
                                    {"p_partkey", "p_brand1"}, opt));
  QPPT_RETURN_NOT_OK(db->BuildIndex("p_brand1", "part", {"p_brand1"},
                                    {"p_partkey", "p_brand1"}, opt));
  QPPT_RETURN_NOT_OK(db->BuildIndex("p_mfgr", "part", {"p_mfgr"},
                                    {"p_partkey", "p_category", "p_brand1"},
                                    opt));
  QPPT_RETURN_NOT_OK(db->BuildIndex("s_region", "supplier", {"s_region"},
                                    {"s_suppkey", "s_nation", "s_city"},
                                    opt));
  QPPT_RETURN_NOT_OK(db->BuildIndex("s_nation", "supplier", {"s_nation"},
                                    {"s_suppkey", "s_city"}, opt));
  QPPT_RETURN_NOT_OK(db->BuildIndex("s_city", "supplier", {"s_city"},
                                    {"s_suppkey", "s_city"}, opt));
  QPPT_RETURN_NOT_OK(db->BuildIndex("c_region", "customer", {"c_region"},
                                    {"c_custkey", "c_nation", "c_city"},
                                    opt));
  QPPT_RETURN_NOT_OK(db->BuildIndex("c_nation", "customer", {"c_nation"},
                                    {"c_custkey", "c_city"}, opt));
  QPPT_RETURN_NOT_OK(db->BuildIndex("c_city", "customer", {"c_city"},
                                    {"c_custkey", "c_city"}, opt));
  QPPT_RETURN_NOT_OK(db->BuildIndex("d_datekey", "date", {"d_datekey"},
                                    {"d_year"}, opt));
  QPPT_RETURN_NOT_OK(db->BuildIndex(
      "d_year", "date", {"d_year"},
      {"d_datekey", "d_weeknuminyear", "d_year"}, opt));
  QPPT_RETURN_NOT_OK(db->BuildIndex("d_yearmonthnum", "date",
                                    {"d_yearmonthnum"},
                                    {"d_datekey", "d_year"}, opt));
  return Status::OK();
}

}  // namespace

const ColumnTable& SsbData::Columnar(const std::string& table_name) {
  auto it = columnar_.find(table_name);
  if (it == columnar_.end()) {
    const RowTable* rows = db.table(table_name).value();
    it = columnar_
             .emplace(table_name, std::make_unique<ColumnTable>(
                                      ColumnTable::FromRowTable(*rows)))
             .first;
  }
  return *it->second;
}

Result<std::unique_ptr<SsbData>> Generate(const SsbConfig& config) {
  auto data = std::make_unique<SsbData>();
  data->config = config;
  data->dicts = MakeDictionaries();
  Rng rng(config.seed);

  std::vector<int64_t> datekeys;
  QPPT_RETURN_NOT_OK(BuildDate(&data->db, data->dicts, &datekeys));
  size_t parts = PartCount(config.scale_factor);
  size_t suppliers = SupplierCount(config.scale_factor);
  size_t customers = CustomerCount(config.scale_factor);
  QPPT_RETURN_NOT_OK(BuildPart(&data->db, data->dicts, parts, &rng));
  QPPT_RETURN_NOT_OK(BuildSupplierOrCustomer(&data->db, data->dicts,
                                             SupplierSchema(data->dicts),
                                             "supplier", suppliers, &rng));
  QPPT_RETURN_NOT_OK(BuildSupplierOrCustomer(&data->db, data->dicts,
                                             CustomerSchema(data->dicts),
                                             "customer", customers, &rng));
  QPPT_RETURN_NOT_OK(BuildLineorder(&data->db, config.versioned_lineorder,
                                    LineorderCount(config.scale_factor),
                                    customers, suppliers, parts, datekeys,
                                    &rng));
  if (config.build_indexes) {
    QPPT_RETURN_NOT_OK(BuildIndexes(&data->db, config));
  }
  return data;
}

}  // namespace qppt::ssb
