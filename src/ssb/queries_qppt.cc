#include "ssb/queries_qppt.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/operators/select_join.h"
#include "core/operators/selection.h"
#include "core/operators/star_join.h"
#include "engine/session.h"

namespace qppt::ssb {

namespace {

// ---- Q1.x ------------------------------------------------------------------
//
// select sum(lo_extendedprice * lo_discount) as revenue
// from lineorder, date where lo_orderdate = d_datekey and <date predicate>
// and lo_discount between .. and lo_quantity ..
//
// Plan: date selection -> small index on d_datekey; then either a composed
// select-join-group on the (large) lineorder selection, or a separate
// lineorder selection materializing an intermediate keyed on lo_orderdate
// followed by a join-group via synchronous index scan (Fig. 8).
struct Q1Params {
  SelectionSpec date_sel;       // output slot "date_sel", keyed d_datekey
  KeyPredicate lo_discount;     // discount predicate (index key)
  std::vector<Residual> lo_residuals;
};

Plan BuildQ1(const Q1Params& params, const PlanKnobs& knobs) {
  Plan plan;
  plan.Emplace<SelectionOp>(params.date_sel);
  AggSpec agg({{AggFn::kSum,
                ScalarExpr::Mul("lo_extendedprice", "lo_discount"),
                "revenue"}});
  if (knobs.use_select_join) {
    SelectJoinSpec sj;
    sj.input_index = "lo_discount";
    sj.predicate = params.lo_discount;
    sj.residuals = params.lo_residuals;
    sj.left_columns = {"lo_orderdate", "lo_extendedprice", "lo_discount"};
    sj.probe_column = "lo_orderdate";
    sj.right = SideRef::Slot("date_sel");
    sj.right_columns = {"d_year"};
    sj.output = {"result", {"d_year"}, agg};
    plan.Emplace<SelectJoinOp>(sj);
  } else {
    SelectionSpec lo_sel;
    lo_sel.input_index = "lo_discount";
    lo_sel.predicate = params.lo_discount;
    lo_sel.residuals = params.lo_residuals;
    lo_sel.carry_columns = {"lo_orderdate", "lo_extendedprice",
                            "lo_discount"};
    lo_sel.output = {"lo_sel", {"lo_orderdate"}, {}};
    plan.Emplace<SelectionOp>(lo_sel);

    StarJoinSpec join;
    join.left = SideRef::Slot("lo_sel");
    join.left_columns = {"lo_extendedprice", "lo_discount"};
    join.right = SideRef::Slot("date_sel");
    join.right_columns = {"d_year"};
    join.output = {"result", {"d_year"}, agg};
    plan.Emplace<StarJoinOp>(join);
  }
  plan.set_result_slot("result");
  return plan;
}

Plan BuildQ11(const SsbData&, const PlanKnobs& knobs) {
  Q1Params p;
  p.date_sel.input_index = "d_year";
  p.date_sel.predicate = KeyPredicate::Point(1993);
  p.date_sel.carry_columns = {"d_datekey", "d_year"};
  p.date_sel.output = {"date_sel", {"d_datekey"}, {}};
  p.lo_discount = KeyPredicate::Range(1, 3);
  p.lo_residuals = {Residual::Lt("lo_quantity", 25)};
  return BuildQ1(p, knobs);
}

Plan BuildQ12(const SsbData&, const PlanKnobs& knobs) {
  Q1Params p;
  p.date_sel.input_index = "d_yearmonthnum";
  p.date_sel.predicate = KeyPredicate::Point(199401);
  p.date_sel.carry_columns = {"d_datekey", "d_year"};
  p.date_sel.output = {"date_sel", {"d_datekey"}, {}};
  p.lo_discount = KeyPredicate::Range(4, 6);
  p.lo_residuals = {Residual::Between("lo_quantity", 26, 35)};
  return BuildQ1(p, knobs);
}

Plan BuildQ13(const SsbData&, const PlanKnobs& knobs) {
  Q1Params p;
  p.date_sel.input_index = "d_year";
  p.date_sel.predicate = KeyPredicate::Point(1994);
  p.date_sel.residuals = {Residual::Eq("d_weeknuminyear", 6)};
  p.date_sel.carry_columns = {"d_datekey", "d_year"};
  p.date_sel.output = {"date_sel", {"d_datekey"}, {}};
  p.lo_discount = KeyPredicate::Range(5, 7);
  p.lo_residuals = {Residual::Between("lo_quantity", 26, 35)};
  return BuildQ1(p, knobs);
}

// ---- Q2.x ------------------------------------------------------------------
//
// select sum(lo_revenue), d_year, p_brand1 from lineorder, date, part,
// supplier where joins and <part predicate> and s_region = R
// group by d_year, p_brand1 order by d_year, p_brand1
//
// The Fig. 5 plan: two selections, a 3-way/star join (mains: lineorder on
// partkey x part selection; assist: supplier selection), then a
// 2-way-join-group against the date base index. The composed group key
// (d_year, p_brand1) lands in a prefix tree, so the ORDER BY is free.
Plan BuildQ2(const SsbData& data, const SelectionSpec& part_sel,
             int64_t region_code) {
  Plan plan;
  (void)data;
  plan.Emplace<SelectionOp>(part_sel);

  SelectionSpec supp_sel;
  supp_sel.input_index = "s_region";
  supp_sel.predicate = KeyPredicate::Point(region_code);
  supp_sel.carry_columns = {"s_suppkey"};
  supp_sel.output = {"supp_sel", {"s_suppkey"}, {}};
  plan.Emplace<SelectionOp>(supp_sel);

  StarJoinSpec join1;
  join1.left = SideRef::Base("lo_partkey");
  join1.left_columns = {"lo_suppkey", "lo_orderdate", "lo_revenue"};
  join1.right = SideRef::Slot("part_sel");
  join1.right_columns = {"p_brand1"};
  join1.assists = {{SideRef::Slot("supp_sel"), "lo_suppkey", {}}};
  join1.output = {"join1", {"lo_orderdate"}, {}};
  plan.Emplace<StarJoinOp>(join1);

  StarJoinSpec join2;
  join2.left = SideRef::Slot("join1");
  join2.left_columns = {"p_brand1", "lo_revenue"};
  join2.right = SideRef::Base("d_datekey");
  join2.right_columns = {"d_year"};
  AggSpec agg({{AggFn::kSum, ScalarExpr::Column("lo_revenue"), "revenue"}});
  join2.output = {"result", {"d_year", "p_brand1"}, agg};
  plan.Emplace<StarJoinOp>(join2);
  plan.set_result_slot("result");
  return plan;
}

Plan BuildQ21(const SsbData& data, const PlanKnobs&) {
  SelectionSpec part_sel;
  part_sel.input_index = "p_category";
  part_sel.predicate = KeyPredicate::Point(data.CategoryCode("MFGR#12"));
  part_sel.carry_columns = {"p_partkey", "p_brand1"};
  part_sel.output = {"part_sel", {"p_partkey"}, {}};
  return BuildQ2(data, part_sel, data.RegionCode("AMERICA"));
}

Plan BuildQ22(const SsbData& data, const PlanKnobs&) {
  SelectionSpec part_sel;
  part_sel.input_index = "p_brand1";
  part_sel.predicate = KeyPredicate::Range(data.BrandCode("MFGR#2221"),
                                           data.BrandCode("MFGR#2228"));
  part_sel.carry_columns = {"p_partkey", "p_brand1"};
  part_sel.output = {"part_sel", {"p_partkey"}, {}};
  return BuildQ2(data, part_sel, data.RegionCode("ASIA"));
}

Plan BuildQ23(const SsbData& data, const PlanKnobs&) {
  SelectionSpec part_sel;
  part_sel.input_index = "p_brand1";
  part_sel.predicate = KeyPredicate::Point(data.BrandCode("MFGR#2221"));
  part_sel.carry_columns = {"p_partkey", "p_brand1"};
  part_sel.output = {"part_sel", {"p_partkey"}, {}};
  return BuildQ2(data, part_sel, data.RegionCode("EUROPE"));
}

// ---- Q3.x ------------------------------------------------------------------
//
// select c_X, s_X, d_year, sum(lo_revenue) as revenue from customer,
// lineorder, supplier, date where joins and <customer/supplier/date
// predicates> group by c_X, s_X, d_year order by d_year asc, revenue desc
//
// Plan: three dimension selections, then a single 4-way/star join (mains:
// lineorder on custkey x customer selection; assists: supplier selection
// and date selection) aggregating into a prefix tree on the composed
// (c_X, s_X, d_year) key. The revenue-descending ORDER BY is applied as a
// final result sort (the only ordering the output index cannot provide).
struct Q3Params {
  SelectionSpec cust_sel;   // keyed c_custkey, carries the c_X group attr
  SelectionSpec supp_sel;   // keyed s_suppkey, carries the s_X group attr
  SelectionSpec date_sel;   // keyed d_datekey, carries d_year
  std::string c_attr;
  std::string s_attr;
};

Plan BuildQ3(const Q3Params& params) {
  Plan plan;
  plan.Emplace<SelectionOp>(params.cust_sel);
  plan.Emplace<SelectionOp>(params.supp_sel);
  plan.Emplace<SelectionOp>(params.date_sel);

  StarJoinSpec join;
  join.left = SideRef::Base("lo_custkey");
  join.left_columns = {"lo_suppkey", "lo_orderdate", "lo_revenue"};
  join.right = SideRef::Slot("cust_sel");
  join.right_columns = {params.c_attr};
  join.assists = {
      {SideRef::Slot("supp_sel"), "lo_suppkey", {params.s_attr}},
      {SideRef::Slot("date_sel"), "lo_orderdate", {"d_year"}}};
  AggSpec agg({{AggFn::kSum, ScalarExpr::Column("lo_revenue"), "revenue"}});
  join.output = {"result", {params.c_attr, params.s_attr, "d_year"}, agg};
  plan.Emplace<StarJoinOp>(join);
  plan.set_result_slot("result");
  return plan;
}

SelectionSpec DateYearRange(int64_t lo, int64_t hi) {
  SelectionSpec date_sel;
  date_sel.input_index = "d_year";
  date_sel.predicate = KeyPredicate::Range(lo, hi);
  date_sel.carry_columns = {"d_datekey", "d_year"};
  date_sel.output = {"date_sel", {"d_datekey"}, {}};
  return date_sel;
}

Plan BuildQ31(const SsbData& data, const PlanKnobs&) {
  Q3Params p;
  p.c_attr = "c_nation";
  p.s_attr = "s_nation";
  p.cust_sel.input_index = "c_region";
  p.cust_sel.predicate = KeyPredicate::Point(data.RegionCode("ASIA"));
  p.cust_sel.carry_columns = {"c_custkey", "c_nation"};
  p.cust_sel.output = {"cust_sel", {"c_custkey"}, {}};
  p.supp_sel.input_index = "s_region";
  p.supp_sel.predicate = KeyPredicate::Point(data.RegionCode("ASIA"));
  p.supp_sel.carry_columns = {"s_suppkey", "s_nation"};
  p.supp_sel.output = {"supp_sel", {"s_suppkey"}, {}};
  p.date_sel = DateYearRange(1992, 1997);
  return BuildQ3(p);
}

Plan BuildQ32(const SsbData& data, const PlanKnobs&) {
  Q3Params p;
  p.c_attr = "c_city";
  p.s_attr = "s_city";
  p.cust_sel.input_index = "c_nation";
  p.cust_sel.predicate =
      KeyPredicate::Point(data.NationCode("UNITED STATES"));
  p.cust_sel.carry_columns = {"c_custkey", "c_city"};
  p.cust_sel.output = {"cust_sel", {"c_custkey"}, {}};
  p.supp_sel.input_index = "s_nation";
  p.supp_sel.predicate =
      KeyPredicate::Point(data.NationCode("UNITED STATES"));
  p.supp_sel.carry_columns = {"s_suppkey", "s_city"};
  p.supp_sel.output = {"supp_sel", {"s_suppkey"}, {}};
  p.date_sel = DateYearRange(1992, 1997);
  return BuildQ3(p);
}

Q3Params CityPairParams(const SsbData& data) {
  // c_city in ('UNITED KI1','UNITED KI5') and likewise for s_city.
  std::vector<int64_t> cities = {data.CityCode("UNITED KI1"),
                                 data.CityCode("UNITED KI5")};
  Q3Params p;
  p.c_attr = "c_city";
  p.s_attr = "s_city";
  p.cust_sel.input_index = "c_city";
  p.cust_sel.predicate = KeyPredicate::In(cities);
  p.cust_sel.carry_columns = {"c_custkey", "c_city"};
  p.cust_sel.output = {"cust_sel", {"c_custkey"}, {}};
  p.supp_sel.input_index = "s_city";
  p.supp_sel.predicate = KeyPredicate::In(cities);
  p.supp_sel.carry_columns = {"s_suppkey", "s_city"};
  p.supp_sel.output = {"supp_sel", {"s_suppkey"}, {}};
  return p;
}

Plan BuildQ33(const SsbData& data, const PlanKnobs&) {
  Q3Params p = CityPairParams(data);
  p.date_sel = DateYearRange(1992, 1997);
  return BuildQ3(p);
}

Plan BuildQ34(const SsbData& data, const PlanKnobs&) {
  Q3Params p = CityPairParams(data);
  p.date_sel.input_index = "d_yearmonthnum";
  p.date_sel.predicate = KeyPredicate::Point(199712);  // 'Dec1997'
  p.date_sel.carry_columns = {"d_datekey", "d_year"};
  p.date_sel.output = {"date_sel", {"d_datekey"}, {}};
  return BuildQ3(p);
}

// ---- Q4.x ------------------------------------------------------------------
//
// Q4.1: select d_year, c_nation, sum(lo_revenue - lo_supplycost) as profit
// from all five tables where joins and c_region/s_region = AMERICA and
// p_mfgr in (MFGR#1, MFGR#2) group by d_year, c_nation.
//
// The Fig. 9 experiment varies how many joins are composed into one
// operator (knobs.max_join_ways): the 5-way plan runs one composed
// operator; lower settings split it into a chain of smaller joins, each
// materializing an intermediate index (which is exactly the cost the
// composition avoids).
Plan BuildQ41(const SsbData& data, const PlanKnobs& knobs) {
  Plan plan;

  SelectionSpec cust_sel;
  cust_sel.input_index = "c_region";
  cust_sel.predicate = KeyPredicate::Point(data.RegionCode("AMERICA"));
  cust_sel.carry_columns = {"c_custkey", "c_nation"};
  cust_sel.output = {"cust_sel", {"c_custkey"}, {}};
  plan.Emplace<SelectionOp>(cust_sel);

  SelectionSpec supp_sel;
  supp_sel.input_index = "s_region";
  supp_sel.predicate = KeyPredicate::Point(data.RegionCode("AMERICA"));
  supp_sel.carry_columns = {"s_suppkey"};
  supp_sel.output = {"supp_sel", {"s_suppkey"}, {}};
  plan.Emplace<SelectionOp>(supp_sel);

  SelectionSpec part_sel;
  part_sel.input_index = "p_mfgr";
  part_sel.predicate = KeyPredicate::In(
      {data.MfgrCode("MFGR#1"), data.MfgrCode("MFGR#2")});
  part_sel.carry_columns = {"p_partkey"};
  part_sel.output = {"part_sel", {"p_partkey"}, {}};
  plan.Emplace<SelectionOp>(part_sel);

  AggSpec agg({{AggFn::kSum, ScalarExpr::Sub("lo_revenue", "lo_supplycost"),
                "profit"}});
  int ways = knobs.max_join_ways == 0 ? 5 : knobs.max_join_ways;
  if (ways >= 5) {
    // One composed 5-way operator.
    StarJoinSpec join;
    join.left = SideRef::Base("lo_custkey");
    join.left_columns = {"lo_suppkey", "lo_partkey", "lo_orderdate",
                         "lo_revenue", "lo_supplycost"};
    join.right = SideRef::Slot("cust_sel");
    join.right_columns = {"c_nation"};
    join.assists = {{SideRef::Slot("supp_sel"), "lo_suppkey", {}},
                    {SideRef::Slot("part_sel"), "lo_partkey", {}},
                    {SideRef::Base("d_datekey"), "lo_orderdate", {"d_year"}}};
    join.output = {"result", {"d_year", "c_nation"}, agg};
    plan.Emplace<StarJoinOp>(join);
  } else if (ways == 4) {
    StarJoinSpec join1;
    join1.left = SideRef::Base("lo_custkey");
    join1.left_columns = {"lo_suppkey", "lo_partkey", "lo_orderdate",
                          "lo_revenue", "lo_supplycost"};
    join1.right = SideRef::Slot("cust_sel");
    join1.right_columns = {"c_nation"};
    join1.assists = {{SideRef::Slot("supp_sel"), "lo_suppkey", {}},
                     {SideRef::Slot("part_sel"), "lo_partkey", {}}};
    join1.output = {"join1", {"lo_orderdate"}, {}};
    plan.Emplace<StarJoinOp>(join1);

    StarJoinSpec join2;
    join2.left = SideRef::Slot("join1");
    join2.left_columns = {"c_nation", "lo_revenue", "lo_supplycost"};
    join2.right = SideRef::Base("d_datekey");
    join2.right_columns = {"d_year"};
    join2.output = {"result", {"d_year", "c_nation"}, agg};
    plan.Emplace<StarJoinOp>(join2);
  } else if (ways == 3) {
    StarJoinSpec join1;
    join1.left = SideRef::Base("lo_custkey");
    join1.left_columns = {"lo_suppkey", "lo_partkey", "lo_orderdate",
                          "lo_revenue", "lo_supplycost"};
    join1.right = SideRef::Slot("cust_sel");
    join1.right_columns = {"c_nation"};
    join1.assists = {{SideRef::Slot("supp_sel"), "lo_suppkey", {}}};
    join1.output = {"join1", {"lo_partkey"}, {}};
    plan.Emplace<StarJoinOp>(join1);

    StarJoinSpec join2;
    join2.left = SideRef::Slot("join1");
    join2.left_columns = {"c_nation", "lo_orderdate", "lo_revenue",
                          "lo_supplycost"};
    join2.right = SideRef::Slot("part_sel");
    join2.right_columns = {};
    join2.output = {"join2", {"lo_orderdate"}, {}};
    plan.Emplace<StarJoinOp>(join2);

    StarJoinSpec join3;
    join3.left = SideRef::Slot("join2");
    join3.left_columns = {"c_nation", "lo_revenue", "lo_supplycost"};
    join3.right = SideRef::Base("d_datekey");
    join3.right_columns = {"d_year"};
    join3.output = {"result", {"d_year", "c_nation"}, agg};
    plan.Emplace<StarJoinOp>(join3);
  } else {
    // Traditional 2-way joins only: four joins, three materialized
    // intermediates.
    StarJoinSpec join1;
    join1.left = SideRef::Base("lo_custkey");
    join1.left_columns = {"lo_suppkey", "lo_partkey", "lo_orderdate",
                          "lo_revenue", "lo_supplycost"};
    join1.right = SideRef::Slot("cust_sel");
    join1.right_columns = {"c_nation"};
    join1.output = {"join1", {"lo_suppkey"}, {}};
    plan.Emplace<StarJoinOp>(join1);

    StarJoinSpec join2;
    join2.left = SideRef::Slot("join1");
    join2.left_columns = {"c_nation", "lo_partkey", "lo_orderdate",
                          "lo_revenue", "lo_supplycost"};
    join2.right = SideRef::Slot("supp_sel");
    join2.right_columns = {};
    join2.output = {"join2", {"lo_partkey"}, {}};
    plan.Emplace<StarJoinOp>(join2);

    StarJoinSpec join3;
    join3.left = SideRef::Slot("join2");
    join3.left_columns = {"c_nation", "lo_orderdate", "lo_revenue",
                          "lo_supplycost"};
    join3.right = SideRef::Slot("part_sel");
    join3.right_columns = {};
    join3.output = {"join3", {"lo_orderdate"}, {}};
    plan.Emplace<StarJoinOp>(join3);

    StarJoinSpec join4;
    join4.left = SideRef::Slot("join3");
    join4.left_columns = {"c_nation", "lo_revenue", "lo_supplycost"};
    join4.right = SideRef::Base("d_datekey");
    join4.right_columns = {"d_year"};
    join4.output = {"result", {"d_year", "c_nation"}, agg};
    plan.Emplace<StarJoinOp>(join4);
  }
  plan.set_result_slot("result");
  return plan;
}

// Q4.2 / Q4.3: deeper restrictions, group keys from three different
// dimensions; one composed multi-way join after the selections.
Plan BuildQ42(const SsbData& data, const PlanKnobs&) {
  Plan plan;

  SelectionSpec cust_sel;
  cust_sel.input_index = "c_region";
  cust_sel.predicate = KeyPredicate::Point(data.RegionCode("AMERICA"));
  cust_sel.carry_columns = {"c_custkey"};
  cust_sel.output = {"cust_sel", {"c_custkey"}, {}};
  plan.Emplace<SelectionOp>(cust_sel);

  SelectionSpec supp_sel;
  supp_sel.input_index = "s_region";
  supp_sel.predicate = KeyPredicate::Point(data.RegionCode("AMERICA"));
  supp_sel.carry_columns = {"s_suppkey", "s_nation"};
  supp_sel.output = {"supp_sel", {"s_suppkey"}, {}};
  plan.Emplace<SelectionOp>(supp_sel);

  SelectionSpec part_sel;
  part_sel.input_index = "p_mfgr";
  part_sel.predicate = KeyPredicate::In(
      {data.MfgrCode("MFGR#1"), data.MfgrCode("MFGR#2")});
  part_sel.carry_columns = {"p_partkey", "p_category"};
  part_sel.output = {"part_sel", {"p_partkey"}, {}};
  plan.Emplace<SelectionOp>(part_sel);

  SelectionSpec date_sel = DateYearRange(1997, 1998);
  plan.Emplace<SelectionOp>(date_sel);

  StarJoinSpec join;
  join.left = SideRef::Base("lo_custkey");
  join.left_columns = {"lo_suppkey", "lo_partkey", "lo_orderdate",
                       "lo_revenue", "lo_supplycost"};
  join.right = SideRef::Slot("cust_sel");
  join.right_columns = {};
  join.assists = {{SideRef::Slot("supp_sel"), "lo_suppkey", {"s_nation"}},
                  {SideRef::Slot("part_sel"), "lo_partkey", {"p_category"}},
                  {SideRef::Slot("date_sel"), "lo_orderdate", {"d_year"}}};
  AggSpec agg({{AggFn::kSum, ScalarExpr::Sub("lo_revenue", "lo_supplycost"),
                "profit"}});
  join.output = {"result", {"d_year", "s_nation", "p_category"}, agg};
  plan.Emplace<StarJoinOp>(join);
  plan.set_result_slot("result");
  return plan;
}

Plan BuildQ43(const SsbData& data, const PlanKnobs&) {
  Plan plan;

  SelectionSpec cust_sel;
  cust_sel.input_index = "c_region";
  cust_sel.predicate = KeyPredicate::Point(data.RegionCode("AMERICA"));
  cust_sel.carry_columns = {"c_custkey"};
  cust_sel.output = {"cust_sel", {"c_custkey"}, {}};
  plan.Emplace<SelectionOp>(cust_sel);

  SelectionSpec supp_sel;
  supp_sel.input_index = "s_nation";
  supp_sel.predicate =
      KeyPredicate::Point(data.NationCode("UNITED STATES"));
  supp_sel.carry_columns = {"s_suppkey", "s_city"};
  supp_sel.output = {"supp_sel", {"s_suppkey"}, {}};
  plan.Emplace<SelectionOp>(supp_sel);

  SelectionSpec part_sel;
  part_sel.input_index = "p_category";
  part_sel.predicate = KeyPredicate::Point(data.CategoryCode("MFGR#14"));
  part_sel.carry_columns = {"p_partkey", "p_brand1"};
  part_sel.output = {"part_sel", {"p_partkey"}, {}};
  plan.Emplace<SelectionOp>(part_sel);

  SelectionSpec date_sel = DateYearRange(1997, 1998);
  plan.Emplace<SelectionOp>(date_sel);

  StarJoinSpec join;
  join.left = SideRef::Base("lo_custkey");
  join.left_columns = {"lo_suppkey", "lo_partkey", "lo_orderdate",
                       "lo_revenue", "lo_supplycost"};
  join.right = SideRef::Slot("cust_sel");
  join.right_columns = {};
  join.assists = {{SideRef::Slot("supp_sel"), "lo_suppkey", {"s_city"}},
                  {SideRef::Slot("part_sel"), "lo_partkey", {"p_brand1"}},
                  {SideRef::Slot("date_sel"), "lo_orderdate", {"d_year"}}};
  AggSpec agg({{AggFn::kSum, ScalarExpr::Sub("lo_revenue", "lo_supplycost"),
                "profit"}});
  join.output = {"result", {"d_year", "s_city", "p_brand1"}, agg};
  plan.Emplace<StarJoinOp>(join);
  plan.set_result_slot("result");
  return plan;
}

}  // namespace

const std::vector<std::string>& AllQueryIds() {
  static const std::vector<std::string> kIds = {
      "1.1", "1.2", "1.3", "2.1", "2.2", "2.3", "3.1",
      "3.2", "3.3", "3.4", "4.1", "4.2", "4.3"};
  return kIds;
}

Result<Plan> BuildQpptPlan(const SsbData& data, const std::string& query_id,
                           const PlanKnobs& knobs) {
  if (query_id == "1.1") return BuildQ11(data, knobs);
  if (query_id == "1.2") return BuildQ12(data, knobs);
  if (query_id == "1.3") return BuildQ13(data, knobs);
  if (query_id == "2.1") return BuildQ21(data, knobs);
  if (query_id == "2.2") return BuildQ22(data, knobs);
  if (query_id == "2.3") return BuildQ23(data, knobs);
  if (query_id == "3.1") return BuildQ31(data, knobs);
  if (query_id == "3.2") return BuildQ32(data, knobs);
  if (query_id == "3.3") return BuildQ33(data, knobs);
  if (query_id == "3.4") return BuildQ34(data, knobs);
  if (query_id == "4.1") return BuildQ41(data, knobs);
  if (query_id == "4.2") return BuildQ42(data, knobs);
  if (query_id == "4.3") return BuildQ43(data, knobs);
  return Status::InvalidArgument("unknown SSB query id '" + query_id + "'");
}

void ApplyOrderBy(const std::string& query_id, QueryResult* result) {
  if (query_id[0] != '3') return;  // everything else is index-ordered
  // Q3.x: order by d_year asc, revenue desc. Columns: (c_X, s_X, d_year,
  // revenue).
  std::stable_sort(result->rows.begin(), result->rows.end(),
                   [](const std::vector<Value>& a,
                      const std::vector<Value>& b) {
                     if (a[2].AsInt() != b[2].AsInt()) {
                       return a[2].AsInt() < b[2].AsInt();
                     }
                     return a[3].AsInt() > b[3].AsInt();
                   });
}

Result<QueryResult> RunQppt(const SsbData& data, const std::string& query_id,
                            const PlanKnobs& knobs, PlanStats* stats) {
  Timer wall;
  QPPT_ASSIGN_OR_RETURN(Plan plan, BuildQpptPlan(data, query_id, knobs));
  ExecContext ctx(&data.db, knobs);
  QPPT_ASSIGN_OR_RETURN(QueryResult result, plan.Execute(&ctx));
  ApplyOrderBy(query_id, &result);
  if (stats != nullptr) {
    *stats = *ctx.stats();
    stats->wall_ms = wall.ElapsedMs();
  }
  return result;
}

Result<QueryResult> RunQppt(engine::EngineRunner& engine, const SsbData& data,
                            const std::string& query_id,
                            const PlanKnobs& knobs, PlanStats* stats) {
  Timer wall;
  QPPT_ASSIGN_OR_RETURN(Plan plan, BuildQpptPlan(data, query_id, knobs));
  QPPT_ASSIGN_OR_RETURN(QueryResult result,
                        engine.Execute(data.db, plan, knobs, stats));
  ApplyOrderBy(query_id, &result);
  if (stats != nullptr) stats->wall_ms = wall.ElapsedMs();
  return result;
}

}  // namespace qppt::ssb
