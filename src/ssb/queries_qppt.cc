#include "ssb/queries_qppt.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/query/planner.h"
#include "engine/session.h"

namespace qppt::ssb {

namespace {

using query::QueryBuilder;
using query::QuerySpec;

// ---- Q1.x ------------------------------------------------------------------
//
// select sum(lo_extendedprice * lo_discount) as revenue
// from lineorder, date where lo_orderdate = d_datekey and <date predicate>
// and lo_discount between .. and lo_quantity ..
//
// The fact side is filtered (discount range + quantity residual), so the
// planner either fuses it into the date join (select-join-group, Fig. 8)
// or materializes a separate lineorder selection, per
// knobs.use_select_join.
QuerySpec BuildSpecQ1(const std::string& id, const std::string& date_index,
                      KeyPredicate date_pred,
                      std::vector<Residual> date_residuals,
                      KeyPredicate discount_pred, Residual quantity) {
  QueryBuilder b("ssb." + id);
  b.From("lineorder")
      .FactIndex("lo_discount")
      .FactSlot("lo_sel")
      .FactColumns({"lo_orderdate", "lo_extendedprice", "lo_discount"})
      .Where(discount_pred)
      .Filter(std::move(quantity));
  auto date = b.Dim("date").Select(date_index, date_pred);
  for (Residual& r : date_residuals) date.Filter(std::move(r));
  date.Key("d_datekey").ProbeFrom("lo_orderdate").Carry({"d_year"});
  b.GroupBy({"d_year"})
      .Aggregate(AggFn::kSum,
                 ScalarExpr::Mul("lo_extendedprice", "lo_discount"),
                 "revenue");
  return std::move(b).Build();
}

// ---- Q2.x ------------------------------------------------------------------
//
// select sum(lo_revenue), d_year, p_brand1 from lineorder, date, part,
// supplier where joins and <part predicate> and s_region = R
// group by d_year, p_brand1 order by d_year, p_brand1
//
// The Fig. 5 shape: part is the star-join main, supplier assists, and
// the date dimension is deferred into a second join-group against the
// d_datekey base index. The composed (d_year, p_brand1) group key lands
// in a prefix tree, so the ORDER BY is free.
QuerySpec BuildSpecQ2(const std::string& id, const std::string& part_index,
                      KeyPredicate part_pred, int64_t region_code) {
  QueryBuilder b("ssb." + id);
  b.From("lineorder")
      .FactIndex("lo_partkey")
      .FactColumns({"lo_suppkey", "lo_orderdate", "lo_revenue"});
  b.Dim("part")
      .Select(part_index, part_pred)
      .Key("p_partkey")
      .ProbeFrom("lo_partkey")
      .Carry({"p_brand1"});
  b.Dim("supp")
      .Select("s_region", KeyPredicate::Point(region_code))
      .Key("s_suppkey")
      .ProbeFrom("lo_suppkey");
  b.Dim("date")
      .Probe("d_datekey")
      .ProbeFrom("lo_orderdate")
      .Carry({"d_year"})
      .Defer();
  b.GroupBy({"d_year", "p_brand1"})
      .Aggregate(AggFn::kSum, ScalarExpr::Column("lo_revenue"), "revenue")
      .OrderBy("d_year")
      .OrderBy("p_brand1");
  return std::move(b).Build();
}

// ---- Q3.x ------------------------------------------------------------------
//
// select c_X, s_X, d_year, sum(lo_revenue) as revenue from customer,
// lineorder, supplier, date where joins and <customer/supplier/date
// predicates> group by c_X, s_X, d_year order by d_year asc, revenue desc
//
// One composed multi-way join (customer main, supplier and date assists)
// aggregating on the composed (c_X, s_X, d_year) key; the
// revenue-descending ORDER BY is the one ordering the output index
// cannot provide, so the planner attaches a post-sort.
struct Q3Dims {
  std::string c_index, c_attr;
  KeyPredicate c_pred;
  std::string s_index, s_attr;
  KeyPredicate s_pred;
  std::string d_index;
  KeyPredicate d_pred;
};

QuerySpec BuildSpecQ3(const std::string& id, const Q3Dims& q) {
  QueryBuilder b("ssb." + id);
  b.From("lineorder")
      .FactIndex("lo_custkey")
      .FactColumns({"lo_suppkey", "lo_orderdate", "lo_revenue"});
  b.Dim("cust")
      .Select(q.c_index, q.c_pred)
      .Key("c_custkey")
      .ProbeFrom("lo_custkey")
      .Carry({q.c_attr});
  b.Dim("supp")
      .Select(q.s_index, q.s_pred)
      .Key("s_suppkey")
      .ProbeFrom("lo_suppkey")
      .Carry({q.s_attr});
  b.Dim("date")
      .Select(q.d_index, q.d_pred)
      .Key("d_datekey")
      .ProbeFrom("lo_orderdate")
      .Carry({"d_year"});
  b.GroupBy({q.c_attr, q.s_attr, "d_year"})
      .Aggregate(AggFn::kSum, ScalarExpr::Column("lo_revenue"), "revenue")
      .OrderBy("d_year")
      .OrderByDesc("revenue");
  return std::move(b).Build();
}

// ---- Q4.x ------------------------------------------------------------------
//
// select d_year, <dims>, sum(lo_revenue - lo_supplycost) as profit from
// all five tables. The widest star of the flight: customer main plus
// supplier/part/date composed in as knobs.max_join_ways allows — the
// Fig. 9 experiment falls out of the planner's arity rule.
void Q4FactSide(QueryBuilder* b) {
  b->From("lineorder")
      .FactIndex("lo_custkey")
      .FactColumns({"lo_suppkey", "lo_partkey", "lo_orderdate", "lo_revenue",
                    "lo_supplycost"});
}

void Q4Profit(QueryBuilder* b, std::vector<std::string> group_by) {
  b->GroupBy(std::move(group_by))
      .Aggregate(AggFn::kSum, ScalarExpr::Sub("lo_revenue", "lo_supplycost"),
                 "profit");
}

QuerySpec BuildSpecQ41(const SsbData& data) {
  QueryBuilder b("ssb.4.1");
  Q4FactSide(&b);
  b.Dim("cust")
      .Select("c_region", KeyPredicate::Point(data.RegionCode("AMERICA")))
      .Key("c_custkey")
      .ProbeFrom("lo_custkey")
      .Carry({"c_nation"});
  b.Dim("supp")
      .Select("s_region", KeyPredicate::Point(data.RegionCode("AMERICA")))
      .Key("s_suppkey")
      .ProbeFrom("lo_suppkey");
  b.Dim("part")
      .Select("p_mfgr", KeyPredicate::In({data.MfgrCode("MFGR#1"),
                                          data.MfgrCode("MFGR#2")}))
      .Key("p_partkey")
      .ProbeFrom("lo_partkey");
  b.Dim("date").Probe("d_datekey").ProbeFrom("lo_orderdate").Carry(
      {"d_year"});
  Q4Profit(&b, {"d_year", "c_nation"});
  b.OrderBy("d_year").OrderBy("c_nation");
  return std::move(b).Build();
}

QuerySpec BuildSpecQ42(const SsbData& data) {
  QueryBuilder b("ssb.4.2");
  Q4FactSide(&b);
  b.Dim("cust")
      .Select("c_region", KeyPredicate::Point(data.RegionCode("AMERICA")))
      .Key("c_custkey")
      .ProbeFrom("lo_custkey");
  b.Dim("supp")
      .Select("s_region", KeyPredicate::Point(data.RegionCode("AMERICA")))
      .Key("s_suppkey")
      .ProbeFrom("lo_suppkey")
      .Carry({"s_nation"});
  b.Dim("part")
      .Select("p_mfgr", KeyPredicate::In({data.MfgrCode("MFGR#1"),
                                          data.MfgrCode("MFGR#2")}))
      .Key("p_partkey")
      .ProbeFrom("lo_partkey")
      .Carry({"p_category"});
  b.Dim("date")
      .Select("d_year", KeyPredicate::Range(1997, 1998))
      .Key("d_datekey")
      .ProbeFrom("lo_orderdate")
      .Carry({"d_year"});
  Q4Profit(&b, {"d_year", "s_nation", "p_category"});
  b.OrderBy("d_year").OrderBy("s_nation").OrderBy("p_category");
  return std::move(b).Build();
}

QuerySpec BuildSpecQ43(const SsbData& data) {
  QueryBuilder b("ssb.4.3");
  Q4FactSide(&b);
  b.Dim("cust")
      .Select("c_region", KeyPredicate::Point(data.RegionCode("AMERICA")))
      .Key("c_custkey")
      .ProbeFrom("lo_custkey");
  b.Dim("supp")
      .Select("s_nation",
              KeyPredicate::Point(data.NationCode("UNITED STATES")))
      .Key("s_suppkey")
      .ProbeFrom("lo_suppkey")
      .Carry({"s_city"});
  b.Dim("part")
      .Select("p_category", KeyPredicate::Point(data.CategoryCode("MFGR#14")))
      .Key("p_partkey")
      .ProbeFrom("lo_partkey")
      .Carry({"p_brand1"});
  b.Dim("date")
      .Select("d_year", KeyPredicate::Range(1997, 1998))
      .Key("d_datekey")
      .ProbeFrom("lo_orderdate")
      .Carry({"d_year"});
  Q4Profit(&b, {"d_year", "s_city", "p_brand1"});
  b.OrderBy("d_year").OrderBy("s_city").OrderBy("p_brand1");
  return std::move(b).Build();
}

}  // namespace

const std::vector<std::string>& AllQueryIds() {
  static const std::vector<std::string> kIds = {
      "1.1", "1.2", "1.3", "2.1", "2.2", "2.3", "3.1",
      "3.2", "3.3", "3.4", "4.1", "4.2", "4.3"};
  return kIds;
}

Result<query::QuerySpec> BuildQuerySpec(const SsbData& data,
                                        const std::string& query_id) {
  if (query_id == "1.1") {
    return BuildSpecQ1("1.1", "d_year", KeyPredicate::Point(1993), {},
                       KeyPredicate::Range(1, 3),
                       Residual::Lt("lo_quantity", 25));
  }
  if (query_id == "1.2") {
    return BuildSpecQ1("1.2", "d_yearmonthnum", KeyPredicate::Point(199401),
                       {}, KeyPredicate::Range(4, 6),
                       Residual::Between("lo_quantity", 26, 35));
  }
  if (query_id == "1.3") {
    return BuildSpecQ1("1.3", "d_year", KeyPredicate::Point(1994),
                       {Residual::Eq("d_weeknuminyear", 6)},
                       KeyPredicate::Range(5, 7),
                       Residual::Between("lo_quantity", 26, 35));
  }
  if (query_id == "2.1") {
    return BuildSpecQ2("2.1", "p_category",
                       KeyPredicate::Point(data.CategoryCode("MFGR#12")),
                       data.RegionCode("AMERICA"));
  }
  if (query_id == "2.2") {
    return BuildSpecQ2("2.2", "p_brand1",
                       KeyPredicate::Range(data.BrandCode("MFGR#2221"),
                                           data.BrandCode("MFGR#2228")),
                       data.RegionCode("ASIA"));
  }
  if (query_id == "2.3") {
    return BuildSpecQ2("2.3", "p_brand1",
                       KeyPredicate::Point(data.BrandCode("MFGR#2221")),
                       data.RegionCode("EUROPE"));
  }
  if (query_id[0] == '3') {
    Q3Dims q;
    q.d_index = "d_year";
    q.d_pred = KeyPredicate::Range(1992, 1997);
    if (query_id == "3.1") {
      q.c_index = "c_region";
      q.c_attr = "c_nation";
      q.c_pred = KeyPredicate::Point(data.RegionCode("ASIA"));
      q.s_index = "s_region";
      q.s_attr = "s_nation";
      q.s_pred = KeyPredicate::Point(data.RegionCode("ASIA"));
      return BuildSpecQ3("3.1", q);
    }
    if (query_id == "3.2") {
      q.c_index = "c_nation";
      q.c_attr = "c_city";
      q.c_pred = KeyPredicate::Point(data.NationCode("UNITED STATES"));
      q.s_index = "s_nation";
      q.s_attr = "s_city";
      q.s_pred = KeyPredicate::Point(data.NationCode("UNITED STATES"));
      return BuildSpecQ3("3.2", q);
    }
    // Q3.3 / Q3.4: the UNITED KI1/KI5 city pair on both sides.
    std::vector<int64_t> cities = {data.CityCode("UNITED KI1"),
                                   data.CityCode("UNITED KI5")};
    q.c_index = "c_city";
    q.c_attr = "c_city";
    q.c_pred = KeyPredicate::In(cities);
    q.s_index = "s_city";
    q.s_attr = "s_city";
    q.s_pred = KeyPredicate::In(cities);
    if (query_id == "3.3") return BuildSpecQ3("3.3", q);
    if (query_id == "3.4") {
      q.d_index = "d_yearmonthnum";
      q.d_pred = KeyPredicate::Point(199712);  // 'Dec1997'
      return BuildSpecQ3("3.4", q);
    }
  }
  if (query_id == "4.1") return BuildSpecQ41(data);
  if (query_id == "4.2") return BuildSpecQ42(data);
  if (query_id == "4.3") return BuildSpecQ43(data);
  return Status::InvalidArgument("unknown SSB query id '" + query_id + "'");
}

Result<Plan> BuildQpptPlan(const SsbData& data, const std::string& query_id,
                           const PlanKnobs& knobs) {
  QPPT_ASSIGN_OR_RETURN(query::QuerySpec spec,
                        BuildQuerySpec(data, query_id));
  return query::PlanQuery(data.db, spec, knobs);
}

Status ApplyOrderBy(const std::string& query_id, QueryResult* result) {
  if (query_id[0] != '3') {
    return Status::OK();  // everything else is index-ordered
  }
  // Q3.x: order by d_year asc, revenue desc — the same sort the planner
  // attaches to the QPPT plans, resolved by column name here too so the
  // baseline layouts cannot drift silently (every Q3 result carries
  // d_year and revenue columns). A sort failure must propagate: an
  // unsorted baseline poisons every differential identity check.
  return SortResult({{"d_year", false}, {"revenue", true}}, result);
}

Result<QueryResult> RunQppt(const SsbData& data, const std::string& query_id,
                            const PlanKnobs& knobs, PlanStats* stats) {
  // Clear defensively: a stats object reused across runs would otherwise
  // accumulate operator rows (PlanStats contract, core/stats.h).
  if (stats != nullptr) stats->Clear();
  Timer wall;
  QPPT_ASSIGN_OR_RETURN(Plan plan, BuildQpptPlan(data, query_id, knobs));
  ExecContext ctx(&data.db, knobs);
  QPPT_ASSIGN_OR_RETURN(QueryResult result, plan.Execute(&ctx));
  if (stats != nullptr) {
    *stats = *ctx.stats();
    stats->wall_ms = wall.ElapsedMs();
  }
  return result;
}

Result<QueryResult> RunQppt(engine::EngineRunner& engine, const SsbData& data,
                            const std::string& query_id,
                            const PlanKnobs& knobs, PlanStats* stats) {
  Timer wall;
  QPPT_ASSIGN_OR_RETURN(Plan plan, BuildQpptPlan(data, query_id, knobs));
  QPPT_ASSIGN_OR_RETURN(QueryResult result,
                        engine.Execute(data.db, plan, knobs, stats));
  if (stats != nullptr) stats->wall_ms = wall.ElapsedMs();
  return result;
}

}  // namespace qppt::ssb
