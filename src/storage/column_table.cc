#include "storage/column_table.h"

#include <cstdint>
#include <string>
#include <vector>

namespace qppt {

ColumnTable ColumnTable::FromRowTable(const RowTable& rows) {
  ColumnTable table(rows.schema(), rows.name());
  size_t n = rows.num_rows();
  size_t cols = rows.schema().num_columns();
  table.Reserve(n);
  for (size_t c = 0; c < cols; ++c) {
    auto& col = table.columns_[c];
    col.resize(n);
    for (size_t r = 0; r < n; ++r) {
      col[r] = rows.GetSlot(r, c);
    }
  }
  return table;
}

Result<const std::vector<uint64_t>*> ColumnTable::ColumnByName(
    const std::string& name) const {
  QPPT_ASSIGN_OR_RETURN(size_t idx, schema_.ColumnIndex(name));
  return &columns_[idx];
}

}  // namespace qppt
