#include "storage/value.h"

#include <cstdint>
#include <cstring>
#include <string>

namespace qppt {

std::string_view ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(AsInt());
    case ValueType::kDouble:
      return std::to_string(AsDouble());
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

uint64_t SlotFromDouble(double v) {
  uint64_t s;
  std::memcpy(&s, &v, sizeof(s));
  return s;
}

double DoubleFromSlot(uint64_t s) {
  double v;
  std::memcpy(&v, &s, sizeof(v));
  return v;
}

void Dictionary::Add(std::string_view s) {
  if (sealed_) return;  // additions after sealing are ignored
  entries_.emplace(std::string(s), 0);
}

void Dictionary::Seal() {
  if (sealed_) return;
  sorted_.reserve(entries_.size());
  int64_t code = 0;
  for (auto& [str, assigned] : entries_) {
    assigned = code++;
    sorted_.push_back(&str);
  }
  sealed_ = true;
}

Result<int64_t> Dictionary::CodeOf(std::string_view s) const {
  auto it = entries_.find(s);
  if (it == entries_.end()) {
    return Status::NotFound("dictionary has no entry for '" +
                            std::string(s) + "'");
  }
  return it->second;
}

int64_t Dictionary::LowerBoundCode(std::string_view s) const {
  auto it = entries_.lower_bound(s);
  if (it == entries_.end()) return static_cast<int64_t>(sorted_.size());
  return it->second;
}

int64_t Dictionary::UpperBoundCode(std::string_view s) const {
  auto it = entries_.upper_bound(s);
  if (it == entries_.end()) return static_cast<int64_t>(sorted_.size());
  return it->second;
}

const std::string& Dictionary::StringOf(int64_t code) const {
  return *sorted_[static_cast<size_t>(code)];
}

}  // namespace qppt
