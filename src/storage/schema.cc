#include "storage/schema.h"

#include <string>
#include <vector>

namespace qppt {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    by_name_.emplace(columns_[i].name, i);
  }
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("schema has no column '" + name + "'");
  }
  return it->second;
}

Result<Schema> Schema::Project(const std::vector<std::string>& names) const {
  std::vector<ColumnDef> cols;
  cols.reserve(names.size());
  for (const auto& name : names) {
    QPPT_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(name));
    cols.push_back(columns_[idx]);
  }
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ValueTypeToString(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace qppt
