#include "storage/mvcc.h"

#include <cstdint>
#include <vector>

namespace qppt {

MvccTable::LogicalId MvccTable::Insert(const Transaction& txn,
                                       std::span<const uint64_t> row) {
  Rid rid = storage_.AppendRow(row);
  Version v;
  v.begin_ts = kTsInfinity;  // stamped at commit
  v.end_ts = kTsInfinity;
  v.writer_txn = txn.id;
  v.rid = rid;
  v.logical = heads_.size();
  uint64_t vidx = versions_.size();
  versions_.push_back(v);
  heads_.push_back(vidx);
  return v.logical;
}

Status MvccTable::Update(Transaction& txn, LogicalId id,
                         std::span<const uint64_t> row) {
  if (id >= heads_.size()) {
    return Status::NotFound("logical row does not exist");
  }
  uint64_t head = heads_[id];
  Version& current = versions_[head];
  // First-updater-wins: someone else already terminated this version, or
  // the head itself is another transaction's uncommitted write.
  if (current.ender_txn != 0 && current.ender_txn != txn.id) {
    return Status::AlreadyExists("write-write conflict on logical row " +
                                 std::to_string(id));
  }
  if (current.begin_ts == kTsInfinity && current.writer_txn != txn.id) {
    return Status::AlreadyExists("write-write conflict on logical row " +
                                 std::to_string(id));
  }
  // The head must be visible to us (no lost updates against newer commits).
  if (current.begin_ts != kTsInfinity && current.begin_ts > txn.read_ts) {
    return Status::AlreadyExists(
        "snapshot too old: row updated by a newer committed transaction");
  }
  if (current.begin_ts != kTsInfinity && current.end_ts <= txn.read_ts) {
    return Status::NotFound("logical row deleted in this snapshot");
  }
  Rid rid = storage_.AppendRow(row);
  Version v;
  v.begin_ts = kTsInfinity;
  v.end_ts = kTsInfinity;
  v.writer_txn = txn.id;
  v.rid = rid;
  v.logical = id;
  v.older = head;
  current.ender_txn = txn.id;
  uint64_t vidx = versions_.size();
  versions_.push_back(v);
  heads_[id] = vidx;
  return Status::OK();
}

Status MvccTable::Delete(Transaction& txn, LogicalId id) {
  if (id >= heads_.size()) {
    return Status::NotFound("logical row does not exist");
  }
  uint64_t head = heads_[id];
  Version& current = versions_[head];
  if (current.ender_txn != 0 && current.ender_txn != txn.id) {
    return Status::AlreadyExists("write-write conflict on logical row " +
                                 std::to_string(id));
  }
  if (current.begin_ts == kTsInfinity && current.writer_txn != txn.id) {
    return Status::AlreadyExists("write-write conflict on logical row " +
                                 std::to_string(id));
  }
  if (current.begin_ts != kTsInfinity && current.begin_ts > txn.read_ts) {
    return Status::AlreadyExists(
        "snapshot too old: row updated by a newer committed transaction");
  }
  current.ender_txn = txn.id;
  return Status::OK();
}

std::optional<Rid> MvccTable::Read(const Transaction& txn,
                                   LogicalId id) const {
  if (id >= heads_.size()) return std::nullopt;
  // Own uncommitted writes are visible to the writing transaction.
  uint64_t idx = heads_[id];
  while (idx != kInvalidVersion) {
    const Version& v = versions_[idx];
    if (v.begin_ts == kTsInfinity) {
      if (v.writer_txn == txn.id) return v.rid;  // own write
      idx = v.older;
      continue;
    }
    if (v.begin_ts <= txn.read_ts) {
      // Committed at or before our snapshot; check termination.
      bool ended_for_us =
          (v.end_ts <= txn.read_ts) ||
          (v.ender_txn != 0 && v.ender_txn == txn.id &&
           v.end_ts == kTsInfinity);
      if (ended_for_us) return std::nullopt;  // deleted/overwritten
      return v.rid;
    }
    idx = v.older;
  }
  return std::nullopt;
}

void MvccTable::CommitTransaction(const Transaction& txn,
                                  Timestamp commit_ts) {
  for (auto& v : versions_) {
    if (v.writer_txn == txn.id && v.begin_ts == kTsInfinity) {
      v.begin_ts = commit_ts;
      // Terminate the version this one replaced.
      if (v.older != kInvalidVersion) {
        versions_[v.older].end_ts = commit_ts;
        versions_[v.older].ender_txn = 0;
      }
    }
    if (v.ender_txn == txn.id) {
      // Pure delete (no replacing version): stamp the end.
      bool replaced = false;
      if (heads_[v.logical] != kInvalidVersion) {
        const Version& head = versions_[heads_[v.logical]];
        replaced = head.writer_txn == txn.id && head.older != kInvalidVersion &&
                   &versions_[head.older] == &v;
      }
      if (!replaced) {
        v.end_ts = commit_ts;
        v.ender_txn = 0;
      }
    }
  }
}

void MvccTable::AbortTransaction(const Transaction& txn) {
  // Unwind heads that point to this transaction's versions.
  for (auto& head : heads_) {
    while (head != kInvalidVersion && versions_[head].writer_txn == txn.id &&
           versions_[head].begin_ts == kTsInfinity) {
      head = versions_[head].older;
    }
  }
  for (auto& v : versions_) {
    if (v.ender_txn == txn.id) v.ender_txn = 0;
  }
}

std::vector<Rid> MvccTable::SnapshotRids(Timestamp read_ts) const {
  std::vector<Rid> rids;
  rids.reserve(heads_.size());
  Transaction snap;
  snap.id = 0;  // matches no writer
  snap.read_ts = read_ts;
  for (LogicalId id = 0; id < heads_.size(); ++id) {
    auto rid = Read(snap, id);
    if (rid.has_value()) rids.push_back(*rid);
  }
  return rids;
}

}  // namespace qppt
