#include "storage/mvcc.h"

#include <cstdint>
#include <vector>

namespace qppt {

MvccTable::LogicalId MvccTable::Insert(const Transaction& txn,
                                       std::span<const uint64_t> row) {
  Rid rid = storage_.AppendRow(row);
  LogicalId id = heads_.size();
  Version& v = versions_.EmplaceBack();
  v.writer_txn = txn.id;
  v.rid = rid;
  v.logical = id;
  // versions_ and storage_ grow in lockstep: version index == rid.
  heads_.EmplaceBack(rid);
  write_sets_[txn.id].push_back(WriteOp{rid, kInvalidVersion});
  return id;
}

Status MvccTable::Update(Transaction& txn, LogicalId id,
                         std::span<const uint64_t> row) {
  if (id >= heads_.size()) {
    return Status::NotFound("logical row does not exist");
  }
  uint64_t head = heads_[id].load(std::memory_order_acquire);
  if (head == kInvalidVersion) {
    // The row's insert aborted; nothing to update.
    return Status::NotFound("logical row does not exist");
  }
  Version& current = versions_[head];
  // relaxed: writers are serialized by the database write lock, so a rival
  // stamp cannot race us; no data is read through this flag.
  uint64_t ender = current.ender_txn.load(std::memory_order_relaxed);
  Timestamp begin = current.begin_ts.load(std::memory_order_acquire);
  // First-updater-wins: someone else already terminated this version, or
  // the head itself is another transaction's uncommitted write.
  if (ender != 0 && ender != txn.id) {
    return Status::AlreadyExists("write-write conflict on logical row " +
                                 std::to_string(id));
  }
  if (begin == kTsInfinity && current.writer_txn != txn.id) {
    return Status::AlreadyExists("write-write conflict on logical row " +
                                 std::to_string(id));
  }
  // This transaction already deleted the row: no resurrection by update.
  if (ender == txn.id) {
    return Status::NotFound("logical row deleted by this transaction");
  }
  // The head must be visible to us (no lost updates against newer commits).
  if (begin != kTsInfinity && begin > txn.read_ts) {
    return Status::AlreadyExists(
        "snapshot too old: row updated by a newer committed transaction");
  }
  if (begin != kTsInfinity &&
      current.end_ts.load(std::memory_order_acquire) <= txn.read_ts) {
    return Status::NotFound("logical row deleted in this snapshot");
  }
  Rid rid = storage_.AppendRow(row);
  Version& v = versions_.EmplaceBack();
  v.writer_txn = txn.id;
  v.rid = rid;
  v.logical = id;
  // relaxed: both stores are made visible by the head release store below.
  v.older.store(head, std::memory_order_relaxed);
  current.ender_txn.store(txn.id, std::memory_order_relaxed);  // relaxed: ditto
  // Fields above are visible to readers via this release store.
  // pairs-with: mvcc-head
  heads_[id].store(rid, std::memory_order_release);
  write_sets_[txn.id].push_back(WriteOp{rid, head});
  return Status::OK();
}

Status MvccTable::Delete(Transaction& txn, LogicalId id) {
  if (id >= heads_.size()) {
    return Status::NotFound("logical row does not exist");
  }
  uint64_t head = heads_[id].load(std::memory_order_acquire);
  if (head == kInvalidVersion) {
    return Status::NotFound("logical row does not exist");
  }
  Version& current = versions_[head];
  // relaxed: writers are serialized by the database write lock, so a rival
  // stamp cannot race us; no data is read through this flag.
  uint64_t ender = current.ender_txn.load(std::memory_order_relaxed);
  Timestamp begin = current.begin_ts.load(std::memory_order_acquire);
  if (ender != 0 && ender != txn.id) {
    return Status::AlreadyExists("write-write conflict on logical row " +
                                 std::to_string(id));
  }
  if (begin == kTsInfinity && current.writer_txn != txn.id) {
    return Status::AlreadyExists("write-write conflict on logical row " +
                                 std::to_string(id));
  }
  // Double delete within one transaction.
  if (ender == txn.id) {
    return Status::NotFound("logical row deleted by this transaction");
  }
  if (begin != kTsInfinity && begin > txn.read_ts) {
    return Status::AlreadyExists(
        "snapshot too old: row updated by a newer committed transaction");
  }
  // Row already deleted in our snapshot (end_ts stamped at or before it).
  if (begin != kTsInfinity &&
      current.end_ts.load(std::memory_order_acquire) <= txn.read_ts) {
    return Status::NotFound("logical row deleted in this snapshot");
  }
  // relaxed: write-lock flag only; readers confirm deletion through the
  // end_ts stamp CommitTransaction publishes with release.
  current.ender_txn.store(txn.id, std::memory_order_relaxed);
  write_sets_[txn.id].push_back(WriteOp{kInvalidVersion, head});
  return Status::OK();
}

std::optional<Rid> MvccTable::Read(const Transaction& txn,
                                   LogicalId id) const {
  if (id >= heads_.size()) return std::nullopt;
  uint64_t idx = heads_[id].load(std::memory_order_acquire);
  while (idx != kInvalidVersion) {
    const Version& v = versions_[idx];
    Timestamp begin = v.begin_ts.load(std::memory_order_acquire);
    if (begin == kTsInfinity) {
      // Own uncommitted writes are visible to the writing transaction —
      // unless it deleted its own version again.
      if (v.writer_txn == txn.id) {
        // relaxed: reading back this transaction's own store (same thread).
        if (v.ender_txn.load(std::memory_order_relaxed) == txn.id) {
          return std::nullopt;
        }
        return v.rid;
      }
      idx = v.older.load(std::memory_order_acquire);
      continue;
    }
    if (begin <= txn.read_ts) {
      // Committed at or before our snapshot; check termination.
      Timestamp end = v.end_ts.load(std::memory_order_acquire);
      // relaxed: only compared against our own txn id; foreign deletes are
      // observed through the end_ts acquire load above.
      uint64_t ender = v.ender_txn.load(std::memory_order_relaxed);
      bool ended_for_us =
          (end <= txn.read_ts) ||
          (ender != 0 && ender == txn.id && end == kTsInfinity);
      if (ended_for_us) return std::nullopt;  // deleted/overwritten
      return v.rid;
    }
    idx = v.older.load(std::memory_order_acquire);
  }
  return std::nullopt;
}

void MvccTable::CommitTransaction(const Transaction& txn,
                                  Timestamp commit_ts) {
  auto it = write_sets_.find(txn.id);
  if (it == write_sets_.end()) return;
  for (const WriteOp& op : it->second) {
    if (op.ended != kInvalidVersion) {
      Version& old = versions_[op.ended];
      // pairs-with: mvcc-end-ts
      old.end_ts.store(commit_ts, std::memory_order_release);
      // pairs-with: mvcc-ender-clear
      old.ender_txn.store(0, std::memory_order_release);
    }
    if (op.created != kInvalidVersion) {
      // pairs-with: mvcc-begin-ts
      versions_[op.created].begin_ts.store(commit_ts,
                                           std::memory_order_release);
    }
  }
  write_sets_.erase(it);
}

void MvccTable::AbortTransaction(const Transaction& txn) {
  auto it = write_sets_.find(txn.id);
  if (it == write_sets_.end()) return;
  // Reverse order: with several updates to one row in the same txn, each
  // step restores the head this op displaced.
  for (auto op = it->second.rbegin(); op != it->second.rend(); ++op) {
    if (op->created != kInvalidVersion) {
      Version& v = versions_[op->created];
      // First-updater-wins guarantees no other txn stacked on top of our
      // uncommitted version, so the head is still ours.
      // relaxed inner load: reading back our own displaced-head store.
      // pairs-with: mvcc-head
      heads_[v.logical].store(v.older.load(std::memory_order_relaxed),
                              std::memory_order_release);
    }
    if (op->ended != kInvalidVersion) {
      // pairs-with: mvcc-ender-clear
      versions_[op->ended].ender_txn.store(0, std::memory_order_release);
    }
  }
  write_sets_.erase(it);
}

size_t MvccTable::ReclaimBefore(Timestamp horizon) {
  size_t reclaimed = 0;
  size_t n = heads_.size();
  for (LogicalId id = 0; id < n; ++id) {
    uint64_t idx = heads_[id].load(std::memory_order_acquire);
    // Newest version committed at or before the horizon: every snapshot
    // with read_ts >= horizon resolves to it or something newer.
    while (idx != kInvalidVersion) {
      const Version& v = versions_[idx];
      Timestamp begin = v.begin_ts.load(std::memory_order_acquire);
      if (begin != kTsInfinity && begin <= horizon) break;
      idx = v.older.load(std::memory_order_acquire);
    }
    if (idx == kInvalidVersion) continue;
    Version& keep = versions_[idx];
    // relaxed: reclamation runs under the database write lock, and older
    // links below the horizon are no longer written by anyone.
    uint64_t dead = keep.older.load(std::memory_order_relaxed);
    if (dead == kInvalidVersion) continue;
    // pairs-with: mvcc-older-unlink
    keep.older.store(kInvalidVersion, std::memory_order_release);
    while (dead != kInvalidVersion) {
      // relaxed: the unlink above made this sub-chain private to the sweep.
      dead = versions_[dead].older.load(std::memory_order_relaxed);
      ++reclaimed;
    }
  }
  return reclaimed;
}

std::vector<Rid> MvccTable::SnapshotRids(Timestamp read_ts) const {
  std::vector<Rid> rids;
  size_t n = heads_.size();
  rids.reserve(n);
  Transaction snap;
  snap.id = 0;  // matches no writer
  snap.read_ts = read_ts;
  for (LogicalId id = 0; id < n; ++id) {
    auto rid = Read(snap, id);
    if (rid.has_value()) rids.push_back(*rid);
  }
  return rids;
}

}  // namespace qppt
