// Typed values and order-preserving string dictionaries.
//
// The engines in this repository process fixed-width 64-bit slots. String
// columns are dictionary-encoded with *order-preserving* codes (codes are
// ranks in the sorted set of distinct strings), so that range predicates on
// strings (e.g. SSB Q2.2's BETWEEN on p_brand1) translate to code ranges
// and prefix-tree indexes on string columns remain order-preserving.

#ifndef QPPT_STORAGE_VALUE_H_
#define QPPT_STORAGE_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/status.h"

namespace qppt {

enum class ValueType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

std::string_view ValueTypeToString(ValueType type);

// A typed scalar used at API boundaries (predicates, query results).
// Inside the engines, everything is a 64-bit slot.
class Value {
 public:
  Value() : repr_(int64_t{0}) {}
  explicit Value(int64_t v) : repr_(v) {}
  explicit Value(double v) : repr_(v) {}
  explicit Value(std::string v) : repr_(std::move(v)) {}
  static Value Int(int64_t v) { return Value(v); }
  static Value Real(double v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }

  ValueType type() const {
    return static_cast<ValueType>(repr_.index());
  }
  bool is_int() const { return type() == ValueType::kInt64; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }

  int64_t AsInt() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.repr_ == b.repr_;
  }

 private:
  std::variant<int64_t, double, std::string> repr_;
};

// Bit-casting between the 64-bit slot representation and typed values.
// Doubles are stored via their IEEE-754 bits.
inline uint64_t SlotFromInt64(int64_t v) { return static_cast<uint64_t>(v); }
inline int64_t Int64FromSlot(uint64_t s) { return static_cast<int64_t>(s); }
uint64_t SlotFromDouble(double v);
double DoubleFromSlot(uint64_t s);

// Order-preserving string dictionary. Build by inserting all distinct
// strings (in any order), then Seal(); codes are ranks in sorted order.
// Lookups before Seal() are not allowed.
class Dictionary {
 public:
  Dictionary() = default;

  // Registers a string. Callable only before Seal().
  void Add(std::string_view s);

  // Assigns order-preserving codes. Idempotent.
  void Seal();

  bool sealed() const { return sealed_; }
  size_t size() const { return sorted_.size(); }

  // Returns the code for `s`, or an error if absent. Requires sealed().
  Result<int64_t> CodeOf(std::string_view s) const;

  // Code of the smallest dictionary entry >= s (size() if none).
  // Used to translate string range predicates. Requires sealed().
  int64_t LowerBoundCode(std::string_view s) const;
  // Code of the smallest dictionary entry > s (size() if none).
  int64_t UpperBoundCode(std::string_view s) const;

  // Returns the string for `code`. Requires sealed() and valid code.
  const std::string& StringOf(int64_t code) const;

 private:
  std::map<std::string, int64_t, std::less<>> entries_;
  std::vector<const std::string*> sorted_;
  bool sealed_ = false;
};

using DictionaryPtr = std::shared_ptr<Dictionary>;

}  // namespace qppt

#endif  // QPPT_STORAGE_VALUE_H_
