// Row-store table: tuples stored as contiguous fixed-width records.
//
// This is DexterDB's storage substrate (§5): an in-memory row-store. Every
// column occupies one 64-bit slot; a record of an N-column table is N
// consecutive slots. The record identifier (rid) is the row's ordinal.
//
// Growth modes:
//   - kFlat (default): one contiguous std::vector of slots. Fastest reads,
//     but AppendRow may reallocate — only safe while no one else reads.
//   - kStable: records live in fixed-size chunks behind a directory of
//     atomic chunk pointers. A record's address never changes after
//     AppendRow publishes it (release on num_rows, acquire on access), so
//     a single writer can append while snapshot readers run lock-free.
//     MVCC-backed tables use this mode; records never straddle a chunk.

#ifndef QPPT_STORAGE_ROW_TABLE_H_
#define QPPT_STORAGE_ROW_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"
#include "util/status.h"

namespace qppt {

using Rid = uint64_t;

class RowTable {
 public:
  enum class Growth : uint8_t { kFlat, kStable };

  explicit RowTable(Schema schema, std::string name = "",
                    Growth growth = Growth::kFlat)
      : schema_(std::move(schema)),
        name_(std::move(name)),
        growth_(growth) {}
  ~RowTable();
  RowTable(const RowTable&) = delete;
  RowTable& operator=(const RowTable&) = delete;

  const Schema& schema() const { return schema_; }
  const std::string& name() const { return name_; }
  bool stable() const { return growth_ == Growth::kStable; }
  size_t num_rows() const {
    if (growth_ == Growth::kStable) {
      return stable_rows_.load(std::memory_order_acquire);
    }
    return schema_.num_columns() == 0 ? 0
                                      : slots_.size() / schema_.num_columns();
  }

  void Reserve(size_t rows) {
    if (growth_ == Growth::kFlat) slots_.reserve(rows * schema_.num_columns());
  }

  // Appends a record; `row` must have exactly num_columns() slots.
  // Returns the new row's rid. In stable mode, a single writer may append
  // concurrently with readers.
  Rid AppendRow(std::span<const uint64_t> row);

  // Raw slot access (hot path for operators).
  uint64_t GetSlot(Rid rid, size_t col) const { return Record(rid)[col]; }
  void SetSlot(Rid rid, size_t col, uint64_t slot) {
    const_cast<uint64_t*>(Record(rid))[col] = slot;
  }
  // Pointer to the first slot of `rid`'s record.
  const uint64_t* Record(Rid rid) const {
    if (growth_ == Growth::kFlat) {
      return slots_.data() + rid * schema_.num_columns();
    }
    return dir_[rid >> kChunkRowsLog2].load(std::memory_order_acquire) +
           (rid & kChunkRowsMask) * schema_.num_columns();
  }

  // Typed access: decodes the slot per the column's declared type
  // (dictionary decode for strings).
  Value GetValue(Rid rid, size_t col) const;
  Result<Value> GetValue(Rid rid, const std::string& column) const;

  // Approximate memory footprint in bytes.
  size_t MemoryUsage() const;

 private:
  // Stable mode: 2^14 rows per chunk, directory of 2^16 chunk pointers
  // (capacity 2^30 rows). Whole records never straddle a chunk boundary.
  static constexpr size_t kChunkRowsLog2 = 14;
  static constexpr size_t kChunkRows = size_t{1} << kChunkRowsLog2;
  static constexpr size_t kChunkRowsMask = kChunkRows - 1;
  static constexpr size_t kMaxChunks = size_t{1} << 16;

  uint64_t* StableChunkFor(Rid rid);

  Schema schema_;
  std::string name_;
  Growth growth_ = Growth::kFlat;
  std::vector<uint64_t> slots_;  // kFlat storage
  // kStable storage: lazily allocated directory + chunks.
  std::unique_ptr<std::atomic<uint64_t*>[]> dir_;
  std::atomic<size_t> stable_rows_{0};
  size_t stable_chunks_ = 0;
};

}  // namespace qppt

#endif  // QPPT_STORAGE_ROW_TABLE_H_
