// Row-store table: tuples stored as contiguous fixed-width records.
//
// This is DexterDB's storage substrate (§5): an in-memory row-store. Every
// column occupies one 64-bit slot; a record of an N-column table is N
// consecutive slots. The record identifier (rid) is the row's ordinal.

#ifndef QPPT_STORAGE_ROW_TABLE_H_
#define QPPT_STORAGE_ROW_TABLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"
#include "util/status.h"

namespace qppt {

using Rid = uint64_t;

class RowTable {
 public:
  explicit RowTable(Schema schema, std::string name = "")
      : schema_(std::move(schema)), name_(std::move(name)) {}

  const Schema& schema() const { return schema_; }
  const std::string& name() const { return name_; }
  size_t num_rows() const {
    return schema_.num_columns() == 0
               ? 0
               : slots_.size() / schema_.num_columns();
  }

  void Reserve(size_t rows) {
    slots_.reserve(rows * schema_.num_columns());
  }

  // Appends a record; `row` must have exactly num_columns() slots.
  // Returns the new row's rid.
  Rid AppendRow(std::span<const uint64_t> row);

  // Raw slot access (hot path for operators).
  uint64_t GetSlot(Rid rid, size_t col) const {
    return slots_[rid * schema_.num_columns() + col];
  }
  void SetSlot(Rid rid, size_t col, uint64_t slot) {
    slots_[rid * schema_.num_columns() + col] = slot;
  }
  // Pointer to the first slot of `rid`'s record.
  const uint64_t* Record(Rid rid) const {
    return slots_.data() + rid * schema_.num_columns();
  }

  // Typed access: decodes the slot per the column's declared type
  // (dictionary decode for strings).
  Value GetValue(Rid rid, size_t col) const;
  Result<Value> GetValue(Rid rid, const std::string& column) const;

  // Approximate memory footprint in bytes.
  size_t MemoryUsage() const { return slots_.capacity() * sizeof(uint64_t); }

 private:
  Schema schema_;
  std::string name_;
  std::vector<uint64_t> slots_;
};

}  // namespace qppt

#endif  // QPPT_STORAGE_ROW_TABLE_H_
