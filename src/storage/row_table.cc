#include "storage/row_table.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace qppt {

Rid RowTable::AppendRow(std::span<const uint64_t> row) {
  assert(row.size() == schema_.num_columns());
  Rid rid = num_rows();
  slots_.insert(slots_.end(), row.begin(), row.end());
  return rid;
}

Value RowTable::GetValue(Rid rid, size_t col) const {
  uint64_t slot = GetSlot(rid, col);
  const ColumnDef& def = schema_.column(col);
  switch (def.type) {
    case ValueType::kInt64:
      return Value::Int(Int64FromSlot(slot));
    case ValueType::kDouble:
      return Value::Real(DoubleFromSlot(slot));
    case ValueType::kString: {
      if (def.dictionary != nullptr && def.dictionary->sealed()) {
        return Value::Str(def.dictionary->StringOf(Int64FromSlot(slot)));
      }
      return Value::Int(Int64FromSlot(slot));  // undecodable: raw code
    }
  }
  return Value::Int(0);
}

Result<Value> RowTable::GetValue(Rid rid, const std::string& column) const {
  QPPT_ASSIGN_OR_RETURN(size_t idx, schema_.ColumnIndex(column));
  if (rid >= num_rows()) {
    return Status::OutOfRange("rid " + std::to_string(rid) +
                              " out of range for table '" + name_ + "'");
  }
  return GetValue(rid, idx);
}

}  // namespace qppt
