#include "storage/row_table.h"

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>

namespace qppt {

RowTable::~RowTable() {
  if (dir_ == nullptr) return;
  for (size_t c = 0; c < stable_chunks_; ++c) {
    // relaxed: destructor runs with exclusive access.
    delete[] dir_[c].load(std::memory_order_relaxed);
  }
}

uint64_t* RowTable::StableChunkFor(Rid rid) {
  if (dir_ == nullptr) {
    dir_ = std::make_unique<std::atomic<uint64_t*>[]>(kMaxChunks);
  }
  size_t c = rid >> kChunkRowsLog2;
  // relaxed: single writer — only this thread ever installs chunks, so it
  // reads back its own stores; readers use the acquire accessor.
  uint64_t* chunk = dir_[c].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new uint64_t[kChunkRows * schema_.num_columns()];
    // pairs-with: row-dir-chunk
    dir_[c].store(chunk, std::memory_order_release);
    stable_chunks_ = c + 1;
  }
  return chunk;
}

Rid RowTable::AppendRow(std::span<const uint64_t> row) {
  assert(row.size() == schema_.num_columns());
  if (growth_ == Growth::kFlat) {
    Rid rid = num_rows();
    slots_.insert(slots_.end(), row.begin(), row.end());
    return rid;
  }
  // relaxed: single writer reading back its own counter.
  Rid rid = stable_rows_.load(std::memory_order_relaxed);
  uint64_t* chunk = StableChunkFor(rid);
  std::memcpy(chunk + (rid & kChunkRowsMask) * schema_.num_columns(),
              row.data(), row.size() * sizeof(uint64_t));
  // pairs-with: row-stable-rows
  stable_rows_.store(rid + 1, std::memory_order_release);
  return rid;
}

size_t RowTable::MemoryUsage() const {
  if (growth_ == Growth::kFlat) return slots_.capacity() * sizeof(uint64_t);
  return stable_chunks_ * kChunkRows * schema_.num_columns() *
         sizeof(uint64_t);
}

Value RowTable::GetValue(Rid rid, size_t col) const {
  uint64_t slot = GetSlot(rid, col);
  const ColumnDef& def = schema_.column(col);
  switch (def.type) {
    case ValueType::kInt64:
      return Value::Int(Int64FromSlot(slot));
    case ValueType::kDouble:
      return Value::Real(DoubleFromSlot(slot));
    case ValueType::kString: {
      if (def.dictionary != nullptr && def.dictionary->sealed()) {
        return Value::Str(def.dictionary->StringOf(Int64FromSlot(slot)));
      }
      return Value::Int(Int64FromSlot(slot));  // undecodable: raw code
    }
  }
  return Value::Int(0);
}

Result<Value> RowTable::GetValue(Rid rid, const std::string& column) const {
  QPPT_ASSIGN_OR_RETURN(size_t idx, schema_.ColumnIndex(column));
  if (rid >= num_rows()) {
    return Status::OutOfRange("rid " + std::to_string(rid) +
                              " out of range for table '" + name_ + "'");
  }
  return GetValue(rid, idx);
}

}  // namespace qppt
