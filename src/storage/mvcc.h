// Multi-version concurrency control over row tables.
//
// DexterDB — the prototype QPPT is implemented in (§5) — is a row-store
// with MVCC for transactional isolation. Base indexes must respect
// transactional visibility while *intermediate* indexes are query-private
// (§3). This module provides the version-chain substrate: each logical row
// has a newest-first chain of physical versions stamped with [begin, end)
// commit timestamps; a snapshot at read-timestamp T sees the version whose
// stamp interval contains T.
//
// Concurrency model:
//   - Mutators (Insert/Update/Delete/CommitTransaction/AbortTransaction/
//     ReclaimBefore) must be externally serialized — the engine holds a
//     coarse writer lock (§7's no-rebalancing property makes in-place
//     index maintenance cheap enough that one writer suffices for now).
//   - Readers (Read/SnapshotRids/RidVisibleAt) are lock-free and may run
//     concurrently with the single writer: version storage has stable
//     addresses (StableVector / RowTable stable mode) and all stamps are
//     atomics published with release/acquire ordering.
//   - Writers to the *same logical row* detect conflicts via
//     first-updater-wins (write-write conflicts abort), mirroring classic
//     MVCC as cited by the paper [3].
//
// Commit protocol (two-phase, fixing the visibility window where a reader
// could begin with read_ts >= commit_ts yet still see pre-commit state):
//   Timestamp ts = tm.BeginCommit();      // allocate, NOT yet visible
//   table.CommitTransaction(txn, ts);     // stamp this txn's versions
//   tm.FinishCommit(txn, ts);             // publish: new Begin()s see ts

#ifndef QPPT_STORAGE_MVCC_H_
#define QPPT_STORAGE_MVCC_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/row_table.h"
#include "util/stable_vector.h"
#include "util/status.h"

namespace qppt {

using Timestamp = uint64_t;

constexpr Timestamp kTsInfinity = std::numeric_limits<Timestamp>::max();
constexpr uint64_t kInvalidVersion = std::numeric_limits<uint64_t>::max();

struct Transaction {
  uint64_t id = 0;         // unique transaction identifier
  Timestamp read_ts = 0;   // snapshot timestamp
  bool committed = false;
  bool aborted = false;
};

class TransactionManager {
 public:
  TransactionManager() = default;

  Transaction Begin() {
    Transaction txn;
    // relaxed: id allocation needs uniqueness only, no ordering.
    txn.id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
    txn.read_ts = last_commit_ts_.load(std::memory_order_acquire);
    return txn;
  }

  // Allocates a commit timestamp without publishing it. The caller stamps
  // the transaction's versions (MvccTable::CommitTransaction), then calls
  // FinishCommit to make the timestamp visible to new snapshots.
  Timestamp BeginCommit() {
    return next_commit_ts_.fetch_add(1, std::memory_order_acq_rel);
  }

  // Publishes `commit_ts`. Commits publish in timestamp order (waits for
  // ts-1), so last_commit_ts_ == T guarantees every commit <= T is fully
  // stamped — a reader can never get read_ts >= commit_ts while the
  // versions still carry pre-commit stamps.
  void FinishCommit(Transaction& txn, Timestamp commit_ts) {
    Timestamp expect = commit_ts - 1;
    while (last_commit_ts_.load(std::memory_order_acquire) != expect) {
      // another committer between BeginCommit and FinishCommit; rare
    }
    // pairs-with: mvcc-last-commit
    last_commit_ts_.store(commit_ts, std::memory_order_release);
    txn.committed = true;
  }

  void Abort(Transaction& txn) { txn.aborted = true; }

  Timestamp last_commit_ts() const {
    return last_commit_ts_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<uint64_t> next_txn_id_{1};
  std::atomic<Timestamp> next_commit_ts_{1};  // next ts BeginCommit hands out
  std::atomic<Timestamp> last_commit_ts_{0};  // highest fully-stamped ts
};

// A versioned table. Logical rows are identified by LogicalId; each version
// is a physical row in the backing RowTable. Physical rids and version
// indexes coincide: version i describes physical row i, so visibility of a
// rid surfaced by an index probe is an O(1) check (RidVisibleAt).
class MvccTable {
 public:
  using LogicalId = uint64_t;

  explicit MvccTable(Schema schema, std::string name = "")
      : storage_(std::move(schema), std::move(name),
                 RowTable::Growth::kStable) {}

  const Schema& schema() const { return storage_.schema(); }
  const std::string& name() const { return storage_.name(); }
  const RowTable& storage() const { return storage_; }
  size_t num_logical_rows() const { return heads_.size(); }
  size_t num_versions() const { return versions_.size(); }

  // Inserts a new logical row; becomes visible once `commit_ts` is stamped
  // via CommitTransaction. Returns the logical id.
  LogicalId Insert(const Transaction& txn, std::span<const uint64_t> row);

  // Installs a new version of `id`. Fails with AlreadyExists (write-write
  // conflict) if another in-flight transaction already updated `id`, or
  // NotFound if `id` is deleted in this snapshot (including by this
  // transaction itself) or never committed (aborted insert).
  Status Update(Transaction& txn, LogicalId id,
                std::span<const uint64_t> row);

  // Marks `id` deleted as of this transaction. Same failure contract as
  // Update; deleting an already-deleted row is NotFound.
  Status Delete(Transaction& txn, LogicalId id);

  // Returns the physical rid of the version of `id` visible at the
  // transaction's snapshot, or nullopt if invisible/deleted.
  std::optional<Rid> Read(const Transaction& txn, LogicalId id) const;

  // Stamps all of `txn`'s writes with `commit_ts` and releases the write
  // set. Call between TransactionManager::BeginCommit and FinishCommit.
  // Cost: O(txn's own writes).
  void CommitTransaction(const Transaction& txn, Timestamp commit_ts);

  // Reverts all of `txn`'s writes. Cost: O(txn's own writes).
  void AbortTransaction(const Transaction& txn);

  // True if physical row `rid` is visible at snapshot `ts`: its version is
  // committed with begin_ts <= ts < end_ts. Lock-free; O(1).
  bool RidVisibleAt(Rid rid, Timestamp ts) const {
    const Version& v = versions_[rid];
    Timestamp begin = v.begin_ts.load(std::memory_order_acquire);
    if (begin > ts) return false;  // also covers uncommitted (kTsInfinity)
    return v.end_ts.load(std::memory_order_acquire) > ts;
  }

  // Invokes fn(Rid) for each new physical row `txn` created (inserts and
  // update-successors). Used to publish pending rows into live indexes
  // before commit stamps them visible. Must run before CommitTransaction
  // (which releases the write set).
  template <typename F>
  void ForEachPendingWrite(const Transaction& txn, F&& fn) const {
    auto it = write_sets_.find(txn.id);
    if (it == write_sets_.end()) return;
    for (const WriteOp& op : it->second) {
      if (op.created != kInvalidVersion) fn(versions_[op.created].rid);
    }
  }

  // Epoch-deferred reclamation: unlinks version-chain tails that no active
  // or future snapshot with read_ts >= horizon can reach (everything older
  // than the newest version committed at or before `horizon`). Unlinked
  // versions stay allocated — rids are stable and a straggling reader may
  // still be traversing them — but chains stop growing without bound.
  // Returns the number of versions unlinked. Writer-serialized.
  size_t ReclaimBefore(Timestamp horizon);

  // Scans all logical rows visible at `read_ts` (committed data only) and
  // returns their physical rids, in logical-id order.
  std::vector<Rid> SnapshotRids(Timestamp read_ts) const;

  // Invokes fn(length) with every logical row's current version-chain
  // length (versions reachable from the head via `older` links; 0 for a
  // row whose insert aborted). Observability hook — the engine's
  // reclamation sweep feeds these into a histogram so chain growth under
  // update-heavy workloads stays visible. Writer-serialized: walks the
  // same links ReclaimBefore unlinks.
  template <typename F>
  void ForEachChainLength(F&& fn) const {
    for (size_t id = 0; id < heads_.size(); ++id) {
      uint64_t v = heads_[id].load(std::memory_order_acquire);
      size_t len = 0;
      while (v != kInvalidVersion) {
        ++len;
        v = versions_[v].older.load(std::memory_order_acquire);
      }
      fn(len);
    }
  }

  // One version as seen by a chain walk — the dbg invariant audits
  // (dbg/invariants.h) consume these.
  struct VersionView {
    LogicalId logical = 0;
    Rid rid = 0;
    Timestamp begin_ts = 0;
    Timestamp end_ts = 0;
    bool newest = false;  // first version of its logical row's chain
  };

  // Invokes fn(VersionView) for every reachable version, newest-first
  // within each logical row's chain (view.newest marks chain starts).
  // Writer-serialized, like ForEachChainLength.
  template <typename F>
  void ForEachChainVersion(F&& fn) const {
    for (size_t id = 0; id < heads_.size(); ++id) {
      bool newest = true;
      for (uint64_t v = heads_[id].load(std::memory_order_acquire);
           v != kInvalidVersion;
           v = versions_[v].older.load(std::memory_order_acquire)) {
        const Version& ver = versions_[v];
        fn(VersionView{id, ver.rid,
                       ver.begin_ts.load(std::memory_order_acquire),
                       ver.end_ts.load(std::memory_order_acquire), newest});
        newest = false;
      }
    }
  }

 private:
  struct Version {
    std::atomic<Timestamp> begin_ts{kTsInfinity};  // kTsInfinity: uncommitted
    std::atomic<Timestamp> end_ts{kTsInfinity};
    uint64_t writer_txn = 0;  // txn that created this version (pre-publish)
    std::atomic<uint64_t> ender_txn{0};  // in-flight txn that set end_ts
    std::atomic<uint64_t> older{kInvalidVersion};  // next-older version idx
    Rid rid = 0;              // physical row in storage_ (== version index)
    LogicalId logical = 0;
  };

  // One mutation by a transaction: the version it created (insert/update)
  // and/or the prior head it terminated (update/delete).
  struct WriteOp {
    uint64_t created = kInvalidVersion;
    uint64_t ended = kInvalidVersion;
  };

  RowTable storage_;
  // logical id -> newest version index; kInvalidVersion after an aborted
  // insert. StableVector: readers chase heads while the writer appends.
  StableVector<std::atomic<uint64_t>> heads_;
  StableVector<Version> versions_;
  // txn id -> its write ops, in execution order. Writer-serialized.
  std::unordered_map<uint64_t, std::vector<WriteOp>> write_sets_;
};

}  // namespace qppt

#endif  // QPPT_STORAGE_MVCC_H_
