// Multi-version concurrency control over row tables.
//
// DexterDB — the prototype QPPT is implemented in (§5) — is a row-store
// with MVCC for transactional isolation. Base indexes must respect
// transactional visibility while *intermediate* indexes are query-private
// (§3). This module provides the version-chain substrate: each logical row
// has a newest-first chain of physical versions stamped with [begin, end)
// commit timestamps; a snapshot at read-timestamp T sees the version whose
// stamp interval contains T.
//
// Concurrency model: timestamps are allocated atomically, so concurrent
// readers are safe against committed data. Writers to the *same logical
// row* detect conflicts via first-updater-wins (write-write conflicts
// abort). This mirrors classic MVCC as cited by the paper [3].

#ifndef QPPT_STORAGE_MVCC_H_
#define QPPT_STORAGE_MVCC_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "storage/row_table.h"
#include "util/status.h"

namespace qppt {

using Timestamp = uint64_t;

constexpr Timestamp kTsInfinity = std::numeric_limits<Timestamp>::max();
constexpr uint64_t kInvalidVersion = std::numeric_limits<uint64_t>::max();

struct Transaction {
  uint64_t id = 0;         // unique transaction identifier
  Timestamp read_ts = 0;   // snapshot timestamp
  bool committed = false;
  bool aborted = false;
};

class TransactionManager {
 public:
  TransactionManager() = default;

  Transaction Begin() {
    Transaction txn;
    txn.id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
    txn.read_ts = last_commit_ts_.load(std::memory_order_acquire);
    return txn;
  }

  // Assigns a commit timestamp and marks the transaction committed.
  Timestamp Commit(Transaction& txn) {
    Timestamp ts = last_commit_ts_.fetch_add(1, std::memory_order_acq_rel) + 1;
    txn.committed = true;
    return ts;
  }

  void Abort(Transaction& txn) { txn.aborted = true; }

  Timestamp last_commit_ts() const {
    return last_commit_ts_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<uint64_t> next_txn_id_{1};
  std::atomic<Timestamp> last_commit_ts_{0};
};

// A versioned table. Logical rows are identified by LogicalId; each version
// is a physical row in the backing RowTable.
class MvccTable {
 public:
  using LogicalId = uint64_t;

  explicit MvccTable(Schema schema, std::string name = "")
      : storage_(std::move(schema), std::move(name)) {}

  const Schema& schema() const { return storage_.schema(); }
  const RowTable& storage() const { return storage_; }
  size_t num_logical_rows() const { return heads_.size(); }

  // Inserts a new logical row; becomes visible once `commit_ts` is stamped
  // via CommitTransaction. Returns the logical id.
  LogicalId Insert(const Transaction& txn, std::span<const uint64_t> row);

  // Installs a new version of `id`. Fails with AlreadyExists (write-write
  // conflict) if another in-flight transaction already updated `id`, or
  // NotFound if `id` is deleted in this snapshot.
  Status Update(Transaction& txn, LogicalId id,
                std::span<const uint64_t> row);

  // Marks `id` deleted as of this transaction.
  Status Delete(Transaction& txn, LogicalId id);

  // Returns the physical rid of the version of `id` visible at the
  // transaction's snapshot, or nullopt if invisible/deleted.
  std::optional<Rid> Read(const Transaction& txn, LogicalId id) const;

  // Stamps all of `txn`'s writes with `commit_ts`. Must be called after
  // TransactionManager::Commit.
  void CommitTransaction(const Transaction& txn, Timestamp commit_ts);

  // Reverts all of `txn`'s writes.
  void AbortTransaction(const Transaction& txn);

  // Scans all logical rows visible at `read_ts` (committed data only) and
  // returns their physical rids, in logical-id order.
  std::vector<Rid> SnapshotRids(Timestamp read_ts) const;

 private:
  struct Version {
    Timestamp begin_ts = kTsInfinity;  // kTsInfinity while uncommitted
    Timestamp end_ts = kTsInfinity;
    uint64_t writer_txn = 0;   // txn that created this version
    uint64_t ender_txn = 0;    // in-flight txn that set end_ts (0 = none)
    uint64_t older = kInvalidVersion;  // next-older version index
    Rid rid = 0;               // physical row in storage_
    LogicalId logical = 0;
  };

  // Returns version index visible at `ts`, following the chain from head.
  uint64_t FindVisible(uint64_t head, Timestamp ts) const;

  RowTable storage_;
  std::vector<uint64_t> heads_;     // logical id -> newest version index
  std::vector<Version> versions_;
};

}  // namespace qppt

#endif  // QPPT_STORAGE_MVCC_H_
