// Relation schemas: named, typed columns with fixed-width slot layout.

#ifndef QPPT_STORAGE_SCHEMA_H_
#define QPPT_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/value.h"
#include "util/status.h"

namespace qppt {

struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kInt64;
  // Dictionary for string columns (shared across tables derived from the
  // same base data). Null for numeric columns.
  DictionaryPtr dictionary;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  // Returns the index of column `name`, or an error.
  Result<size_t> ColumnIndex(const std::string& name) const;
  bool HasColumn(const std::string& name) const {
    return by_name_.contains(name);
  }

  // Builds a schema containing the named subset of this schema's columns,
  // in the given order.
  Result<Schema> Project(const std::vector<std::string>& names) const;

  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace qppt

#endif  // QPPT_STORAGE_SCHEMA_H_
