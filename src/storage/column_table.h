// Column-store table: one contiguous 64-bit slot vector per column.
//
// Substrate for the column-at-a-time and vector-at-a-time baseline engines
// (the MonetDB / commercial-DBMS proxies of §5). Logically equivalent to a
// RowTable; physically transposed.

#ifndef QPPT_STORAGE_COLUMN_TABLE_H_
#define QPPT_STORAGE_COLUMN_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/row_table.h"
#include "storage/schema.h"

namespace qppt {

class ColumnTable {
 public:
  explicit ColumnTable(Schema schema, std::string name = "")
      : schema_(std::move(schema)),
        name_(std::move(name)),
        columns_(schema_.num_columns()) {}

  // Builds a columnar copy of `rows` (used to feed both baselines from the
  // same generated data as the QPPT engine).
  static ColumnTable FromRowTable(const RowTable& rows);

  const Schema& schema() const { return schema_; }
  const std::string& name() const { return name_; }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }

  void Reserve(size_t rows) {
    for (auto& col : columns_) col.reserve(rows);
  }

  // Appends a record given one slot per column.
  void AppendRow(std::span<const uint64_t> row) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      columns_[c].push_back(row[c]);
    }
  }

  const std::vector<uint64_t>& column(size_t i) const { return columns_[i]; }
  std::vector<uint64_t>& mutable_column(size_t i) { return columns_[i]; }
  Result<const std::vector<uint64_t>*> ColumnByName(
      const std::string& name) const;

  size_t MemoryUsage() const {
    size_t total = 0;
    for (const auto& col : columns_) total += col.capacity() * 8;
    return total;
  }

 private:
  Schema schema_;
  std::string name_;
  std::vector<std::vector<uint64_t>> columns_;
};

}  // namespace qppt

#endif  // QPPT_STORAGE_COLUMN_TABLE_H_
