// qppt-unchecked-status: flags call expressions whose qppt::Status /
// qppt::Result<T> return value is discarded as a bare expression
// statement. [[nodiscard]] on the classes (util/status.h) already makes
// this -Werror inside src/; the check extends the same guarantee to
// tests/, bench/, and examples/, which compile without -Werror. A
// deliberate discard stays expressible as `(void)Call();` — explicit
// casts are not flagged.

#ifndef QPPT_TIDY_UNCHECKED_STATUS_CHECK_H_
#define QPPT_TIDY_UNCHECKED_STATUS_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::qppt {

class UncheckedStatusCheck : public ClangTidyCheck {
 public:
  UncheckedStatusCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::qppt

#endif  // QPPT_TIDY_UNCHECKED_STATUS_CHECK_H_
