#include "AtomicsDisciplineCheck.h"

#include <fstream>

#include "QpptTidyUtils.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

namespace clang::tidy::qppt {

using namespace ast_matchers;

namespace {

constexpr unsigned kCommentLookback = 3;

// C++ [atomics.order]: the enumerator values are specified, so constant
// evaluation is portable across library implementations.
constexpr uint64_t kOrderRelaxed = 0;
constexpr uint64_t kOrderRelease = 3;

std::set<std::string> LoadTags(const std::string &Path) {
  std::set<std::string> Tags;
  if (Path.empty())
    return Tags;
  std::ifstream In(Path);
  std::string Line;
  while (std::getline(In, Line)) {
    size_t B = Line.find_first_not_of(" \t\r");
    if (B == std::string::npos || Line[B] == '#')
      continue;
    size_t E = Line.find_first_of(" \t\r", B);
    Tags.insert(Line.substr(B, (E == std::string::npos ? Line.size() : E) - B));
  }
  return Tags;
}

bool IsTagChar(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
         (C >= '0' && C <= '9') || C == '_' || C == '-';
}

// The `pairs-with: <tag>` annotation nearest above `Loc` (same
// lookback contract as the escape comments); empty = none found.
std::string FindPairsTag(const SourceManager &SM, SourceLocation Loc) {
  if (Loc.isInvalid())
    return std::string();
  Loc = SM.getExpansionLoc(Loc);
  bool Invalid = false;
  llvm::StringRef Buf = SM.getBufferData(SM.getFileID(Loc), &Invalid);
  if (Invalid)
    return std::string();
  unsigned Line = SM.getExpansionLineNumber(Loc);
  llvm::SmallVector<llvm::StringRef, 0> Lines;
  Buf.split(Lines, '\n');
  unsigned Begin =
      Line > kCommentLookback + 1 ? Line - kCommentLookback - 1 : 0;
  for (unsigned I = Begin; I < Line && I < Lines.size(); ++I) {
    size_t Pos = Lines[I].find("pairs-with:");
    if (Pos == llvm::StringRef::npos)
      continue;
    llvm::StringRef Rest = Lines[I].substr(Pos + strlen("pairs-with:")).ltrim();
    size_t End = 0;
    while (End < Rest.size() && IsTagChar(Rest[End]))
      ++End;
    if (End > 0)
      return Rest.substr(0, End).str();
  }
  return std::string();
}

}  // namespace

AtomicsDisciplineCheck::AtomicsDisciplineCheck(StringRef Name,
                                               ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      PairsFile(Options.get("PairsFile", "")),
      KnownTags(LoadTags(PairsFile)) {}

void AtomicsDisciplineCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "PairsFile", PairsFile);
}

void AtomicsDisciplineCheck::registerMatchers(MatchFinder *Finder) {
  // Member operations on std::atomic<T> / std::atomic_flag objects
  // (load, store, exchange, fetch_*, compare_exchange_*, ...) — any
  // call carrying a memory_order argument is interesting; the rest are
  // filtered in check().
  Finder->addMatcher(
      cxxMemberCallExpr(on(expr(hasType(hasCanonicalType(hasDeclaration(
                            namedDecl(hasAnyName("::std::atomic",
                                                 "::std::atomic_flag"))))))))
          .bind("op"),
      this);
  // Fences take their order as the sole argument.
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::std::atomic_thread_fence",
                                              "::std::atomic_signal_fence"))))
          .bind("op"),
      this);
}

void AtomicsDisciplineCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Op = Result.Nodes.getNodeAs<CallExpr>("op");
  if (Op == nullptr)
    return;
  bool HasRelaxed = false;
  bool HasRelease = false;
  for (const Expr *Arg : Op->arguments()) {
    if (Arg == nullptr || llvm::isa<CXXDefaultArgExpr>(Arg))
      continue;  // defaulted seq_cst — never annotation-worthy
    if (!TypeMentionsAny(Arg->getType(), {"memory_order"}))
      continue;
    Expr::EvalResult ER;
    if (!Arg->EvaluateAsInt(ER, *Result.Context))
      continue;  // dependent order in a template pattern
    uint64_t V = ER.Val.getInt().getZExtValue();
    HasRelaxed |= V == kOrderRelaxed;
    HasRelease |= V == kOrderRelease;
  }
  if (!HasRelaxed && !HasRelease)
    return;
  const SourceManager &SM = *Result.SourceManager;
  SourceLocation Loc = Op->getBeginLoc();
  if (HasRelaxed &&
      !HasEscapeComment(SM, Loc, "relaxed:", kCommentLookback)) {
    diag(Loc,
         "memory_order_relaxed operation without a '// relaxed: <why>' "
         "justification within %0 lines")
        << kCommentLookback;
  }
  if (HasRelease) {
    std::string Tag = FindPairsTag(SM, Loc);
    if (Tag.empty()) {
      diag(Loc,
           "memory_order_release operation without a 'pairs-with: <tag>' "
           "annotation naming its acquire side (catalogue: "
           "scripts/analyze/atomics_pairs.txt)");
    } else if (!KnownTags.empty() && KnownTags.count(Tag) == 0) {
      diag(Loc,
           "release annotation names unknown pairing tag '%0' — add it to "
           "the catalogue or fix the reference")
          << Tag;
    }
  }
}

}  // namespace clang::tidy::qppt
