// qppt-ranked-lock: every mutex in the lock-rank table
// (src/dbg/lock_rank.h) must be taken through dbg::RankedLockGuard /
// dbg::RankedUniqueLock so the runtime rank checker sees the
// acquisition. A raw std::lock_guard / std::unique_lock /
// std::scoped_lock over a rank-registered mutex silently opts the site
// out of deadlock-order enforcement — the exact hole the dbg layer
// exists to close.
//
// The registered mutexes are listed (one fully qualified member,
// variable, or accessor name per line) in the file named by the
// RankedMutexFile option — scripts/analyze/ranked_mutexes.txt for the
// real tree. Sites that must manage the rank token by hand (e.g. a
// worker loop that drops the lock across a work window) annotate
// `// lock-rank: manual — <reason>` within 5 lines above the guard.

#ifndef QPPT_TIDY_RANKED_LOCK_CHECK_H_
#define QPPT_TIDY_RANKED_LOCK_CHECK_H_

#include <set>
#include <string>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::qppt {

class RankedLockCheck : public ClangTidyCheck {
 public:
  RankedLockCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  const std::string RankedMutexFile;
  std::set<std::string> RankedMutexes;
};

}  // namespace clang::tidy::qppt

#endif  // QPPT_TIDY_RANKED_LOCK_CHECK_H_
