// qppt-cancel-coverage: scan loops in the engine's hot directories must
// stay cancellable. A function that can reach the query's cancellation
// machinery (it mentions CancelToken / CancelTicker / ExecContext /
// MorselSite anywhere in its body) but drives a tree-scan primitive or
// a nested loop without ever polling (CancelTicker::Tick,
// CancelToken::Check / cancel_requested, ExecContext::CheckCancelled,
// or delegating to a MorselSite driver — those poll per morsel) is an
// unbounded-latency bug: a cancelled or deadline-expired query keeps
// burning a core until the scan finishes on its own.
//
// Deliberate exceptions carry `// cancel-exempt: <reason>` on the line
// or within 3 lines above. Pure index internals (kiss_tree.cc and
// friends) have no cancel source in scope and are skipped by the
// has-access precondition — cancellation is the *operator's* job.

#ifndef QPPT_TIDY_CANCEL_COVERAGE_CHECK_H_
#define QPPT_TIDY_CANCEL_COVERAGE_CHECK_H_

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::qppt {

class CancelCoverageCheck : public ClangTidyCheck {
 public:
  CancelCoverageCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  // Semicolon-separated path fragments that scope the check; empty =
  // everywhere (used by the fixture corpus).
  const std::string RawHotDirs;
  std::vector<std::string> HotDirs;
};

}  // namespace clang::tidy::qppt

#endif  // QPPT_TIDY_CANCEL_COVERAGE_CHECK_H_
