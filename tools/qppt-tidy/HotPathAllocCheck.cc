#include "HotPathAllocCheck.h"

#include "QpptTidyUtils.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

namespace clang::tidy::qppt {

using namespace ast_matchers;

namespace {

constexpr char kDefaultHotDirs[] = "src/index;src/core/operators";
constexpr unsigned kCommentLookback = 3;

}  // namespace

HotPathAllocCheck::HotPathAllocCheck(StringRef Name,
                                     ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      RawHotDirs(Options.get("HotDirs", kDefaultHotDirs)),
      HotDirs(ParseSemiList(RawHotDirs)) {}

void HotPathAllocCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "HotDirs", RawHotDirs);
}

void HotPathAllocCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(cxxNewExpr().bind("new"), this);
  Finder->addMatcher(
      cxxConstructExpr(hasType(hasCanonicalType(hasDeclaration(
                           namedDecl(hasAnyName("::std::function"))))))
          .bind("function"),
      this);
  Finder->addMatcher(
      cxxConstructExpr(
          hasDeclaration(cxxConstructorDecl(
              isCopyConstructor(),
              ofClass(hasAnyName("::std::vector", "::std::basic_string",
                                 "::std::map", "::std::unordered_map",
                                 "::std::set", "::std::unordered_set",
                                 "::std::deque")))))
          .bind("copy"),
      this);
}

void HotPathAllocCheck::check(const MatchFinder::MatchResult &Result) {
  const Expr *Site = nullptr;
  const char *What = nullptr;
  if (const auto *New = Result.Nodes.getNodeAs<CXXNewExpr>("new")) {
    if (New->getNumPlacementArgs() > 0)
      return;  // arena placement-new is the sanctioned allocation path
    Site = New;
    What = "raw operator new";
  } else if (const auto *Fn =
                 Result.Nodes.getNodeAs<CXXConstructExpr>("function")) {
    Site = Fn;
    What = "implicit std::function construction (heap-allocates the "
           "closure); take a template callback instead";
  } else if (const auto *Copy =
                 Result.Nodes.getNodeAs<CXXConstructExpr>("copy")) {
    Site = Copy;
    What = "copy construction of an allocating container";
  }
  if (Site == nullptr)
    return;
  const SourceManager &SM = *Result.SourceManager;
  SourceLocation Loc = Site->getBeginLoc();
  std::string File = NormalizedFile(SM, Loc);
  if (!InAnyDir(File, HotDirs))
    return;
  if (SM.isInSystemHeader(SM.getExpansionLoc(Loc)))
    return;
  // Compiler-generated members (defaulted copy constructors of structs
  // holding containers) diagnose at the class head — skip them; the
  // human-written copy *call site* is what matters.
  const FunctionDecl *FD = NearestEnclosingFunction(*Result.Context, Site);
  if (FD != nullptr && (FD->isImplicit() || FD->isDefaulted()))
    return;
  if (HasEscapeComment(SM, Loc, "alloc-exempt:", kCommentLookback))
    return;
  diag(Loc,
       "heap allocation on the scan hot path: %0; use the arena, hoist it "
       "out of the per-tuple path, or annotate '// alloc-exempt: <reason>'")
      << What;
}

}  // namespace clang::tidy::qppt
