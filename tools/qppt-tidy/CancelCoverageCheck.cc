#include "CancelCoverageCheck.h"

#include "QpptTidyUtils.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/Stmt.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

namespace clang::tidy::qppt {

using namespace ast_matchers;

namespace {

constexpr char kDefaultHotDirs[] = "src/core/operators;src/engine;src/index";
constexpr unsigned kCommentLookback = 3;

// True when the function body mentions any cancellation source — the
// precondition for demanding a poll. A helper with no CancelToken /
// ExecContext / MorselSite in scope *cannot* poll; its caller owns the
// obligation instead.
bool MentionsCancelSource(const Stmt *S) {
  if (S == nullptr)
    return false;
  if (const auto *E = llvm::dyn_cast<Expr>(S)) {
    if (TypeMentionsAny(E->getType(), {"CancelToken", "CancelTicker",
                                       "ExecContext", "MorselSite"}))
      return true;
  }
  if (const auto *DS = llvm::dyn_cast<DeclStmt>(S)) {
    for (const Decl *D : DS->decls()) {
      if (const auto *VD = llvm::dyn_cast<VarDecl>(D)) {
        if (TypeMentionsAny(VD->getType(), {"CancelToken", "CancelTicker",
                                            "ExecContext", "MorselSite"}))
          return true;
      }
    }
  }
  for (const Stmt *C : S->children()) {
    if (MentionsCancelSource(C))
      return true;
  }
  return false;
}

// True when the subtree polls cancellation: a Tick/Check/
// cancel_requested member call on a Cancel* object, an
// ExecContext::CheckCancelled call, or a call into any function taking
// a MorselSite (the parallel drivers poll once per morsel).
bool PollsCancellation(const Stmt *S) {
  if (S == nullptr)
    return false;
  if (const auto *MC = llvm::dyn_cast<CXXMemberCallExpr>(S)) {
    if (const CXXMethodDecl *MD = MC->getMethodDecl()) {
      StringRef Name =
          MD->getDeclName().isIdentifier() ? MD->getName() : StringRef();
      if (Name == "CheckCancelled")
        return true;
      if (Name == "Tick" || Name == "Check" || Name == "cancel_requested") {
        const Expr *Obj = MC->getImplicitObjectArgument();
        if (Obj != nullptr && TypeMentionsAny(Obj->getType(), {"Cancel"}))
          return true;
      }
    }
  }
  if (const auto *CE = llvm::dyn_cast<CallExpr>(S)) {
    if (const FunctionDecl *FD = CE->getDirectCallee()) {
      for (const ParmVarDecl *P : FD->parameters()) {
        if (TypeMentionsAny(P->getType(), {"MorselSite"}))
          return true;
      }
    }
  }
  for (const Stmt *C : S->children()) {
    if (PollsCancellation(C))
      return true;
  }
  return false;
}

}  // namespace

CancelCoverageCheck::CancelCoverageCheck(StringRef Name,
                                         ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      RawHotDirs(Options.get("HotDirs", kDefaultHotDirs)),
      HotDirs(ParseSemiList(RawHotDirs)) {}

void CancelCoverageCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "HotDirs", RawHotDirs);
}

void CancelCoverageCheck::registerMatchers(MatchFinder *Finder) {
  // The synchronous tree-scan primitives (core/sync_scan.h and the
  // index accessors): each one hides an input-sized loop behind one
  // call, so an unpolled call site is an unpolled loop.
  auto ScanCall =
      callExpr(callee(functionDecl(hasAnyName(
                   "SynchronousScan", "SynchronousScanRange",
                   "SynchronousScanPairSlots", "ScanAll", "ScanGroups",
                   "ForEachMatch"))))
          .bind("site");
  Finder->addMatcher(ScanCall, this);

  // Nested hand-written loops: the outer head of any loop that contains
  // another loop — the shape of every quadratic-or-worse tuple walk.
  auto AnyLoop =
      stmt(anyOf(forStmt(), whileStmt(), doStmt(), cxxForRangeStmt()));
  Finder->addMatcher(forStmt(hasDescendant(AnyLoop)).bind("site"), this);
  Finder->addMatcher(whileStmt(hasDescendant(AnyLoop)).bind("site"), this);
  Finder->addMatcher(doStmt(hasDescendant(AnyLoop)).bind("site"), this);
  Finder->addMatcher(cxxForRangeStmt(hasDescendant(AnyLoop)).bind("site"),
                     this);
}

void CancelCoverageCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Site = Result.Nodes.getNodeAs<Stmt>("site");
  if (Site == nullptr)
    return;
  const SourceManager &SM = *Result.SourceManager;
  SourceLocation Loc = Site->getBeginLoc();
  if (!InAnyDir(NormalizedFile(SM, Loc), HotDirs))
    return;
  if (HasEscapeComment(SM, Loc, "cancel-exempt:", kCommentLookback))
    return;
  const FunctionDecl *F = EnclosingNonLambdaFunction(*Result.Context, Site);
  if (F == nullptr || !F->hasBody() || F->isImplicit())
    return;
  const Stmt *Body = F->getBody();
  bool HasAccess = MentionsCancelSource(Body);
  for (const ParmVarDecl *P : F->parameters()) {
    HasAccess = HasAccess ||
                TypeMentionsAny(P->getType(), {"CancelToken", "CancelTicker",
                                               "ExecContext", "MorselSite"});
  }
  if (!HasAccess)
    return;  // no cancel source in scope — the caller owns the poll
  if (PollsCancellation(Body))
    return;
  diag(Loc,
       "scan work in %0 never polls cancellation although the function "
       "reaches a cancel source; add a CancelTicker::Tick / "
       "CancelToken::Check in the loop (or a MorselSite driver), or "
       "annotate '// cancel-exempt: <reason>'")
      << F;
}

}  // namespace clang::tidy::qppt
