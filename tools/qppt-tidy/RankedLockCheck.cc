#include "RankedLockCheck.h"

#include <fstream>

#include "QpptTidyUtils.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

namespace clang::tidy::qppt {

using namespace ast_matchers;

namespace {

constexpr unsigned kCommentLookback = 5;  // the reason is often multi-line

std::set<std::string> LoadRegistry(const std::string &Path) {
  std::set<std::string> Names;
  if (Path.empty())
    return Names;
  std::ifstream In(Path);
  std::string Line;
  while (std::getline(In, Line)) {
    // Trim; '#' starts a comment. Names may contain spaces (anonymous
    // namespaces print as "(anonymous namespace)"), so everything up to
    // a comment or trailing whitespace is the name.
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line = Line.substr(0, Hash);
    size_t B = Line.find_first_not_of(" \t\r");
    if (B == std::string::npos)
      continue;
    size_t E = Line.find_last_not_of(" \t\r");
    Names.insert(Line.substr(B, E - B + 1));
  }
  return Names;
}

// The mutex-valued declaration a guard argument names, seen through
// parens, implicit casts, address-of/deref, and unique_ptr's operator*
// (the lazily-created arena mutexes are held by unique_ptr). A call
// resolves to its callee so accessor-returned mutexes (e.g.
// Database::write_mutex()) register under the accessor's name.
const NamedDecl *ReferencedMutexDecl(const Expr *E) {
  if (E == nullptr)
    return nullptr;
  E = E->IgnoreParenImpCasts();
  if (const auto *UO = llvm::dyn_cast<UnaryOperator>(E)) {
    if (UO->getOpcode() == UO_Deref || UO->getOpcode() == UO_AddrOf)
      return ReferencedMutexDecl(UO->getSubExpr());
  }
  if (const auto *OC = llvm::dyn_cast<CXXOperatorCallExpr>(E)) {
    if (OC->getOperator() == OO_Star && OC->getNumArgs() == 1)
      return ReferencedMutexDecl(OC->getArg(0));
  }
  if (const auto *ME = llvm::dyn_cast<MemberExpr>(E))
    return ME->getMemberDecl();
  if (const auto *DRE = llvm::dyn_cast<DeclRefExpr>(E))
    return DRE->getDecl();
  if (const auto *CE = llvm::dyn_cast<CallExpr>(E))
    return CE->getDirectCallee();
  return nullptr;
}

}  // namespace

RankedLockCheck::RankedLockCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      RankedMutexFile(Options.get("RankedMutexFile", "")),
      RankedMutexes(LoadRegistry(RankedMutexFile)) {}

void RankedLockCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "RankedMutexFile", RankedMutexFile);
}

void RankedLockCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      varDecl(hasType(hasCanonicalType(hasDeclaration(
                  namedDecl(hasAnyName("::std::lock_guard",
                                       "::std::unique_lock",
                                       "::std::scoped_lock"))))),
              hasInitializer(expr()))
          .bind("guard"),
      this);
}

void RankedLockCheck::check(const MatchFinder::MatchResult &Result) {
  if (RankedMutexes.empty())
    return;
  const auto *Guard = Result.Nodes.getNodeAs<VarDecl>("guard");
  if (Guard == nullptr || Guard->getInit() == nullptr)
    return;
  const auto *Ctor = llvm::dyn_cast<CXXConstructExpr>(
      Guard->getInit()->IgnoreImplicit());
  if (Ctor == nullptr)
    return;
  for (unsigned I = 0; I < Ctor->getNumArgs(); ++I) {
    const NamedDecl *Mutex = ReferencedMutexDecl(Ctor->getArg(I));
    if (Mutex == nullptr)
      continue;
    if (RankedMutexes.count(Mutex->getQualifiedNameAsString()) == 0)
      continue;
    const SourceManager &SM = *Result.SourceManager;
    SourceLocation Loc = Guard->getBeginLoc();
    if (HasEscapeComment(SM, Loc, "lock-rank: manual", kCommentLookback))
      return;
    diag(Loc,
         "%0 is rank-registered (src/dbg/lock_rank.h) but locked through "
         "a raw std guard, bypassing deadlock-order enforcement; use "
         "dbg::RankedLockGuard / dbg::RankedUniqueLock, or annotate "
         "'// lock-rank: manual — <reason>'")
        << Mutex;
    return;
  }
}

}  // namespace clang::tidy::qppt
