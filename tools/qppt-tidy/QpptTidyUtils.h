// Shared helpers for the qppt-* clang-tidy checks: escape-comment
// lookback (the same contract the regex lint used — a marker on the
// flagged line or within N lines above it), hot-directory path
// filtering, and enclosing-function climbs that skip lambdas.
//
// Kept header-only so every check .cc stays a single translation unit
// next to its class.

#ifndef QPPT_TIDY_QPPT_TIDY_UTILS_H_
#define QPPT_TIDY_QPPT_TIDY_UTILS_H_

#include <algorithm>
#include <string>
#include <vector>

#include "clang/AST/ASTContext.h"
#include "clang/AST/ASTTypeTraits.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

namespace clang::tidy::qppt {

// True when `Marker` appears on the line holding `Loc` or within
// `Lookback` lines above it — the escape-comment contract shared with
// scripts/analyze/qppt_lint.py (COMMENT_LOOKBACK).
inline bool HasEscapeComment(const SourceManager &SM, SourceLocation Loc,
                             llvm::StringRef Marker, unsigned Lookback) {
  if (Loc.isInvalid())
    return false;
  Loc = SM.getExpansionLoc(Loc);
  bool Invalid = false;
  llvm::StringRef Buf = SM.getBufferData(SM.getFileID(Loc), &Invalid);
  if (Invalid)
    return false;
  unsigned Line = SM.getExpansionLineNumber(Loc);  // 1-based
  llvm::SmallVector<llvm::StringRef, 0> Lines;
  Buf.split(Lines, '\n');
  unsigned Begin = Line > Lookback + 1 ? Line - Lookback - 1 : 0;
  for (unsigned I = Begin; I < Line && I < Lines.size(); ++I) {
    if (Lines[I].contains(Marker))
      return true;
  }
  return false;
}

// Expansion-location file name with forward slashes (so the hot-dir
// substring filters below behave identically on every host).
inline std::string NormalizedFile(const SourceManager &SM,
                                  SourceLocation Loc) {
  if (Loc.isInvalid())
    return std::string();
  std::string S = SM.getFilename(SM.getExpansionLoc(Loc)).str();
  std::replace(S.begin(), S.end(), '\\', '/');
  return S;
}

// Splits a semicolon-separated option value ("src/index;src/engine")
// into its non-empty components.
inline std::vector<std::string> ParseSemiList(llvm::StringRef Raw) {
  std::vector<std::string> Out;
  llvm::SmallVector<llvm::StringRef, 8> Parts;
  Raw.split(Parts, ';', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
  for (llvm::StringRef P : Parts)
    Out.push_back(P.trim().str());
  return Out;
}

// True when `File` lives under any of `Dirs` (substring match on the
// normalized path). An empty dir list means "everywhere" — the fixture
// corpus uses that to exercise checks outside the real hot dirs.
inline bool InAnyDir(llvm::StringRef File,
                     const std::vector<std::string> &Dirs) {
  if (Dirs.empty())
    return true;
  for (const std::string &D : Dirs) {
    if (File.contains(D))
      return true;
  }
  return false;
}

// Outermost enclosing function that is not a lambda call operator: the
// unit at which cancellation coverage is judged (a per-tuple callback
// lambda polls on behalf of the operator function that owns it).
inline const FunctionDecl *EnclosingNonLambdaFunction(ASTContext &Ctx,
                                                      const Stmt *S) {
  const FunctionDecl *Best = nullptr;
  DynTypedNode Node = DynTypedNode::create(*S);
  for (;;) {
    auto Parents = Ctx.getParents(Node);
    if (Parents.empty())
      break;
    Node = Parents[0];
    if (const auto *FD = Node.get<FunctionDecl>()) {
      const auto *MD = llvm::dyn_cast<CXXMethodDecl>(FD);
      bool IsLambda = MD != nullptr && MD->getParent()->isLambda();
      if (!IsLambda)
        Best = FD;
    }
  }
  return Best;
}

// Nearest enclosing function of any kind (lambdas included) — used to
// suppress diagnostics inside compiler-generated functions such as
// defaulted copy constructors.
inline const FunctionDecl *NearestEnclosingFunction(ASTContext &Ctx,
                                                    const Stmt *S) {
  DynTypedNode Node = DynTypedNode::create(*S);
  for (;;) {
    auto Parents = Ctx.getParents(Node);
    if (Parents.empty())
      break;
    Node = Parents[0];
    if (const auto *FD = Node.get<FunctionDecl>())
      return FD;
  }
  return nullptr;
}

// True when the canonical spelling of `T` mentions any of `Names` —
// a deliberately string-level test so pointers, references, and
// const-qualified forms of the interesting types all register.
inline bool TypeMentionsAny(QualType T,
                            std::initializer_list<llvm::StringRef> Names) {
  if (T.isNull())
    return false;
  std::string S = T.getCanonicalType().getAsString();
  for (llvm::StringRef N : Names) {
    if (llvm::StringRef(S).contains(N))
      return true;
  }
  return false;
}

}  // namespace clang::tidy::qppt

#endif  // QPPT_TIDY_QPPT_TIDY_UTILS_H_
