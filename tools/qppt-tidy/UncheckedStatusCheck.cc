#include "UncheckedStatusCheck.h"

#include "clang/AST/Expr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

namespace clang::tidy::qppt {

using namespace ast_matchers;

void UncheckedStatusCheck::registerMatchers(MatchFinder *Finder) {
  // Any call (free, member, or operator) whose declared return type
  // canonically is qppt::Status or a qppt::Result<T> specialization.
  // hasCanonicalType sees through `using` aliases and typedef sugar.
  auto StatusReturningCall =
      callExpr(callee(functionDecl(returns(hasCanonicalType(
                   hasDeclaration(namedDecl(hasAnyName(
                       "::qppt::Status", "::qppt::Result"))))))))
          .bind("call");

  // The discarded-value positions, mirroring bugprone-unused-return-value:
  // a statement context where the full expression's value is dropped.
  // ignoringImplicit strips the ExprWithCleanups / CXXBindTemporaryExpr
  // wrappers the Status destructor induces; an explicit `(void)` cast is
  // NOT implicit, so sanctioned discards stay unmatched.
  auto Discarded =
      expr(ignoringImplicit(ignoringParenImpCasts(StatusReturningCall)));

  Finder->addMatcher(
      stmt(anyOf(compoundStmt(forEach(Discarded)),
                 ifStmt(eachOf(hasThen(Discarded), hasElse(Discarded))),
                 whileStmt(hasBody(Discarded)), doStmt(hasBody(Discarded)),
                 forStmt(eachOf(hasLoopInit(Discarded),
                                hasIncrement(Discarded), hasBody(Discarded))),
                 cxxForRangeStmt(hasBody(Discarded)),
                 switchCase(forEach(Discarded)))),
      this);
}

void UncheckedStatusCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Call = Result.Nodes.getNodeAs<CallExpr>("call");
  if (Call == nullptr)
    return;
  const FunctionDecl *Callee = Call->getDirectCallee();
  if (Callee != nullptr) {
    diag(Call->getBeginLoc(),
         "qppt::Status/Result returned by %0 is discarded; check it, wrap "
         "it in QPPT_RETURN_NOT_OK, or cast to void with a reason")
        << Callee;
  } else {
    diag(Call->getBeginLoc(),
         "qppt::Status/Result return value is discarded; check it, wrap it "
         "in QPPT_RETURN_NOT_OK, or cast to void with a reason");
  }
}

}  // namespace clang::tidy::qppt
