// The qppt-tidy plugin module: registers the five repo-specific checks
// under the qppt- prefix. Loaded out-of-tree:
//
//   clang-tidy -load build/tools/qppt-tidy/libqppt-tidy.so \
//              -checks='-*,qppt-*' -p build <file>...
//
// scripts/analyze/run_qppt_tidy.py wraps this invocation (full
// compile-database sweep and fixture-corpus modes).

#include "AtomicsDisciplineCheck.h"
#include "CancelCoverageCheck.h"
#include "HotPathAllocCheck.h"
#include "RankedLockCheck.h"
#include "UncheckedStatusCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace clang::tidy {
namespace qppt {

class QpptTidyModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories &CheckFactories) override {
    CheckFactories.registerCheck<UncheckedStatusCheck>(
        "qppt-unchecked-status");
    CheckFactories.registerCheck<CancelCoverageCheck>(
        "qppt-cancel-coverage");
    CheckFactories.registerCheck<RankedLockCheck>("qppt-ranked-lock");
    CheckFactories.registerCheck<AtomicsDisciplineCheck>(
        "qppt-atomics-discipline");
    CheckFactories.registerCheck<HotPathAllocCheck>("qppt-hot-path-alloc");
  }
};

}  // namespace qppt

static ClangTidyModuleRegistry::Add<qppt::QpptTidyModule>
    X("qppt-module", "Adds the qppt engine-invariant checks.");

// Referenced so the translation unit is never dead-stripped from the
// plugin shared object.
volatile int QpptTidyModuleAnchorSource = 0;

}  // namespace clang::tidy
