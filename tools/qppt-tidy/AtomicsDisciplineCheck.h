// qppt-atomics-discipline: AST-accurate enforcement of the repo's
// memory-ordering annotation contract (the regex version lives in
// scripts/analyze/qppt_lint.py and can be fooled by aliases, wrappers,
// and line breaks — this check evaluates the actual memory_order
// argument):
//
//  * a memory_order_relaxed operation needs `// relaxed: <why>` on the
//    line or within 3 lines above — every relaxed access must say why
//    relaxation is sound;
//  * a memory_order_release operation (the store side of a
//    release/acquire edge) needs `pairs-with: <tag>` naming an entry in
//    the pairing catalogue (scripts/analyze/atomics_pairs.txt via the
//    PairsFile option) so each edge's acquire side is documented.
//
// Orders are recovered by constant-evaluating the argument, so
// `std::memory_order::relaxed`, named constants, and aliases all
// resolve correctly.

#ifndef QPPT_TIDY_ATOMICS_DISCIPLINE_CHECK_H_
#define QPPT_TIDY_ATOMICS_DISCIPLINE_CHECK_H_

#include <set>
#include <string>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::qppt {

class AtomicsDisciplineCheck : public ClangTidyCheck {
 public:
  AtomicsDisciplineCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  const std::string PairsFile;
  std::set<std::string> KnownTags;  // empty PairsFile = any tag accepted
};

}  // namespace clang::tidy::qppt

#endif  // QPPT_TIDY_ATOMICS_DISCIPLINE_CHECK_H_
