// qppt-hot-path-alloc: the engine's hot directories (src/index,
// src/core/operators) are arena-only territory — per-tuple heap
// allocation is the single biggest scan-throughput killer the paper's
// design avoids. The regex lint bans literal `new`/`malloc` tokens;
// this check catches what regexes cannot see:
//
//  * non-placement operator new (however spelled), while arena
//    placement-new stays allowed;
//  * implicit std::function construction — a capturing lambda that
//    crosses a std::function boundary heap-allocates its closure;
//  * copy construction of allocating containers (vector, string, maps,
//    sets, deque) — an innocent-looking `auto v = other.values()` that
//    deep-copies on the scan path.
//
// Setup-time allocations that are genuinely O(schema), not O(tuples),
// annotate `// alloc-exempt: <reason>` within 3 lines above.

#ifndef QPPT_TIDY_HOT_PATH_ALLOC_CHECK_H_
#define QPPT_TIDY_HOT_PATH_ALLOC_CHECK_H_

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::qppt {

class HotPathAllocCheck : public ClangTidyCheck {
 public:
  HotPathAllocCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  const std::string RawHotDirs;
  std::vector<std::string> HotDirs;
};

}  // namespace clang::tidy::qppt

#endif  // QPPT_TIDY_HOT_PATH_ALLOC_CHECK_H_
