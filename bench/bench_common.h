// Shared helpers for the figure-reproduction benchmark binaries.

#ifndef QPPT_BENCH_BENCH_COMMON_H_
#define QPPT_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/stats.h"
#include "ssb/dbgen.h"
#include "util/env.h"

namespace qppt::bench {

// Scale factor for the SSB figure benches. The paper uses SF=15 on a
// 32 GB machine; the default here is laptop/CI-friendly and overridable:
//   QPPT_SSB_SF=1 ./bench_fig7_ssb
inline double SsbScaleFactor() {
  return GetEnvDouble("QPPT_SSB_SF", 0.1);
}

inline int Repetitions() {
  return static_cast<int>(GetEnvInt64("QPPT_BENCH_REPS", 3));
}

inline std::unique_ptr<ssb::SsbData> LoadSsb(bool build_indexes = true) {
  ssb::SsbConfig cfg;
  cfg.scale_factor = SsbScaleFactor();
  cfg.seed = 42;
  cfg.build_indexes = build_indexes;
  auto data = ssb::Generate(cfg);
  if (!data.ok()) {
    std::fprintf(stderr, "SSB generation failed: %s\n",
                 data.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(data).value();
}

// Runs `fn` `reps` times and returns the *minimum* wall time in ms (the
// usual noise-robust choice for single-threaded benches).
template <typename F>
double MinWallMs(int reps, F&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    double ms = t.ElapsedMs();
    if (ms < best) best = ms;
  }
  return best;
}

// ---- shared throughput/latency reporting -------------------------------------
//
// One row format shared by the parallel/engine benches
// (bench_ablation_parallel, bench_engine_throughput), so thread-scaling
// numbers stay comparable across binaries:
//
//   bench                config          n   wall_ms       qps   p50_ms   p99_ms  morsels

// Per-query latency samples with percentile extraction.
class LatencyRecorder {
 public:
  void Add(double ms) { samples_ms_.push_back(ms); }
  void Merge(const LatencyRecorder& other) {
    samples_ms_.insert(samples_ms_.end(), other.samples_ms_.begin(),
                       other.samples_ms_.end());
  }
  size_t count() const { return samples_ms_.size(); }

  // p in [0, 100]; nearest-rank on the sorted samples.
  double Percentile(double p) const {
    if (samples_ms_.empty()) return 0;
    std::vector<double> sorted = samples_ms_;
    std::sort(sorted.begin(), sorted.end());
    size_t rank = static_cast<size_t>(p / 100.0 *
                                      static_cast<double>(sorted.size()));
    if (rank >= sorted.size()) rank = sorted.size() - 1;
    return sorted[rank];
  }

 private:
  std::vector<double> samples_ms_;
};

inline void PrintThroughputHeader() {
  std::printf("%-20s %-14s %6s %9s %9s %8s %8s %8s\n", "bench", "config",
              "n", "wall_ms", "qps", "p50_ms", "p99_ms", "morsels");
}

inline void PrintThroughputRow(const std::string& bench,
                               const std::string& config, size_t n,
                               double wall_ms, const LatencyRecorder& lat,
                               uint64_t morsels) {
  double qps = wall_ms > 0 ? 1000.0 * static_cast<double>(n) / wall_ms : 0;
  std::printf("%-20s %-14s %6zu %9.2f %9.1f %8.2f %8.2f %8llu\n",
              bench.c_str(), config.c_str(), n, wall_ms, qps,
              lat.Percentile(50), lat.Percentile(99),
              static_cast<unsigned long long>(morsels));
}

}  // namespace qppt::bench

#endif  // QPPT_BENCH_BENCH_COMMON_H_
