// Shared helpers for the figure-reproduction benchmark binaries.

#ifndef QPPT_BENCH_BENCH_COMMON_H_
#define QPPT_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>

#include "core/stats.h"
#include "ssb/dbgen.h"
#include "util/env.h"

namespace qppt::bench {

// Scale factor for the SSB figure benches. The paper uses SF=15 on a
// 32 GB machine; the default here is laptop/CI-friendly and overridable:
//   QPPT_SSB_SF=1 ./bench_fig7_ssb
inline double SsbScaleFactor() {
  return GetEnvDouble("QPPT_SSB_SF", 0.1);
}

inline int Repetitions() {
  return static_cast<int>(GetEnvInt64("QPPT_BENCH_REPS", 3));
}

inline std::unique_ptr<ssb::SsbData> LoadSsb(bool build_indexes = true) {
  ssb::SsbConfig cfg;
  cfg.scale_factor = SsbScaleFactor();
  cfg.seed = 42;
  cfg.build_indexes = build_indexes;
  auto data = ssb::Generate(cfg);
  if (!data.ok()) {
    std::fprintf(stderr, "SSB generation failed: %s\n",
                 data.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(data).value();
}

// Runs `fn` `reps` times and returns the *minimum* wall time in ms (the
// usual noise-robust choice for single-threaded benches).
template <typename F>
double MinWallMs(int reps, F&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    double ms = t.ElapsedMs();
    if (ms < best) best = ms;
  }
  return best;
}

}  // namespace qppt::bench

#endif  // QPPT_BENCH_BENCH_COMMON_H_
