// Shared helpers for the figure-reproduction benchmark binaries.

#ifndef QPPT_BENCH_BENCH_COMMON_H_
#define QPPT_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/stats.h"
#include "ssb/dbgen.h"
#include "util/env.h"

namespace qppt::bench {

// Scale factor for the SSB figure benches. The paper uses SF=15 on a
// 32 GB machine; the default here is laptop/CI-friendly and overridable:
//   QPPT_SSB_SF=1 ./bench_fig7_ssb
inline double SsbScaleFactor() {
  return GetEnvDouble("QPPT_SSB_SF", 0.1);
}

inline int Repetitions() {
  return static_cast<int>(GetEnvInt64("QPPT_BENCH_REPS", 3));
}

inline std::unique_ptr<ssb::SsbData> LoadSsb(bool build_indexes = true) {
  ssb::SsbConfig cfg;
  cfg.scale_factor = SsbScaleFactor();
  cfg.seed = 42;
  cfg.build_indexes = build_indexes;
  // QPPT_PREFER_KISS=0 builds the base-index pool with generalized
  // prefix trees, steering the flight through the prefix-tree and
  // mixed-family star-join paths.
  cfg.prefer_kiss = GetEnvInt64("QPPT_PREFER_KISS", 1) != 0;
  auto data = ssb::Generate(cfg);
  if (!data.ok()) {
    std::fprintf(stderr, "SSB generation failed: %s\n",
                 data.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(data).value();
}

// Runs `fn` `reps` times and returns the *minimum* wall time in ms (the
// usual noise-robust choice for single-threaded benches).
template <typename F>
double MinWallMs(int reps, F&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    double ms = t.ElapsedMs();
    if (ms < best) best = ms;
  }
  return best;
}

// ---- shared throughput/latency reporting -------------------------------------
//
// One row format shared by the parallel/engine benches
// (bench_ablation_parallel, bench_engine_throughput), so thread-scaling
// numbers stay comparable across binaries:
//
//   bench                config          n   wall_ms       qps   p50_ms   p99_ms  morsels

// Per-query latency samples with percentile extraction.
class LatencyRecorder {
 public:
  void Add(double ms) { samples_ms_.push_back(ms); }
  void Merge(const LatencyRecorder& other) {
    samples_ms_.insert(samples_ms_.end(), other.samples_ms_.begin(),
                       other.samples_ms_.end());
  }
  size_t count() const { return samples_ms_.size(); }

  // p in [0, 100]; nearest-rank on the sorted samples.
  double Percentile(double p) const {
    if (samples_ms_.empty()) return 0;
    std::vector<double> sorted = samples_ms_;
    std::sort(sorted.begin(), sorted.end());
    size_t rank = static_cast<size_t>(p / 100.0 *
                                      static_cast<double>(sorted.size()));
    if (rank >= sorted.size()) rank = sorted.size() - 1;
    return sorted[rank];
  }

 private:
  std::vector<double> samples_ms_;
};

inline void PrintThroughputHeader() {
  std::printf("%-20s %-14s %6s %9s %9s %8s %8s %8s\n", "bench", "config",
              "n", "wall_ms", "qps", "p50_ms", "p99_ms", "morsels");
}

inline void PrintThroughputRow(const std::string& bench,
                               const std::string& config, size_t n,
                               double wall_ms, const LatencyRecorder& lat,
                               uint64_t morsels) {
  double qps = wall_ms > 0 ? 1000.0 * static_cast<double>(n) / wall_ms : 0;
  std::printf("%-20s %-14s %6zu %9.2f %9.1f %8.2f %8.2f %8llu\n",
              bench.c_str(), config.c_str(), n, wall_ms, qps,
              lat.Percentile(50), lat.Percentile(99),
              static_cast<unsigned long long>(morsels));
}

// Default engine worker count for the throughput benches: every hardware
// thread (NOT a fixed 8 — oversubscribing a 1-vCPU box costs ~8%),
// overridable with QPPT_ENGINE_THREADS.
inline size_t EngineThreads() {
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return static_cast<size_t>(
      GetEnvInt64("QPPT_ENGINE_THREADS", static_cast<int64_t>(hw)));
}

// ---- machine-readable bench output (--json) ----------------------------------
//
// Passing `--json` to a bench binary mirrors its reported rows into
// BENCH_engine.json (path overridable with QPPT_BENCH_JSON_PATH) as a
// JSON array of flat objects:
//
//   {"bench": "flight", "config": "t=8", "query": "1.1", "threads": 8,
//    "n": 1, "wall_ms": 1.42, "qps": 0, "p50_ms": 0, "p99_ms": 0,
//    "morsels": 12, "merge_wall_ms": 0.31}
//
// so the perf trajectory stays machine-diffable across PRs (CI uploads
// the file as an artifact). Field values are controlled identifiers and
// numbers — no JSON string escaping is needed or performed.
//
// The first array element is a `_meta` row identifying the run
// (hardware threads, build type, git describe, UTC timestamp), so an
// artifact downloaded months later still says which build produced it.
class JsonReport {
 public:
  struct Row {
    std::string bench;
    std::string config;
    std::string query;  // empty for aggregate rows
    size_t threads = 1;
    size_t n = 0;
    double wall_ms = 0;
    double qps = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    uint64_t morsels = 0;
    double merge_wall_ms = 0;
  };

  // `default_path` keeps each binary's rows in its own file so two
  // benches run in the same directory never silently clobber each other;
  // QPPT_BENCH_JSON_PATH overrides.
  JsonReport(int argc, char** argv,
             const char* default_path = "BENCH_engine.json") {
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--json") enabled_ = true;
    }
    path_ = GetEnvString("QPPT_BENCH_JSON_PATH", default_path);
  }
  ~JsonReport() { Write(); }
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  bool enabled() const { return enabled_; }
  void Add(Row row) {
    if (enabled_) rows_.push_back(std::move(row));
  }

  void Write() {
    if (!enabled_ || written_) return;
    written_ = true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::perror(("JsonReport: cannot open " + path_).c_str());
      return;
    }
    std::fprintf(f, "[\n");
    unsigned hw = std::thread::hardware_concurrency();
    char stamp[32] = "unknown";
    std::time_t now = std::time(nullptr);
    std::tm utc{};
    if (gmtime_r(&now, &utc) != nullptr) {
      std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
    }
#ifndef QPPT_GIT_DESCRIBE
#define QPPT_GIT_DESCRIBE "unknown"
#endif
#ifndef QPPT_BUILD_TYPE
#define QPPT_BUILD_TYPE "unknown"
#endif
    std::fprintf(f,
                 "  {\"_meta\": true, \"hardware_threads\": %u, "
                 "\"build_type\": \"%s\", \"git\": \"%s\", "
                 "\"timestamp\": \"%s\"}%s\n",
                 hw, QPPT_BUILD_TYPE, QPPT_GIT_DESCRIBE, stamp,
                 rows_.empty() ? "" : ",");
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(
          f,
          "  {\"bench\": \"%s\", \"config\": \"%s\", \"query\": \"%s\", "
          "\"threads\": %zu, \"n\": %zu, \"wall_ms\": %.4f, \"qps\": %.2f, "
          "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"morsels\": %llu, "
          "\"merge_wall_ms\": %.4f}%s\n",
          r.bench.c_str(), r.config.c_str(), r.query.c_str(), r.threads,
          r.n, r.wall_ms, r.qps, r.p50_ms, r.p99_ms,
          static_cast<unsigned long long>(r.morsels), r.merge_wall_ms,
          i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("(wrote %zu bench rows to %s)\n", rows_.size(),
                path_.c_str());
  }

 private:
  bool enabled_ = false;
  bool written_ = false;
  std::string path_;
  std::vector<Row> rows_;
};

}  // namespace qppt::bench

#endif  // QPPT_BENCH_BENCH_COMMON_H_
