// E5 — Figure 9: SSB Q4.1 under different multi-way/star join
// compositions.
//
// The paper's six bars: MonetDB 7902 ms, commercial DBMS 1845 ms,
// DexterDB 5-way 842 ms, 4-way 1091 ms, 3-way 1595 ms, 2-way 4939 ms.
// Expected shape: 2-way worst (three materialized intermediates), the
// 2-way -> 3-way step the largest win (it removes the largest
// intermediate), diminishing returns after.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "ssb/queries_baseline.h"
#include "ssb/queries_qppt.h"

int main() {
  using namespace qppt;
  using namespace qppt::bench;

  auto data = LoadSsb();
  int reps = Repetitions();
  std::printf("SSB Q4.1 multi-way/star join configurations (SF=%.2f, min "
              "of %d reps)\n\n",
              data->config.scale_factor, reps);

  double column_ms = MinWallMs(reps, [&] {
    auto r = ssb::RunColumn(*data, "4.1");
    if (!r.ok()) std::exit(1);
  });
  double vector_ms = MinWallMs(reps, [&] {
    auto r = ssb::RunVector(*data, "4.1");
    if (!r.ok()) std::exit(1);
  });

  std::printf("%-32s %12s\n", "configuration", "time [ms]");
  std::printf("%-32s %12.2f\n", "MonetDB (column engine)", column_ms);
  std::printf("%-32s %12.2f\n", "Commercial (vector engine)", vector_ms);
  for (int ways : {5, 4, 3, 2}) {
    PlanKnobs knobs;
    knobs.max_join_ways = ways;
    double ms = MinWallMs(reps, [&] {
      auto r = ssb::RunQppt(*data, "4.1", knobs);
      if (!r.ok()) {
        std::fprintf(stderr, "Q4.1 (%d-way) failed\n", ways);
        std::exit(1);
      }
    });
    std::printf("DexterDB %d-way join %s %12.2f\n", ways,
                std::string(13, ' ').c_str(), ms);
  }
  return 0;
}
