// E1 — Figure 3(a): insert/update performance of prefix-tree structures
// vs. hash tables.
//
// Workload (§2.5): upsert keys picked uniformly at random from a dense
// sequential range of size N. Series: PT4 (generalized prefix tree,
// k'=4), GLIB (chained hash table), BOOST (open-addressing hash table),
// KISS (uncompressed KISS-Tree), KISS Batched (§2.3 batch upserts).
// The paper reports time per key at N = 1M/16M/64M; default sizes here
// are 1M/4M/16M (set QPPT_FIG3_MAX_SHIFT=26 for the 64M point).

#include <algorithm>
#include <benchmark/benchmark.h>
#include <cstdint>
#include <vector>

#include "bench_common.h"
#include "index/chained_hash_table.h"
#include "index/key_encoder.h"
#include "index/kiss_tree.h"
#include "index/open_hash_table.h"
#include "index/prefix_tree.h"
#include "util/rng.h"

namespace qppt {
namespace {

std::vector<uint32_t> RandomKeys(size_t n) {
  Rng rng(2024);
  std::vector<uint32_t> keys(n);
  for (auto& k : keys) {
    k = static_cast<uint32_t>(rng.NextBounded(n));  // dense sequential range
  }
  return keys;
}

void ReportPerKey(benchmark::State& state, size_t n) {
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.counters["keys"] = static_cast<double>(n);
}

void BM_Insert_PT4(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto keys = RandomKeys(n);
  for (auto _ : state) {
    PrefixTree tree({.key_len = 4, .kprime = 4});
    KeyBuf buf;
    for (uint32_t k : keys) {
      buf.clear();
      buf.AppendU32(k);
      tree.Upsert(buf.data(), k);
    }
    benchmark::DoNotOptimize(tree.num_keys());
  }
  ReportPerKey(state, n);
}

void BM_Insert_GLIB(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto keys = RandomKeys(n);
  for (auto _ : state) {
    ChainedHashTable table;
    for (uint32_t k : keys) table.Upsert(k, k);
    benchmark::DoNotOptimize(table.size());
  }
  ReportPerKey(state, n);
}

void BM_Insert_BOOST(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto keys = RandomKeys(n);
  for (auto _ : state) {
    OpenHashTable table;
    for (uint32_t k : keys) table.Upsert(k, k);
    benchmark::DoNotOptimize(table.size());
  }
  ReportPerKey(state, n);
}

void BM_Insert_KISS(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto keys = RandomKeys(n);
  for (auto _ : state) {
    KissTree tree;
    for (uint32_t k : keys) tree.Upsert(k, k);
    benchmark::DoNotOptimize(tree.num_keys());
  }
  ReportPerKey(state, n);
}

void BM_Insert_KISS_Batched(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto keys = RandomKeys(n);
  constexpr size_t kBatch = 512;
  for (auto _ : state) {
    KissTree tree;
    std::vector<KissTree::UpsertJob> jobs;
    jobs.reserve(kBatch);
    for (size_t i = 0; i < keys.size(); ++i) {
      jobs.push_back({keys[i], keys[i]});
      if (jobs.size() == kBatch || i + 1 == keys.size()) {
        tree.BatchUpsert(jobs);
        jobs.clear();
      }
    }
    benchmark::DoNotOptimize(tree.num_keys());
  }
  ReportPerKey(state, n);
}

void Sizes(benchmark::internal::Benchmark* b) {
  // Clamp: a shift outside [10, 30] would be useless or UB, and a
  // benchmark registered with zero args would read state.range(0) out of
  // bounds, so a max_shift below the 2^20 start still emits one size.
  int64_t max_shift =
      std::clamp<int64_t>(GetEnvInt64("QPPT_FIG3_MAX_SHIFT", 24), 10, 30);
  for (int64_t shift = std::min<int64_t>(20, max_shift); shift <= max_shift;
       shift += 2) {
    b->Arg(int64_t{1} << shift);  // 1M, 4M, 16M (paper: 1M/16M/64M)
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Insert_PT4)->Apply(Sizes);
BENCHMARK(BM_Insert_GLIB)->Apply(Sizes);
BENCHMARK(BM_Insert_BOOST)->Apply(Sizes);
BENCHMARK(BM_Insert_KISS)->Apply(Sizes);
BENCHMARK(BM_Insert_KISS_Batched)->Apply(Sizes);

}  // namespace
}  // namespace qppt

BENCHMARK_MAIN();
