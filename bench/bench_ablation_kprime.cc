// E6 — ablation: prefix-tree fragment width k' (§2.1).
//
// "Setting k' to a high value like eight halves the maximum number of
// memory accesses per key, but increases the memory consumption if the
// key distribution is not dense." Sweep k' in {2, 4, 8} over dense and
// sparse 32-bit keys; time per upsert plus a memory counter.

#include <benchmark/benchmark.h>
#include <cstdint>
#include <vector>

#include "index/key_encoder.h"
#include "index/prefix_tree.h"
#include "util/rng.h"

namespace qppt {
namespace {

std::vector<uint32_t> MakeKeys(size_t n, bool dense) {
  Rng rng(5);
  std::vector<uint32_t> keys(n);
  for (auto& k : keys) {
    k = dense ? static_cast<uint32_t>(rng.NextBounded(n)) : rng.Next32();
  }
  return keys;
}

void RunUpserts(benchmark::State& state, size_t kprime, bool dense) {
  size_t n = 1 << 20;
  auto keys = MakeKeys(n, dense);
  size_t memory = 0;
  for (auto _ : state) {
    PrefixTree tree({.key_len = 4, .kprime = kprime});
    KeyBuf buf;
    for (uint32_t k : keys) {
      buf.clear();
      buf.AppendU32(k);
      tree.Upsert(buf.data(), k);
    }
    memory = tree.MemoryUsage();
    benchmark::DoNotOptimize(tree.num_keys());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.counters["memory_MiB"] =
      static_cast<double>(memory) / (1024.0 * 1024.0);
}

void BM_Kprime_Dense(benchmark::State& state) {
  RunUpserts(state, static_cast<size_t>(state.range(0)), /*dense=*/true);
}
void BM_Kprime_Sparse(benchmark::State& state) {
  RunUpserts(state, static_cast<size_t>(state.range(0)), /*dense=*/false);
}

BENCHMARK(BM_Kprime_Dense)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_Kprime_Sparse)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace qppt

BENCHMARK_MAIN();
