// Engine throughput: the SSB QPPT query flight through the morsel engine.
//
// Three experiments, all in the shared row format (bench_common.h):
//
//  1. flight — the 13-query SSB flight run back-to-back by ONE client,
//     once on a serial EngineRunner (threads=1) and once on a parallel
//     one (threads=QPPT_ENGINE_THREADS, default hardware_concurrency;
//     higher requests are clamped by the runner). The speedup line at
//     the end is the intra-query morsel-parallelism payoff (ISSUE 2
//     acceptance: >= 3x at 8 workers on an 8-core machine).
//
//  2. closed-loop — QPPT_ENGINE_CLIENTS concurrent client threads, each
//     looping the flight against the SAME parallel runner for
//     QPPT_BENCH_REPS rounds, no think time. Reports aggregate
//     queries/sec and per-query p50/p99 latency — the multi-query
//     admission story.
//
//  3. prepared vs replanned — the flight once through the ad-hoc path
//     (BuildQuerySpec + PlanQuery per execution) and once through
//     EngineRunner::Prepare handles (plan compiled once, cached, shared).
//     Prepared execution must be no slower than replanning (ISSUE 3
//     acceptance); the plan-cache hit count is reported.
//
// `--json` additionally emits BENCH_engine.json rows — per-query
// (query, threads, wall, morsels, merge_wall) for the flight plus the
// aggregate rows — so the perf trajectory is machine-readable across
// PRs (bench_common.h JsonReport).
//
//  4. deadline — the flight again on the parallel runner, every query
//     carrying a deadline (`--deadline-ms=<x>` / QPPT_DEADLINE_MS,
//     default 60000). The generous default completes every query and so
//     measures the pure cost of the cancellation machinery — the
//     morsel-boundary polls and serial-loop ticks — against experiment
//     1's undeadlined flight (ISSUE 9 acceptance: within noise). A
//     tight value instead counts prompt DeadlineExceeded returns;
//     expired queries are reported, not fatal. 0 disables the flight.
//
// Knobs: QPPT_SSB_SF (default 0.1), QPPT_ENGINE_THREADS (default
//        hardware_concurrency), QPPT_ENGINE_CLIENTS (default 4),
//        QPPT_BENCH_REPS (default 3), QPPT_PREFER_KISS (default 1; 0
//        builds prefix-tree base indexes and intermediates, exercising
//        the prefix/mixed star-join paths), QPPT_DEADLINE_MS (above).
//
// Tracing: QPPT_TRACE_QUERY=4.1 additionally runs that one query with
// PlanKnobs::trace enabled on the parallel runner and writes its
// chrome://tracing timeline to QPPT_TRACE_PATH (default
// TRACE_Q<id>.json) — CI uploads it as an artifact.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/parallel.h"
#include "engine/session.h"
#include "obs/trace.h"
#include "ssb/queries_qppt.h"

namespace qppt {
namespace {

struct QueryRow {
  std::string id;
  double wall_ms = 0;
  uint64_t morsels = 0;
  double merge_ms = 0;
};

struct FlightResult {
  double wall_ms = 0;
  uint64_t morsels = 0;
  double merge_ms = 0;
  bench::LatencyRecorder lat;
  size_t queries = 0;
  std::vector<QueryRow> rows;
};

// One pass over all 13 queries on `runner`.
FlightResult RunFlight(engine::EngineRunner& runner, const ssb::SsbData& data,
                       const PlanKnobs& knobs) {
  FlightResult r;
  Timer wall;
  for (const auto& id : ssb::AllQueryIds()) {
    PlanStats stats;
    auto result = ssb::RunQppt(runner, data, id, knobs, &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "Q%s failed: %s\n", id.c_str(),
                   result.status().ToString().c_str());
      std::exit(1);
    }
    r.lat.Add(stats.wall_ms);
    r.morsels += stats.TotalMorsels();
    r.merge_ms += stats.TotalMergeMs();
    r.rows.push_back(
        {id, stats.wall_ms, stats.TotalMorsels(), stats.TotalMergeMs()});
    ++r.queries;
  }
  r.wall_ms = wall.ElapsedMs();
  return r;
}

void Run(bench::JsonReport& json, double deadline_ms) {
  size_t threads = bench::EngineThreads();
  size_t clients = static_cast<size_t>(GetEnvInt64("QPPT_ENGINE_CLIENTS", 4));
  int reps = bench::Repetitions();
  auto data = bench::LoadSsb();
  PlanKnobs knobs;
  knobs.table_options.prefer_kiss =
      GetEnvInt64("QPPT_PREFER_KISS", 1) != 0;

  std::printf("engine throughput: SSB SF=%.2f, %zu workers, %zu clients, "
              "%d reps\n",
              bench::SsbScaleFactor(), threads, clients, reps);
  bench::PrintThroughputHeader();

  // ---- experiment 1: single-client flight, serial vs parallel ------------
  double flight_ms[2] = {0, 0};
  size_t actual_threads[2] = {1, threads};
  size_t config_threads[2] = {1, threads};
  for (int c = 0; c < 2; ++c) {
    engine::EngineConfig cfg;
    cfg.threads = config_threads[c];
    engine::EngineRunner runner(cfg);
    actual_threads[c] = runner.threads();  // post-clamp
    std::string label = "t=" + std::to_string(actual_threads[c]);
    FlightResult best;
    double best_ms = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      FlightResult r = RunFlight(runner, *data, knobs);
      if (r.wall_ms < best_ms) {
        best_ms = r.wall_ms;
        best = r;
      }
    }
    flight_ms[c] = best_ms;
    bench::PrintThroughputRow("flight", label, best.queries, best.wall_ms,
                              best.lat, best.morsels);
    for (const auto& q : best.rows) {
      json.Add({"flight", label, q.id, actual_threads[c], 1, q.wall_ms, 0,
                0, 0, q.morsels, q.merge_ms});
    }
    json.Add({"flight", label, "", actual_threads[c], best.queries,
              best.wall_ms,
              best.wall_ms > 0
                  ? 1000.0 * static_cast<double>(best.queries) / best.wall_ms
                  : 0,
              best.lat.Percentile(50), best.lat.Percentile(99), best.morsels,
              best.merge_ms});
  }
  if (flight_ms[1] > 0) {
    std::printf("(flight speedup: %.2fx at t=%zu over t=1)\n",
                flight_ms[0] / flight_ms[1], actual_threads[1]);
  }

  // ---- experiment 4 (interleaved here so the undeadlined flight above is
  // the freshest comparison point): the flight under per-query deadlines.
  if (deadline_ms > 0) {
    engine::EngineConfig cfg;
    cfg.threads = threads;
    engine::EngineRunner runner(cfg);
    PlanKnobs timed = knobs;
    timed.deadline_ms = deadline_ms;
    RunFlight(runner, *data, knobs);  // warm-up

    FlightResult best;
    double best_ms = 1e300;
    size_t expired = 0;
    for (int rep = 0; rep < reps; ++rep) {
      FlightResult r;
      size_t rep_expired = 0;
      Timer wall;
      for (const auto& id : ssb::AllQueryIds()) {
        PlanStats stats;
        auto result = ssb::RunQppt(runner, *data, id, timed, &stats);
        if (!result.ok()) {
          if (result.status().IsDeadlineExceeded()) {
            ++rep_expired;
            continue;
          }
          std::fprintf(stderr, "deadline flight Q%s failed: %s\n",
                       id.c_str(), result.status().ToString().c_str());
          std::exit(1);
        }
        r.lat.Add(stats.wall_ms);
        r.morsels += stats.TotalMorsels();
        r.merge_ms += stats.TotalMergeMs();
        r.rows.push_back(
            {id, stats.wall_ms, stats.TotalMorsels(), stats.TotalMergeMs()});
        ++r.queries;
      }
      r.wall_ms = wall.ElapsedMs();
      if (r.wall_ms < best_ms) {
        best_ms = r.wall_ms;
        best = r;
        expired = rep_expired;
      }
    }
    char label[64];
    std::snprintf(label, sizeof(label), "t=%zu,dl=%gms", runner.threads(),
                  deadline_ms);
    bench::PrintThroughputRow("deadline", label, best.queries, best.wall_ms,
                              best.lat, best.morsels);
    for (const auto& q : best.rows) {
      json.Add({"deadline", label, q.id, runner.threads(), 1, q.wall_ms, 0,
                0, 0, q.morsels, q.merge_ms});
    }
    json.Add({"deadline", label, "", runner.threads(), best.queries,
              best.wall_ms,
              best.wall_ms > 0
                  ? 1000.0 * static_cast<double>(best.queries) / best.wall_ms
                  : 0,
              best.lat.Percentile(50), best.lat.Percentile(99), best.morsels,
              best.merge_ms});
    if (expired > 0) {
      std::printf("(deadline flight: %zu of %zu queries exceeded %g ms)\n",
                  expired, ssb::AllQueryIds().size(), deadline_ms);
    } else if (flight_ms[1] > 0) {
      std::printf("(deadline overhead: %.3fx vs the undeadlined flight)\n",
                  best_ms / flight_ms[1]);
    }
  }

  // ---- experiment 2: closed-loop concurrent clients ----------------------
  {
    engine::EngineConfig cfg;
    cfg.threads = threads;
    engine::EngineRunner runner(cfg);
    RunFlight(runner, *data, knobs);  // warm-up

    std::mutex mu;
    bench::LatencyRecorder all_lat;
    uint64_t all_morsels = 0;
    double all_merge_ms = 0;
    size_t all_queries = 0;
    Timer wall;
    ForkJoin fork(clients);
    for (size_t c = 0; c < clients; ++c) {
      fork.Spawn([&] {
        bench::LatencyRecorder lat;
        uint64_t morsels = 0;
        double merge_ms = 0;
        size_t queries = 0;
        for (int rep = 0; rep < reps; ++rep) {
          for (const auto& id : ssb::AllQueryIds()) {
            PlanStats stats;
            auto result = ssb::RunQppt(runner, *data, id, knobs, &stats);
            if (!result.ok()) std::exit(1);
            lat.Add(stats.wall_ms);
            morsels += stats.TotalMorsels();
            merge_ms += stats.TotalMergeMs();
            ++queries;
          }
        }
        std::lock_guard<std::mutex> lock(mu);
        all_lat.Merge(lat);
        all_morsels += morsels;
        all_merge_ms += merge_ms;
        all_queries += queries;
      });
    }
    fork.Join();
    double ms = wall.ElapsedMs();
    std::string label = "c=" + std::to_string(clients) + ",t=" +
                        std::to_string(runner.threads());
    bench::PrintThroughputRow("closed-loop", label, all_queries, ms, all_lat,
                              all_morsels);
    json.Add({"closed-loop", label, "", runner.threads(), all_queries, ms,
              ms > 0 ? 1000.0 * static_cast<double>(all_queries) / ms : 0,
              all_lat.Percentile(50), all_lat.Percentile(99), all_morsels,
              all_merge_ms});
  }

  // ---- experiment 3: prepared vs replanned (single client) ---------------
  {
    engine::EngineConfig cfg;
    cfg.threads = threads;
    engine::EngineRunner runner(cfg);
    std::vector<engine::PreparedQuery> prepared;
    for (const auto& id : ssb::AllQueryIds()) {
      auto spec = ssb::BuildQuerySpec(*data, id);
      if (!spec.ok()) std::exit(1);
      auto p = runner.Prepare(data->db, std::move(spec).value());
      if (!p.ok()) std::exit(1);
      prepared.push_back(std::move(p).value());
    }
    RunFlight(runner, *data, knobs);  // warm-up

    auto run_prepared_flight = [&] {
      FlightResult r;
      Timer wall;
      for (const auto& p : prepared) {
        PlanStats stats;
        auto result = runner.Execute(p, {}, knobs, &stats);
        if (!result.ok()) std::exit(1);
        r.lat.Add(stats.wall_ms);
        r.morsels += stats.TotalMorsels();
        r.merge_ms += stats.TotalMergeMs();
        ++r.queries;
      }
      r.wall_ms = wall.ElapsedMs();
      return r;
    };

    double replanned_ms = 1e300;
    double prepared_ms = 1e300;
    FlightResult best_replanned;
    FlightResult best_prepared;
    for (int rep = 0; rep < reps; ++rep) {
      FlightResult r = RunFlight(runner, *data, knobs);
      if (r.wall_ms < replanned_ms) {
        replanned_ms = r.wall_ms;
        best_replanned = r;
      }
      FlightResult p = run_prepared_flight();
      if (p.wall_ms < prepared_ms) {
        prepared_ms = p.wall_ms;
        best_prepared = p;
      }
    }
    std::string label = "t=" + std::to_string(runner.threads());
    bench::PrintThroughputRow("replanned", label, best_replanned.queries,
                              replanned_ms, best_replanned.lat,
                              best_replanned.morsels);
    bench::PrintThroughputRow("prepared", label, best_prepared.queries,
                              prepared_ms, best_prepared.lat,
                              best_prepared.morsels);
    json.Add({"replanned", label, "", runner.threads(),
              best_replanned.queries, replanned_ms, 0,
              best_replanned.lat.Percentile(50),
              best_replanned.lat.Percentile(99), best_replanned.morsels,
              best_replanned.merge_ms});
    json.Add({"prepared", label, "", runner.threads(), best_prepared.queries,
              prepared_ms, 0, best_prepared.lat.Percentile(50),
              best_prepared.lat.Percentile(99), best_prepared.morsels,
              best_prepared.merge_ms});
    uint64_t hits = 0;
    for (const auto& p : prepared) hits += p.plan_cache_hits();
    std::printf("(prepared/replanned flight: %.3fx, %llu plan-cache hits)\n",
                prepared_ms / replanned_ms,
                static_cast<unsigned long long>(hits));
  }

  // ---- optional: one traced query, dumped as chrome://tracing JSON -------
  std::string trace_query = GetEnvString("QPPT_TRACE_QUERY", "");
  if (!trace_query.empty()) {
    engine::EngineConfig cfg;
    cfg.threads = threads;
    engine::EngineRunner runner(cfg);
    PlanKnobs traced = knobs;
    traced.trace = true;
    PlanStats stats;
    auto result = ssb::RunQppt(runner, *data, trace_query, traced, &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "trace run Q%s failed: %s\n", trace_query.c_str(),
                   result.status().ToString().c_str());
      std::exit(1);
    }
    std::string path = GetEnvString("QPPT_TRACE_PATH",
                                    ("TRACE_Q" + trace_query + ".json"));
    if (stats.trace == nullptr) {
      std::fprintf(stderr, "trace run Q%s produced no trace\n",
                   trace_query.c_str());
      std::exit(1);
    }
    std::string body = obs::TraceToJson(*stats.trace);
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::perror(("cannot open " + path).c_str());
      std::exit(1);
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("(wrote Q%s trace: %zu spans across %zu worker lanes to "
                "%s)\n",
                trace_query.c_str(), stats.trace->num_spans(),
                stats.trace->num_worker_lanes(), path.c_str());
  }
}

}  // namespace
}  // namespace qppt

int main(int argc, char** argv) {
  qppt::bench::JsonReport json(argc, argv);
  double deadline_ms = static_cast<double>(
      qppt::GetEnvInt64("QPPT_DEADLINE_MS", 60000));
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--deadline-ms=", 0) == 0) {
      deadline_ms = std::atof(arg.c_str() + 14);
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      deadline_ms = std::atof(argv[++i]);
    }
  }
  qppt::Run(json, deadline_ms);
  return 0;
}
