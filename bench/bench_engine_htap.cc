// Mixed HTAP workload: a sustained OLTP upsert stream through engine
// write sessions racing the 13-query SSB OLAP flight over a *versioned*
// lineorder table (SsbConfig::versioned_lineorder) with live fact
// indexes.
//
// Phases:
//
//  1. quiesced — the flight with no writers, the OLAP baseline.
//
//  2. mixed — QPPT_HTAP_WRITERS writer threads loop transactions (each
//     inserts a batch of fresh lineorder rows cloned-and-perturbed from
//     committed ones, then updates a few existing logical rows) while
//     QPPT_ENGINE_CLIENTS client threads run the flight through the same
//     runner. Every query records the snapshot it was pinned to
//     (PlanStats::read_ts) and its full result.
//
//  3. identity check — writers quiesced, every mixed-phase query is
//     re-run with knobs.read_ts pinned to its recorded snapshot; the
//     rows must match EXACTLY. This is the snapshot-consistency
//     acceptance gate: a query that raced 100 commits returns the same
//     result as the engine at rest reading that timestamp.
//
//  4. reclaim — EngineRunner::ReclaimVersions sweeps the superseded
//     version-chain tails (runs after the identity check, which still
//     needs the old versions reachable).
//
// `--json` emits BENCH_engine_htap.json (path overridable with
// QPPT_BENCH_JSON_PATH).
//
// Knobs: QPPT_SSB_SF (default 0.1), QPPT_ENGINE_THREADS (default
//        hardware_concurrency), QPPT_ENGINE_CLIENTS (default 2),
//        QPPT_BENCH_REPS (default 3), QPPT_HTAP_WRITERS (default 1),
//        QPPT_HTAP_INSERTS (default 8/txn), QPPT_HTAP_UPDATES
//        (default 4/txn), QPPT_PREFER_KISS (default 1).

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "engine/retry.h"
#include "engine/session.h"
#include "engine/write_session.h"
#include "ssb/queries_qppt.h"

namespace qppt {
namespace {

std::unique_ptr<ssb::SsbData> LoadVersionedSsb() {
  ssb::SsbConfig cfg;
  cfg.scale_factor = bench::SsbScaleFactor();
  cfg.seed = 42;
  cfg.prefer_kiss = GetEnvInt64("QPPT_PREFER_KISS", 1) != 0;
  cfg.versioned_lineorder = true;
  auto data = ssb::Generate(cfg);
  if (!data.ok()) {
    std::fprintf(stderr, "SSB generation failed: %s\n",
                 data.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(data).value();
}

struct RecordedQuery {
  std::string id;
  Timestamp read_ts = 0;
  std::vector<std::vector<Value>> rows;
};

struct FlightResult {
  double wall_ms = 0;
  uint64_t morsels = 0;
  size_t queries = 0;
  bench::LatencyRecorder lat;
  std::vector<RecordedQuery> recorded;
};

FlightResult RunFlight(engine::EngineRunner& runner, const ssb::SsbData& data,
                       const PlanKnobs& knobs, bool record) {
  FlightResult r;
  Timer wall;
  for (const auto& id : ssb::AllQueryIds()) {
    PlanStats stats;
    auto result = ssb::RunQppt(runner, data, id, knobs, &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "Q%s failed: %s\n", id.c_str(),
                   result.status().ToString().c_str());
      std::exit(1);
    }
    r.lat.Add(stats.wall_ms);
    r.morsels += stats.TotalMorsels();
    ++r.queries;
    if (record) {
      r.recorded.push_back({id, stats.read_ts, std::move(result->rows)});
    }
  }
  r.wall_ms = wall.ElapsedMs();
  return r;
}

// One writer thread: loops upsert transactions until `stop`. Inserted
// rows are committed lineorder rows re-sampled with fresh quantity /
// discount / price (valid dimension keys for free); updates rewrite an
// existing logical row the same way. Write-write conflicts (possible
// with several writers) abort the transaction and retry with new ids.
void WriterLoop(engine::EngineRunner& runner, ssb::SsbData& data,
                size_t inserts, size_t updates, uint64_t seed,
                const std::atomic<bool>& stop, std::atomic<uint64_t>& commits,
                std::atomic<uint64_t>& aborts, std::atomic<uint64_t>& rows) {
  MvccTable& lineorder = **data.db.versioned_table("lineorder");
  const RowTable& storage = lineorder.storage();
  const size_t initial = lineorder.num_logical_rows();
  const size_t width = storage.schema().num_columns();
  std::mt19937_64 rng(seed);
  std::vector<uint64_t> row(width);

  auto fill_from = [&](size_t rid) {
    for (size_t c = 0; c < width; ++c) row[c] = storage.GetSlot(rid, c);
    int64_t quantity = 1 + static_cast<int64_t>(rng() % 50);
    int64_t discount = static_cast<int64_t>(rng() % 11);
    int64_t extendedprice = 90000 + static_cast<int64_t>(rng() % 1000000);
    row[4] = SlotFromInt64(quantity);
    row[5] = SlotFromInt64(extendedprice);
    row[6] = SlotFromInt64(discount);
    row[7] = SlotFromInt64(extendedprice * (100 - discount) / 100);
  };

  while (!stop.load(std::memory_order_acquire)) {
    // First-updater-wins conflicts (AlreadyExists) abort the whole
    // transaction; RetryTxn re-runs it with jittered backoff, and the
    // closure re-draws its ids so every attempt targets fresh rows.
    engine::RetryOptions backoff;
    backoff.seed = rng();
    Status st = engine::RetryTxn(
        &runner, &data.db,
        [&](engine::WriteSession& ws) -> Status {
          for (size_t i = 0; i < inserts; ++i) {
            fill_from(rng() % initial);
            QPPT_RETURN_NOT_OK(ws.Insert("lineorder", row).status());
          }
          for (size_t u = 0; u < updates; ++u) {
            MvccTable::LogicalId id = rng() % initial;
            fill_from(id);
            QPPT_RETURN_NOT_OK(ws.Update("lineorder", id, row));
          }
          return Status::OK();
        },
        backoff);
    if (st.ok()) {
      commits.fetch_add(1, std::memory_order_relaxed);
      rows.fetch_add(inserts + updates, std::memory_order_relaxed);
    } else {
      aborts.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void Run(bench::JsonReport& json) {
  size_t threads = bench::EngineThreads();
  size_t clients =
      static_cast<size_t>(GetEnvInt64("QPPT_ENGINE_CLIENTS", 2));
  size_t writers = static_cast<size_t>(GetEnvInt64("QPPT_HTAP_WRITERS", 1));
  size_t inserts = static_cast<size_t>(GetEnvInt64("QPPT_HTAP_INSERTS", 8));
  size_t updates = static_cast<size_t>(GetEnvInt64("QPPT_HTAP_UPDATES", 4));
  int reps = bench::Repetitions();
  auto data = LoadVersionedSsb();
  PlanKnobs knobs;
  knobs.table_options.prefer_kiss = GetEnvInt64("QPPT_PREFER_KISS", 1) != 0;

  engine::EngineConfig cfg;
  cfg.threads = threads;
  engine::EngineRunner runner(cfg);
  threads = runner.threads();  // post-clamp
  std::printf(
      "engine HTAP: SSB SF=%.2f (versioned lineorder), %zu workers, "
      "%zu OLAP clients, %zu writers (%zu ins + %zu upd per txn), %d reps\n",
      bench::SsbScaleFactor(), threads, clients, writers, inserts, updates,
      reps);
  bench::PrintThroughputHeader();
  std::string tlabel = "t=" + std::to_string(threads);

  // ---- phase 1: quiesced OLAP baseline -----------------------------------
  RunFlight(runner, *data, knobs, false);  // warm-up
  FlightResult quiesced;
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    FlightResult r = RunFlight(runner, *data, knobs, false);
    if (r.wall_ms < best) {
      best = r.wall_ms;
      quiesced = std::move(r);
    }
  }
  bench::PrintThroughputRow("olap-quiesced", tlabel, quiesced.queries,
                            quiesced.wall_ms, quiesced.lat, quiesced.morsels);
  json.Add({"olap-quiesced", tlabel, "", threads, quiesced.queries,
            quiesced.wall_ms,
            1000.0 * static_cast<double>(quiesced.queries) / quiesced.wall_ms,
            quiesced.lat.Percentile(50), quiesced.lat.Percentile(99),
            quiesced.morsels, 0});

  // ---- phase 2: mixed — upsert stream vs concurrent flights --------------
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> aborts{0};
  std::atomic<uint64_t> upserted{0};
  std::vector<std::thread> writer_threads;
  for (size_t w = 0; w < writers; ++w) {
    writer_threads.emplace_back([&, w] {
      WriterLoop(runner, *data, inserts, updates, /*seed=*/7u + w, stop,
                 commits, aborts, upserted);
    });
  }

  std::mutex mu;
  bench::LatencyRecorder mixed_lat;
  uint64_t mixed_morsels = 0;
  size_t mixed_queries = 0;
  std::vector<RecordedQuery> recorded;
  Timer mixed_wall;
  std::vector<std::thread> client_threads;
  for (size_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&] {
      for (int rep = 0; rep < reps; ++rep) {
        FlightResult r = RunFlight(runner, *data, knobs, true);
        std::lock_guard<std::mutex> lock(mu);
        mixed_lat.Merge(r.lat);
        mixed_morsels += r.morsels;
        mixed_queries += r.queries;
        for (auto& q : r.recorded) recorded.push_back(std::move(q));
      }
    });
  }
  for (auto& t : client_threads) t.join();
  double mixed_ms = mixed_wall.ElapsedMs();
  stop.store(true, std::memory_order_release);
  for (auto& t : writer_threads) t.join();

  std::string mlabel = "c=" + std::to_string(clients) + ",w=" +
                       std::to_string(writers) + "," + tlabel;
  bench::PrintThroughputRow("olap-mixed", mlabel, mixed_queries, mixed_ms,
                            mixed_lat, mixed_morsels);
  json.Add({"olap-mixed", mlabel, "", threads, mixed_queries, mixed_ms,
            1000.0 * static_cast<double>(mixed_queries) / mixed_ms,
            mixed_lat.Percentile(50), mixed_lat.Percentile(99), mixed_morsels,
            0});
  double txn_s = 1000.0 * static_cast<double>(commits.load()) / mixed_ms;
  engine::EngineRunner::WriteStats wstats = runner.write_stats();
  std::printf(
      "(oltp stream: %llu txns committed (%llu aborted, %llu conflict "
      "retries), %.0f txn/s, %llu rows upserted)\n",
      static_cast<unsigned long long>(commits.load()),
      static_cast<unsigned long long>(aborts.load()),
      static_cast<unsigned long long>(wstats.retries), txn_s,
      static_cast<unsigned long long>(upserted.load()));
  json.Add({"oltp", mlabel, "", threads, commits.load(), mixed_ms, txn_s, 0,
            0, upserted.load(), static_cast<double>(wstats.retries)});

  // ---- phase 3: snapshot-consistency identity check ----------------------
  // Writers are quiesced; superseded versions are still reachable (the
  // reclaim sweep runs AFTER this). Every mixed-phase result must equal
  // the engine at rest reading the same pinned timestamp.
  size_t checked = 0;
  size_t mismatched = 0;
  for (const auto& q : recorded) {
    PlanKnobs pinned = knobs;
    pinned.read_ts = q.read_ts;
    auto replay = ssb::RunQppt(runner, *data, q.id, pinned);
    if (!replay.ok()) {
      std::fprintf(stderr, "replay of Q%s @ts=%llu failed: %s\n",
                   q.id.c_str(),
                   static_cast<unsigned long long>(q.read_ts),
                   replay.status().ToString().c_str());
      std::exit(1);
    }
    ++checked;
    if (replay->rows != q.rows) {
      ++mismatched;
      std::fprintf(stderr,
                   "SNAPSHOT MISMATCH: Q%s @ts=%llu (%zu rows live, %zu "
                   "rows replayed)\n",
                   q.id.c_str(),
                   static_cast<unsigned long long>(q.read_ts), q.rows.size(),
                   replay->rows.size());
    }
  }
  std::printf("(snapshot identity: %zu/%zu mixed-phase queries match their "
              "quiesced replay)\n",
              checked - mismatched, checked);
  json.Add({"identity",
            mismatched == 0 ? "match" : "MISMATCH", "", threads, checked, 0,
            0, 0, 0, mismatched, 0});

  // ---- phase 4: version reclamation --------------------------------------
  size_t reclaimed = runner.ReclaimVersions(&data->db);
  std::printf("(reclaimed %zu superseded versions)\n", reclaimed);
  json.Add({"reclaim", tlabel, "", threads, reclaimed, 0, 0, 0, 0, 0, 0});

  if (mismatched != 0) std::exit(1);
}

}  // namespace
}  // namespace qppt

int main(int argc, char** argv) {
  qppt::bench::JsonReport json(argc, argv, "BENCH_engine_htap.json");
  qppt::Run(json);
  return 0;
}
