// E7 — ablation: joinbuffer size (§4.2, demonstrator appendix).
//
// The demonstrator exposes the joinbuffer/selectionbuffer size as
// {1 (none), 64, 512, 2048}. Buffered probes run as §2.3 batch lookups
// that hide memory latency; "a too low or a too high size affects the
// performance negatively". Measured on SSB Q2.3 (Fig. 5's plan) and Q4.1.

#include <cstdio>

#include "bench_common.h"
#include "ssb/queries_qppt.h"

int main() {
  using namespace qppt;
  using namespace qppt::bench;

  auto data = LoadSsb();
  int reps = Repetitions();
  std::printf("Joinbuffer size sweep (SF=%.2f, min of %d reps)\n\n",
              data->config.scale_factor, reps);
  std::printf("%-8s %14s %14s\n", "buffer", "Q2.3 [ms]", "Q4.1 [ms]");
  for (size_t size : {size_t{1}, size_t{64}, size_t{512}, size_t{2048}}) {
    PlanKnobs knobs;
    knobs.join_buffer_size = size;
    double q23 = MinWallMs(reps, [&] {
      auto r = ssb::RunQppt(*data, "2.3", knobs);
      if (!r.ok()) std::exit(1);
    });
    double q41 = MinWallMs(reps, [&] {
      auto r = ssb::RunQppt(*data, "4.1", knobs);
      if (!r.ok()) std::exit(1);
    });
    std::printf("%-8zu %14.2f %14.2f\n", size, q23, q41);
  }
  return 0;
}
