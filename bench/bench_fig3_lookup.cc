// E2 — Figure 3(b): lookup performance of prefix-tree structures vs. hash
// tables. Same series and sizes as Figure 3(a); structures are prefilled
// with the dense key range and then probed with random present keys.

#include <algorithm>
#include <benchmark/benchmark.h>
#include <cstdint>
#include <vector>

#include "bench_common.h"
#include "index/chained_hash_table.h"
#include "index/key_encoder.h"
#include "index/kiss_tree.h"
#include "index/open_hash_table.h"
#include "index/prefix_tree.h"
#include "util/rng.h"

namespace qppt {
namespace {

std::vector<uint32_t> ProbeKeys(size_t n) {
  Rng rng(77);
  std::vector<uint32_t> keys(n);
  for (auto& k : keys) k = static_cast<uint32_t>(rng.NextBounded(n));
  return keys;
}

void ReportPerKey(benchmark::State& state, size_t n) {
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void BM_Lookup_PT4(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  PrefixTree tree({.key_len = 4, .kprime = 4});
  KeyBuf buf;
  for (size_t i = 0; i < n; ++i) {
    buf.clear();
    buf.AppendU32(static_cast<uint32_t>(i));
    tree.Upsert(buf.data(), i);
  }
  auto probes = ProbeKeys(n);
  for (auto _ : state) {
    uint64_t sum = 0;
    for (uint32_t k : probes) {
      buf.clear();
      buf.AppendU32(k);
      const ValueList* v = tree.Lookup(buf.data());
      sum += v->first();
    }
    benchmark::DoNotOptimize(sum);
  }
  ReportPerKey(state, n);
}

void BM_Lookup_GLIB(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  ChainedHashTable table;
  for (size_t i = 0; i < n; ++i) table.Upsert(i, i);
  auto probes = ProbeKeys(n);
  for (auto _ : state) {
    uint64_t sum = 0;
    for (uint32_t k : probes) sum += *table.Find(k);
    benchmark::DoNotOptimize(sum);
  }
  ReportPerKey(state, n);
}

void BM_Lookup_BOOST(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  OpenHashTable table;
  for (size_t i = 0; i < n; ++i) table.Upsert(i, i);
  auto probes = ProbeKeys(n);
  for (auto _ : state) {
    uint64_t sum = 0;
    for (uint32_t k : probes) sum += *table.Find(k);
    benchmark::DoNotOptimize(sum);
  }
  ReportPerKey(state, n);
}

void BM_Lookup_KISS(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  KissTree tree;
  for (size_t i = 0; i < n; ++i) {
    tree.Upsert(static_cast<uint32_t>(i), i);
  }
  auto probes = ProbeKeys(n);
  for (auto _ : state) {
    uint64_t sum = 0;
    KissTree::ValueRef ref;
    for (uint32_t k : probes) {
      tree.Lookup(k, &ref);
      sum += ref.front();
    }
    benchmark::DoNotOptimize(sum);
  }
  ReportPerKey(state, n);
}

void BM_Lookup_KISS_Batched(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  KissTree tree;
  for (size_t i = 0; i < n; ++i) {
    tree.Upsert(static_cast<uint32_t>(i), i);
  }
  auto probes = ProbeKeys(n);
  constexpr size_t kBatch = 512;
  std::vector<KissTree::LookupJob> jobs(kBatch);
  for (auto _ : state) {
    uint64_t sum = 0;
    size_t i = 0;
    while (i < probes.size()) {
      size_t len = std::min(kBatch, probes.size() - i);
      for (size_t j = 0; j < len; ++j) jobs[j].key = probes[i + j];
      tree.BatchLookup(std::span<KissTree::LookupJob>(jobs.data(), len));
      for (size_t j = 0; j < len; ++j) sum += jobs[j].values.front();
      i += len;
    }
    benchmark::DoNotOptimize(sum);
  }
  ReportPerKey(state, n);
}

void Sizes(benchmark::internal::Benchmark* b) {
  // Clamp: a shift outside [10, 30] would be useless or UB, and a
  // benchmark registered with zero args would read state.range(0) out of
  // bounds, so a max_shift below the 2^20 start still emits one size.
  int64_t max_shift =
      std::clamp<int64_t>(GetEnvInt64("QPPT_FIG3_MAX_SHIFT", 24), 10, 30);
  for (int64_t shift = std::min<int64_t>(20, max_shift); shift <= max_shift;
       shift += 2) {
    b->Arg(int64_t{1} << shift);
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Lookup_PT4)->Apply(Sizes);
BENCHMARK(BM_Lookup_GLIB)->Apply(Sizes);
BENCHMARK(BM_Lookup_BOOST)->Apply(Sizes);
BENCHMARK(BM_Lookup_KISS)->Apply(Sizes);
BENCHMARK(BM_Lookup_KISS_Batched)->Apply(Sizes);

}  // namespace
}  // namespace qppt

BENCHMARK_MAIN();
