// E4 — Figure 8: SSB Q1.1 with and without the composed select-join.
//
// The paper's four bars: MonetDB 2059 ms, commercial DBMS 156 ms,
// DexterDB w/ select-join 151 ms, DexterDB w/o select-join 1709 ms — the
// separate-selection plan spends ~95% of its time materializing and
// indexing the large lineorder selection.

#include <cstdio>

#include "bench_common.h"
#include "ssb/queries_baseline.h"
#include "ssb/queries_qppt.h"

int main() {
  using namespace qppt;
  using namespace qppt::bench;

  auto data = LoadSsb();
  int reps = Repetitions();
  std::printf("SSB Q1.1 with and without select-join (SF=%.2f, min of %d "
              "reps)\n\n",
              data->config.scale_factor, reps);

  double column_ms = MinWallMs(reps, [&] {
    auto r = ssb::RunColumn(*data, "1.1");
    if (!r.ok()) std::exit(1);
  });
  double vector_ms = MinWallMs(reps, [&] {
    auto r = ssb::RunVector(*data, "1.1");
    if (!r.ok()) std::exit(1);
  });
  PlanKnobs with_sj;
  with_sj.use_select_join = true;
  double with_ms = MinWallMs(reps, [&] {
    auto r = ssb::RunQppt(*data, "1.1", with_sj);
    if (!r.ok()) std::exit(1);
  });
  PlanKnobs without_sj;
  without_sj.use_select_join = false;
  PlanStats stats;
  double without_ms = MinWallMs(reps, [&] {
    auto r = ssb::RunQppt(*data, "1.1", without_sj, &stats);
    if (!r.ok()) std::exit(1);
  });

  std::printf("%-32s %12s\n", "configuration", "time [ms]");
  std::printf("%-32s %12.2f\n", "MonetDB (column engine)", column_ms);
  std::printf("%-32s %12.2f\n", "Commercial (vector engine)", vector_ms);
  std::printf("%-32s %12.2f\n", "DexterDB w/ select-join", with_ms);
  std::printf("%-32s %12.2f\n", "DexterDB w/o select-join", without_ms);

  // The paper's supporting claim: the separate selection dominates the
  // non-composed plan. Report the operator split.
  double selection_ms = 0;
  for (const auto& op : stats.operators) {
    if (op.name.rfind("selection(lo_discount)", 0) == 0) {
      selection_ms = op.total_ms;
    }
  }
  if (without_ms > 0) {
    std::printf("\nw/o select-join: lineorder selection = %.2f ms (%.0f%% "
                "of plan)\n",
                selection_ms, 100.0 * selection_ms / without_ms);
  }
  return 0;
}
