// E11 — extension: intra-operator parallelism (§7).
//
// Thread-scaling of a duplicate-aware full scan over a KISS-Tree,
// partitioned into disjoint root-bucket shards (core/parallel.h). The
// paper argues unbalanced tries parallelize well because a key's position
// is deterministic — no rebalancing can move data between threads'
// subtrees mid-scan.

#include <benchmark/benchmark.h>
#include <cstdint>

#include "core/parallel.h"
#include "util/rng.h"

namespace qppt {
namespace {

constexpr size_t kKeys = 1 << 21;  // 2M keys, ~3 values/key

void BM_ParallelScan(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  KissTree tree;
  Rng rng(1);
  for (size_t i = 0; i < kKeys * 3; ++i) {
    tree.Insert(static_cast<uint32_t>(rng.NextBounded(kKeys)), i);
  }
  for (auto _ : state) {
    uint64_t total = ParallelCountValues(tree, threads);
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kKeys * 3));
}

BENCHMARK(BM_ParallelScan)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace qppt

BENCHMARK_MAIN();
