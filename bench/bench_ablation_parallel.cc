// E11 — extension: intra-operator parallelism (§7).
//
// Thread-scaling of a duplicate-aware full scan over a KISS-Tree,
// partitioned into disjoint root-bucket shards (core/parallel.h). The
// paper argues unbalanced tries parallelize well because a key's position
// is deterministic — no rebalancing can move data between threads'
// subtrees mid-scan. Reports in the shared engine-bench row format
// (bench_common.h), one row per thread count; `morsels` is the number of
// disjoint shards the partitioner produced.
//
//   QPPT_BENCH_REPS=5 ./bench_ablation_parallel

#include <cstdint>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/parallel.h"
#include "util/rng.h"

namespace qppt {
namespace {

constexpr size_t kKeys = 1 << 21;  // 2M keys, ~3 values/key

void Run() {
  KissTree tree;
  Rng rng(1);
  for (size_t i = 0; i < kKeys * 3; ++i) {
    tree.Insert(static_cast<uint32_t>(rng.NextBounded(kKeys)), i);
  }
  int reps = bench::Repetitions();
  std::printf("parallel KISS-Tree scan ablation: %zu keys, %zu values, "
              "%d reps (min)\n",
              tree.num_keys(), size_t{kKeys * 3}, reps);
  bench::PrintThroughputHeader();
  double serial_ms = 0;
  double t8_ms = 0;
  for (size_t threads : {1, 2, 4, 8}) {
    uint64_t total = 0;
    double ms = bench::MinWallMs(reps, [&] {
      total = ParallelCountValues(tree, threads);
    });
    if (total != kKeys * 3) {
      std::fprintf(stderr, "scan dropped values: %llu\n",
                   static_cast<unsigned long long>(total));
      std::exit(1);
    }
    if (threads == 1) serial_ms = ms;
    if (threads == 8) t8_ms = ms;
    bench::LatencyRecorder lat;
    lat.Add(ms);
    size_t shards = PartitionKissRange(tree, threads).size();
    bench::PrintThroughputRow("ablation_parallel",
                              "t=" + std::to_string(threads),
                              /*n=*/1, ms, lat, shards);
  }
  if (serial_ms > 0 && t8_ms > 0) {
    std::printf("(speedup at t=8: %.2fx over t=1)\n", serial_ms / t8_ms);
  }
}

}  // namespace
}  // namespace qppt

int main() {
  qppt::Run();
  return 0;
}
