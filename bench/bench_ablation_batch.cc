// E10 — ablation: batch size for batched KISS-Tree lookups (§2.3).
//
// Batch size 1 degenerates to point lookups; growing batches let the
// software-pipelined prefetching (Algorithm 1) hide more DRAM latency,
// until the batch's working set itself stops fitting in cache.

#include <algorithm>
#include <benchmark/benchmark.h>
#include <cstdint>
#include <vector>

#include "index/kiss_tree.h"
#include "util/rng.h"

namespace qppt {
namespace {

constexpr size_t kKeys = 1 << 22;  // 4M keys: beyond LLC

void BM_BatchLookup(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  KissTree tree;
  for (uint32_t k = 0; k < kKeys; ++k) tree.Upsert(k, k);
  Rng rng(3);
  std::vector<uint32_t> probes(kKeys);
  for (auto& p : probes) p = static_cast<uint32_t>(rng.NextBounded(kKeys));
  std::vector<KissTree::LookupJob> jobs(batch);
  for (auto _ : state) {
    uint64_t sum = 0;
    size_t i = 0;
    while (i < probes.size()) {
      size_t len = std::min(batch, probes.size() - i);
      if (len == 1) {
        KissTree::ValueRef ref;
        tree.Lookup(probes[i], &ref);
        sum += ref.front();
      } else {
        for (size_t j = 0; j < len; ++j) jobs[j].key = probes[i + j];
        tree.BatchLookup(std::span<KissTree::LookupJob>(jobs.data(), len));
        for (size_t j = 0; j < len; ++j) sum += jobs[j].values.front();
      }
      i += len;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kKeys));
}

BENCHMARK(BM_BatchLookup)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qppt

BENCHMARK_MAIN();
