// E8 — ablation: duplicate handling (§2.4, Figure 4).
//
// Growing page-aligned segments vs. a naive linked list: the segment
// layout scans sequentially within 4 KiB pages (hardware-prefetch
// friendly), the linked list takes one random access per value. Appends
// are also measured — segments amortize allocation, lists pay one node
// per value.

#include <benchmark/benchmark.h>
#include <cstdint>
#include <vector>

#include "index/duplicate_chain.h"
#include "util/rng.h"

namespace qppt {
namespace {

// Many keys' duplicate lists interleaved in one arena, as inside a real
// intermediate index (interleaving is what makes list nodes scatter).
constexpr size_t kLists = 1024;

void BM_Duplicates_Segments_Append(benchmark::State& state) {
  size_t per_list = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    PageArena arena;
    std::vector<ValueList> lists(kLists);
    for (size_t v = 0; v < per_list; ++v) {
      for (auto& list : lists) list.Append(v, &arena);
    }
    benchmark::DoNotOptimize(lists[0].size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLists * per_list));
}

void BM_Duplicates_LinkedList_Append(benchmark::State& state) {
  size_t per_list = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Arena arena;
    std::vector<LinkedDuplicateList> lists(kLists);
    for (size_t v = 0; v < per_list; ++v) {
      for (auto& list : lists) list.Append(v, &arena);
    }
    benchmark::DoNotOptimize(lists[0].size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLists * per_list));
}

void BM_Duplicates_Segments_Scan(benchmark::State& state) {
  size_t per_list = static_cast<size_t>(state.range(0));
  PageArena arena;
  std::vector<ValueList> lists(kLists);
  for (size_t v = 0; v < per_list; ++v) {
    for (auto& list : lists) list.Append(v, &arena);
  }
  for (auto _ : state) {
    uint64_t sum = 0;
    for (const auto& list : lists) {
      list.ForEach([&](uint64_t v) { sum += v; });
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLists * per_list));
}

void BM_Duplicates_LinkedList_Scan(benchmark::State& state) {
  size_t per_list = static_cast<size_t>(state.range(0));
  Arena arena;
  std::vector<LinkedDuplicateList> lists(kLists);
  for (size_t v = 0; v < per_list; ++v) {
    for (auto& list : lists) list.Append(v, &arena);
  }
  for (auto _ : state) {
    uint64_t sum = 0;
    for (const auto& list : lists) {
      list.ForEach([&](uint64_t v) { sum += v; });
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLists * per_list));
}

BENCHMARK(BM_Duplicates_Segments_Append)->Arg(64)->Arg(1024);
BENCHMARK(BM_Duplicates_LinkedList_Append)->Arg(64)->Arg(1024);
BENCHMARK(BM_Duplicates_Segments_Scan)->Arg(64)->Arg(1024);
BENCHMARK(BM_Duplicates_LinkedList_Scan)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace qppt

BENCHMARK_MAIN();
