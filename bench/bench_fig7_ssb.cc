// E3 — Figure 7: execution time of all 13 SSB queries on the three
// systems: DexterDB/QPPT (this library), a commercial vector-at-a-time
// DBMS (proxy: the vector engine), and MonetDB (proxy: the column
// engine). Single-threaded, warm data, indexes prebuilt — the paper's
// setup. The paper ran SF=15; scale with QPPT_SSB_SF (default 0.1).
//
// Expected shape (paper): QPPT fastest on every query; margins small on
// the single-join 1.x queries, growing on 3.x/4.x where the columnar
// engines pay tuple-reconstruction costs per extra join column.

#include <cstdio>

#include "bench_common.h"
#include "ssb/queries_baseline.h"
#include "ssb/queries_qppt.h"

int main(int argc, char** argv) {
  using namespace qppt;
  using namespace qppt::bench;

  JsonReport json(argc, argv, "BENCH_fig7.json");
  auto data = LoadSsb();
  int reps = Repetitions();
  std::printf("SSB query performance (SF=%.2f, %zu lineorder rows, "
              "min of %d reps)\n\n",
              data->config.scale_factor,
              data->db.table("lineorder").value()->num_rows(), reps);
  std::printf("%-6s %16s %16s %16s %10s\n", "query", "DexterDB/QPPT[ms]",
              "Vector(comm.)[ms]", "Column(MonetDB)[ms]", "speedup");

  PlanKnobs knobs;
  double totals[3] = {0, 0, 0};
  for (const auto& id : ssb::AllQueryIds()) {
    // Explicit best-rep loop (not MinWallMs) so the reported morsel and
    // merge statistics come from the SAME rep as the reported wall time.
    size_t qppt_rows = 0;
    uint64_t qppt_morsels = 0;
    double qppt_merge_ms = 0;
    double qppt_ms = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      PlanStats stats;
      Timer t;
      auto r = ssb::RunQppt(*data, id, knobs, &stats);
      double ms = t.ElapsedMs();
      if (!r.ok()) {
        std::fprintf(stderr, "QPPT Q%s failed: %s\n", id.c_str(),
                     r.status().ToString().c_str());
        std::exit(1);
      }
      if (ms < qppt_ms) {
        qppt_ms = ms;
        qppt_rows = r->rows.size();
        qppt_morsels = stats.TotalMorsels();
        qppt_merge_ms = stats.TotalMergeMs();
      }
    }
    double vector_ms = MinWallMs(reps, [&] {
      auto r = ssb::RunVector(*data, id);
      if (!r.ok()) std::exit(1);
    });
    double column_ms = MinWallMs(reps, [&] {
      auto r = ssb::RunColumn(*data, id);
      if (!r.ok()) std::exit(1);
    });
    totals[0] += qppt_ms;
    totals[1] += vector_ms;
    totals[2] += column_ms;
    std::printf("Q%-5s %16.2f %16.2f %16.2f %9.2fx  (%zu rows)\n",
                id.c_str(), qppt_ms, vector_ms, column_ms,
                qppt_ms > 0 ? column_ms / qppt_ms : 0.0, qppt_rows);
    json.Add({"fig7", "qppt", id, 1, 1, qppt_ms, 0, 0, 0, qppt_morsels,
              qppt_merge_ms});
    json.Add({"fig7", "vector", id, 1, 1, vector_ms, 0, 0, 0, 0, 0});
    json.Add({"fig7", "column", id, 1, 1, column_ms, 0, 0, 0, 0, 0});
  }
  std::printf("%-6s %16.2f %16.2f %16.2f\n", "TOTAL", totals[0], totals[1],
              totals[2]);
  return 0;
}
