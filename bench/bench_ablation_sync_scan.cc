// E9 — ablation: synchronous index scan vs. probe-based join (§4.2).
//
// The synchronous scan's advantage is skipping subtrees absent from one
// side. Two KISS-Trees with a controlled key-overlap fraction are joined
// (a) by the synchronous index scan and (b) by scanning the left tree and
// point-probing the right. Low overlap should favor the synchronous scan.

#include <benchmark/benchmark.h>
#include <cstdint>

#include "core/sync_scan.h"
#include "index/kiss_tree.h"
#include "util/rng.h"

namespace qppt {
namespace {

constexpr size_t kKeys = 1 << 20;

struct TreePair {
  KissTree left;
  KissTree right;
};

// Left holds keys [0, kKeys); right holds `overlap_pct`% of them plus
// disjoint keys above the left range (same size both sides).
TreePair MakeTrees(int overlap_pct) {
  TreePair trees;
  Rng rng(9);
  for (uint32_t k = 0; k < kKeys; ++k) trees.left.Insert(k, k);
  uint32_t disjoint_base = kKeys * 2;
  for (uint32_t k = 0; k < kKeys; ++k) {
    if (rng.NextBounded(100) < static_cast<uint64_t>(overlap_pct)) {
      trees.right.Insert(k, k);
    } else {
      trees.right.Insert(disjoint_base + k, k);
    }
  }
  return trees;
}

void BM_Join_SynchronousScan(benchmark::State& state) {
  auto trees = MakeTrees(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    uint64_t matches = 0;
    SynchronousScan(trees.left, trees.right,
                    [&](uint32_t, const KissTree::ValueRef&,
                        const KissTree::ValueRef&) { ++matches; });
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kKeys));
}

void BM_Join_ProbeBased(benchmark::State& state) {
  auto trees = MakeTrees(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    uint64_t matches = 0;
    trees.left.ScanAll([&](uint32_t key, const KissTree::ValueRef&) {
      KissTree::ValueRef other;
      if (trees.right.Lookup(key, &other)) ++matches;
    });
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kKeys));
}

BENCHMARK(BM_Join_SynchronousScan)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_ProbeBased)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qppt

BENCHMARK_MAIN();
