#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full test suite.
# Usage:
#   scripts/verify.sh [Release|Debug]   build + ctest (default: Release)
#   scripts/verify.sh --analyze         static analysis: qppt_lint over the
#                                       tree, the lint fixture tests, and
#                                       clang-tidy on the tidy-clean modules
#                                       (src/util, src/storage, src/dbg)
#                                       when clang-tidy is installed.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build"

if [ "${1:-}" = "--analyze" ]; then
  python3 "$ROOT/scripts/analyze/qppt_lint.py"
  python3 "$ROOT/tests/lint_fixtures_test.py"
  if command -v clang-tidy >/dev/null 2>&1; then
    cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
    clang-tidy -p "$BUILD_DIR" --quiet \
      "$ROOT"/src/util/*.cc "$ROOT"/src/storage/*.cc "$ROOT"/src/dbg/*.cc
  else
    echo "verify --analyze: clang-tidy not installed; lint checks only"
  fi
  echo "verify --analyze: OK"
  exit 0
fi

BUILD_TYPE="${1:-Release}"

cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE="$BUILD_TYPE"
cmake --build "$BUILD_DIR" -j"$(nproc)"
cd "$BUILD_DIR"
ctest --output-on-failure -j"$(nproc)"
