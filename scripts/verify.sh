#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full test suite.
# Usage: scripts/verify.sh [Release|Debug]  (default: Release)
set -euo pipefail

BUILD_TYPE="${1:-Release}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build"

cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE="$BUILD_TYPE"
cmake --build "$BUILD_DIR" -j"$(nproc)"
cd "$BUILD_DIR"
ctest --output-on-failure -j"$(nproc)"
