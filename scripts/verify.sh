#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full test suite.
# Usage:
#   scripts/verify.sh [Release|Debug]   build + ctest (default: Release)
#   scripts/verify.sh --analyze         static analysis: qppt_lint over the
#                                       tree, the lint fixture tests, the
#                                       qppt-tidy plugin checks (built and
#                                       run when the LLVM dev headers and a
#                                       clang-tidy binary exist), and
#                                       clang-tidy on the tidy-clean modules
#                                       (src/util, src/storage, src/dbg).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build"

if [ "${1:-}" = "--analyze" ]; then
  python3 "$ROOT/tests/lint_fixtures_test.py"
  if command -v clang-tidy >/dev/null 2>&1; then
    cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
    # Build the qppt-tidy plugin if the headers allow; run the AST
    # checks over the full compile DB, then the regex lint with its
    # superseded fallbacks off. Exit 3 = plugin unavailable: fall back
    # to the pure-regex lint so the invariants stay covered.
    cmake --build "$BUILD_DIR" --target qppt-tidy -j"$(nproc)" \
      >/dev/null 2>&1 || true
    tidy_rc=0
    python3 "$ROOT/scripts/analyze/run_qppt_tidy.py" \
      --build-dir "$BUILD_DIR" || tidy_rc=$?
    if [ "$tidy_rc" = 0 ]; then
      python3 "$ROOT/scripts/analyze/run_qppt_tidy.py" \
        --build-dir "$BUILD_DIR" --fixtures
      python3 "$ROOT/scripts/analyze/qppt_lint.py" --ast-checks=skip
    elif [ "$tidy_rc" = 3 ]; then
      python3 "$ROOT/scripts/analyze/qppt_lint.py"
    else
      exit "$tidy_rc"
    fi
    clang-tidy -p "$BUILD_DIR" --quiet \
      "$ROOT"/src/util/*.cc "$ROOT"/src/storage/*.cc "$ROOT"/src/dbg/*.cc
  else
    echo "verify --analyze: clang-tidy not installed; lint checks only"
    python3 "$ROOT/scripts/analyze/qppt_lint.py"
  fi
  echo "verify --analyze: OK"
  exit 0
fi

BUILD_TYPE="${1:-Release}"

cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE="$BUILD_TYPE"
cmake --build "$BUILD_DIR" -j"$(nproc)"
cd "$BUILD_DIR"
ctest --output-on-failure -j"$(nproc)"
