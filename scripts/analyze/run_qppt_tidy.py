#!/usr/bin/env python3
"""Driver for the qppt-tidy clang-tidy plugin (tools/qppt-tidy).

Two modes:

  Full sweep (default) — runs all five qppt-* checks over every repo
  translation unit in the compilation database. This is the CI gate:
  any diagnostic fails with exit 1.

      python3 scripts/analyze/run_qppt_tidy.py --build-dir build

  Fixture corpus (--fixtures) — runs each check against its seeded
  violation fixture and clean twin under tests/lint_fixtures/tidy/.
  Expected diagnostics are the lines marked `// expect-warning`; the
  driver fails on any mismatch in either direction.

Exit codes: 0 clean, 1 findings/mismatch, 2 infrastructure error,
3 skipped (plugin .so or clang-tidy binary unavailable — the plugin is
build-optional; the regex lint still covers the tree).
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
FIXTURES = os.path.join(ROOT, "tests", "lint_fixtures", "tidy")

ALL_CHECKS = [
    "qppt-unchecked-status",
    "qppt-cancel-coverage",
    "qppt-ranked-lock",
    "qppt-atomics-discipline",
    "qppt-hot-path-alloc",
]

# fixture stem -> (check, extra CheckOptions). Empty HotDirs = the check
# applies everywhere, so fixtures need not live under the real hot dirs.
FIXTURE_CASES = {
    "unchecked_status": ("qppt-unchecked-status", {}),
    "cancel_coverage": ("qppt-cancel-coverage",
                        {"qppt-cancel-coverage.HotDirs": ""}),
    "ranked_lock": ("qppt-ranked-lock",
                    {"qppt-ranked-lock.RankedMutexFile":
                     os.path.join(FIXTURES, "ranked_mutexes_fixture.txt")}),
    "atomics_discipline": ("qppt-atomics-discipline",
                           {"qppt-atomics-discipline.PairsFile":
                            os.path.join(FIXTURES,
                                         "atomics_pairs_fixture.txt")}),
    "hot_path_alloc": ("qppt-hot-path-alloc",
                       {"qppt-hot-path-alloc.HotDirs": ""}),
}

DIAG_RE = re.compile(r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):\d+: "
                     r"(?:warning|error): .* \[(?P<check>qppt-[\w-]+)\]")


def find_clang_tidy(explicit):
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in ["clang-tidy"] + [f"clang-tidy-{v}" for v in
                                  range(19, 13, -1)]:
        if shutil.which(name):
            return name
    return None


def find_plugin(explicit, build_dir):
    if explicit:
        return explicit if os.path.exists(explicit) else None
    path = os.path.join(build_dir, "tools", "qppt-tidy", "libqppt-tidy.so")
    return path if os.path.exists(path) else None


def config_str(options):
    entries = [{"key": k, "value": v} for k, v in sorted(options.items())]
    return json.dumps({"CheckOptions": entries})


def run_tidy(tidy, plugin, checks, options, files, extra_args):
    cmd = [tidy, "-load", plugin, f"-checks=-*,{checks}",
           "-config=" + config_str(options)] + files + extra_args
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def parse_diags(stdout):
    diags = []
    for line in stdout.splitlines():
        m = DIAG_RE.match(line)
        if m:
            diags.append((os.path.normpath(m.group("file")),
                          int(m.group("line")), m.group("check"), line))
    return diags


def run_fixtures(tidy, plugin):
    failures = []
    cases = 0
    for stem, (check, options) in sorted(FIXTURE_CASES.items()):
        for kind in ("violation", "clean"):
            path = os.path.join(FIXTURES, f"{stem}_{kind}.cc")
            if not os.path.exists(path):
                failures.append(f"{stem}_{kind}.cc: fixture missing")
                continue
            cases += 1
            expected = set()
            with open(path) as f:
                for i, line in enumerate(f, start=1):
                    if "// expect-warning" in line:
                        expected.add(i)
            code, out, err = run_tidy(
                tidy, plugin, check, options, [path],
                ["--", "-std=c++20", "-w"])
            if code not in (0, 1):
                failures.append(f"{stem}_{kind}.cc: clang-tidy exit {code}:"
                                f"\n{out}\n{err}")
                continue
            got = {line for f_, line, c, _ in parse_diags(out)
                   if c == check and os.path.samefile(f_, path)}
            missing = expected - got
            surprise = got - expected
            if missing:
                failures.append(f"{stem}_{kind}.cc: no [{check}] diagnostic "
                                f"on expected line(s) {sorted(missing)}:"
                                f"\n{out}")
            if surprise:
                failures.append(f"{stem}_{kind}.cc: unexpected [{check}] "
                                f"diagnostic on line(s) {sorted(surprise)}:"
                                f"\n{out}")
    if failures:
        print("qppt-tidy fixture test FAILED:")
        for f in failures:
            print("  -", f)
        return 1
    print(f"qppt-tidy fixture test: {cases} fixtures behaved as expected")
    return 0


def repo_tus(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        print(f"error: {db_path} not found (configure with CMake first)",
              file=sys.stderr)
        sys.exit(2)
    with open(db_path) as f:
        db = json.load(f)
    files = []
    for entry in db:
        path = os.path.normpath(os.path.join(entry["directory"],
                                             entry["file"]))
        if not path.startswith(ROOT + os.sep) or "/_deps/" in path:
            continue  # third-party (gtest) TUs are not ours to lint
        files.append(path)
    return sorted(set(files))


def run_full(tidy, plugin, build_dir, jobs):
    options = {
        "qppt-ranked-lock.RankedMutexFile":
            os.path.join(ROOT, "scripts", "analyze", "ranked_mutexes.txt"),
        "qppt-atomics-discipline.PairsFile":
            os.path.join(ROOT, "scripts", "analyze", "atomics_pairs.txt"),
    }
    files = repo_tus(build_dir)
    header_filter = "^" + re.escape(ROOT) + "/(src|tests|bench|examples)/"
    checks = ",".join(ALL_CHECKS)
    findings = {}
    hard_errors = []

    def one(path):
        # -w: compiler warnings (incl. -Werror promotions under clang's
        # stricter diagnostics) must not fail the sweep — only qppt-*
        # check output matters here.
        return path, run_tidy(
            tidy, plugin, checks, options, [path],
            ["-p", build_dir, f"--header-filter={header_filter}",
             "--extra-arg=-w"])

    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        for path, (code, out, err) in pool.map(one, files):
            for file_, line, check, text in parse_diags(out):
                findings[(file_, line, check)] = text
            if code not in (0, 1) or "error: " in err:
                hard_errors.append(f"{os.path.relpath(path, ROOT)}: "
                                   f"clang-tidy exit {code}\n{err.strip()}")

    if hard_errors:
        print("qppt-tidy: infrastructure errors:")
        for e in hard_errors:
            print("  -", e)
        return 2
    if findings:
        print(f"qppt-tidy: {len(findings)} finding(s) over "
              f"{len(files)} translation units:")
        for key in sorted(findings):
            print("  " + findings[key])
        return 1
    print(f"qppt-tidy: clean over {len(files)} translation units "
          f"({len(ALL_CHECKS)} checks)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default=os.path.join(ROOT, "build"))
    ap.add_argument("--clang-tidy", default=None,
                    help="clang-tidy binary (default: search PATH)")
    ap.add_argument("--plugin", default=None,
                    help="plugin .so (default: <build-dir>/tools/qppt-tidy/)")
    ap.add_argument("--fixtures", action="store_true",
                    help="run the fixture corpus instead of the full sweep")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 4)
    args = ap.parse_args()

    tidy = find_clang_tidy(args.clang_tidy)
    if tidy is None:
        print("qppt-tidy: SKIPPED — no clang-tidy binary found")
        return 3
    plugin = find_plugin(args.plugin, args.build_dir)
    if plugin is None:
        print("qppt-tidy: SKIPPED — plugin not built "
              "(libqppt-tidy.so missing; needs LLVM/Clang dev headers)")
        return 3

    if args.fixtures:
        return run_fixtures(tidy, plugin)
    return run_full(tidy, plugin, args.build_dir, args.jobs)


if __name__ == "__main__":
    sys.exit(main())
