#!/usr/bin/env python3
"""QPPT concurrency-discipline lint.

Repo-specific checks that generic tooling cannot express:

  raw-slot-read      Published tree slot arrays (PrefixTree node slots,
                     KissTree root directory) may only be read through the
                     atomic accessors (LoadSlot/LoadRootSlot/LoadEntry and
                     the Store* counterparts). Raw indexing is allowed only
                     in the tree implementation files, where nodes are
                     still private to the building thread or the access
                     runs on the single-writer path under the database
                     write lock.

  relaxed-justify    Every memory_order_relaxed / __ATOMIC_RELAXED
                     operation must carry a "// relaxed: <why>"
                     justification on the same line or within the three
                     preceding lines.

  release-pair       Every release store must name its paired acquire
                     site with a "pairs-with: <tag>" comment (same line or
                     within the three preceding lines); tags must exist in
                     scripts/analyze/atomics_pairs.txt, and in full-tree
                     runs every catalogue entry must be referenced.

  hot-path-alloc     No non-placement new, malloc/calloc, or node-based
                     std containers (map/set/list/unordered_*) in the
                     hot-path directories src/index and src/core/operators.
                     Arena placement-new ("new (arena...) T") is fine.

  planstats-clear    A function taking a caller-supplied "PlanStats*" that
                     uses it must Clear() it, overwrite it wholesale
                     ("*stats = ..."), or forward it to a callee that does
                     (the accumulation contract in src/core/stats.h).

  failpoint-tag      Every QPPT_FAILPOINT / QPPT_FAILPOINT_STATUS site must
                     name a tag catalogued in scripts/analyze/failpoints.txt,
                     and in full-tree runs every catalogue entry must be
                     referenced by a site — the catalogue is the live
                     inventory of injectable faults.

Usage:
  qppt_lint.py                    # lint src/ under the repo root
  qppt_lint.py FILE...            # lint specific files
  --root DIR                      # repo root (default: two dirs up)
  --pairs FILE                    # pairing catalogue override
  --failpoints FILE               # failpoint catalogue override
  --treat-as-hot                  # apply hot-path-alloc to given FILEs
                                  # (fixture tests)

Exit status: 0 clean, 1 violations, 2 usage/config error.
"""

import argparse
import os
import re
import sys

# Files allowed to index slot arrays raw: node construction before
# publication, and the single-writer upsert path under the database write
# lock. Everything else goes through the acquire accessors.
RAW_SLOT_ALLOWLIST = {
    "src/index/kiss_tree.cc",
    "src/index/prefix_tree.cc",
}

# Hot-path directories where allocation must come from arenas.
HOT_PATH_DIRS = ("src/index/", "src/core/operators/")
# Hot-path files granted an explicit exemption (none today; add with a
# reason).
HOT_ALLOC_ALLOWLIST = set()

# How many lines above an atomic op a justification/pairing comment may
# sit (accessor doc comment + signature + TSan annotation).
COMMENT_LOOKBACK = 3

RELAXED_RE = re.compile(r"memory_order_relaxed|__ATOMIC_RELAXED")
RELEASE_RE = re.compile(r"memory_order_release|__ATOMIC_RELEASE")
RELAXED_COMMENT_RE = re.compile(r"//.*\brelaxed\b", re.IGNORECASE)
PAIRS_TAG_RE = re.compile(r"pairs-with:\s*([A-Za-z0-9_-]+)")
SLOT_ACCESS_RE = re.compile(r"->slots\[|\broot_\[")
NODE_CONTAINER_RE = re.compile(
    r"std::(?:multi)?(?:map|set)\s*<"
    r"|std::(?:forward_)?list\s*<"
    r"|std::unordered_(?:multi)?(?:map|set)\s*<")
RAW_NEW_RE = re.compile(r"\bnew\b(?!\s*\()")
RAW_MALLOC_RE = re.compile(r"\b(?:malloc|calloc)\s*\(")
PLANSTATS_PARAM_RE = re.compile(r"PlanStats\s*\*\s*(\w+)")
FAILPOINT_RE = re.compile(r"\bQPPT_FAILPOINT(?:_STATUS)?\s*\(\s*(\w+)\s*\)")


def strip_comment(line):
    """Drops a // comment (good enough: the tree has no // inside strings
    on lines these checks look at)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def load_pairs(path):
    tags = {}
    with open(path, encoding="utf-8") as f:
        for ln, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            tags[line.split()[0]] = ln
    return tags


def has_nearby_comment(lines, i, pattern):
    lo = max(0, i - COMMENT_LOOKBACK)
    return any(pattern.search(lines[j]) for j in range(lo, i + 1))


def nearby_pair_tag(lines, i):
    lo = max(0, i - COMMENT_LOOKBACK)
    for j in range(i, lo - 1, -1):
        m = PAIRS_TAG_RE.search(lines[j])
        if m:
            return m.group(1)
    return None


def is_address_taken(line, start):
    """True when the slot expression starting inside `line` at `start`
    has its address taken (passed to an accessor or a prefetch)."""
    j = start - 1
    while j >= 0 and (line[j].isalnum() or line[j] in "_.>-()"):
        j -= 1
    return j >= 0 and line[j] == "&"


class Linter:
    def __init__(self, pairs_path, failpoints_path, ast_fallback=True):
        # When the qppt-tidy clang-tidy plugin has already run (CI), the
        # three regex checks it supersedes — relaxed-justify,
        # release-pair, hot-path-alloc — are skipped here; the
        # file-shape checks (raw-slot-read, planstats-clear,
        # failpoint-tag, unused-catalogue-tag) always run.
        self.ast_fallback = ast_fallback
        self.errors = []
        self.pair_tags = load_pairs(pairs_path)
        self.pairs_path = pairs_path
        self.used_tags = set()
        self.failpoint_tags = load_pairs(failpoints_path)
        self.failpoints_path = failpoints_path
        self.used_failpoints = set()

    def error(self, path, line_no, check, msg):
        self.errors.append(f"{path}:{line_no}: [{check}] {msg}")

    def lint_file(self, path, rel, hot_override=False):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        lines = text.splitlines()
        self.check_slots(rel, lines)
        if self.ast_fallback:
            self.check_relaxed(rel, lines)
        self.check_release(rel, lines)
        self.check_failpoints(rel, lines)
        is_hot = hot_override or any(rel.startswith(d) for d in HOT_PATH_DIRS)
        if self.ast_fallback and is_hot and rel not in HOT_ALLOC_ALLOWLIST:
            self.check_hot_alloc(rel, lines)
        self.check_planstats(rel, text, lines)

    def check_slots(self, rel, lines):
        if rel in RAW_SLOT_ALLOWLIST:
            return
        for i, raw in enumerate(lines):
            line = strip_comment(raw)
            for m in SLOT_ACCESS_RE.finditer(line):
                if is_address_taken(line, m.start()):
                    continue  # &node->slots[i] fed to an accessor/prefetch
                self.error(
                    rel, i + 1, "raw-slot-read",
                    "raw access to a published tree slot array; use the "
                    "atomic accessors (LoadSlot/LoadRootSlot/LoadEntry / "
                    "Store*) or move the code into a tree implementation "
                    "file")

    def check_relaxed(self, rel, lines):
        for i, raw in enumerate(lines):
            if not RELAXED_RE.search(strip_comment(raw)):
                continue
            if has_nearby_comment(lines, i, RELAXED_COMMENT_RE):
                continue
            self.error(
                rel, i + 1, "relaxed-justify",
                "memory_order_relaxed without a \"// relaxed: <why>\" "
                "justification on the line or just above it")

    def check_release(self, rel, lines):
        for i, raw in enumerate(lines):
            if not RELEASE_RE.search(strip_comment(raw)):
                continue
            tag = nearby_pair_tag(lines, i)
            if tag is None:
                if self.ast_fallback:
                    self.error(
                        rel, i + 1, "release-pair",
                        "release store without a \"pairs-with: <tag>\" "
                        "comment naming its acquire site (catalogue: "
                        "scripts/analyze/atomics_pairs.txt)")
            elif tag not in self.pair_tags:
                if self.ast_fallback:
                    self.error(
                        rel, i + 1, "release-pair",
                        f"pairs-with tag '{tag}' is not in the catalogue "
                        f"({self.pairs_path})")
            else:
                self.used_tags.add(tag)

    def check_failpoints(self, rel, lines):
        for i, raw in enumerate(lines):
            if raw.lstrip().startswith("#"):
                continue  # the macro definitions themselves
            line = strip_comment(raw)
            for m in FAILPOINT_RE.finditer(line):
                tag = m.group(1)
                if tag not in self.failpoint_tags:
                    self.error(
                        rel, i + 1, "failpoint-tag",
                        f"failpoint tag '{tag}' is not in the catalogue "
                        f"({self.failpoints_path})")
                else:
                    self.used_failpoints.add(tag)

    def check_hot_alloc(self, rel, lines):
        for i, raw in enumerate(lines):
            if raw.lstrip().startswith("#"):
                continue  # includes (<new>, <list>) are not allocations
            line = strip_comment(raw)
            if NODE_CONTAINER_RE.search(line):
                self.error(
                    rel, i + 1, "hot-path-alloc",
                    "node-based std container in a hot-path directory; use "
                    "a flat structure or an arena-backed one")
            if RAW_NEW_RE.search(line) or RAW_MALLOC_RE.search(line):
                self.error(
                    rel, i + 1, "hot-path-alloc",
                    "raw heap allocation in a hot-path directory; allocate "
                    "from an arena (placement new into arena memory is "
                    "allowed)")

    def check_planstats(self, rel, text, lines):
        for m in PLANSTATS_PARAM_RE.finditer(text):
            name = m.group(1)
            # Find the end of the parameter list, then a body or a ';'.
            depth = 0
            j = m.end()
            while j < len(text):
                c = text[j]
                if c == "(":
                    depth += 1
                elif c == ")":
                    if depth == 0:
                        break
                    depth -= 1
                j += 1
            k = j
            while k < len(text) and text[k] not in "{;":
                k += 1
            if k >= len(text) or text[k] == ";":
                continue  # declaration only
            body_start = k
            depth = 0
            k2 = body_start
            while k2 < len(text):
                if text[k2] == "{":
                    depth += 1
                elif text[k2] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                k2 += 1
            body = text[body_start:k2 + 1]
            if not re.search(rf"\b{name}\b\s*(?:->|\.)", body) and \
               not re.search(rf"\*\s*{name}\b", body):
                continue  # parameter unused beyond forwarding/ignoring
            cleared = re.search(rf"\b{name}\s*->\s*Clear\s*\(", body)
            assigned = re.search(rf"\*\s*{name}\s*=[^=]", body)
            forwarded = re.search(rf"[(,]\s*{name}\s*[),]", body)
            if cleared or assigned or forwarded:
                continue
            line_no = text.count("\n", 0, m.start()) + 1
            self.error(
                rel, line_no, "planstats-clear",
                f"caller-supplied PlanStats* {name} is mutated without "
                "Clear(), wholesale assignment, or forwarding — it would "
                "accumulate across runs (contract: src/core/stats.h)")

    def finish(self, full_tree):
        if full_tree:
            for tag in sorted(set(self.pair_tags) - self.used_tags):
                self.error(
                    self.pairs_path, self.pair_tags[tag], "release-pair",
                    f"catalogue tag '{tag}' is referenced by no release "
                    "store; delete the entry or restore the tag")
            for tag in sorted(set(self.failpoint_tags)
                              - self.used_failpoints):
                self.error(
                    self.failpoints_path, self.failpoint_tags[tag],
                    "failpoint-tag",
                    f"catalogue tag '{tag}' is referenced by no failpoint "
                    "site; delete the entry or restore the site")
        return self.errors


def collect_default_files(root):
    out = []
    for dirpath, _, names in os.walk(os.path.join(root, "src")):
        for name in sorted(names):
            if name.endswith((".h", ".cc")):
                out.append(os.path.join(dirpath, name))
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*")
    ap.add_argument("--root", default=None)
    ap.add_argument("--pairs", default=None)
    ap.add_argument("--failpoints", default=None)
    ap.add_argument("--treat-as-hot", action="store_true",
                    help="apply hot-path-alloc to the given files")
    ap.add_argument("--ast-checks", choices=["python", "skip"],
                    default="python",
                    help="python (default): run the regex fallbacks for "
                    "the checks the qppt-tidy plugin supersedes; skip: "
                    "omit them because the plugin already ran (CI)")
    args = ap.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    pairs = args.pairs or os.path.join(
        root, "scripts", "analyze", "atomics_pairs.txt")
    if not os.path.exists(pairs):
        print(f"qppt_lint: pairing catalogue not found: {pairs}",
              file=sys.stderr)
        return 2
    failpoints = args.failpoints or os.path.join(
        root, "scripts", "analyze", "failpoints.txt")
    if not os.path.exists(failpoints):
        print(f"qppt_lint: failpoint catalogue not found: {failpoints}",
              file=sys.stderr)
        return 2

    full_tree = not args.files
    files = args.files or collect_default_files(root)
    if not files:
        print("qppt_lint: nothing to lint", file=sys.stderr)
        return 2

    linter = Linter(pairs, failpoints,
                    ast_fallback=args.ast_checks == "python")
    for path in files:
        rel = os.path.relpath(os.path.abspath(path), root).replace(
            os.sep, "/")
        linter.lint_file(path, rel, hot_override=args.treat_as_hot)
    errors = linter.finish(full_tree)
    for e in errors:
        print(e)
    if errors:
        print(f"qppt_lint: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print(f"qppt_lint: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
