#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "core/stats.h"
#include "util/arena.h"
#include "util/bits.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/status.h"

namespace qppt {
namespace {

// ---- Status / Result --------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_EQ(s.ToString(), "Not found: missing key");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::InvalidArgument("bad k'");
  Status t = s;
  EXPECT_TRUE(t.IsInvalidArgument());
  EXPECT_EQ(t.message(), "bad k'");
  EXPECT_TRUE(s.IsInvalidArgument());  // source unchanged
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 8; ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::OutOfRange("past the end");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Status UseHalf(int v, int* out) {
  QPPT_ASSIGN_OR_RETURN(*out, Half(v));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_TRUE(UseHalf(3, &out).IsInvalidArgument());
}

// ---- Arena --------------------------------------------------------------------

TEST(ArenaTest, AllocationsAreAligned) {
  Arena arena;
  for (size_t align : {size_t{1}, size_t{2}, size_t{8}, size_t{64}}) {
    void* p = arena.Allocate(17, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u) << align;
  }
}

TEST(ArenaTest, LargeAllocationGetsOwnBlock) {
  Arena arena(/*block_size=*/1024);
  void* p = arena.Allocate(1 << 20);
  ASSERT_NE(p, nullptr);
  // Still usable afterwards.
  void* q = arena.Allocate(16);
  ASSERT_NE(q, nullptr);
  EXPECT_GE(arena.bytes_reserved(), (1u << 20));
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena(/*block_size=*/256);
  std::vector<std::pair<char*, size_t>> allocs;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    size_t size = 1 + rng.NextBounded(100);
    char* p = static_cast<char*>(arena.Allocate(size));
    std::memset(p, static_cast<int>(i & 0xff), size);
    allocs.emplace_back(p, size);
  }
  // Verify every region still holds its fill pattern (no overlap).
  for (int i = 0; i < 200; ++i) {
    auto [p, size] = allocs[static_cast<size_t>(i)];
    for (size_t j = 0; j < size; ++j) {
      ASSERT_EQ(static_cast<unsigned char>(p[j]), i & 0xff);
    }
  }
}

TEST(ArenaTest, ResetReclaims) {
  Arena arena;
  arena.Allocate(1000);
  EXPECT_GT(arena.bytes_allocated(), 0u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  void* p = arena.Allocate(8);
  EXPECT_NE(p, nullptr);
}

TEST(ArenaTest, NewConstructsObject) {
  Arena arena;
  struct Point {
    int x, y;
    Point(int a, int b) : x(a), y(b) {}
  };
  Point* p = arena.New<Point>(3, 4);
  EXPECT_EQ(p->x, 3);
  EXPECT_EQ(p->y, 4);
}

TEST(ArenaTest, ReusableAcrossRepeatedResets) {
  Arena arena(/*block_size=*/512);
  for (int cycle = 0; cycle < 5; ++cycle) {
    std::vector<char*> allocs;
    for (int i = 0; i < 50; ++i) {
      char* p = static_cast<char*>(arena.Allocate(64));
      std::memset(p, cycle, 64);
      allocs.push_back(p);
    }
    EXPECT_EQ(arena.bytes_allocated(), 50u * 64u);
    EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
    // All allocations from this cycle are intact before the reset.
    for (char* p : allocs) {
      for (size_t j = 0; j < 64; ++j) {
        ASSERT_EQ(p[j], static_cast<char>(cycle));
      }
    }
    arena.Reset();
    EXPECT_EQ(arena.bytes_allocated(), 0u);
    EXPECT_EQ(arena.bytes_reserved(), 0u);
  }
}

TEST(PageArenaTest, PowerOfTwoAllocationsNeverStraddlePages) {
  PageArena arena;
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    size_t size = size_t{64} << rng.NextBounded(7);  // 64..4096
    uintptr_t p = reinterpret_cast<uintptr_t>(arena.Allocate(size));
    uintptr_t first_page = p / PageArena::kPageSize;
    uintptr_t last_page = (p + size - 1) / PageArena::kPageSize;
    ASSERT_EQ(first_page, last_page)
        << "allocation of " << size << " crossed a page boundary";
  }
}

TEST(PageArenaTest, OversizedAllocationIsPageAligned) {
  PageArena arena;
  uintptr_t p = reinterpret_cast<uintptr_t>(arena.Allocate(3 * 4096 + 5));
  EXPECT_EQ(p % PageArena::kPageSize, 0u);
}

// ---- Bits -----------------------------------------------------------------------

TEST(BitsTest, ExtractFragmentMsbFirst) {
  // Key bytes: 0xAB 0xCD = bits 1010 1011 1100 1101.
  uint8_t key[2] = {0xAB, 0xCD};
  EXPECT_EQ(ExtractFragment(key, 2, 0, 4), 0xAu);
  EXPECT_EQ(ExtractFragment(key, 2, 4, 4), 0xBu);
  EXPECT_EQ(ExtractFragment(key, 2, 8, 4), 0xCu);
  EXPECT_EQ(ExtractFragment(key, 2, 12, 4), 0xDu);
}

TEST(BitsTest, ExtractFragmentStraddleExact) {
  uint8_t key[2] = {0b10101011, 0b11001101};
  // offset 6, width 6: bits "11" + "1100" = 0b111100 = 60.
  EXPECT_EQ(ExtractFragment(key, 2, 6, 6), 60u);
  // offset 3, width 8: 0b01011110 0... bits 3..10 = 0 1011 110 -> 0b01011110=94
  EXPECT_EQ(ExtractFragment(key, 2, 3, 8), 94u);
}

TEST(BitsTest, ExtractFragmentAtKeyEnd) {
  uint8_t key[1] = {0x5A};
  EXPECT_EQ(ExtractFragment(key, 1, 4, 4), 0xAu);
  EXPECT_EQ(ExtractFragment(key, 1, 6, 2), 0x2u);
}

TEST(BitsTest, ExtractFragment32MatchesByteVersion) {
  uint32_t k = 0xDEADBEEF;
  uint8_t bytes[4] = {0xDE, 0xAD, 0xBE, 0xEF};
  for (size_t off = 0; off <= 28; off += 4) {
    EXPECT_EQ(ExtractFragment32(k, off, 4),
              ExtractFragment(bytes, 4, off, 4));
  }
}

TEST(BitsTest, NextPow2) {
  EXPECT_EQ(NextPow2(0), 1u);
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(2), 2u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(1023), 1024u);
  EXPECT_EQ(NextPow2(1024), 1024u);
}

// ---- Rng ------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, FixedSeedProducesStableStream) {
  // Golden values pin down the xoshiro256** + SplitMix64 seeding so a
  // silent algorithm change can't invalidate recorded benchmark datasets.
  Rng rng(42);
  const uint64_t golden[4] = {1546998764402558742ULL, 6990951692964543102ULL,
                              12544586762248559009ULL, 17057574109182124193ULL};
  for (uint64_t expected : golden) {
    EXPECT_EQ(rng.Next(), expected);
  }
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(77);
  std::vector<uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(rng.Next());
  rng.Seed(77);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(rng.Next(), first[static_cast<size_t>(i)]);
  }
  // Derived draws are deterministic too.
  Rng a(5), b(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next32(), b.Next32());
    EXPECT_EQ(a.NextDouble(), b.NextDouble());
    EXPECT_EQ(a.NextInRange(-10, 10), b.NextInRange(-10, 10));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// ---- PlanStats ------------------------------------------------------------------

TEST(PlanStatsTest, CounterRoundTrip) {
  PlanStats stats;
  OperatorStats op;
  op.name = "select(orderdate)";
  op.output_desc = "kiss(orderdate) 1.2M tuples";
  op.total_ms = 12.5;
  op.materialize_ms = 7.25;
  op.index_ms = 5.25;
  op.input_tuples = 6000000;
  op.output_tuples = 1200000;
  op.output_keys = 2406;
  op.output_bytes = 3 * 1024 * 1024;
  stats.operators.push_back(op);
  stats.total_ms = 12.5;

  // Counters survive the round trip through the stored struct...
  ASSERT_EQ(stats.operators.size(), 1u);
  const OperatorStats& back = stats.operators.front();
  EXPECT_EQ(back.input_tuples, 6000000u);
  EXPECT_EQ(back.output_tuples, 1200000u);
  EXPECT_EQ(back.output_keys, 2406u);
  EXPECT_EQ(back.output_bytes, 3u * 1024 * 1024);
  EXPECT_DOUBLE_EQ(back.total_ms, 12.5);
  EXPECT_DOUBLE_EQ(back.materialize_ms + back.index_ms, back.total_ms);

  // ...and show up in the demonstrator-style rendering.
  std::string rendered = stats.ToString();
  EXPECT_NE(rendered.find("select(orderdate)"), std::string::npos);
  EXPECT_NE(rendered.find("kiss(orderdate) 1.2M tuples"), std::string::npos);
  EXPECT_NE(rendered.find("1200000"), std::string::npos);
  EXPECT_NE(rendered.find("2406"), std::string::npos);
  EXPECT_NE(rendered.find("3.00"), std::string::npos);  // out_MiB
  EXPECT_NE(rendered.find("TOTAL"), std::string::npos);

  stats.Clear();
  EXPECT_TRUE(stats.operators.empty());
  EXPECT_EQ(stats.total_ms, 0.0);
}

TEST(TimerTest, ElapsedIsMonotonicAndRestartable) {
  Timer t;
  double first = t.ElapsedMs();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(t.ElapsedMs(), first);
  t.Restart();
  EXPECT_GE(t.ElapsedMs(), 0.0);
}

// ---- Env ------------------------------------------------------------------------

TEST(EnvTest, FallbacksWhenUnset) {
  ::unsetenv("QPPT_TEST_ENV_VAR");
  EXPECT_EQ(GetEnvInt64("QPPT_TEST_ENV_VAR", 42), 42);
  EXPECT_EQ(GetEnvDouble("QPPT_TEST_ENV_VAR", 1.5), 1.5);
  EXPECT_EQ(GetEnvString("QPPT_TEST_ENV_VAR", "dflt"), "dflt");
}

TEST(EnvTest, ParsesWhenSet) {
  ::setenv("QPPT_TEST_ENV_VAR", "-7", 1);
  EXPECT_EQ(GetEnvInt64("QPPT_TEST_ENV_VAR", 42), -7);
  ::setenv("QPPT_TEST_ENV_VAR", "2.25", 1);
  EXPECT_EQ(GetEnvDouble("QPPT_TEST_ENV_VAR", 0.0), 2.25);
  ::setenv("QPPT_TEST_ENV_VAR", "hello", 1);
  EXPECT_EQ(GetEnvString("QPPT_TEST_ENV_VAR", ""), "hello");
  ::unsetenv("QPPT_TEST_ENV_VAR");
}

TEST(EnvTest, UnparsableFallsBack) {
  ::setenv("QPPT_TEST_ENV_VAR", "notanumber", 1);
  EXPECT_EQ(GetEnvInt64("QPPT_TEST_ENV_VAR", 42), 42);
  ::unsetenv("QPPT_TEST_ENV_VAR");
}

}  // namespace
}  // namespace qppt
