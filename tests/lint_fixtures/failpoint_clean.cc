// Clean twin of failpoint_violation.cc: both sites name catalogued tags
// (scripts/analyze/failpoints.txt). qppt_lint must pass this file.
#include "util/failpoint.h"
#include "util/status.h"

namespace qppt {
void Grow() { QPPT_FAILPOINT(arena_grow); }
Status Publish() {
  QPPT_FAILPOINT_STATUS(commit_publish);
  return Status::OK();
}
}  // namespace qppt
