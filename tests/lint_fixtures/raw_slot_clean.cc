// Clean twin of raw_slot_violation.cc: the same traversals through the
// atomic accessors. qppt_lint must pass this file.
#include "index/prefix_tree.h"

namespace qppt {
size_t CountUsedSlots(const PrefixTree& tree, size_t fanout) {
  size_t used = 0;
  for (size_t i = 0; i < fanout; ++i) {
    if (PrefixTree::LoadSlot(&tree.root()->slots[i]) != 0) ++used;
  }
  return used;
}
}  // namespace qppt
