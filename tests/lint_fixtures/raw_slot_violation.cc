// Fixture: reads a published tree slot array without the atomic
// accessor. qppt_lint must flag [raw-slot-read] on both access lines.
#include "index/prefix_tree.h"

namespace qppt {
size_t CountUsedSlots(const PrefixTree& tree, size_t fanout) {
  size_t used = 0;
  for (size_t i = 0; i < fanout; ++i) {
    if (tree.root()->slots[i] != 0) ++used;  // raw read: flagged
  }
  return used;
}
uint32_t PeekRoot(const uint32_t* root_, size_t b) {
  return root_[b];  // raw read of the KISS root directory: flagged
}
}  // namespace qppt
