// Fixture: a driver mutates a caller-supplied PlanStats without
// Clear()/assignment/forwarding — operator rows would accumulate across
// runs. qppt_lint must flag [planstats-clear].
#include "core/stats.h"

namespace qppt {
void RunAndRecord(PlanStats* stats) {
  stats->total_ms = 1.0;
  stats->operators.push_back({});
}
}  // namespace qppt
