// Clean twin of hot_alloc_violation.cc: arena placement-new and a flat
// container. qppt_lint must pass this file even with --treat-as-hot.
#include <new>
#include <vector>

namespace qppt {
struct Arena { void* Allocate(unsigned long n, unsigned long a); };
int* MakeInt(Arena* arena) {
  return new (arena->Allocate(sizeof(int), alignof(int))) int(7);
}
std::vector<int> g_lookup;
}  // namespace qppt
