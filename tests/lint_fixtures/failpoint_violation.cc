// Fixture: failpoint sites naming tags that are not catalogued in
// scripts/analyze/failpoints.txt. qppt_lint must flag [failpoint-tag]
// on both sites.
#include "util/failpoint.h"
#include "util/status.h"

namespace qppt {
void Grow() { QPPT_FAILPOINT(totally_unknown_tag); }
Status Publish() {
  QPPT_FAILPOINT_STATUS(another_unknown_tag);
  return Status::OK();
}
}  // namespace qppt
