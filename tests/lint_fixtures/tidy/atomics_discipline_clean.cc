// Fixture: qppt-atomics-discipline clean twin — justified relaxed ops,
// a catalogued release edge, and default (seq_cst) operations must all
// pass.

#include <atomic>

namespace fixture {

std::atomic<int> Counter{0};
std::atomic<unsigned> Flags{0};

int Read() {
  // relaxed: monotonic statistics counter, no ordering required.
  return Counter.load(std::memory_order_relaxed);
}

void Publish() {
  // pairs-with: fixture-edge
  Flags.store(1, std::memory_order_release);
}

unsigned AcquireSide() {
  return Flags.load(std::memory_order_acquire);  // acquire needs no tag
}

int ReadDefault() {
  return Counter.load();  // defaulted seq_cst — never annotation-worthy
}

void Bump() { Counter.fetch_add(1); }

}  // namespace fixture
