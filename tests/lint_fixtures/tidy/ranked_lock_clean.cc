// Fixture: qppt-ranked-lock clean twin — a ranked wrapper, a raw guard
// over an unregistered mutex, and the lock-rank: manual escape hatch
// must all pass.

#include <mutex>

namespace fixture {

struct Engine {
  std::mutex mu_;
};

std::mutex GlobalMu;
std::mutex FreeAgent;  // not rank-registered — raw guards stay legal

// Stand-in for dbg::RankedLockGuard: guards built over a *parameter*
// never resolve to a registered member, so the wrapper itself is clean.
class RankedLockGuard {
 public:
  explicit RankedLockGuard(std::mutex& mu) : lock_(mu) {}

 private:
  std::lock_guard<std::mutex> lock_;
};

void Guards(Engine* e) {
  RankedLockGuard g1(e->mu_);
  std::lock_guard<std::mutex> g2(FreeAgent);
  // lock-rank: manual — fixture demonstrates the escape hatch.
  std::unique_lock<std::mutex> g3(GlobalMu);
  g3.unlock();
}

}  // namespace fixture
