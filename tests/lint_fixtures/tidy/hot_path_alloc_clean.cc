// Fixture: qppt-hot-path-alloc clean twin — arena placement new, a
// template callback (no type erasure), reference views instead of
// copies, and the alloc-exempt escape hatch must all pass.

#include <cstddef>
#include <new>
#include <vector>

namespace fixture {

template <typename Fn>
int RunInline(const Fn& fn) {
  return fn(7);
}

struct Node {
  int v;
};

alignas(Node) unsigned char Arena[64];

int HotLoop(const std::vector<int>& values) {
  int sum = 0;
  Node* n = new (Arena) Node{1};  // placement new into the arena
  sum += RunInline([&](int v) { return v + sum; });
  const std::vector<int>& view = values;  // a view, not a copy
  // alloc-exempt: fixture demonstrates the sanctioned setup-copy hatch.
  std::vector<int> copy = values;
  sum += static_cast<int>(view.size() + copy.size()) + n->v;
  return sum;
}

}  // namespace fixture
