// Fixture: qppt-ranked-lock must flag raw std guards over mutexes
// listed in the fixture registry (ranked_mutexes_fixture.txt):
// fixture::Engine::mu_ and fixture::GlobalMu.

#include <mutex>

namespace fixture {

struct Engine {
  std::mutex mu_;
};

std::mutex GlobalMu;

void RawGuards(Engine* e) {
  std::lock_guard<std::mutex> g1(e->mu_);     // expect-warning
  std::unique_lock<std::mutex> g2(GlobalMu);  // expect-warning
  g2.unlock();
}

}  // namespace fixture
