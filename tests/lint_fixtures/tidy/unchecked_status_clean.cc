// Fixture: qppt-unchecked-status clean twin — checked, propagated, and
// explicitly-voided returns must produce no diagnostics, and a
// reference-returning accessor is never a by-value discard.

namespace qppt {

class Status {
 public:
  Status() = default;
  ~Status() {}
  bool ok() const { return ok_; }

 private:
  bool ok_ = true;
};

template <typename T>
class Result {
 public:
  explicit Result(T v) : value_(v) {}
  ~Result() {}
  const T& value() const { return value_; }

 private:
  T value_;
};

Status DoWork();
Result<int> Compute();
Status& SharedStatus();

}  // namespace qppt

namespace fixture {

int Driver() {
  qppt::Status st = qppt::DoWork();
  if (!st.ok()) return -1;
  // Sanctioned discard: the explicit void cast documents intent.
  (void)qppt::DoWork();
  qppt::Result<int> r = qppt::Compute();
  qppt::SharedStatus();  // reference return — nothing is discarded
  return r.value();
}

}  // namespace fixture
