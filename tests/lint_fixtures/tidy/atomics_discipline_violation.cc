// Fixture: qppt-atomics-discipline must flag unjustified relaxed
// operations, untagged release stores, and unknown pairing tags. The
// aliased-order case is the one the regex lint cannot see: the order is
// recovered by constant evaluation, not text matching.

#include <atomic>

namespace fixture {

std::atomic<int> Counter{0};
std::atomic<unsigned> Flags{0};

int ReadHot() {
  return Counter.load(std::memory_order_relaxed);  // expect-warning
}

int ReadAliased() {
  constexpr auto kOrder = std::memory_order_relaxed;
  return Counter.load(kOrder);  // expect-warning
}

void Publish() {
  Flags.store(1, std::memory_order_release);  // expect-warning
}

void PublishWrongTag() {
  // pairs-with: not-a-real-tag
  Flags.store(2, std::memory_order_release);  // expect-warning
}

}  // namespace fixture
