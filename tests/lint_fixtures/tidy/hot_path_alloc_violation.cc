// Fixture: qppt-hot-path-alloc must flag the allocations a regex token
// ban cannot see — raw operator new, the implicit std::function
// construction at a type-erased call boundary, and a deep container
// copy. (The fixture run sets HotDirs to empty = everywhere.)

#include <cstddef>
#include <functional>
#include <vector>

namespace fixture {

int RunErased(const std::function<int(int)>& fn) { return fn(7); }

int HotLoop(const std::vector<int>& values) {
  int sum = 0;
  int* scratch = new int[4];                        // expect-warning
  scratch[0] = 1;
  sum += RunErased([&](int v) { return v + sum; });  // expect-warning
  std::vector<int> copy = values;                   // expect-warning
  sum += static_cast<int>(copy.size()) + scratch[0];
  delete[] scratch;
  return sum;
}

}  // namespace fixture
