// Fixture: qppt-unchecked-status must flag every marked line — a
// by-value qppt::Status / qppt::Result discarded as a bare statement.
// The check keys on the return TYPE, not [[nodiscard]], so it holds in
// TUs compiled without -Werror.

namespace qppt {

class Status {
 public:
  Status() = default;
  ~Status() {}  // non-trivial, like the real Status (ExprWithCleanups)
  bool ok() const { return ok_; }

 private:
  bool ok_ = true;
};

template <typename T>
class Result {
 public:
  explicit Result(T v) : value_(v) {}
  ~Result() {}
  const T& value() const { return value_; }

 private:
  T value_;
};

Status DoWork();
Result<int> Compute();

}  // namespace qppt

namespace fixture {

void Driver(bool flag) {
  qppt::DoWork();            // expect-warning
  qppt::Compute();           // expect-warning
  if (flag) qppt::DoWork();  // expect-warning
  for (int i = 0; i < 2; ++i) qppt::DoWork();  // expect-warning
}

}  // namespace fixture
