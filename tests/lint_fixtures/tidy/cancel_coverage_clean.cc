// Fixture: qppt-cancel-coverage clean twin — a polling function, a
// helper with no cancel source in scope (the index-internal shape), and
// the cancel-exempt escape hatch must all pass.

namespace qppt {

class CancelToken {
 public:
  bool cancel_requested() const { return false; }
  int Check() const { return 0; }
};

class CancelTicker {
 public:
  explicit CancelTicker(const CancelToken* t) : token_(t) {}
  void Tick() {}

 private:
  const CancelToken* token_;
};

struct ExecContext {
  const CancelToken* cancel() const { return &token_; }
  CancelToken token_;
};

template <typename Fn>
void SynchronousScan(const Fn& fn) {
  for (int i = 0; i < 100; ++i) fn(i);
}

}  // namespace qppt

namespace fixture {

// Polls once per emitted tuple — the serial-operator pattern.
int PolledScan(qppt::ExecContext* ctx) {
  qppt::CancelTicker ticker(ctx->cancel());
  int sum = 0;
  qppt::SynchronousScan([&](int v) {
    ticker.Tick();
    sum += v;
  });
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) sum += i * j;
  }
  return sum;
}

// No cancel source reachable from here: cancellation is the caller's
// job (the kiss_tree.cc shape), so nothing is flagged.
int PureHelper() {
  int sum = 0;
  qppt::SynchronousScan([&](int v) { sum += v; });
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) sum += i * j;
  }
  return sum;
}

// Deliberately exempt: constant-bounded work.
int ExemptScan(qppt::ExecContext* ctx) {
  int sum = ctx != nullptr ? 1 : 0;
  // cancel-exempt: bounded 3x3 constant walk, finishes in nanoseconds.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) sum += i * j;
  }
  return sum;
}

}  // namespace fixture
