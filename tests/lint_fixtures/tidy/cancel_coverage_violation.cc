// Fixture: qppt-cancel-coverage must flag scan primitives and nested
// loops in a function that can reach the cancellation machinery but
// never polls it. (The fixture run sets HotDirs to empty = everywhere.)

namespace qppt {

class CancelToken {
 public:
  bool cancel_requested() const { return false; }
  int Check() const { return 0; }
};

class CancelTicker {
 public:
  explicit CancelTicker(const CancelToken* t) : token_(t) {}
  void Tick() {}

 private:
  const CancelToken* token_;
};

struct ExecContext {
  const CancelToken* cancel() const { return &token_; }
  CancelToken token_;
};

template <typename Fn>
void SynchronousScan(const Fn& fn) {
  for (int i = 0; i < 100; ++i) fn(i);
}

}  // namespace qppt

namespace fixture {

int UnpolledScan(qppt::ExecContext* ctx) {
  int sum = ctx != nullptr ? 1 : 0;
  qppt::SynchronousScan([&](int v) { sum += v; });  // expect-warning
  for (int i = 0; i < 8; ++i) {                     // expect-warning
    for (int j = 0; j < 8; ++j) sum += i * j;
  }
  return sum;
}

}  // namespace fixture
