// Fixture: relaxed atomics without justification comments. qppt_lint
// must flag [relaxed-justify] on both operation lines.
#include <atomic>

namespace qppt {
std::atomic<uint64_t> g_counter{0};
void Bump() { g_counter.fetch_add(1, std::memory_order_relaxed); }
uint64_t Peek() { return g_counter.load(std::memory_order_relaxed); }
}  // namespace qppt
