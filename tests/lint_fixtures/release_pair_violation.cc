// Fixture: release stores without valid pairs-with tags. qppt_lint must
// flag [release-pair] twice: once for the missing tag, once for a tag
// that is not in the catalogue.
#include <atomic>

namespace qppt {
std::atomic<int> g_ready{0};
std::atomic<int> g_other{0};
void PublishUntagged() {
  g_ready.store(1, std::memory_order_release);  // no tag: flagged
}
void PublishUnknownTag() {
  // pairs-with: no-such-tag-in-catalogue
  g_other.store(1, std::memory_order_release);  // unknown tag: flagged
}
}  // namespace qppt
