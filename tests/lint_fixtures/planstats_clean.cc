// Clean twins of planstats_violation.cc: Clear() at entry, wholesale
// assignment, and forwarding all satisfy the contract. qppt_lint must
// pass this file.
#include "core/stats.h"

namespace qppt {
void RunAndRecordCleared(PlanStats* stats) {
  if (stats != nullptr) stats->Clear();
  stats->operators.push_back({});
}
void RunAndRecordAssigned(PlanStats* stats, const PlanStats& fresh) {
  *stats = fresh;
  stats->total_ms = 1.0;
}
void RunAndRecordForwarded(PlanStats* stats) {
  RunAndRecordCleared(stats);
  stats->total_ms = 1.0;
}
}  // namespace qppt
