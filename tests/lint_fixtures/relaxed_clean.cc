// Clean twin of relaxed_violation.cc: every relaxed op justified on the
// line or just above it. qppt_lint must pass this file.
#include <atomic>

namespace qppt {
std::atomic<uint64_t> g_counter{0};
void Bump() {
  // relaxed: statistics counter; no ordering needed.
  g_counter.fetch_add(1, std::memory_order_relaxed);
}
uint64_t Peek() {
  return g_counter.load(std::memory_order_relaxed);  // relaxed: stats read
}
}  // namespace qppt
