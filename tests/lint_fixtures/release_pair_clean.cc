// Clean twin of release_pair_violation.cc: the release store names a
// catalogued acquire site. qppt_lint must pass this file.
#include <atomic>

namespace qppt {
std::atomic<int> g_ready{0};
void Publish() {
  // pairs-with: mvcc-head
  g_ready.store(1, std::memory_order_release);
}
}  // namespace qppt
