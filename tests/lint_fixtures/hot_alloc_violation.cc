// Fixture: heap allocation and a node-based container, linted with
// --treat-as-hot. qppt_lint must flag [hot-path-alloc] three times.
#include <cstdlib>
#include <map>

namespace qppt {
int* MakeInt() { return new int(7); }  // raw new: flagged
void* MakeBytes() { return malloc(64); }  // malloc: flagged
std::map<int, int> g_lookup;  // node-based container: flagged
}  // namespace qppt
