#include <gtest/gtest.h>

#include <set>

#include "ssb/dbgen.h"

namespace qppt::ssb {
namespace {

SsbConfig TestConfig(double sf = 0.01) {
  SsbConfig cfg;
  cfg.scale_factor = sf;
  cfg.seed = 7;
  return cfg;
}

TEST(SsbSchemaTest, NationRegionMapping) {
  EXPECT_EQ(RegionOfNation(0), 0);    // ALGERIA -> AFRICA
  EXPECT_EQ(RegionOfNation(9), 1);    // UNITED STATES -> AMERICA
  EXPECT_EQ(RegionOfNation(19), 3);   // UNITED KINGDOM -> EUROPE
  EXPECT_EQ(RegionOfNation(24), 4);   // SAUDI ARABIA -> MIDDLE EAST
}

TEST(SsbSchemaTest, CityNames) {
  // The SSB city format: nation truncated/padded to 9 chars + digit.
  EXPECT_EQ(CityName(19, 1), "UNITED KI1");
  EXPECT_EQ(CityName(19, 5), "UNITED KI5");
  EXPECT_EQ(CityName(4, 0), "MOZAMBIQU0");
  EXPECT_EQ(CityName(10, 3), "CHINA    3");
}

TEST(SsbSchemaTest, DictionariesAreOrderPreserving) {
  SsbDictionaries d = MakeDictionaries();
  EXPECT_EQ(d.region->size(), 5u);
  EXPECT_EQ(d.nation->size(), 25u);
  EXPECT_EQ(d.city->size(), 250u);
  EXPECT_EQ(d.mfgr->size(), 5u);
  EXPECT_EQ(d.category->size(), 25u);
  EXPECT_EQ(d.brand->size(), 1000u);
  // The Q2.2 BETWEEN range must cover exactly brands 2221..2228.
  int64_t lo = d.brand->CodeOf("MFGR#2221").value();
  int64_t hi = d.brand->CodeOf("MFGR#2228").value();
  EXPECT_EQ(hi - lo, 7);
}

TEST(SsbDbgenTest, RowCountsMatchScaleFactor) {
  auto data = Generate(TestConfig(0.01));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ((*data)->db.table("lineorder").value()->num_rows(),
            LineorderCount(0.01));
  EXPECT_EQ((*data)->db.table("customer").value()->num_rows(),
            CustomerCount(0.01));
  EXPECT_EQ((*data)->db.table("supplier").value()->num_rows(),
            SupplierCount(0.01));
  EXPECT_EQ((*data)->db.table("part").value()->num_rows(), PartCount(0.01));
  // Seven years of dates.
  EXPECT_EQ((*data)->db.table("date").value()->num_rows(), 2557u);
}

TEST(SsbDbgenTest, DeterministicForSeed) {
  auto a = Generate(TestConfig());
  auto b = Generate(TestConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const RowTable* ta = (*a)->db.table("lineorder").value();
  const RowTable* tb = (*b)->db.table("lineorder").value();
  ASSERT_EQ(ta->num_rows(), tb->num_rows());
  for (Rid r = 0; r < std::min<Rid>(1000, ta->num_rows()); ++r) {
    for (size_t c = 0; c < ta->schema().num_columns(); ++c) {
      ASSERT_EQ(ta->GetSlot(r, c), tb->GetSlot(r, c));
    }
  }
}

TEST(SsbDbgenTest, DateTableIsACalendar) {
  auto data = Generate(TestConfig());
  ASSERT_TRUE(data.ok());
  const RowTable* date = (*data)->db.table("date").value();
  std::set<int64_t> years;
  int64_t prev_key = 0;
  for (Rid r = 0; r < date->num_rows(); ++r) {
    int64_t key = Int64FromSlot(date->GetSlot(r, 0));
    EXPECT_GT(key, prev_key);  // strictly increasing datekeys
    prev_key = key;
    years.insert(Int64FromSlot(date->GetSlot(r, 1)));
    int64_t week = Int64FromSlot(date->GetSlot(r, 4));
    EXPECT_GE(week, 1);
    EXPECT_LE(week, 53);
  }
  EXPECT_EQ(years.size(), 7u);
  EXPECT_EQ(*years.begin(), 1992);
  EXPECT_EQ(*years.rbegin(), 1998);
  // 1992 and 1996 are leap years: 5*365 + 2*366 = 2557 days.
  EXPECT_EQ(date->num_rows(), 2557u);
}

TEST(SsbDbgenTest, AttributeDomains) {
  auto data = Generate(TestConfig());
  ASSERT_TRUE(data.ok());
  const RowTable* lo = (*data)->db.table("lineorder").value();
  for (Rid r = 0; r < std::min<Rid>(5000, lo->num_rows()); ++r) {
    int64_t quantity = Int64FromSlot(lo->GetSlot(r, 4));
    int64_t discount = Int64FromSlot(lo->GetSlot(r, 6));
    int64_t price = Int64FromSlot(lo->GetSlot(r, 5));
    int64_t revenue = Int64FromSlot(lo->GetSlot(r, 7));
    EXPECT_GE(quantity, 1);
    EXPECT_LE(quantity, 50);
    EXPECT_GE(discount, 0);
    EXPECT_LE(discount, 10);
    EXPECT_EQ(revenue, price * (100 - discount) / 100);
  }
}

TEST(SsbDbgenTest, HierarchyCorrelations) {
  // brand determines category determines manufacturer; city determines
  // nation determines region.
  auto data = Generate(TestConfig());
  ASSERT_TRUE(data.ok());
  const RowTable* part = (*data)->db.table("part").value();
  const auto& dicts = (*data)->dicts;
  for (Rid r = 0; r < std::min<Rid>(500, part->num_rows()); ++r) {
    std::string mfgr =
        dicts.mfgr->StringOf(Int64FromSlot(part->GetSlot(r, 1)));
    std::string category =
        dicts.category->StringOf(Int64FromSlot(part->GetSlot(r, 2)));
    std::string brand =
        dicts.brand->StringOf(Int64FromSlot(part->GetSlot(r, 3)));
    EXPECT_EQ(category.substr(0, mfgr.size()), mfgr);
    EXPECT_EQ(brand.substr(0, category.size()), category);
  }
  const RowTable* cust = (*data)->db.table("customer").value();
  for (Rid r = 0; r < std::min<Rid>(500, cust->num_rows()); ++r) {
    std::string city =
        dicts.city->StringOf(Int64FromSlot(cust->GetSlot(r, 1)));
    std::string nation =
        dicts.nation->StringOf(Int64FromSlot(cust->GetSlot(r, 2)));
    std::string nine = nation;
    nine.resize(9, ' ');
    EXPECT_EQ(city.substr(0, 9), nine);
  }
}

TEST(SsbDbgenTest, BaseIndexPoolBuilt) {
  auto data = Generate(TestConfig());
  ASSERT_TRUE(data.ok());
  for (const char* name :
       {"lo_partkey", "lo_custkey", "lo_discount", "p_category", "p_brand1",
        "p_mfgr", "s_region", "s_nation", "s_city", "c_region", "c_nation",
        "c_city", "d_datekey", "d_year", "d_yearmonthnum"}) {
    EXPECT_TRUE((*data)->db.index(name).ok()) << name;
  }
  // Fact indexes cover every lineorder row.
  EXPECT_EQ((*data)->db.index("lo_partkey").value()->num_rows(),
            (*data)->db.table("lineorder").value()->num_rows());
}

TEST(SsbDbgenTest, ColumnarCopiesMatchRowStore) {
  auto data = Generate(TestConfig());
  ASSERT_TRUE(data.ok());
  const ColumnTable& lo_col = (*data)->Columnar("lineorder");
  const RowTable* lo_row = (*data)->db.table("lineorder").value();
  ASSERT_EQ(lo_col.num_rows(), lo_row->num_rows());
  for (Rid r = 0; r < std::min<Rid>(1000, lo_row->num_rows()); ++r) {
    for (size_t c = 0; c < lo_row->schema().num_columns(); ++c) {
      ASSERT_EQ(lo_col.column(c)[r], lo_row->GetSlot(r, c));
    }
  }
  // Cached: same object on second call.
  EXPECT_EQ(&(*data)->Columnar("lineorder"), &lo_col);
}

}  // namespace
}  // namespace qppt::ssb
