// Parallel star join across index families (ISSUE 4).
//
// The star join's synchronous scan now has three main-pair shapes —
// KISS x KISS, prefix x prefix (branching-level pair morsels), and the
// mixed KISS x prefix batched-probe path — and all of them must produce
// results identical to the serial reference, across worker counts, on
// real SSB plans. The index families are steered two ways:
//   * SsbConfig::prefer_kiss=false builds prefix-tree BASE indexes,
//   * PlanKnobs::table_options.prefer_kiss=false builds prefix-tree
//     INTERMEDIATES,
// so the four combinations cover kiss x kiss, both mixed orientations,
// and prefix x prefix. Runs under the TSan CI job (label: engine).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/query/query_spec.h"
#include "engine/scheduler.h"
#include "engine/session.h"
#include "ssb/queries_qppt.h"

namespace qppt::ssb {
namespace {

constexpr double kScaleFactor = 0.01;

class StarJoinParallelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SsbConfig kiss_cfg;
    kiss_cfg.scale_factor = kScaleFactor;
    kiss_cfg.seed = 7;
    auto kiss = Generate(kiss_cfg);
    ASSERT_TRUE(kiss.ok());
    kiss_data_ = kiss->release();

    SsbConfig prefix_cfg = kiss_cfg;
    prefix_cfg.prefer_kiss = false;  // prefix-tree base indexes
    auto prefix = Generate(prefix_cfg);
    ASSERT_TRUE(prefix.ok());
    prefix_data_ = prefix->release();
  }
  static void TearDownTestSuite() {
    delete kiss_data_;
    kiss_data_ = nullptr;
    delete prefix_data_;
    prefix_data_ = nullptr;
  }

  static void ExpectSameResults(const QueryResult& a, const QueryResult& b,
                                const std::string& label) {
    ASSERT_EQ(a.rows.size(), b.rows.size()) << label;
    for (size_t i = 0; i < a.rows.size(); ++i) {
      ASSERT_EQ(a.rows[i].size(), b.rows[i].size()) << label << " row " << i;
      for (size_t c = 0; c < a.rows[i].size(); ++c) {
        ASSERT_EQ(a.rows[i][c], b.rows[i][c])
            << label << " row " << i << " col " << c;
      }
    }
  }

  static SsbData* kiss_data_;
  static SsbData* prefix_data_;
};

SsbData* StarJoinParallelTest::kiss_data_ = nullptr;
SsbData* StarJoinParallelTest::prefix_data_ = nullptr;

// The whole flight: every query's star join must agree in every family.
const std::vector<std::string>& GridQueries() { return AllQueryIds(); }

TEST_F(StarJoinParallelTest, AllFamilyCombosAgreeWithSerialAcrossThreads) {
  struct Combo {
    const char* name;
    SsbData* data;
    bool intermediates_kiss;
  };
  const Combo combos[] = {
      {"kiss x kiss", kiss_data_, true},
      {"kiss base x prefix intermediates (mixed)", kiss_data_, false},
      {"prefix base x kiss intermediates (mixed)", prefix_data_, true},
      {"prefix x prefix", prefix_data_, false},
  };
  for (const auto& combo : combos) {
    PlanKnobs knobs;
    knobs.table_options.prefer_kiss = combo.intermediates_kiss;
    for (const auto& id : GridQueries()) {
      auto reference = RunQppt(*kiss_data_, id, PlanKnobs{});
      ASSERT_TRUE(reference.ok()) << reference.status();
      for (size_t threads : {1, 2, 8}) {
        engine::EngineConfig cfg;
        cfg.threads = threads;
        cfg.clamp_threads_to_hardware = false;  // tiny CI boxes
        engine::EngineRunner runner(cfg);
        PlanStats stats;
        auto got = RunQppt(runner, *combo.data, id, knobs, &stats);
        ASSERT_TRUE(got.ok())
            << combo.name << " Q" << id << " t=" << threads << ": "
            << got.status();
        ExpectSameResults(*reference, *got,
                          std::string(combo.name) + " Q" + id + " t=" +
                              std::to_string(threads));
      }
    }
  }
}

// Acceptance: the star join with prefix-tree mains must actually execute
// on the worker pool — PlanStats shows morsels > 1 at threads > 1 for
// the join operator, not just for upstream selections.
TEST_F(StarJoinParallelTest, PrefixMainsStarJoinRunsMorselParallel) {
  PlanKnobs knobs;
  knobs.table_options.prefer_kiss = false;
  engine::EngineConfig cfg;
  cfg.threads = 8;
  cfg.clamp_threads_to_hardware = false;  // tiny CI boxes
  engine::EngineRunner runner(cfg);
  for (const std::string id : {"2.1", "3.1"}) {
    PlanStats stats;
    auto result = RunQppt(runner, *prefix_data_, id, knobs, &stats);
    ASSERT_TRUE(result.ok()) << result.status();
    bool join_parallel = false;
    for (const auto& op : stats.operators) {
      if (op.name.rfind("join:", 0) == 0 && op.morsels > 1) {
        join_parallel = true;
      }
    }
    EXPECT_TRUE(join_parallel)
        << "Q" << id << " star join stayed serial:\n" << stats.ToString();
  }
}

// The mixed kiss/prefix path morsel-parallelizes over the KISS side too.
TEST_F(StarJoinParallelTest, MixedMainsStarJoinRunsMorselParallel) {
  PlanKnobs knobs;
  knobs.table_options.prefer_kiss = false;  // intermediates prefix
  engine::EngineConfig cfg;
  cfg.threads = 8;
  cfg.clamp_threads_to_hardware = false;  // tiny CI boxes
  engine::EngineRunner runner(cfg);
  PlanStats stats;
  auto result = RunQppt(runner, *kiss_data_, "2.1", knobs, &stats);
  ASSERT_TRUE(result.ok()) << result.status();
  bool join_parallel = false;
  for (const auto& op : stats.operators) {
    if (op.name.rfind("join:", 0) == 0 && op.morsels > 1) {
      join_parallel = true;
    }
  }
  EXPECT_TRUE(join_parallel)
      << "mixed-mains star join stayed serial:\n" << stats.ToString();
}

// Partitioned parallel merge on real plans: an unfused Q1.1 runs a big
// parallel selection with a plain output (the KISS case), and a chained
// ways=2 plan with prefix intermediates runs the mixed star join into a
// plain prefix output (the branching-level prefix case). Both must
// report merge morsels and agree with the serial reference.
TEST_F(StarJoinParallelTest, PartitionedMergeKicksInAndPreservesResults) {
  {
    PlanKnobs knobs;
    knobs.use_select_join = false;  // selection materializes a plain table
    auto reference = RunQppt(*kiss_data_, "1.1", knobs);
    ASSERT_TRUE(reference.ok()) << reference.status();
    engine::EngineConfig cfg;
    cfg.threads = 8;
    cfg.clamp_threads_to_hardware = false;  // tiny CI boxes
    engine::EngineRunner runner(cfg);
    PlanStats stats;
    auto got = RunQppt(runner, *kiss_data_, "1.1", knobs, &stats);
    ASSERT_TRUE(got.ok()) << got.status();
    ExpectSameResults(*reference, *got, "unfused Q1.1 kiss merge");
    uint64_t merge_morsels = 0;
    for (const auto& op : stats.operators) merge_morsels += op.merge_morsels;
    EXPECT_GT(merge_morsels, 1u)
        << "plain-output merge stayed serial:\n" << stats.ToString();
    EXPECT_GT(stats.TotalMergeMs(), 0.0);
  }
  {
    PlanKnobs knobs;
    knobs.max_join_ways = 2;  // chained joins with plain intermediates
    knobs.table_options.prefer_kiss = false;
    auto reference = RunQppt(*kiss_data_, "4.1", knobs);
    ASSERT_TRUE(reference.ok()) << reference.status();
    engine::EngineConfig cfg;
    cfg.threads = 8;
    cfg.clamp_threads_to_hardware = false;  // tiny CI boxes
    engine::EngineRunner runner(cfg);
    PlanStats stats;
    auto got = RunQppt(runner, *kiss_data_, "4.1", knobs, &stats);
    ASSERT_TRUE(got.ok()) << got.status();
    ExpectSameResults(*reference, *got, "chained Q4.1 prefix merge");
    EXPECT_GT(stats.TotalMergeMorsels(), 1u)
        << "chained Q4.1 merges stayed serial:\n" << stats.ToString();
    auto serial_ref = RunQppt(*kiss_data_, "4.1", PlanKnobs{});
    ASSERT_TRUE(serial_ref.ok());
    ExpectSameResults(*serial_ref, *got, "chained Q4.1 vs default plan");
  }
}

// Aggregated outputs now merge key-range-partitioned too. At SF 0.01
// only operators scanning the lineorder fact (60 K tuples) fork, so the
// probe is a dimension-less aggregation over the fact index — the §3
// aggregation-on-insert shape with enough groups (one per order date)
// to partition: the aggregated operator itself must report merge shards
// at 8 threads, for a KISS final (single group key) and a prefix final
// (composite group key), with results identical to the serial merge.
TEST_F(StarJoinParallelTest, AggregatedMergePartitionsOnFactAggregation) {
  engine::EngineConfig serial_cfg;
  serial_cfg.threads = 1;
  engine::EngineRunner serial_runner(serial_cfg);
  engine::EngineConfig cfg;
  cfg.threads = 8;
  cfg.clamp_threads_to_hardware = false;  // tiny CI boxes
  engine::EngineRunner runner(cfg);

  struct Shape {
    const char* name;
    std::vector<std::string> group_by;
  };
  const Shape shapes[] = {
      {"kiss final (lo_orderdate)", {"lo_orderdate"}},
      {"prefix final (lo_orderdate, lo_discount)",
       {"lo_orderdate", "lo_discount"}},
  };
  for (const auto& shape : shapes) {
    query::QueryBuilder b(std::string("fact_agg:") + shape.name);
    b.From("lineorder").FactIndex("lo_discount").FactColumns(
        {"lo_orderdate", "lo_discount", "lo_extendedprice"});
    b.GroupBy(shape.group_by)
        .Aggregate(AggFn::kSum, ScalarExpr::Column("lo_extendedprice"),
                   "sum_price")
        .Aggregate(AggFn::kCount, ScalarExpr::Column("lo_extendedprice"),
                   "cnt")
        .Aggregate(AggFn::kMin, ScalarExpr::Column("lo_extendedprice"),
                   "min_price")
        .Aggregate(AggFn::kMax, ScalarExpr::Column("lo_extendedprice"),
                   "max_price");
    query::QuerySpec spec = std::move(b).Build();

    auto reference =
        serial_runner.Execute(kiss_data_->db, spec, PlanKnobs{});
    ASSERT_TRUE(reference.ok()) << shape.name << ": " << reference.status();
    PlanStats stats;
    auto got = runner.Execute(kiss_data_->db, spec, PlanKnobs{}, &stats);
    ASSERT_TRUE(got.ok()) << shape.name << ": " << got.status();
    ExpectSameResults(*reference, *got, shape.name);

    uint64_t agg_merge_morsels = 0;
    for (const auto& op : stats.operators) {
      if (op.output_desc.find("aggregated") != std::string::npos) {
        agg_merge_morsels += op.merge_morsels;
      }
    }
    EXPECT_GT(agg_merge_morsels, 1u)
        << shape.name << " aggregated-output merge stayed serial:\n"
        << stats.ToString();
  }
  // Each executed operator site carries its own adaptive morsel tuner.
  EXPECT_GE(runner.pool()->num_tuner_sites(), 1u);
}

}  // namespace
}  // namespace qppt::ssb
