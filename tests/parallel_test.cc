#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/parallel.h"
#include "core/sync_scan.h"
#include "index/key_encoder.h"
#include "util/rng.h"

namespace qppt {
namespace {

TEST(PartitionKissRangeTest, CoversSpanDisjointly) {
  KissTree tree;
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    tree.Insert(static_cast<uint32_t>(rng.NextBounded(1 << 20)), 1);
  }
  for (size_t shards : {1, 2, 3, 7, 16}) {
    auto ranges = PartitionKissRange(tree, shards);
    ASSERT_FALSE(ranges.empty());
    ASSERT_LE(ranges.size(), shards);
    EXPECT_EQ(ranges.front().first, tree.min_key());
    EXPECT_EQ(ranges.back().second, tree.max_key());
    for (size_t i = 1; i < ranges.size(); ++i) {
      // Contiguous and disjoint.
      EXPECT_EQ(uint64_t{ranges[i - 1].second} + 1, ranges[i].first);
    }
    // Shard boundaries never split a level-2 node (except at the span
    // edges which are clamped to min/max).
    size_t l2 = tree.level2_bits();
    for (size_t i = 1; i < ranges.size(); ++i) {
      EXPECT_EQ(ranges[i].first & ((1u << l2) - 1), 0u);
    }
  }
}

TEST(PartitionKissRangeTest, EmptyTreeAndZeroShards) {
  KissTree tree;
  EXPECT_TRUE(PartitionKissRange(tree, 4).empty());
  tree.Insert(5, 1);
  EXPECT_TRUE(PartitionKissRange(tree, 0).empty());
  auto one = PartitionKissRange(tree, 8);  // more shards than buckets
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].first, 5u);
  EXPECT_EQ(one[0].second, 5u);
}

TEST(ParallelScanKissTest, MatchesSequentialScan) {
  KissTree tree;
  Rng rng(2);
  std::map<uint32_t, size_t> reference;
  for (int i = 0; i < 50000; ++i) {
    uint32_t key = static_cast<uint32_t>(rng.NextBounded(1 << 18));
    tree.Insert(key, static_cast<uint64_t>(i));
    reference[key]++;
  }
  for (size_t threads : {1, 2, 4, 8}) {
    std::mutex mu;
    std::map<uint32_t, size_t> scanned;
    std::atomic<uint64_t> values{0};
    ParallelScan(tree, threads,
                 [&](size_t, uint32_t key, const KissTree::ValueRef& v) {
                   std::lock_guard<std::mutex> lock(mu);
                   scanned[key] += 1;
                   values += v.size();
                 });
    EXPECT_EQ(scanned.size(), reference.size()) << threads;
    EXPECT_EQ(values.load(), 50000u) << threads;
    for (const auto& [key, count] : scanned) {
      EXPECT_EQ(count, 1u) << "key visited twice with " << threads;
    }
  }
}

TEST(ParallelScanKissTest, ShardsSeeAscendingDisjointKeys) {
  KissTree tree;
  for (uint32_t k = 0; k < 100000; k += 3) tree.Insert(k, k);
  constexpr size_t kThreads = 4;
  std::vector<std::vector<uint32_t>> per_shard(kThreads);
  std::mutex mu;
  ParallelScan(tree, kThreads,
               [&](size_t shard, uint32_t key, const KissTree::ValueRef&) {
                 std::lock_guard<std::mutex> lock(mu);
                 per_shard[shard].push_back(key);
               });
  std::set<uint32_t> all;
  for (const auto& keys : per_shard) {
    for (size_t i = 1; i < keys.size(); ++i) {
      EXPECT_LT(keys[i - 1], keys[i]);  // in-order within shard
    }
    for (uint32_t k : keys) {
      EXPECT_TRUE(all.insert(k).second);  // disjoint across shards
    }
  }
  EXPECT_EQ(all.size(), tree.num_keys());
}

TEST(ParallelScanPrefixTest, MatchesSequentialScan) {
  PrefixTree tree({.key_len = 4, .kprime = 4});
  Rng rng(3);
  std::set<uint32_t> reference;
  KeyBuf buf;
  for (int i = 0; i < 20000; ++i) {
    uint32_t key = rng.Next32();
    buf.clear();
    buf.AppendU32(key);
    tree.Upsert(buf.data(), key);
    reference.insert(key);
  }
  for (size_t threads : {1, 3, 8, 64}) {
    std::mutex mu;
    std::set<uint32_t> scanned;
    ParallelScan(tree, threads,
                 [&](size_t, const PrefixTree::ContentNode& c) {
                   std::lock_guard<std::mutex> lock(mu);
                   scanned.insert(DecodeU32(c.key()));
                 });
    EXPECT_EQ(scanned, reference) << threads;
  }
}

TEST(ParallelScanPrefixTest, MoreThreadsThanRootBuckets) {
  PrefixTree tree({.key_len = 1, .kprime = 2});  // root fanout 4
  uint8_t key = 0x00;
  tree.Insert(&key, 1);
  key = 0xFF;
  tree.Insert(&key, 2);
  std::atomic<int> visits{0};
  ParallelScan(tree, 16,
               [&](size_t, const PrefixTree::ContentNode&) { ++visits; });
  EXPECT_EQ(visits.load(), 2);
}

// ---- partition edge cases (both families) ----------------------------------

TEST(PartitionKissRangeTest, EdgeCases) {
  // Empty tree: no ranges, for any shard count.
  KissTree empty;
  EXPECT_TRUE(PartitionKissRange(empty, 1).empty());
  EXPECT_TRUE(PartitionKissRange(empty, 64).empty());

  // Single populated bucket (all keys share one level-2 node): exactly
  // one range regardless of requested shards.
  KissTree one_bucket;
  for (uint32_t k = 0; k < 64; ++k) one_bucket.Insert(k, k);
  for (size_t shards : {1, 2, 1024}) {
    auto ranges = PartitionKissRange(one_bucket, shards);
    ASSERT_EQ(ranges.size(), 1u) << shards;
    EXPECT_EQ(ranges[0].first, one_bucket.min_key());
    EXPECT_EQ(ranges[0].second, one_bucket.max_key());
  }

  // More shards than populated buckets: shard count collapses to the
  // bucket count, ranges stay disjoint and covering.
  KissTree sparse;
  size_t l2 = sparse.level2_bits();
  for (uint32_t b = 0; b < 3; ++b) {
    sparse.Insert(static_cast<uint32_t>(b << l2), b);
  }
  auto ranges = PartitionKissRange(sparse, 100);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges.front().first, sparse.min_key());
  EXPECT_EQ(ranges.back().second, sparse.max_key());
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_EQ(uint64_t{ranges[i - 1].second} + 1, ranges[i].first);
  }

  // More shards than the machine has hardware threads: the partitioner
  // (and the scan driver) must not care.
  size_t oversubscribed = std::thread::hardware_concurrency() * 4 + 3;
  KissTree big;
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    big.Insert(static_cast<uint32_t>(rng.NextBounded(1 << 22)), 1);
  }
  auto many = PartitionKissRange(big, oversubscribed);
  ASSERT_FALSE(many.empty());
  ASSERT_LE(many.size(), oversubscribed);
  EXPECT_EQ(many.front().first, big.min_key());
  EXPECT_EQ(many.back().second, big.max_key());
  EXPECT_EQ(ParallelCountValues(big, oversubscribed), 20000u);
}

TEST(PartitionKissRangeTest, ClampedSpanOverload) {
  KissTree tree;
  for (uint32_t k = 1000; k < 9000; ++k) tree.Insert(k, k);
  auto ranges = PartitionKissRange(tree, 2000, 4000, 4);
  ASSERT_FALSE(ranges.empty());
  EXPECT_EQ(ranges.front().first, 2000u);
  EXPECT_EQ(ranges.back().second, 4000u);
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_EQ(uint64_t{ranges[i - 1].second} + 1, ranges[i].first);
  }
  // Span disjoint from the populated range: empty.
  EXPECT_TRUE(PartitionKissRange(tree, 20000, 30000, 4).empty());
}

TEST(PartitionPrefixRangeTest, EdgeCases) {
  // Empty tree.
  PrefixTree empty({.key_len = 4, .kprime = 4});
  EXPECT_TRUE(PartitionPrefixRange(empty, 8).empty());

  // Single populated root bucket: one span, even for huge shard counts.
  PrefixTree one_bucket({.key_len = 4, .kprime = 4});
  KeyBuf buf;
  for (uint32_t k = 0; k < 100; ++k) {
    buf.clear();
    buf.AppendU32(k);  // all keys share top fragment 0
    one_bucket.Upsert(buf.data(), k);
  }
  for (size_t shards : {1, 2, 512}) {
    auto ranges = PartitionPrefixRange(one_bucket, shards);
    ASSERT_EQ(ranges.size(), 1u) << shards;
  }

  // shards > populated buckets: one span per populated bucket; spans are
  // disjoint, ascending, and skip unpopulated slots at the boundaries.
  PrefixTree sparse({.key_len = 4, .kprime = 4});
  for (uint32_t top : {2u, 7u, 11u}) {
    buf.clear();
    buf.AppendU32(top << 28);
    sparse.Upsert(buf.data(), top);
  }
  auto ranges = PartitionPrefixRange(sparse, 100);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0].first, 2u);
  EXPECT_EQ(ranges[1].first, 7u);
  EXPECT_EQ(ranges[2].first, 11u);
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_LE(ranges[i - 1].second, ranges[i].first);
  }

  // shards > hardware threads, on a populated tree: full coverage.
  size_t oversubscribed = std::thread::hardware_concurrency() * 4 + 3;
  PrefixTree big({.key_len = 4, .kprime = 4});
  Rng rng(13);
  std::set<uint32_t> reference;
  for (int i = 0; i < 5000; ++i) {
    uint32_t key = rng.Next32();
    buf.clear();
    buf.AppendU32(key);
    big.Upsert(buf.data(), key);
    reference.insert(key);
  }
  auto many = PartitionPrefixRange(big, oversubscribed);
  ASSERT_FALSE(many.empty());
  ASSERT_LE(many.size(), oversubscribed);
  std::mutex mu;
  std::set<uint32_t> scanned;
  ParallelScan(big, oversubscribed,
               [&](size_t, const PrefixTree::ContentNode& c) {
                 std::lock_guard<std::mutex> lock(mu);
                 scanned.insert(DecodeU32(c.key()));
               });
  EXPECT_EQ(scanned, reference);
}

// ---- pair partitioning (parallel prefix-tree star join) --------------------

TEST(FindPairScanLevelTest, EdgeCases) {
  // Either side empty: no slots.
  PrefixTree empty({.key_len = 4, .kprime = 4});
  PrefixTree other({.key_len = 4, .kprime = 4});
  KeyBuf buf;
  buf.AppendU32(42);
  other.Insert(buf.data(), 1);
  EXPECT_TRUE(FindPairScanLevel(empty, other).slots.empty());
  EXPECT_TRUE(FindPairScanLevel(other, empty).slots.empty());

  // Populated but disjoint root slots: both trees have keys, yet no slot
  // is used by both — the scan would visit nothing, so no slots either.
  PrefixTree lo({.key_len = 4, .kprime = 4});
  PrefixTree hi({.key_len = 4, .kprime = 4});
  buf.clear();
  buf.AppendU32(0x10000000);  // top fragment 1
  lo.Insert(buf.data(), 1);
  buf.clear();
  buf.AppendU32(0xA0000000);  // top fragment 10
  hi.Insert(buf.data(), 2);
  EXPECT_TRUE(FindPairScanLevel(lo, hi).slots.empty());

  // Keys with a shared top fragment: the level descends past the shared
  // chain and still exposes parallelism (the old root-slot split would
  // have collapsed to one span).
  PrefixTree a({.key_len = 4, .kprime = 4});
  PrefixTree b({.key_len = 4, .kprime = 4});
  for (uint32_t k = 0; k < 200; ++k) {
    buf.clear();
    buf.AppendU32(k);  // all under top fragment 0 — and several more
    a.Insert(buf.data(), k);
    if (k % 2 == 0) b.Insert(buf.data(), k);
  }
  auto level = FindPairScanLevel(a, b);
  EXPECT_GT(level.slots.size(), 1u) << "shared-prefix chain not descended";
  EXPECT_GT(level.bit_off, 0u);

  // All duplicates under ONE key on both sides: the chain bottoms out at
  // a single content pair — exactly one unit of work, no split possible.
  PrefixTree dup_l({.key_len = 4, .kprime = 4});
  PrefixTree dup_r({.key_len = 4, .kprime = 4});
  buf.clear();
  buf.AppendU32(777);
  for (uint64_t v = 0; v < 50; ++v) {
    dup_l.Insert(buf.data(), v);
    dup_r.Insert(buf.data(), 100 + v);
  }
  auto dup_level = FindPairScanLevel(dup_l, dup_r);
  ASSERT_EQ(dup_level.slots.size(), 1u);
  size_t pairs = 0;
  SynchronousScanPairSlots(dup_l, dup_r, dup_level, 0, 1,
                           [&](const uint8_t*, const ValueList* lv,
                               const ValueList* rv) {
                             pairs += lv->size() * rv->size();
                           });
  EXPECT_EQ(pairs, 50u * 50u);
}

TEST(FindPairScanLevelTest, SlicedScanMatchesIntersection) {
  PrefixTree left({.key_len = 4, .kprime = 4});
  PrefixTree right({.key_len = 4, .kprime = 4});
  Rng rng(23);
  std::set<uint32_t> lkeys, rkeys;
  KeyBuf buf;
  for (int i = 0; i < 4000; ++i) {
    uint32_t k = rng.Next32() % 100000;
    buf.clear();
    buf.AppendU32(k);
    left.Insert(buf.data(), 1);
    lkeys.insert(k);
    k = rng.Next32() % 100000;
    buf.clear();
    buf.AppendU32(k);
    right.Insert(buf.data(), 1);
    rkeys.insert(k);
  }
  std::vector<uint32_t> expected;
  std::set_intersection(lkeys.begin(), lkeys.end(), rkeys.begin(),
                        rkeys.end(), std::back_inserter(expected));
  auto level = FindPairScanLevel(left, right);
  ASSERT_GT(level.slots.size(), 1u);
  for (size_t slices : {1, 2, 3, 7}) {
    // Chop the slot list into `slices` chunks; scanning every chunk must
    // visit exactly the key intersection once, in order within a chunk.
    size_t n = level.slots.size();
    std::vector<uint32_t> got;
    for (size_t s = 0; s < slices; ++s) {
      size_t begin = n * s / slices;
      size_t end = n * (s + 1) / slices;
      uint32_t last = 0;
      bool first = true;
      SynchronousScanPairSlots(
          left, right, level, begin, end,
          [&](const uint8_t* key, const ValueList*, const ValueList*) {
            uint32_t k = DecodeU32(key);
            if (!first) {
              EXPECT_GT(k, last);
            }
            first = false;
            last = k;
            got.push_back(k);
          });
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << slices;
  }
}

// ---- exception safety of the fork-join driver ------------------------------

TEST(ForkJoinTest, WorkerExceptionIsRethrownAfterJoin) {
  KissTree tree;
  for (uint32_t k = 0; k < 100000; ++k) tree.Insert(k, k);
  auto ranges = PartitionKissRange(tree, 4);
  ASSERT_GT(ranges.size(), 1u);
  // A throwing shard functor must surface on the forking thread, not
  // std::terminate the process.
  EXPECT_THROW(
      ParallelScan(tree, 4,
                   [&](size_t shard, uint32_t, const KissTree::ValueRef&) {
                     if (shard == 1) throw std::runtime_error("shard boom");
                   }),
      std::runtime_error);
  // The scan substrate stays usable afterwards.
  EXPECT_EQ(ParallelCountValues(tree, 4), 100000u);
}

TEST(ParallelCountValuesTest, CountsDuplicates) {
  KissTree tree;
  for (int i = 0; i < 1000; ++i) {
    tree.Insert(static_cast<uint32_t>(i % 10), static_cast<uint64_t>(i));
  }
  EXPECT_EQ(ParallelCountValues(tree, 4), 1000u);
  EXPECT_EQ(ParallelCountValues(tree, 1), 1000u);
  KissTree empty;
  EXPECT_EQ(ParallelCountValues(empty, 4), 0u);
}

}  // namespace
}  // namespace qppt
