#include <gtest/gtest.h>

#include "storage/column_table.h"
#include "storage/row_table.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace qppt {
namespace {

// ---- Value / slots -----------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Int(3).is_int());
  EXPECT_TRUE(Value::Real(1.5).is_double());
  EXPECT_TRUE(Value::Str("x").is_string());
  EXPECT_EQ(Value::Int(-9).AsInt(), -9);
  EXPECT_EQ(Value::Real(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Str("abc").AsString(), "abc");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_FALSE(Value::Int(3) == Value::Int(4));
  EXPECT_FALSE(Value::Int(3) == Value::Real(3.0));
  EXPECT_EQ(Value::Str("a"), Value::Str("a"));
}

TEST(ValueTest, SlotRoundTrip) {
  EXPECT_EQ(Int64FromSlot(SlotFromInt64(-123456789)), -123456789);
  EXPECT_EQ(DoubleFromSlot(SlotFromDouble(3.14159)), 3.14159);
  EXPECT_EQ(DoubleFromSlot(SlotFromDouble(-0.0)), -0.0);
}

// ---- Dictionary -----------------------------------------------------------------

TEST(DictionaryTest, OrderPreservingCodes) {
  Dictionary dict;
  dict.Add("EUROPE");
  dict.Add("AMERICA");
  dict.Add("ASIA");
  dict.Seal();
  auto america = dict.CodeOf("AMERICA");
  auto asia = dict.CodeOf("ASIA");
  auto europe = dict.CodeOf("EUROPE");
  ASSERT_TRUE(america.ok());
  ASSERT_TRUE(asia.ok());
  ASSERT_TRUE(europe.ok());
  // Lexicographic order: AMERICA < ASIA < EUROPE.
  EXPECT_LT(*america, *asia);
  EXPECT_LT(*asia, *europe);
  EXPECT_EQ(dict.StringOf(*europe), "EUROPE");
}

TEST(DictionaryTest, DuplicateAddsCollapse) {
  Dictionary dict;
  dict.Add("x");
  dict.Add("x");
  dict.Add("y");
  dict.Seal();
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, MissingEntryIsNotFound) {
  Dictionary dict;
  dict.Add("a");
  dict.Seal();
  EXPECT_TRUE(dict.CodeOf("zzz").status().IsNotFound());
}

TEST(DictionaryTest, BoundsForRangePredicates) {
  // SSB Q2.2: p_brand1 between 'MFGR#2221' and 'MFGR#2228'.
  Dictionary dict;
  for (int i = 2220; i <= 2230; ++i) {
    dict.Add("MFGR#" + std::to_string(i));
  }
  dict.Seal();
  int64_t lo = dict.LowerBoundCode("MFGR#2221");
  int64_t hi = dict.UpperBoundCode("MFGR#2228");
  EXPECT_EQ(hi - lo, 8);  // 2221..2228 inclusive
  EXPECT_EQ(dict.StringOf(lo), "MFGR#2221");
  EXPECT_EQ(dict.StringOf(hi - 1), "MFGR#2228");
}

TEST(DictionaryTest, BoundsBeyondEnd) {
  Dictionary dict;
  dict.Add("a");
  dict.Add("b");
  dict.Seal();
  EXPECT_EQ(dict.LowerBoundCode("zzz"), 2);
  EXPECT_EQ(dict.UpperBoundCode("b"), 2);
}

// ---- Schema ----------------------------------------------------------------------

Schema TestSchema() {
  auto dict = std::make_shared<Dictionary>();
  dict->Add("red");
  dict->Add("blue");
  dict->Seal();
  return Schema({{"id", ValueType::kInt64, nullptr},
                 {"price", ValueType::kDouble, nullptr},
                 {"color", ValueType::kString, dict}});
}

TEST(SchemaTest, ColumnLookup) {
  Schema s = TestSchema();
  EXPECT_EQ(s.num_columns(), 3u);
  auto idx = s.ColumnIndex("price");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_TRUE(s.ColumnIndex("nope").status().IsNotFound());
  EXPECT_TRUE(s.HasColumn("color"));
}

TEST(SchemaTest, Projection) {
  Schema s = TestSchema();
  auto proj = s.Project({"color", "id"});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->num_columns(), 2u);
  EXPECT_EQ(proj->column(0).name, "color");
  EXPECT_EQ(proj->column(1).name, "id");
  EXPECT_TRUE(s.Project({"ghost"}).status().IsNotFound());
}

TEST(SchemaTest, ToStringDescribes) {
  EXPECT_EQ(TestSchema().ToString(), "(id:int64, price:double, color:string)");
}

// ---- RowTable ----------------------------------------------------------------------

TEST(RowTableTest, AppendAndRead) {
  RowTable t(TestSchema(), "widgets");
  auto dict = t.schema().column(2).dictionary;
  uint64_t row0[3] = {SlotFromInt64(1), SlotFromDouble(9.5),
                      SlotFromInt64(dict->CodeOf("red").value())};
  uint64_t row1[3] = {SlotFromInt64(2), SlotFromDouble(1.25),
                      SlotFromInt64(dict->CodeOf("blue").value())};
  EXPECT_EQ(t.AppendRow(row0), 0u);
  EXPECT_EQ(t.AppendRow(row1), 1u);
  EXPECT_EQ(t.num_rows(), 2u);

  EXPECT_EQ(t.GetValue(0, 0), Value::Int(1));
  EXPECT_EQ(t.GetValue(1, 1), Value::Real(1.25));
  EXPECT_EQ(t.GetValue(0, 2), Value::Str("red"));
  auto by_name = t.GetValue(1, "color");
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(*by_name, Value::Str("blue"));
}

TEST(RowTableTest, RecordPointerIsContiguous) {
  RowTable t(TestSchema());
  uint64_t row[3] = {SlotFromInt64(7), SlotFromDouble(2.0), 0};
  t.AppendRow(row);
  const uint64_t* rec = t.Record(0);
  EXPECT_EQ(Int64FromSlot(rec[0]), 7);
  EXPECT_EQ(DoubleFromSlot(rec[1]), 2.0);
}

TEST(RowTableTest, OutOfRangeRid) {
  RowTable t(TestSchema());
  EXPECT_TRUE(t.GetValue(5, "id").status().code() == StatusCode::kOutOfRange);
}

// ---- ColumnTable ----------------------------------------------------------------------

TEST(ColumnTableTest, FromRowTableTransposes) {
  RowTable rows(TestSchema());
  for (int i = 0; i < 10; ++i) {
    uint64_t row[3] = {SlotFromInt64(i), SlotFromDouble(i * 0.5), 0};
    rows.AppendRow(row);
  }
  ColumnTable cols = ColumnTable::FromRowTable(rows);
  EXPECT_EQ(cols.num_rows(), 10u);
  auto id_col = cols.ColumnByName("id");
  ASSERT_TRUE(id_col.ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(Int64FromSlot((**id_col)[static_cast<size_t>(i)]), i);
  }
}

TEST(ColumnTableTest, AppendRowFillsAllColumns) {
  ColumnTable t(TestSchema());
  uint64_t row[3] = {SlotFromInt64(5), SlotFromDouble(0.5), 1};
  t.AppendRow(row);
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.column(2)[0], 1u);
}

}  // namespace
}  // namespace qppt
