#include <gtest/gtest.h>

#include <vector>

#include "core/join_buffer.h"
#include "util/rng.h"

namespace qppt {
namespace {

struct Ctx {
  uint32_t key;
  int tag;
};

class JoinBufferTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (uint32_t k = 0; k < 1000; k += 2) {  // even keys present
      tree_.Insert(k, uint64_t{k} * 10);
    }
  }
  KissTree tree_;
};

TEST_F(JoinBufferTest, AddReportsFull) {
  KissProbeBuffer<Ctx> buffer(4);
  EXPECT_EQ(buffer.capacity(), 4u);
  EXPECT_FALSE(buffer.Add(0, {0, 0}));
  EXPECT_FALSE(buffer.Add(2, {2, 1}));
  EXPECT_FALSE(buffer.Add(4, {4, 2}));
  EXPECT_TRUE(buffer.Add(6, {6, 3}));  // reached capacity
  EXPECT_EQ(buffer.size(), 4u);
}

TEST_F(JoinBufferTest, FlushDeliversResultsInOrder) {
  KissProbeBuffer<Ctx> buffer(8);
  buffer.Add(10, {10, 0});   // hit
  buffer.Add(11, {11, 1});   // miss (odd)
  buffer.Add(998, {998, 2}); // hit
  std::vector<int> tags;
  buffer.Flush(tree_, [&](Ctx& ctx, bool found, const KissTree::ValueRef& v) {
    tags.push_back(ctx.tag);
    EXPECT_EQ(found, ctx.key % 2 == 0) << ctx.key;
    if (found) {
      EXPECT_EQ(v.front(), uint64_t{ctx.key} * 10);
    }
  });
  EXPECT_EQ(tags, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(buffer.empty());
}

TEST_F(JoinBufferTest, CapacityOneUsesPointLookups) {
  // The demonstrator's "none" setting: still correct, just unbatched.
  KissProbeBuffer<Ctx> buffer(1);
  for (uint32_t k = 0; k < 100; ++k) {
    bool full = buffer.Add(k, {k, static_cast<int>(k)});
    EXPECT_TRUE(full);  // capacity 1: always full after one Add
    buffer.Flush(tree_,
                 [&](Ctx& ctx, bool found, const KissTree::ValueRef&) {
                   EXPECT_EQ(found, ctx.key % 2 == 0);
                 });
  }
}

TEST_F(JoinBufferTest, BatchedAndUnbatchedAgree) {
  Rng rng(1);
  std::vector<uint32_t> probes;
  for (int i = 0; i < 5000; ++i) {
    probes.push_back(static_cast<uint32_t>(rng.NextBounded(1200)));
  }
  auto run = [&](size_t capacity) {
    KissProbeBuffer<Ctx> buffer(capacity);
    std::vector<std::pair<uint32_t, bool>> results;
    for (uint32_t p : probes) {
      if (buffer.Add(p, {p, 0})) {
        buffer.Flush(tree_,
                     [&](Ctx& ctx, bool found, const KissTree::ValueRef&) {
                       results.emplace_back(ctx.key, found);
                     });
      }
    }
    buffer.Flush(tree_,
                 [&](Ctx& ctx, bool found, const KissTree::ValueRef&) {
                   results.emplace_back(ctx.key, found);
                 });
    return results;
  };
  auto unbatched = run(1);
  for (size_t capacity : {2, 64, 512, 4096}) {
    EXPECT_EQ(run(capacity), unbatched) << capacity;
  }
}

TEST_F(JoinBufferTest, FlushOnEmptyIsNoOp) {
  KissProbeBuffer<Ctx> buffer(64);
  int calls = 0;
  buffer.Flush(tree_, [&](Ctx&, bool, const KissTree::ValueRef&) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST_F(JoinBufferTest, ZeroCapacityClampsToOne) {
  KissProbeBuffer<Ctx> buffer(0);
  EXPECT_EQ(buffer.capacity(), 1u);
}

}  // namespace
}  // namespace qppt
