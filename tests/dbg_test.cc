// Tests for the src/dbg runtime checks: lock-rank deadlock detection
// (including the abort-on-inversion death test) and the MVCC invariant
// audits over live engine state.

#include <gtest/gtest.h>

#include <mutex>
#include <string>

#include "dbg/invariants.h"
#include "dbg/lock_rank.h"
#include "storage/mvcc.h"

namespace qppt {
namespace {

// Turns enforcement on for a scope regardless of build type / env.
class EnforcedScope {
 public:
  EnforcedScope() : prev_(dbg::SetInvariantsEnabled(true)) {}
  ~EnforcedScope() { dbg::SetInvariantsEnabled(prev_); }

 private:
  bool prev_;
};

TEST(LockRankTest, MonotoneAcquisitionPasses) {
  EnforcedScope on;
  std::mutex a, b, c;
  dbg::RankedLockGuard outer(dbg::LockRank::kDatabaseWrite, a);
  dbg::RankedLockGuard middle(dbg::LockRank::kReadPins, b);
  dbg::RankedLockGuard inner(dbg::LockRank::kAllocator, c);
}

TEST(LockRankTest, ReacquireAfterReleasePasses) {
  EnforcedScope on;
  std::mutex a, b;
  // Sequential (not nested) acquisition of descending ranks is fine.
  { dbg::RankedLockGuard lock(dbg::LockRank::kMetrics, a); }
  { dbg::RankedLockGuard lock(dbg::LockRank::kAdmission, b); }
  { dbg::RankedLockGuard lock(dbg::LockRank::kMetrics, a); }
}

TEST(LockRankTest, TokenPairsWithExternalLock) {
  EnforcedScope on;
  std::mutex mu;
  std::unique_lock<std::mutex> lock(mu, std::defer_lock);
  dbg::LockRankToken token(dbg::LockRank::kReadBatcher);
  lock.lock();
  lock.unlock();
}

TEST(LockRankTest, ToleratesUnnotedRelease) {
  // Enforcement flipped on mid-scope: the release of a never-noted rank
  // must be ignored, not die.
  std::mutex mu;
  bool prev = dbg::SetInvariantsEnabled(false);
  {
    dbg::SetInvariantsEnabled(false);
    auto* token = new dbg::LockRankToken(dbg::LockRank::kScheduler);
    dbg::SetInvariantsEnabled(true);
    delete token;  // release scans and misses; no abort
    dbg::RankedLockGuard lock(dbg::LockRank::kAdmission, mu);
  }
  dbg::SetInvariantsEnabled(prev);
}

// Scheduler (700) then admission (100): inverted order — the rank
// checker must abort before this can ever deadlock.
void AcquireInverted() {
  dbg::SetInvariantsEnabled(true);
  std::mutex a;
  std::mutex b;
  dbg::RankedLockGuard outer(dbg::LockRank::kScheduler, a);
  dbg::RankedLockGuard inner(dbg::LockRank::kAdmission, b);
}

// Equal ranks nested: self-deadlock shape, also fatal.
void AcquireSameRankTwice() {
  dbg::SetInvariantsEnabled(true);
  std::mutex a;
  std::mutex b;
  dbg::RankedLockGuard outer(dbg::LockRank::kMetrics, a);
  dbg::RankedLockGuard inner(dbg::LockRank::kMetrics, b);
}

TEST(LockRankDeathTest, InvertedAcquisitionAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(AcquireInverted(), "lock-rank violation");
}

TEST(LockRankDeathTest, SameRankReacquisitionAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(AcquireSameRankTwice(), "lock-rank violation");
}

class InvariantsTest : public ::testing::Test {
 protected:
  TransactionManager tm_;
  MvccTable table_{Schema({{"v", ValueType::kInt64, nullptr}}), "t"};

  Timestamp Commit(Transaction& txn) {
    Timestamp ts = tm_.BeginCommit();
    table_.CommitTransaction(txn, ts);
    tm_.FinishCommit(txn, ts);
    return ts;
  }
};

TEST_F(InvariantsTest, CleanChainsAuditClean) {
  Transaction t1 = tm_.Begin();
  uint64_t row[1] = {SlotFromInt64(1)};
  auto id = table_.Insert(t1, row);
  Commit(t1);
  for (int64_t v = 2; v <= 5; ++v) {
    Transaction txn = tm_.Begin();
    uint64_t next[1] = {SlotFromInt64(v)};
    ASSERT_TRUE(table_.Update(txn, id, next).ok());
    Commit(txn);
  }
  std::string report;
  EXPECT_EQ(dbg::AuditVersionChains(table_, &report), 0u) << report;
}

TEST_F(InvariantsTest, UncommittedHeadAuditsClean) {
  Transaction t1 = tm_.Begin();
  uint64_t row[1] = {SlotFromInt64(1)};
  auto id = table_.Insert(t1, row);
  Commit(t1);
  Transaction t2 = tm_.Begin();
  uint64_t next[1] = {SlotFromInt64(2)};
  ASSERT_TRUE(table_.Update(t2, id, next).ok());
  // In-flight update: uncommitted version at the head is legal.
  std::string report;
  EXPECT_EQ(dbg::AuditVersionChains(table_, &report), 0u) << report;
  table_.AbortTransaction(t2);
  EXPECT_EQ(dbg::AuditVersionChains(table_, &report), 0u) << report;
}

TEST_F(InvariantsTest, AuditSurvivesReclamation) {
  Transaction t1 = tm_.Begin();
  uint64_t row[1] = {SlotFromInt64(1)};
  auto id = table_.Insert(t1, row);
  Timestamp first = Commit(t1);
  Transaction t2 = tm_.Begin();
  uint64_t next[1] = {SlotFromInt64(2)};
  ASSERT_TRUE(table_.Update(t2, id, next).ok());
  Timestamp second = Commit(t2);
  EXPECT_GT(second, first);
  EXPECT_EQ(table_.ReclaimBefore(second), 1u);
  std::string report;
  EXPECT_EQ(dbg::AuditVersionChains(table_, &report), 0u) << report;
}

TEST(ReclaimHorizonTest, HorizonWithinPinsPasses) {
  EXPECT_EQ(dbg::AuditReclaimHorizon(3, 5), 0u);
  EXPECT_EQ(dbg::AuditReclaimHorizon(5, 5), 0u);
}

TEST(ReclaimHorizonTest, HorizonPastPinsFlagged) {
  std::string report;
  EXPECT_EQ(dbg::AuditReclaimHorizon(7, 5, &report), 1u);
  EXPECT_NE(report.find("horizon"), std::string::npos);
}

}  // namespace
}  // namespace qppt
