#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "index/duplicate_chain.h"

namespace qppt {
namespace {

std::vector<uint64_t> Collect(const ValueList& list) {
  std::vector<uint64_t> out;
  list.ForEach([&](uint64_t v) { out.push_back(v); });
  return out;
}

TEST(ValueListTest, EmptyByDefault) {
  ValueList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  int visits = 0;
  list.ForEach([&](uint64_t) { ++visits; });
  EXPECT_EQ(visits, 0);
}

TEST(ValueListTest, FirstValueIsInline) {
  PageArena arena;
  ValueList list;
  list.Append(42, &arena);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.first(), 42u);
  // A single value must not allocate a segment.
  EXPECT_EQ(arena.bytes_allocated(), 0u);
}

TEST(ValueListTest, PreservesMultisetSemantics) {
  PageArena arena;
  ValueList list;
  std::multiset<uint64_t> expected;
  for (uint64_t i = 0; i < 1000; ++i) {
    uint64_t v = i % 7;  // deliberate duplicates among duplicates
    list.Append(v, &arena);
    expected.insert(v);
  }
  EXPECT_EQ(list.size(), 1000u);
  auto values = Collect(list);
  std::multiset<uint64_t> actual(values.begin(), values.end());
  EXPECT_EQ(actual, expected);
}

TEST(ValueListTest, SegmentsDoubleUpToPageSize) {
  PageArena arena;
  ValueList list;
  // First segment: 64 B = 16 B header + 6 values. Fill past several
  // doublings: 6 + 14 + 30 + 62 + ... values.
  for (uint64_t i = 0; i < 5000; ++i) list.Append(i, &arena);
  EXPECT_EQ(list.size(), 5000u);
  // Total segment bytes must stay within a small factor of the payload
  // (doubling waste <= 2x + one page).
  size_t payload_bytes = 5000 * sizeof(uint64_t);
  EXPECT_LE(arena.bytes_allocated(), payload_bytes * 2 + 4096 + 64);
  auto values = Collect(list);
  ASSERT_EQ(values.size(), 5000u);
  std::sort(values.begin(), values.end());
  for (uint64_t i = 0; i < 5000; ++i) EXPECT_EQ(values[i], i);
}

TEST(ValueListTest, ReplaceWithResetsToSingleValue) {
  PageArena arena;
  ValueList list;
  for (uint64_t i = 0; i < 100; ++i) list.Append(i, &arena);
  list.ReplaceWith(7);
  EXPECT_EQ(list.size(), 1u);
  auto values = Collect(list);
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], 7u);
  // Appending after replace works.
  list.Append(8, &arena);
  EXPECT_EQ(list.size(), 2u);
}

TEST(ValueListTest, CopyToGathersAllValues) {
  PageArena arena;
  ValueList list;
  for (uint64_t i = 0; i < 300; ++i) list.Append(i * 3, &arena);
  std::vector<uint64_t> out(300);
  list.CopyTo(out.data());
  std::sort(out.begin(), out.end());
  for (uint64_t i = 0; i < 300; ++i) EXPECT_EQ(out[i], i * 3);
}

TEST(ValueListTest, SegmentsNeverStraddlePages) {
  // Indirectly verified by PageArena tests, but assert the invariant via
  // many lists sharing one arena (the allocation interleaving matters).
  PageArena arena;
  std::vector<ValueList> lists(50);
  for (int round = 0; round < 200; ++round) {
    for (auto& list : lists) {
      list.Append(static_cast<uint64_t>(round), &arena);
    }
  }
  for (auto& list : lists) {
    EXPECT_EQ(list.size(), 200u);
  }
}

TEST(LinkedDuplicateListTest, BaselineSemanticsMatch) {
  Arena arena;
  LinkedDuplicateList list;
  std::multiset<uint64_t> expected;
  for (uint64_t i = 0; i < 500; ++i) {
    list.Append(i % 13, &arena);
    expected.insert(i % 13);
  }
  EXPECT_EQ(list.size(), 500u);
  std::multiset<uint64_t> actual;
  list.ForEach([&](uint64_t v) { actual.insert(v); });
  EXPECT_EQ(actual, expected);
}

}  // namespace
}  // namespace qppt
