#!/usr/bin/env python3
"""Fixture tests for scripts/analyze/qppt_lint.py.

Each lint check is demonstrated twice: a fixture seeded with violations
that must be flagged (with the expected check id, the expected number of
times), and a clean twin that must pass. Finishes with a full-tree run,
which must be clean — the same gate CI enforces.
"""

import os
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(ROOT, "scripts", "analyze", "qppt_lint.py")
FIXTURES = os.path.join(ROOT, "tests", "lint_fixtures")

# (fixture, extra lint args, {check-id: expected count}); empty dict
# means the file must lint clean.
CASES = [
    ("raw_slot_violation.cc", [], {"raw-slot-read": 2}),
    ("raw_slot_clean.cc", [], {}),
    ("relaxed_violation.cc", [], {"relaxed-justify": 2}),
    ("relaxed_clean.cc", [], {}),
    ("release_pair_violation.cc", [], {"release-pair": 2}),
    ("release_pair_clean.cc", [], {}),
    ("hot_alloc_violation.cc", ["--treat-as-hot"], {"hot-path-alloc": 3}),
    ("hot_alloc_clean.cc", ["--treat-as-hot"], {}),
    ("planstats_violation.cc", [], {"planstats-clear": 1}),
    ("planstats_clean.cc", [], {}),
    ("failpoint_violation.cc", [], {"failpoint-tag": 2}),
    ("failpoint_clean.cc", [], {}),
]


def run_lint(args):
    proc = subprocess.run(
        [sys.executable, LINT, "--root", ROOT] + args,
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def main():
    failures = []
    for name, extra, expected in CASES:
        path = os.path.join(FIXTURES, name)
        code, out = run_lint([path] + extra)
        if not expected:
            if code != 0:
                failures.append(f"{name}: expected clean, got exit {code}:"
                                f"\n{out}")
            continue
        if code != 1:
            failures.append(f"{name}: expected exit 1, got {code}:\n{out}")
            continue
        for check, count in expected.items():
            got = out.count(f"[{check}]")
            if got != count:
                failures.append(
                    f"{name}: expected {count}x [{check}], got {got}:\n{out}")
        for line in out.splitlines():
            if "[" in line and not any(f"[{c}]" in line for c in expected):
                failures.append(f"{name}: unexpected finding: {line}")

    code, out = run_lint([])
    if code != 0:
        failures.append(f"full tree: expected clean, got exit {code}:\n{out}")

    if failures:
        print("lint fixture test FAILED:")
        for f in failures:
            print("  -", f)
        return 1
    print(f"lint fixture test: {len(CASES)} cases + full tree clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
