#include <gtest/gtest.h>

#include <unordered_map>

#include "index/chained_hash_table.h"
#include "index/open_hash_table.h"
#include "util/rng.h"

namespace qppt {
namespace {

// Differential test harness: both baseline tables must agree with
// std::unordered_map under a random upsert/find workload.
template <typename Table>
void RunDifferential(Table& table, uint64_t seed, int ops) {
  Rng rng(seed);
  std::unordered_map<uint64_t, uint64_t> reference;
  for (int i = 0; i < ops; ++i) {
    uint64_t key = rng.NextBounded(static_cast<uint64_t>(ops) / 2 + 1);
    uint64_t value = rng.Next();
    table.Upsert(key, value);
    reference[key] = value;
  }
  EXPECT_EQ(table.size(), reference.size());
  for (const auto& [key, value] : reference) {
    auto found = table.Find(key);
    ASSERT_TRUE(found.has_value()) << key;
    EXPECT_EQ(*found, value);
  }
  for (int i = 0; i < 1000; ++i) {
    uint64_t key = rng.Next();  // almost surely absent
    if (reference.count(key)) continue;
    EXPECT_FALSE(table.Find(key).has_value());
  }
}

TEST(ChainedHashTableTest, DifferentialVsStdUnorderedMap) {
  ChainedHashTable table;
  RunDifferential(table, 11, 50000);
}

TEST(OpenHashTableTest, DifferentialVsStdUnorderedMap) {
  OpenHashTable table;
  RunDifferential(table, 13, 50000);
}

TEST(ChainedHashTableTest, GrowthPreservesEntries) {
  ChainedHashTable table(16);
  for (uint64_t i = 0; i < 10000; ++i) table.Upsert(i, i * 3);
  EXPECT_EQ(table.size(), 10000u);
  for (uint64_t i = 0; i < 10000; ++i) {
    auto v = table.Find(i);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i * 3);
  }
}

TEST(OpenHashTableTest, GrowthPreservesEntries) {
  OpenHashTable table(16);
  for (uint64_t i = 0; i < 10000; ++i) table.Upsert(i, i * 3);
  EXPECT_EQ(table.size(), 10000u);
  for (uint64_t i = 0; i < 10000; ++i) {
    auto v = table.Find(i);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i * 3);
  }
}

TEST(OpenHashTableTest, LoadFactorStaysBelowHalf) {
  OpenHashTable table;
  for (uint64_t i = 0; i < 100000; ++i) table.Upsert(i, i);
  EXPECT_LE(table.size() * 2, table.capacity());
}

TEST(ChainedHashTableTest, UpsertOverwrites) {
  ChainedHashTable table;
  table.Upsert(5, 1);
  table.Upsert(5, 2);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.Find(5).value(), 2u);
}

TEST(OpenHashTableTest, UpsertOverwrites) {
  OpenHashTable table;
  table.Upsert(5, 1);
  table.Upsert(5, 2);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.Find(5).value(), 2u);
}

TEST(HashTableTest, ExtremeKeys) {
  ChainedHashTable chained;
  OpenHashTable open;
  for (uint64_t key : {uint64_t{0}, ~uint64_t{0}, uint64_t{1} << 63}) {
    chained.Upsert(key, key ^ 1);
    open.Upsert(key, key ^ 1);
    EXPECT_EQ(chained.Find(key).value(), key ^ 1);
    EXPECT_EQ(open.Find(key).value(), key ^ 1);
  }
}

}  // namespace
}  // namespace qppt
