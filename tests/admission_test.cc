// Tiered admission under load: more clients than slots, mixed
// priorities, per-query queue timeouts, load shedding, mid-wait
// cancellation — and the slot accounting that must survive all of it.
// Runs under the TSan CI job with QPPT_DBG_INVARIANTS=1 (`ctest -L
// engine`). Also holds the WorkerPool nested-Run death test.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel.h"
#include "core/plan.h"
#include "dbg/invariants.h"
#include "engine/scheduler.h"
#include "engine/session.h"
#include "util/cancel.h"
#include "util/rng.h"

namespace qppt {
namespace {

using engine::EngineConfig;
using engine::EngineRunner;

// Holds its admission slot until `release` flips (or for sleep_ms), so
// tests can control how long a slot stays occupied.
class HoldOp : public Operator {
 public:
  HoldOp(std::atomic<int>* started, std::atomic<bool>* release)
      : started_(started), release_(release) {}
  explicit HoldOp(double sleep_ms) : sleep_ms_(sleep_ms) {}
  std::string name() const override { return "hold"; }
  Status Execute(ExecContext* ctx) override {
    if (started_ != nullptr) started_->fetch_add(1);
    if (release_ != nullptr) {
      while (!release_->load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    } else {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(sleep_ms_));
    }
    Schema schema({{"k", ValueType::kInt64, nullptr}});
    QPPT_ASSIGN_OR_RETURN(auto table, IndexedTable::Create(schema, {"k"}));
    QPPT_RETURN_NOT_OK(ctx->Put("result", std::move(table)));
    return Status::OK();
  }

 private:
  std::atomic<int>* started_ = nullptr;
  std::atomic<bool>* release_ = nullptr;
  double sleep_ms_ = 0;
};

Plan GatePlan(std::atomic<int>* started, std::atomic<bool>* release) {
  Plan plan;
  plan.Emplace<HoldOp>(started, release);
  plan.set_result_slot("result");
  return plan;
}

Plan SleepPlan(double ms) {
  Plan plan;
  plan.Emplace<HoldOp>(ms);
  plan.set_result_slot("result");
  return plan;
}

TEST(TieredAdmissionTest, QueueTimeoutReturnsResourceExhausted) {
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.max_concurrent_queries = 1;
  EngineRunner runner(cfg);
  Database db;
  std::atomic<int> started{0};
  std::atomic<bool> release{false};
  Plan gate = GatePlan(&started, &release);
  std::thread holder([&] {
    EXPECT_TRUE(runner.Execute(db, gate, PlanKnobs{}).ok());
  });
  while (started.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  PlanKnobs timed;
  timed.queue_timeout_ms = 25;
  Plan second = SleepPlan(0);
  auto t0 = std::chrono::steady_clock::now();
  auto result = runner.Execute(db, second, timed);
  double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted())
      << result.status().ToString();
  EXPECT_GE(waited_ms, 25.0);

  release = true;
  holder.join();
  // The timed-out query must not have leaked its (never-held) slot.
  EXPECT_EQ(runner.queries_running(), 0u);
  EXPECT_TRUE(runner.Execute(db, second, PlanKnobs{}).ok());
}

TEST(TieredAdmissionTest, MidWaitCancellationUnblocksTheWaiter) {
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.max_concurrent_queries = 1;
  EngineRunner runner(cfg);
  Database db;
  std::atomic<int> started{0};
  std::atomic<bool> release{false};
  Plan gate = GatePlan(&started, &release);
  std::thread holder([&] {
    EXPECT_TRUE(runner.Execute(db, gate, PlanKnobs{}).ok());
  });
  while (started.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  CancelToken token;
  PlanKnobs knobs;
  knobs.cancel = &token;
  Plan second = SleepPlan(0);
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    token.RequestCancel();
  });
  auto result = runner.Execute(db, second, knobs);
  canceller.join();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();

  release = true;
  holder.join();
  EXPECT_EQ(runner.queries_running(), 0u);
}

TEST(TieredAdmissionTest, BatchShedsWhenQueueIsOverThreshold) {
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.max_concurrent_queries = 1;
  cfg.shed_batch_waiting_threshold = 1;
  EngineRunner runner(cfg);
  Database db;
  std::atomic<int> started{0};
  std::atomic<bool> release{false};
  Plan gate = GatePlan(&started, &release);
  std::thread holder([&] {
    EXPECT_TRUE(runner.Execute(db, gate, PlanKnobs{}).ok());
  });
  while (started.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Park one interactive waiter so the queue is at the threshold.
  Plan waiting = SleepPlan(0);
  std::thread waiter([&] {
    EXPECT_TRUE(runner.Execute(db, waiting, PlanKnobs{}).ok());
  });
  while (runner.queries_waiting() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // A batch arrival must now be shed immediately, not queued.
  PlanKnobs batch;
  batch.priority = QueryPriority::kBatch;
  Plan shed_me = SleepPlan(0);
  auto t0 = std::chrono::steady_clock::now();
  auto result = runner.Execute(db, shed_me, batch);
  double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted())
      << result.status().ToString();
  EXPECT_LT(waited_ms, 1000.0);  // immediate, not a queue timeout

  // Interactive arrivals are NOT shed by the batch threshold: with an
  // explicit queue limit unset they queue normally.
  release = true;
  holder.join();
  waiter.join();
  EXPECT_EQ(runner.queries_running(), 0u);
}

TEST(TieredAdmissionTest, BatchCapLeavesInteractiveHeadroom) {
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.max_concurrent_queries = 4;
  cfg.max_concurrent_batch = 1;
  EngineRunner runner(cfg);
  Database db;
  std::atomic<int> started{0};
  std::atomic<bool> release{false};
  Plan gate = GatePlan(&started, &release);
  PlanKnobs batch;
  batch.priority = QueryPriority::kBatch;
  std::thread batch_holder([&] {
    EXPECT_TRUE(runner.Execute(db, gate, batch).ok());
  });
  while (started.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Second batch query: blocked by the batch cap, times out.
  PlanKnobs batch_timed = batch;
  batch_timed.queue_timeout_ms = 20;
  Plan second_batch = SleepPlan(0);
  auto rejected = runner.Execute(db, second_batch, batch_timed);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted());

  // Interactive queries still run: the total cap has headroom.
  Plan interactive = SleepPlan(0);
  EXPECT_TRUE(runner.Execute(db, interactive, PlanKnobs{}).ok());

  release = true;
  batch_holder.join();
  EXPECT_EQ(runner.queries_running(), 0u);
}

// The stress gate: many more clients than slots, mixed priorities, tight
// queue timeouts, and random mid-wait cancellations. Every outcome must
// be one of {ok, ResourceExhausted, Cancelled}, and when the dust
// settles no slot may be lost or double-released.
TEST(TieredAdmissionTest, StressNeverLosesOrDoubleReleasesSlots) {
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.max_concurrent_queries = 2;
  cfg.max_concurrent_batch = 1;
  cfg.admission_timeout_ms = 15;
  cfg.shed_batch_waiting_threshold = 6;
  EngineRunner runner(cfg);
  Database db;

  constexpr size_t kClients = 12;
  constexpr size_t kQueriesPerClient = 20;
  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> exhausted_count{0};
  std::atomic<uint64_t> cancelled_count{0};
  std::atomic<uint64_t> other_count{0};

  ForkJoin fork(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    fork.Spawn([&, c] {
      Rng rng(7700 + c);
      for (size_t q = 0; q < kQueriesPerClient; ++q) {
        PlanKnobs knobs;
        if (rng.NextBounded(2) == 0) {
          knobs.priority = QueryPriority::kBatch;
        }
        CancelToken token;
        std::thread canceller;
        if (rng.NextBounded(4) == 0) {
          knobs.cancel = &token;
          canceller = std::thread([&token] {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            token.RequestCancel();
          });
        }
        Plan plan = SleepPlan(static_cast<double>(rng.NextBounded(3)));
        auto result = runner.Execute(db, plan, knobs);
        if (result.ok()) {
          ok_count++;
        } else if (result.status().IsResourceExhausted()) {
          exhausted_count++;
        } else if (result.status().IsCancelled()) {
          cancelled_count++;
        } else {
          other_count++;
        }
        if (canceller.joinable()) canceller.join();
      }
    });
  }
  fork.Join();

  EXPECT_EQ(ok_count + exhausted_count + cancelled_count + other_count,
            kClients * kQueriesPerClient);
  EXPECT_EQ(other_count.load(), 0u);
  EXPECT_GT(ok_count.load(), 0u);
  // Clients outnumber slots 6:1 with 15 ms timeouts: some queries must
  // have been turned away, or the test isn't stressing admission.
  EXPECT_GT(exhausted_count.load(), 0u);

  // Slot accounting intact: nothing running, nothing waiting, and the
  // engine still admits fresh work at full capacity.
  EXPECT_EQ(runner.queries_running(), 0u);
  EXPECT_EQ(runner.queries_waiting(), 0u);
  Plan final_check = SleepPlan(0);
  EXPECT_TRUE(runner.Execute(db, final_check, PlanKnobs{}).ok());
}

// ---- WorkerPool nested-Run rule ---------------------------------------------

// Run() from inside a morsel would block the worker on its own batch —
// a silent deadlock. The dbg invariant turns it into a deterministic
// abort (inline no-worker path keeps the death test single-threaded).
void NestedRunFromMorsel() {
  dbg::SetInvariantsEnabled(true);
  engine::WorkerPool pool(0);
  pool.Run(1, [&](size_t, size_t) {
    pool.Run(1, [](size_t, size_t) {});
  });
}

TEST(WorkerPoolDeathTest, NestedRunFromMorselAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(NestedRunFromMorsel(), "inside a morsel");
}

}  // namespace
}  // namespace qppt
