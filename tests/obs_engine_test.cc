// Observability x SSB integration (ISSUE 7 acceptance): a traced
// 8-worker Q4.1 must produce morsel spans on at least two workers with
// driver-lane operator spans that agree with the executed PlanStats,
// the trace must export as well-formed chrome://tracing JSON, EXPLAIN
// ANALYZE must align line-for-line with ExplainPlan, and a reused
// PlanStats must never double-report. Runs under the TSan CI job
// (`ctest -L engine`).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/query/planner.h"
#include "engine/session.h"
#include "obs/trace.h"
#include "ssb/queries_qppt.h"

namespace qppt::ssb {
namespace {

class ObsEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SsbConfig cfg;
    cfg.scale_factor = 0.02;  // above the morsel threshold, CI/TSan-sized
    cfg.seed = 11;
    auto data = Generate(cfg);
    ASSERT_TRUE(data.ok());
    data_ = data->release();
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static SsbData* data_;
};

SsbData* ObsEngineTest::data_ = nullptr;

TEST_F(ObsEngineTest, TracedQ41CoversMultipleWorkers) {
  engine::EngineConfig cfg;
  cfg.threads = 8;
  cfg.clamp_threads_to_hardware = false;  // tiny CI boxes
  engine::EngineRunner runner(cfg);

  PlanKnobs knobs;
  knobs.trace = true;
  // Morsel spans must land on >= 2 distinct workers — the whole point of
  // the timeline is seeing the fan-out. On a single-vCPU box one worker
  // can occasionally drain the whole batch before the others wake, so
  // retry a few times; any multi-core machine passes on the first run.
  PlanStats stats;
  std::set<uint32_t> morsel_workers;
  double operator_span_ms = 0;
  size_t operator_spans = 0;
  for (int attempt = 0; attempt < 20 && morsel_workers.size() < 2;
       ++attempt) {
    morsel_workers.clear();
    operator_span_ms = 0;
    operator_spans = 0;
    auto result = RunQppt(runner, *data_, "4.1", knobs, &stats);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_NE(stats.trace, nullptr);
    EXPECT_EQ(stats.trace->num_worker_lanes(), 8u);
    ASSERT_GT(stats.trace->num_spans(), 0u);
    stats.trace->ForEachSpan([&](const obs::TraceSpan& span) {
      EXPECT_LE(span.t_start_us, span.t_end_us);
      if (span.kind == obs::SpanKind::kMorsel) {
        morsel_workers.insert(span.worker);
      } else if (span.kind == obs::SpanKind::kOperator) {
        operator_span_ms += (span.t_end_us - span.t_start_us) / 1000.0;
        ++operator_spans;
      }
    });
  }
  EXPECT_GE(morsel_workers.size(), 2u);

  // The driver lane records one span per plan operator; their summed
  // duration is the operator-execution time and must agree with
  // PlanStats::total_ms within 10% (they wrap the same Execute calls).
  EXPECT_EQ(operator_spans, stats.operators.size());
  ASSERT_GT(stats.total_ms, 0.0);
  EXPECT_NEAR(operator_span_ms, stats.total_ms,
              0.1 * stats.total_ms + 0.05);

  // And the export is loadable chrome://tracing JSON.
  std::string json = obs::TraceToJson(*stats.trace);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"worker-0\""), std::string::npos);
  EXPECT_NE(json.find("\"driver\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"morsel\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"operator\""), std::string::npos);
}

TEST_F(ObsEngineTest, TraceAbsentUnlessRequested) {
  engine::EngineConfig cfg;
  cfg.threads = 2;
  cfg.clamp_threads_to_hardware = false;
  engine::EngineRunner runner(cfg);
  PlanStats stats;
  auto result = RunQppt(runner, *data_, "1.1", PlanKnobs{}, &stats);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(stats.trace, nullptr);
}

TEST_F(ObsEngineTest, ExplainAnalyzeAlignsWithExplainPlan) {
  engine::EngineConfig cfg;
  cfg.threads = 2;
  cfg.clamp_threads_to_hardware = false;
  engine::EngineRunner runner(cfg);

  auto spec = BuildQuerySpec(*data_, "2.1");
  ASSERT_TRUE(spec.ok()) << spec.status();
  PlanKnobs knobs;
  auto explain = query::ExplainPlan(data_->db, *spec, knobs);
  ASSERT_TRUE(explain.ok()) << explain.status();
  PlanStats stats;
  auto analyze = runner.ExplainAnalyze(data_->db, *spec, knobs, &stats);
  ASSERT_TRUE(analyze.ok()) << analyze.status();

  // Every ExplainPlan line appears in ExplainAnalyze, in order — the
  // analyze output is the plan rendering with stats interleaved.
  size_t pos = 0;
  size_t line_start = 0;
  const std::string& plan_text = *explain;
  while (line_start < plan_text.size()) {
    size_t line_end = plan_text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = plan_text.size();
    std::string line =
        plan_text.substr(line_start, line_end - line_start);
    if (!line.empty()) {
      size_t found = analyze->find(line, pos);
      ASSERT_NE(found, std::string::npos)
          << "plan line missing from analyze: " << line;
      pos = found + line.size();
    }
    line_start = line_end + 1;
  }

  // One "    -> ..." stats row per executed operator (line-anchored:
  // the stage lines' detail column also contains "-> "), plus the
  // execution summary trailer.
  size_t stat_rows = 0;
  line_start = 0;
  while (line_start < analyze->size()) {
    if (analyze->compare(line_start, 7, "    -> ") == 0) ++stat_rows;
    size_t eol = analyze->find('\n', line_start);
    if (eol == std::string::npos) break;
    line_start = eol + 1;
  }
  EXPECT_GT(stats.operators.size(), 0u);
  EXPECT_EQ(stat_rows, stats.operators.size());
  EXPECT_NE(analyze->find("executed: total "), std::string::npos);
  EXPECT_NE(analyze->find("threads 2"), std::string::npos);
}

// Regression for the wall_ms double-reporting risk: PlanStats
// accumulates operator rows, so the engine runner and the SSB drivers
// Clear() caller stats at entry — a reused PlanStats must describe only
// the LAST execution.
TEST_F(ObsEngineTest, ReusedPlanStatsDescribeOnlyTheLastRun) {
  engine::EngineConfig cfg;
  cfg.threads = 2;
  cfg.clamp_threads_to_hardware = false;
  engine::EngineRunner runner(cfg);

  PlanStats stats;
  auto first = RunQppt(runner, *data_, "1.1", PlanKnobs{}, &stats);
  ASSERT_TRUE(first.ok()) << first.status();
  const size_t first_ops = stats.operators.size();
  ASSERT_GT(first_ops, 0u);

  auto second = RunQppt(runner, *data_, "1.1", PlanKnobs{}, &stats);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(stats.operators.size(), first_ops);

  // Same contract on the serial driver.
  auto serial = RunQppt(*data_, "1.1", PlanKnobs{}, &stats);
  ASSERT_TRUE(serial.ok()) << serial.status();
  EXPECT_EQ(stats.operators.size(), first_ops);
}

}  // namespace
}  // namespace qppt::ssb
