#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/indexed_table.h"
#include "util/rng.h"

namespace qppt {
namespace {

Schema TupleSchema() {
  return Schema({{"orderdate", ValueType::kInt64, nullptr},
                 {"revenue", ValueType::kInt64, nullptr},
                 {"brand", ValueType::kInt64, nullptr}});
}

IndexedTable::Options SmallKiss() {
  IndexedTable::Options opt;
  opt.kiss_root_bits = 20;
  return opt;
}

TEST(IndexedTableTest, SingleIntKeyUsesKiss) {
  auto table = IndexedTable::Create(TupleSchema(), {"orderdate"}, SmallKiss());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->kind(), IndexedTable::Kind::kKiss);
}

TEST(IndexedTableTest, CompositeKeyUsesPrefixTree) {
  auto table = IndexedTable::Create(TupleSchema(), {"orderdate", "brand"});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->kind(), IndexedTable::Kind::kPrefix);
}

TEST(IndexedTableTest, PreferKissOffUsesPrefixTree) {
  IndexedTable::Options opt;
  opt.prefer_kiss = false;
  auto table = IndexedTable::Create(TupleSchema(), {"orderdate"}, opt);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->kind(), IndexedTable::Kind::kPrefix);
}

TEST(IndexedTableTest, UnknownKeyColumnFails) {
  EXPECT_FALSE(IndexedTable::Create(TupleSchema(), {"ghost"}).ok());
  EXPECT_FALSE(IndexedTable::Create(TupleSchema(), {}).ok());
}

TEST(IndexedTableTest, InsertAndScanInKeyOrder) {
  auto table = IndexedTable::Create(TupleSchema(), {"orderdate"}, SmallKiss());
  ASSERT_TRUE(table.ok());
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t row[3] = {SlotFromInt64(rng.NextBounded(100)),
                       SlotFromInt64(i), SlotFromInt64(i % 7)};
    (*table)->Insert(row);
  }
  EXPECT_EQ((*table)->num_tuples(), 1000u);
  int64_t prev = -1;
  size_t seen = 0;
  (*table)->ScanInOrder([&](const uint64_t* row) {
    int64_t key = Int64FromSlot(row[0]);
    EXPECT_GE(key, prev);
    prev = key;
    ++seen;
  });
  EXPECT_EQ(seen, 1000u);
}

TEST(IndexedTableTest, CompositeKeyScanOrder) {
  auto table = IndexedTable::Create(TupleSchema(), {"brand", "orderdate"});
  ASSERT_TRUE(table.ok());
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    uint64_t row[3] = {SlotFromInt64(rng.NextBounded(50)), SlotFromInt64(i),
                       SlotFromInt64(rng.NextBounded(5))};
    (*table)->Insert(row);
  }
  std::pair<int64_t, int64_t> prev{-1, -1};
  (*table)->ScanInOrder([&](const uint64_t* row) {
    std::pair<int64_t, int64_t> cur{Int64FromSlot(row[2]),
                                    Int64FromSlot(row[0])};
    EXPECT_LE(prev, cur);
    prev = cur;
  });
}

TEST(IndexedTableTest, InsertIfAbsentDeduplicates) {
  auto table = IndexedTable::Create(TupleSchema(), {"orderdate"}, SmallKiss());
  ASSERT_TRUE(table.ok());
  uint64_t row[3] = {SlotFromInt64(7), SlotFromInt64(1), SlotFromInt64(2)};
  EXPECT_TRUE((*table)->InsertIfAbsent(row));
  row[1] = SlotFromInt64(99);
  EXPECT_FALSE((*table)->InsertIfAbsent(row));
  EXPECT_EQ((*table)->num_tuples(), 1u);
}

TEST(IndexedTableTest, AggregationGroupsAndSorts) {
  // Reproduces the §3 behaviour: inserting composed (year, brand) keys
  // groups automatically and the result scan is ordered.
  Schema input({{"year", ValueType::kInt64, nullptr},
                {"brand", ValueType::kInt64, nullptr},
                {"revenue", ValueType::kInt64, nullptr}});
  AggSpec agg({{AggFn::kSum, ScalarExpr::Column("revenue"), "sum_revenue"}});
  auto table = IndexedTable::CreateAggregated(
      {{"year", ValueType::kInt64, nullptr},
       {"brand", ValueType::kInt64, nullptr}},
      agg, input);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE((*table)->aggregated());
  EXPECT_EQ((*table)->kind(), IndexedTable::Kind::kPrefix);

  Rng rng(3);
  std::map<std::pair<int64_t, int64_t>, int64_t> reference;
  for (int i = 0; i < 5000; ++i) {
    int64_t year = 1992 + static_cast<int64_t>(rng.NextBounded(7));
    int64_t brand = static_cast<int64_t>(rng.NextBounded(40));
    int64_t revenue = static_cast<int64_t>(rng.NextBounded(1000));
    uint64_t row[3] = {SlotFromInt64(year), SlotFromInt64(brand),
                       SlotFromInt64(revenue)};
    uint64_t key[2] = {row[0], row[1]};
    (*table)->InsertAggregated(key, row);
    reference[{year, brand}] += revenue;
  }
  EXPECT_EQ((*table)->num_keys(), reference.size());

  auto it = reference.begin();
  size_t groups = 0;
  (*table)->ScanGroups([&](const uint64_t* out) {
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(Int64FromSlot(out[0]), it->first.first);
    EXPECT_EQ(Int64FromSlot(out[1]), it->first.second);
    EXPECT_EQ(Int64FromSlot(out[2]), it->second);
    ++it;
    ++groups;
  });
  EXPECT_EQ(groups, reference.size());
}

TEST(IndexedTableTest, SingleKeyAggregationOnKiss) {
  Schema input({{"date", ValueType::kInt64, nullptr},
                {"rev", ValueType::kInt64, nullptr}});
  AggSpec agg({{AggFn::kSum, ScalarExpr::Column("rev"), "total"},
               {AggFn::kCount, {}, "n"}});
  IndexedTable::Options opt;
  opt.kiss_root_bits = 20;
  auto table = IndexedTable::CreateAggregated(
      {{"date", ValueType::kInt64, nullptr}}, agg, input, opt);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->kind(), IndexedTable::Kind::kKiss);

  std::map<int64_t, std::pair<int64_t, int64_t>> reference;
  Rng rng(4);
  for (int i = 0; i < 3000; ++i) {
    int64_t date = static_cast<int64_t>(rng.NextBounded(365));
    int64_t rev = static_cast<int64_t>(rng.NextBounded(500));
    uint64_t row[2] = {SlotFromInt64(date), SlotFromInt64(rev)};
    (*table)->InsertAggregated(row, row);
    reference[date].first += rev;
    reference[date].second += 1;
  }
  auto it = reference.begin();
  (*table)->ScanGroups([&](const uint64_t* out) {
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(Int64FromSlot(out[0]), it->first);
    EXPECT_EQ(Int64FromSlot(out[1]), it->second.first);
    EXPECT_EQ(Int64FromSlot(out[2]), it->second.second);
    ++it;
  });
  EXPECT_EQ(it, reference.end());
}

TEST(IndexedTableTest, AggregateKeysMustLead) {
  Schema input({{"a", ValueType::kInt64, nullptr},
                {"b", ValueType::kInt64, nullptr}});
  AggSpec agg({{AggFn::kCount, {}, "n"}});
  // Key named after a non-leading assembled column is fine as long as the
  // key defs passed to CreateAggregated lead the output — this is the
  // supported path.
  auto ok = IndexedTable::CreateAggregated({{"b", ValueType::kInt64, nullptr}},
                                           agg, input);
  EXPECT_TRUE(ok.ok());
}

TEST(IndexedTableTest, MemoryUsageGrows) {
  auto table = IndexedTable::Create(TupleSchema(), {"orderdate"}, SmallKiss());
  ASSERT_TRUE(table.ok());
  size_t before = (*table)->MemoryUsage();
  for (int i = 0; i < 10000; ++i) {
    uint64_t row[3] = {SlotFromInt64(i % 1000), SlotFromInt64(i),
                       SlotFromInt64(0)};
    (*table)->Insert(row);
  }
  EXPECT_GT((*table)->MemoryUsage(), before);
}

}  // namespace
}  // namespace qppt
