#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "index/key_encoder.h"
#include "index/prefix_tree.h"
#include "util/rng.h"

namespace qppt {
namespace {

KeyBuf U32Key(uint32_t v) {
  KeyBuf k;
  k.AppendU32(v);
  return k;
}

// ---- basic behaviour ---------------------------------------------------------

TEST(PrefixTreeTest, EmptyLookupMisses) {
  PrefixTree tree({.key_len = 4, .kprime = 4});
  EXPECT_EQ(tree.Lookup(U32Key(1).data()), nullptr);
  EXPECT_EQ(tree.num_keys(), 0u);
}

TEST(PrefixTreeTest, SingleInsertLookup) {
  PrefixTree tree({.key_len = 4, .kprime = 4});
  tree.Insert(U32Key(0xDEADBEEF).data(), 77);
  const ValueList* v = tree.Lookup(U32Key(0xDEADBEEF).data());
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->size(), 1u);
  EXPECT_EQ(v->first(), 77u);
  EXPECT_EQ(tree.Lookup(U32Key(0xDEADBEEE).data()), nullptr);
}

TEST(PrefixTreeTest, DynamicExpansionOnSharedPrefix) {
  PrefixTree tree({.key_len = 4, .kprime = 4});
  // Keys sharing 28 bits force expansion to the last level.
  tree.Insert(U32Key(0x12345670).data(), 1);
  tree.Insert(U32Key(0x12345671).data(), 2);
  ASSERT_NE(tree.Lookup(U32Key(0x12345670).data()), nullptr);
  ASSERT_NE(tree.Lookup(U32Key(0x12345671).data()), nullptr);
  EXPECT_EQ(tree.Lookup(U32Key(0x12345670).data())->first(), 1u);
  EXPECT_EQ(tree.Lookup(U32Key(0x12345671).data())->first(), 2u);
  EXPECT_EQ(tree.num_keys(), 2u);
}

TEST(PrefixTreeTest, DuplicatesAccumulate) {
  PrefixTree tree({.key_len = 4, .kprime = 4});
  for (uint64_t i = 0; i < 100; ++i) {
    tree.Insert(U32Key(5).data(), i);
  }
  const ValueList* v = tree.Lookup(U32Key(5).data());
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->size(), 100u);
  EXPECT_EQ(tree.num_keys(), 1u);
}

TEST(PrefixTreeTest, UpsertReplaces) {
  PrefixTree tree({.key_len = 4, .kprime = 4});
  tree.Upsert(U32Key(9).data(), 1);
  tree.Upsert(U32Key(9).data(), 2);
  const ValueList* v = tree.Lookup(U32Key(9).data());
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->size(), 1u);
  EXPECT_EQ(v->first(), 2u);
}

TEST(PrefixTreeTest, AggregateModeFindOrCreate) {
  PrefixTree tree({.key_len = 4,
                   .kprime = 4,
                   .mode = PrefixTree::PayloadMode::kAggregate,
                   .agg_payload_size = 16});
  bool created = false;
  std::byte* p = tree.FindOrCreatePayload(U32Key(3).data(), &created);
  EXPECT_TRUE(created);
  // Payload starts zeroed; fold in a sum and a count.
  auto* sums = reinterpret_cast<int64_t*>(p);
  EXPECT_EQ(sums[0], 0);
  sums[0] += 100;
  sums[1] += 1;
  std::byte* q = tree.FindOrCreatePayload(U32Key(3).data(), &created);
  EXPECT_FALSE(created);
  EXPECT_EQ(q, p);
  reinterpret_cast<int64_t*>(q)[0] += 50;
  const std::byte* r = tree.FindPayload(U32Key(3).data());
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(reinterpret_cast<const int64_t*>(r)[0], 150);
  EXPECT_EQ(tree.FindPayload(U32Key(4).data()), nullptr);
}

// ---- property tests over k' and key width ------------------------------------

struct TreeParam {
  size_t key_len;
  size_t kprime;
};

class PrefixTreeProperty : public ::testing::TestWithParam<TreeParam> {};

TEST_P(PrefixTreeProperty, RandomInsertLookupRoundTrip) {
  auto [key_len, kprime] = GetParam();
  PrefixTree tree({.key_len = key_len, .kprime = kprime});
  Rng rng(42);
  std::map<std::vector<uint8_t>, uint64_t> reference;
  for (int i = 0; i < 3000; ++i) {
    std::vector<uint8_t> key(key_len);
    for (auto& b : key) b = static_cast<uint8_t>(rng.NextBounded(256));
    uint64_t value = rng.Next() >> 1;
    tree.Upsert(key.data(), value);
    reference[key] = value;
  }
  EXPECT_EQ(tree.num_keys(), reference.size());
  for (const auto& [key, value] : reference) {
    const ValueList* v = tree.Lookup(key.data());
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->first(), value);
  }
  // Absent keys miss.
  for (int i = 0; i < 500; ++i) {
    std::vector<uint8_t> key(key_len);
    for (auto& b : key) b = static_cast<uint8_t>(rng.NextBounded(256));
    if (reference.count(key)) continue;
    EXPECT_EQ(tree.Lookup(key.data()), nullptr);
  }
}

TEST_P(PrefixTreeProperty, ScanAllIsSorted) {
  auto [key_len, kprime] = GetParam();
  PrefixTree tree({.key_len = key_len, .kprime = kprime});
  Rng rng(43);
  std::set<std::vector<uint8_t>> reference;
  for (int i = 0; i < 2000; ++i) {
    std::vector<uint8_t> key(key_len);
    for (auto& b : key) b = static_cast<uint8_t>(rng.NextBounded(256));
    tree.Insert(key.data(), 1);
    reference.insert(key);
  }
  std::vector<std::vector<uint8_t>> scanned;
  tree.ScanAll([&](const PrefixTree::ContentNode& c) {
    scanned.emplace_back(c.key(), c.key() + key_len);
  });
  ASSERT_EQ(scanned.size(), reference.size());
  // The scan must enumerate exactly the reference set, in sorted order.
  auto it = reference.begin();
  for (size_t i = 0; i < scanned.size(); ++i, ++it) {
    EXPECT_EQ(scanned[i], *it);
  }
}

TEST_P(PrefixTreeProperty, RangeScanMatchesReference) {
  auto [key_len, kprime] = GetParam();
  PrefixTree tree({.key_len = key_len, .kprime = kprime});
  Rng rng(44);
  std::set<std::vector<uint8_t>> reference;
  for (int i = 0; i < 1000; ++i) {
    std::vector<uint8_t> key(key_len);
    for (auto& b : key) b = static_cast<uint8_t>(rng.NextBounded(256));
    tree.Insert(key.data(), 1);
    reference.insert(key);
  }
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint8_t> lo(key_len), hi(key_len);
    for (auto& b : lo) b = static_cast<uint8_t>(rng.NextBounded(256));
    for (auto& b : hi) b = static_cast<uint8_t>(rng.NextBounded(256));
    if (std::memcmp(lo.data(), hi.data(), key_len) > 0) std::swap(lo, hi);
    std::set<std::vector<uint8_t>> expected;
    for (const auto& k : reference) {
      if (std::memcmp(k.data(), lo.data(), key_len) >= 0 &&
          std::memcmp(k.data(), hi.data(), key_len) <= 0) {
        expected.insert(k);
      }
    }
    std::vector<std::vector<uint8_t>> scanned;
    tree.ScanRange(lo.data(), hi.data(),
                   [&](const PrefixTree::ContentNode& c) {
                     scanned.emplace_back(c.key(), c.key() + key_len);
                   });
    ASSERT_EQ(scanned.size(), expected.size());
    auto it = expected.begin();
    for (size_t i = 0; i < scanned.size(); ++i, ++it) {
      EXPECT_EQ(scanned[i], *it);
    }
  }
}

TEST_P(PrefixTreeProperty, BatchLookupAgreesWithPointLookup) {
  auto [key_len, kprime] = GetParam();
  PrefixTree tree({.key_len = key_len, .kprime = kprime});
  Rng rng(45);
  std::vector<std::vector<uint8_t>> keys;
  for (int i = 0; i < 1000; ++i) {
    std::vector<uint8_t> key(key_len);
    for (auto& b : key) b = static_cast<uint8_t>(rng.NextBounded(256));
    if (i % 2 == 0) tree.Insert(key.data(), static_cast<uint64_t>(i));
    keys.push_back(std::move(key));
  }
  std::vector<PrefixTree::LookupJob> jobs(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) jobs[i].key = keys[i].data();
  tree.BatchLookup(jobs);
  for (size_t i = 0; i < keys.size(); ++i) {
    const ValueList* direct = tree.Lookup(keys[i].data());
    if (direct == nullptr) {
      EXPECT_EQ(jobs[i].result, nullptr);
    } else {
      ASSERT_NE(jobs[i].result, nullptr);
      EXPECT_EQ(tree.ValuesOf(jobs[i].result)->first(), direct->first());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PrefixTreeProperty,
    ::testing::Values(TreeParam{4, 4}, TreeParam{4, 2}, TreeParam{4, 8},
                      TreeParam{8, 4}, TreeParam{8, 8}, TreeParam{3, 4},
                      TreeParam{16, 4}, TreeParam{4, 5}, TreeParam{6, 12}),
    [](const ::testing::TestParamInfo<TreeParam>& info) {
      return "len" + std::to_string(info.param.key_len) + "_k" +
             std::to_string(info.param.kprime);
    });

// ---- dense sequential keys (the Fig. 3 workload shape) --------------------------

TEST(PrefixTreeTest, DenseSequentialKeys) {
  PrefixTree tree({.key_len = 4, .kprime = 4});
  constexpr uint32_t kN = 50000;
  for (uint32_t i = 0; i < kN; ++i) {
    tree.Upsert(U32Key(i).data(), i * 2);
  }
  EXPECT_EQ(tree.num_keys(), kN);
  for (uint32_t i = 0; i < kN; i += 97) {
    const ValueList* v = tree.Lookup(U32Key(i).data());
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->first(), uint64_t{i} * 2);
  }
  // In-order scan of a dense range is exactly 0..kN-1.
  uint32_t expected = 0;
  tree.ScanAll([&](const PrefixTree::ContentNode& c) {
    EXPECT_EQ(DecodeU32(c.key()), expected++);
  });
  EXPECT_EQ(expected, kN);
}

TEST(PrefixTreeTest, BatchInsertMatchesSequentialInsert) {
  PrefixTree a({.key_len = 4, .kprime = 4});
  PrefixTree b({.key_len = 4, .kprime = 4});
  Rng rng(7);
  std::vector<KeyBuf> keys;
  std::vector<uint64_t> values;
  for (int i = 0; i < 2000; ++i) {
    keys.push_back(U32Key(rng.Next32() % 500));  // heavy duplicates
    values.push_back(rng.Next() >> 1);
  }
  for (size_t i = 0; i < keys.size(); ++i) a.Insert(keys[i].data(), values[i]);
  std::vector<PrefixTree::InsertJob> jobs(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    jobs[i].key = keys[i].data();
    jobs[i].value = values[i];
  }
  b.BatchInsert(jobs);
  EXPECT_EQ(a.num_keys(), b.num_keys());
  a.ScanAll([&](const PrefixTree::ContentNode& c) {
    const ValueList* va = a.ValuesOf(&c);
    const ValueList* vb = b.Lookup(c.key());
    ASSERT_NE(vb, nullptr);
    EXPECT_EQ(va->size(), vb->size());
  });
}

TEST(PrefixTreeTest, MemoryGrowsWithKprimeOnSparseKeys) {
  // §2.1: higher k' costs memory when the key distribution is sparse.
  Rng rng(8);
  std::vector<uint32_t> keys;
  for (int i = 0; i < 5000; ++i) keys.push_back(rng.Next32());
  PrefixTree k4({.key_len = 4, .kprime = 4});
  PrefixTree k8({.key_len = 4, .kprime = 8});
  for (uint32_t k : keys) {
    k4.Upsert(U32Key(k).data(), 1);
    k8.Upsert(U32Key(k).data(), 1);
  }
  EXPECT_GT(k8.MemoryUsage(), k4.MemoryUsage());
}

TEST(PrefixTreeTest, HandlesKeyLengthNotMultipleOfKprime) {
  // key_bits = 24, kprime = 5 -> last fragment is 4 bits wide.
  PrefixTree tree({.key_len = 3, .kprime = 5});
  std::vector<std::vector<uint8_t>> keys;
  for (int i = 0; i < 256; ++i) {
    keys.push_back({static_cast<uint8_t>(i), static_cast<uint8_t>(255 - i),
                    static_cast<uint8_t>(i * 7)});
    tree.Upsert(keys.back().data(), static_cast<uint64_t>(i));
  }
  for (int i = 0; i < 256; ++i) {
    const ValueList* v = tree.Lookup(keys[static_cast<size_t>(i)].data());
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->first(), static_cast<uint64_t>(i));
  }
}

}  // namespace
}  // namespace qppt
