#include <gtest/gtest.h>

#include "core/agg.h"

namespace qppt {
namespace {

Schema InputSchema() {
  return Schema({{"qty", ValueType::kInt64, nullptr},
                 {"price", ValueType::kInt64, nullptr},
                 {"weight", ValueType::kDouble, nullptr}});
}

TEST(ScalarExprTest, BindAndEval) {
  Schema s = InputSchema();
  uint64_t row[3] = {SlotFromInt64(3), SlotFromInt64(10),
                     SlotFromDouble(2.5)};

  auto col = BindScalarExpr(ScalarExpr::Column("price"), s);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(Int64FromSlot(col->Eval(row)), 10);

  auto mul = BindScalarExpr(ScalarExpr::Mul("qty", "price"), s);
  ASSERT_TRUE(mul.ok());
  EXPECT_EQ(Int64FromSlot(mul->Eval(row)), 30);

  auto sub = BindScalarExpr(ScalarExpr::Sub("price", "qty"), s);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(Int64FromSlot(sub->Eval(row)), 7);

  EXPECT_FALSE(BindScalarExpr(ScalarExpr::Column("ghost"), s).ok());
}

TEST(AggSpecTest, PayloadSizeAndToString) {
  AggSpec spec({{AggFn::kSum, ScalarExpr::Column("qty"), "total"},
                {AggFn::kCount, {}, "n"}});
  EXPECT_EQ(spec.payload_size(), 16u);
  AggSpec with_avg({{AggFn::kAvg, ScalarExpr::Column("qty"), "avg_qty"}});
  EXPECT_EQ(with_avg.payload_size(), 16u);  // slot + shared count
  EXPECT_EQ(spec.ToString(), "sum(qty) as total, count(*) as n");
}

TEST(BoundAggSpecTest, SumCountMinMax) {
  Schema s = InputSchema();
  AggSpec spec({{AggFn::kSum, ScalarExpr::Mul("qty", "price"), "rev"},
                {AggFn::kCount, {}, "n"},
                {AggFn::kMin, ScalarExpr::Column("qty"), "min_q"},
                {AggFn::kMax, ScalarExpr::Column("qty"), "max_q"}});
  auto bound = BoundAggSpec::Bind(spec, s);
  ASSERT_TRUE(bound.ok());
  std::vector<std::byte> payload(bound->payload_size());
  bound->Init(payload.data());

  int64_t qtys[] = {3, 7, 1};
  int64_t prices[] = {10, 2, 100};
  int64_t expected_rev = 0;
  for (int i = 0; i < 3; ++i) {
    uint64_t row[3] = {SlotFromInt64(qtys[i]), SlotFromInt64(prices[i]),
                       SlotFromDouble(0)};
    bound->Combine(payload.data(), row);
    expected_rev += qtys[i] * prices[i];
  }
  EXPECT_EQ(Int64FromSlot(bound->Finalize(payload.data(), 0)), expected_rev);
  EXPECT_EQ(Int64FromSlot(bound->Finalize(payload.data(), 1)), 3);
  EXPECT_EQ(Int64FromSlot(bound->Finalize(payload.data(), 2)), 1);
  EXPECT_EQ(Int64FromSlot(bound->Finalize(payload.data(), 3)), 7);
}

TEST(BoundAggSpecTest, DoubleSumAndAvg) {
  Schema s = InputSchema();
  AggSpec spec({{AggFn::kSum, ScalarExpr::Column("weight"), "w"},
                {AggFn::kAvg, ScalarExpr::Column("qty"), "avg_q"}});
  auto bound = BoundAggSpec::Bind(spec, s);
  ASSERT_TRUE(bound.ok());
  ASSERT_TRUE(bound->term_is_double(0));
  std::vector<std::byte> payload(bound->payload_size());
  bound->Init(payload.data());
  for (int i = 1; i <= 4; ++i) {
    uint64_t row[3] = {SlotFromInt64(i), SlotFromInt64(0),
                       SlotFromDouble(i * 0.5)};
    bound->Combine(payload.data(), row);
  }
  EXPECT_DOUBLE_EQ(DoubleFromSlot(bound->Finalize(payload.data(), 0)), 5.0);
  EXPECT_DOUBLE_EQ(DoubleFromSlot(bound->Finalize(payload.data(), 1)), 2.5);
}

TEST(BoundAggSpecTest, MinMaxOnDoubles) {
  Schema s = InputSchema();
  AggSpec spec({{AggFn::kMin, ScalarExpr::Column("weight"), "lo"},
                {AggFn::kMax, ScalarExpr::Column("weight"), "hi"}});
  auto bound = BoundAggSpec::Bind(spec, s);
  ASSERT_TRUE(bound.ok());
  std::vector<std::byte> payload(bound->payload_size());
  bound->Init(payload.data());
  for (double w : {3.5, -1.25, 7.0}) {
    uint64_t row[3] = {0, 0, SlotFromDouble(w)};
    bound->Combine(payload.data(), row);
  }
  EXPECT_DOUBLE_EQ(DoubleFromSlot(bound->Finalize(payload.data(), 0)), -1.25);
  EXPECT_DOUBLE_EQ(DoubleFromSlot(bound->Finalize(payload.data(), 1)), 7.0);
}

TEST(BoundAggSpecTest, EmptySpecIsEmpty) {
  auto bound = BoundAggSpec::Bind(AggSpec{}, InputSchema());
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound->empty());
  EXPECT_EQ(bound->payload_size(), 0u);
}

}  // namespace
}  // namespace qppt
