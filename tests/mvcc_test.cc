#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "storage/mvcc.h"

namespace qppt {
namespace {

Schema OneCol() {
  return Schema({{"v", ValueType::kInt64, nullptr}});
}

uint64_t RowOf(int64_t v) { return SlotFromInt64(v); }

class MvccTest : public ::testing::Test {
 protected:
  TransactionManager tm_;
  MvccTable table_{OneCol(), "t"};

  Timestamp Commit(Transaction& txn) {
    Timestamp ts = tm_.BeginCommit();
    table_.CommitTransaction(txn, ts);
    tm_.FinishCommit(txn, ts);
    return ts;
  }

  MvccTable::LogicalId CommittedInsert(int64_t v) {
    Transaction txn = tm_.Begin();
    uint64_t row[1] = {RowOf(v)};
    auto id = table_.Insert(txn, row);
    Commit(txn);
    return id;
  }

  Status CommittedUpdate(MvccTable::LogicalId id, int64_t v) {
    Transaction txn = tm_.Begin();
    uint64_t row[1] = {RowOf(v)};
    Status st = table_.Update(txn, id, row);
    if (st.ok()) Commit(txn);
    return st;
  }

  int64_t ReadAt(const Transaction& txn, MvccTable::LogicalId id) {
    auto rid = table_.Read(txn, id);
    EXPECT_TRUE(rid.has_value());
    if (!rid.has_value()) return -1;
    return Int64FromSlot(table_.storage().GetSlot(*rid, 0));
  }
};

TEST_F(MvccTest, InsertInvisibleUntilCommit) {
  Transaction writer = tm_.Begin();
  uint64_t row[1] = {RowOf(1)};
  auto id = table_.Insert(writer, row);

  Transaction reader = tm_.Begin();
  EXPECT_FALSE(table_.Read(reader, id).has_value());

  // The writer sees its own uncommitted insert.
  EXPECT_TRUE(table_.Read(writer, id).has_value());

  Commit(writer);

  // The old snapshot still does not see it; a fresh one does.
  EXPECT_FALSE(table_.Read(reader, id).has_value());
  Transaction later = tm_.Begin();
  EXPECT_TRUE(table_.Read(later, id).has_value());
}

TEST_F(MvccTest, SnapshotReadsOldVersionDuringUpdate) {
  auto id = CommittedInsert(10);

  Transaction reader = tm_.Begin();
  ASSERT_TRUE(CommittedUpdate(id, 20).ok());

  // Reader began before the commit: sees 10.
  EXPECT_EQ(ReadAt(reader, id), 10);
  // New snapshot sees 20.
  Transaction later = tm_.Begin();
  EXPECT_EQ(ReadAt(later, id), 20);
}

TEST_F(MvccTest, WriteWriteConflictAborts) {
  auto id = CommittedInsert(10);
  Transaction a = tm_.Begin();
  Transaction b = tm_.Begin();
  uint64_t row_a[1] = {RowOf(11)};
  uint64_t row_b[1] = {RowOf(12)};
  ASSERT_TRUE(table_.Update(a, id, row_a).ok());
  Status st = table_.Update(b, id, row_b);
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST_F(MvccTest, UpdateAgainstNewerCommitFails) {
  auto id = CommittedInsert(10);
  Transaction stale = tm_.Begin();
  // Another transaction commits an update.
  ASSERT_TRUE(CommittedUpdate(id, 30).ok());
  // The stale snapshot must not blind-write over it.
  uint64_t row2[1] = {RowOf(40)};
  EXPECT_FALSE(table_.Update(stale, id, row2).ok());
}

TEST_F(MvccTest, AbortRestoresOldVersion) {
  auto id = CommittedInsert(10);
  Transaction writer = tm_.Begin();
  uint64_t row[1] = {RowOf(99)};
  ASSERT_TRUE(table_.Update(writer, id, row).ok());
  tm_.Abort(writer);
  table_.AbortTransaction(writer);

  Transaction reader = tm_.Begin();
  EXPECT_EQ(ReadAt(reader, id), 10);
  // And the row is writable again (no lingering conflict marker).
  Transaction again = tm_.Begin();
  uint64_t row2[1] = {RowOf(11)};
  EXPECT_TRUE(table_.Update(again, id, row2).ok());
}

TEST_F(MvccTest, DeleteHidesRow) {
  auto id = CommittedInsert(10);
  Transaction deleter = tm_.Begin();
  ASSERT_TRUE(table_.Delete(deleter, id).ok());
  Commit(deleter);

  Transaction reader = tm_.Begin();
  EXPECT_FALSE(table_.Read(reader, id).has_value());
}

TEST_F(MvccTest, VersionChainAcrossManyUpdates) {
  auto id = CommittedInsert(0);
  std::vector<Transaction> snapshots;
  for (int i = 1; i <= 5; ++i) {
    snapshots.push_back(tm_.Begin());
    ASSERT_TRUE(CommittedUpdate(id, i).ok());
  }
  // snapshot[i] was taken when the value was i.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ReadAt(snapshots[static_cast<size_t>(i)], id), i);
  }
}

TEST_F(MvccTest, SnapshotRidsEnumeratesVisibleRows) {
  CommittedInsert(1);
  auto id2 = CommittedInsert(2);
  CommittedInsert(3);
  // Delete row 2.
  Transaction deleter = tm_.Begin();
  ASSERT_TRUE(table_.Delete(deleter, id2).ok());
  Commit(deleter);

  auto rids = table_.SnapshotRids(tm_.last_commit_ts());
  ASSERT_EQ(rids.size(), 2u);
  EXPECT_EQ(Int64FromSlot(table_.storage().GetSlot(rids[0], 0)), 1);
  EXPECT_EQ(Int64FromSlot(table_.storage().GetSlot(rids[1], 0)), 3);
}

TEST_F(MvccTest, UpdateMissingRowIsNotFound) {
  Transaction t = tm_.Begin();
  uint64_t row[1] = {RowOf(1)};
  EXPECT_TRUE(table_.Update(t, 999, row).IsNotFound());
  EXPECT_TRUE(table_.Delete(t, 999).IsNotFound());
}

// --- regressions for the MVCC bug fixes ------------------------------------

// heads_[id] == kInvalidVersion after an aborted insert used to index
// versions_[kInvalidVersion] — out of bounds. Update/Delete/Read must all
// report NotFound instead.
TEST_F(MvccTest, AbortedInsertThenUpdateIsNotFound) {
  Transaction ins = tm_.Begin();
  uint64_t row[1] = {RowOf(7)};
  auto id = table_.Insert(ins, row);
  tm_.Abort(ins);
  table_.AbortTransaction(ins);

  Transaction t = tm_.Begin();
  uint64_t row2[1] = {RowOf(8)};
  EXPECT_TRUE(table_.Update(t, id, row2).IsNotFound());
  EXPECT_TRUE(table_.Delete(t, id).IsNotFound());
  EXPECT_FALSE(table_.Read(t, id).has_value());
  // The dead logical id is skipped, not crashed on, by full scans too.
  EXPECT_TRUE(table_.SnapshotRids(tm_.last_commit_ts()).empty());
}

// Delete used to skip the end_ts check Update has and happily "deleted" an
// already-deleted row.
TEST_F(MvccTest, DeleteOfDeletedRowIsNotFound) {
  auto id = CommittedInsert(10);
  Transaction d1 = tm_.Begin();
  ASSERT_TRUE(table_.Delete(d1, id).ok());
  Commit(d1);

  Transaction d2 = tm_.Begin();
  EXPECT_TRUE(table_.Delete(d2, id).IsNotFound());
  uint64_t row[1] = {RowOf(11)};
  EXPECT_TRUE(table_.Update(d2, id, row).IsNotFound());
}

TEST_F(MvccTest, DoubleDeleteWithinTransactionIsNotFound) {
  auto id = CommittedInsert(10);
  Transaction t = tm_.Begin();
  ASSERT_TRUE(table_.Delete(t, id).ok());
  EXPECT_TRUE(table_.Delete(t, id).IsNotFound());
}

TEST_F(MvccTest, UpdateAfterOwnDeleteDoesNotResurrect) {
  auto id = CommittedInsert(10);
  Transaction t = tm_.Begin();
  ASSERT_TRUE(table_.Delete(t, id).ok());
  uint64_t row[1] = {RowOf(11)};
  EXPECT_TRUE(table_.Update(t, id, row).IsNotFound());
  // The transaction's own reads agree the row is gone.
  EXPECT_FALSE(table_.Read(t, id).has_value());
  // Abort undoes the pending delete.
  tm_.Abort(t);
  table_.AbortTransaction(t);
  Transaction r = tm_.Begin();
  EXPECT_EQ(ReadAt(r, id), 10);
}

TEST_F(MvccTest, DeleteOfOwnInsertLeavesNoVisibleRow) {
  Transaction t = tm_.Begin();
  uint64_t row[1] = {RowOf(5)};
  auto id = table_.Insert(t, row);
  ASSERT_TRUE(table_.Delete(t, id).ok());
  EXPECT_FALSE(table_.Read(t, id).has_value());
  Commit(t);
  Transaction r = tm_.Begin();
  EXPECT_FALSE(table_.Read(r, id).has_value());
}

// The commit timestamp must not be observable by new snapshots until the
// versions are stamped; with the old single-shot Commit a reader beginning
// in between saw read_ts >= commit_ts but the pre-commit row state.
TEST_F(MvccTest, CommitTimestampPublishedOnlyAfterStamping) {
  auto id = CommittedInsert(10);
  Transaction w = tm_.Begin();
  uint64_t row[1] = {RowOf(20)};
  ASSERT_TRUE(table_.Update(w, id, row).ok());

  Timestamp ts = tm_.BeginCommit();
  // Allocated but unpublished: a new snapshot stays below ts and reads the
  // old version.
  Transaction mid = tm_.Begin();
  EXPECT_LT(mid.read_ts, ts);
  EXPECT_EQ(ReadAt(mid, id), 10);

  table_.CommitTransaction(w, ts);
  tm_.FinishCommit(w, ts);
  Transaction after = tm_.Begin();
  EXPECT_GE(after.read_ts, ts);
  EXPECT_EQ(ReadAt(after, id), 20);
}

// Commit stamps only the committing transaction's write set; a concurrent
// transaction's pending writes stay uncommitted and commit independently.
TEST_F(MvccTest, CommitTouchesOnlyOwnWrites) {
  auto id1 = CommittedInsert(1);
  auto id2 = CommittedInsert(2);
  Transaction a = tm_.Begin();
  Transaction b = tm_.Begin();
  uint64_t row_a[1] = {RowOf(11)};
  uint64_t row_b[1] = {RowOf(22)};
  ASSERT_TRUE(table_.Update(a, id1, row_a).ok());
  ASSERT_TRUE(table_.Update(b, id2, row_b).ok());

  Commit(a);
  Transaction r = tm_.Begin();
  EXPECT_EQ(ReadAt(r, id1), 11);
  EXPECT_EQ(ReadAt(r, id2), 2);  // b's write still invisible

  Commit(b);
  Transaction r2 = tm_.Begin();
  EXPECT_EQ(ReadAt(r2, id2), 22);
}

TEST_F(MvccTest, RidVisibleAtTracksVersionLifetime) {
  Transaction w = tm_.Begin();
  uint64_t row[1] = {RowOf(1)};
  auto id = table_.Insert(w, row);
  Rid rid0 = *table_.Read(w, id);
  EXPECT_FALSE(table_.RidVisibleAt(rid0, tm_.last_commit_ts()));
  Timestamp ts1 = Commit(w);
  EXPECT_TRUE(table_.RidVisibleAt(rid0, ts1));

  Transaction u = tm_.Begin();
  uint64_t row2[1] = {RowOf(2)};
  ASSERT_TRUE(table_.Update(u, id, row2).ok());
  Rid rid1 = *table_.Read(u, id);
  EXPECT_FALSE(table_.RidVisibleAt(rid1, ts1));  // uncommitted
  Timestamp ts2 = Commit(u);
  EXPECT_TRUE(table_.RidVisibleAt(rid0, ts1));   // old snapshot keeps rid0
  EXPECT_FALSE(table_.RidVisibleAt(rid0, ts2));  // superseded
  EXPECT_TRUE(table_.RidVisibleAt(rid1, ts2));
}

TEST_F(MvccTest, ForEachPendingWriteListsCreatedRows) {
  auto id0 = CommittedInsert(1);
  Transaction w = tm_.Begin();
  uint64_t row[1] = {RowOf(2)};
  auto id1 = table_.Insert(w, row);
  uint64_t row2[1] = {RowOf(3)};
  ASSERT_TRUE(table_.Update(w, id0, row2).ok());
  ASSERT_TRUE(table_.Delete(w, id1).ok());

  std::vector<Rid> rids;
  table_.ForEachPendingWrite(w, [&](Rid r) { rids.push_back(r); });
  // Insert and update each created one physical row; delete created none.
  EXPECT_EQ(rids.size(), 2u);
}

TEST_F(MvccTest, ReclaimBeforeUnlinksSupersededVersions) {
  auto id = CommittedInsert(0);
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(CommittedUpdate(id, i).ok());
  }
  // Horizon at the latest commit: only the newest version stays reachable.
  EXPECT_EQ(table_.ReclaimBefore(tm_.last_commit_ts()), 4u);
  Transaction r = tm_.Begin();
  EXPECT_EQ(ReadAt(r, id), 4);
  EXPECT_EQ(table_.ReclaimBefore(tm_.last_commit_ts()), 0u);
}

TEST_F(MvccTest, ReclaimRespectsHorizonOfActiveSnapshot) {
  auto id = CommittedInsert(0);
  Transaction old_snap = tm_.Begin();
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(CommittedUpdate(id, i).ok());
  }
  // With the horizon pinned at the old snapshot, its version must survive.
  size_t n = table_.ReclaimBefore(old_snap.read_ts);
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(ReadAt(old_snap, id), 0);
}

// A reader starting at an arbitrary point during a commit stream must see a
// state consistent with its snapshot timestamp: after N commits (commit i
// sets the value to i at timestamp ts0+i), a snapshot at T sees exactly
// T - ts0. Run with TSan to check the publication ordering.
TEST_F(MvccTest, ReaderRacingCommitsSeesConsistentSnapshot) {
  auto id = CommittedInsert(0);
  Timestamp ts0 = tm_.last_commit_ts();
  std::atomic<bool> done{false};

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      Transaction r = tm_.Begin();
      auto rid = table_.Read(r, id);
      ASSERT_TRUE(rid.has_value());
      int64_t v = Int64FromSlot(table_.storage().GetSlot(*rid, 0));
      EXPECT_EQ(v, static_cast<int64_t>(r.read_ts - ts0));
    }
  });

  for (int i = 1; i <= 500; ++i) {
    Transaction w = tm_.Begin();
    uint64_t row[1] = {RowOf(i)};
    ASSERT_TRUE(table_.Update(w, id, row).ok());
    Timestamp ts = tm_.BeginCommit();
    table_.CommitTransaction(w, ts);
    tm_.FinishCommit(w, ts);
  }
  done.store(true, std::memory_order_release);
  reader.join();

  Transaction final_r = tm_.Begin();
  EXPECT_EQ(ReadAt(final_r, id), 500);
}

}  // namespace
}  // namespace qppt
