#include <gtest/gtest.h>

#include "storage/mvcc.h"

namespace qppt {
namespace {

Schema OneCol() {
  return Schema({{"v", ValueType::kInt64, nullptr}});
}

uint64_t RowOf(int64_t v) { return SlotFromInt64(v); }

class MvccTest : public ::testing::Test {
 protected:
  TransactionManager tm_;
  MvccTable table_{OneCol(), "t"};

  MvccTable::LogicalId CommittedInsert(int64_t v) {
    Transaction txn = tm_.Begin();
    uint64_t row[1] = {RowOf(v)};
    auto id = table_.Insert(txn, row);
    Timestamp ts = tm_.Commit(txn);
    table_.CommitTransaction(txn, ts);
    return id;
  }

  int64_t ReadAt(const Transaction& txn, MvccTable::LogicalId id) {
    auto rid = table_.Read(txn, id);
    EXPECT_TRUE(rid.has_value());
    return Int64FromSlot(table_.storage().GetSlot(*rid, 0));
  }
};

TEST_F(MvccTest, InsertInvisibleUntilCommit) {
  Transaction writer = tm_.Begin();
  uint64_t row[1] = {RowOf(1)};
  auto id = table_.Insert(writer, row);

  Transaction reader = tm_.Begin();
  EXPECT_FALSE(table_.Read(reader, id).has_value());

  // The writer sees its own uncommitted insert.
  EXPECT_TRUE(table_.Read(writer, id).has_value());

  Timestamp ts = tm_.Commit(writer);
  table_.CommitTransaction(writer, ts);

  // The old snapshot still does not see it; a fresh one does.
  EXPECT_FALSE(table_.Read(reader, id).has_value());
  Transaction later = tm_.Begin();
  EXPECT_TRUE(table_.Read(later, id).has_value());
}

TEST_F(MvccTest, SnapshotReadsOldVersionDuringUpdate) {
  auto id = CommittedInsert(10);

  Transaction reader = tm_.Begin();
  Transaction writer = tm_.Begin();
  uint64_t row[1] = {RowOf(20)};
  ASSERT_TRUE(table_.Update(writer, id, row).ok());
  Timestamp ts = tm_.Commit(writer);
  table_.CommitTransaction(writer, ts);

  // Reader began before the commit: sees 10.
  EXPECT_EQ(ReadAt(reader, id), 10);
  // New snapshot sees 20.
  Transaction later = tm_.Begin();
  EXPECT_EQ(ReadAt(later, id), 20);
}

TEST_F(MvccTest, WriteWriteConflictAborts) {
  auto id = CommittedInsert(10);
  Transaction a = tm_.Begin();
  Transaction b = tm_.Begin();
  uint64_t row_a[1] = {RowOf(11)};
  uint64_t row_b[1] = {RowOf(12)};
  ASSERT_TRUE(table_.Update(a, id, row_a).ok());
  Status st = table_.Update(b, id, row_b);
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST_F(MvccTest, UpdateAgainstNewerCommitFails) {
  auto id = CommittedInsert(10);
  Transaction stale = tm_.Begin();
  // Another transaction commits an update.
  Transaction fresh = tm_.Begin();
  uint64_t row[1] = {RowOf(30)};
  ASSERT_TRUE(table_.Update(fresh, id, row).ok());
  Timestamp ts = tm_.Commit(fresh);
  table_.CommitTransaction(fresh, ts);
  // The stale snapshot must not blind-write over it.
  uint64_t row2[1] = {RowOf(40)};
  EXPECT_FALSE(table_.Update(stale, id, row2).ok());
}

TEST_F(MvccTest, AbortRestoresOldVersion) {
  auto id = CommittedInsert(10);
  Transaction writer = tm_.Begin();
  uint64_t row[1] = {RowOf(99)};
  ASSERT_TRUE(table_.Update(writer, id, row).ok());
  tm_.Abort(writer);
  table_.AbortTransaction(writer);

  Transaction reader = tm_.Begin();
  EXPECT_EQ(ReadAt(reader, id), 10);
  // And the row is writable again (no lingering conflict marker).
  Transaction again = tm_.Begin();
  uint64_t row2[1] = {RowOf(11)};
  EXPECT_TRUE(table_.Update(again, id, row2).ok());
}

TEST_F(MvccTest, DeleteHidesRow) {
  auto id = CommittedInsert(10);
  Transaction deleter = tm_.Begin();
  ASSERT_TRUE(table_.Delete(deleter, id).ok());
  Timestamp ts = tm_.Commit(deleter);
  table_.CommitTransaction(deleter, ts);

  Transaction reader = tm_.Begin();
  EXPECT_FALSE(table_.Read(reader, id).has_value());
}

TEST_F(MvccTest, VersionChainAcrossManyUpdates) {
  auto id = CommittedInsert(0);
  std::vector<Transaction> snapshots;
  for (int i = 1; i <= 5; ++i) {
    snapshots.push_back(tm_.Begin());
    Transaction w = tm_.Begin();
    uint64_t row[1] = {RowOf(i)};
    ASSERT_TRUE(table_.Update(w, id, row).ok());
    Timestamp ts = tm_.Commit(w);
    table_.CommitTransaction(w, ts);
  }
  // snapshot[i] was taken when the value was i.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ReadAt(snapshots[static_cast<size_t>(i)], id), i);
  }
}

TEST_F(MvccTest, SnapshotRidsEnumeratesVisibleRows) {
  CommittedInsert(1);
  auto id2 = CommittedInsert(2);
  CommittedInsert(3);
  // Delete row 2.
  Transaction deleter = tm_.Begin();
  ASSERT_TRUE(table_.Delete(deleter, id2).ok());
  Timestamp ts = tm_.Commit(deleter);
  table_.CommitTransaction(deleter, ts);

  auto rids = table_.SnapshotRids(tm_.last_commit_ts());
  ASSERT_EQ(rids.size(), 2u);
  EXPECT_EQ(Int64FromSlot(table_.storage().GetSlot(rids[0], 0)), 1);
  EXPECT_EQ(Int64FromSlot(table_.storage().GetSlot(rids[1], 0)), 3);
}

TEST_F(MvccTest, UpdateMissingRowIsNotFound) {
  Transaction t = tm_.Begin();
  uint64_t row[1] = {RowOf(1)};
  EXPECT_TRUE(table_.Update(t, 999, row).IsNotFound());
  EXPECT_TRUE(table_.Delete(t, 999).IsNotFound());
}

}  // namespace
}  // namespace qppt
