// Chaos suite for the deterministic fault-injection layer
// (util/failpoint.h): every catalogued failpoint is armed in turn and
// the engine must degrade cleanly — a proper error Status out of the
// front door, no crash, no stuck admission slot, no leaked snapshot pin
// — then answer the same query correctly once disarmed. A final chaos
// run fires probabilistic faults under concurrent writers and pinned
// readers. Built only when QPPT_FAILPOINTS is compiled in (Debug /
// sanitizer builds); the TSan and ASan CI jobs run it with
// QPPT_DBG_INVARIANTS=1.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/agg.h"
#include "core/operators/selection.h"
#include "core/parallel.h"
#include "core/plan.h"
#include "engine/session.h"
#include "engine/write_session.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace qppt {
namespace {

using engine::EngineConfig;
using engine::EngineRunner;
using engine::WriteSession;

// Enough committed rows that the engine takes the parallel path
// (>= engine::kMinParallelInputTuples) and the partitioned merge runs.
constexpr int64_t kInitialRows = 8192;
// Keys repeat so the output indexes build duplicate chains — the
// allocation failpoints (arena_grow / page_arena_grow) live on the
// value-list and duplicate-chain growth paths that unique keys never
// touch.
constexpr int64_t kDistinctKeys = 1024;

Schema ItemsSchema() {
  return Schema({{"k", ValueType::kInt64, nullptr},
                 {"v", ValueType::kInt64, nullptr}});
}

std::unique_ptr<Database> MakeDb() {
  auto db = std::make_unique<Database>();
  auto table = std::make_unique<MvccTable>(ItemsSchema(), "items");
  TransactionManager& tm = db->txn_manager();
  Transaction txn = tm.Begin();
  for (int64_t i = 0; i < kInitialRows; ++i) {
    uint64_t row[2] = {SlotFromInt64(i % kDistinctKeys), SlotFromInt64(i)};
    table->Insert(txn, row);
  }
  Timestamp ts = tm.BeginCommit();
  table->CommitTransaction(txn, ts);
  tm.FinishCommit(txn, ts);
  EXPECT_TRUE(db->AddVersionedTable(std::move(table)).ok());
  BaseIndex::Options opt;
  opt.kiss_root_bits = 16;
  EXPECT_TRUE(db->BuildLiveIndex("items_by_k", "items", {"k"}, opt).ok());
  return db;
}

// Grouped full scan: touches selection, output-table allocation, and —
// parallel — the morsel driver plus the partitioned merge.
Plan ScanPlan() {
  SelectionSpec sel;
  sel.input_index = "items_by_k";
  sel.predicate = KeyPredicate::All();
  sel.carry_columns = {"k", "v"};
  sel.output = {"out", {"k"}, {}};
  Plan plan;
  plan.Emplace<SelectionOp>(sel);
  plan.set_result_slot("out");
  return plan;
}

// Aggregating variant: group-by-key accumulators allocate payload blocks
// from the output tree's value arena, reaching the allocation failpoints
// the plain scan misses.
Plan AggPlan() {
  SelectionSpec sel;
  sel.input_index = "items_by_k";
  sel.predicate = KeyPredicate::All();
  sel.carry_columns = {"k", "v"};
  sel.output = {"out",
                {"k"},
                AggSpec({{AggFn::kSum, ScalarExpr::Column("v"), "sum_v"}})};
  Plan plan;
  plan.Emplace<SelectionOp>(sel);
  plan.set_result_slot("out");
  return plan;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fail::Enabled()) {
      GTEST_SKIP() << "failpoints compiled out (QPPT_FAILPOINTS off)";
    }
    fail::DisarmAll();
  }
  void TearDown() override { fail::DisarmAll(); }

  // The engine must be fully sane: nothing running, nothing pinned, and
  // the reference query answers correctly.
  void ExpectEngineClean(EngineRunner& runner, const Database& db) {
    EXPECT_EQ(runner.queries_running(), 0u);
    EXPECT_EQ(runner.pinned_snapshots(), 0u);
    Plan plan = ScanPlan();
    auto result = runner.Execute(db, plan, ParallelKnobs());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->rows.size(), static_cast<size_t>(kInitialRows));
  }

  static PlanKnobs ParallelKnobs() {
    PlanKnobs knobs;
    knobs.threads = 2;
    return knobs;
  }

  static engine::EngineConfig ParallelConfig() {
    EngineConfig cfg;
    cfg.threads = 2;
    cfg.clamp_threads_to_hardware = false;  // tiny CI boxes
    return cfg;
  }

  // Runs plans until `tag` fires: the plain scan first, then the
  // aggregation — different tags live on different paths (allocation
  // faults need accumulator payloads; merge faults need the plain
  // partitioned merge).
  Result<QueryResult> RunUntilHit(EngineRunner& runner, const Database& db,
                                  const char* tag) {
    Plan scan = ScanPlan();
    auto result = runner.Execute(db, scan, ParallelKnobs());
    if (fail::HitCount(tag) > 0) return result;
    Plan agg = AggPlan();
    return runner.Execute(db, agg, ParallelKnobs());
  }
};

// Every query-path failpoint: armed one at a time, the query must come
// back with the injected error (never crash, never hang), and the very
// next run — disarmed — must succeed with full results.
TEST_F(FaultInjectionTest, QueryPathFaultsSurfaceAsStatusAndRecover) {
  auto db = MakeDb();
  EngineRunner runner(ParallelConfig());
  const char* tags[] = {
      "arena_grow", "page_arena_grow", "slab_grow",  "merge_plan",
      "merge_shard", "morsel_exec",    "sched_submit",
  };
  for (const char* tag : tags) {
    SCOPED_TRACE(tag);
    fail::Arm(tag, {fail::Action::kStatus, StatusCode::kIOError,
                    "injected", /*count=*/1});
    auto result = RunUntilHit(runner, *db, tag);
    if (fail::HitCount(tag) > 0) {
      EXPECT_FALSE(result.ok()) << "hit " << tag << " but query succeeded";
      EXPECT_EQ(result.status().code(), StatusCode::kIOError)
          << result.status().ToString();
    }
    EXPECT_GT(fail::HitCount(tag), 0u)
        << tag << " never fired: the choke point is no longer exercised "
        << "by this plan shape — fix the test or the failpoint placement";
    fail::DisarmAll();
    ExpectEngineClean(runner, *db);
  }
}

// Simulated allocation failure (std::bad_alloc at arena growth) must
// unwind to ResourceExhausted, not terminate.
TEST_F(FaultInjectionTest, InjectedBadAllocBecomesResourceExhausted) {
  auto db = MakeDb();
  EngineRunner runner(ParallelConfig());
  fail::FailConfig config;
  config.action = fail::Action::kBadAlloc;
  config.count = 1;
  fail::Arm("arena_grow", config);
  auto result = RunUntilHit(runner, *db, "arena_grow");
  ASSERT_GT(fail::HitCount("arena_grow"), 0u);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted())
      << result.status().ToString();
  fail::DisarmAll();
  ExpectEngineClean(runner, *db);
}

// A failed commit publish must roll back like an Abort: no rows visible,
// chains clean, and the session finished.
TEST_F(FaultInjectionTest, FailedCommitRollsBackCleanly) {
  auto db = MakeDb();
  EngineRunner runner(EngineConfig{.threads = 1});
  fail::Arm("commit_publish", {fail::Action::kStatus, StatusCode::kIOError,
                               "injected publish failure", /*count=*/1});
  WriteSession ws = runner.OpenWriteSession(db.get());
  uint64_t row[2] = {SlotFromInt64(kInitialRows + 1), SlotFromInt64(7)};
  ASSERT_TRUE(ws.Insert("items", row).ok());
  auto ts = ws.Commit();
  ASSERT_FALSE(ts.ok());
  EXPECT_EQ(ts.status().code(), StatusCode::kIOError);
  EXPECT_FALSE(ws.active());
  EXPECT_EQ(fail::HitCount("commit_publish"), 1u);
  EXPECT_EQ(runner.write_stats().aborted, 1u);
  fail::DisarmAll();

  // The injected failure left nothing behind; a clean commit works.
  {
    WriteSession retry = runner.OpenWriteSession(db.get());
    ASSERT_TRUE(retry.Insert("items", row).ok());
    ASSERT_TRUE(retry.Commit().ok());
  }
  SelectionSpec sel;
  sel.input_index = "items_by_k";
  sel.predicate = KeyPredicate::Range(kInitialRows + 1, kInitialRows + 1);
  sel.carry_columns = {"k", "v"};
  sel.output = {"out", {"k"}, {}};
  Plan probe;
  probe.Emplace<SelectionOp>(sel);
  probe.set_result_slot("out");
  auto result = runner.Execute(*db, probe, PlanKnobs{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 1u);  // the retry's row, not the failed one
}

// The shared-read batcher: a leader whose scan faults must hand the
// error to every follower — silently-empty results are the bug this
// path exists to prevent.
TEST_F(FaultInjectionTest, ReadBatchLeaderErrorReachesEveryFollower) {
  Schema schema({{"k", ValueType::kInt64, nullptr},
                 {"v", ValueType::kInt64, nullptr}});
  auto table_or = IndexedTable::Create(schema, {"k"});
  ASSERT_TRUE(table_or.ok());
  std::unique_ptr<IndexedTable> table = std::move(table_or).value();
  for (int i = 0; i < 1000; ++i) {
    uint64_t row[2] = {SlotFromInt64(i % 50), SlotFromInt64(i)};
    table->Insert(row);
  }
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.read_batch_window_us = 500;  // wide window: force shared batches
  EngineRunner runner(cfg);
  fail::FailConfig config;
  config.action = fail::Action::kThrow;
  config.code = StatusCode::kIOError;
  config.message = "injected scan failure";
  fail::Arm("read_batch_scan", config);

  constexpr size_t kClients = 8;
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> empties{0};
  ForkJoin fork(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    fork.Spawn([&, c] {
      auto ids = runner.PointRead(*table, static_cast<int64_t>(c % 50));
      if (!ids.ok()) {
        errors++;
      } else if (ids->empty()) {
        empties++;  // silent data loss: key c%50 has 20 rows
      }
    });
  }
  fork.Join();
  EXPECT_EQ(errors.load(), kClients);
  EXPECT_EQ(empties.load(), 0u);

  fail::DisarmAll();
  auto clean = runner.PointRead(*table, 0);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->size(), 20u);
}

// Version reclamation faulting mid-sweep (writer lock held) must unwind
// without wedging later writers or sweeps.
TEST_F(FaultInjectionTest, ReclaimFaultDoesNotWedgeWriters) {
  auto db = MakeDb();
  EngineRunner runner(EngineConfig{.threads = 1});
  fail::Arm("reclaim_sweep", {fail::Action::kThrow, StatusCode::kInternal,
                              "injected sweep failure", /*count=*/1});
  EXPECT_THROW(runner.ReclaimVersions(db.get()), fail::InjectedFault);
  fail::DisarmAll();

  WriteSession ws = runner.OpenWriteSession(db.get());
  uint64_t row[2] = {SlotFromInt64(0), SlotFromInt64(999)};
  ASSERT_TRUE(ws.Update("items", 0, row).ok());
  ASSERT_TRUE(ws.Commit().ok());
  // The superseded version reclaims on the next (clean) sweep.
  EXPECT_GE(runner.ReclaimVersions(db.get()), 1u);
}

// The chaos run: probabilistic faults across every choke point while
// writers commit and readers query pinned snapshots. Nothing may crash;
// every query either succeeds with a consistent snapshot or fails with
// a Status; afterwards the engine is fully clean. ASan/TSan (the CI
// chaos jobs) turn leaked state or racy unwinding into hard failures.
TEST_F(FaultInjectionTest, ChaosRunDegradesCleanlyUnderConcurrency) {
  auto db = MakeDb();
  EngineConfig cfg = ParallelConfig();
  cfg.max_concurrent_queries = 3;
  cfg.admission_timeout_ms = 200;
  EngineRunner runner(cfg);

  for (const char* tag : {"arena_grow", "merge_shard", "morsel_exec",
                          "commit_publish", "sched_submit"}) {
    fail::FailConfig config;
    config.action = tag == std::string("commit_publish")
                        ? fail::Action::kStatus
                        : fail::Action::kThrow;
    config.code = StatusCode::kIOError;
    config.message = "chaos";
    config.probability = 0.05;
    fail::Arm(tag, config);
  }

  constexpr size_t kWriters = 2;
  constexpr size_t kReaders = 4;
  constexpr size_t kOpsPerThread = 30;
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> crashes{0};  // non-Status outcomes: must stay 0

  ForkJoin fork(kWriters + kReaders);
  for (size_t w = 0; w < kWriters; ++w) {
    fork.Spawn([&, w] {
      Rng rng(40 + w);
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        try {
          WriteSession ws = runner.OpenWriteSession(db.get());
          uint64_t row[2] = {
              SlotFromInt64(static_cast<int64_t>(rng.NextBounded(
                  static_cast<uint64_t>(kInitialRows)))),
              SlotFromInt64(static_cast<int64_t>(i))};
          if (ws.Insert("items", row).ok() && ws.Commit().ok()) {
            commits.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (...) {
          crashes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (size_t r = 0; r < kReaders; ++r) {
    fork.Spawn([&, r] {
      Rng rng(80 + r);
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        try {
          PlanKnobs knobs;
          knobs.threads = 2;
          Plan plan = ScanPlan();
          auto result = runner.Execute(*db, plan, knobs);
          if (result.ok()) {
            // A consistent snapshot always yields every initial key.
            if (result->rows.size() < static_cast<size_t>(kInitialRows)) {
              crashes.fetch_add(1, std::memory_order_relaxed);
            }
          }
        } catch (...) {
          crashes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  fork.Join();

  EXPECT_EQ(crashes.load(), 0u);
  fail::DisarmAll();
  EXPECT_EQ(runner.queries_running(), 0u);
  EXPECT_EQ(runner.pinned_snapshots(), 0u);
  // Clean engine after the storm: full scan matches initial rows plus
  // every row the writers managed to commit.
  Plan plan = ScanPlan();
  auto result = runner.Execute(*db, plan, ParallelKnobs());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(),
            static_cast<size_t>(kInitialRows) + commits.load());
}

// Env-var arming: the syntax documented in util/failpoint.h parses into
// working configs, and malformed input is rejected.
TEST_F(FaultInjectionTest, ArmFromEnvParsesTheDocumentedSyntax) {
  setenv("QPPT_FAILPOINTS",
         "arena_grow=badalloc:1,merge_plan=status(io)@0.5,"
         "sched_submit=sleep(2):3,commit_publish=throw(resource_exhausted)",
         1);
  ASSERT_TRUE(fail::ArmFromEnv().ok());
  unsetenv("QPPT_FAILPOINTS");
  fail::DisarmAll();

  setenv("QPPT_FAILPOINTS", "no_equals_sign", 1);
  EXPECT_FALSE(fail::ArmFromEnv().ok());
  unsetenv("QPPT_FAILPOINTS");
  fail::DisarmAll();
}

}  // namespace
}  // namespace qppt
