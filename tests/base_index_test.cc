#include <gtest/gtest.h>

#include <set>

#include "core/base_index.h"
#include "util/rng.h"

namespace qppt {
namespace {

std::unique_ptr<RowTable> MakePartTable(size_t n) {
  Schema schema({{"partkey", ValueType::kInt64, nullptr},
                 {"brand", ValueType::kInt64, nullptr},
                 {"size", ValueType::kInt64, nullptr}});
  auto table = std::make_unique<RowTable>(schema, "part");
  Rng rng(1);
  for (size_t i = 0; i < n; ++i) {
    uint64_t row[3] = {SlotFromInt64(static_cast<int64_t>(i)),
                       SlotFromInt64(static_cast<int64_t>(rng.NextBounded(40))),
                       SlotFromInt64(static_cast<int64_t>(rng.NextBounded(50)))};
    table->AppendRow(row);
  }
  return table;
}

BaseIndex::Options SmallKiss() {
  BaseIndex::Options opt;
  opt.kiss_root_bits = 20;
  return opt;
}

TEST(BaseIndexTest, SecondaryIndexYieldsRids) {
  auto table = MakePartTable(1000);
  auto index = BaseIndex::Build(table.get(), {"brand"}, {}, SmallKiss());
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE((*index)->clustered());
  EXPECT_EQ((*index)->num_rows(), 1000u);

  // All rows with brand 7, via the index vs. a full scan.
  std::set<Rid> expected;
  for (Rid r = 0; r < 1000; ++r) {
    if (Int64FromSlot(table->GetSlot(r, 1)) == 7) expected.insert(r);
  }
  std::set<Rid> got;
  (*index)->ForEachMatch(SlotFromInt64(7),
                         [&](uint64_t value) { got.insert(value); });
  EXPECT_EQ(got, expected);
}

TEST(BaseIndexTest, ClusteredIndexAvoidsTableAccess) {
  auto table = MakePartTable(1000);
  auto index =
      BaseIndex::Build(table.get(), {"brand"}, {"partkey", "size"}, SmallKiss());
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE((*index)->clustered());

  auto partkey = (*index)->BindColumn("partkey");
  auto size = (*index)->BindColumn("size");
  auto brand = (*index)->BindColumn("brand");  // not included -> table
  ASSERT_TRUE(partkey.ok());
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(brand.ok());
  EXPECT_FALSE(partkey->touches_table());
  EXPECT_FALSE(size->touches_table());
  EXPECT_TRUE(brand->touches_table());

  (*index)->ForEachMatch(SlotFromInt64(3), [&](uint64_t value) {
    int64_t pk = Int64FromSlot(partkey->Get(value));
    // Cross-check against the base table.
    EXPECT_EQ(Int64FromSlot(table->GetSlot(static_cast<Rid>(pk), 1)), 3);
    EXPECT_EQ(Int64FromSlot(size->Get(value)),
              Int64FromSlot(table->GetSlot(static_cast<Rid>(pk), 2)));
  });
}

TEST(BaseIndexTest, RidPseudoColumn) {
  auto table = MakePartTable(100);
  auto index = BaseIndex::Build(table.get(), {"partkey"}, {}, SmallKiss());
  ASSERT_TRUE(index.ok());
  auto rid = (*index)->BindColumn("@rid");
  ASSERT_TRUE(rid.ok());
  (*index)->ForEachMatch(SlotFromInt64(42), [&](uint64_t value) {
    EXPECT_EQ(rid->Get(value), 42u);  // partkey == rid in this table
  });
}

TEST(BaseIndexTest, RangeScan) {
  auto table = MakePartTable(500);
  auto index = BaseIndex::Build(table.get(), {"partkey"}, {}, SmallKiss());
  ASSERT_TRUE(index.ok());
  size_t count = 0;
  (*index)->ForEachInRange(SlotFromInt64(100), SlotFromInt64(199),
                           [&](uint64_t) { ++count; });
  EXPECT_EQ(count, 100u);
}

TEST(BaseIndexTest, CompositeKeyUsesPrefixTree) {
  auto table = MakePartTable(300);
  auto index = BaseIndex::Build(table.get(), {"brand", "size"}, {});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->kind(), BaseIndex::Kind::kPrefix);
  // Point lookup through the composite encoding.
  KeyBuf key;
  uint64_t slots[2] = {SlotFromInt64(3), SlotFromInt64(10)};
  (*index)->EncodeKey(slots, &key);
  size_t via_index = 0;
  const ValueList* vals = (*index)->prefix()->Lookup(key.data());
  if (vals != nullptr) via_index = vals->size();
  size_t via_scan = 0;
  for (Rid r = 0; r < 300; ++r) {
    if (Int64FromSlot(table->GetSlot(r, 1)) == 3 &&
        Int64FromSlot(table->GetSlot(r, 2)) == 10) {
      ++via_scan;
    }
  }
  EXPECT_EQ(via_index, via_scan);
}

TEST(BaseIndexTest, UnknownColumnsFail) {
  auto table = MakePartTable(10);
  EXPECT_FALSE(BaseIndex::Build(table.get(), {"ghost"}, {}).ok());
  EXPECT_FALSE(BaseIndex::Build(table.get(), {"brand"}, {"ghost"}).ok());
  EXPECT_FALSE(BaseIndex::Build(table.get(), {}, {}).ok());
}

TEST(BaseIndexTest, SnapshotIndexRespectsVisibility) {
  Schema schema({{"k", ValueType::kInt64, nullptr}});
  MvccTable table(schema, "t");
  TransactionManager tm;

  Transaction t1 = tm.Begin();
  uint64_t row[1] = {SlotFromInt64(1)};
  table.Insert(t1, row);
  Timestamp ts1 = tm.BeginCommit();
  table.CommitTransaction(t1, ts1);
  tm.FinishCommit(t1, ts1);

  // Uncommitted second row must be invisible to the index snapshot.
  Transaction t2 = tm.Begin();
  uint64_t row2[1] = {SlotFromInt64(2)};
  table.Insert(t2, row2);

  BaseIndex::Options opt;
  opt.kiss_root_bits = 16;
  auto index =
      BaseIndex::BuildFromSnapshot(&table, tm.last_commit_ts(), {"k"}, {}, opt);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->num_rows(), 1u);

  Timestamp ts2 = tm.BeginCommit();
  table.CommitTransaction(t2, ts2);
  tm.FinishCommit(t2, ts2);
  auto index2 =
      BaseIndex::BuildFromSnapshot(&table, tm.last_commit_ts(), {"k"}, {}, opt);
  ASSERT_TRUE(index2.ok());
  EXPECT_EQ((*index2)->num_rows(), 2u);
}

// ---- Database -----------------------------------------------------------------

TEST(DatabaseTest, TablesAndIndexes) {
  Database db;
  ASSERT_TRUE(db.AddTable(MakePartTable(100)).ok());
  EXPECT_TRUE(db.AddTable(MakePartTable(100)).IsResourceExhausted() ||
              db.AddTable(MakePartTable(100)).code() ==
                  StatusCode::kAlreadyExists);
  ASSERT_TRUE(db.table("part").ok());
  EXPECT_TRUE(db.table("nope").status().IsNotFound());

  BaseIndex::Options opt;
  opt.kiss_root_bits = 20;
  ASSERT_TRUE(db.BuildIndex("part_brand", "part", {"brand"}, {"partkey"}, opt)
                  .ok());
  EXPECT_EQ(db.BuildIndex("part_brand", "part", {"brand"}, {}, opt).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(db.index("part_brand").ok());
  EXPECT_TRUE(db.index("nope").status().IsNotFound());
  EXPECT_EQ(db.table_names().size(), 1u);
  EXPECT_EQ(db.index_names().size(), 1u);
  EXPECT_GT(db.MemoryUsage(), 0u);
}

}  // namespace
}  // namespace qppt
