// Cross-engine differential tests: all 13 SSB queries must produce
// identical results on the QPPT engine, the column-at-a-time baseline,
// and the vector-at-a-time baseline — plus a scan-based reference for a
// subset. This is the strongest correctness check in the repository: the
// three implementations share no execution code beyond the storage layer.

#include <gtest/gtest.h>

#include <map>

#include "ssb/queries_baseline.h"
#include "ssb/queries_qppt.h"

namespace qppt::ssb {
namespace {

class SsbQueriesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SsbConfig cfg;
    cfg.scale_factor = 0.02;  // ~120k lineorder rows
    cfg.seed = 11;
    auto data = Generate(cfg);
    ASSERT_TRUE(data.ok());
    data_ = data->release();
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static SsbData* data_;
};

SsbData* SsbQueriesTest::data_ = nullptr;

void ExpectSameResults(const QueryResult& a, const QueryResult& b,
                       const std::string& label) {
  ASSERT_EQ(a.rows.size(), b.rows.size()) << label;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    ASSERT_EQ(a.rows[i].size(), b.rows[i].size()) << label << " row " << i;
    for (size_t c = 0; c < a.rows[i].size(); ++c) {
      ASSERT_EQ(a.rows[i][c], b.rows[i][c])
          << label << " row " << i << " col " << c << "\nqppt:   "
          << a.rows[i][c].ToString() << "\nother:  "
          << b.rows[i][c].ToString();
    }
  }
}

class SsbQueryParam : public SsbQueriesTest,
                      public ::testing::WithParamInterface<std::string> {};

TEST_P(SsbQueryParam, ThreeEnginesAgree) {
  const std::string& id = GetParam();
  PlanKnobs knobs;
  auto qppt_result = RunQppt(*data_, id, knobs);
  ASSERT_TRUE(qppt_result.ok()) << qppt_result.status();
  auto column_result = RunColumn(*data_, id);
  ASSERT_TRUE(column_result.ok()) << column_result.status();
  auto vector_result = RunVector(*data_, id);
  ASSERT_TRUE(vector_result.ok()) << vector_result.status();

  ExpectSameResults(*qppt_result, *column_result, "qppt vs column, Q" + id);
  ExpectSameResults(*qppt_result, *vector_result, "qppt vs vector, Q" + id);
  // Non-degenerate at this scale factor — except Q3.4, whose city-pair x
  // single-month predicate is selective enough to yield zero rows on a
  // 0.02-SF instance (all engines agree on the empty result).
  if (id != "3.4") {
    EXPECT_GT(qppt_result->rows.size(), 0u) << id;
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, SsbQueryParam,
                         ::testing::ValuesIn(AllQueryIds()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string name = "Q" + i.param;
                           name[name.find('.')] = '_';
                           return name;
                         });

TEST_F(SsbQueriesTest, Q11MatchesScanReference) {
  // Full-scan reference for Q1.1 computed directly over the row store.
  const RowTable* lo = data_->db.table("lineorder").value();
  const RowTable* date = data_->db.table("date").value();
  std::map<int64_t, int64_t> year_of;
  for (Rid r = 0; r < date->num_rows(); ++r) {
    year_of[Int64FromSlot(date->GetSlot(r, 0))] =
        Int64FromSlot(date->GetSlot(r, 1));
  }
  int64_t expected = 0;
  for (Rid r = 0; r < lo->num_rows(); ++r) {
    int64_t discount = Int64FromSlot(lo->GetSlot(r, 6));
    int64_t quantity = Int64FromSlot(lo->GetSlot(r, 4));
    int64_t orderdate = Int64FromSlot(lo->GetSlot(r, 3));
    if (discount < 1 || discount > 3 || quantity >= 25) continue;
    if (year_of.at(orderdate) != 1993) continue;
    expected += Int64FromSlot(lo->GetSlot(r, 5)) * discount;
  }
  PlanKnobs knobs;
  auto result = RunQppt(*data_, "1.1", knobs);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][1].AsInt(), expected);
}

TEST_F(SsbQueriesTest, SelectJoinKnobPreservesResults) {
  // Fig. 8: with and without the composed select-join, Q1.x results match.
  for (const std::string id : {"1.1", "1.2", "1.3"}) {
    PlanKnobs with_sj;
    with_sj.use_select_join = true;
    PlanKnobs without_sj;
    without_sj.use_select_join = false;
    auto a = RunQppt(*data_, id, with_sj);
    auto b = RunQppt(*data_, id, without_sj);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    ExpectSameResults(*a, *b, "select-join knob, Q" + id);
  }
}

TEST_F(SsbQueriesTest, JoinWaysKnobPreservesResults) {
  // Fig. 9: Q4.1 with 2/3/4/5-way join composition yields identical rows.
  PlanKnobs base;
  auto expected = RunQppt(*data_, "4.1", base);
  ASSERT_TRUE(expected.ok());
  for (int ways : {2, 3, 4, 5}) {
    PlanKnobs knobs;
    knobs.max_join_ways = ways;
    auto got = RunQppt(*data_, "4.1", knobs);
    ASSERT_TRUE(got.ok()) << got.status();
    ExpectSameResults(*expected, *got,
                      "ways=" + std::to_string(ways) + ", Q4.1");
  }
}

TEST_F(SsbQueriesTest, JoinBufferKnobPreservesResults) {
  // Demonstrator joinbuffer sizes {1, 64, 512, 2048} are semantically
  // transparent.
  PlanKnobs base;
  for (const std::string id : {"2.3", "3.1", "4.1"}) {
    auto expected = RunQppt(*data_, id, base);
    ASSERT_TRUE(expected.ok());
    for (size_t size : {size_t{1}, size_t{64}, size_t{2048}}) {
      PlanKnobs knobs;
      knobs.join_buffer_size = size;
      auto got = RunQppt(*data_, id, knobs);
      ASSERT_TRUE(got.ok()) << got.status();
      ExpectSameResults(*expected, *got,
                        "buffer=" + std::to_string(size) + ", Q" + id);
    }
  }
}

TEST_F(SsbQueriesTest, ResultOrderingMatchesOrderBy) {
  PlanKnobs knobs;
  // Q2.3: order by d_year, p_brand1 — ascending key order.
  auto q23 = RunQppt(*data_, "2.3", knobs);
  ASSERT_TRUE(q23.ok());
  for (size_t i = 1; i < q23->rows.size(); ++i) {
    EXPECT_LE(q23->rows[i - 1][0].AsInt(), q23->rows[i][0].AsInt());
  }
  // Q3.1: order by d_year asc, revenue desc.
  auto q31 = RunQppt(*data_, "3.1", knobs);
  ASSERT_TRUE(q31.ok());
  for (size_t i = 1; i < q31->rows.size(); ++i) {
    int64_t py = q31->rows[i - 1][2].AsInt();
    int64_t cy = q31->rows[i][2].AsInt();
    EXPECT_LE(py, cy);
    if (py == cy) {
      EXPECT_GE(q31->rows[i - 1][3].AsInt(), q31->rows[i][3].AsInt());
    }
  }
}

TEST_F(SsbQueriesTest, PlanStatsReported) {
  PlanKnobs knobs;
  PlanStats stats;
  auto result = RunQppt(*data_, "2.3", knobs, &stats);
  ASSERT_TRUE(result.ok());
  // Fig. 5 plan: two selections + 3-way star join + 2-way join-group.
  EXPECT_EQ(stats.operators.size(), 4u);
  EXPECT_GT(stats.total_ms, 0.0);
  // Operator rows carry the planner's stage labels, so the executed
  // statistics line up with ExplainPlan() line-for-line.
  ASSERT_EQ(stats.operators.size(), 4u);
  EXPECT_EQ(stats.operators[0].name, "sel:part_sel");
  EXPECT_EQ(stats.operators[1].name, "sel:supp_sel");
  EXPECT_EQ(stats.operators[2].name, "join:join1");
  EXPECT_EQ(stats.operators[3].name, "join:result");
}

TEST_F(SsbQueriesTest, UnknownQueryIdFails) {
  PlanKnobs knobs;
  EXPECT_TRUE(RunQppt(*data_, "9.9", knobs).status().IsInvalidArgument());
  EXPECT_TRUE(RunColumn(*data_, "9.9").status().IsInvalidArgument());
  EXPECT_TRUE(RunVector(*data_, "9.9").status().IsInvalidArgument());
}

// Regression (qppt-unchecked-status finding): ApplyOrderBy used to drop
// the SortResult error on the floor, so a Q3.x baseline result missing
// an ORDER BY column came back silently UNSORTED — poisoning every
// differential comparison instead of failing loudly.
TEST(ApplyOrderByTest, MissingOrderColumnPropagatesError) {
  QueryResult result;
  result.schema = Schema({{"unrelated", ValueType::kInt64, nullptr}});
  Status st = ApplyOrderBy("3.1", &result);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound() || st.IsInvalidArgument()) << st;
  // Non-Q3 ids never sort, so they cannot fail on the missing column.
  EXPECT_TRUE(ApplyOrderBy("1.1", &result).ok());
}

}  // namespace
}  // namespace qppt::ssb
