#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "core/sync_scan.h"
#include "index/key_encoder.h"
#include "util/rng.h"

namespace qppt {
namespace {

// Property: the synchronous index scan of two trees visits exactly the
// intersection of their key sets, in ascending order, pairing the correct
// value lists.

TEST(SyncScanKissTest, MatchesSetIntersection) {
  KissTree::Config cfg;
  cfg.root_bits = 20;
  KissTree left(cfg), right(cfg);
  Rng rng(1);
  std::set<uint32_t> lkeys, rkeys;
  for (int i = 0; i < 4000; ++i) {
    uint32_t k = rng.Next32() % 10000;
    left.Insert(k, k * 2);
    lkeys.insert(k);
    k = rng.Next32() % 10000;
    right.Insert(k, k * 3);
    rkeys.insert(k);
  }
  std::vector<uint32_t> expected;
  std::set_intersection(lkeys.begin(), lkeys.end(), rkeys.begin(),
                        rkeys.end(), std::back_inserter(expected));
  std::vector<uint32_t> got;
  SynchronousScan(left, right,
                  [&](uint32_t key, const KissTree::ValueRef& lv,
                      const KissTree::ValueRef& rv) {
                    got.push_back(key);
                    EXPECT_EQ(lv.front(), uint64_t{key} * 2);
                    EXPECT_EQ(rv.front(), uint64_t{key} * 3);
                  });
  EXPECT_EQ(got, expected);
}

TEST(SyncScanKissTest, EmptyAndDisjointInputs) {
  KissTree::Config cfg;
  cfg.root_bits = 20;
  KissTree left(cfg), right(cfg);
  int visits = 0;
  SynchronousScan(left, right,
                  [&](uint32_t, const KissTree::ValueRef&,
                      const KissTree::ValueRef&) { ++visits; });
  EXPECT_EQ(visits, 0);

  // Disjoint ranges: mins/maxes do not overlap, scan must exit early.
  for (uint32_t k = 0; k < 100; ++k) left.Insert(k, 1);
  for (uint32_t k = 1000; k < 1100; ++k) right.Insert(k, 1);
  SynchronousScan(left, right,
                  [&](uint32_t, const KissTree::ValueRef&,
                      const KissTree::ValueRef&) { ++visits; });
  EXPECT_EQ(visits, 0);
}

TEST(SyncScanKissTest, DuplicatesPairUp) {
  KissTree::Config cfg;
  cfg.root_bits = 20;
  KissTree left(cfg), right(cfg);
  for (uint64_t i = 0; i < 5; ++i) left.Insert(77, i);
  for (uint64_t i = 0; i < 3; ++i) right.Insert(77, 100 + i);
  size_t pairs = 0;
  SynchronousScan(left, right,
                  [&](uint32_t key, const KissTree::ValueRef& lv,
                      const KissTree::ValueRef& rv) {
                    EXPECT_EQ(key, 77u);
                    EXPECT_EQ(lv.size(), 5u);
                    EXPECT_EQ(rv.size(), 3u);
                    lv.ForEach([&](uint64_t) {
                      rv.ForEach([&](uint64_t) { ++pairs; });
                    });
                  });
  EXPECT_EQ(pairs, 15u);  // the §4.2 cross product
}

TEST(SyncScanKissTest, MixedCompression) {
  KissTree::Config flat_cfg;
  flat_cfg.root_bits = 26;
  KissTree::Config comp_cfg;
  comp_cfg.root_bits = 26;
  comp_cfg.compress = true;
  KissTree flat(flat_cfg), compressed(comp_cfg);
  Rng rng(2);
  std::set<uint32_t> fkeys, ckeys;
  for (int i = 0; i < 2000; ++i) {
    uint32_t k = rng.Next32() % 4000;
    flat.Insert(k, 1);
    fkeys.insert(k);
    k = rng.Next32() % 4000;
    compressed.Insert(k, 1);
    ckeys.insert(k);
  }
  std::vector<uint32_t> expected;
  std::set_intersection(fkeys.begin(), fkeys.end(), ckeys.begin(),
                        ckeys.end(), std::back_inserter(expected));
  std::vector<uint32_t> got;
  SynchronousScan(flat, compressed,
                  [&](uint32_t key, const KissTree::ValueRef&,
                      const KissTree::ValueRef&) { got.push_back(key); });
  EXPECT_EQ(got, expected);
}

// ---- prefix tree sync scan ------------------------------------------------------

struct PtParam {
  size_t key_len;
  size_t kprime;
};

class SyncScanPrefixTest : public ::testing::TestWithParam<PtParam> {};

TEST_P(SyncScanPrefixTest, MatchesSetIntersection) {
  auto [key_len, kprime] = GetParam();
  PrefixTree left({.key_len = key_len, .kprime = kprime});
  PrefixTree right({.key_len = key_len, .kprime = kprime});
  Rng rng(3);
  std::set<std::vector<uint8_t>> lkeys, rkeys;
  auto random_key = [&] {
    std::vector<uint8_t> key(key_len);
    // Narrow value domain so intersections are non-trivial.
    uint64_t v = rng.NextBounded(3000);
    for (size_t i = 0; i < key_len; ++i) {
      key[key_len - 1 - i] = static_cast<uint8_t>(v >> (8 * i));
    }
    return key;
  };
  for (int i = 0; i < 2500; ++i) {
    auto k = random_key();
    left.Insert(k.data(), 2);
    lkeys.insert(k);
    k = random_key();
    right.Insert(k.data(), 3);
    rkeys.insert(k);
  }
  std::vector<std::vector<uint8_t>> expected;
  std::set_intersection(lkeys.begin(), lkeys.end(), rkeys.begin(),
                        rkeys.end(), std::back_inserter(expected));
  std::vector<std::vector<uint8_t>> got;
  SynchronousScan(left, right,
                  [&](const uint8_t* key, const ValueList* lv,
                      const ValueList* rv) {
                    got.emplace_back(key, key + key_len);
                    EXPECT_EQ(lv->first(), 2u);
                    EXPECT_EQ(rv->first(), 3u);
                  });
  EXPECT_EQ(got, expected);
}

TEST_P(SyncScanPrefixTest, ContentVsSubtreeMatching) {
  // Force the asymmetric case: one tree has a lone content node high up
  // (dynamic expansion) while the other expanded the same region deeply.
  auto [key_len, kprime] = GetParam();
  PrefixTree left({.key_len = key_len, .kprime = kprime});
  PrefixTree right({.key_len = key_len, .kprime = kprime});
  std::vector<uint8_t> base(key_len, 0xA0);
  left.Insert(base.data(), 1);  // stays shallow in left
  // Right gets the same key plus close siblings, forcing deep expansion.
  right.Insert(base.data(), 2);
  for (uint8_t delta = 1; delta < 6; ++delta) {
    std::vector<uint8_t> sibling = base;
    sibling[key_len - 1] = static_cast<uint8_t>(0xA0 + delta);
    right.Insert(sibling.data(), 9);
  }
  size_t matches = 0;
  SynchronousScan(left, right,
                  [&](const uint8_t* key, const ValueList* lv,
                      const ValueList* rv) {
                    EXPECT_EQ(CompareKeys(key, base.data(), key_len), 0);
                    EXPECT_EQ(lv->first(), 1u);
                    EXPECT_EQ(rv->first(), 2u);
                    ++matches;
                  });
  EXPECT_EQ(matches, 1u);
  // And symmetrically.
  matches = 0;
  SynchronousScan(right, left,
                  [&](const uint8_t*, const ValueList*, const ValueList*) {
                    ++matches;
                  });
  EXPECT_EQ(matches, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SyncScanPrefixTest,
    ::testing::Values(PtParam{4, 4}, PtParam{8, 4}, PtParam{4, 8},
                      PtParam{8, 8}, PtParam{16, 4}, PtParam{3, 5}),
    [](const ::testing::TestParamInfo<PtParam>& info) {
      return "len" + std::to_string(info.param.key_len) + "_k" +
             std::to_string(info.param.kprime);
    });

}  // namespace
}  // namespace qppt
