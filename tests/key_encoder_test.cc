#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "index/key_encoder.h"
#include "util/rng.h"

namespace qppt {
namespace {

// Property: for every pair (a, b), natural order == lexicographic order of
// the encodings. These are the order-preservation guarantees that make the
// prefix tree's in-order traversal a free ORDER BY (§3).

TEST(KeyEncoderTest, U32RoundTripAndOrder) {
  Rng rng(1);
  std::vector<uint32_t> values = {0, 1, 0xFF, 0x100, 0xFFFF'FFFF};
  for (int i = 0; i < 500; ++i) values.push_back(rng.Next32());
  for (uint32_t a : values) {
    KeyBuf ka;
    ka.AppendU32(a);
    ASSERT_EQ(DecodeU32(ka.data()), a);
    for (uint32_t b : values) {
      KeyBuf kb;
      kb.AppendU32(b);
      int cmp = std::memcmp(ka.data(), kb.data(), 4);
      ASSERT_EQ(cmp < 0, a < b);
      ASSERT_EQ(cmp == 0, a == b);
    }
  }
}

TEST(KeyEncoderTest, I64RoundTripAndOrder) {
  Rng rng(2);
  std::vector<int64_t> values = {INT64_MIN, -1, 0, 1, INT64_MAX, -42};
  for (int i = 0; i < 200; ++i) {
    values.push_back(static_cast<int64_t>(rng.Next()));
  }
  for (int64_t a : values) {
    KeyBuf ka;
    ka.AppendI64(a);
    ASSERT_EQ(DecodeI64(ka.data()), a);
    for (int64_t b : values) {
      KeyBuf kb;
      kb.AppendI64(b);
      int cmp = std::memcmp(ka.data(), kb.data(), 8);
      ASSERT_EQ(cmp < 0, a < b) << a << " vs " << b;
    }
  }
}

TEST(KeyEncoderTest, I32RoundTripAndOrder) {
  std::vector<int32_t> values = {INT32_MIN, -100, -1, 0, 1, 100, INT32_MAX};
  for (int32_t a : values) {
    KeyBuf ka;
    ka.AppendI32(a);
    ASSERT_EQ(DecodeI32(ka.data()), a);
    for (int32_t b : values) {
      KeyBuf kb;
      kb.AppendI32(b);
      ASSERT_EQ(std::memcmp(ka.data(), kb.data(), 4) < 0, a < b);
    }
  }
}

TEST(KeyEncoderTest, DoubleRoundTripAndOrder) {
  Rng rng(3);
  std::vector<double> values = {-1e300, -1.0, -0.5, -0.0, 0.0,
                                0.5,    1.0,  1e300};
  for (int i = 0; i < 200; ++i) {
    values.push_back((rng.NextDouble() - 0.5) * 1e6);
  }
  for (double a : values) {
    KeyBuf ka;
    ka.AppendDouble(a);
    ASSERT_EQ(DecodeDouble(ka.data()), a);
    for (double b : values) {
      KeyBuf kb;
      kb.AppendDouble(b);
      int cmp = std::memcmp(ka.data(), kb.data(), 8);
      if (a < b) {
        ASSERT_LT(cmp, 0) << a << " vs " << b;
      }
      if (a > b) {
        ASSERT_GT(cmp, 0) << a << " vs " << b;
      }
    }
  }
}

TEST(KeyEncoderTest, CompositeKeysOrderLexicographically) {
  // (year, brand) composite keys, as in SSB Q2.3's group key.
  struct Pair {
    int64_t year;
    int64_t brand;
  };
  std::vector<Pair> pairs = {{1992, 100}, {1992, 200}, {1993, 50},
                             {1993, 51},  {1997, 0},   {1998, 999}};
  for (const auto& a : pairs) {
    KeyBuf ka;
    ka.AppendI64(a.year);
    ka.AppendI64(a.brand);
    ASSERT_EQ(ka.size(), 16u);
    for (const auto& b : pairs) {
      KeyBuf kb;
      kb.AppendI64(b.year);
      kb.AppendI64(b.brand);
      bool natural_less =
          a.year < b.year || (a.year == b.year && a.brand < b.brand);
      ASSERT_EQ(std::memcmp(ka.data(), kb.data(), 16) < 0, natural_less);
    }
  }
}

TEST(KeyEncoderTest, AppendU64) {
  KeyBuf k;
  k.AppendU64(0x0123456789ABCDEFULL);
  EXPECT_EQ(k.size(), 8u);
  EXPECT_EQ(DecodeU64(k.data()), 0x0123456789ABCDEFULL);
  EXPECT_EQ(k.data()[0], 0x01);
  EXPECT_EQ(k.data()[7], 0xEF);
}

TEST(KeyEncoderTest, ClearResets) {
  KeyBuf k;
  k.AppendU32(1);
  k.clear();
  EXPECT_EQ(k.size(), 0u);
  k.AppendU32(2);
  EXPECT_EQ(k.size(), 4u);
  EXPECT_EQ(DecodeU32(k.data()), 2u);
}

TEST(KeyEncoderTest, KeyToHex) {
  uint8_t key[3] = {0x00, 0xAB, 0xFF};
  EXPECT_EQ(KeyToHex(key, 3), "00abff");
}

TEST(KeyEncoderTest, CompareKeysMatchesMemcmp) {
  uint8_t a[4] = {1, 2, 3, 4};
  uint8_t b[4] = {1, 2, 3, 5};
  EXPECT_LT(CompareKeys(a, b, 4), 0);
  EXPECT_GT(CompareKeys(b, a, 4), 0);
  EXPECT_EQ(CompareKeys(a, a, 4), 0);
}

}  // namespace
}  // namespace qppt
