// Query-API unit tests: QueryBuilder -> QuerySpec -> planner on a tiny
// non-SSB star, spec validation errors, ORDER-BY strategy, parameter
// re-binding, and the prepared-query plan cache.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/query/planner.h"
#include "core/query/query_spec.h"
#include "engine/session.h"
#include "util/rng.h"

namespace qppt {
namespace {

// A small products/orders star with hand-checkable aggregates.
class QueryApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    {
      Schema schema({{"product_id", ValueType::kInt64, nullptr},
                     {"category", ValueType::kInt64, nullptr},
                     {"price", ValueType::kInt64, nullptr}});
      auto products = std::make_unique<RowTable>(schema, "products");
      Rng rng(1);
      for (int64_t id = 0; id < 500; ++id) {
        int64_t price = 10 + static_cast<int64_t>(rng.NextBounded(90));
        uint64_t row[3] = {SlotFromInt64(id), SlotFromInt64(id % 8),
                           SlotFromInt64(price)};
        products->AppendRow(row);
        price_[id] = price;
        category_[id] = id % 8;
      }
      ASSERT_TRUE(db_.AddTable(std::move(products)).ok());
    }
    {
      Schema schema({{"product_id", ValueType::kInt64, nullptr},
                     {"amount", ValueType::kInt64, nullptr}});
      auto orders = std::make_unique<RowTable>(schema, "orders");
      Rng rng(2);
      for (int i = 0; i < 20000; ++i) {
        int64_t product = static_cast<int64_t>(rng.NextBounded(500));
        int64_t amount = 1 + static_cast<int64_t>(rng.NextBounded(5));
        uint64_t row[2] = {SlotFromInt64(product), SlotFromInt64(amount)};
        orders->AppendRow(row);
        orders_.emplace_back(product, amount);
      }
      ASSERT_TRUE(db_.AddTable(std::move(orders)).ok());
    }
    ASSERT_TRUE(db_.BuildIndex("products_by_price", "products", {"price"},
                               {"product_id", "category"})
                    .ok());
    ASSERT_TRUE(db_.BuildIndex("orders_by_product", "orders", {"product_id"},
                               {"amount"})
                    .ok());
  }

  query::QuerySpec GadgetSpec(int64_t price_lo, int64_t price_hi) {
    query::QueryBuilder b("test.gadgets");
    b.From("orders").FactIndex("orders_by_product").FactColumns({"amount"});
    b.Dim("gadgets")
        .Select("products_by_price", KeyPredicate::Range(price_lo, price_hi))
        .Key("product_id")
        .ProbeFrom("product_id")
        .Carry({"category"});
    b.GroupBy({"category"})
        .Aggregate(AggFn::kSum, ScalarExpr::Column("amount"), "total")
        .Aggregate(AggFn::kCount, {}, "orders");
    return std::move(b).Build();
  }

  // Reference aggregation straight off the raw rows.
  std::map<int64_t, std::pair<int64_t, int64_t>> Reference(int64_t lo,
                                                           int64_t hi) {
    std::map<int64_t, std::pair<int64_t, int64_t>> by_category;
    for (const auto& [product, amount] : orders_) {
      if (price_[product] < lo || price_[product] > hi) continue;
      auto& acc = by_category[category_[product]];
      acc.first += amount;
      acc.second += 1;
    }
    return by_category;
  }

  Database db_;
  std::map<int64_t, int64_t> price_;
  std::map<int64_t, int64_t> category_;
  std::vector<std::pair<int64_t, int64_t>> orders_;
};

TEST_F(QueryApiTest, PlansAndExecutesStarQuery) {
  query::QuerySpec spec = GadgetSpec(40, 60);
  auto plan = query::PlanQuery(db_, spec, PlanKnobs{});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->OperatorNames(),
            (std::vector<std::string>{
                "selection(products_by_price)",
                "2-way-join(orders_by_product x gadgets_sel)"}));
  EXPECT_EQ(plan->OperatorLabels(),
            (std::vector<std::string>{"sel:gadgets_sel", "join:result"}));

  ExecContext ctx(&db_);
  auto result = plan->Execute(&ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  auto want = Reference(40, 60);
  ASSERT_EQ(result->rows.size(), want.size());
  for (const auto& row : result->rows) {
    int64_t category = row[0].AsInt();
    ASSERT_TRUE(want.count(category)) << category;
    EXPECT_EQ(row[1].AsInt(), want[category].first) << category;
    EXPECT_EQ(row[2].AsInt(), want[category].second) << category;
  }
  // Executed stats rows carry the stage labels.
  ASSERT_EQ(ctx.stats()->operators.size(), 2u);
  EXPECT_EQ(ctx.stats()->operators[0].name, "sel:gadgets_sel");
  EXPECT_EQ(ctx.stats()->operators[1].name, "join:result");
}

TEST_F(QueryApiTest, DimensionFreeQueryIsASelection) {
  query::QueryBuilder b("test.prices");
  b.From("products")
      .FactIndex("products_by_price")
      .FactColumns({"category", "price"})
      .Where(KeyPredicate::Range(40, 60));
  b.GroupBy({"category"})
      .Aggregate(AggFn::kSum, ScalarExpr::Column("price"), "price_sum");
  query::QuerySpec spec = std::move(b).Build();
  auto plan = query::PlanQuery(db_, spec, PlanKnobs{});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->OperatorNames(),
            (std::vector<std::string>{"selection(products_by_price)"}));

  ExecContext ctx(&db_);
  auto result = plan->Execute(&ctx);
  ASSERT_TRUE(result.ok());
  std::map<int64_t, int64_t> want;
  for (const auto& [product, price] : price_) {
    if (price >= 40 && price <= 60) want[category_[product]] += price;
  }
  ASSERT_EQ(result->rows.size(), want.size());
  for (const auto& row : result->rows) {
    EXPECT_EQ(row[1].AsInt(), want[row[0].AsInt()]);
  }
}

TEST_F(QueryApiTest, OrderByPostSortAndFreeOrder) {
  query::QuerySpec spec = GadgetSpec(20, 80);
  spec.order_by = {{"total", true}};  // not an index order: post-sort
  auto plan = query::PlanQuery(db_, spec, PlanKnobs{});
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->result_order().size(), 1u);
  ExecContext ctx(&db_);
  auto result = plan->Execute(&ctx);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->rows.size(); ++i) {
    EXPECT_GE(result->rows[i - 1][1].AsInt(), result->rows[i][1].AsInt());
  }

  spec.order_by = {{"category", false}};  // ascending group prefix: free
  auto free_plan = query::PlanQuery(db_, spec, PlanKnobs{});
  ASSERT_TRUE(free_plan.ok());
  EXPECT_TRUE(free_plan->result_order().empty());

  auto explain = query::ExplainPlan(db_, spec, PlanKnobs{});
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("order-by: index order (free)"),
            std::string::npos);
}

TEST_F(QueryApiTest, RejectsInvalidSpecs) {
  // Unknown fact index.
  {
    query::QuerySpec spec = GadgetSpec(40, 60);
    spec.fact.index = "no_such_index";
    EXPECT_FALSE(query::PlanQuery(db_, spec, PlanKnobs{}).ok());
  }
  // A dimension needs exactly one access path.
  {
    query::QuerySpec spec = GadgetSpec(40, 60);
    spec.dimensions[0].probe_index = "products_by_price";
    auto plan = query::PlanQuery(db_, spec, PlanKnobs{});
    ASSERT_FALSE(plan.ok());
    EXPECT_TRUE(plan.status().IsInvalidArgument());
  }
  // Probe-path dimensions cannot carry a filter.
  {
    query::QueryBuilder b("bad.probe_filter");
    b.From("orders").FactIndex("orders_by_product").FactColumns({"amount"});
    b.Dim("gadgets")
        .Probe("products_by_price")
        .ProbeFrom("product_id")
        .Carry({"category"});
    b.GroupBy({"category"}).Aggregate(AggFn::kCount, {}, "n");
    query::QuerySpec spec = std::move(b).Build();
    spec.dimensions[0].predicate = KeyPredicate::Point(3);
    EXPECT_FALSE(query::PlanQuery(db_, spec, PlanKnobs{}).ok());
  }
  // ORDER BY must reference a result column.
  {
    query::QuerySpec spec = GadgetSpec(40, 60);
    spec.order_by = {{"price", false}};
    EXPECT_FALSE(query::PlanQuery(db_, spec, PlanKnobs{}).ok());
  }
  // Group-by columns must originate from the fact or a dimension carry.
  {
    query::QuerySpec spec = GadgetSpec(40, 60);
    spec.group_by = {"no_such_column"};
    EXPECT_FALSE(query::PlanQuery(db_, spec, PlanKnobs{}).ok());
  }
  // An unfiltered fact side must enter through the first dim's probe key.
  {
    query::QuerySpec spec = GadgetSpec(40, 60);
    spec.fact.index = "products_by_price";  // keyed on price, not product_id
    auto plan = query::PlanQuery(db_, spec, PlanKnobs{});
    ASSERT_FALSE(plan.ok());
    EXPECT_TRUE(plan.status().IsInvalidArgument());
  }
}

TEST_F(QueryApiTest, BindParamsPatchesPredicateConstants) {
  query::QuerySpec spec = GadgetSpec(40, 60);
  auto bound = query::BindParams(
      spec, {query::ParamBinding::Lo("gadgets", 10),
             query::ParamBinding::Hi("gadgets", 90)});
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_EQ(bound->dimensions[0].predicate.lo, 10);
  EXPECT_EQ(bound->dimensions[0].predicate.hi, 90);
  // The original spec is untouched.
  EXPECT_EQ(spec.dimensions[0].predicate.lo, 40);

  // Kind mismatch and unknown targets fail.
  EXPECT_FALSE(
      query::BindParams(spec, {query::ParamBinding::Point("gadgets", 5)})
          .ok());
  EXPECT_FALSE(
      query::BindParams(spec, {query::ParamBinding::Point("nope", 5)}).ok());
  // Duplicate (target, field) bindings are rejected — they would alias
  // two different binding outcomes to one prepared-plan cache key.
  EXPECT_FALSE(
      query::BindParams(spec, {query::ParamBinding::Lo("gadgets", 10),
                               query::ParamBinding::Lo("gadgets", 20)})
          .ok());
  EXPECT_FALSE(query::ParamsKey({query::ParamBinding::Lo("gadgets", 10),
                                 query::ParamBinding::Lo("gadgets", 20)})
                   .ok());
}

TEST_F(QueryApiTest, PreparedQueryCachesPlansPerKnobsAndParams) {
  engine::EngineConfig cfg;
  cfg.threads = 1;
  engine::EngineRunner runner(cfg);
  auto prepared = runner.Prepare(db_, GadgetSpec(40, 60));
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  EXPECT_EQ(prepared->plans_cached(), 1u);  // warmed at Prepare

  // Repeated default executions reuse the cached plan.
  auto a = runner.Execute(*prepared);
  auto b = runner.Execute(*prepared);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(prepared->plan_cache_hits(), 2u);
  EXPECT_EQ(prepared->plan_cache_misses(), 1u);
  EXPECT_EQ(prepared->plans_cached(), 1u);

  // New parameter values compile one more plan, then hit.
  query::QueryParams wide = {query::ParamBinding::Lo("gadgets", 10),
                             query::ParamBinding::Hi("gadgets", 99)};
  auto c = runner.Execute(*prepared, wide);
  auto d = runner.Execute(*prepared, wide);
  ASSERT_TRUE(c.ok() && d.ok());
  EXPECT_EQ(prepared->plans_cached(), 2u);
  EXPECT_EQ(prepared->plan_cache_misses(), 2u);
  EXPECT_GE(c->rows.size(), a->rows.size());

  // Structural knobs key the cache too.
  PlanKnobs no_fusion;
  no_fusion.use_select_join = false;
  auto e = runner.Execute(*prepared, {}, no_fusion);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(prepared->plans_cached(), 3u);

  // Results through the prepared path match the ad-hoc planner path.
  auto want = Reference(10, 99);
  ASSERT_EQ(c->rows.size(), want.size());
  for (const auto& row : c->rows) {
    EXPECT_EQ(row[1].AsInt(), want[row[0].AsInt()].first);
  }

  // Sessions can execute prepared queries with per-call params.
  auto session = runner.OpenSession();
  auto f = session.Execute(*prepared, wide);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->rows.size(), c->rows.size());
  EXPECT_EQ(session.queries_run(), 1u);
}

TEST_F(QueryApiTest, HavingFiltersFinalizedGroups) {
  query::QuerySpec spec = GadgetSpec(20, 80);
  spec.having = {Residual::Ge("total", 500)};
  auto plan = query::PlanQuery(db_, spec, PlanKnobs{});
  ASSERT_TRUE(plan.ok()) << plan.status();
  // The aggregating join lands in a pre-HAVING slot; HavingOp filters
  // its group rows into the result.
  std::vector<std::string> names = plan->OperatorNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[2], "having(result_agg)");
  EXPECT_EQ(plan->OperatorLabels()[2], "having:result");

  ExecContext ctx(&db_);
  auto result = plan->Execute(&ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  size_t expected = 0;
  for (const auto& [category, acc] : Reference(20, 80)) {
    if (acc.first >= 500) ++expected;
  }
  EXPECT_EQ(result->rows.size(), expected);
  for (const auto& row : result->rows) {
    EXPECT_GE(row[1].AsInt(), 500);
  }

  // HAVING without aggregates and unknown HAVING columns are rejected.
  query::QuerySpec bad = GadgetSpec(20, 80);
  bad.aggregates = AggSpec{};
  bad.group_by = {"category"};
  bad.having = {Residual::Ge("total", 500)};
  EXPECT_FALSE(query::PlanQuery(db_, bad, PlanKnobs{}).ok());
  query::QuerySpec bad_col = GadgetSpec(20, 80);
  bad_col.having = {Residual::Ge("no_such", 1)};
  EXPECT_FALSE(query::PlanQuery(db_, bad_col, PlanKnobs{}).ok());
}

TEST_F(QueryApiTest, RejectsSlotAndNameCollisions) {
  // Duplicate dimension names fail at planning time, not execution.
  {
    query::QuerySpec spec = GadgetSpec(40, 60);
    query::DimensionSpec dup = spec.dimensions[0];
    dup.carry_columns = {};
    spec.dimensions.push_back(dup);
    auto plan = query::PlanQuery(db_, spec, PlanKnobs{});
    ASSERT_FALSE(plan.ok());
    EXPECT_TRUE(plan.status().IsInvalidArgument());
  }
  // A dimension slot equal to the result slot collides.
  {
    query::QuerySpec spec = GadgetSpec(40, 60);
    spec.dimensions[0].slot = "result";
    EXPECT_FALSE(query::PlanQuery(db_, spec, PlanKnobs{}).ok());
  }
  // Planner-generated join slots are reserved.
  {
    query::QuerySpec spec = GadgetSpec(40, 60);
    spec.dimensions[0].slot = "join1";
    EXPECT_FALSE(query::PlanQuery(db_, spec, PlanKnobs{}).ok());
  }
  // "fact" is reserved for parameter bindings.
  {
    query::QuerySpec spec = GadgetSpec(40, 60);
    spec.dimensions[0].name = "fact";
    EXPECT_FALSE(query::PlanQuery(db_, spec, PlanKnobs{}).ok());
  }
}

TEST_F(QueryApiTest, PreparedPlanCacheIsBounded) {
  engine::EngineConfig cfg;
  cfg.threads = 1;
  engine::EngineRunner runner(cfg);
  auto prepared = runner.Prepare(db_, GadgetSpec(40, 60));
  ASSERT_TRUE(prepared.ok());
  // A workload with ever-changing parameter values must not grow the
  // cache without bound (FIFO eviction kicks in).
  for (int64_t lo = 0; lo < 100; ++lo) {
    auto r = runner.Execute(
        *prepared, {query::ParamBinding::Lo("gadgets", lo),
                    query::ParamBinding::Hi("gadgets", lo + 5)});
    ASSERT_TRUE(r.ok()) << r.status();
  }
  EXPECT_LE(prepared->plans_cached(), 64u);
  // The prepared query still answers correctly after evictions.
  auto r = runner.Execute(*prepared);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), Reference(40, 60).size());
}

TEST_F(QueryApiTest, EngineExecutesSpecsDirectly) {
  engine::EngineConfig cfg;
  cfg.threads = 1;
  engine::EngineRunner runner(cfg);
  PlanStats stats;
  auto result = runner.Execute(db_, GadgetSpec(40, 60), PlanKnobs{}, &stats);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), Reference(40, 60).size());
  EXPECT_EQ(stats.operators.size(), 2u);
}

}  // namespace
}  // namespace qppt
